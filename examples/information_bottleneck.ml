(* Characterizer trainability and the information bottleneck (Section 5).

   The paper reports that input properties *related to the network's
   output* (road curvature) yield good characterizers from close-to-output
   features, while *output-irrelevant* properties (traffic participants in
   adjacent lanes) produce classifiers that act like coin flips: the
   network's close-to-output layers have squeezed that information out
   (information bottleneck).

   This example trains characterizers for several properties at several
   cut layers and prints the accuracy matrix.

   Run with: dune exec examples/information_bottleneck.exe *)

module Workflow = Dpv_core.Workflow
module Characterizer = Dpv_core.Characterizer
module Report = Dpv_core.Report
module Oracle = Dpv_scenario.Oracle

let () =
  Format.printf "== information bottleneck probe ==@.";
  let setup = Workflow.default_setup in
  let prepared = Workflow.prepare_cached ~cache_dir:"_cache" setup in
  let cuts = Workflow.cut_options setup in
  let dims = Dpv_nn.Network.dims prepared.Workflow.perception in
  Format.printf "%s@."
    (Report.table_row
       ("property"
       :: List.map
            (fun cut -> Printf.sprintf "cut %d (d=%d)" cut dims.(cut))
            cuts));
  Format.printf "%s@." (Report.rule ());
  List.iter
    (fun (name, property) ->
      let cells =
        List.map
          (fun cut ->
            let _, report, val_acc =
              Workflow.train_characterizer ~cut prepared ~property
            in
            Printf.sprintf "%.2f/%.2f"
              report.Characterizer.train_accuracy val_acc)
          cuts
      in
      Format.printf "%s@." (Report.table_row (name :: cells)))
    Oracle.all;
  Format.printf
    "@.cells are train/val accuracy; 0.50 = coin flip.@.\
     Road-geometry properties stay learnable at every close-to-output cut;@.\
     the traffic property collapses toward 0.5 exactly as the paper found.@."
