(* Highway waypoint verification — the paper's headline experiments.

   Reproduces the Section 5 narrative on the synthetic A9-like highway:

   - E1: "impossible to suggest steering to the far LEFT when the road
     image is bending to the RIGHT" — conditionally provable with
     assume-guarantee bounds from visited neuron values.
   - E2: "impossible to suggest steering STRAIGHT when the road image is
     bending to the right" — not provable; the verifier produces a
     witness, reflecting an inherent limitation of the network.
   - The static-analysis comparison: bounds propagated from the raw
     image box are far too coarse to prove anything (Related Work
     discussion in the paper).

   Run with: dune exec examples/highway_waypoint.exe *)

module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Report = Dpv_core.Report
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Scene = Dpv_scenario.Scene
module Road = Dpv_scenario.Road
module Propagate = Dpv_absint.Propagate
module Linexpr = Dpv_spec.Linexpr
module Network = Dpv_nn.Network

let show_sample_frame setup =
  let cfg = setup.Workflow.scenario in
  let road = Road.make ~curvature:(-0.02) ~curvature_rate:0.0 ~num_lanes:3 () in
  let scene = Scene.make ~road ~ego_lane:1 () in
  Format.printf "a right-bending frame as the network sees it:@.%s@."
    (Camera.to_ascii cfg.Generator.camera
       (Camera.render cfg.Generator.camera scene))

let () =
  Format.printf "== highway waypoint verification ==@.";
  let setup = Workflow.default_setup in
  show_sample_frame setup;
  let prepared = Workflow.prepare_cached ~cache_dir:"_cache" setup in
  Format.printf "perception network: %a (%d parameters)@."
    Network.pp prepared.Workflow.perception
    (Network.num_parameters prepared.Workflow.perception);
  Format.printf "val MAE: waypoint %.2f m, orientation %.3f rad@.@."
    prepared.Workflow.val_mae.(0) prepared.Workflow.val_mae.(1);

  Format.printf "-- E1: no far-left steer while bending right --@.";
  let far_left = Workflow.psi_steer_far_left () in
  List.iter
    (fun strategy ->
      let case =
        Workflow.run_case prepared ~property:Oracle.bends_right ~psi:far_left
          ~strategy
      in
      Format.printf "%a@." Report.pp_verdict_line case)
    [
      Workflow.Static Propagate.Box;
      Workflow.Static Propagate.Zonotope;
      Workflow.Static Propagate.Deeppoly;
      Workflow.Data_box;
      Workflow.Data_octagon;
    ];

  Format.printf "@.-- E2: no straight steer while bending right --@.";
  let straight = Workflow.psi_steer_straight () in
  let case_e2 =
    Workflow.run_case prepared ~property:Oracle.bends_right ~psi:straight
      ~strategy:Workflow.Data_octagon
  in
  Format.printf "%a@." Report.pp_case case_e2;

  Format.printf "@.-- provable frontier --@.";
  let case_e1 =
    Workflow.run_case prepared ~property:Oracle.bends_right ~psi:far_left
      ~strategy:Workflow.Data_octagon
  in
  match
    Verify.optimize_output ~perception:prepared.Workflow.perception
      ~characterizer:case_e1.Workflow.characterizer
      ~objective:(Linexpr.output 0) ~sense:`Maximize
      ~bounds:(Verify.Data_octagon prepared.Workflow.bounds_features) ()
  with
  | Ok opt ->
      Format.printf
        "max waypoint while the characterizer reports a right bend: %.2f m@.\
         => every far-left threshold above %.2f m is conditionally safe@."
        opt.Verify.value opt.Verify.value
  | Error reason -> Format.printf "frontier query failed: %s@." reason
