(* Quickstart: the whole verification workflow on a small configuration.

   1. Train a direct perception network on synthetic highway frames.
   2. Train an input property characterizer ("the road bends right") on a
      close-to-output layer.
   3. Prove, over the box of visited neuron values (assume-guarantee),
      that the network cannot suggest a strong LEFT steer while the
      characterizer reports a right bend.

   Run with: dune exec examples/quickstart.exe *)

module Workflow = Dpv_core.Workflow
module Report = Dpv_core.Report
module Verify = Dpv_core.Verify
module Oracle = Dpv_scenario.Oracle
module Camera = Dpv_scenario.Camera
module Generator = Dpv_scenario.Generator

let small_setup =
  {
    Workflow.default_setup with
    seed = 11;
    hidden = [ 16; 8 ];
    cut = 6;
    train_size = 500;
    val_size = 150;
    perception_epochs = 20;
    characterizer_samples = 300;
    bounds_samples = 300;
    scenario =
      {
        Generator.default_config with
        camera = { Camera.default_config with width = 12; height = 8 };
      };
  }

let () =
  Format.printf "== dpv quickstart ==@.";
  Format.printf "training the direct perception network...@.";
  let prepared = Workflow.prepare small_setup in
  Format.printf "  final train loss: %.4f@." prepared.Workflow.final_train_loss;
  Format.printf "  val MAE: waypoint %.3f m, orientation %.4f rad@."
    prepared.Workflow.val_mae.(0) prepared.Workflow.val_mae.(1);
  Format.printf "training the characterizer and verifying...@.";
  let case =
    Workflow.run_case prepared ~property:Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ()) ~strategy:Workflow.Data_box
  in
  Format.printf "%a@." Report.pp_case case;
  match case.Workflow.result.Verify.verdict with
  | Verify.Safe _ ->
      Format.printf
        "@.The property holds on the visited-value box: deploy with the@.\
         runtime monitor from Dpv_monitor.Runtime to keep the proof valid.@."
  | Verify.Unsafe _ ->
      Format.printf
        "@.A violating activation exists; inspect the witness above.@."
  | Verify.Unknown reason -> Format.printf "@.Inconclusive: %s@." reason
