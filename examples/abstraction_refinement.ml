(* Layer-wise incremental abstraction refinement + adversarial search.

   The paper's future-work remark made concrete:

   1. Try to prove the property with the coarsest abstraction (the
      deepest cut layer).  A feature-level witness there may be spurious.
   2. Refine: move the cut toward the input, retrain the characterizer,
      re-verify (Dpv_core.Refine).
   3. If every refinement level still has a witness, try to realize it as
      a concrete IMAGE with projected gradient descent
      (Dpv_core.Attack) — the paper's "adversarial perturbation" route to
      counterexamples.

   Run with: dune exec examples/abstraction_refinement.exe *)

module Workflow = Dpv_core.Workflow
module Refine = Dpv_core.Refine
module Attack = Dpv_core.Attack
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Property = Dpv_spec.Property
module Rng = Dpv_tensor.Rng

let () =
  Format.printf "== abstraction refinement and adversarial search ==@.";
  let setup = Workflow.default_setup in
  let prepared = Workflow.prepare_cached ~cache_dir:"_cache" setup in

  Format.printf "@.-- E1 under refinement (provable at some level) --@.";
  let outcome_e1 =
    Refine.run prepared ~property:Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ()) ~strategy:Workflow.Data_octagon
  in
  Format.printf "%a@." Refine.pp_outcome outcome_e1;

  Format.printf "@.-- E2 under refinement (witness at every level) --@.";
  let psi_straight = Workflow.psi_steer_straight () in
  (* The finest cut (32 features, ~2000 octagon faces) takes minutes;
     the bench harness covers it — two levels tell the story here. *)
  let outcome_e2 =
    Refine.run ~max_steps:2 prepared ~property:Oracle.bends_right
      ~psi:psi_straight ~strategy:Workflow.Data_octagon
  in
  Format.printf "%a@." Refine.pp_outcome outcome_e2;

  Format.printf "@.-- realizing E2's witness as a concrete image --@.";
  match Refine.steps outcome_e2 with
  | [] -> Format.printf "no steps recorded@."
  | first :: _ ->
      let characterizer = first.Refine.case.Workflow.characterizer in
      (* Seed the attack with frames whose oracle label says phi holds. *)
      let rng = Rng.create 505 in
      let seeds =
        Generator.scenes_and_images setup.Workflow.scenario rng ~n:400
        |> Array.to_list
        |> List.filter (fun (scene, _) -> Property.holds Oracle.bends_right scene)
        |> List.map snd
        |> Array.of_list
      in
      Format.printf "attacking from %d bends-right frames...@."
        (Array.length seeds);
      (match
         Attack.search ~perception:prepared.Workflow.perception ~characterizer
           ~psi:psi_straight ~seeds ()
       with
      | Some c ->
          Format.printf
            "concrete counterexample found (seed %d, %d PGD steps):@.\
            \  suggested waypoint %.2f m (inside the straight band) while@.\
            \  the characterizer reports a right bend (logit %.3f).@."
            c.Attack.seed_index c.Attack.iterations c.Attack.output.(0)
            c.Attack.logit;
          Format.printf "the perturbed frame:@.%s@."
            (Camera.to_ascii setup.Workflow.scenario.Generator.camera c.Attack.image)
      | None ->
          Format.printf
            "no concrete counterexample found within the PGD budget;@.\
             the feature-level witness may be spurious.@.")
