(* Runtime assume-guarantee monitoring (Section 2.2).

   A proof obtained over the data-derived region S~ is conditional: it
   only covers executions whose cut-layer activations stay inside S~.
   This example deploys the monitor and streams frames at it:

   - in-distribution frames (same highway, same weather mix) should
     trigger (almost) no warnings;
   - distribution-shifted frames (heavy rain/fog, more sensor noise)
     violate the assumption and must raise warnings.

   Run with: dune exec examples/runtime_monitoring.exe *)

module Workflow = Dpv_core.Workflow
module Runtime = Dpv_monitor.Runtime
module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Rng = Dpv_tensor.Rng

let stream_frames monitor config rng ~n =
  Runtime.reset monitor;
  for _ = 1 to n do
    let scene = Generator.sample_scene config rng in
    let image = Generator.render_scene config rng scene in
    ignore (Runtime.infer monitor image)
  done;
  Runtime.stats monitor

let () =
  Format.printf "== runtime monitoring ==@.";
  let setup = Workflow.default_setup in
  let prepared = Workflow.prepare_cached ~cache_dir:"_cache" setup in
  let features = prepared.Workflow.bounds_features in
  let monitors =
    [
      ("box S~", Runtime.Box (Box_monitor.fit ~margin:0.02 features));
      ("octagon S~", Runtime.Poly (Polyhedron.fit_octagon ~margin:0.05 features));
    ]
  in
  let shifted_config =
    (* Footnote-7 variations pushed outside the training envelope. *)
    {
      setup.Workflow.scenario with
      Generator.rain_probability = 0.7;
      fog_probability = 0.3;
      curvature_range = (-0.045, 0.045);
      camera =
        {
          setup.Workflow.scenario.Generator.camera with
          Camera.noise_std = 0.08;
        };
    }
  in
  List.iter
    (fun (name, region) ->
      let monitor =
        Runtime.create ~network:prepared.Workflow.perception
          ~cut:setup.Workflow.cut ~region
      in
      let in_dist =
        stream_frames monitor setup.Workflow.scenario (Rng.create 3001) ~n:500
      in
      let shifted = stream_frames monitor shifted_config (Rng.create 3002) ~n:500 in
      Format.printf "%-12s in-distribution: %a@." name Runtime.pp_stats in_dist;
      Format.printf "%-12s shifted:         %a@." name Runtime.pp_stats shifted)
    monitors;
  Format.printf
    "@.Reading: near-zero warnings in distribution keep the conditional@.\
     proof in force; the warning rate under shift is the monitor doing@.\
     its job — the proof's assumption no longer holds there.@."
