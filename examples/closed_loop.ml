(* Closed-loop driving with the direct perception network.

   The paper motivates direct perception as the input to a vehicle
   controller.  This example closes the loop: the trained network's
   waypoint predictions drive a pure-pursuit controller along several
   roads, compared against the ground-truth oracle policy, with the
   assume-guarantee monitor watching the network's cut-layer activations
   on every frame.

   Run with: dune exec examples/closed_loop.exe *)

module Workflow = Dpv_core.Workflow
module Report = Dpv_core.Report
module Controller = Dpv_scenario.Controller
module Road = Dpv_scenario.Road
module Camera = Dpv_scenario.Camera
module Generator = Dpv_scenario.Generator
module Network = Dpv_nn.Network
module Runtime = Dpv_monitor.Runtime
module Polyhedron = Dpv_monitor.Polyhedron
module Rng = Dpv_tensor.Rng

let () =
  Format.printf "== closed-loop driving ==@.";
  let setup = Workflow.default_setup in
  let prepared = Workflow.prepare_cached ~cache_dir:"_cache" setup in
  let camera = setup.Workflow.scenario.Generator.camera in
  let monitor =
    Runtime.create ~network:prepared.Workflow.perception ~cut:setup.Workflow.cut
      ~region:
        (Runtime.Poly
           (Polyhedron.fit_octagon ~margin:0.05 prepared.Workflow.bounds_features))
  in
  let nn_policy image = fst (Runtime.infer monitor image) in
  let roads =
    [
      ("straight", Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:3 ());
      ("gentle right", Road.make ~curvature:(-0.006) ~curvature_rate:0.0 ~num_lanes:3 ());
      ("strong right", Road.make ~curvature:(-0.015) ~curvature_rate:0.0 ~num_lanes:3 ());
      ("left clothoid", Road.make ~curvature:0.004 ~curvature_rate:0.00004 ~num_lanes:3 ());
    ]
  in
  Format.printf "%s@."
    (Report.table_row
       [ "road"; "policy"; "max |offset|"; "rms offset"; "departures" ]);
  Format.printf "%s@." (Report.rule ());
  List.iter
    (fun (name, road) ->
      let run policy_name policy =
        let rng = Rng.create 61 in
        let trace =
          Controller.simulate ~rng ~camera ~road ~ego_lane:1
            ~initial_offset:0.4 ~policy ~sim:Controller.default_sim_config ()
        in
        Format.printf "%s@."
          (Report.table_row
             [
               name;
               policy_name;
               Printf.sprintf "%.2f m" trace.Controller.max_abs_offset;
               Printf.sprintf "%.2f m" trace.Controller.rms_offset;
               string_of_int trace.Controller.departures;
             ])
      in
      let state_ref = ref (0.0, 0.0, 0.0) in
      let oracle = Controller.ground_truth_policy ~road ~ego_lane:1 state_ref in
      let rng = Rng.create 61 in
      let oracle_trace =
        Controller.simulate_with_state ~rng ~camera ~road ~ego_lane:1
          ~initial_offset:0.4 ~state_ref ~policy:oracle
          ~sim:Controller.default_sim_config ()
      in
      Format.printf "%s@."
        (Report.table_row
           [
             name;
             "oracle";
             Printf.sprintf "%.2f m" oracle_trace.Controller.max_abs_offset;
             Printf.sprintf "%.2f m" oracle_trace.Controller.rms_offset;
             string_of_int oracle_trace.Controller.departures;
           ]);
      run "network" nn_policy)
    roads;
  Format.printf "@.monitor during the network runs: %a@." Runtime.pp_stats
    (Runtime.stats monitor);
  Format.printf
    "The network tracks the lane like the oracle does (same shape, larger@.\
     error); monitor warnings on these nominal roads stay near zero, so@.\
     the conditional safety proof remains in force while driving.@."
