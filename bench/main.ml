(* Benchmark & experiment harness.

   Regenerates every table/figure of the paper (see DESIGN.md section 5
   for the experiment index) and then times the computational kernels
   with Bechamel (one Test.make per experiment).

   Run with: dune exec bench/main.exe
   First run trains the perception network and caches it under _cache/. *)

module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Encode = Dpv_core.Encode
module Characterizer = Dpv_core.Characterizer
module Statistical = Dpv_core.Statistical
module Report = Dpv_core.Report
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Scene = Dpv_scenario.Scene
module Road = Dpv_scenario.Road
module Affordance = Dpv_scenario.Affordance
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Layer = Dpv_nn.Layer
module Box_domain = Dpv_absint.Box_domain
module Zonotope = Dpv_absint.Zonotope
module Propagate = Dpv_absint.Propagate
module Interval = Dpv_absint.Interval
module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Runtime = Dpv_monitor.Runtime
module Milp = Dpv_linprog.Milp
module Absguide = Dpv_core.Absguide
module Deeppoly = Dpv_absint.Deeppoly
module Campaign = Dpv_core.Campaign
module Tighten = Dpv_core.Tighten
module Refine = Dpv_core.Refine
module Attack = Dpv_core.Attack
module Property = Dpv_spec.Property
module Linexpr = Dpv_spec.Linexpr
module Risk = Dpv_spec.Risk
module Rng = Dpv_tensor.Rng
module Vec = Dpv_tensor.Vec
module Stats = Dpv_tensor.Stats

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let row = Report.table_row

(* ------------------------------------------------------------------ *)
(* FIG1: the workflow picture — visited-value box at the cut layer and
   verification of the gray close-to-output subnetwork only.           *)

let fig1 prepared =
  section "FIG1: workflow on shared close-to-output neurons (Figure 1)";
  let setup = prepared.Workflow.setup in
  let features = prepared.Workflow.bounds_features in
  let box = Box_monitor.to_box (Box_monitor.fit features) in
  Format.printf
    "bounds of the %d shared neurons at layer %d, from visited values@.\
     (the paper's [-0.1, 0.6]-style intervals):@."
    (Array.length box) setup.Workflow.cut;
  Array.iteri
    (fun i (iv : Interval.t) ->
      Format.printf "  n_%d^%d in [%.3f, %.3f]@." (i + 1) setup.Workflow.cut
        iv.Interval.lo iv.Interval.hi)
    box;
  let case =
    Workflow.run_case prepared ~property:Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ()) ~strategy:Workflow.Data_octagon
  in
  Format.printf "gray-subnetwork verification: %a@." Verify.pp_verdict
    case.Workflow.result.Verify.verdict;
  Format.printf "(only the suffix from layer %d is analyzed: %s)@."
    setup.Workflow.cut case.Workflow.result.Verify.encoding;
  case

(* ------------------------------------------------------------------ *)
(* TAB1: the 2x2 probability table of Section 3.                       *)

let tab1 prepared =
  section "TAB1: statistical table for the bends-right characterizer (Table 1)";
  let characterizer, report, val_acc =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  Format.printf "characterizer: train acc %.3f, val acc %.3f@."
    report.Characterizer.train_accuracy val_acc;
  (* Fresh labelled stream, disjoint from training, for the estimate. *)
  let rng = Rng.create 4242 in
  let pairs =
    Generator.scenes_and_images prepared.Workflow.setup.Workflow.scenario rng
      ~n:800
  in
  let images = Array.map snd pairs in
  let ground_truth =
    Array.map
      (fun (scene, _) -> Dpv_spec.Property.label Oracle.bends_right scene)
      pairs
  in
  let table =
    Statistical.estimate ~characterizer
      ~perception:prepared.Workflow.perception ~images ~ground_truth
  in
  Format.printf "%a@." Statistical.pp table;
  let lo, hi = Statistical.gamma_confidence table ~z:1.96 in
  Format.printf "gamma 95%% Wilson interval: [%.4f, %.4f]@." lo hi;
  (characterizer, table)

(* ------------------------------------------------------------------ *)
(* E1 / E5: strategy comparison — verdicts and bound widths.           *)

let e1_e5 prepared =
  section "E1+E5: far-left-while-bending-right, per bounds strategy (S 5, S 2.2)";
  Format.printf "%s@."
    (row [ "strategy"; "mean width"; "verdict"; "milp nodes"; "time (s)" ]);
  Format.printf "%s@." (Report.rule ());
  let cut = prepared.Workflow.setup.Workflow.cut in
  let features = prepared.Workflow.bounds_features in
  let strategies =
    [
      Workflow.Static Propagate.Box;
      Workflow.Static Propagate.Zonotope;
      Workflow.Static Propagate.Deeppoly;
      Workflow.Data_box;
      Workflow.Data_octagon;
    ]
  in
  let cases =
    List.map
      (fun strategy ->
        let width =
          match strategy with
          | Workflow.Static domain ->
              Box_domain.mean_width
                (Propagate.layer_bounds domain prepared.Workflow.perception
                   ~input_box:(Workflow.image_box prepared) ~cut)
          | Workflow.Data_box ->
              Box_domain.mean_width (Box_monitor.to_box (Box_monitor.fit features))
          | Workflow.Data_octagon ->
              Box_domain.mean_width
                (Polyhedron.bounding_box (Polyhedron.fit_octagon features))
        in
        let case =
          Workflow.run_case prepared ~property:Oracle.bends_right
            ~psi:(Workflow.psi_steer_far_left ()) ~strategy
        in
        let verdict_text =
          let s =
            Format.asprintf "%a" Verify.pp_verdict
              case.Workflow.result.Verify.verdict
          in
          String.sub s 0 (min 15 (String.length s))
        in
        Format.printf "%s@."
          (row
             [
               Workflow.strategy_name strategy;
               Printf.sprintf "%.3f" width;
               verdict_text;
               string_of_int
                 case.Workflow.result.Verify.milp_stats.Milp.nodes_explored;
               Printf.sprintf "%.3f" case.Workflow.result.Verify.wall_time_s;
             ]);
        (strategy, case))
      strategies
  in
  Format.printf
    "@.shape check: static bounds are orders of magnitude wider than@.\
     data bounds, and only the octagon S~ proves the property — the@.\
     paper's assume-guarantee observation.@.";
  cases

(* ------------------------------------------------------------------ *)
(* E2: the unprovable property, plus the provable frontier.            *)

let e2 prepared =
  section "E2: straight-while-bending-right is not provable (S 5)";
  let case =
    Workflow.run_case prepared ~property:Oracle.bends_right
      ~psi:(Workflow.psi_steer_straight ()) ~strategy:Workflow.Data_octagon
  in
  Format.printf "%a@." Report.pp_verdict_line case;
  (match
     Verify.optimize_output ~perception:prepared.Workflow.perception
       ~characterizer:case.Workflow.characterizer
       ~objective:(Linexpr.output Affordance.waypoint_index) ~sense:`Maximize
       ~bounds:(Verify.Data_octagon prepared.Workflow.bounds_features) ()
   with
  | Ok opt ->
      Format.printf
        "provable frontier: max suggested waypoint while phi fires = %.2f m@."
        opt.Verify.value
  | Error reason -> Format.printf "frontier query failed: %s@." reason);
  case

(* ------------------------------------------------------------------ *)
(* E2b: complete (MILP) vs incomplete (bound propagation) verification
   across psi thresholds — where the characterizer-aware MILP wins.     *)

let e2b prepared =
  section "E2b: MILP vs bound-propagation baseline, by far-left threshold";
  let characterizer, _, _ =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  let bounds = Verify.Data_octagon prepared.Workflow.bounds_features in
  Format.printf "%s@."
    (row [ "threshold (m)"; "milp verdict"; "milp (s)"; "baseline"; "base (s)" ]);
  Format.printf "%s@." (Report.rule ());
  let verdict_word r =
    match r.Verify.verdict with
    | Verify.Safe _ -> "SAFE"
    | Verify.Unsafe _ -> "unsafe"
    | Verify.Unknown _ -> "unknown"
  in
  let results =
    List.map
      (fun threshold ->
        let psi = Workflow.psi_steer_far_left ~threshold () in
        let complete =
          Verify.verify ~perception:prepared.Workflow.perception ~characterizer
            ~psi ~bounds ()
        in
        let incomplete =
          Verify.verify_incomplete ~perception:prepared.Workflow.perception
            ~characterizer ~psi ~bounds ()
        in
        Format.printf "%s@."
          (row
             [
               Printf.sprintf "%.1f" threshold;
               verdict_word complete;
               Printf.sprintf "%.3f" complete.Verify.wall_time_s;
               verdict_word incomplete;
               Printf.sprintf "%.4f" incomplete.Verify.wall_time_s;
             ]);
        (threshold, complete, incomplete))
      [ 0.5; 1.0; 1.5; 3.0; 6.0; 12.0; 20.0 ]
  in
  Format.printf
    "@.shape check: bound propagation only proves thresholds beyond the@.\
     raw output range; the MILP exploits the characterizer conjunction@.\
     and proves everything beyond the ~1.3 m frontier — at a time cost.@.";
  results

(* ------------------------------------------------------------------ *)
(* E3: characterizer trainability (information bottleneck).            *)

let e3 prepared =
  section "E3: characterizer accuracy by property and cut layer (S 5)";
  let cuts = Workflow.cut_options prepared.Workflow.setup in
  let dims = Network.dims prepared.Workflow.perception in
  Format.printf "%s@."
    (row
       ("property"
       :: List.map (fun c -> Printf.sprintf "cut %d (d=%d)" c dims.(c)) cuts));
  Format.printf "%s@." (Report.rule ());
  let results =
    List.map
      (fun (name, property) ->
        let cells =
          List.map
            (fun cut ->
              let _, report, val_acc =
                Workflow.train_characterizer ~cut prepared ~property
              in
              (cut, report.Characterizer.train_accuracy, val_acc))
            cuts
        in
        Format.printf "%s@."
          (row
             (name
             :: List.map
                  (fun (_, tr, va) -> Printf.sprintf "%.2f/%.2f" tr va)
                  cells));
        (name, cells))
      Oracle.all
  in
  Format.printf
    "@.shape check: road-geometry properties stay learnable; the@.\
     traffic-adjacent property hovers near 0.5 (coin flip), as the@.\
     information-bottleneck argument predicts.@.";
  results

(* ------------------------------------------------------------------ *)
(* E4: scalability — verification cost versus cut depth.               *)

let e4 prepared =
  section "E4: MILP cost versus cut layer (scalability claim, S 1/S 5)";
  Format.printf "%s@."
    (row
       [ "cut layer"; "feature dim"; "binaries"; "milp nodes"; "time (s)" ]);
  Format.printf "%s@." (Report.rule ());
  let dims = Network.dims prepared.Workflow.perception in
  let milp_options =
    (* Deep cuts explode; a node cap keeps the sweep bounded and an
       UNKNOWN verdict there is itself the scalability message. *)
    { Milp.default_options with find_first = true; max_nodes = 20_000 }
  in
  let results =
    List.map
      (fun cut ->
        let case =
          Workflow.run_case ~milp_options ~cut prepared
            ~property:Oracle.bends_right
            ~psi:(Workflow.psi_steer_far_left ()) ~strategy:Workflow.Data_box
        in
        Format.printf "%s@."
          (row
             [
               string_of_int cut;
               string_of_int dims.(cut);
               string_of_int case.Workflow.result.Verify.num_binaries;
               string_of_int
                 case.Workflow.result.Verify.milp_stats.Milp.nodes_explored;
               Printf.sprintf "%.3f" case.Workflow.result.Verify.wall_time_s;
             ]);
        (cut, case))
      (Workflow.cut_options prepared.Workflow.setup)
  in
  Format.printf
    "@.shape check: moving the cut toward the input inflates the feature@.\
     dimension, the binary count and the solve cost — the reason the@.\
     paper analyzes close-to-output layers only.@.";
  results

(* ------------------------------------------------------------------ *)
(* E6: statistical guarantee versus characterizer data size.           *)

let e6 prepared =
  section "E6: statistical guarantee vs characterizer training size (S 3)";
  Format.printf "%s@."
    (row [ "train frames"; "val acc"; "gamma"; "1 - gamma" ]);
  Format.printf "%s@." (Report.rule ());
  let results =
    List.map
      (fun n ->
        let setup =
          { prepared.Workflow.setup with Workflow.characterizer_samples = n }
        in
        let smaller = { prepared with Workflow.setup = setup } in
        let characterizer, _, val_acc =
          Workflow.train_characterizer smaller ~property:Oracle.bends_right
        in
        let rng = Rng.create (9000 + n) in
        let pairs =
          Generator.scenes_and_images setup.Workflow.scenario rng ~n:600
        in
        let table =
          Statistical.estimate ~characterizer
            ~perception:prepared.Workflow.perception
            ~images:(Array.map snd pairs)
            ~ground_truth:
              (Array.map
                 (fun (s, _) -> Dpv_spec.Property.label Oracle.bends_right s)
                 pairs)
        in
        Format.printf "%s@."
          (row
             [
               string_of_int n;
               Printf.sprintf "%.3f" val_acc;
               Printf.sprintf "%.4f" table.Statistical.gamma;
               Printf.sprintf "%.4f" (Statistical.guarantee table);
             ]);
        (n, table))
      [ 50; 100; 200; 400; 800 ]
  in
  Format.printf
    "@.shape check: gamma trends down as labelled data grows; the floor@.\
     is set by irreducibly ambiguous frames (fog hides far curvature),@.\
     which is why Section 3's statistical reading is needed at all.@.";
  results

(* ------------------------------------------------------------------ *)
(* E7: runtime monitor warning rates.                                  *)

let e7 prepared =
  section "E7: assume-guarantee monitor warning rates (S 2.2)";
  let setup = prepared.Workflow.setup in
  let features = prepared.Workflow.bounds_features in
  let shifted =
    {
      setup.Workflow.scenario with
      Generator.rain_probability = 0.7;
      fog_probability = 0.3;
      curvature_range = (-0.045, 0.045);
      camera =
        { setup.Workflow.scenario.Generator.camera with Camera.noise_std = 0.08 };
    }
  in
  Format.printf "%s@."
    (row [ "region"; "stream"; "warn rate"; "worst margin" ]);
  Format.printf "%s@." (Report.rule ());
  let results =
    List.concat_map
      (fun (name, region) ->
        let monitor =
          Runtime.create ~network:prepared.Workflow.perception
            ~cut:setup.Workflow.cut ~region
        in
        List.map
          (fun (stream_name, config, seed) ->
            Runtime.reset monitor;
            let rng = Rng.create seed in
            for _ = 1 to 400 do
              let scene = Generator.sample_scene config rng in
              ignore (Runtime.infer monitor (Generator.render_scene config rng scene))
            done;
            let stats = Runtime.stats monitor in
            Format.printf "%s@."
              (row
                 [
                   name;
                   stream_name;
                   Printf.sprintf "%.4f" stats.Runtime.warning_rate;
                   Printf.sprintf "%.3f" stats.Runtime.worst_margin;
                 ]);
            (name, stream_name, stats))
          [
            ("in-distribution", setup.Workflow.scenario, 51);
            ("shifted", shifted, 52);
          ])
      [
        ("box", Runtime.Box (Box_monitor.fit ~margin:0.02 features));
        ("octagon", Runtime.Poly (Polyhedron.fit_octagon ~margin:0.05 features));
      ]
  in
  Format.printf
    "@.shape check: warnings stay near zero in distribution and rise@.\
     sharply under weather/noise shift.@.";
  results

(* ------------------------------------------------------------------ *)
(* EXT1: OBBT ablation — encoding strength with and without LP-based
   bound tightening (ref [3]-style preprocessing).                      *)

let ext1 prepared =
  section "EXT1: LP bound tightening (OBBT) ablation";
  Format.printf "%s@."
    (row [ "variant"; "binaries"; "milp nodes"; "time (s)"; "verdict" ]);
  Format.printf "%s@." (Report.rule ());
  (* Cut 6 (16 features) leaves enough crossing ReLUs for tightening to
     matter; at the deepest cut the data bounds are already sharp. *)
  let characterizer, _, _ =
    Workflow.train_characterizer ~cut:6 prepared ~property:Oracle.bends_right
  in
  let bounds = Verify.Data_box (Workflow.features_at prepared ~cut:6) in
  let psi = Workflow.psi_steer_far_left () in
  let results =
    List.map
      (fun (name, tighten) ->
        let result =
          Verify.verify ~tighten ~perception:prepared.Workflow.perception
            ~characterizer ~psi ~bounds ()
        in
        let verdict_text =
          let s = Format.asprintf "%a" Verify.pp_verdict result.Verify.verdict in
          String.sub s 0 (min 15 (String.length s))
        in
        Format.printf "%s@."
          (row
             [
               name;
               string_of_int result.Verify.num_binaries;
               string_of_int result.Verify.milp_stats.Milp.nodes_explored;
               Printf.sprintf "%.3f" result.Verify.wall_time_s;
               verdict_text;
             ]);
        (name, result))
      [ ("plain", false); ("obbt", true) ]
  in
  Format.printf
    "@.finding: on this workload the data-derived bounds are already@.\
     tight enough that OBBT buys no binary reductions — the classic@.\
     preprocessing only pays when S is loose (static bounds) or the@.\
     suffix is deep.  The verdict never changes (soundness ablation).@.";
  results

(* ------------------------------------------------------------------ *)
(* EXT2: layer-wise abstraction refinement (future-work section).      *)

let ext2 prepared =
  section "EXT2: incremental abstraction refinement";
  let milp_options =
    { Milp.default_options with find_first = true; max_nodes = 20_000 }
  in
  let run name psi =
    let outcome =
      Refine.run ~milp_options ~max_steps:2 prepared
        ~property:Oracle.bends_right ~psi ~strategy:Workflow.Data_octagon
    in
    Format.printf "%s:@.%a@." name Refine.pp_outcome outcome;
    outcome
  in
  let e1 = run "E1 (far-left)" (Workflow.psi_steer_far_left ()) in
  let e2 = run "E2 (straight)" (Workflow.psi_steer_straight ()) in
  Format.printf
    "@.shape check: the provable property is proved at the coarsest@.\
     level; the unprovable one keeps its witness under refinement.@.";
  (e1, e2)

(* ------------------------------------------------------------------ *)
(* EXT3: adversarial realization of feature-level witnesses (S 5).     *)

let ext3 prepared =
  section "EXT3: adversarial counterexample search (PGD)";
  let characterizer, _, _ =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  let rng = Rng.create 1513 in
  let seeds =
    Generator.scenes_and_images prepared.Workflow.setup.Workflow.scenario rng
      ~n:300
    |> Array.to_list
    |> List.filter (fun (scene, _) -> Property.holds Oracle.bends_right scene)
    |> List.map snd
    |> Array.of_list
  in
  let psi = Workflow.psi_steer_straight () in
  let config = { Attack.default_config with steps = 150 } in
  let budget = min 25 (Array.length seeds) in
  let successes = ref 0 and iters = ref 0 in
  for i = 0 to budget - 1 do
    match
      Attack.search ~perception:prepared.Workflow.perception ~characterizer
        ~psi ~config ~seeds:[| seeds.(i) |] ()
    with
    | Some c ->
        incr successes;
        iters := !iters + c.Attack.iterations
    | None -> ()
  done;
  Format.printf "%s@." (row [ "seeds tried"; "successes"; "mean PGD steps" ]);
  Format.printf "%s@." (Report.rule ());
  Format.printf "%s@."
    (row
       [
         string_of_int budget;
         string_of_int !successes;
         (if !successes = 0 then "n/a"
          else Printf.sprintf "%.1f" (float_of_int !iters /. float_of_int !successes));
       ]);
  Format.printf
    "@.shape check: the E2 witness is realizable as concrete images from@.\
     many bends-right seeds — evidence the limitation is in the network,@.\
     as the paper suspected, not an artifact of the abstraction.@.";
  (budget, !successes)

(* ------------------------------------------------------------------ *)
(* EXT4: architecture ablation — the paper's networks are CNNs; compare
   a convolutional perception network against the MLP on accuracy and
   verification cost at their deepest cuts.                             *)

let ext4 mlp_prepared =
  section "EXT4: MLP vs CNN perception architecture";
  let cnn_prepared =
    Workflow.prepare_cached ~cache_dir:"_cache"
      (Workflow.cnn_setup Workflow.default_setup)
  in
  Format.printf "%s@."
    (row
       [ "architecture"; "params"; "wp MAE (m)"; "ori MAE (rad)"; "E1 verdict" ]);
  Format.printf "%s@." (Report.rule ());
  let results =
    List.map
      (fun (name, prepared) ->
        let case =
          Workflow.run_case prepared ~property:Oracle.bends_right
            ~psi:(Workflow.psi_steer_far_left ()) ~strategy:Workflow.Data_octagon
        in
        let verdict_text =
          let s =
            Format.asprintf "%a" Verify.pp_verdict case.Workflow.result.Verify.verdict
          in
          String.sub s 0 (min 15 (String.length s))
        in
        Format.printf "%s@."
          (row
             [
               name;
               string_of_int (Network.num_parameters prepared.Workflow.perception);
               Printf.sprintf "%.3f" prepared.Workflow.val_mae.(0);
               Printf.sprintf "%.4f" prepared.Workflow.val_mae.(1);
               verdict_text;
             ]);
        (name, prepared, case))
      [ ("mlp", mlp_prepared); ("cnn", cnn_prepared) ]
  in
  Format.printf
    "@.shape check: the convolutional network reaches comparable accuracy@.\
     with ~3x fewer parameters, and verification at the deepest cut is@.\
     unaffected by the prefix architecture — the layer abstraction at@.\
     work, exactly as the paper argues for million-neuron networks.@.";
  results

(* ------------------------------------------------------------------ *)
(* EXT5: parallel branch-and-bound — sequential vs work-stealing search
   on the same queries, plus the deadline degradation path.  Also emits
   the machine-readable BENCH_milp.json so later changes can be checked
   against this baseline.                                              *)

module Milp_par = Dpv_linprog.Milp_par
module Clock = Dpv_linprog.Clock

let bench_json_path = "BENCH_milp.json"

(* Subset-sum of even weights against an odd target: every deep LP
   relaxation stays fractional-feasible while no integer point exists,
   so branch-and-bound faces an astronomically large proof tree — the
   deliberately hard instance for the deadline row. *)
let hard_milp n =
  let m = ref (Dpv_linprog.Lp.create ()) in
  let vars =
    Array.init n (fun _ ->
        let model, v = Dpv_linprog.Lp.add_var ~kind:Dpv_linprog.Lp.Binary !m in
        m := model;
        v)
  in
  let terms = Array.to_list (Array.map (fun v -> (2.0, v)) vars) in
  m :=
    Dpv_linprog.Lp.add_constraint !m terms Dpv_linprog.Lp.Eq
      (float_of_int (n + 1));
  !m

let verdict_word r =
  match r.Verify.verdict with
  | Verify.Safe _ -> "SAFE"
  | Verify.Unsafe _ -> "unsafe"
  | Verify.Unknown _ -> "unknown"

let milp_result_word = function
  | Dpv_linprog.Milp.Optimal _ -> "optimal"
  | Dpv_linprog.Milp.Feasible _ -> "feasible"
  | Dpv_linprog.Milp.Infeasible -> "infeasible"
  | Dpv_linprog.Milp.Unbounded -> "unbounded"
  | Dpv_linprog.Milp.Node_limit -> "node-limit"
  | Dpv_linprog.Milp.Timeout -> "timeout"

(* One measured MILP query for the JSON baseline — either a full
   verification query or a synthetic smoke instance. *)
type bench_query = {
  bq_name : string;
  bq_workers : int;
  bq_verdict : string;
  bq_wall : float;
  bq_stats : Milp.stats;
}

let warm_rate (s : Milp.stats) =
  let total = s.Milp.warm_starts + s.Milp.cold_starts in
  if total = 0 then 0.0
  else float_of_int s.Milp.warm_starts /. float_of_int total

(* Pure-LP microbench: one deterministic sparse bounded LP, timed three
   ways — fresh revised-engine solves, fresh dense-reference solves, and
   persistent-handle re-solves after a bound flip (the branch-and-bound
   inner loop).  The warm:cold ratio is the headline number of this PR. *)
type lp_micro = {
  mb_vars : int;
  mb_rows : int;
  mb_reps : int;
  mb_cold_s : float;
  mb_dense_s : float;
  mb_warm_s : float;
}

let micro_lp ~vars ~rows =
  let rng = Rng.create 4242 in
  let m = ref (Dpv_linprog.Lp.create ()) in
  let vs =
    Array.init vars (fun _ ->
        let model, v =
          Dpv_linprog.Lp.add_var ~lo:0.0
            ~up:(Rng.uniform rng ~lo:1.0 ~hi:10.0)
            !m
        in
        m := model;
        v)
  in
  for _ = 1 to rows do
    (* ~4 variables per row: the sparsity of a big-M ReLU encoding. *)
    let terms =
      List.init 4 (fun _ ->
          (Rng.uniform rng ~lo:(-2.0) ~hi:3.0, Rng.pick rng vs))
    in
    m :=
      Dpv_linprog.Lp.add_constraint !m terms Dpv_linprog.Lp.Le
        (Rng.uniform rng ~lo:1.0 ~hi:10.0)
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, v)) vs)
  in
  m := Dpv_linprog.Lp.set_objective !m Dpv_linprog.Lp.Maximize obj;
  (!m, vs.(0))

let lp_microbench ~reps () =
  let vars = 80 and rows = 60 in
  let model, flip_var = micro_lp ~vars ~rows in
  let time f =
    let started = Clock.now_s () in
    f ();
    Clock.now_s () -. started
  in
  let cold_s =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Dpv_linprog.Simplex.solve model)
        done)
  in
  let dense_s =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Dpv_linprog.Simplex.solve_dense model)
        done)
  in
  let handle = Dpv_linprog.Simplex.create model in
  ignore (Dpv_linprog.Simplex.resolve handle);
  let lo0, up0 = Dpv_linprog.Lp.var_bounds model flip_var in
  let halved = Option.map (fun u -> u /. 2.0) up0 in
  let warm_s =
    time (fun () ->
        for i = 1 to reps do
          let up = if i mod 2 = 0 then up0 else halved in
          ignore
            (Dpv_linprog.Simplex.resolve
               ~bound_changes:[ (flip_var, lo0, up) ]
               handle)
        done)
  in
  Format.printf
    "lp-microbench (%d vars, %d rows, %d reps): cold %.1fms, dense %.1fms, \
     warm re-solve %.1fms (%.1fx vs cold)@."
    vars rows reps (1e3 *. cold_s) (1e3 *. dense_s) (1e3 *. warm_s)
    (cold_s /. Float.max 1e-9 warm_s);
  {
    mb_vars = vars;
    mb_rows = rows;
    mb_reps = reps;
    mb_cold_s = cold_s;
    mb_dense_s = dense_s;
    mb_warm_s = warm_s;
  }

let knapsack_milp n =
  let rng = Rng.create 99 in
  let m = ref (Dpv_linprog.Lp.create ()) in
  let vars =
    Array.init n (fun _ ->
        let model, v = Dpv_linprog.Lp.add_var ~kind:Dpv_linprog.Lp.Binary !m in
        m := model;
        v)
  in
  let weights = Array.map (fun _ -> Rng.uniform rng ~lo:1.0 ~hi:9.0) vars in
  let values = Array.map (fun _ -> Rng.uniform rng ~lo:1.0 ~hi:9.0) vars in
  let terms f = Array.to_list (Array.mapi (fun i v -> (f.(i), v)) vars) in
  m :=
    Dpv_linprog.Lp.add_constraint !m (terms weights) Dpv_linprog.Lp.Le
      (0.4 *. Array.fold_left ( +. ) 0.0 weights);
  Dpv_linprog.Lp.set_objective !m Dpv_linprog.Lp.Maximize (terms values)

(* Fault-injection overhead: the same knapsack instance solved clean,
   with an injected pivot corruption (caught by the post-solve residual
   check and rescued in-engine by the dense fallback), and with injected
   numerical trouble that escapes the engine (re-solved via the
   query-level dense-retry rung).  The deltas are the price of each
   recovery layer. *)
type fault_bench = {
  fb_clean_s : float;
  fb_fallback_s : float;
  fb_fallbacks : int;   (** in-engine dense rescues during the solve *)
  fb_retry_s : float;   (** wall including the failed attempt *)
  fb_retries : int;     (** query-level dense re-solves (0 or 1) *)
}

let fault_injection_bench () =
  let module Faults = Dpv_linprog.Faults in
  let model = knapsack_milp 16 in
  let options = { Milp.default_options with workers = 1 } in
  let timed f =
    let started = Clock.now_s () in
    let r = f () in
    (r, Clock.now_s () -. started)
  in
  let (_, clean_stats), clean_s =
    timed (fun () -> Milp_par.solve_with_stats ~options model)
  in
  ignore clean_stats;
  let (_, fb_stats), fallback_s =
    Fun.protect ~finally:Faults.disable (fun () ->
        Faults.configure ~seed:7 [ (Faults.Pivot_corrupt, 1) ];
        timed (fun () -> Milp_par.solve_with_stats ~options model))
  in
  let retries = ref 0 in
  let (_, _), retry_s =
    Fun.protect ~finally:Faults.disable (fun () ->
        Faults.configure ~seed:7 [ (Faults.Lp_trouble, 1) ];
        timed (fun () ->
            try Milp_par.solve_with_stats ~options model
            with Dpv_linprog.Simplex.Numerical_trouble _ ->
              incr retries;
              Milp_par.solve_with_stats
                ~options:{ options with Milp.lp_dense = true }
                model))
  in
  let fb =
    {
      fb_clean_s = clean_s;
      fb_fallback_s = fallback_s;
      fb_fallbacks = fb_stats.Milp.fallbacks;
      fb_retry_s = retry_s;
      fb_retries = !retries;
    }
  in
  Format.printf
    "fault-injection (knapsack:16): clean %.1fms, engine fallback %.1fms \
     (%d fallbacks), dense retry %.1fms (%d retries)@."
    (1e3 *. fb.fb_clean_s) (1e3 *. fb.fb_fallback_s) fb.fb_fallbacks
    (1e3 *. fb.fb_retry_s) fb.fb_retries;
  fb

(* EXT8: abstraction-guided branch-and-bound.  Deterministic synthetic
   Dense/ReLU suffixes (no trained network, so smoke mode runs the same
   rows as the full bench): each feasibility query is solved by the
   plain sequential solver and by the DeepPoly-guided one, and the
   explored-node counts are compared.  The guide only discharges
   provably-dead subtrees, so the verdicts must agree exactly — the
   bench fails hard if they ever diverge. *)

type absint_row = {
  ab_name : string;
  ab_verdict : string;
  ab_nodes_plain : int;
  ab_nodes_guided : int;
  ab_nodes_width : int;  (* guided, with Bound_width branching *)
  ab_phase_fixes : int;
  ab_prunes : int;
}

(* Random Dense/ReLU stack: dims = [input; hidden...; output]. *)
let ext8_random_stack ~seed dims =
  let rng = Rng.create seed in
  let dense ~inp ~out =
    Layer.dense
      ~weights:
        (Dpv_tensor.Mat.of_rows
           (Array.init out (fun _ ->
                Array.init inp (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0))))
      ~bias:(Array.init out (fun _ -> Rng.uniform rng ~lo:(-0.3) ~hi:0.3))
  in
  let rec build inp = function
    | [] -> []
    | [ out ] -> [ dense ~inp ~out ]
    | out :: rest -> dense ~inp ~out :: Layer.Relu :: build out rest
  in
  match dims with
  | inp :: rest when rest <> [] -> Network.create ~input_dim:inp (build inp rest)
  | _ -> invalid_arg "ext8_random_stack"

(* A characterizer head whose logit is constant 1: the phi-side
   constraint is inert, so the query is purely "can the suffix output
   reach psi over the box". *)
let ext8_inert_head dim =
  Network.create ~input_dim:dim
    [
      Layer.dense
        ~weights:(Dpv_tensor.Mat.create ~rows:1 ~cols:dim 0.0)
        ~bias:[| 1.0 |];
    ]

let ext8_sampled_max suffix ~dim =
  let rng = Rng.create 4242 in
  let box = Box_domain.uniform ~dim ~lo:(-1.0) ~hi:1.0 in
  let best = ref neg_infinity in
  for _ = 1 to 2000 do
    let y = Network.forward suffix (Box_domain.sample rng box) in
    if y.(0) > !best then best := y.(0)
  done;
  !best

(* One EXT8 row: [blend] places the psi threshold between the sampled
   concrete maximum (blend = 0) and the DeepPoly output upper bound
   (blend = 1).  Thresholds past the DeepPoly bound are root-prunable
   by the guide but still force the plain solver to branch (its big-M
   LP relaxation uses the looser box bounds). *)
let ext8_row ~name ~seed ~dims ~blend =
  let suffix = ext8_random_stack ~seed dims in
  let dim = List.hd dims in
  let feature_box = Box_domain.uniform ~dim ~lo:(-1.0) ~hi:1.0 in
  let dp_hi =
    (Propagate.output_bounds Propagate.Deeppoly suffix ~input_box:feature_box).(0)
      .Interval.hi
  in
  let sampled = ext8_sampled_max suffix ~dim in
  let threshold = sampled +. (blend *. (dp_hi -. sampled)) in
  let psi = Risk.make ~name [ Risk.output_ge 0 threshold ] in
  let head = ext8_inert_head dim in
  let shared = Encode.build_shared ~suffix ~feature_box () in
  let solve ~absint ~branch_rule =
    let milp_options =
      { Verify.default_milp_options with Milp.workers = 1; branch_rule }
    in
    Verify.run_query ~milp_options ~absint ~characterizer_margin:0.0 ~shared
      ~head ~psi ~conditional:false ()
  in
  let word r =
    match r.Verify.verdict with
    | Verify.Safe _ -> "safe"
    | Verify.Unsafe _ -> "unsafe"
    | Verify.Unknown _ -> "unknown"
  in
  let plain = solve ~absint:false ~branch_rule:Milp.Most_fractional in
  let guided = solve ~absint:true ~branch_rule:Milp.Most_fractional in
  let width = solve ~absint:true ~branch_rule:Milp.Bound_width in
  if word plain <> word guided || word plain <> word width then
    failwith
      (Printf.sprintf
         "EXT8 %s: guided verdict diverged (plain %s, guided %s, width %s)"
         name (word plain) (word guided) (word width));
  {
    ab_name = name;
    ab_verdict = word plain;
    ab_nodes_plain = plain.Verify.milp_stats.Milp.nodes_explored;
    ab_nodes_guided = guided.Verify.milp_stats.Milp.nodes_explored;
    ab_nodes_width = width.Verify.milp_stats.Milp.nodes_explored;
    ab_phase_fixes = guided.Verify.milp_stats.Milp.absint_phase_fixes;
    ab_prunes = guided.Verify.milp_stats.Milp.absint_prunes;
  }

let ext8_absint_bench () =
  section "EXT8: abstraction-guided search (absint on/off node counts)";
  let rows =
    [
      (* Safe rows: threshold above the reachable set but below the
         DeepPoly root bound, so both solvers must search; the guided
         one prunes subtrees as phase fixings tighten bounds. *)
      ext8_row ~name:"ext8/relu18-hard-safe" ~seed:7 ~dims:[ 5; 10; 8; 1 ]
        ~blend:0.2;
      ext8_row ~name:"ext8/relu18-mid-safe" ~seed:1 ~dims:[ 5; 10; 8; 1 ]
        ~blend:0.2;
      ext8_row ~name:"ext8/relu18-easy-safe" ~seed:4 ~dims:[ 5; 10; 8; 1 ]
        ~blend:0.6;
      (* Threshold past the DeepPoly bound: the guide discharges the
         root outright while the box-relaxation LP still branches. *)
      ext8_row ~name:"ext8/relu18-boxgap" ~seed:1 ~dims:[ 5; 10; 8; 1 ]
        ~blend:1.05;
      (* A reachable threshold: both sides find a witness. *)
      ext8_row ~name:"ext8/relu18-unsafe" ~seed:5 ~dims:[ 5; 10; 8; 1 ]
        ~blend:(-0.2);
    ]
  in
  Format.printf "%s@."
    (row
       [
         "query"; "verdict"; "nodes plain"; "nodes guided"; "nodes width";
         "fixes"; "prunes";
       ]);
  Format.printf "%s@." (Report.rule ());
  List.iter
    (fun r ->
      Format.printf "%s@."
        (row
           [
             r.ab_name;
             r.ab_verdict;
             string_of_int r.ab_nodes_plain;
             string_of_int r.ab_nodes_guided;
             string_of_int r.ab_nodes_width;
             string_of_int r.ab_phase_fixes;
             string_of_int r.ab_prunes;
           ]))
    rows;
  (match
     List.filter
       (fun r -> r.ab_verdict = "safe" && r.ab_nodes_guided >= r.ab_nodes_plain)
       rows
   with
  | [] -> ()
  | worse ->
      List.iter
        (fun r ->
          Format.printf
            "WARNING %s: guided search explored %d nodes vs %d plain@."
            r.ab_name r.ab_nodes_guided r.ab_nodes_plain)
        worse);
  rows

(* EXT9: incremental prefix-cached guide vs from-scratch re-propagation.
   Same synthetic stacks as EXT8.  Both modes run the identical engine —
   scratch just forces every consult to invalidate back to layer 1 — so
   the verdicts, node counts, prunes and phase fixes must be
   bit-identical; the bench fails hard on any divergence.  What changes
   is the work per consult, measured directly by wrapping each guide
   instance in a monotonic timer. *)

type ext9_row = {
  e9_name : string;
  e9_verdict : string;
  e9_nodes : int;
  e9_consults : int;
  e9_prunes : int;
  e9_fixes : int;
  e9_scratch_ns : int;  (* mean guide time per consult, from-scratch *)
  e9_incr_ns : int;     (* mean guide time per consult, incremental *)
  e9_layers_scratch : int;
  e9_layers_incr : int;
  e9_speedup : float;
}

let ext9_guided_solve ~scratch ~suffix ~head ~feature_box ~psi =
  let shared = Encode.build_shared ~suffix ~feature_box () in
  let encoding =
    Encode.complete shared ~head ~characterizer_margin:0.0 ~psi ()
  in
  let factory =
    Absguide.factory ~suffix ~head ~feature_box
      ~suffix_relus:(Encode.suffix_relu_vars_of_shared shared)
      ~head_relus:encoding.Encode.head_relu_vars ~psi
      ~characterizer_margin:0.0 ()
  in
  let guide_ns = ref 0 and consults = ref 0 in
  let timed =
    {
      Milp.new_guide =
        (fun () ->
          let g = factory.Milp.new_guide () in
          fun node ->
            let t0 = Clock.monotonic_ns () in
            let r = g node in
            guide_ns := !guide_ns + (Clock.monotonic_ns () - t0);
            incr consults;
            r);
      guide_stats = factory.Milp.guide_stats;
    }
  in
  let options =
    {
      Verify.default_milp_options with
      Milp.workers = 1;
      absint = Some timed;
      branch_rule = Milp.Guide_order;
    }
  in
  Fun.protect
    ~finally:(fun () -> Absguide.set_scratch false)
    (fun () ->
      Absguide.set_scratch scratch;
      let result, stats = Milp.solve_with_stats ~options encoding.Encode.model in
      (result, stats, !guide_ns, !consults))

let ext9_word = function
  | Milp.Infeasible -> "safe"
  | Milp.Optimal _ | Milp.Feasible _ -> "unsafe"
  | _ -> "unknown"

let ext9_row ~name ~seed ~dims ~blend =
  let suffix = ext8_random_stack ~seed dims in
  let dim = List.hd dims in
  let feature_box = Box_domain.uniform ~dim ~lo:(-1.0) ~hi:1.0 in
  let dp_hi =
    (Propagate.output_bounds Propagate.Deeppoly suffix ~input_box:feature_box).(0)
      .Interval.hi
  in
  let sampled = ext8_sampled_max suffix ~dim in
  let threshold = sampled +. (blend *. (dp_hi -. sampled)) in
  let psi = Risk.make ~name [ Risk.output_ge 0 threshold ] in
  let head = ext8_inert_head dim in
  (* Best of three, with scratch and incremental samples interleaved:
     the node sequence is deterministic per mode, so the minimum total
     guide time is the least-noisy sample, and alternating modes keeps
     host-load drift from landing entirely on one side of the ratio.
     Compact before each pair so heap layout from earlier bench
     sections does not leak into the comparison. *)
  let best_s = ref None and best_i = ref None in
  for _ = 1 to 3 do
    Gc.compact ();
    List.iter
      (fun scratch ->
        let sample =
          ext9_guided_solve ~scratch ~suffix ~head ~feature_box ~psi
        in
        let _, _, ns, _ = sample in
        let best = if scratch then best_s else best_i in
        match !best with
        | Some (_, _, bns, _) when bns <= ns -> ()
        | _ -> best := Some sample)
      [ true; false ]
  done;
  let s_res, s_stats, s_ns, s_consults = Option.get !best_s in
  let i_res, i_stats, i_ns, i_consults = Option.get !best_i in
  if
    ext9_word s_res <> ext9_word i_res
    || s_stats.Milp.nodes_explored <> i_stats.Milp.nodes_explored
    || s_stats.Milp.absint_prunes <> i_stats.Milp.absint_prunes
    || s_stats.Milp.absint_phase_fixes <> i_stats.Milp.absint_phase_fixes
    || s_consults <> i_consults
  then
    failwith
      (Printf.sprintf
         "EXT9 %s: incremental diverged from scratch (%s/%d nodes vs %s/%d)"
         name (ext9_word s_res) s_stats.Milp.nodes_explored (ext9_word i_res)
         i_stats.Milp.nodes_explored);
  let per total n = if n = 0 then 0 else total / n in
  {
    e9_name = name;
    e9_verdict = ext9_word i_res;
    e9_nodes = i_stats.Milp.nodes_explored;
    e9_consults = i_consults;
    e9_prunes = i_stats.Milp.absint_prunes;
    e9_fixes = i_stats.Milp.absint_phase_fixes;
    e9_scratch_ns = per s_ns s_consults;
    e9_incr_ns = per i_ns i_consults;
    e9_layers_scratch = s_stats.Milp.absint_layers_propagated;
    e9_layers_incr = i_stats.Milp.absint_layers_propagated;
    e9_speedup =
      (if i_ns = 0 then 0.0 else float_of_int s_ns /. float_of_int i_ns);
  }

let ext9_incremental_bench () =
  section "EXT9: incremental guide (prefix-cached DeepPoly vs from-scratch)";
  let rows =
    [
      ext9_row ~name:"ext9/relu18-safe" ~seed:7 ~dims:[ 5; 10; 8; 1 ]
        ~blend:0.2;
      ext9_row ~name:"ext9/relu64-hard-safe" ~seed:13
        ~dims:[ 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 1 ]
        ~blend:0.05;
      ext9_row ~name:"ext9/relu64-mid-safe" ~seed:19
        ~dims:[ 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 1 ]
        ~blend:0.05;
      ext9_row ~name:"ext9/relu64-unsafe" ~seed:23
        ~dims:[ 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 1 ]
        ~blend:0.05;
    ]
  in
  Format.printf "%s@."
    (row
       [
         "query"; "verdict"; "nodes"; "consults"; "scratch ns"; "incr ns";
         "layers s/i"; "speedup";
       ]);
  Format.printf "%s@." (Report.rule ());
  List.iter
    (fun r ->
      Format.printf "%s@."
        (row
           [
             r.e9_name;
             r.e9_verdict;
             string_of_int r.e9_nodes;
             string_of_int r.e9_consults;
             string_of_int r.e9_scratch_ns;
             string_of_int r.e9_incr_ns;
             Printf.sprintf "%d/%d" r.e9_layers_scratch r.e9_layers_incr;
             Printf.sprintf "%.2fx" r.e9_speedup;
           ]))
    rows;
  (match
     List.find_opt (fun r -> r.e9_name = "ext9/relu64-hard-safe") rows
   with
  | Some r when r.e9_speedup < 3.0 ->
      Format.printf
        "WARNING %s: guide time per node only improved %.2fx (target 3x); \
         noisy host?@."
        r.e9_name r.e9_speedup
  | _ -> ());
  rows

(* Resumable-engine microbench: one 16-relu stack, measuring the raw
   re-propagation cost after an invalidation [depth] relu layers above
   the output — the per-node work a B&B consult pays when a sibling
   switch rolls the prefix cache back that far.  Also samples minor-heap
   words per propagate: the steady-state transfer loop is supposed to
   allocate nothing. *)

type absint_micro_depth = { amd_depth : int; amd_ns : int; amd_layers : int }

type absint_micro = {
  am_relus : int;
  am_scratch_ns : int;
  am_scratch_layers : int;
  am_minor_words : float;
  am_depths : absint_micro_depth list;
}

let absint_microbench () =
  section "absint microbench (Resumable re-propagation, 16-relu stack)";
  let relus = 16 and width = 4 in
  let dims = (width :: List.init relus (fun _ -> width)) @ [ 1 ] in
  let net = ext8_random_stack ~seed:11 dims in
  let plan = Deeppoly.Resumable.plan net in
  let n = Deeppoly.Resumable.num_layers plan in
  let box = Box_domain.uniform ~dim:width ~lo:(-1.0) ~hi:1.0 in
  let st = Deeppoly.Resumable.create plan box in
  let phase_arrays =
    Array.init (n + 1) (fun l ->
        if l >= 1 && Deeppoly.Resumable.is_relu plan l then
          Array.make (Deeppoly.Resumable.layer_dim plan l) Deeppoly.Unknown
        else [||])
  in
  let phases l = phase_arrays.(l) in
  ignore (Deeppoly.Resumable.propagate st ~phases);
  let relu_layers =
    List.filter
      (fun l -> Deeppoly.Resumable.is_relu plan l)
      (List.init n (fun i -> i + 1))
  in
  let measure from_layer =
    let iters = 2000 in
    for _ = 1 to 100 do
      Deeppoly.Resumable.invalidate_from st from_layer;
      ignore (Deeppoly.Resumable.propagate st ~phases)
    done;
    Deeppoly.Resumable.invalidate_from st from_layer;
    let layers = Deeppoly.Resumable.propagate st ~phases in
    let w0 = Gc.minor_words () in
    let t0 = Clock.monotonic_ns () in
    for _ = 1 to iters do
      Deeppoly.Resumable.invalidate_from st from_layer;
      ignore (Deeppoly.Resumable.propagate st ~phases)
    done;
    let ns = (Clock.monotonic_ns () - t0) / iters in
    let words = (Gc.minor_words () -. w0) /. float_of_int iters in
    (ns, layers, words)
  in
  let scratch_ns, scratch_layers, scratch_words = measure 1 in
  let depths =
    List.map
      (fun d ->
        let from_layer =
          List.nth relu_layers (List.length relu_layers - d)
        in
        let ns, layers, _ = measure from_layer in
        { amd_depth = d; amd_ns = ns; amd_layers = layers })
      [ 1; 4; 16 ]
  in
  Format.printf "%s@." (row [ "invalidation"; "layers"; "ns/propagate" ]);
  Format.printf "%s@." (Report.rule ());
  Format.printf "%s@."
    (row
       [
         "scratch"; string_of_int scratch_layers; string_of_int scratch_ns;
       ]);
  List.iter
    (fun d ->
      Format.printf "%s@."
        (row
           [
             Printf.sprintf "depth %d" d.amd_depth;
             string_of_int d.amd_layers;
             string_of_int d.amd_ns;
           ]))
    depths;
  Format.printf "minor words per propagate (steady state): %.2f@."
    scratch_words;
  {
    am_relus = relus;
    am_scratch_ns = scratch_ns;
    am_scratch_layers = scratch_layers;
    am_minor_words = scratch_words;
    am_depths = depths;
  }

let write_bench_json ~mode ~par_workers ~degraded ~queries ~speedups
    ~deadline:(deadline_s, deadline_word, deadline_wall, deadline_nodes)
    ~micro ~faults ~absint_rows ~ext9_rows ~absint_micro =
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let query_json q =
        let s = q.bq_stats in
        Printf.sprintf
          "    {\"name\": %S, \"workers\": %d, \"verdict\": %S, \
           \"wall_s\": %.6f, \"nodes\": %d, \"lps\": %d, \"steals\": %d, \
           \"max_queue_depth\": %d, \"lp_time_s\": %.6f, \"pivots\": %d, \
           \"warm_starts\": %d, \"cold_starts\": %d, \
           \"warm_start_hit_rate\": %.4f}"
          q.bq_name q.bq_workers q.bq_verdict q.bq_wall s.Milp.nodes_explored
          s.Milp.lp_solved s.Milp.steals s.Milp.max_queue_depth s.Milp.lp_time_s
          s.Milp.pivots s.Milp.warm_starts s.Milp.cold_starts (warm_rate s)
      in
      let speedup_json (name, factor) =
        Printf.sprintf "    {\"query\": %S, \"factor\": %.4f}" name factor
      in
      let absint_json r =
        Printf.sprintf
          "    {\"name\": %S, \"verdict\": %S, \"nodes_plain\": %d, \
           \"nodes_guided\": %d, \"nodes_guided_width\": %d, \
           \"phase_fixes\": %d, \"prunes\": %d}"
          r.ab_name r.ab_verdict r.ab_nodes_plain r.ab_nodes_guided
          r.ab_nodes_width r.ab_phase_fixes r.ab_prunes
      in
      let ext9_json r =
        Printf.sprintf
          "    {\"name\": %S, \"verdict\": %S, \"nodes\": %d, \
           \"consults\": %d, \"prunes\": %d, \"phase_fixes\": %d, \
           \"guide_ns_scratch\": %d, \"guide_ns_incremental\": %d, \
           \"layers_scratch\": %d, \"layers_incremental\": %d, \
           \"guide_speedup\": %.2f}"
          r.e9_name r.e9_verdict r.e9_nodes r.e9_consults r.e9_prunes
          r.e9_fixes r.e9_scratch_ns r.e9_incr_ns r.e9_layers_scratch
          r.e9_layers_incr r.e9_speedup
      in
      let micro_depth_json d =
        Printf.sprintf "{\"depth\": %d, \"ns\": %d, \"layers\": %d}"
          d.amd_depth d.amd_ns d.amd_layers
      in
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"dpv-bench-milp/7\",\n\
        \  \"mode\": %S,\n\
        \  \"host_recommended_domains\": %d,\n\
        \  \"parallel_workers\": %d,\n\
        \  \"task_batch\": %d,\n\
        \  \"degraded\": %b,\n\
        \  \"queries\": [\n%s\n  ],\n\
        \  \"speedups\": [\n%s\n  ],\n\
        \  \"deadline\": {\"time_limit_s\": %.3f, \"result\": %S, \
         \"wall_s\": %.6f, \"nodes\": %d},\n\
        \  \"lp_microbench\": {\"vars\": %d, \"rows\": %d, \"reps\": %d, \
         \"cold_solve_s\": %.6f, \"dense_solve_s\": %.6f, \
         \"warm_resolve_s\": %.6f},\n\
        \  \"fault_injection\": {\"clean_wall_s\": %.6f, \
         \"fallback_wall_s\": %.6f, \"fallbacks\": %d, \
         \"retry_wall_s\": %.6f, \"retries\": %d},\n\
        \  \"absint\": [\n%s\n  ],\n\
        \  \"absint_incremental\": [\n%s\n  ],\n\
        \  \"absint_microbench\": {\"relus\": %d, \"scratch_ns\": %d, \
         \"scratch_layers\": %d, \"minor_words_per_propagate\": %.2f, \
         \"depths\": [%s]},\n\
        \  \"metrics\": %s\n\
         }\n"
        mode
        (Domain.recommended_domain_count ())
        par_workers Milp.default_options.Milp.task_batch degraded
        (String.concat ",\n" (List.map query_json queries))
        (String.concat ",\n" (List.map speedup_json speedups))
        deadline_s deadline_word deadline_wall deadline_nodes micro.mb_vars
        micro.mb_rows micro.mb_reps micro.mb_cold_s micro.mb_dense_s
        micro.mb_warm_s faults.fb_clean_s faults.fb_fallback_s
        faults.fb_fallbacks faults.fb_retry_s faults.fb_retries
        (String.concat ",\n" (List.map absint_json absint_rows))
        (String.concat ",\n" (List.map ext9_json ext9_rows))
        absint_micro.am_relus absint_micro.am_scratch_ns
        absint_micro.am_scratch_layers absint_micro.am_minor_words
        (String.concat ", " (List.map micro_depth_json absint_micro.am_depths))
        (Dpv_obs.Metrics.to_json ~indent:"  " (Dpv_obs.Metrics.snapshot ())));
  Format.printf "@.baseline written to %s@." bench_json_path

(* Speedup of the parallel rows over the sequential rows, per query. *)
let compute_speedups queries =
  let names =
    List.sort_uniq compare (List.map (fun q -> q.bq_name) queries)
  in
  List.filter_map
    (fun name ->
      let find w =
        List.find_opt (fun q -> q.bq_name = name && q.bq_workers = w) queries
      in
      let par =
        List.find_opt (fun q -> q.bq_name = name && q.bq_workers > 1) queries
      in
      match (find 1, par) with
      | Some seq, Some par when par.bq_wall > 0.0 ->
          Some (name, seq.bq_wall /. par.bq_wall)
      | _ -> None)
    names

let ext5 prepared =
  section "EXT5: parallel branch-and-bound (work stealing) + deadlines";
  let par_workers = 4 in
  let degraded = Domain.recommended_domain_count () < par_workers in
  Format.printf "host: %d core(s) recommended by the runtime@."
    (Domain.recommended_domain_count ());
  if degraded then
    Format.printf
      "WARNING: host recommends fewer domains (%d) than the %d parallel \
       workers; parallel timings below are oversubscribed and speedups \
       reflect search-order luck, not parallelism.  Re-baseline on a \
       multicore host.@."
      (Domain.recommended_domain_count ())
      par_workers;
  Format.printf "%s@."
    (row
       [ "query"; "workers"; "verdict"; "nodes"; "warm%"; "steals"; "time (s)" ]);
  Format.printf "%s@." (Report.rule ());
  (* Non-trivial verify_without_characterizer queries: cut 3 leaves 32
     features and dozens of crossing ReLUs, so the witness search
     genuinely branches (hundreds of nodes) instead of closing at the
     root — the regime where parallel tree search pays.  *)
  let queries =
    [
      ("no-char/cut3/far-left:6", 3, Workflow.psi_steer_far_left ~threshold:6.0 ());
      ("no-char/cut3/far-left:10", 3, Workflow.psi_steer_far_left ~threshold:10.0 ());
    ]
  in
  let measurements =
    List.concat_map
      (fun (name, cut, psi) ->
        let bounds = Verify.Data_box (Workflow.features_at prepared ~cut) in
        List.map
          (fun workers ->
            let milp_options =
              {
                Milp.default_options with
                find_first = true;
                workers;
              }
            in
            let result =
              Verify.verify_without_characterizer ~milp_options
                ~perception:prepared.Workflow.perception ~cut ~psi ~bounds ()
            in
            let q =
              {
                bq_name = name;
                bq_workers = workers;
                bq_verdict = verdict_word result;
                bq_wall = result.Verify.wall_time_s;
                bq_stats = result.Verify.milp_stats;
              }
            in
            Format.printf "%s@."
              (row
                 [
                   name;
                   string_of_int workers;
                   q.bq_verdict;
                   string_of_int q.bq_stats.Milp.nodes_explored;
                   Printf.sprintf "%.0f" (100.0 *. warm_rate q.bq_stats);
                   string_of_int q.bq_stats.Milp.steals;
                   Printf.sprintf "%.3f" q.bq_wall;
                 ]);
            q)
          [ 1; par_workers ])
      queries
  in
  (* Deadline degradation: a 1-second budget on the hard instance must
     come back Timeout instead of spinning to the node cap. *)
  let deadline_s = 1.0 in
  let hard = hard_milp 30 in
  let hard_options =
    {
      Milp.default_options with
      max_nodes = max_int;
      workers = par_workers;
      time_limit_s = Some deadline_s;
    }
  in
  let hard_started = Clock.now_s () in
  let hard_result, hard_stats =
    Milp_par.solve_with_stats ~options:hard_options hard
  in
  let hard_wall = Clock.now_s () -. hard_started in
  Format.printf "%s@."
    (row
       [
         "hard-subset-sum/1s";
         string_of_int par_workers;
         milp_result_word hard_result;
         string_of_int hard_stats.Milp.nodes_explored;
         Printf.sprintf "%.0f" (100.0 *. warm_rate hard_stats);
         string_of_int hard_stats.Milp.steals;
         Printf.sprintf "%.3f" hard_wall;
       ]);
  let speedups = compute_speedups measurements in
  List.iter
    (fun (name, factor) ->
      Format.printf "speedup %s: %.2fx with %d workers@." name factor
        par_workers)
    speedups;
  let micro = lp_microbench ~reps:50 () in
  let faults = fault_injection_bench () in
  let absint_rows = ext8_absint_bench () in
  let ext9_rows = ext9_incremental_bench () in
  let absint_micro = absint_microbench () in
  write_bench_json ~mode:"full" ~par_workers ~degraded ~queries:measurements
    ~speedups
    ~deadline:
      (deadline_s, milp_result_word hard_result, hard_wall,
       hard_stats.Milp.nodes_explored)
    ~micro ~faults ~absint_rows ~ext9_rows ~absint_micro;
  (measurements, hard_result)

(* Campaign amortization: the four E1-style queries below share two
   (cut, bounds) keys, so the campaign fits each region and encodes each
   suffix once where the one-by-one loop does it four times. *)
let ext6 prepared =
  section "EXT6: verification campaign (shared-encoding cache)";
  let characterizer, _, _ =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  let box = Verify.Data_box prepared.Workflow.bounds_features in
  let oct = Verify.Data_octagon prepared.Workflow.bounds_features in
  let q label psi bounds = Campaign.query ~label ~characterizer ~psi ~bounds () in
  let queries =
    [
      q "far-left:2.5/box" (Workflow.psi_steer_far_left ()) box;
      q "far-right:2.5/box" (Workflow.psi_steer_far_right ()) box;
      q "far-left:2.5/oct" (Workflow.psi_steer_far_left ()) oct;
      q "far-right:2.5/oct" (Workflow.psi_steer_far_right ()) oct;
    ]
  in
  (* One-by-one baseline: same solver options, fresh encoding per call. *)
  let seq_started = Clock.now_s () in
  let individual =
    List.map
      (fun (query : Campaign.query) ->
        Verify.verify ~perception:prepared.Workflow.perception ~characterizer
          ~psi:query.Campaign.psi ~bounds:query.Campaign.bounds ())
      queries
  in
  let seq_wall = Clock.now_s () -. seq_started in
  let report =
    Campaign.run ~runners:2 ~perception:prepared.Workflow.perception queries
  in
  Format.printf "%a@." Report.pp_campaign report;
  Format.printf "one-by-one: %.2fs;  campaign (2 runners): %.2fs@." seq_wall
    report.Campaign.total_wall_s;
  List.iter2
    (fun (r : Verify.result) (qr : Campaign.query_report) ->
      let agree =
        match qr.Campaign.outcome with
        | Campaign.Done cr -> (
            match (r.Verify.verdict, cr.Verify.verdict) with
            | Verify.Safe _, Verify.Safe _
            | Verify.Unsafe _, Verify.Unsafe _
            | Verify.Unknown _, Verify.Unknown _ ->
                true
            | _ -> false)
        | Campaign.Crashed _ | Campaign.Skipped _ -> false
      in
      if not agree then
        Format.printf "VERDICT MISMATCH on %s (campaign vs one-by-one)@."
          qr.Campaign.query.Campaign.label)
    individual report.Campaign.query_reports;
  report

(* Sharded campaigns: the same four queries as EXT6 split into a
   2-shard partition, each slice journaled, then merged — the
   in-process version of the `dpv campaign --shard` / `dpv
   merge-journals` workflow, with a verdict-identity check against the
   unsharded run. *)
let ext7 prepared =
  section "EXT7: sharded campaign (2-way partition, journal merge)";
  let characterizer, _, _ =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  let box = Verify.Data_box prepared.Workflow.bounds_features in
  let oct = Verify.Data_octagon prepared.Workflow.bounds_features in
  let q label psi bounds = Campaign.query ~label ~characterizer ~psi ~bounds () in
  let queries =
    [
      q "far-left:2.5/box" (Workflow.psi_steer_far_left ()) box;
      q "far-right:2.5/box" (Workflow.psi_steer_far_right ()) box;
      q "far-left:2.5/oct" (Workflow.psi_steer_far_left ()) oct;
      q "far-right:2.5/oct" (Workflow.psi_steer_far_right ()) oct;
    ]
  in
  let whole =
    Campaign.run ~runners:2 ~perception:prepared.Workflow.perception queries
  in
  let with_temp f =
    let path = Filename.temp_file "dpv_bench_shard" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> f path)
  in
  Format.printf "%s@." (row [ "slice"; "queries"; "runners"; "time (s)" ]);
  Format.printf "%s@." (Report.rule ());
  with_temp @@ fun path0 ->
  with_temp @@ fun path1 ->
  let run_shard i path =
    let r =
      Campaign.run ~runners:2 ~shard:(i, 2) ~journal:path
        ~perception:prepared.Workflow.perception queries
    in
    Format.printf "%s@."
      (row
         [
           Printf.sprintf "shard %d/2" i;
           string_of_int (List.length r.Campaign.query_reports);
           string_of_int r.Campaign.runners;
           Printf.sprintf "%.3f" r.Campaign.total_wall_s;
         ]);
    r
  in
  let r0 = run_shard 0 path0 and r1 = run_shard 1 path1 in
  let load path =
    match Dpv_core.Journal.load_with_meta ~path with
    | Ok x -> x
    | Error e -> failwith (Printf.sprintf "shard journal unreadable: %s" e)
  in
  let entries, metas = Campaign.merge_journals [ load path0; load path1 ] in
  let merged = Campaign.merge_reports [ r0; r1 ] in
  Format.printf "%s@."
    (row
       [
         "merged";
         string_of_int (List.length entries);
         string_of_int merged.Campaign.runners;
         Printf.sprintf "%.3f" merged.Campaign.total_wall_s;
       ]);
  Format.printf "meta trailers: %d;  merged exit code: %d@." (List.length metas)
    (Campaign.worst_exit_code entries);
  (* Verdict identity against the unsharded run, label by label. *)
  let multiset (r : Campaign.report) =
    List.map
      (fun (qr : Campaign.query_report) ->
        ( qr.Campaign.query.Campaign.label,
          match qr.Campaign.outcome with
          | Campaign.Done res -> Campaign.verdict_word res.Verify.verdict
          | Campaign.Crashed _ -> "crashed"
          | Campaign.Skipped _ -> "skipped" ))
      r.Campaign.query_reports
    |> List.sort compare
  in
  if multiset whole = multiset merged then
    Format.printf "verdict identity: 2-shard merge == unsharded run@."
  else
    Format.printf "VERDICT MISMATCH between the merged partition and the \
                   unsharded run@.";
  (whole, merged)

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one Test.make per experiment kernel.       *)

let bechamel_suite prepared =
  let open Bechamel in
  let setup = prepared.Workflow.setup in
  let perception = prepared.Workflow.perception in
  let features = prepared.Workflow.bounds_features in
  let characterizer, _, _ =
    Workflow.train_characterizer prepared ~property:Oracle.bends_right
  in
  let suffix = Network.suffix perception ~cut:setup.Workflow.cut in
  let feature_box = Box_monitor.to_box (Box_monitor.fit features) in
  let poly = Polyhedron.fit_octagon features in
  let psi = Workflow.psi_steer_far_left () in
  let encoding =
    Encode.build ~suffix ~head:characterizer.Characterizer.head ~feature_box
      ~extra_faces:(Polyhedron.halfspaces poly) ~psi ()
  in
  let scene_rng = Rng.create 77 in
  let scene = Generator.sample_scene setup.Workflow.scenario scene_rng in
  let image = Generator.render_scene setup.Workflow.scenario scene_rng scene in
  let image_box = Workflow.image_box prepared in
  let milp_options = { Milp.default_options with find_first = true } in
  Test.make_grouped ~name:"dpv"
    [
      Test.make ~name:"fig1_workflow/box-fit"
        (Staged.stage (fun () -> ignore (Box_monitor.fit features)));
      Test.make ~name:"tab1_statistical/decide-frame"
        (Staged.stage (fun () ->
             ignore
               (Characterizer.decide_image characterizer ~perception image)));
      Test.make ~name:"e1_far_left/milp-solve"
        (Staged.stage (fun () ->
             ignore (Milp.solve ~options:milp_options encoding.Encode.model)));
      Test.make ~name:"e2_straight/encode"
        (Staged.stage (fun () ->
             ignore
               (Encode.build ~suffix ~head:characterizer.Characterizer.head
                  ~feature_box ~psi:(Workflow.psi_steer_straight ()) ())));
      Test.make ~name:"e3_bottleneck/feature-extract"
        (Staged.stage (fun () ->
             ignore (Network.forward_upto perception ~cut:setup.Workflow.cut image)));
      Test.make ~name:"e4_scalability/box-propagate-prefix"
        (Staged.stage (fun () ->
             ignore (Box_domain.propagate_all perception image_box)));
      Test.make ~name:"e5_bounds/zonotope-propagate-prefix"
        (Staged.stage (fun () ->
             ignore (Zonotope.propagate_all perception (Zonotope.of_box image_box))));
      Test.make ~name:"e6_guarantee/table-estimate"
        (Staged.stage (fun () ->
             ignore
               (Statistical.estimate ~characterizer ~perception
                  ~images:[| image |] ~ground_truth:[| 1.0 |])));
      Test.make ~name:"e7_monitor/octagon-check"
        (Staged.stage (fun () -> ignore (Polyhedron.contains poly features.(0))));
      Test.make ~name:"ext1_obbt/tighten-box"
        (Staged.stage (fun () ->
             ignore
               (Tighten.feature_box ~suffix
                  ~head:characterizer.Characterizer.head ~feature_box ())));
      Test.make ~name:"ext3_attack/pgd-loss"
        (Staged.stage (fun () ->
             ignore
               (Attack.attack_loss ~perception
                  ~characterizer ~psi:(Workflow.psi_steer_straight ())
                  Attack.default_config image)));
      Test.make ~name:"substrate/render-frame"
        (Staged.stage (fun () ->
             ignore (Generator.render_scene setup.Workflow.scenario scene_rng scene)));
      Test.make ~name:"substrate/forward-full"
        (Staged.stage (fun () -> ignore (Network.forward perception image)));
    ]

let run_bechamel prepared =
  section "Timing benches (Bechamel; one per experiment kernel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_suite prepared) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "%s@." (row [ "kernel"; "time/run" ]);
  Format.printf "%s@." (Report.rule ());
  let rows = ref [] in
  Hashtbl.iter (fun name ols_result -> rows := (name, ols_result) :: !rows) results;
  List.iter
    (fun (name, ols_result) ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%s@." (row [ name; pretty ]))
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Smoke mode: a network-free bench for CI.  Synthetic MILPs exercise
   the same solver paths as the full EXT5 run (warm-started B&B, work
   stealing, the deadline degradation) and write BENCH_milp.json in
   "smoke" mode, so per-PR perf stays visible without the multi-minute
   training/prepare step. *)

let run_smoke () =
  section "smoke bench (synthetic MILPs, no trained network)";
  let par_workers = 4 in
  let degraded = Domain.recommended_domain_count () < par_workers in
  let instances =
    [
      ("smoke/knapsack:16", knapsack_milp 16);
      ("smoke/subset-sum:14", hard_milp 14);
    ]
  in
  Format.printf "%s@."
    (row [ "instance"; "workers"; "result"; "nodes"; "warm%"; "time (s)" ]);
  Format.printf "%s@." (Report.rule ());
  let measurements =
    List.concat_map
      (fun (name, model) ->
        List.map
          (fun workers ->
            let options = { Milp.default_options with workers } in
            let started = Clock.now_s () in
            let result, stats = Milp_par.solve_with_stats ~options model in
            let wall = Clock.now_s () -. started in
            let q =
              {
                bq_name = name;
                bq_workers = workers;
                bq_verdict = milp_result_word result;
                bq_wall = wall;
                bq_stats = stats;
              }
            in
            Format.printf "%s@."
              (row
                 [
                   name;
                   string_of_int workers;
                   q.bq_verdict;
                   string_of_int stats.Milp.nodes_explored;
                   Printf.sprintf "%.0f" (100.0 *. warm_rate stats);
                   Printf.sprintf "%.3f" wall;
                 ]);
            q)
          [ 1; par_workers ])
      instances
  in
  let deadline_s = 1.0 in
  let hard = hard_milp 24 in
  let hard_options =
    {
      Milp.default_options with
      max_nodes = max_int;
      workers = par_workers;
      time_limit_s = Some deadline_s;
    }
  in
  let hard_started = Clock.now_s () in
  let hard_result, hard_stats =
    Milp_par.solve_with_stats ~options:hard_options hard
  in
  let hard_wall = Clock.now_s () -. hard_started in
  Format.printf "%s@."
    (row
       [
         "smoke/subset-sum:24/1s";
         string_of_int par_workers;
         milp_result_word hard_result;
         string_of_int hard_stats.Milp.nodes_explored;
         Printf.sprintf "%.0f" (100.0 *. warm_rate hard_stats);
         Printf.sprintf "%.3f" hard_wall;
       ]);
  let micro = lp_microbench ~reps:10 () in
  let faults = fault_injection_bench () in
  let absint_rows = ext8_absint_bench () in
  let ext9_rows = ext9_incremental_bench () in
  let absint_micro = absint_microbench () in
  write_bench_json ~mode:"smoke" ~par_workers ~degraded ~queries:measurements
    ~speedups:(compute_speedups measurements)
    ~deadline:
      (deadline_s, milp_result_word hard_result, hard_wall,
       hard_stats.Milp.nodes_explored)
    ~micro ~faults ~absint_rows ~ext9_rows ~absint_micro;
  Format.printf "@.done.@."

(* ------------------------------------------------------------------ *)

let sections : (string * (Workflow.prepared -> unit)) list =
  [
    ("fig1", fun p -> ignore (fig1 p));
    ("tab1", fun p -> ignore (tab1 p));
    ("e1-e5", fun p -> ignore (e1_e5 p));
    ("e2", fun p -> ignore (e2 p));
    ("e2b", fun p -> ignore (e2b p));
    ("e3", fun p -> ignore (e3 p));
    ("e4", fun p -> ignore (e4 p));
    ("e6", fun p -> ignore (e6 p));
    ("e7", fun p -> ignore (e7 p));
    ("ext1", fun p -> ignore (ext1 p));
    ("ext2", fun p -> ignore (ext2 p));
    ("ext3", fun p -> ignore (ext3 p));
    ("ext4", fun p -> ignore (ext4 p));
    ("ext5", fun p -> ignore (ext5 p));
    ("ext6", fun p -> ignore (ext6 p));
    ("ext7", fun p -> ignore (ext7 p));
    ("ext8", fun _ -> ignore (ext8_absint_bench ()));
    ( "ext9",
      fun _ ->
        ignore (ext9_incremental_bench ());
        ignore (absint_microbench ()) );
    ("bechamel", run_bechamel);
  ]

let () =
  Dpv_linprog.Faults.init_from_env ();
  Dpv_obs.Trace.init_from_env ();
  Dpv_core.Absguide.init_from_env ();
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--smoke" args then run_smoke ()
  else begin
    let rec onlys = function
      | "--only" :: name :: rest -> name :: onlys rest
      | _ :: rest -> onlys rest
      | [] -> []
    in
    let selected = onlys args in
    List.iter
      (fun name ->
        if not (List.mem_assoc name sections) then begin
          Printf.eprintf
            "unknown section %S; available: %s (or --smoke)\n" name
            (String.concat ", " (List.map fst sections));
          exit 2
        end)
      selected;
    let enabled name = selected = [] || List.mem name selected in
    Format.printf
      "dpv experiment harness — reproducing Cheng et al., DATE 2020@.";
    let prepared =
      Workflow.prepare_cached ~cache_dir:"_cache" Workflow.default_setup
    in
    Format.printf
      "perception: %d parameters, val MAE %.2f m / %.3f rad (train loss %.3f)@."
      (Network.num_parameters prepared.Workflow.perception)
      prepared.Workflow.val_mae.(0) prepared.Workflow.val_mae.(1)
      prepared.Workflow.final_train_loss;
    List.iter (fun (name, f) -> if enabled name then f prepared) sections;
    Format.printf "@.done.@."
  end
