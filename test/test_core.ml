(* Tests for the paper's core: MILP encoding, verification verdicts,
   characterizer training, statistical tables and the workflow.

   The deterministic verification tests use a hand-built perception
   network whose exact semantics are known:

     perception: x -> Dense [[1];[-1]] -> ReLU -> Dense [1,-1]
     i.e. f(x) = relu(x) - relu(-x) = x, with cut layer 2 exposing the
     feature pair (relu(x), relu(-x)).

   Training data x in [-1,1] gives feature box [0,1]^2, but the visited
   features live on the curve {(relu(x), relu(-x))}, whose octagon hull
   adds y0 + y1 <= 1 — which is exactly what separates box-provable from
   octagon-provable properties below. *)

module Characterizer = Dpv_core.Characterizer
module Encode = Dpv_core.Encode
module Verify = Dpv_core.Verify
module Statistical = Dpv_core.Statistical
module Workflow = Dpv_core.Workflow
module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Risk = Dpv_spec.Risk
module Linexpr = Dpv_spec.Linexpr
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-6))

(* -- the hand-built model -- *)

let perception =
  Network.create ~input_dim:1
    [
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |]) ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

(* Characterizer head: logit = y0 - 0.5, i.e. fires iff relu(x) >= 0.5. *)
let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer = { Characterizer.head; cut; property_name = "x-at-least-half" }

let visited_features =
  (* features of x in [-1, 1] sampled densely *)
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut [| x |])

let feature_box = Box_domain.of_points visited_features

let risk_ge threshold =
  Risk.make ~name:(Printf.sprintf "out>=%g" threshold) [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make ~name:(Printf.sprintf "out<=%g" threshold) [ Risk.output_le 0 threshold ]

(* -- encode -- *)

let test_encode_builds () =
  let suffix = Network.suffix perception ~cut in
  let e = Encode.build ~suffix ~head ~feature_box ~psi:(risk_ge 0.9) () in
  Alcotest.(check int) "feature vars" 2 (Array.length e.Encode.feature_vars);
  Alcotest.(check int) "output vars" 1 (Array.length e.Encode.output_vars);
  Alcotest.(check bool) "some constraints" true (Lp.num_constraints e.Encode.model > 0)

let test_encode_rejects_sigmoid () =
  let bad = Network.create ~input_dim:2 [ Layer.Sigmoid ] in
  Alcotest.check_raises "sigmoid"
    (Invalid_argument "Encode: layer sigmoid is not piecewise-linear; cannot encode")
    (fun () ->
      ignore (Encode.build ~suffix:bad ~head ~feature_box ~psi:(risk_ge 0.0) ()))

let test_encode_rejects_dim_mismatch () =
  let suffix = Network.suffix perception ~cut in
  Alcotest.check_raises "box dim"
    (Invalid_argument "Encode.build_shared: feature box dimension mismatch")
    (fun () ->
      ignore
        (Encode.build ~suffix ~head
           ~feature_box:(Box_domain.uniform ~dim:3 ~lo:0.0 ~hi:1.0)
           ~psi:(risk_ge 0.0) ()))

(* Encoding completeness on concrete points: pinning the feature variables
   to a concrete vector must leave the MILP feasible, with output and
   logit variables matching concrete execution. *)
let encoding_matches_concrete net head_net feature_box x =
  let e =
    Encode.build ~suffix:net ~head:head_net ~feature_box
      ~characterizer_margin:(-1e9) ()
  in
  let model = ref e.Encode.model in
  Array.iteri
    (fun i v ->
      model := Lp.add_constraint !model [ (1.0, e.Encode.feature_vars.(i)) ] Lp.Eq v)
    x;
  match Milp.solve ~options:{ Milp.default_options with find_first = true } !model with
  | Milp.Optimal { solution; _ } | Milp.Feasible { solution; _ } ->
      let out_concrete = Network.forward net x in
      let logit_concrete = (Network.forward head_net x).(0) in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if Float.abs (solution.(v) -. out_concrete.(i)) > 1e-5 then ok := false)
        e.Encode.output_vars;
      if Float.abs (solution.(e.Encode.logit_var) -. logit_concrete) > 1e-5 then
        ok := false;
      !ok
  | Milp.Infeasible | Milp.Unbounded | Milp.Node_limit | Milp.Timeout -> false

let test_encode_complete_on_concrete_points () =
  let suffix = Network.suffix perception ~cut in
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "point (%g, %g)" x.(0) x.(1))
        true
        (encoding_matches_concrete suffix head feature_box x))
    [ [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.3; 0.7 |]; [| 0.5; 0.5 |] ]

let qcheck_encoding_complete_random_nets =
  QCheck.Test.make ~count:40
    ~name:"big-M encoding agrees with concrete execution on random nets"
    QCheck.(pair small_int (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (seed, (u, v)) ->
      let rng = Rng.create (seed + 17) in
      let suffix = Init.mlp rng ~input_dim:2 ~hidden:[ 3 ] ~output_dim:2 in
      let head_net = Init.mlp rng ~input_dim:2 ~hidden:[ 2 ] ~output_dim:1 in
      let box = Box_domain.uniform ~dim:2 ~lo:(-1.0) ~hi:1.0 in
      let x = [| (2.0 *. u) -. 1.0; (2.0 *. v) -. 1.0 |] in
      encoding_matches_concrete suffix head_net box x)

(* -- verify on the hand-built model -- *)

let verify_with bounds psi =
  (Verify.verify ~perception ~characterizer ~psi ~bounds ()).Verify.verdict

let feature_bounds = Verify.Feature_box feature_box

let test_verify_unsafe_reachable () =
  (* max out given y0 >= 0.5 over the box is 1.0, so out >= 0.9 is hit *)
  match verify_with feature_bounds (risk_ge 0.9) with
  | Verify.Unsafe { features; output; logit } ->
      Alcotest.(check bool) "witness fires" true (logit >= -1e-6);
      Alcotest.(check bool) "witness reaches psi" true (output.(0) >= 0.9 -. 1e-6);
      Alcotest.(check bool) "witness in box" true
        (Box_domain.contains feature_box features)
  | v -> Alcotest.failf "expected unsafe, got %a" Verify.pp_verdict v

let test_verify_safe_unreachable () =
  (* max out over the box is 1.0 < 1.5 *)
  match verify_with feature_bounds (risk_ge 1.5) with
  | Verify.Safe { conditional } ->
      Alcotest.(check bool) "feature box is unconditional" false conditional
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v

let test_verify_characterizer_blocks () =
  (* out <= -0.8 needs y0 - y1 <= -0.8; with y0 >= 0.5 (h fires) and
     y1 <= 1 the minimum is -0.5: safe BECAUSE of the characterizer. *)
  (match verify_with feature_bounds (risk_le (-0.8)) with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v);
  (* without the characterizer the same psi is reachable (y0=0, y1=1) *)
  match
    (Verify.verify_without_characterizer ~perception ~cut ~psi:(risk_le (-0.8))
       ~bounds:feature_bounds ())
      .Verify.verdict
  with
  | Verify.Unsafe _ -> ()
  | v -> Alcotest.failf "expected unsafe without phi, got %a" Verify.pp_verdict v

let test_verify_octagon_tighter_than_box () =
  (* out <= -0.2: box S~ admits (0.5, 1.0) -> unsafe; the octagon adds
     y0 + y1 <= 1 so the minimum becomes 0 -> safe. *)
  (match verify_with (Verify.Data_box visited_features) (risk_le (-0.2)) with
  | Verify.Unsafe _ -> ()
  | v -> Alcotest.failf "expected unsafe with box, got %a" Verify.pp_verdict v);
  match verify_with (Verify.Data_octagon visited_features) (risk_le (-0.2)) with
  | Verify.Safe { conditional } ->
      Alcotest.(check bool) "data bounds are conditional" true conditional
  | v -> Alcotest.failf "expected safe with octagon, got %a" Verify.pp_verdict v

let test_verify_static_bounds () =
  (* Lemma 2 with the input box [-1,1]: feature box becomes [0,1]^2
     soundly via interval propagation; out >= 1.5 is still safe. *)
  let bounds = Verify.Static_bounds (Dpv_absint.Propagate.Box, [| Interval.make ~lo:(-1.0) ~hi:1.0 |]) in
  match verify_with bounds (risk_ge 1.5) with
  | Verify.Safe { conditional } ->
      Alcotest.(check bool) "static is unconditional" false conditional
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v

let test_verify_margin () =
  (* Requiring logit >= 0.6 forces y0 >= 1.1, outside the box: the
     characterizer can never fire that confidently, so any psi is safe. *)
  match
    (Verify.verify ~characterizer_margin:0.6 ~perception ~characterizer
       ~psi:(risk_ge 0.0) ~bounds:feature_bounds ())
      .Verify.verdict
  with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v

let test_optimize_output () =
  match
    Verify.optimize_output ~perception ~characterizer
      ~objective:(Linexpr.output 0) ~sense:`Maximize ~bounds:feature_bounds ()
  with
  | Ok opt ->
      check_float "max out given h fires" 1.0 opt.Verify.value;
      Alcotest.(check bool) "witness logit fires" true (opt.Verify.opt_logit >= -1e-6)
  | Error e -> Alcotest.failf "optimize failed: %s" e

let test_optimize_minimize () =
  match
    Verify.optimize_output ~perception ~characterizer
      ~objective:(Linexpr.output 0) ~sense:`Minimize ~bounds:feature_bounds ()
  with
  | Ok opt -> check_float "min out given h fires" (-0.5) opt.Verify.value
  | Error e -> Alcotest.failf "optimize failed: %s" e

let test_incomplete_proves_unreachable () =
  (* out = y0 - y1 over [0,1]^2 is [-1,1]: 1.5 is disprovable by bounds. *)
  let r =
    Verify.verify_incomplete ~perception ~characterizer ~psi:(risk_ge 1.5)
      ~bounds:feature_bounds ()
  in
  (match r.Verify.verdict with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v);
  Alcotest.(check int) "no milp nodes" 0
    r.Verify.milp_stats.Dpv_linprog.Milp.nodes_explored

let test_incomplete_cannot_use_characterizer () =
  (* out <= -0.8 is reachable in the box (0,1) but only OUTSIDE the
     h-fires region; the MILP proves it, bound propagation cannot. *)
  (match
     (Verify.verify_incomplete ~perception ~characterizer ~psi:(risk_le (-0.8))
        ~bounds:feature_bounds ())
       .Verify.verdict
   with
  | Verify.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown, got %a" Verify.pp_verdict v);
  match verify_with feature_bounds (risk_le (-0.8)) with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "milp should prove it, got %a" Verify.pp_verdict v

let test_incomplete_mute_characterizer () =
  (* max logit over the box is 0.5 < margin 0.6: phi can never fire, any
     psi is vacuously safe. *)
  match
    (Verify.verify_incomplete ~characterizer_margin:0.6 ~perception
       ~characterizer ~psi:(risk_ge 0.0) ~bounds:feature_bounds ())
      .Verify.verdict
  with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v

let qcheck_incomplete_safe_implies_milp_safe =
  QCheck.Test.make ~count:30
    ~name:"incomplete Safe implies complete Safe (soundness alignment)"
    QCheck.(pair small_int (float_range (-3.0) 3.0))
    (fun (seed, threshold) ->
      let rng = Rng.create (seed + 601) in
      let p = Init.mlp rng ~input_dim:2 ~hidden:[ 3 ] ~output_dim:1 in
      let h = Init.mlp rng ~input_dim:3 ~hidden:[ 2 ] ~output_dim:1 in
      let chr = { Characterizer.head = h; cut = 2; property_name = "rand" } in
      let bounds =
        Verify.Feature_box (Box_domain.uniform ~dim:3 ~lo:0.0 ~hi:1.0)
      in
      let psi = risk_ge threshold in
      match
        (Verify.verify_incomplete ~perception:p ~characterizer:chr ~psi ~bounds ())
          .Verify.verdict
      with
      | Verify.Unknown _ | Verify.Unsafe _ -> true
      | Verify.Safe _ -> (
          match
            (Verify.verify ~perception:p ~characterizer:chr ~psi ~bounds ())
              .Verify.verdict
          with
          | Verify.Safe _ -> true
          | Verify.Unsafe _ | Verify.Unknown _ -> false))

let test_milp_node_limit_reported () =
  let options = { Milp.default_options with max_nodes = 0 } in
  let result =
    Verify.verify ~milp_options:options ~perception ~characterizer
      ~psi:(risk_ge 0.9) ~bounds:feature_bounds ()
  in
  match result.Verify.verdict with
  | Verify.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown at node limit, got %a" Verify.pp_verdict v

let test_verify_tighten_shares_budget () =
  (* One deadline must cover OBBT *and* the MILP: a [time_limit_s] of
     [T] may not burn ~2T (tightening exhausting its own T, then the
     search getting a fresh T).  The suffix below is large enough that
     untruncated OBBT alone (2 LPs per feature coordinate on a dense
     relaxation) far exceeds the budget. *)
  let rng = Rng.create 424242 in
  let p = Init.mlp rng ~input_dim:6 ~hidden:[ 24; 24; 24 ] ~output_dim:2 in
  let h = Init.mlp rng ~input_dim:24 ~hidden:[ 12 ] ~output_dim:1 in
  let chr = { Characterizer.head = h; cut = 2; property_name = "big" } in
  let bounds =
    Verify.Feature_box (Box_domain.uniform ~dim:24 ~lo:(-1.0) ~hi:1.0)
  in
  let options =
    { Verify.default_milp_options with Milp.time_limit_s = Some 1.0 }
  in
  let started = Dpv_linprog.Clock.now_s () in
  let r =
    Verify.verify ~milp_options:options ~tighten:true ~perception:p
      ~characterizer:chr ~psi:(risk_ge 1e6) ~bounds ()
  in
  let elapsed = Dpv_linprog.Clock.now_s () -. started in
  (* 1.1x the budget plus slack for the straddling LP / encoding work. *)
  Alcotest.(check bool)
    (Printf.sprintf "tighten + solve fit one budget (took %.2fs)" elapsed)
    true (elapsed < 1.8);
  match r.Verify.verdict with
  | Verify.Safe _ | Verify.Unknown _ -> ()
  | Verify.Unsafe _ -> Alcotest.fail "out >= 1e6 cannot be reachable"

(* -- characterizer training -- *)

let test_characterizer_trains_separable () =
  (* Features are 1-d; label is [x >= 0].  Trivially separable: the
     trained head must hit 100% and flag perfect_on_train. *)
  let rng = Rng.create 71 in
  let features = Array.init 60 (fun _ -> [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |]) in
  let labels = Array.map (fun f -> if f.(0) >= 0.0 then 1.0 else 0.0) features in
  let c, report =
    Characterizer.train_on_features ~rng ~cut:0 ~property_name:"sign"
      ~features ~labels ()
  in
  Alcotest.(check bool) "perfect" true report.Characterizer.perfect_on_train;
  Alcotest.(check bool) "decides a clear positive" true (Characterizer.decide c [| 0.9 |]);
  Alcotest.(check bool) "rejects a clear negative" false (Characterizer.decide c [| -0.9 |])

let test_characterizer_coin_flip_on_noise () =
  (* Labels independent of features: accuracy must stay well below 1 on
     held-out data (the information-bottleneck behaviour). *)
  let rng = Rng.create 72 in
  let features = Array.init 120 (fun _ -> [| Rng.gaussian rng |]) in
  let labels = Array.init 120 (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
  let config = { Characterizer.default_train_config with epochs = 60 } in
  let c, _ =
    Characterizer.train_on_features ~config ~rng ~cut:0 ~property_name:"noise"
      ~features:(Array.sub features 0 60)
      ~labels:(Array.sub labels 0 60) ()
  in
  let correct = ref 0 in
  for i = 60 to 119 do
    let p = if Characterizer.decide c features.(i) then 1.0 else 0.0 in
    if p = labels.(i) then incr correct
  done;
  let acc = float_of_int !correct /. 60.0 in
  Alcotest.(check bool) "near coin flip" true (acc < 0.75)

let test_characterizer_early_stop () =
  let rng = Rng.create 73 in
  let features = Array.init 40 (fun i -> [| float_of_int (i mod 2) |]) in
  let labels = Array.map (fun f -> f.(0)) features in
  let config = { Characterizer.default_train_config with epochs = 500 } in
  let _, report =
    Characterizer.train_on_features ~config ~rng ~cut:0 ~property_name:"sep"
      ~features ~labels ()
  in
  Alcotest.(check bool) "stopped well before the budget" true
    (report.Characterizer.epochs_run < 500)

let test_characterizer_accuracy_api () =
  let acc =
    Characterizer.accuracy characterizer ~perception
      ~images:[| [| 0.9 |]; [| 0.1 |]; [| -0.9 |] |]
      ~labels:[| 1.0; 0.0; 0.0 |]
  in
  check_float "all correct" 1.0 acc

(* -- statistical tables -- *)

let test_statistical_cells () =
  (* characterizer fires iff x >= 0.5; ground truth phi iff x >= 0.25.
     On the 4 points below: alpha (fires & phi) = x=0.75; beta = none;
     gamma (quiet & phi) = x=0.3; delta = x=0, x=-0.5. *)
  let images = [| [| 0.75 |]; [| 0.3 |]; [| 0.0 |]; [| -0.5 |] |] in
  let ground_truth = [| 1.0; 1.0; 0.0; 0.0 |] in
  let t = Statistical.estimate ~characterizer ~perception ~images ~ground_truth in
  check_float "alpha" 0.25 t.Statistical.alpha;
  check_float "beta" 0.0 t.Statistical.beta;
  check_float "gamma" 0.25 t.Statistical.gamma;
  check_float "delta" 0.5 t.Statistical.delta;
  check_float "guarantee" 0.75 (Statistical.guarantee t)

let test_statistical_cells_sum_to_one () =
  let rng = Rng.create 74 in
  let images = Array.init 50 (fun _ -> [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |]) in
  let ground_truth = Array.map (fun x -> if x.(0) >= 0.25 then 1.0 else 0.0) images in
  let t = Statistical.estimate ~characterizer ~perception ~images ~ground_truth in
  check_float "sum" 1.0
    (t.Statistical.alpha +. t.Statistical.beta +. t.Statistical.gamma
   +. t.Statistical.delta)

let test_omitted_unsafe_count () =
  (* gamma cell is x = 0.3 (phi holds, h quiet).  psi := out >= 0.25 holds
     there (out = x), so the footnote-4 side condition counts 1. *)
  let images = [| [| 0.75 |]; [| 0.3 |]; [| 0.0 |] |] in
  let ground_truth = [| 1.0; 1.0; 0.0 |] in
  let n =
    Statistical.omitted_unsafe_count ~characterizer ~perception
      ~psi:(risk_ge 0.25) ~images ~ground_truth
  in
  Alcotest.(check int) "one omitted unsafe point" 1 n;
  let n2 =
    Statistical.omitted_unsafe_count ~characterizer ~perception
      ~psi:(risk_ge 10.0) ~images ~ground_truth
  in
  Alcotest.(check int) "none for unreachable psi" 0 n2

let test_gamma_confidence_contains_estimate () =
  let images = Array.init 40 (fun i -> [| float_of_int i /. 40.0 |]) in
  let ground_truth = Array.map (fun x -> if x.(0) >= 0.25 then 1.0 else 0.0) images in
  let t = Statistical.estimate ~characterizer ~perception ~images ~ground_truth in
  let lo, hi = Statistical.gamma_confidence t ~z:1.96 in
  Alcotest.(check bool) "interval brackets gamma" true
    (lo <= t.Statistical.gamma && t.Statistical.gamma <= hi)

(* -- workflow smoke test (small but end-to-end real) -- *)

let tiny_setup =
  {
    Workflow.default_setup with
    seed = 3;
    hidden = [ 8; 4 ];
    cut = 6;
    train_size = 120;
    val_size = 40;
    perception_epochs = 6;
    characterizer_samples = 80;
    bounds_samples = 80;
    scenario =
      {
        Dpv_scenario.Generator.default_config with
        camera =
          { Dpv_scenario.Camera.default_config with width = 8; height = 6 };
      };
  }

let test_workflow_end_to_end () =
  let prepared = Workflow.prepare tiny_setup in
  Alcotest.(check int) "bounds features at cut dim" 4
    (Vec.dim prepared.Workflow.bounds_features.(0));
  let case =
    Workflow.run_case prepared ~property:Dpv_scenario.Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ~threshold:30.0 ())
      ~strategy:Workflow.Data_box
  in
  (* An absurd threshold must be provable even on a tiny model. *)
  (match case.Workflow.result.Verify.verdict with
  | Verify.Safe { conditional } -> Alcotest.(check bool) "conditional" true conditional
  | v -> Alcotest.failf "expected safe at threshold 30, got %a" Verify.pp_verdict v);
  check_float "table sums to 1" 1.0
    (case.Workflow.table.Statistical.alpha +. case.Workflow.table.Statistical.beta
   +. case.Workflow.table.Statistical.gamma +. case.Workflow.table.Statistical.delta)

let test_workflow_cut_options () =
  Alcotest.(check (list int)) "cuts for 2 hidden blocks" [ 6; 3 ]
    (Workflow.cut_options tiny_setup)

let test_workflow_cnn_setup () =
  let setup = Workflow.cnn_setup ~channels:[ 2 ] ~hidden:[ 6 ] tiny_setup in
  (* layout: C R D B R D -> relus at 2 and 5 *)
  Alcotest.(check (list int)) "cnn cuts" [ 5; 2 ] (Workflow.cut_options setup);
  Alcotest.(check int) "default cut is deepest" 5 setup.Workflow.cut

let test_workflow_cnn_end_to_end () =
  let setup = Workflow.cnn_setup ~channels:[ 2 ] ~hidden:[ 6 ] tiny_setup in
  let prepared = Workflow.prepare setup in
  Alcotest.(check (list int)) "relu cuts match the trained net"
    (Workflow.cut_options setup)
    (Workflow.relu_cuts prepared.Workflow.perception);
  let case =
    Workflow.run_case prepared ~property:Dpv_scenario.Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ~threshold:30.0 ())
      ~strategy:Workflow.Data_box
  in
  match case.Workflow.result.Verify.verdict with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe at threshold 30, got %a" Verify.pp_verdict v

let test_workflow_prepare_cached_roundtrip () =
  let dir = Filename.temp_file "dpvcache" "" in
  Sys.remove dir;
  let p1 = Workflow.prepare_cached ~cache_dir:dir tiny_setup in
  let p2 = Workflow.prepare_cached ~cache_dir:dir tiny_setup in
  (* identical network function out of the cache *)
  let x = p1.Workflow.bounds_images.(0) in
  Alcotest.(check bool) "cached network identical" true
    (Network.forward p1.Workflow.perception x = Network.forward p2.Workflow.perception x);
  check_float "meta roundtrip" p1.Workflow.final_train_loss p2.Workflow.final_train_loss

let test_psi_builders () =
  let far_left = Workflow.psi_steer_far_left ~threshold:2.0 () in
  Alcotest.(check bool) "far left holds" true (Risk.holds far_left [| 2.5; 0.0 |]);
  Alcotest.(check bool) "far left fails" false (Risk.holds far_left [| 1.0; 0.0 |]);
  let far_right = Workflow.psi_steer_far_right ~threshold:2.0 () in
  Alcotest.(check bool) "far right holds" true (Risk.holds far_right [| -2.5; 0.0 |]);
  let straight = Workflow.psi_steer_straight ~halfwidth:0.5 () in
  Alcotest.(check bool) "straight holds" true (Risk.holds straight [| 0.2; 0.0 |]);
  Alcotest.(check bool) "straight fails" false (Risk.holds straight [| 0.9; 0.0 |])

let tests =
  [
    Alcotest.test_case "encode builds" `Quick test_encode_builds;
    Alcotest.test_case "encode rejects sigmoid" `Quick test_encode_rejects_sigmoid;
    Alcotest.test_case "encode rejects dim mismatch" `Quick test_encode_rejects_dim_mismatch;
    Alcotest.test_case "encode complete on points" `Quick test_encode_complete_on_concrete_points;
    QCheck_alcotest.to_alcotest qcheck_encoding_complete_random_nets;
    Alcotest.test_case "verify unsafe reachable" `Quick test_verify_unsafe_reachable;
    Alcotest.test_case "verify safe unreachable" `Quick test_verify_safe_unreachable;
    Alcotest.test_case "characterizer blocks violation" `Quick test_verify_characterizer_blocks;
    Alcotest.test_case "octagon tighter than box" `Quick test_verify_octagon_tighter_than_box;
    Alcotest.test_case "static bounds (Lemma 2)" `Quick test_verify_static_bounds;
    Alcotest.test_case "characterizer margin" `Quick test_verify_margin;
    Alcotest.test_case "optimize maximize" `Quick test_optimize_output;
    Alcotest.test_case "optimize minimize" `Quick test_optimize_minimize;
    Alcotest.test_case "node limit -> unknown" `Quick test_milp_node_limit_reported;
    Alcotest.test_case "tighten shares the time budget" `Slow
      test_verify_tighten_shares_budget;
    Alcotest.test_case "incomplete proves unreachable" `Quick test_incomplete_proves_unreachable;
    Alcotest.test_case "incomplete vs characterizer" `Quick test_incomplete_cannot_use_characterizer;
    Alcotest.test_case "incomplete mute characterizer" `Quick test_incomplete_mute_characterizer;
    QCheck_alcotest.to_alcotest qcheck_incomplete_safe_implies_milp_safe;
    Alcotest.test_case "characterizer trains separable" `Quick test_characterizer_trains_separable;
    Alcotest.test_case "characterizer coin flip on noise" `Quick test_characterizer_coin_flip_on_noise;
    Alcotest.test_case "characterizer early stop" `Quick test_characterizer_early_stop;
    Alcotest.test_case "characterizer accuracy api" `Quick test_characterizer_accuracy_api;
    Alcotest.test_case "statistical cells" `Quick test_statistical_cells;
    Alcotest.test_case "statistical cells sum" `Quick test_statistical_cells_sum_to_one;
    Alcotest.test_case "omitted unsafe count" `Quick test_omitted_unsafe_count;
    Alcotest.test_case "gamma confidence" `Quick test_gamma_confidence_contains_estimate;
    Alcotest.test_case "workflow end-to-end" `Slow test_workflow_end_to_end;
    Alcotest.test_case "workflow cut options" `Quick test_workflow_cut_options;
    Alcotest.test_case "workflow cnn setup" `Quick test_workflow_cnn_setup;
    Alcotest.test_case "workflow cnn end-to-end" `Slow test_workflow_cnn_end_to_end;
    Alcotest.test_case "workflow cache roundtrip" `Slow test_workflow_prepare_cached_roundtrip;
    Alcotest.test_case "psi builders" `Quick test_psi_builders;
  ]
