(* Campaign runner: verdict equivalence against standalone verify,
   shared-encoding cache accounting, budget degradation, and the JSON
   report round-tripping through the in-tree JSON reader.

   Uses the same hand-built perception network as test_core:
     perception: x -> Dense [[1];[-1]] -> ReLU -> Dense [1,-1]
   with cut 2 exposing features (relu(x), relu(-x)). *)

module Campaign = Dpv_core.Campaign
module Characterizer = Dpv_core.Characterizer
module Verify = Dpv_core.Verify
module Json = Dpv_core.Json
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat

let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer =
  { Characterizer.head; cut; property_name = "x-at-least-half" }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut [| x |])

let risk_ge threshold =
  Risk.make
    ~name:(Printf.sprintf "out>=%g" threshold)
    [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make
    ~name:(Printf.sprintf "out<=%g" threshold)
    [ Risk.output_le 0 threshold ]

(* Four queries over two distinct (cut, bounds) keys: the box pair and
   the octagon pair each share one cache entry. *)
let queries () =
  [
    Campaign.query ~label:"reach-box" ~characterizer ~psi:(risk_ge 0.9)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"unreach-box" ~characterizer ~psi:(risk_ge 1.5)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"neg-oct" ~characterizer ~psi:(risk_le (-0.2))
      ~bounds:(Verify.Data_octagon visited_features) ();
    Campaign.query ~label:"neg-oct-deep" ~characterizer ~psi:(risk_le (-0.8))
      ~bounds:(Verify.Data_octagon visited_features) ();
  ]

(* Unwrap a [Done] outcome; any crash/skip in these clean-run tests is a
   test failure in itself. *)
let done_result (qr : Campaign.query_report) =
  match qr.Campaign.outcome with
  | Campaign.Done r -> r
  | Campaign.Crashed reason ->
      Alcotest.failf "%s: unexpected crash: %s" qr.Campaign.query.Campaign.label
        reason
  | Campaign.Skipped reason ->
      Alcotest.failf "%s: unexpectedly skipped: %s"
        qr.Campaign.query.Campaign.label reason

let test_campaign_matches_individual_verify () =
  let qs = queries () in
  let report = Campaign.run ~runners:2 ~perception qs in
  Alcotest.(check int) "one report per query" (List.length qs)
    (List.length report.Campaign.query_reports);
  List.iter2
    (fun (q : Campaign.query) (qr : Campaign.query_report) ->
      Alcotest.(check string) "reports keep input order" q.Campaign.label
        qr.Campaign.query.Campaign.label;
      let standalone =
        Verify.verify ~perception ~characterizer:q.Campaign.characterizer
          ~psi:q.Campaign.psi ~bounds:q.Campaign.bounds ()
      in
      Alcotest.(check string)
        (q.Campaign.label ^ ": verdict matches standalone verify")
        (Campaign.verdict_word standalone.Verify.verdict)
        (Campaign.verdict_word (done_result qr).Verify.verdict))
    qs report.Campaign.query_reports;
  Alcotest.(check bool) "clean run is not degraded" false
    report.Campaign.degraded

let test_campaign_cache_accounting () =
  let report = Campaign.run ~runners:1 ~perception (queries ()) in
  let cache = report.Campaign.cache in
  Alcotest.(check int) "two distinct (cut, bounds) keys" 2 cache.Campaign.entries;
  Alcotest.(check int) "misses = entries" 2 cache.Campaign.misses;
  Alcotest.(check int) "second query of each pair hits" 2 cache.Campaign.hits;
  let flags =
    List.map
      (fun (qr : Campaign.query_report) -> qr.Campaign.from_cache)
      report.Campaign.query_reports
  in
  Alcotest.(check (list bool)) "first of each key misses, second hits"
    [ false; true; false; true ] flags

let test_campaign_zero_budget_skips_and_degrades () =
  let report = Campaign.run ~runners:1 ~budget_s:0.0 ~perception (queries ()) in
  List.iter
    (fun (qr : Campaign.query_report) ->
      match qr.Campaign.outcome with
      | Campaign.Skipped _ -> ()
      | Campaign.Done r ->
          Alcotest.failf "%s: expected skip under zero budget, got %a"
            qr.Campaign.query.Campaign.label Verify.pp_verdict r.Verify.verdict
      | Campaign.Crashed reason ->
          Alcotest.failf "%s: expected skip under zero budget, got crash: %s"
            qr.Campaign.query.Campaign.label reason)
    report.Campaign.query_reports;
  Alcotest.(check bool) "report is degraded" true report.Campaign.degraded;
  Alcotest.(check int) "all queries counted as skipped"
    (List.length report.Campaign.query_reports)
    report.Campaign.skipped;
  Alcotest.(check int) "nothing crashed" 0 report.Campaign.crashed

let jget label = function
  | Some v -> v
  | None -> Alcotest.failf "json: missing or mistyped %s" label

let mem key j = jget key (Json.member key j)

let test_campaign_json_report () =
  let report = Campaign.run ~runners:2 ~perception (queries ()) in
  let json = Campaign.to_json report in
  match Json.of_string json with
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  | Ok j ->
      Alcotest.(check string) "schema tag" "dpv-campaign/2"
        (jget "schema" (Json.to_string (mem "schema" j)));
      Alcotest.(check int) "runners recorded" 2
        (jget "runners" (Json.to_int (mem "runners" j)));
      Alcotest.(check bool) "degraded flag serialized" false
        (match mem "degraded" j with
        | Json.Bool b -> b
        | _ -> Alcotest.fail "degraded is not a bool");
      Alcotest.(check int) "crashed counter serialized" 0
        (jget "crashed" (Json.to_int (mem "crashed" j)));
      Alcotest.(check int) "retried counter serialized" 0
        (jget "retried" (Json.to_int (mem "retried" j)));
      let cache = mem "cache" j in
      Alcotest.(check int) "cache hits serialized" 2
        (jget "hits" (Json.to_int (mem "hits" cache)));
      let qs = jget "queries" (Json.to_list (mem "queries" j)) in
      Alcotest.(check int) "four query records" 4 (List.length qs);
      List.iter
        (fun q ->
          Alcotest.(check string) "outcome is done" "done"
            (jget "outcome" (Json.to_string (mem "outcome" q)));
          let verdict = jget "verdict" (Json.to_string (mem "verdict" q)) in
          Alcotest.(check bool) "verdict is a known word" true
            (List.mem verdict [ "safe"; "unsafe"; "unknown" ]);
          ignore (jget "attempts" (Json.to_int (mem "attempts" q)));
          ignore (jget "nodes" (Json.to_int (mem "nodes" (mem "milp" q)))))
        qs

(* ---- sharding ---- *)

module Journal = Dpv_core.Journal
module Metrics = Dpv_obs.Metrics
module Faults = Dpv_linprog.Faults

let with_temp_file f =
  let path = Filename.temp_file "dpv_test_shard" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_plan_workers () =
  let check label expected got =
    Alcotest.(check (pair int int)) label expected got
  in
  check "runners=1 defers to milp workers" (1, 4)
    (Campaign.plan_workers ~runners:1 ~milp_workers:4 ~pending:10);
  check "plentiful queries: one task each, sequential solves" (4, 1)
    (Campaign.plan_workers ~runners:4 ~milp_workers:1 ~pending:9);
  check "exactly as many queries as runners" (4, 1)
    (Campaign.plan_workers ~runners:4 ~milp_workers:1 ~pending:4);
  check "thin shard: spare domains move inside the MILPs" (2, 2)
    (Campaign.plan_workers ~runners:4 ~milp_workers:1 ~pending:2);
  check "one huge query gets the whole budget" (1, 4)
    (Campaign.plan_workers ~runners:4 ~milp_workers:1 ~pending:1);
  check "empty slice idles gracefully" (1, 1)
    (Campaign.plan_workers ~runners:4 ~milp_workers:1 ~pending:0);
  Alcotest.check_raises "runners=0 rejected"
    (Invalid_argument "Campaign.plan_workers: runners must be >= 1") (fun () ->
      ignore (Campaign.plan_workers ~runners:0 ~milp_workers:1 ~pending:1))

let test_shard_partition_covers () =
  (* The partition is a function of the content digest alone: disjoint,
     exhaustive, and stable under query reordering. *)
  let keys = List.map Campaign.query_key (queries ()) in
  List.iter
    (fun n ->
      let slices =
        List.init n (fun i ->
            List.filter (fun k -> Campaign.shard_index ~shards:n k = i) keys)
      in
      Alcotest.(check int)
        (Printf.sprintf "%d slices cover every query" n)
        (List.length keys)
        (List.fold_left (fun acc s -> acc + List.length s) 0 slices))
    [ 1; 2; 3; 5 ];
  List.iter
    (fun k ->
      Alcotest.(check int) "one shard is the identity partition" 0
        (Campaign.shard_index ~shards:1 k))
    keys

(* The label/verdict multiset is the campaign's answer; sharding must
   preserve it exactly. *)
let verdict_multiset (report : Campaign.report) =
  List.map
    (fun (qr : Campaign.query_report) ->
      ( qr.Campaign.query.Campaign.label,
        match qr.Campaign.outcome with
        | Campaign.Done r -> Campaign.verdict_word r.Verify.verdict
        | Campaign.Crashed _ -> "crashed"
        | Campaign.Skipped _ -> "skipped" ))
    report.Campaign.query_reports
  |> List.sort compare

(* Counters that are deterministic for sequential solves (runners=1,
   workers=1): exploration and pivot totals must sum exactly across a
   shard partition.  Cache counters are excluded on purpose — shards
   keep separate caches, so a key pair split across shards misses
   twice. *)
let det_counter name snap = Option.value ~default:0 (Metrics.counter_in snap name)

let det_counters snap =
  List.map
    (fun name -> (name, det_counter name snap))
    [ "campaign.queries"; "milp.nodes"; "milp.lps"; "simplex.pivots" ]

let test_shard_merge_equals_unsharded () =
  let qs = queries () in
  let whole = Campaign.run ~runners:1 ~perception qs in
  List.iter
    (fun n ->
      let shards =
        List.init n (fun i ->
            Campaign.run ~runners:1 ~shard:(i, n) ~perception qs)
      in
      List.iter
        (fun (r : Campaign.report) ->
          Alcotest.(check bool) "shard recorded in report" true
            (r.Campaign.shard <> None))
        shards;
      let merged = Campaign.merge_reports shards in
      Alcotest.(check bool) "merged report is whole-spec" true
        (merged.Campaign.shard = None);
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "%d-shard merge keeps the verdict multiset" n)
        (verdict_multiset whole) (verdict_multiset merged);
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%d-shard merge sums deterministic counters" n)
        (det_counters whole.Campaign.metrics)
        (det_counters merged.Campaign.metrics))
    [ 1; 2; 3; 5 ]

let test_shard_merge_with_crash_injection () =
  let qs = queries () in
  let whole = Campaign.run ~runners:1 ~perception qs in
  let n = 2 in
  (* Crash the first solve of shard 0 only; shard 1 runs clean.  The
     merged report must carry exactly one crashed query and keep every
     other verdict. *)
  let shard0 =
    Fun.protect ~finally:Faults.disable (fun () ->
        Faults.configure [ (Faults.Task_crash, 1) ];
        Campaign.run ~runners:1 ~shard:(0, n) ~perception qs)
  in
  let shard1 = Campaign.run ~runners:1 ~shard:(1, n) ~perception qs in
  let merged = Campaign.merge_reports [ shard0; shard1 ] in
  Alcotest.(check int) "exactly one crash" 1 merged.Campaign.crashed;
  Alcotest.(check bool) "merged report degraded" true merged.Campaign.degraded;
  Alcotest.(check int) "no query lost"
    (List.length whole.Campaign.query_reports)
    (List.length merged.Campaign.query_reports);
  let clean (ms : (string * string) list) =
    List.filter (fun (_, v) -> v <> "crashed") ms
  in
  let whole_ms = verdict_multiset whole and merged_ms = verdict_multiset merged in
  Alcotest.(check int) "crash shows in the multiset" 1
    (List.length (List.filter (fun (_, v) -> v = "crashed") merged_ms));
  List.iter
    (fun entry ->
      Alcotest.(check bool) "surviving verdicts match the unsharded run" true
        (List.mem entry whole_ms))
    (clean merged_ms)

let test_empty_shard_report_valid () =
  (* A slice can be empty (fewer queries than shards): the report must
     be a valid, non-degraded dpv-campaign/2 document. *)
  let qs = queries () in
  let n = 5 in
  let used =
    List.map (fun q -> Campaign.shard_index ~shards:n (Campaign.query_key q)) qs
  in
  let empty_slice =
    match List.find_opt (fun i -> not (List.mem i used)) (List.init n Fun.id) with
    | Some i -> i
    | None -> Alcotest.fail "4 queries cannot fill 5 shards"
  in
  let report =
    Campaign.run ~runners:2 ~shard:(empty_slice, n) ~perception qs
  in
  Alcotest.(check int) "no query reports" 0
    (List.length report.Campaign.query_reports);
  Alcotest.(check bool) "empty is not degraded" false report.Campaign.degraded;
  (match Json.of_string (Campaign.to_json report) with
  | Ok j ->
      Alcotest.(check string) "schema tag survives" "dpv-campaign/2"
        (jget "schema" (Json.to_string (mem "schema" j)));
      Alcotest.(check int) "empty queries array" 0
        (List.length (jget "queries" (Json.to_list (mem "queries" j))))
  | Error e -> Alcotest.failf "empty report is not valid JSON: %s" e);
  (* And run with an empty query list outright. *)
  let report = Campaign.run ~runners:2 ~shard:(0, 2) ~perception [] in
  Alcotest.(check bool) "no queries at all is fine" false
    report.Campaign.degraded

let test_shard_journals_merge () =
  let qs = queries () in
  let whole = Campaign.run ~runners:1 ~perception qs in
  with_temp_file @@ fun path0 ->
  with_temp_file @@ fun path1 ->
  let r0 = Campaign.run ~runners:1 ~shard:(0, 2) ~journal:path0 ~perception qs in
  let r1 = Campaign.run ~runners:1 ~shard:(1, 2) ~journal:path1 ~perception qs in
  let load path =
    match Journal.load_with_meta ~path with
    | Ok x -> x
    | Error e -> Alcotest.failf "shard journal unreadable: %s" e
  in
  let (entries0, metas0) = load path0 and (entries1, metas1) = load path1 in
  (* Meta round-trip: exactly one trailer, carrying the shard identity
     and the report's metrics snapshot. *)
  Alcotest.(check int) "one meta trailer per shard journal" 1
    (List.length metas0);
  (match metas0 with
  | [ m ] ->
      Alcotest.(check (pair int int)) "meta identifies the slice" (0, 2)
        (m.Journal.shard, m.Journal.shard_count);
      Alcotest.(check (list (pair string int)))
        "meta metrics round-trip the report snapshot"
        (det_counters r0.Campaign.metrics)
        (det_counters m.Journal.metrics)
  | _ -> Alcotest.fail "expected exactly one meta");
  (* Plain load skips the trailer and still resumes. *)
  (match Journal.load ~path:path0 with
  | Ok entries ->
      Alcotest.(check int) "load skips the meta line"
        (List.length entries0) (List.length entries)
  | Error e -> Alcotest.failf "plain load rejects a sharded journal: %s" e);
  let entries, metas =
    Campaign.merge_journals [ (entries0, metas0); (entries1, metas1) ]
  in
  Alcotest.(check int) "merged journal covers the whole spec"
    (List.length qs) (List.length entries);
  Alcotest.(check int) "both trailers collected" 2 (List.length metas);
  let expected_exit =
    let ms = verdict_multiset whole in
    let has v = List.exists (fun (_, w) -> w = v) ms in
    if has "unsafe" then 1
    else if has "crashed" || has "skipped" then 4
    else if has "unknown" then 2
    else 0
  in
  Alcotest.(check int) "worst exit code matches the unsharded precedence"
    expected_exit
    (Campaign.worst_exit_code entries);
  (* The merged entry multiset matches the unsharded answer. *)
  let entry_ms =
    List.map
      (fun (e : Journal.entry) ->
        ( e.Journal.label,
          match e.Journal.outcome with
          | Campaign.Done r -> Campaign.verdict_word r.Verify.verdict
          | Campaign.Crashed _ -> "crashed"
          | Campaign.Skipped _ -> "skipped" ))
      entries
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "merged journal verdicts equal the unsharded run" (verdict_multiset whole)
    entry_ms;
  ignore (r1 : Campaign.report);
  (* merged_to_json is a valid dpv-campaign/2 document with summed
     metrics. *)
  match Json.of_string (Campaign.merged_to_json ~entries ~metas) with
  | Error e -> Alcotest.failf "merged report is not valid JSON: %s" e
  | Ok j ->
      Alcotest.(check string) "merged schema tag" "dpv-campaign/2"
        (jget "schema" (Json.to_string (mem "schema" j)));
      Alcotest.(check int) "merged query records" (List.length qs)
        (List.length (jget "queries" (Json.to_list (mem "queries" j))));
      let counters = mem "counters" (mem "metrics" j) in
      Alcotest.(check int) "merged milp.nodes sums the shards"
        (det_counter "milp.nodes" whole.Campaign.metrics)
        (jget "milp.nodes" (Json.to_int (mem "milp.nodes" counters)))

let test_worst_exit_code_precedence () =
  let entry outcome =
    {
      Journal.key = Digest.to_hex (Digest.string (Campaign.outcome_word outcome));
      label = "x";
      outcome;
      attempts = 1;
      dense_retry = false;
      deadline_retry = false;
    }
  in
  Alcotest.(check int) "empty journal exits 0" 0 (Campaign.worst_exit_code []);
  Alcotest.(check int) "crash alone exits 4" 4
    (Campaign.worst_exit_code [ entry (Campaign.Crashed "boom") ]);
  Alcotest.(check int) "skip alone exits 4" 4
    (Campaign.worst_exit_code [ entry (Campaign.Skipped "budget") ])

let tests =
  [
    Alcotest.test_case "campaign matches individual verify" `Quick
      test_campaign_matches_individual_verify;
    Alcotest.test_case "cache accounting" `Quick test_campaign_cache_accounting;
    Alcotest.test_case "zero budget skips and degrades" `Quick
      test_campaign_zero_budget_skips_and_degrades;
    Alcotest.test_case "json report" `Quick test_campaign_json_report;
    Alcotest.test_case "plan_workers splits the domain budget" `Quick
      test_plan_workers;
    Alcotest.test_case "shard partition covers and is disjoint" `Quick
      test_shard_partition_covers;
    Alcotest.test_case "shard merge equals unsharded (n=1,2,3,5)" `Quick
      test_shard_merge_equals_unsharded;
    Alcotest.test_case "shard merge with crash injection" `Quick
      test_shard_merge_with_crash_injection;
    Alcotest.test_case "empty shard yields a valid report" `Quick
      test_empty_shard_report_valid;
    Alcotest.test_case "shard journals merge to the whole campaign" `Quick
      test_shard_journals_merge;
    Alcotest.test_case "worst exit code precedence" `Quick
      test_worst_exit_code_precedence;
  ]
