(* Campaign runner: verdict equivalence against standalone verify,
   shared-encoding cache accounting, budget degradation, and the JSON
   report round-tripping through the in-tree JSON reader.

   Uses the same hand-built perception network as test_core:
     perception: x -> Dense [[1];[-1]] -> ReLU -> Dense [1,-1]
   with cut 2 exposing features (relu(x), relu(-x)). *)

module Campaign = Dpv_core.Campaign
module Characterizer = Dpv_core.Characterizer
module Verify = Dpv_core.Verify
module Json = Dpv_core.Json
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat

let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer =
  { Characterizer.head; cut; property_name = "x-at-least-half" }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut [| x |])

let risk_ge threshold =
  Risk.make
    ~name:(Printf.sprintf "out>=%g" threshold)
    [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make
    ~name:(Printf.sprintf "out<=%g" threshold)
    [ Risk.output_le 0 threshold ]

(* Four queries over two distinct (cut, bounds) keys: the box pair and
   the octagon pair each share one cache entry. *)
let queries () =
  [
    Campaign.query ~label:"reach-box" ~characterizer ~psi:(risk_ge 0.9)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"unreach-box" ~characterizer ~psi:(risk_ge 1.5)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"neg-oct" ~characterizer ~psi:(risk_le (-0.2))
      ~bounds:(Verify.Data_octagon visited_features) ();
    Campaign.query ~label:"neg-oct-deep" ~characterizer ~psi:(risk_le (-0.8))
      ~bounds:(Verify.Data_octagon visited_features) ();
  ]

(* Unwrap a [Done] outcome; any crash/skip in these clean-run tests is a
   test failure in itself. *)
let done_result (qr : Campaign.query_report) =
  match qr.Campaign.outcome with
  | Campaign.Done r -> r
  | Campaign.Crashed reason ->
      Alcotest.failf "%s: unexpected crash: %s" qr.Campaign.query.Campaign.label
        reason
  | Campaign.Skipped reason ->
      Alcotest.failf "%s: unexpectedly skipped: %s"
        qr.Campaign.query.Campaign.label reason

let test_campaign_matches_individual_verify () =
  let qs = queries () in
  let report = Campaign.run ~runners:2 ~perception qs in
  Alcotest.(check int) "one report per query" (List.length qs)
    (List.length report.Campaign.query_reports);
  List.iter2
    (fun (q : Campaign.query) (qr : Campaign.query_report) ->
      Alcotest.(check string) "reports keep input order" q.Campaign.label
        qr.Campaign.query.Campaign.label;
      let standalone =
        Verify.verify ~perception ~characterizer:q.Campaign.characterizer
          ~psi:q.Campaign.psi ~bounds:q.Campaign.bounds ()
      in
      Alcotest.(check string)
        (q.Campaign.label ^ ": verdict matches standalone verify")
        (Campaign.verdict_word standalone.Verify.verdict)
        (Campaign.verdict_word (done_result qr).Verify.verdict))
    qs report.Campaign.query_reports;
  Alcotest.(check bool) "clean run is not degraded" false
    report.Campaign.degraded

let test_campaign_cache_accounting () =
  let report = Campaign.run ~runners:1 ~perception (queries ()) in
  let cache = report.Campaign.cache in
  Alcotest.(check int) "two distinct (cut, bounds) keys" 2 cache.Campaign.entries;
  Alcotest.(check int) "misses = entries" 2 cache.Campaign.misses;
  Alcotest.(check int) "second query of each pair hits" 2 cache.Campaign.hits;
  let flags =
    List.map
      (fun (qr : Campaign.query_report) -> qr.Campaign.from_cache)
      report.Campaign.query_reports
  in
  Alcotest.(check (list bool)) "first of each key misses, second hits"
    [ false; true; false; true ] flags

let test_campaign_zero_budget_skips_and_degrades () =
  let report = Campaign.run ~runners:1 ~budget_s:0.0 ~perception (queries ()) in
  List.iter
    (fun (qr : Campaign.query_report) ->
      match qr.Campaign.outcome with
      | Campaign.Skipped _ -> ()
      | Campaign.Done r ->
          Alcotest.failf "%s: expected skip under zero budget, got %a"
            qr.Campaign.query.Campaign.label Verify.pp_verdict r.Verify.verdict
      | Campaign.Crashed reason ->
          Alcotest.failf "%s: expected skip under zero budget, got crash: %s"
            qr.Campaign.query.Campaign.label reason)
    report.Campaign.query_reports;
  Alcotest.(check bool) "report is degraded" true report.Campaign.degraded;
  Alcotest.(check int) "all queries counted as skipped"
    (List.length report.Campaign.query_reports)
    report.Campaign.skipped;
  Alcotest.(check int) "nothing crashed" 0 report.Campaign.crashed

let jget label = function
  | Some v -> v
  | None -> Alcotest.failf "json: missing or mistyped %s" label

let mem key j = jget key (Json.member key j)

let test_campaign_json_report () =
  let report = Campaign.run ~runners:2 ~perception (queries ()) in
  let json = Campaign.to_json report in
  match Json.of_string json with
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  | Ok j ->
      Alcotest.(check string) "schema tag" "dpv-campaign/2"
        (jget "schema" (Json.to_string (mem "schema" j)));
      Alcotest.(check int) "runners recorded" 2
        (jget "runners" (Json.to_int (mem "runners" j)));
      Alcotest.(check bool) "degraded flag serialized" false
        (match mem "degraded" j with
        | Json.Bool b -> b
        | _ -> Alcotest.fail "degraded is not a bool");
      Alcotest.(check int) "crashed counter serialized" 0
        (jget "crashed" (Json.to_int (mem "crashed" j)));
      Alcotest.(check int) "retried counter serialized" 0
        (jget "retried" (Json.to_int (mem "retried" j)));
      let cache = mem "cache" j in
      Alcotest.(check int) "cache hits serialized" 2
        (jget "hits" (Json.to_int (mem "hits" cache)));
      let qs = jget "queries" (Json.to_list (mem "queries" j)) in
      Alcotest.(check int) "four query records" 4 (List.length qs);
      List.iter
        (fun q ->
          Alcotest.(check string) "outcome is done" "done"
            (jget "outcome" (Json.to_string (mem "outcome" q)));
          let verdict = jget "verdict" (Json.to_string (mem "verdict" q)) in
          Alcotest.(check bool) "verdict is a known word" true
            (List.mem verdict [ "safe"; "unsafe"; "unknown" ]);
          ignore (jget "attempts" (Json.to_int (mem "attempts" q)));
          ignore (jget "nodes" (Json.to_int (mem "nodes" (mem "milp" q)))))
        qs

let tests =
  [
    Alcotest.test_case "campaign matches individual verify" `Quick
      test_campaign_matches_individual_verify;
    Alcotest.test_case "cache accounting" `Quick test_campaign_cache_accounting;
    Alcotest.test_case "zero budget skips and degrades" `Quick
      test_campaign_zero_budget_skips_and_degrades;
    Alcotest.test_case "json report" `Quick test_campaign_json_report;
  ]
