(* Campaign runner: verdict equivalence against standalone verify,
   shared-encoding cache accounting, budget degradation, and the JSON
   report round-tripping through the in-tree JSON reader.

   Uses the same hand-built perception network as test_core:
     perception: x -> Dense [[1];[-1]] -> ReLU -> Dense [1,-1]
   with cut 2 exposing features (relu(x), relu(-x)). *)

module Campaign = Dpv_core.Campaign
module Characterizer = Dpv_core.Characterizer
module Verify = Dpv_core.Verify
module Json = Dpv_core.Json
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat

let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer =
  { Characterizer.head; cut; property_name = "x-at-least-half" }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut [| x |])

let risk_ge threshold =
  Risk.make
    ~name:(Printf.sprintf "out>=%g" threshold)
    [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make
    ~name:(Printf.sprintf "out<=%g" threshold)
    [ Risk.output_le 0 threshold ]

(* Four queries over two distinct (cut, bounds) keys: the box pair and
   the octagon pair each share one cache entry. *)
let queries () =
  [
    Campaign.query ~label:"reach-box" ~characterizer ~psi:(risk_ge 0.9)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"unreach-box" ~characterizer ~psi:(risk_ge 1.5)
      ~bounds:(Verify.Data_box visited_features) ();
    Campaign.query ~label:"neg-oct" ~characterizer ~psi:(risk_le (-0.2))
      ~bounds:(Verify.Data_octagon visited_features) ();
    Campaign.query ~label:"neg-oct-deep" ~characterizer ~psi:(risk_le (-0.8))
      ~bounds:(Verify.Data_octagon visited_features) ();
  ]

let test_campaign_matches_individual_verify () =
  let qs = queries () in
  let report = Campaign.run ~runners:2 ~perception qs in
  Alcotest.(check int) "one report per query" (List.length qs)
    (List.length report.Campaign.query_reports);
  List.iter2
    (fun (q : Campaign.query) (qr : Campaign.query_report) ->
      Alcotest.(check string) "reports keep input order" q.Campaign.label
        qr.Campaign.query.Campaign.label;
      let standalone =
        Verify.verify ~perception ~characterizer:q.Campaign.characterizer
          ~psi:q.Campaign.psi ~bounds:q.Campaign.bounds ()
      in
      Alcotest.(check string)
        (q.Campaign.label ^ ": verdict matches standalone verify")
        (Campaign.verdict_word standalone.Verify.verdict)
        (Campaign.verdict_word qr.Campaign.result.Verify.verdict))
    qs report.Campaign.query_reports

let test_campaign_cache_accounting () =
  let report = Campaign.run ~runners:1 ~perception (queries ()) in
  let cache = report.Campaign.cache in
  Alcotest.(check int) "two distinct (cut, bounds) keys" 2 cache.Campaign.entries;
  Alcotest.(check int) "misses = entries" 2 cache.Campaign.misses;
  Alcotest.(check int) "second query of each pair hits" 2 cache.Campaign.hits;
  let flags =
    List.map
      (fun (qr : Campaign.query_report) -> qr.Campaign.from_cache)
      report.Campaign.query_reports
  in
  Alcotest.(check (list bool)) "first of each key misses, second hits"
    [ false; true; false; true ] flags

let test_campaign_zero_budget_degrades_to_unknown () =
  let report = Campaign.run ~runners:1 ~budget_s:0.0 ~perception (queries ()) in
  List.iter
    (fun (qr : Campaign.query_report) ->
      match qr.Campaign.result.Verify.verdict with
      | Verify.Unknown _ -> ()
      | v ->
          Alcotest.failf "%s: expected unknown under zero budget, got %a"
            qr.Campaign.query.Campaign.label Verify.pp_verdict v)
    report.Campaign.query_reports

let jget label = function
  | Some v -> v
  | None -> Alcotest.failf "json: missing or mistyped %s" label

let mem key j = jget key (Json.member key j)

let test_campaign_json_report () =
  let report = Campaign.run ~runners:2 ~perception (queries ()) in
  let json = Campaign.to_json report in
  match Json.of_string json with
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  | Ok j ->
      Alcotest.(check string) "schema tag" "dpv-campaign/1"
        (jget "schema" (Json.to_string (mem "schema" j)));
      Alcotest.(check int) "runners recorded" 2
        (jget "runners" (Json.to_int (mem "runners" j)));
      let cache = mem "cache" j in
      Alcotest.(check int) "cache hits serialized" 2
        (jget "hits" (Json.to_int (mem "hits" cache)));
      let qs = jget "queries" (Json.to_list (mem "queries" j)) in
      Alcotest.(check int) "four query records" 4 (List.length qs);
      List.iter
        (fun q ->
          let verdict = jget "verdict" (Json.to_string (mem "verdict" q)) in
          Alcotest.(check bool) "verdict is a known word" true
            (List.mem verdict [ "safe"; "unsafe"; "unknown" ]);
          ignore (jget "nodes" (Json.to_int (mem "nodes" (mem "milp" q)))))
        qs

let tests =
  [
    Alcotest.test_case "campaign matches individual verify" `Quick
      test_campaign_matches_individual_verify;
    Alcotest.test_case "cache accounting" `Quick test_campaign_cache_accounting;
    Alcotest.test_case "zero budget degrades to unknown" `Quick
      test_campaign_zero_budget_degrades_to_unknown;
    Alcotest.test_case "json report" `Quick test_campaign_json_report;
  ]
