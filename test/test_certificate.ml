(* Tests for verification certificates: round-trips, monitor
   reconstruction and witness replay. *)

module Certificate = Dpv_core.Certificate
module Characterizer = Dpv_core.Characterizer
module Statistical = Dpv_core.Statistical
module Verify = Dpv_core.Verify
module Workflow = Dpv_core.Workflow
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Polyhedron = Dpv_monitor.Polyhedron
module Runtime = Dpv_monitor.Runtime
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat

let check_float = Alcotest.(check (float 1e-9))

(* Hand-built model shared with Test_core. *)
let perception =
  Network.create ~input_dim:1
    [
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |]) ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let table =
  { Statistical.alpha = 0.4; beta = 0.05; gamma = 0.03; delta = 0.52; n = 200 }

let psi = Risk.make ~name:"y0 >= 2.5" [ Risk.output_ge 0 2.5 ]

let region_points =
  Array.init 21 (fun i ->
      let x = -1.0 +. (float_of_int i /. 10.0) in
      Network.forward_upto perception ~cut:2 [| x |])

let conditional_cert =
  let poly = Polyhedron.fit_octagon region_points in
  {
    Certificate.property_name = "bends-right";
    psi;
    strategy = "data-octagon";
    cut = 2;
    verdict = Certificate.Safe_conditional;
    region = Polyhedron.halfspaces poly;
    region_dim = 2;
    head;
    table;
  }

let unsafe_cert =
  {
    conditional_cert with
    Certificate.verdict = Certificate.Unsafe [| 0.95; 0.0 |];
    psi = Risk.make ~name:"y0 >= 0.9" [ Risk.output_ge 0 0.9 ];
    region = [];
    region_dim = 0;
  }

let certs_equal a b =
  a.Certificate.property_name = b.Certificate.property_name
  && a.Certificate.strategy = b.Certificate.strategy
  && a.Certificate.cut = b.Certificate.cut
  && a.Certificate.region = b.Certificate.region
  && a.Certificate.region_dim = b.Certificate.region_dim
  && a.Certificate.table = b.Certificate.table
  && (match (a.Certificate.verdict, b.Certificate.verdict) with
     | Certificate.Safe_unconditional, Certificate.Safe_unconditional
     | Certificate.Safe_conditional, Certificate.Safe_conditional ->
         true
     | Certificate.Unsafe x, Certificate.Unsafe y -> x = y
     | Certificate.Inconclusive x, Certificate.Inconclusive y -> x = y
     | _ -> false)

let test_roundtrip_conditional () =
  match Certificate.of_string (Certificate.to_string conditional_cert) with
  | Ok c ->
      Alcotest.(check bool) "fields equal" true (certs_equal c conditional_cert);
      (* embedded head is functionally identical (exact floats) *)
      Alcotest.(check bool) "head equal" true
        (Network.forward c.Certificate.head [| 0.7; 0.1 |]
        = Network.forward head [| 0.7; 0.1 |])
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_roundtrip_unsafe () =
  match Certificate.of_string (Certificate.to_string unsafe_cert) with
  | Ok c -> Alcotest.(check bool) "fields equal" true (certs_equal c unsafe_cert)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_roundtrip_inconclusive () =
  let cert =
    { unsafe_cert with Certificate.verdict = Certificate.Inconclusive "node limit" }
  in
  match Certificate.of_string (Certificate.to_string cert) with
  | Ok c -> Alcotest.(check bool) "fields equal" true (certs_equal c cert)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_file_roundtrip () =
  let path = Filename.temp_file "dpv" ".cert" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Certificate.save conditional_cert ~path;
      match Certificate.load ~path with
      | Ok c -> Alcotest.(check bool) "equal" true (certs_equal c conditional_cert)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_rejects_garbage () =
  (match Certificate.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Certificate.load ~path:"/nonexistent/cert" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded nonexistent file"

(* [of_string] promises to never raise: sweep every byte-length prefix
   of a real certificate through the parser.  Each prefix must come
   back as [Ok] or [Error] — any exception fails the test. *)
let test_truncation_sweep () =
  let full = Certificate.to_string conditional_cert in
  for len = 0 to String.length full - 1 do
    let prefix = String.sub full 0 len in
    match Certificate.of_string prefix with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "of_string raised %s on a %d-byte prefix"
          (Printexc.to_string e) len
  done

let test_corrupt_line_is_positioned () =
  (* Corrupting a field deep in the payload must produce an [Error]
     whose message points at a line, not a raw exception. *)
  let full = Certificate.to_string conditional_cert in
  let corrupted =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line >= 4 && String.sub line 0 4 = "cut " then
             "cut banana"
           else line)
         (String.split_on_char '\n' full))
  in
  match Certificate.of_string corrupted with
  | Ok _ -> Alcotest.fail "accepted a corrupted cut line"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S carries a line number" m)
        true
        (String.length m >= 5 && String.sub m 0 5 = "line ")

let test_guarantee () = check_float "1 - gamma" 0.97 (Certificate.guarantee conditional_cert)

let test_monitor_reconstruction () =
  match Certificate.monitor conditional_cert ~network:perception with
  | Some monitor ->
      (* inside: features of a real input; outside: a far-away point *)
      let _, v_in = Runtime.infer monitor [| 0.5 |] in
      Alcotest.(check bool) "real input inside" true (v_in = Runtime.In_region);
      Alcotest.(check int) "region dim" 2 (Runtime.region_dim monitor)
  | None -> Alcotest.fail "expected a monitor"

let test_monitor_absent_for_unconditional () =
  let cert =
    { conditional_cert with Certificate.verdict = Certificate.Safe_unconditional }
  in
  Alcotest.(check bool) "no monitor" true
    (Certificate.monitor cert ~network:perception = None)

let test_validate_witness () =
  (* witness (0.95, 0) -> out 0.95 >= 0.9, logit 0.45 >= 0: confirmed *)
  Alcotest.(check (option bool)) "valid witness" (Some true)
    (Certificate.validate_witness unsafe_cert ~perception);
  (* a corrupted witness fails replay *)
  let corrupted =
    { unsafe_cert with Certificate.verdict = Certificate.Unsafe [| 0.1; 0.0 |] }
  in
  Alcotest.(check (option bool)) "corrupted witness" (Some false)
    (Certificate.validate_witness corrupted ~perception);
  Alcotest.(check (option bool)) "nothing to check" None
    (Certificate.validate_witness conditional_cert ~perception)

let test_of_case_end_to_end () =
  (* Run a real (tiny) workflow case and certify it. *)
  let tiny_setup =
    {
      Workflow.default_setup with
      seed = 13;
      hidden = [ 8; 4 ];
      cut = 6;
      train_size = 120;
      val_size = 40;
      perception_epochs = 6;
      characterizer_samples = 80;
      bounds_samples = 80;
      scenario =
        {
          Dpv_scenario.Generator.default_config with
          camera =
            { Dpv_scenario.Camera.default_config with width = 8; height = 6 };
        };
    }
  in
  let prepared = Workflow.prepare tiny_setup in
  let case =
    Workflow.run_case prepared ~property:Dpv_scenario.Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ~threshold:30.0 ())
      ~strategy:Workflow.Data_octagon
  in
  let cert =
    Certificate.of_case case ~features:prepared.Workflow.bounds_features
  in
  Alcotest.(check bool) "conditional safe" true
    (cert.Certificate.verdict = Certificate.Safe_conditional);
  Alcotest.(check bool) "has monitoring faces" true
    (List.length cert.Certificate.region > 0);
  (* serialize, reload, rebuild the monitor, stream a frame *)
  match Certificate.of_string (Certificate.to_string cert) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok cert' -> (
      match Certificate.monitor cert' ~network:prepared.Workflow.perception with
      | None -> Alcotest.fail "expected monitor"
      | Some monitor ->
          let _, verdict =
            Runtime.infer monitor prepared.Workflow.bounds_images.(0)
          in
          Alcotest.(check bool) "training frame inside region" true
            (verdict = Runtime.In_region))

let tests =
  [
    Alcotest.test_case "roundtrip conditional" `Quick test_roundtrip_conditional;
    Alcotest.test_case "roundtrip unsafe" `Quick test_roundtrip_unsafe;
    Alcotest.test_case "roundtrip inconclusive" `Quick test_roundtrip_inconclusive;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "truncation sweep never raises" `Quick
      test_truncation_sweep;
    Alcotest.test_case "corrupt line error is positioned" `Quick
      test_corrupt_line_is_positioned;
    Alcotest.test_case "guarantee" `Quick test_guarantee;
    Alcotest.test_case "monitor reconstruction" `Quick test_monitor_reconstruction;
    Alcotest.test_case "no monitor when unconditional" `Quick test_monitor_absent_for_unconditional;
    Alcotest.test_case "validate witness" `Quick test_validate_witness;
    Alcotest.test_case "of_case end-to-end" `Slow test_of_case_end_to_end;
  ]
