(* Tests for the neural network representation: layers, networks,
   initialization, serialization. *)

module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Serialize = Dpv_nn.Serialize
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

let dense_2x2 =
  Layer.dense
    ~weights:(Mat.of_rows [| [| 1.0; 2.0 |]; [| -1.0; 0.5 |] |])
    ~bias:[| 0.5; -0.5 |]

let test_dense_forward () =
  let y = Layer.forward dense_2x2 [| 1.0; 1.0 |] in
  Alcotest.(check bool) "Wx+b" true (Vec.approx_equal y [| 3.5; -1.0 |])

let test_relu_forward () =
  let y = Layer.forward Layer.Relu [| -1.0; 0.0; 2.0 |] in
  Alcotest.(check bool) "relu" true (Vec.approx_equal y [| 0.0; 0.0; 2.0 |])

let test_sigmoid_forward () =
  let y = Layer.forward Layer.Sigmoid [| 0.0 |] in
  check_float "sigmoid(0)=0.5" 0.5 y.(0);
  let y = Layer.forward Layer.Sigmoid [| 100.0 |] in
  Alcotest.(check bool) "sigmoid(100)~1" true (y.(0) > 0.999)

let test_tanh_forward () =
  let y = Layer.forward Layer.Tanh [| 0.0; 1.0 |] in
  check_float "tanh(0)" 0.0 y.(0);
  check_float "tanh(1)" (tanh 1.0) y.(1)

let test_batch_norm_forward () =
  let bn =
    Layer.Batch_norm
      {
        gamma = [| 2.0 |];
        beta = [| 1.0 |];
        mean = [| 3.0 |];
        var = [| 4.0 |];
        eps = 0.0;
      }
  in
  (* y = 2*(x-3)/2 + 1 = x - 2 *)
  let y = Layer.forward bn [| 5.0 |] in
  check_float "bn" 3.0 y.(0)

let test_batch_norm_scale_shift () =
  let bn =
    Layer.Batch_norm
      {
        gamma = [| 2.0 |];
        beta = [| 1.0 |];
        mean = [| 3.0 |];
        var = [| 4.0 |];
        eps = 0.0;
      }
  in
  match Layer.batch_norm_scale_shift bn with
  | Some (scale, shift) ->
      check_float "scale" 1.0 scale.(0);
      check_float "shift" (-2.0) shift.(0);
      (* forward must agree with scale*x + shift *)
      let x = 7.3 in
      let y = Layer.forward bn [| x |] in
      check_float "consistency" ((scale.(0) *. x) +. shift.(0)) y.(0)
  | None -> Alcotest.fail "expected scale/shift"

let test_batch_norm_identity () =
  let bn = Layer.batch_norm_identity 3 in
  let x = [| 1.0; -2.0; 0.5 |] in
  let y = Layer.forward bn x in
  Alcotest.(check bool) "close to identity" true (Vec.approx_equal ~tol:1e-4 y x)

let test_dense_bias_mismatch () =
  Alcotest.check_raises "bad bias"
    (Invalid_argument "Layer.dense: bias length must equal weight rows")
    (fun () ->
      ignore (Layer.dense ~weights:(Mat.identity 2) ~bias:[| 1.0 |]))

let test_layer_dims () =
  Alcotest.(check (option int)) "dense in" (Some 2) (Layer.in_dim dense_2x2);
  Alcotest.(check (option int)) "dense out" (Some 2) (Layer.out_dim dense_2x2);
  Alcotest.(check (option int)) "relu in" None (Layer.in_dim Layer.Relu);
  Alcotest.(check int) "relu given" 7 (Layer.out_dim_given Layer.Relu 7)

let test_layer_classification () =
  Alcotest.(check bool) "dense affine" true (Layer.is_affine dense_2x2);
  Alcotest.(check bool) "relu not affine" false (Layer.is_affine Layer.Relu);
  Alcotest.(check bool) "relu pwl" true (Layer.is_piecewise_linear Layer.Relu);
  Alcotest.(check bool) "sigmoid not pwl" false
    (Layer.is_piecewise_linear Layer.Sigmoid)

(* -- networks -- *)

let small_net =
  Network.create ~input_dim:2 [ dense_2x2; Layer.Relu; dense_2x2 ]

let test_network_dims () =
  Alcotest.(check int) "layers" 3 (Network.num_layers small_net);
  Alcotest.(check (array int)) "dims" [| 2; 2; 2; 2 |] (Network.dims small_net)

let test_network_forward_composition () =
  let x = [| 1.0; -1.0 |] in
  let manual =
    Layer.forward dense_2x2 (Layer.forward Layer.Relu (Layer.forward dense_2x2 x))
  in
  Alcotest.(check bool) "composition" true
    (Vec.approx_equal (Network.forward small_net x) manual)

let test_network_forward_upto () =
  let x = [| 0.5; 0.25 |] in
  Alcotest.(check bool) "cut 0 is input" true
    (Vec.approx_equal (Network.forward_upto small_net ~cut:0 x) x);
  Alcotest.(check bool) "cut L is forward" true
    (Vec.approx_equal
       (Network.forward_upto small_net ~cut:3 x)
       (Network.forward small_net x))

let test_network_activations () =
  let x = [| 1.0; 2.0 |] in
  let acts = Network.activations small_net x in
  Alcotest.(check int) "length" 4 (Array.length acts);
  Alcotest.(check bool) "0 is input" true (Vec.approx_equal acts.(0) x);
  Alcotest.(check bool) "each matches forward_upto" true
    (List.for_all
       (fun l -> Vec.approx_equal acts.(l) (Network.forward_upto small_net ~cut:l x))
       [ 0; 1; 2; 3 ])

let test_prefix_suffix_compose () =
  let x = [| -0.3; 0.8 |] in
  List.iter
    (fun cut ->
      let p = Network.prefix small_net ~cut in
      let s = Network.suffix small_net ~cut in
      let composed = Network.forward s (Network.forward p x) in
      Alcotest.(check bool)
        (Printf.sprintf "cut %d" cut)
        true
        (Vec.approx_equal composed (Network.forward small_net x)))
    [ 0; 1; 2; 3 ]

let test_stack () =
  let f = Network.prefix small_net ~cut:1 in
  let g = Network.suffix small_net ~cut:1 in
  let stacked = Network.stack f g in
  let x = [| 0.1; 0.2 |] in
  Alcotest.(check bool) "stack = original" true
    (Vec.approx_equal (Network.forward stacked x) (Network.forward small_net x))

let test_insert_layer () =
  let net = Network.insert_layer small_net ~after:1 (Layer.batch_norm_identity 2) in
  Alcotest.(check int) "one more layer" 4 (Network.num_layers net);
  let x = [| 0.4; -0.9 |] in
  Alcotest.(check bool) "identity bn preserves function" true
    (Vec.approx_equal ~tol:1e-4 (Network.forward net x) (Network.forward small_net x))

let test_shape_mismatch_rejected () =
  Alcotest.check_raises "bad chain"
    (Invalid_argument "Layer dense expects input dim 2, got 3") (fun () ->
      ignore (Network.create ~input_dim:3 [ dense_2x2 ]))

let test_num_parameters () =
  (* two dense 2x2+2 layers = 2 * (4 + 2) = 12 *)
  Alcotest.(check int) "params" 12 (Network.num_parameters small_net)

let test_is_piecewise_linear () =
  Alcotest.(check bool) "relu net" true (Network.is_piecewise_linear small_net);
  let with_tanh = Network.append small_net Layer.Tanh in
  Alcotest.(check bool) "tanh net" false (Network.is_piecewise_linear with_tanh)

(* -- initializers -- *)

let test_mlp_shape () =
  let rng = Rng.create 1 in
  let net = Init.mlp rng ~input_dim:5 ~hidden:[ 7; 3 ] ~output_dim:2 in
  Alcotest.(check int) "input" 5 (Network.input_dim net);
  Alcotest.(check int) "output" 2 (Network.output_dim net);
  Alcotest.(check int) "layers: D R D R D" 5 (Network.num_layers net)

let test_mlp_batch_norm_shape () =
  let rng = Rng.create 1 in
  let net = Init.mlp_batch_norm rng ~input_dim:5 ~hidden:[ 7; 3 ] ~output_dim:2 in
  Alcotest.(check int) "layers: D B R D B R D" 7 (Network.num_layers net)

let test_he_init_scale () =
  let rng = Rng.create 9 in
  let layer = Init.he_dense rng ~in_dim:100 ~out_dim:50 in
  match layer with
  | Layer.Dense { weights; bias } ->
      let flat = Array.concat (Array.to_list (Mat.to_rows weights)) in
      let std = Dpv_tensor.Stats.std flat in
      Alcotest.(check bool) "std near sqrt(2/100)" true
        (Float.abs (std -. sqrt 0.02) < 0.02);
      Alcotest.(check bool) "zero bias" true
        (Array.for_all (fun b -> b = 0.0) bias)
  | _ -> Alcotest.fail "expected dense"

(* -- serialization -- *)

let test_serialize_roundtrip () =
  let rng = Rng.create 4 in
  let net = Init.mlp_batch_norm rng ~input_dim:6 ~hidden:[ 5; 4 ] ~output_dim:3 in
  let net' = Serialize.of_string (Serialize.to_string net) in
  Alcotest.(check int) "layers" (Network.num_layers net) (Network.num_layers net');
  let rng2 = Rng.create 5 in
  for _ = 1 to 20 do
    let x = Array.init 6 (fun _ -> Rng.uniform rng2 ~lo:(-2.0) ~hi:2.0) in
    Alcotest.(check bool) "identical function (exact)" true
      (Network.forward net x = Network.forward net' x)
  done

let test_serialize_file_roundtrip () =
  let rng = Rng.create 6 in
  let net = Init.mlp rng ~input_dim:3 ~hidden:[ 4 ] ~output_dim:1 in
  let path = Filename.temp_file "dpv" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save net ~path;
      let net' = Serialize.load ~path in
      let x = [| 0.1; 0.2; 0.3 |] in
      Alcotest.(check bool) "file roundtrip" true
        (Network.forward net x = Network.forward net' x))

let test_serialize_rejects_garbage () =
  Alcotest.check_raises "bad magic" (Failure "Serialize: bad magic line")
    (fun () -> ignore (Serialize.of_string "not a network\n"))

let test_serialize_all_layer_kinds () =
  let net =
    Network.create ~input_dim:2
      [
        dense_2x2;
        Layer.Relu;
        Layer.batch_norm_identity 2;
        Layer.Sigmoid;
        Layer.Tanh;
      ]
  in
  let net' = Serialize.of_string (Serialize.to_string net) in
  let x = [| 0.7; -0.7 |] in
  Alcotest.(check bool) "roundtrip with every layer kind" true
    (Network.forward net x = Network.forward net' x)

let qcheck_forward_deterministic =
  QCheck.Test.make ~count:50 ~name:"forward is deterministic"
    QCheck.(pair small_int (list_of_size Gen.(2 -- 2) (float_range (-5.) 5.)))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let net = Init.mlp rng ~input_dim:2 ~hidden:[ 3 ] ~output_dim:1 in
      let x = Array.of_list xs in
      Network.forward net x = Network.forward net x)

let tests =
  [
    Alcotest.test_case "dense forward" `Quick test_dense_forward;
    Alcotest.test_case "relu forward" `Quick test_relu_forward;
    Alcotest.test_case "sigmoid forward" `Quick test_sigmoid_forward;
    Alcotest.test_case "tanh forward" `Quick test_tanh_forward;
    Alcotest.test_case "batch norm forward" `Quick test_batch_norm_forward;
    Alcotest.test_case "batch norm scale/shift" `Quick test_batch_norm_scale_shift;
    Alcotest.test_case "batch norm identity" `Quick test_batch_norm_identity;
    Alcotest.test_case "dense bias mismatch raises" `Quick test_dense_bias_mismatch;
    Alcotest.test_case "layer dims" `Quick test_layer_dims;
    Alcotest.test_case "layer classification" `Quick test_layer_classification;
    Alcotest.test_case "network dims" `Quick test_network_dims;
    Alcotest.test_case "forward = composition" `Quick test_network_forward_composition;
    Alcotest.test_case "forward_upto endpoints" `Quick test_network_forward_upto;
    Alcotest.test_case "activations" `Quick test_network_activations;
    Alcotest.test_case "prefix/suffix compose" `Quick test_prefix_suffix_compose;
    Alcotest.test_case "stack" `Quick test_stack;
    Alcotest.test_case "insert layer" `Quick test_insert_layer;
    Alcotest.test_case "shape mismatch rejected" `Quick test_shape_mismatch_rejected;
    Alcotest.test_case "num parameters" `Quick test_num_parameters;
    Alcotest.test_case "piecewise-linear check" `Quick test_is_piecewise_linear;
    Alcotest.test_case "mlp shape" `Quick test_mlp_shape;
    Alcotest.test_case "mlp+bn shape" `Quick test_mlp_batch_norm_shape;
    Alcotest.test_case "he init scale" `Quick test_he_init_scale;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "serialize file roundtrip" `Quick test_serialize_file_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    Alcotest.test_case "serialize all layer kinds" `Quick test_serialize_all_layer_kinds;
    QCheck_alcotest.to_alcotest qcheck_forward_deterministic;
  ]
