(* Deep property tests for the LP/MILP solver: weak duality, cross-checks
   against brute-force enumeration, and invariances that exact solvers
   must satisfy.  These guard the verifier's trust anchor. *)

module Lp = Dpv_linprog.Lp
module Simplex = Dpv_linprog.Simplex
module Milp = Dpv_linprog.Milp
module Rng = Dpv_tensor.Rng

(* Random LP in inequality form  max c'x  s.t. Ax <= b, 0 <= x <= u,
   with b >= 0 so the origin is always feasible. *)
type random_lp = {
  nv : int;
  a : float array array;
  b : float array;
  c : float array;
  u : float;
}

let make_random_lp rng =
  let nv = 2 + Rng.int rng 3 in
  let nc = 1 + Rng.int rng 4 in
  {
    nv;
    a =
      Array.init nc (fun _ ->
          Array.init nv (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:2.0));
    b = Array.init nc (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:10.0);
    c = Array.init nv (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0);
    u = 5.0;
  }

let build_model lp =
  let m = ref (Lp.create ()) in
  let vars =
    Array.init lp.nv (fun _ ->
        let model, v = Lp.add_var ~lo:0.0 ~up:lp.u !m in
        m := model;
        v)
  in
  Array.iteri
    (fun i row ->
      let terms = Array.to_list (Array.mapi (fun j c -> (c, vars.(j))) row) in
      m := Lp.add_constraint !m terms Lp.Le lp.b.(i))
    lp.a;
  m :=
    Lp.set_objective !m Lp.Maximize
      (Array.to_list (Array.mapi (fun j c -> (c, vars.(j))) lp.c));
  (!m, vars)

(* Weak duality: any feasible point of the explicit dual bounds the
   primal optimum from above.  We construct dual-feasible points from
   random non-negative multipliers by scaling, so the check is exact. *)
let dual_upper_bound lp rng =
  (* y >= 0 (per row), z >= 0 (per upper bound) with A'y + z >= c.
     Take random y, then set z_j = max(0, c_j - (A'y)_j): always dual
     feasible.  Bound = b'y + u * sum z. *)
  let nc = Array.length lp.a in
  let y = Array.init nc (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:1.0) in
  let aty =
    Array.init lp.nv (fun j ->
        let acc = ref 0.0 in
        for i = 0 to nc - 1 do
          acc := !acc +. (lp.a.(i).(j) *. y.(i))
        done;
        !acc)
  in
  let z = Array.mapi (fun j v -> Float.max 0.0 (lp.c.(j) -. v)) aty in
  let by = ref 0.0 in
  Array.iteri (fun i v -> by := !by +. (lp.b.(i) *. v)) y;
  !by +. (lp.u *. Array.fold_left ( +. ) 0.0 z)

let qcheck_weak_duality =
  QCheck.Test.make ~count:150 ~name:"weak duality: primal opt <= dual bounds"
    QCheck.(pair small_int small_int)
    (fun (seed_a, seed_b) ->
      let rng = Rng.create ((seed_a * 7919) + seed_b + 1) in
      let lp = make_random_lp rng in
      let model, _ = build_model lp in
      match Simplex.solve model with
      | Simplex.Optimal { objective; _ } ->
          let ok = ref true in
          for _ = 1 to 10 do
            if dual_upper_bound lp rng < objective -. 1e-6 then ok := false
          done;
          !ok
      | Simplex.Infeasible | Simplex.Unbounded -> false (* origin feasible, box bounded *))

let qcheck_objective_scaling_invariance =
  QCheck.Test.make ~count:100 ~name:"scaling the objective scales the optimum"
    QCheck.(pair small_int (float_range 0.1 5.0))
    (fun (seed, k) ->
      let rng = Rng.create (seed + 3) in
      let lp = make_random_lp rng in
      let model, vars = build_model lp in
      let scaled =
        Lp.set_objective model Lp.Maximize
          (Array.to_list (Array.mapi (fun j c -> (k *. c, vars.(j))) lp.c))
      in
      match (Simplex.solve model, Simplex.solve scaled) with
      | Simplex.Optimal { objective = o1; _ }, Simplex.Optimal { objective = o2; _ }
        ->
          Float.abs ((k *. o1) -. o2) <= 1e-6 *. Float.max 1.0 (Float.abs o2)
      | _ -> false)

let qcheck_adding_constraint_weakens_optimum =
  QCheck.Test.make ~count:100
    ~name:"an extra constraint never improves a maximization"
    QCheck.(pair small_int small_int)
    (fun (seed_a, seed_b) ->
      let rng = Rng.create ((seed_a * 31) + seed_b + 11) in
      let lp = make_random_lp rng in
      let model, vars = build_model lp in
      let extra_terms =
        Array.to_list
          (Array.map (fun v -> (Rng.uniform rng ~lo:0.0 ~hi:1.0, v)) vars)
      in
      let tightened =
        Lp.add_constraint model extra_terms Lp.Le (Rng.uniform rng ~lo:0.1 ~hi:5.0)
      in
      match (Simplex.solve model, Simplex.solve tightened) with
      | Simplex.Optimal { objective = o1; _ }, Simplex.Optimal { objective = o2; _ }
        ->
          o2 <= o1 +. 1e-6
      | Simplex.Optimal _, Simplex.Infeasible -> true
      | _ -> false)

(* MILP against brute force: small binary programs are enumerable. *)
let qcheck_milp_vs_bruteforce =
  QCheck.Test.make ~count:80 ~name:"branch-and-bound matches brute force"
    QCheck.(pair small_int small_int)
    (fun (seed_a, seed_b) ->
      let rng = Rng.create ((seed_a * 131) + seed_b + 17) in
      let nv = 2 + Rng.int rng 4 in
      let weights = Array.init nv (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:5.0) in
      let values = Array.init nv (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:5.0) in
      let capacity = Rng.uniform rng ~lo:1.0 ~hi:8.0 in
      (* knapsack: max v'x st w'x <= capacity, x binary *)
      let m = ref (Lp.create ()) in
      let vars =
        Array.init nv (fun _ ->
            let model, v = Lp.add_var ~kind:Lp.Binary !m in
            m := model;
            v)
      in
      m :=
        Lp.add_constraint !m
          (Array.to_list (Array.mapi (fun j w -> (w, vars.(j))) weights))
          Lp.Le capacity;
      m :=
        Lp.set_objective !m Lp.Maximize
          (Array.to_list (Array.mapi (fun j v -> (v, vars.(j))) values));
      let brute =
        let best = ref neg_infinity in
        for mask = 0 to (1 lsl nv) - 1 do
          let w = ref 0.0 and v = ref 0.0 in
          for j = 0 to nv - 1 do
            if mask land (1 lsl j) <> 0 then begin
              w := !w +. weights.(j);
              v := !v +. values.(j)
            end
          done;
          if !w <= capacity +. 1e-12 && !v > !best then best := !v
        done;
        !best
      in
      match Milp.solve !m with
      | Milp.Optimal { objective; _ } -> Float.abs (objective -. brute) <= 1e-6
      | Milp.Feasible _ | Milp.Infeasible | Milp.Unbounded | Milp.Node_limit
      | Milp.Timeout ->
          false)

let qcheck_milp_equalities_vs_bruteforce =
  QCheck.Test.make ~count:60
    ~name:"milp with equality constraints matches brute force"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 23) in
      let nv = 3 + Rng.int rng 2 in
      (* exactly-k selection: max v'x st sum x = k *)
      let k = 1 + Rng.int rng (nv - 1) in
      let values = Array.init nv (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
      let m = ref (Lp.create ()) in
      let vars =
        Array.init nv (fun _ ->
            let model, v = Lp.add_var ~kind:Lp.Binary !m in
            m := model;
            v)
      in
      m :=
        Lp.add_constraint !m
          (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
          Lp.Eq (float_of_int k);
      m :=
        Lp.set_objective !m Lp.Maximize
          (Array.to_list (Array.mapi (fun j v -> (v, vars.(j))) values));
      let brute =
        let best = ref neg_infinity in
        for mask = 0 to (1 lsl nv) - 1 do
          let bits = ref 0 and v = ref 0.0 in
          for j = 0 to nv - 1 do
            if mask land (1 lsl j) <> 0 then begin
              incr bits;
              v := !v +. values.(j)
            end
          done;
          if !bits = k && !v > !best then best := !v
        done;
        !best
      in
      match Milp.solve !m with
      | Milp.Optimal { objective; _ } -> Float.abs (objective -. brute) <= 1e-6
      | Milp.Feasible _ | Milp.Infeasible | Milp.Unbounded | Milp.Node_limit
      | Milp.Timeout ->
          false)

let qcheck_milp_find_first_feasible =
  QCheck.Test.make ~count:60
    ~name:"find-first returns a feasible integral point when brute force finds one"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 29) in
      let nv = 3 in
      let weights = Array.init nv (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:3.0) in
      let lo = Rng.uniform rng ~lo:0.5 ~hi:4.0 in
      let hi = lo +. Rng.uniform rng ~lo:0.0 ~hi:2.0 in
      (* feasibility: lo <= w'x <= hi, x binary *)
      let m = ref (Lp.create ()) in
      let vars =
        Array.init nv (fun _ ->
            let model, v = Lp.add_var ~kind:Lp.Binary !m in
            m := model;
            v)
      in
      let terms = Array.to_list (Array.mapi (fun j w -> (w, vars.(j))) weights) in
      m := Lp.add_constraint !m terms Lp.Ge lo;
      m := Lp.add_constraint !m terms Lp.Le hi;
      let brute_feasible =
        let found = ref false in
        for mask = 0 to (1 lsl nv) - 1 do
          let w = ref 0.0 in
          for j = 0 to nv - 1 do
            if mask land (1 lsl j) <> 0 then w := !w +. weights.(j)
          done;
          if !w >= lo -. 1e-12 && !w <= hi +. 1e-12 then found := true
        done;
        !found
      in
      let options = { Milp.default_options with find_first = true } in
      match Milp.solve ~options !m with
      | Milp.Feasible { solution; _ } ->
          brute_feasible && Lp.check_feasible ~tol:1e-6 !m solution
      (* find_first incumbents must come back Feasible, never Optimal *)
      | Milp.Optimal _ -> false
      | Milp.Infeasible -> not brute_feasible
      | Milp.Unbounded | Milp.Node_limit | Milp.Timeout -> false)

let qcheck_solution_at_most_bounds =
  QCheck.Test.make ~count:100 ~name:"reported solutions respect variable bounds"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 37) in
      let lp = make_random_lp rng in
      let model, vars = build_model lp in
      match Simplex.solve model with
      | Simplex.Optimal { solution; _ } ->
          Array.for_all
            (fun v -> solution.(v) >= -1e-9 && solution.(v) <= lp.u +. 1e-9)
            vars
      | Simplex.Infeasible | Simplex.Unbounded -> false)

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_weak_duality;
    QCheck_alcotest.to_alcotest qcheck_objective_scaling_invariance;
    QCheck_alcotest.to_alcotest qcheck_adding_constraint_weakens_optimum;
    QCheck_alcotest.to_alcotest qcheck_milp_vs_bruteforce;
    QCheck_alcotest.to_alcotest qcheck_milp_equalities_vs_bruteforce;
    QCheck_alcotest.to_alcotest qcheck_milp_find_first_feasible;
    QCheck_alcotest.to_alcotest qcheck_solution_at_most_bounds;
  ]
