(* Observability layer: metrics registry semantics (counters, gauges,
   log-scale histogram buckets, snapshot diffs), span tracing (nesting,
   pool-worker tracks, Chrome trace_event JSON validity), the disabled
   path (zero events buffered), and the metrics snapshot embedded in a
   campaign report agreeing exactly with the legacy per-query
   [Milp.stats] aggregates.

   Tracing is armed programmatically and disarmed in a [Fun.protect]
   finalizer, mirroring the fault-injection tests: DPV_TRACE is never
   read here, so `dune runtest` stays deterministic. *)

module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace
module Mclock = Dpv_obs.Mclock
module Json = Dpv_core.Json
module Campaign = Dpv_core.Campaign
module Journal = Dpv_core.Journal
module Verify = Dpv_core.Verify
module Characterizer = Dpv_core.Characterizer
module Milp = Dpv_linprog.Milp
module Pool = Dpv_linprog.Pool
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat

let with_trace f =
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.configure ();
      f ())

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- monotonic clock ---- *)

let test_mclock_monotonic () =
  let prev = ref (Mclock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Mclock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done

(* ---- metrics ---- *)

let test_counter_exact () =
  let c = Metrics.counter "test.obs.counter" in
  let base = Metrics.counter_value c in
  for _ = 1 to 100 do
    Metrics.incr c 1
  done;
  Metrics.incr c 17;
  Alcotest.(check int) "counter adds exactly" (base + 117)
    (Metrics.counter_value c)

let test_gauge_high_water () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_max g 5;
  Metrics.set_max g 3;
  Alcotest.(check bool) "gauge keeps its high water"
    true
    (Metrics.gauge_value g >= 5);
  let v = Metrics.gauge_value g in
  Metrics.set_max g (v + 2);
  Alcotest.(check int) "gauge rises" (v + 2) (Metrics.gauge_value g)

let test_histogram_buckets () =
  (* Bucket edges: an observation [v > 0] lands in the bucket whose
     upper bound is the smallest power of two >= v. *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_index 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Metrics.bucket_index 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Metrics.bucket_index 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Metrics.bucket_index 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (Metrics.bucket_index 4);
  Alcotest.(check int) "5 -> bucket 3" 3 (Metrics.bucket_index 5);
  Alcotest.(check int) "upper of 0" 1 (Metrics.bucket_upper 0);
  Alcotest.(check int) "upper of 10" 1024 (Metrics.bucket_upper 10);
  Alcotest.(check int) "last bucket absorbs the tail" max_int
    (Metrics.bucket_upper 62);
  (* The covering invariant, on a spread of magnitudes including the
     values that straddle bucket edges. *)
  List.iter
    (fun v ->
      let i = Metrics.bucket_index v in
      if v > Metrics.bucket_upper i then
        Alcotest.failf "%d above its bucket bound %d" v (Metrics.bucket_upper i);
      if i > 0 && v <= Metrics.bucket_upper (i - 1) then
        Alcotest.failf "%d below its bucket: fits bucket %d too" v (i - 1))
    [ 1; 2; 3; 4; 7; 8; 9; 1023; 1024; 1025; 999_983; max_int ];
  Alcotest.(check int) "huge values clamp to the last bucket" 62
    (Metrics.bucket_index max_int)

let test_histogram_observe () =
  let h = Metrics.histogram "test.obs.hist" in
  let before =
    match Metrics.histogram_in (Metrics.snapshot ()) "test.obs.hist" with
    | Some s -> s
    | None -> Alcotest.fail "registered histogram missing from snapshot"
  in
  Metrics.observe h 100;
  Metrics.observe h 100;
  Metrics.observe h 3_000;
  Metrics.observe h (-5) (* clamps to 0 *);
  let after =
    match Metrics.histogram_in (Metrics.snapshot ()) "test.obs.hist" with
    | Some s -> s
    | None -> Alcotest.fail "histogram vanished"
  in
  Alcotest.(check int) "count" (before.Metrics.count + 4) after.Metrics.count;
  Alcotest.(check int) "sum" (before.Metrics.sum + 3_200) after.Metrics.sum

let test_snapshot_since () =
  let c = Metrics.counter "test.obs.since" in
  let before = Metrics.snapshot () in
  Metrics.incr c 42;
  let delta = Metrics.since ~before (Metrics.snapshot ()) in
  Alcotest.(check (option int)) "counter delta" (Some 42)
    (Metrics.counter_in delta "test.obs.since")

let test_snapshot_merge () =
  (* Cross-process combination (shard trailers): counters add, gauges
     keep the larger high-water mark, histograms add count/sum and
     merge buckets bucket-wise. *)
  let snap counters gauges histograms =
    {
      Metrics.snap_counters = counters;
      snap_gauges = gauges;
      snap_rates = [];
      snap_histograms = histograms;
    }
  in
  let h count sum buckets = { Metrics.count; sum; buckets } in
  let a =
    snap
      [ ("a.only", 3); ("both", 10) ]
      [ ("g", 5) ]
      [ ("h", h 2 300 [ (256, 2) ]) ]
  in
  let b =
    snap
      [ ("b.only", 1); ("both", 7) ]
      [ ("g", 9) ]
      [ ("h", h 3 5000 [ (256, 1); (4096, 2) ]) ]
  in
  let m = Metrics.merge a b in
  Alcotest.(check (list (pair string int)))
    "counters add, names stay sorted"
    [ ("a.only", 3); ("b.only", 1); ("both", 17) ]
    m.Metrics.snap_counters;
  Alcotest.(check (list (pair string int)))
    "gauges keep the max" [ ("g", 9) ] m.Metrics.snap_gauges;
  (match m.Metrics.snap_histograms with
  | [ ("h", hm) ] ->
      Alcotest.(check int) "histogram count adds" 5 hm.Metrics.count;
      Alcotest.(check int) "histogram sum adds" 5300 hm.Metrics.sum;
      Alcotest.(check (list (pair int int)))
        "buckets merge bucket-wise"
        [ (256, 3); (4096, 2) ]
        hm.Metrics.buckets
  | _ -> Alcotest.fail "expected exactly one merged histogram");
  (* empty_snapshot is the identity on both sides. *)
  Alcotest.(check bool) "left identity" true
    (Metrics.merge Metrics.empty_snapshot a = a);
  Alcotest.(check bool) "right identity" true
    (Metrics.merge a Metrics.empty_snapshot = a);
  (* Merge is commutative on these payloads. *)
  Alcotest.(check bool) "commutative" true (Metrics.merge b a = m)

let test_metrics_json_parses () =
  let json = Metrics.to_json (Metrics.snapshot ()) in
  Alcotest.(check bool) "carries the schema tag" true
    (contains ~needle:"dpv-metrics/1" json);
  match Json.of_string json with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok j -> (
      match Option.bind (Json.member "schema" j) Json.to_string with
      | Some "dpv-metrics/1" -> ()
      | _ -> Alcotest.fail "schema field wrong or missing")

(* ---- sampled gauges and rolling-window rates ---- *)

let test_rate_window_and_sample_units () =
  let r = Metrics.rate ~window_s:10.0 "test.obs.rate" in
  (* 100 events over 2 simulated seconds -> 50/s -> 50000 milli. *)
  Metrics.rate_tick r ~now_ns:0 1_000;
  Metrics.rate_tick r ~now_ns:2_000_000_000 1_100;
  Alcotest.(check int) "windowed rate in milli-events/s" 50_000
    (Metrics.rate_value r);
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "rates live under snap_rates" (Some 50_000)
    (Metrics.rate_in snap "test.obs.rate");
  Alcotest.(check (option int)) "not mixed into high-water gauges" None
    (Metrics.gauge_in snap "test.obs.rate");
  (* A sample outside the window evicts the old baseline. *)
  Metrics.rate_tick r ~now_ns:30_000_000_000 1_100;
  Metrics.rate_tick r ~now_ns:31_000_000_000 1_100;
  Alcotest.(check int) "idle window decays to zero" 0 (Metrics.rate_value r);
  (* Point samples share the milli-unit convention, so every value
     under "rates" divides by 1000 uniformly. *)
  let g = Metrics.sample "test.obs.sampled" in
  Metrics.set g 7;
  Alcotest.(check (option int)) "set stores milli-units" (Some 7_000)
    (Metrics.rate_in (Metrics.snapshot ()) "test.obs.sampled");
  (* In-process delta keeps the point sample; cross-process merge takes
     the max and never sums throughputs. *)
  let before = Metrics.snapshot () in
  Metrics.set g 3;
  let delta = Metrics.since ~before (Metrics.snapshot ()) in
  Alcotest.(check (option int)) "since keeps the after sample" (Some 3_000)
    (Metrics.rate_in delta "test.obs.sampled");
  let with_rates rates = { Metrics.empty_snapshot with Metrics.snap_rates = rates } in
  let m = Metrics.merge (with_rates [ ("r", 5_000) ]) (with_rates [ ("r", 2_000) ]) in
  Alcotest.(check (list (pair string int)))
    "merge keeps the larger rate, never the sum"
    [ ("r", 5_000) ]
    m.Metrics.snap_rates

(* ---- histogram quantiles ---- *)

(* Rebuild the bucket layout [observe] would produce, without touching
   the global registry (tests share one process). *)
let hist_of_samples samples =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let u = Metrics.bucket_upper (Metrics.bucket_index v) in
      Hashtbl.replace tbl u
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u)))
    samples;
  {
    Metrics.count = List.length samples;
    sum = List.fold_left ( + ) 0 samples;
    buckets =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []);
  }

let test_quantile_edge_cases () =
  let empty = { Metrics.count = 0; sum = 0; buckets = [] } in
  Alcotest.(check (float 0.0)) "empty histogram -> 0" 0.0
    (Metrics.quantile_of_hist empty ~q:0.5);
  (match Metrics.quantile_of_hist empty ~q:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0,1] must raise");
  (match Metrics.quantile_of_hist empty ~q:(-0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative q must raise");
  (* All mass in one bucket: every quantile stays inside that bucket. *)
  let h = hist_of_samples [ 100; 100; 100; 100 ] in
  let upper = Metrics.bucket_upper (Metrics.bucket_index 100) in
  List.iter
    (fun q ->
      let est = Metrics.quantile_of_hist h ~q in
      if est <= float_of_int (upper / 2) || est > float_of_int upper then
        Alcotest.failf "q=%.2f estimate %f escapes bucket (%d, %d]" q est
          (upper / 2) upper)
    [ 0.0; 0.5; 0.9; 1.0 ]

(* The estimator promises bucket resolution: the estimate lives in the
   log2 bucket of the order statistic at the target rank, hence within
   a factor of 2 of the sample quantile Stats.quantile interpolates
   between the same bracketing statistics. *)
let qcheck_quantile_tracks_stats =
  QCheck.Test.make ~count:300
    ~name:"quantile_of_hist tracks Stats.quantile to bucket resolution"
    QCheck.(
      make
        ~print:Print.(list int)
        Gen.(
          list_size (1 -- 60)
            (oneof
               [
                 int_bound 15;
                 int_bound 2_000;
                 int_bound 5_000_000;
                 int_bound 2_000_000_000;
               ])))
    (fun samples ->
      let h = hist_of_samples samples in
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let arr = Array.map float_of_int sorted in
      List.for_all
        (fun q ->
          let est = Metrics.quantile_of_hist h ~q in
          let truth = Dpv_tensor.Stats.quantile arr ~q in
          (* Same rank conventions as the implementations. *)
          let pos = q *. float_of_int (n - 1) in
          let lo_idx = int_of_float (Float.floor pos) in
          let hi_idx = Stdlib.min (lo_idx + 1) (n - 1) in
          let target = pos +. 1.0 in
          let r = Stdlib.min n (Stdlib.max 1 (int_of_float (Float.ceil target))) in
          let v = sorted.(r - 1) in
          let u = Metrics.bucket_upper (Metrics.bucket_index v) in
          let eps = 1e-6 in
          (* est interpolates inside the bucket of the rank-r sample. *)
          est >= (float_of_int (u / 2) -. eps)
          && est <= float_of_int u +. eps
          (* truth interpolates between the bracketing statistics... *)
          && truth >= float_of_int sorted.(lo_idx) -. eps
          && truth <= float_of_int sorted.(hi_idx) +. eps
          (* ...so the two agree to a factor of 2 through the shared
             order statistics (plus 1 for the v <= 1 bucket). *)
          && est <= (2.0 *. float_of_int (Stdlib.max 1 sorted.(hi_idx))) +. eps
          && est >= (float_of_int sorted.(lo_idx) /. 2.0) -. 1.0)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

(* ---- OpenMetrics exposition ---- *)

let test_expo_render_format () =
  let h = { Metrics.count = 3; sum = 300; buckets = [ (128, 2); (512, 1) ] } in
  let snap =
    {
      Metrics.snap_counters = [ ("serve.scrapes", 7) ];
      snap_gauges = [ ("pool.max_queue_depth", 4) ];
      snap_rates = [ ("serve.solves_per_s", 2_500) ];
      snap_histograms = [ ("journal.append_ns", h) ];
    }
  in
  let out = Dpv_obs.Expo.render ~labels:[ ("shard", "a\"b\\c\nd") ] snap in
  let expect needle =
    if not (contains ~needle out) then
      Alcotest.failf "exposition misses %S in:\n%s" needle out
  in
  expect "# TYPE dpv_serve_scrapes counter\n";
  expect "dpv_serve_scrapes_total{shard=\"a\\\"b\\\\c\\nd\"} 7\n";
  expect "# TYPE dpv_pool_max_queue_depth gauge\n";
  expect "dpv_pool_max_queue_depth{shard=\"a\\\"b\\\\c\\nd\"} 4\n";
  (* milli-units restored to a float *)
  expect "# TYPE dpv_serve_solves_per_s gauge\n";
  expect "dpv_serve_solves_per_s{shard=\"a\\\"b\\\\c\\nd\"} 2.5\n";
  (* cumulative buckets, +Inf closing at the total count *)
  expect "# TYPE dpv_journal_append_ns histogram\n";
  expect "dpv_journal_append_ns_bucket{shard=\"a\\\"b\\\\c\\nd\",le=\"128\"} 2\n";
  expect "dpv_journal_append_ns_bucket{shard=\"a\\\"b\\\\c\\nd\",le=\"512\"} 3\n";
  expect "dpv_journal_append_ns_bucket{shard=\"a\\\"b\\\\c\\nd\",le=\"+Inf\"} 3\n";
  expect "dpv_journal_append_ns_sum{shard=\"a\\\"b\\\\c\\nd\"} 300\n";
  expect "dpv_journal_append_ns_count{shard=\"a\\\"b\\\\c\\nd\"} 3\n";
  let len = String.length out in
  Alcotest.(check bool) "terminated by # EOF" true
    (len >= 6 && String.sub out (len - 6) 6 = "# EOF\n")

let qcheck_expo_escaping_sound =
  QCheck.Test.make ~count:300
    ~name:"expo sanitizes names and escapes label values"
    QCheck.(pair printable_string printable_string)
    (fun (name, label_value) ->
      let sanitized = Dpv_obs.Expo.sanitize name in
      let name_ok =
        String.length sanitized > 4
        = (String.length name > 0)
        && String.for_all
             (function
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
             sanitized
      in
      let escaped = Dpv_obs.Expo.escape_label label_value in
      (* No raw newline or unescaped quote may survive: the sample must
         stay on one line of the exposition. *)
      let escaped_ok =
        (not (String.contains escaped '\n'))
        &&
        let rec scan i =
          if i >= String.length escaped then true
          else
            match escaped.[i] with
            | '\\' -> i + 1 < String.length escaped && scan (i + 2)
            | '"' -> false
            | _ -> scan (i + 1)
        in
        scan 0
      in
      let out =
        Dpv_obs.Expo.render
          ~labels:[ ("job", label_value) ]
          {
            Metrics.empty_snapshot with
            Metrics.snap_counters = [ ((if name = "" then "x" else name), 1) ];
          }
      in
      (* 2 lines for the counter family + the terminator. *)
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
      in
      name_ok && escaped_ok && List.length lines = 3)

(* ---- cumulative-bucket consistency against live scrape data ---- *)

let test_expo_buckets_cumulative () =
  (* Render the real registry (whatever earlier tests observed) and
     check every histogram's bucket series is nondecreasing and closed
     by +Inf at the count. *)
  let snap = Metrics.snapshot () in
  let out = Dpv_obs.Expo.render snap in
  List.iter
    (fun (name, h) ->
      let n = Dpv_obs.Expo.sanitize name in
      let prefix = n ^ "_bucket{le=" in
      let cums =
        List.filter_map
          (fun line ->
            if
              String.length line > String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
            then
              match String.rindex_opt line ' ' with
              | Some i ->
                  int_of_string_opt
                    (String.sub line (i + 1) (String.length line - i - 1))
              | None -> None
            else None)
          (String.split_on_char '\n' out)
      in
      if cums = [] then Alcotest.failf "histogram %s has no bucket lines" name;
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      if not (nondecreasing cums) then
        Alcotest.failf "histogram %s buckets not cumulative" name;
      Alcotest.(check int)
        (name ^ ": +Inf bucket equals count")
        h.Metrics.count
        (List.nth cums (List.length cums - 1)))
    snap.Metrics.snap_histograms

(* ---- report pretty-printer percentiles ---- *)

let test_report_prints_percentiles () =
  let snap =
    {
      Metrics.empty_snapshot with
      Metrics.snap_rates = [ ("serve.solves_per_s", 1_500) ];
      snap_histograms =
        [ ("lp_ns", hist_of_samples [ 100; 200; 400; 800; 1_600 ]) ];
    }
  in
  let text = Format.asprintf "%a" Dpv_core.Report.pp_metrics snap in
  List.iter
    (fun needle ->
      if not (contains ~needle text) then
        Alcotest.failf "pp_metrics misses %S in:\n%s" needle text)
    [ "p50 "; "p90 "; "p99 "; "5 obs"; "1.500 (sampled)" ]

(* ---- tracing: disabled path ---- *)

let test_disabled_path_emits_nothing () =
  Trace.disable ();
  let count0 = Trace.event_count () in
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "begin_ns is the zero sentinel" 0 (Trace.begin_ns ());
  Trace.complete ~name:"should-drop" 0;
  Trace.instant "should-drop-too";
  let r = Trace.with_span "invisible" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span still runs the body" 42 r;
  Alcotest.(check int) "no events buffered" count0 (Trace.event_count ())

(* ---- tracing: spans ---- *)

let span_event json name =
  let events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  match
    List.find_opt
      (fun e ->
        Option.bind (Json.member "name" e) Json.to_string = Some name
        && Option.bind (Json.member "ph" e) Json.to_string = Some "X")
      events
  with
  | Some e -> e
  | None -> Alcotest.failf "span %S not in trace" name

let span_bounds json name =
  let e = span_event json name in
  let f key =
    match Option.bind (Json.member key e) Json.to_float with
    | Some v -> v
    | None -> Alcotest.failf "span %S missing %s" name key
  in
  let ts = f "ts" in
  (ts, ts +. f "dur")

let test_span_nesting () =
  with_trace (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1)));
      let json =
        match Json.of_string (Trace.to_json ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
      in
      let o_start, o_end = span_bounds json "outer" in
      let i_start, i_end = span_bounds json "inner" in
      (* ts/dur are printed in microseconds at 3 decimals; allow that
         much rounding slack. *)
      let eps = 0.002 in
      if i_start +. eps < o_start || i_end > o_end +. eps then
        Alcotest.failf "inner [%f, %f] escapes outer [%f, %f]" i_start i_end
          o_start o_end)

let test_span_exception_reraised () =
  with_trace (fun () ->
      (try
         Trace.with_span "boom" (fun () -> failwith "expected")
       with Failure m -> Alcotest.(check string) "re-raised" "expected" m);
      let json = Trace.to_json () in
      Alcotest.(check bool) "span recorded despite the raise" true
        (contains ~needle:"boom" json);
      Alcotest.(check bool) "exception text in args" true
        (contains ~needle:"expected" json))

let test_pool_worker_spans () =
  with_trace (fun () ->
      let workers = 4 in
      let out =
        Pool.map_list ~workers
          (fun i ->
            Trace.with_span "task" (fun () -> i * 2))
          (List.init 16 Fun.id)
      in
      Array.iteri
        (fun i cell ->
          match cell with
          | Some (Ok v) -> Alcotest.(check int) "result" (2 * i) v
          | _ -> Alcotest.fail "pool dropped a task")
        out;
      let json =
        match Json.of_string (Trace.to_json ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "pool trace does not parse: %s" e
      in
      let events =
        match Option.bind (Json.member "traceEvents" json) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents"
      in
      let named name e =
        Option.bind (Json.member "name" e) Json.to_string = Some name
      in
      let task_spans = List.filter (named "task") events in
      Alcotest.(check int) "every task left a span" 16
        (List.length task_spans);
      let worker_spans = List.filter (named "pool.worker") events in
      Alcotest.(check int) "one lifetime span per worker" workers
        (List.length worker_spans);
      let meta = List.filter (named "thread_name") events in
      Alcotest.(check bool) "workers named their tracks" true
        (List.length meta >= 1);
      (* Every task span's tid must be one of the worker span tids:
         tasks only ever run on pool domains. *)
      let tid e =
        match Option.bind (Json.member "tid" e) Json.to_int with
        | Some t -> t
        | None -> Alcotest.fail "event without tid"
      in
      let worker_tids = List.map tid worker_spans in
      List.iter
        (fun e ->
          if not (List.mem (tid e) worker_tids) then
            Alcotest.fail "task span on a non-worker track")
        task_spans)

(* ---- tracing: ambient per-job context ---- *)

let test_trace_context_tags_events () =
  Alcotest.(check (option string)) "no ambient context by default" None
    (Trace.context ());
  with_trace (fun () ->
      Trace.with_context "job-A" (fun () ->
          Alcotest.(check (option string)) "context visible inside"
            (Some "job-A") (Trace.context ());
          Trace.with_context "job-B" (fun () ->
              Alcotest.(check (option string)) "nested context wins"
                (Some "job-B") (Trace.context ());
              Trace.instant "ctx.instB");
          Alcotest.(check (option string)) "outer context restored"
            (Some "job-A") (Trace.context ());
          Trace.with_span "ctx.spanA" (fun () -> ()));
      Alcotest.(check (option string)) "context cleared after" None
        (Trace.context ());
      Trace.with_span "ctx.untagged" (fun () -> ());
      let names evs =
        List.filter_map
          (function
            | Trace.Complete { name; _ } -> Some name
            | Trace.Instant { name; _ } -> Some name
            | Trace.Thread_name _ -> None)
          evs
      in
      let a = names (Trace.tagged_events "job-A") in
      Alcotest.(check bool) "A keeps its span" true (List.mem "ctx.spanA" a);
      Alcotest.(check bool) "A drops B's instant" false
        (List.mem "ctx.instB" a);
      Alcotest.(check bool) "A drops untagged spans" false
        (List.mem "ctx.untagged" a);
      let b = names (Trace.tagged_events "job-B") in
      Alcotest.(check bool) "B keeps its instant" true
        (List.mem "ctx.instB" b);
      Alcotest.(check bool) "B drops A's span" false (List.mem "ctx.spanA" b);
      (* The filtered slice renders as a standalone Chrome trace with
         the id stamped into the span args. *)
      let json =
        match Json.of_string (Trace.events_to_json (Trace.tagged_events "job-A")) with
        | Ok j -> j
        | Error e -> Alcotest.failf "filtered trace does not parse: %s" e
      in
      let span = span_event json "ctx.spanA" in
      match
        Option.bind (Json.member "args" span) (fun a ->
            Option.bind (Json.member "trace" a) Json.to_string)
      with
      | Some "job-A" -> ()
      | _ -> Alcotest.fail "span args missing the trace id")

(* ---- campaign round-trip ---- *)

(* Tiny deterministic pipeline, same shape as the fault-injection
   campaign fixture: 1-input ReLU network, cut 2, box bounds (so the
   shared-encoding phase does no LP work). *)
let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let characterizer =
  {
    Characterizer.head =
      Network.create ~input_dim:2
        [
          Layer.dense
            ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |])
            ~bias:[| -0.5 |];
        ];
    cut = 2;
    property_name = "x-at-least-half";
  }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut:2 [| x |])

let queries () =
  List.map
    (fun (label, psi) ->
      Campaign.query ~label ~characterizer ~psi
        ~bounds:(Verify.Data_box visited_features) ())
    [
      ("reach", Risk.make ~name:"out>=0.9" [ Risk.output_ge 0 0.9 ]);
      ("unreach", Risk.make ~name:"out>=1.5" [ Risk.output_ge 0 1.5 ]);
      ("neg", Risk.make ~name:"out<=-0.2" [ Risk.output_le 0 (-0.2) ]);
    ]

let done_stats (report : Campaign.report) =
  List.filter_map
    (fun (qr : Campaign.query_report) ->
      match qr.Campaign.outcome with
      | Campaign.Done r -> Some r.Verify.milp_stats
      | Campaign.Crashed _ | Campaign.Skipped _ -> None)
    report.Campaign.query_reports

let metric_exn snap name =
  match Metrics.counter_in snap name with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from campaign snapshot" name

let test_campaign_metrics_agree_with_stats () =
  Dpv_linprog.Faults.disable ();
  let report = Campaign.run ~runners:1 ~perception (queries ()) in
  let stats = done_stats report in
  Alcotest.(check int) "all queries settled Done" 3 (List.length stats);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  let m = report.Campaign.metrics in
  Alcotest.(check int) "pivots agree"
    (sum (fun s -> s.Milp.pivots))
    (metric_exn m "simplex.pivots");
  Alcotest.(check int) "warm starts agree"
    (sum (fun s -> s.Milp.warm_starts))
    (metric_exn m "simplex.warm_starts");
  Alcotest.(check int) "cold starts agree"
    (sum (fun s -> s.Milp.cold_starts))
    (metric_exn m "simplex.cold_starts");
  Alcotest.(check int) "nodes agree"
    (sum (fun s -> s.Milp.nodes_explored))
    (metric_exn m "milp.nodes");
  Alcotest.(check int) "one solve per query" 3 (metric_exn m "milp.solves");
  Alcotest.(check int) "cache hits agree" report.Campaign.cache.Campaign.hits
    (metric_exn m "campaign.cache_hits");
  Alcotest.(check int) "cache misses agree"
    report.Campaign.cache.Campaign.misses
    (metric_exn m "campaign.cache_misses");
  Alcotest.(check int) "query count recorded" 3
    (metric_exn m "campaign.queries")

let test_campaign_report_embeds_metrics () =
  Dpv_linprog.Faults.disable ();
  let report = Campaign.run ~runners:1 ~perception (queries ()) in
  let json = Campaign.to_json report in
  Alcotest.(check bool) "metrics schema embedded" true
    (contains ~needle:"dpv-metrics/1" json);
  match Json.of_string json with
  | Error e -> Alcotest.failf "campaign JSON does not parse: %s" e
  | Ok j -> (
      let metrics =
        match Json.member "metrics" j with
        | Some m -> m
        | None -> Alcotest.fail "no metrics object in report"
      in
      (match Option.bind (Json.member "schema" metrics) Json.to_string with
      | Some "dpv-metrics/1" -> ()
      | _ -> Alcotest.fail "embedded metrics schema wrong");
      let counters =
        match Json.member "counters" metrics with
        | Some c -> c
        | None -> Alcotest.fail "no counters in embedded metrics"
      in
      let stats = done_stats report in
      let pivots =
        List.fold_left (fun acc s -> acc + s.Milp.pivots) 0 stats
      in
      match Option.bind (Json.member "simplex.pivots" counters) Json.to_int with
      | Some v -> Alcotest.(check int) "pivots round-trip the JSON" pivots v
      | None -> Alcotest.fail "simplex.pivots not in embedded counters")

let test_campaign_trace_covers_run () =
  Dpv_linprog.Faults.disable ();
  with_trace (fun () ->
      let report = Campaign.run ~runners:1 ~perception (queries ()) in
      ignore report;
      let json =
        match Json.of_string (Trace.to_json ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "campaign trace does not parse: %s" e
      in
      let run_start, run_end = span_bounds json "campaign.run" in
      (* Every campaign.query span nests inside campaign.run. *)
      let events =
        Option.bind (Json.member "traceEvents" json) Json.to_list
        |> Option.value ~default:[]
      in
      let query_spans =
        List.filter
          (fun e ->
            Option.bind (Json.member "name" e) Json.to_string
            = Some "campaign.query")
          events
      in
      Alcotest.(check int) "a span per solved query" 3
        (List.length query_spans);
      let eps = 0.002 in
      List.iter
        (fun e ->
          let ts =
            Option.bind (Json.member "ts" e) Json.to_float |> Option.get
          in
          let dur =
            Option.bind (Json.member "dur" e) Json.to_float |> Option.get
          in
          if ts +. eps < run_start || ts +. dur > run_end +. eps then
            Alcotest.fail "query span escapes the campaign.run span")
        query_spans;
      (* The milp.solve spans from inside the queries are also there. *)
      Alcotest.(check bool) "solver spans present" true
        (List.exists
           (fun e ->
             Option.bind (Json.member "name" e) Json.to_string
             = Some "milp.solve")
           events))

(* ---- journal fast path ---- *)

let with_temp_file f =
  let path = Filename.temp_file "dpv_test_obs_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path = In_channel.with_open_text path In_channel.input_all

let test_journal_appends_and_latency () =
  Dpv_linprog.Faults.disable ();
  with_temp_file (fun path ->
      let before = Metrics.snapshot () in
      let report =
        Campaign.run ~runners:1 ~journal:path ~perception (queries ())
      in
      Alcotest.(check int) "no write failures" 0
        report.Campaign.journal_write_failures;
      let delta = Metrics.since ~before (Metrics.snapshot ()) in
      Alcotest.(check (option int)) "every settle appended" (Some 3)
        (Metrics.counter_in delta "journal.appends");
      (match Metrics.histogram_in delta "journal.append_ns" with
      | Some h ->
          Alcotest.(check int) "latency histogram observed each append" 3
            h.Metrics.count
      | None -> Alcotest.fail "journal.append_ns histogram missing");
      let content = read_file path in
      Alcotest.(check int) "one line per entry" 3
        (List.length
           (List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' content)));
      match Journal.load ~path with
      | Ok entries -> Alcotest.(check int) "loads back" 3 (List.length entries)
      | Error e -> Alcotest.failf "journal does not load: %s" e)

let test_journal_torn_tail_tolerated () =
  Dpv_linprog.Faults.disable ();
  with_temp_file (fun path ->
      let report =
        Campaign.run ~runners:1 ~journal:path ~perception (queries ())
      in
      ignore report;
      (* Simulate a crash mid-append: a torn, unterminated final line. *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "{\"key\": \"deadbeef\", \"label\": \"torn";
      close_out oc;
      (match Journal.load ~path with
      | Ok entries ->
          Alcotest.(check int) "complete entries survive, tail dropped" 3
            (List.length entries)
      | Error e -> Alcotest.failf "torn tail should be tolerated: %s" e);
      (* Mid-file corruption is damage, not a crash: still an error. *)
      let lines = String.split_on_char '\n' (read_file path) in
      let corrupted =
        match lines with
        | first :: rest ->
            String.concat "\n" (("garbage " ^ first) :: rest)
        | [] -> Alcotest.fail "journal empty"
      in
      let oc = open_out path in
      output_string oc corrupted;
      close_out oc;
      match Journal.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mid-file corruption must not load")

let tests =
  [
    Alcotest.test_case "mclock is monotonic" `Quick test_mclock_monotonic;
    Alcotest.test_case "counters add exactly" `Quick test_counter_exact;
    Alcotest.test_case "gauges keep high water" `Quick test_gauge_high_water;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram observation totals" `Quick
      test_histogram_observe;
    Alcotest.test_case "snapshot diff" `Quick test_snapshot_since;
    Alcotest.test_case "snapshot merge (cross-process)" `Quick
      test_snapshot_merge;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "rate windows and sample units" `Quick
      test_rate_window_and_sample_units;
    Alcotest.test_case "quantile edge cases" `Quick test_quantile_edge_cases;
    QCheck_alcotest.to_alcotest qcheck_quantile_tracks_stats;
    Alcotest.test_case "OpenMetrics exposition format" `Quick
      test_expo_render_format;
    QCheck_alcotest.to_alcotest qcheck_expo_escaping_sound;
    Alcotest.test_case "exposition buckets are cumulative" `Quick
      test_expo_buckets_cumulative;
    Alcotest.test_case "report prints percentiles" `Quick
      test_report_prints_percentiles;
    Alcotest.test_case "disabled tracing emits nothing" `Quick
      test_disabled_path_emits_nothing;
    Alcotest.test_case "trace context tags and filters events" `Quick
      test_trace_context_tags_events;
    Alcotest.test_case "spans nest" `Quick test_span_nesting;
    Alcotest.test_case "spans survive exceptions" `Quick
      test_span_exception_reraised;
    Alcotest.test_case "pool workers get labelled tracks" `Quick
      test_pool_worker_spans;
    Alcotest.test_case "campaign metrics equal legacy stats" `Quick
      test_campaign_metrics_agree_with_stats;
    Alcotest.test_case "campaign report embeds dpv-metrics/1" `Quick
      test_campaign_report_embeds_metrics;
    Alcotest.test_case "campaign trace covers the run" `Quick
      test_campaign_trace_covers_run;
    Alcotest.test_case "journal fast path appends lines" `Quick
      test_journal_appends_and_latency;
    Alcotest.test_case "journal tolerates a torn tail only" `Quick
      test_journal_torn_tail_tolerated;
  ]
