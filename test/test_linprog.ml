(* Tests for the LP model, the two-phase simplex and branch-and-bound. *)

module Lp = Dpv_linprog.Lp
module Simplex = Dpv_linprog.Simplex
module Milp = Dpv_linprog.Milp

let check_float = Alcotest.(check (float 1e-6))

let expect_optimal = function
  | Simplex.Optimal { objective; solution } -> (objective, solution)
  | Simplex.Infeasible -> Alcotest.fail "expected optimal, got infeasible"
  | Simplex.Unbounded -> Alcotest.fail "expected optimal, got unbounded"

let expect_milp_optimal = function
  | Milp.Optimal { objective; solution } -> (objective, solution)
  | Milp.Feasible _ ->
      Alcotest.fail "expected optimal, got feasible (truncated search)"
  | Milp.Infeasible -> Alcotest.fail "expected optimal, got infeasible"
  | Milp.Unbounded -> Alcotest.fail "expected optimal, got unbounded"
  | Milp.Node_limit -> Alcotest.fail "expected optimal, got node limit"
  | Milp.Timeout -> Alcotest.fail "expected optimal, got timeout"

(* find_first mode never proves optimality, so its incumbents come back
   [Feasible] by contract. *)
let expect_milp_feasible = function
  | Milp.Feasible { objective; solution } -> (objective, solution)
  | Milp.Optimal _ ->
      Alcotest.fail "expected feasible, got optimal (find_first must not \
                     claim proofs)"
  | Milp.Infeasible -> Alcotest.fail "expected feasible, got infeasible"
  | Milp.Unbounded -> Alcotest.fail "expected feasible, got unbounded"
  | Milp.Node_limit -> Alcotest.fail "expected feasible, got node limit"
  | Milp.Timeout -> Alcotest.fail "expected feasible, got timeout"

(* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
   Classic Dantzig example: optimum 36 at (2, 6). *)
let test_lp_textbook () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~name:"x" ~lo:0.0 m in
  let m, y = Lp.add_var ~name:"y" ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x) ] Lp.Le 4.0 in
  let m = Lp.add_constraint m [ (2.0, y) ] Lp.Le 12.0 in
  let m = Lp.add_constraint m [ (3.0, x); (2.0, y) ] Lp.Le 18.0 in
  let m = Lp.set_objective m Lp.Maximize [ (3.0, x); (5.0, y) ] in
  let obj, sol = expect_optimal (Simplex.solve m) in
  check_float "objective" 36.0 obj;
  check_float "x" 2.0 sol.(x);
  check_float "y" 6.0 sol.(y)

(* min x + y st x + 2y >= 4, 3x + y >= 6, x,y >= 0 -> optimum at
   intersection (8/5, 6/5), objective 14/5. *)
let test_lp_ge_constraints () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 m in
  let m, y = Lp.add_var ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (2.0, y) ] Lp.Ge 4.0 in
  let m = Lp.add_constraint m [ (3.0, x); (1.0, y) ] Lp.Ge 6.0 in
  let m = Lp.set_objective m Lp.Minimize [ (1.0, x); (1.0, y) ] in
  let obj, sol = expect_optimal (Simplex.solve m) in
  check_float "objective" 2.8 obj;
  check_float "x" 1.6 sol.(x);
  check_float "y" 1.2 sol.(y)

let test_lp_equality () =
  (* min 2x + 3y st x + y = 10, x - y = 2 -> x=6, y=4, obj 24. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 m in
  let m, y = Lp.add_var ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Eq 10.0 in
  let m = Lp.add_constraint m [ (1.0, x); (-1.0, y) ] Lp.Eq 2.0 in
  let m = Lp.set_objective m Lp.Minimize [ (2.0, x); (3.0, y) ] in
  let obj, sol = expect_optimal (Simplex.solve m) in
  check_float "objective" 24.0 obj;
  check_float "x" 6.0 sol.(x);
  check_float "y" 4.0 sol.(y)

let test_lp_free_variable () =
  (* min y st y >= x - 2, y >= -x, x free, y free -> min at x=1, y=-1. *)
  let m = Lp.create () in
  let m, x = Lp.add_var m in
  let m, y = Lp.add_var m in
  let m = Lp.add_constraint m [ (1.0, y); (-1.0, x) ] Lp.Ge (-2.0) in
  let m = Lp.add_constraint m [ (1.0, y); (1.0, x) ] Lp.Ge 0.0 in
  let m = Lp.set_objective m Lp.Minimize [ (1.0, y) ] in
  let obj, sol = expect_optimal (Simplex.solve m) in
  check_float "objective" (-1.0) obj;
  check_float "x" 1.0 sol.(x);
  check_float "y" (-1.0) sol.(y)

let test_lp_negative_bounds () =
  (* min x st x in [-5, -1] -> -5. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:(-5.0) ~up:(-1.0) m in
  let m = Lp.set_objective m Lp.Minimize [ (1.0, x) ] in
  let obj, sol = expect_optimal (Simplex.solve m) in
  check_float "objective" (-5.0) obj;
  check_float "x" (-5.0) sol.(x)

let test_lp_infeasible () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:1.0 m in
  let m = Lp.add_constraint m [ (1.0, x) ] Lp.Ge 2.0 in
  match Simplex.solve m with
  | Simplex.Infeasible -> ()
  | s -> Alcotest.failf "expected infeasible, got %a" Simplex.pp_status s

let test_lp_unbounded () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 m in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x) ] in
  match Simplex.solve m with
  | Simplex.Unbounded -> ()
  | s -> Alcotest.failf "expected unbounded, got %a" Simplex.pp_status s

let test_lp_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum.  Exercises
     the Bland fallback; just require the right objective. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 m in
  let m, y = Lp.add_var ~lo:0.0 m in
  let m, z = Lp.add_var ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y); (1.0, z) ] Lp.Le 1.0 in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 1.0 in
  let m = Lp.add_constraint m [ (1.0, x) ] Lp.Le 1.0 in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x); (1.0, y); (1.0, z) ] in
  let obj, _ = expect_optimal (Simplex.solve m) in
  check_float "objective" 1.0 obj

let test_lp_duplicate_terms_merge () =
  (* x + x <= 4 must behave as 2x <= 4. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, x) ] Lp.Le 4.0 in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x) ] in
  let obj, _ = expect_optimal (Simplex.solve m) in
  check_float "objective" 2.0 obj

let test_feasibility_check () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:10.0 m in
  let m, y = Lp.add_var ~lo:0.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 5.0 in
  Alcotest.(check bool) "inside" true (Lp.check_feasible m [| 2.0; 3.0 |]);
  Alcotest.(check bool) "outside" false (Lp.check_feasible m [| 2.0; 4.0 |]);
  Alcotest.(check bool)
    "bound violated" false
    (Lp.check_feasible m [| -1.0; 0.0 |])

(* --- MILP --- *)

let test_milp_knapsack () =
  (* max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary.
     Optimum 21 with b=c=d=1. *)
  let m = Lp.create () in
  let m, a = Lp.add_var ~kind:Lp.Binary m in
  let m, b = Lp.add_var ~kind:Lp.Binary m in
  let m, c = Lp.add_var ~kind:Lp.Binary m in
  let m, d = Lp.add_var ~kind:Lp.Binary m in
  let m =
    Lp.add_constraint m
      [ (5.0, a); (7.0, b); (4.0, c); (3.0, d) ]
      Lp.Le 14.0
  in
  let m =
    Lp.set_objective m Lp.Maximize
      [ (8.0, a); (11.0, b); (6.0, c); (4.0, d) ]
  in
  let obj, sol = expect_milp_optimal (Milp.solve m) in
  check_float "objective" 21.0 obj;
  check_float "a" 0.0 sol.(a);
  check_float "b" 1.0 sol.(b);
  check_float "c" 1.0 sol.(c);
  check_float "d" 1.0 sol.(d)

let test_milp_integer_rounding_gap () =
  (* max y st -2x + 2y <= 1, 2x + 2y <= 9, x,y integer >= 0.
     LP relaxation peaks at y = 2.5; integer optimum is y = 2. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~kind:Lp.Integer m in
  let m, y = Lp.add_var ~lo:0.0 ~kind:Lp.Integer m in
  let m = Lp.add_constraint m [ (-2.0, x); (2.0, y) ] Lp.Le 1.0 in
  let m = Lp.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Le 9.0 in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, y) ] in
  let obj, sol = expect_milp_optimal (Milp.solve m) in
  check_float "objective" 2.0 obj;
  Alcotest.(check bool) "y integral" true (Float.abs (sol.(y) -. 2.0) < 1e-6)

let test_milp_infeasible () =
  (* 2x = 1 with x binary is infeasible. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (2.0, x) ] Lp.Eq 1.0 in
  match Milp.solve m with
  | Milp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_milp_find_first () =
  (* Pure feasibility: any binary assignment with a + b = 1 works. *)
  let m = Lp.create () in
  let m, a = Lp.add_var ~kind:Lp.Binary m in
  let m, b = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (1.0, a); (1.0, b) ] Lp.Eq 1.0 in
  let options = { Milp.default_options with find_first = true } in
  let _, sol = expect_milp_feasible (Milp.solve ~options m) in
  check_float "sum" 1.0 (sol.(a) +. sol.(b))

let test_lp_bounds_delta () =
  let m = Lp.create () in
  let m, a = Lp.add_var ~kind:Lp.Binary m in
  let m, b = Lp.add_var ~kind:Lp.Binary m in
  let m, c = Lp.add_var ~kind:Lp.Binary m in
  let sort l = List.sort_uniq compare l in
  let expect_delta label want x y =
    match Lp.bounds_delta x y with
    | None -> Alcotest.failf "%s: expected Some delta, got None" label
    | Some vars -> Alcotest.(check (list int)) label want (sort vars)
  in
  (* Identical models share their whole (empty) history. *)
  expect_delta "self" [] m m;
  (* Two children of a common ancestor: delta covers exactly the vars
     touched on either side since the fork, in any order / multiplicity. *)
  let left = Lp.set_var_bounds m a ~lo:(Some 1.0) ~up:(Some 1.0) in
  let right = Lp.set_var_bounds m b ~lo:(Some 0.0) ~up:(Some 0.0) in
  let right = Lp.set_var_bounds right c ~lo:(Some 1.0) ~up:(Some 1.0) in
  expect_delta "siblings" [ a; b; c ] left right;
  expect_delta "parent-child" [ b; c ] m right;
  expect_delta "child-parent" [ b; c ] right m;
  (* Deeper chain: diffing a node against its grandchild only reports the
     two intervening fixings, not [a]. *)
  let gchild = Lp.set_var_bounds left b ~lo:(Some 1.0) ~up:(Some 1.0) in
  expect_delta "grandchild" [ b ] left gchild;
  (* cap: distance between [left] and [right] is 3 trail entries. *)
  (match Lp.bounds_delta ~cap:2 left right with
  | None -> ()
  | Some _ -> Alcotest.fail "cap 2 should refuse a distance-3 diff");
  (match Lp.bounds_delta ~cap:3 left right with
  | Some vars -> Alcotest.(check (list int)) "cap 3 admits" [ a; b; c ] (sort vars)
  | None -> Alcotest.fail "cap 3 should admit a distance-3 diff")

let test_milp_stats () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:10.0 ~kind:Lp.Integer m in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x) ] in
  let result, stats = Milp.solve_with_stats m in
  let _ = expect_milp_optimal result in
  Alcotest.(check bool) "explored >= 1" true (stats.Milp.nodes_explored >= 1)

(* Property: on random bounded LPs, a reported optimum must be feasible and
   no random feasible point may beat it. *)
let qcheck_lp_optimality =
  QCheck.Test.make ~count:60 ~name:"simplex optimum dominates sampled points"
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_bound 1000) (int_bound 1000))
    (fun (nv, nc, seed_a, seed_b) ->
      let rng = Dpv_tensor.Rng.create ((seed_a * 1009) + seed_b) in
      let m = ref (Lp.create ()) in
      let vars =
        Array.init nv (fun _ ->
            let model, v = Lp.add_var ~lo:0.0 ~up:10.0 !m in
            m := model;
            v)
      in
      for _ = 1 to nc do
        let terms =
          Array.to_list
            (Array.map
               (fun v -> (Dpv_tensor.Rng.uniform rng ~lo:(-2.0) ~hi:3.0, v))
               vars)
        in
        (* rhs >= 0 keeps the origin feasible, so Optimal is guaranteed. *)
        let rhs = Dpv_tensor.Rng.uniform rng ~lo:0.0 ~hi:20.0 in
        m := Lp.add_constraint !m terms Lp.Le rhs
      done;
      let obj_terms =
        Array.to_list
          (Array.map
             (fun v -> (Dpv_tensor.Rng.uniform rng ~lo:(-1.0) ~hi:1.0, v))
             vars)
      in
      m := Lp.set_objective !m Lp.Maximize obj_terms;
      match Simplex.solve !m with
      | Simplex.Infeasible | Simplex.Unbounded -> false (* origin feasible, box bounded *)
      | Simplex.Optimal { objective; solution } ->
          let feasible = Lp.check_feasible ~tol:1e-5 !m solution in
          let dominated = ref true in
          for _ = 1 to 50 do
            let candidate =
              Array.init nv (fun _ -> Dpv_tensor.Rng.uniform rng ~lo:0.0 ~hi:10.0)
            in
            if
              Lp.check_feasible ~tol:0.0 !m candidate
              && Lp.eval_term_list obj_terms candidate > objective +. 1e-5
            then dominated := false
          done;
          feasible && !dominated)

let tests =
  [
    Alcotest.test_case "textbook max" `Quick test_lp_textbook;
    Alcotest.test_case "ge constraints (two-phase)" `Quick test_lp_ge_constraints;
    Alcotest.test_case "equality constraints" `Quick test_lp_equality;
    Alcotest.test_case "free variables" `Quick test_lp_free_variable;
    Alcotest.test_case "negative bounds" `Quick test_lp_negative_bounds;
    Alcotest.test_case "infeasible detection" `Quick test_lp_infeasible;
    Alcotest.test_case "unbounded detection" `Quick test_lp_unbounded;
    Alcotest.test_case "degenerate vertex" `Quick test_lp_degenerate;
    Alcotest.test_case "duplicate terms merge" `Quick test_lp_duplicate_terms_merge;
    Alcotest.test_case "feasibility check" `Quick test_feasibility_check;
    Alcotest.test_case "milp knapsack" `Quick test_milp_knapsack;
    Alcotest.test_case "milp rounding gap" `Quick test_milp_integer_rounding_gap;
    Alcotest.test_case "milp infeasible" `Quick test_milp_infeasible;
    Alcotest.test_case "milp find-first" `Quick test_milp_find_first;
    Alcotest.test_case "bounds delta trail diff" `Quick test_lp_bounds_delta;
    Alcotest.test_case "milp stats" `Quick test_milp_stats;
    QCheck_alcotest.to_alcotest qcheck_lp_optimality;
  ]
