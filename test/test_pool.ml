(* Exception safety of the work-stealing pool: a raising task must not
   wedge the deques, deadlock a worker, or corrupt the accounting, and
   [map_list] must isolate a raising item instead of aborting its
   batch. *)

module Pool = Dpv_linprog.Pool

exception Boom of int

let test_run_surfaces_task_exception () =
  (* 40 tasks, one of which raises; the call must return (no deadlock),
     record the exception, and keep the per-task accounting sane. *)
  let processed = Atomic.make 0 in
  let stats =
    Pool.run ~workers:4
      ~initial:(List.init 40 Fun.id)
      ~process:(fun _worker n ->
        Atomic.incr processed;
        if n = 17 then raise (Boom n);
        [])
      ~stop:(fun () -> false)
  in
  Alcotest.(check bool) "exception was recorded" true (stats.Pool.exceptions >= 1);
  (match stats.Pool.first_exn with
  | Some (Boom 17) -> ()
  | Some e -> Alcotest.failf "wrong exception surfaced: %s" (Printexc.to_string e)
  | None -> Alcotest.fail "first_exn not recorded");
  let counted = Array.fold_left ( + ) 0 stats.Pool.per_worker_tasks in
  Alcotest.(check int) "raising task still counted as processed" counted
    (Atomic.get processed);
  Alcotest.(check bool) "the raising task itself ran" true (counted >= 1)

let test_run_sequential_worker_exception () =
  (* workers = 1 is the plain sequential loop; it must have the same
     containment contract as the domain pool. *)
  let stats =
    Pool.run ~workers:1 ~initial:[ 0 ]
      ~process:(fun _ _ -> raise (Boom 0))
      ~stop:(fun () -> false)
  in
  Alcotest.(check int) "one exception" 1 stats.Pool.exceptions;
  match stats.Pool.first_exn with
  | Some (Boom 0) -> ()
  | _ -> Alcotest.fail "sequential pool lost the exception"

let test_map_list_isolates_raising_item () =
  let items = List.init 24 Fun.id in
  let results =
    Pool.map_list ~workers:4
      (fun n -> if n mod 7 = 3 then raise (Boom n) else n * n)
      items
  in
  Alcotest.(check int) "one slot per item" 24 (Array.length results);
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Ok v) ->
          Alcotest.(check bool) "raisers do not produce values" false
            (i mod 7 = 3);
          Alcotest.(check int) (Printf.sprintf "item %d value" i) (i * i) v
      | Some (Error (Boom n)) ->
          Alcotest.(check int) "error is at the raiser's own slot" i n;
          Alcotest.(check bool) "only raisers error" true (i mod 7 = 3)
      | Some (Error e) ->
          Alcotest.failf "item %d: foreign exception %s" i
            (Printexc.to_string e)
      | None ->
          Alcotest.failf "item %d abandoned without a stop predicate" i)
    results

let test_map_list_all_raise () =
  (* Even when EVERY item raises the batch must terminate with each
     error in its own slot. *)
  let results = Pool.map_list ~workers:3 (fun n -> raise (Boom n)) [ 0; 1; 2; 3 ] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error (Boom n)) -> Alcotest.(check int) "slot matches" i n
      | _ -> Alcotest.failf "item %d: expected its own error" i)
    results

let test_map_list_stop_marks_unstarted () =
  (* A stop predicate that fires immediately may abandon items, which
     must surface as [None] — never as a hang or a fabricated value. *)
  let results =
    Pool.map_list ~workers:1 ~stop:(fun () -> true) (fun n -> n) [ 1; 2; 3 ]
  in
  Array.iter
    (function
      | None | Some (Ok _) -> ()
      | Some (Error e) ->
          Alcotest.failf "unexpected error: %s" (Printexc.to_string e))
    results

let tests =
  [
    Alcotest.test_case "run surfaces task exception" `Quick
      test_run_surfaces_task_exception;
    Alcotest.test_case "sequential run contains exception" `Quick
      test_run_sequential_worker_exception;
    Alcotest.test_case "map_list isolates raising item" `Quick
      test_map_list_isolates_raising_item;
    Alcotest.test_case "map_list survives all items raising" `Quick
      test_map_list_all_raise;
    Alcotest.test_case "map_list stop marks unstarted items" `Quick
      test_map_list_stop_marks_unstarted;
  ]
