(* Sequential/parallel branch-and-bound agreement, deadline handling,
   and deterministic branching. *)

module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Milp_par = Dpv_linprog.Milp_par
module Clock = Dpv_linprog.Clock
module Pool = Dpv_linprog.Pool
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-6))

let seq_options = { Milp.default_options with workers = 1 }
let par_options = { Milp.default_options with workers = 4 }

(* Random bounded MILP with a mix of integer and continuous variables.
   rhs >= 0 keeps the origin feasible, so every instance has an optimum. *)
let random_milp rng =
  let nv = 2 + Rng.int rng 4 in
  let nc = 1 + Rng.int rng 4 in
  let m = ref (Lp.create ()) in
  let vars =
    Array.init nv (fun i ->
        let kind = if i mod 2 = 0 then Lp.Integer else Lp.Continuous in
        let model, v = Lp.add_var ~lo:0.0 ~up:6.0 ~kind !m in
        m := model;
        v)
  in
  for _ = 1 to nc do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.uniform rng ~lo:(-2.0) ~hi:3.0, v)) vars)
    in
    m := Lp.add_constraint !m terms Lp.Le (Rng.uniform rng ~lo:0.0 ~hi:15.0)
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, v)) vars)
  in
  m := Lp.set_objective !m Lp.Maximize obj;
  !m

let classification = function
  | Milp.Optimal _ -> "optimal"
  | Milp.Feasible _ -> "feasible"
  | Milp.Infeasible -> "infeasible"
  | Milp.Unbounded -> "unbounded"
  | Milp.Node_limit -> "node-limit"
  | Milp.Timeout -> "timeout"

(* An instance whose tree is astronomically large: binary subset-sum of
   even weights against an odd target.  Every LP relaxation deep into
   the tree stays feasible (fractional), yet no integer point exists, so
   the solver must either exhaust ~2^n nodes or hit a limit. *)
let hard_infeasible_model n =
  let m = ref (Lp.create ()) in
  let vars =
    Array.init n (fun _ ->
        let model, v = Lp.add_var ~kind:Lp.Binary !m in
        m := model;
        v)
  in
  let terms = Array.to_list (Array.map (fun v -> (2.0, v)) vars) in
  (* n even makes n + 1 odd, while the left side is always even. *)
  m := Lp.add_constraint !m terms Lp.Eq (float_of_int (n + 1));
  !m

let hard_model () = hard_infeasible_model 30 (* 2*sum = 31: no solution *)

let test_parallel_agrees_on_random_milps () =
  let rng = Rng.create 20260807 in
  for _ = 1 to 40 do
    let model = random_milp rng in
    let seq, _ = Milp_par.solve_with_stats ~options:seq_options model in
    let par, _ = Milp_par.solve_with_stats ~options:par_options model in
    Alcotest.(check string)
      "classification agrees" (classification seq) (classification par);
    match (seq, par) with
    | Milp.Optimal { objective = o1; _ }, Milp.Optimal { objective = o2; solution } ->
        check_float "objective agrees" o1 o2;
        Alcotest.(check bool)
          "parallel witness is feasible" true
          (Lp.check_feasible ~tol:1e-5 model solution)
    | _ -> ()
  done

let test_task_batch_sizes_agree () =
  (* The subtree batch size is a scheduling knob, never an answer knob:
     single-node tasks (1), mid-size batches (4) and batches larger
     than any of these trees (128) must classify every instance the
     same and agree on the optimum. *)
  let rng = Rng.create 4242 in
  for _ = 1 to 25 do
    let model = random_milp rng in
    let seq, _ = Milp_par.solve_with_stats ~options:seq_options model in
    List.iter
      (fun task_batch ->
        let options = { par_options with Milp.task_batch } in
        let par, stats = Milp_par.solve_with_stats ~options model in
        let label = Printf.sprintf "task_batch=%d" task_batch in
        Alcotest.(check string)
          (label ^ ": classification agrees")
          (classification seq) (classification par);
        Alcotest.(check int)
          (label ^ ": per-worker nodes sum to total")
          stats.Milp.nodes_explored
          (Array.fold_left ( + ) 0 stats.Milp.per_worker_nodes);
        match (seq, par) with
        | ( Milp.Optimal { objective = o1; _ },
            Milp.Optimal { objective = o2; solution } ) ->
            check_float (label ^ ": objective agrees") o1 o2;
            Alcotest.(check bool)
              (label ^ ": witness is feasible")
              true
              (Lp.check_feasible ~tol:1e-5 model solution)
        | _ -> ())
      [ 1; 4; 128 ]
  done

let test_task_batch_infeasible_proof () =
  (* An exhaustive infeasibility proof must visit the same tree no
     matter how nodes are grouped into batches. *)
  let model = hard_infeasible_model 10 in
  let _, seq_stats = Milp_par.solve_with_stats ~options:seq_options model in
  List.iter
    (fun task_batch ->
      let options = { par_options with Milp.task_batch } in
      let result, stats = Milp_par.solve_with_stats ~options model in
      Alcotest.(check string) "proved infeasible" "infeasible"
        (classification result);
      Alcotest.(check int)
        (Printf.sprintf "task_batch=%d explores the full tree" task_batch)
        seq_stats.Milp.nodes_explored stats.Milp.nodes_explored)
    [ 1; 4; 128 ]

let test_parallel_find_first_agrees () =
  let rng = Rng.create 777 in
  let options_seq = { seq_options with Milp.find_first = true } in
  let options_par = { par_options with Milp.find_first = true } in
  for _ = 1 to 25 do
    let model = random_milp rng in
    let seq = Milp_par.solve ~options:options_seq model in
    let par = Milp_par.solve ~options:options_par model in
    Alcotest.(check string)
      "feasibility classification agrees"
      (classification seq) (classification par)
  done

let test_parallel_infeasible () =
  (* 2x = 1 with x binary: both solvers must prove infeasibility. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (2.0, x) ] Lp.Eq 1.0 in
  (match Milp_par.solve ~options:par_options m with
  | Milp.Infeasible -> ()
  | r -> Alcotest.failf "expected infeasible, got %s" (classification r))

let test_sequential_fallback_is_sequential () =
  (* workers = 1 must produce the sequential solver's exact stats shape:
     one worker slot, zero steals. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:10.0 ~kind:Lp.Integer m in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x) ] in
  let _, stats = Milp_par.solve_with_stats ~options:seq_options m in
  Alcotest.(check int) "one worker slot" 1
    (Array.length stats.Milp.per_worker_nodes);
  Alcotest.(check int) "no steals" 0 stats.Milp.steals;
  Alcotest.(check int) "per-worker sums to total" stats.Milp.nodes_explored
    stats.Milp.per_worker_nodes.(0)

let test_parallel_stats_accounting () =
  let model = hard_infeasible_model 12 in (* finishes: 2^12 tree is fine *)
  let result, stats = Milp_par.solve_with_stats ~options:par_options model in
  Alcotest.(check string) "still infeasible" "infeasible"
    (classification result);
  Alcotest.(check int) "4 worker slots" 4
    (Array.length stats.Milp.per_worker_nodes);
  Alcotest.(check int) "per-worker node counts sum to the total"
    stats.Milp.nodes_explored
    (Array.fold_left ( + ) 0 stats.Milp.per_worker_nodes);
  Alcotest.(check bool) "lp wall time measured" true
    (stats.Milp.lp_time_s > 0.0);
  Alcotest.(check bool) "queues were used" true (stats.Milp.max_queue_depth >= 1)

let test_deadline_returns_timeout_sequential () =
  let options =
    { seq_options with Milp.max_nodes = max_int; time_limit_s = Some 0.25 }
  in
  let started = Clock.now_s () in
  match Milp_par.solve ~options (hard_model ()) with
  | Milp.Timeout ->
      let elapsed = Clock.now_s () -. started in
      Alcotest.(check bool) "stopped near the deadline" true (elapsed < 5.0)
  | r -> Alcotest.failf "expected timeout, got %s" (classification r)

let test_deadline_returns_timeout_parallel () =
  let options =
    { par_options with Milp.max_nodes = max_int; time_limit_s = Some 0.25 }
  in
  let started = Clock.now_s () in
  match Milp_par.solve ~options (hard_model ()) with
  | Milp.Timeout ->
      let elapsed = Clock.now_s () -. started in
      Alcotest.(check bool) "stopped near the deadline" true (elapsed < 5.0)
  | r -> Alcotest.failf "expected timeout, got %s" (classification r)

let test_node_limit_still_reported () =
  let options = { par_options with Milp.max_nodes = 50 } in
  match Milp_par.solve ~options (hard_model ()) with
  | Milp.Node_limit -> ()
  | r -> Alcotest.failf "expected node-limit, got %s" (classification r)

(* Easy to find an incumbent, astronomically hard to prove optimality:
   maximize sum x_i over n binaries subject to sum 2 x_i <= n - 1.  The
   LP relaxation is 11.5 (for n = 24) at essentially every node while
   the integer optimum is 11, so bound pruning never fires and the full
   proof tree has ~2^n nodes.  A depth-first dive reaches an integral
   relaxation of value 11 after fixing 13 variables to zero (~14 nodes),
   so any truncated run holds an incumbent it cannot have proven. *)
let hard_incumbent_model n =
  let m = ref (Lp.create ()) in
  let vars =
    Array.init n (fun _ ->
        let model, v = Lp.add_var ~kind:Lp.Binary !m in
        m := model;
        v)
  in
  let terms = Array.to_list (Array.map (fun v -> (2.0, v)) vars) in
  m := Lp.add_constraint !m terms Lp.Le (float_of_int (n - 1));
  m :=
    Lp.set_objective !m Lp.Maximize
      (Array.to_list (Array.map (fun v -> (1.0, v)) vars));
  !m

let expect_feasible_11 ~label model result =
  match result with
  | Milp.Feasible { objective; solution } ->
      check_float (label ^ ": incumbent objective") 11.0 objective;
      Alcotest.(check bool)
        (label ^ ": incumbent satisfies the model") true
        (Lp.check_feasible ~tol:1e-6 model solution)
  | Milp.Optimal _ ->
      Alcotest.failf "%s: truncated search must not claim Optimal" label
  | r -> Alcotest.failf "%s: expected feasible, got %s" label (classification r)

let test_truncated_incumbent_feasible_sequential () =
  let model = hard_incumbent_model 24 in
  let options = { seq_options with Milp.max_nodes = 200 } in
  expect_feasible_11 ~label:"seq node limit" model (Milp.solve ~options model)

let test_truncated_incumbent_feasible_parallel () =
  let model = hard_incumbent_model 24 in
  let options = { par_options with Milp.max_nodes = 400 } in
  expect_feasible_11 ~label:"par node limit" model
    (Milp_par.solve ~options model)

let test_deadline_incumbent_feasible () =
  let model = hard_incumbent_model 24 in
  let options =
    { seq_options with Milp.max_nodes = max_int; time_limit_s = Some 0.3 }
  in
  let started = Clock.now_s () in
  expect_feasible_11 ~label:"seq deadline" model (Milp.solve ~options model);
  Alcotest.(check bool) "stopped near the deadline" true
    (Clock.now_s () -. started < 5.0)

let test_sequential_queue_depth_tracked () =
  (* The DFS stack on the subset-sum tree must reach depth >= 2 and the
     high-water mark is tracked incrementally (not recomputed per node). *)
  let model = hard_infeasible_model 8 in
  let result, stats = Milp.solve_with_stats ~options:seq_options model in
  Alcotest.(check string) "proved infeasible" "infeasible"
    (classification result);
  Alcotest.(check bool) "stack depth tracked" true
    (stats.Milp.max_queue_depth >= 2);
  Alcotest.(check bool) "depth bounded by nodes" true
    (stats.Milp.max_queue_depth <= stats.Milp.nodes_explored + 1)

let test_branch_var_lowest_index_tie () =
  (* Two integer variables equally fractional at 0.5: branching must
     pick the lower index deterministically. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:1.0 ~kind:Lp.Integer m in
  let m, y = Lp.add_var ~lo:0.0 ~up:1.0 ~kind:Lp.Integer m in
  (match Milp.find_branch_var ~tol:1e-6 m [| 0.5; 0.5 |] with
  | Some v -> Alcotest.(check int) "lowest index wins" x v
  | None -> Alcotest.fail "expected a fractional branch variable");
  (* And strictly-more-fractional still beats index order. *)
  match Milp.find_branch_var ~tol:1e-6 m [| 0.9; 0.5 |] with
  | Some v -> Alcotest.(check int) "most fractional wins" y v
  | None -> Alcotest.fail "expected a fractional branch variable"

let test_pool_processes_whole_tree () =
  (* Sanity check of the pool itself: expand a binary tree of depth 10
     and count the leaves across 4 workers. *)
  let leaves = Atomic.make 0 in
  let process _id depth =
    if depth = 0 then begin
      Atomic.incr leaves;
      []
    end
    else [ depth - 1; depth - 1 ]
  in
  let stats =
    Pool.run ~workers:4 ~initial:[ 10 ] ~process ~stop:(fun () -> false)
  in
  Alcotest.(check int) "all leaves visited" 1024 (Atomic.get leaves);
  Alcotest.(check int) "work accounted" 2047
    (Array.fold_left ( + ) 0 stats.Pool.per_worker_tasks)

let tests =
  [
    Alcotest.test_case "pool processes whole tree" `Quick
      test_pool_processes_whole_tree;
    Alcotest.test_case "parallel agrees on random MILPs" `Quick
      test_parallel_agrees_on_random_milps;
    Alcotest.test_case "parallel find-first agrees" `Quick
      test_parallel_find_first_agrees;
    Alcotest.test_case "task-batch sizes agree" `Quick
      test_task_batch_sizes_agree;
    Alcotest.test_case "task-batch infeasible proof is exhaustive" `Quick
      test_task_batch_infeasible_proof;
    Alcotest.test_case "parallel proves infeasibility" `Quick
      test_parallel_infeasible;
    Alcotest.test_case "workers=1 is the sequential solver" `Quick
      test_sequential_fallback_is_sequential;
    Alcotest.test_case "parallel stats accounting" `Quick
      test_parallel_stats_accounting;
    Alcotest.test_case "deadline -> Timeout (sequential)" `Quick
      test_deadline_returns_timeout_sequential;
    Alcotest.test_case "deadline -> Timeout (parallel)" `Quick
      test_deadline_returns_timeout_parallel;
    Alcotest.test_case "node limit still reported" `Quick
      test_node_limit_still_reported;
    Alcotest.test_case "truncated incumbent -> Feasible (sequential)" `Quick
      test_truncated_incumbent_feasible_sequential;
    Alcotest.test_case "truncated incumbent -> Feasible (parallel)" `Quick
      test_truncated_incumbent_feasible_parallel;
    Alcotest.test_case "deadline incumbent -> Feasible" `Quick
      test_deadline_incumbent_feasible;
    Alcotest.test_case "sequential queue depth tracked" `Quick
      test_sequential_queue_depth_tracked;
    Alcotest.test_case "branch-var tie-break by lowest index" `Quick
      test_branch_var_lowest_index_tie;
  ]
