(* Tests for the data-driven outer sets and the runtime monitor. *)

module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Runtime = Dpv_monitor.Runtime
module Interval = Dpv_absint.Interval
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Mat = Dpv_tensor.Mat
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

let points = [| [| 0.0; 0.0 |]; [| 1.0; 2.0 |]; [| -1.0; 1.0 |] |]

(* -- box monitor -- *)

let test_box_fit_contains_data () =
  let b = Box_monitor.fit points in
  Array.iter
    (fun p -> Alcotest.(check bool) "contains" true (Box_monitor.contains b p))
    points

let test_box_fit_is_tight () =
  let b = Box_monitor.fit points in
  let box = Box_monitor.to_box b in
  Alcotest.(check bool) "dim0" true
    (Interval.approx_equal box.(0) (Interval.make ~lo:(-1.0) ~hi:1.0));
  Alcotest.(check bool) "dim1" true
    (Interval.approx_equal box.(1) (Interval.make ~lo:0.0 ~hi:2.0))

let test_box_margin () =
  let b = Box_monitor.fit ~margin:0.1 points in
  (* dim0 width 2 -> pad 0.2 *)
  let box = Box_monitor.to_box b in
  check_float "padded lo" (-1.2) box.(0).Interval.lo;
  check_float "padded hi" 1.2 box.(0).Interval.hi

let test_box_violation_margin () =
  let b = Box_monitor.fit points in
  check_float "inside" 0.0 (Box_monitor.violation_margin b [| 0.5; 1.0 |]);
  check_float "outside by 0.5" 0.5 (Box_monitor.violation_margin b [| 1.5; 1.0 |]);
  check_float "worst coordinate" 2.0 (Box_monitor.violation_margin b [| 3.0; 1.5 |])

let test_box_widen () =
  let b = Box_monitor.fit points in
  let b' = Box_monitor.widen b [| 5.0; -3.0 |] in
  Alcotest.(check bool) "new point inside" true (Box_monitor.contains b' [| 5.0; -3.0 |]);
  Array.iter
    (fun p -> Alcotest.(check bool) "old points still inside" true (Box_monitor.contains b' p))
    points

(* -- polyhedron -- *)

let test_octagon_contains_data () =
  let p = Polyhedron.fit_octagon points in
  Array.iter
    (fun x -> Alcotest.(check bool) "contains" true (Polyhedron.contains ~tol:1e-9 p x))
    points

let test_octagon_face_count () =
  let p = Polyhedron.fit_octagon points in
  (* 2 dims: 4 axis faces + 4 pair faces = 8 *)
  Alcotest.(check int) "faces" 8 (Polyhedron.num_faces p)

let test_octagon_tighter_than_box () =
  (* points on the diagonal: box allows the off-diagonal corner, the
     octagon (x0 - x1 faces) forbids it *)
  let diag = [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  let box = Box_monitor.fit diag in
  let oct = Polyhedron.fit_octagon diag in
  let corner = [| 2.0; 0.0 |] in
  Alcotest.(check bool) "box admits corner" true (Box_monitor.contains box corner);
  Alcotest.(check bool) "octagon rejects corner" false
    (Polyhedron.contains oct corner)

let test_octagon_bounding_box () =
  let p = Polyhedron.fit_octagon points in
  let box = Polyhedron.bounding_box p in
  Alcotest.(check bool) "matches box monitor" true
    (Interval.approx_equal box.(0) (Interval.make ~lo:(-1.0) ~hi:1.0)
    && Interval.approx_equal box.(1) (Interval.make ~lo:0.0 ~hi:2.0))

let test_polyhedron_margin_faces () =
  let p = Polyhedron.fit_octagon ~margin:0.5 points in
  (* formerly-boundary points are now strictly inside *)
  Array.iter
    (fun x ->
      Alcotest.(check bool) "strictly inside" true
        (Polyhedron.violation_margin p x < -0.4 +. 1e-9
        || Polyhedron.violation_margin p x = 0.0))
    points

let test_prune_drops_uncorrelated_pairs () =
  (* Independent coordinates: every pairwise face is box-implied. *)
  let rng = Rng.create 97 in
  let pts =
    Array.init 200 (fun _ -> [| Rng.float rng 1.0; Rng.float rng 1.0 |])
  in
  let poly = Polyhedron.fit_octagon pts in
  let pruned = Polyhedron.prune_redundant ~slack:0.2 poly in
  (* only the 4 axis faces survive a generous slack *)
  Alcotest.(check int) "axis faces only" 4 (Polyhedron.num_faces pruned)

let test_prune_keeps_correlated_pairs () =
  let diag = [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  let pruned = Polyhedron.prune_redundant (Polyhedron.fit_octagon diag) in
  (* x0 - x1 and x1 - x0 faces are informative and must survive *)
  Alcotest.(check bool) "still rejects the off-diagonal corner" false
    (Polyhedron.contains pruned [| 2.0; 0.0 |]);
  Alcotest.(check bool) "fewer faces than the full octagon" true
    (Polyhedron.num_faces pruned < 8)

let qcheck_prune_preserves_membership_of_data =
  QCheck.Test.make ~count:100 ~name:"pruned polyhedron still contains the data"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 131) in
      let pts =
        Array.init 30 (fun _ ->
            [| Rng.gaussian rng; Rng.gaussian rng; Rng.gaussian rng |])
      in
      let pruned = Polyhedron.prune_redundant (Polyhedron.fit_octagon pts) in
      Array.for_all (Polyhedron.contains ~tol:1e-9 pruned) pts)

let qcheck_prune_only_grows_the_set =
  QCheck.Test.make ~count:100 ~name:"pruning never removes points from the set"
    QCheck.(pair small_int small_int)
    (fun (seed, probe_seed) ->
      let rng = Rng.create (seed + 151) in
      let pts = Array.init 15 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
      let poly = Polyhedron.fit_octagon pts in
      let pruned = Polyhedron.prune_redundant poly in
      let probe = Rng.create (probe_seed + 152) in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = [| 3.0 *. Rng.gaussian probe; 3.0 *. Rng.gaussian probe |] in
        if Polyhedron.contains ~tol:0.0 poly x
           && not (Polyhedron.contains ~tol:1e-6 pruned x)
        then ok := false
      done;
      !ok)

let test_fit_box_equals_box_monitor () =
  let pb = Polyhedron.fit_box points in
  let bm = Box_monitor.fit points in
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let x = [| Rng.uniform rng ~lo:(-2.0) ~hi:2.0; Rng.uniform rng ~lo:(-1.0) ~hi:3.0 |] in
    Alcotest.(check bool) "same membership" (Box_monitor.contains bm x)
      (Polyhedron.contains ~tol:0.0 pb x)
  done

(* -- runtime monitor -- *)

let identity_net dim =
  Network.create ~input_dim:dim
    [ Layer.dense ~weights:(Mat.identity dim) ~bias:(Dpv_tensor.Vec.zeros dim) ]

let test_runtime_counts () =
  let net = identity_net 2 in
  let region = Runtime.Box (Box_monitor.fit points) in
  let monitor = Runtime.create ~network:net ~cut:1 ~region in
  let _, v1 = Runtime.infer monitor [| 0.0; 1.0 |] in
  let _, v2 = Runtime.infer monitor [| 9.0; 9.0 |] in
  Alcotest.(check bool) "inside" true (v1 = Runtime.In_region);
  (match v2 with
  | Runtime.Warning m -> Alcotest.(check bool) "margin positive" true (m > 0.0)
  | Runtime.In_region -> Alcotest.fail "expected warning");
  let stats = Runtime.stats monitor in
  Alcotest.(check int) "frames" 2 stats.Runtime.frames;
  Alcotest.(check int) "warnings" 1 stats.Runtime.warnings;
  check_float "rate" 0.5 stats.Runtime.warning_rate

let test_runtime_reset () =
  let net = identity_net 2 in
  let monitor =
    Runtime.create ~network:net ~cut:1 ~region:(Runtime.Box (Box_monitor.fit points))
  in
  ignore (Runtime.infer monitor [| 9.0; 9.0 |]);
  Runtime.reset monitor;
  let stats = Runtime.stats monitor in
  Alcotest.(check int) "frames reset" 0 stats.Runtime.frames;
  check_float "rate on empty" 0.0 stats.Runtime.warning_rate

let test_runtime_check_only_does_not_count () =
  let net = identity_net 2 in
  let monitor =
    Runtime.create ~network:net ~cut:1 ~region:(Runtime.Box (Box_monitor.fit points))
  in
  ignore (Runtime.check_only monitor [| 9.0; 9.0 |]);
  Alcotest.(check int) "not counted" 0 (Runtime.stats monitor).Runtime.frames

let test_runtime_dimension_check () =
  let net = identity_net 3 in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Runtime.create: region dim 2, cut layer dim 3")
    (fun () ->
      ignore
        (Runtime.create ~network:net ~cut:1
           ~region:(Runtime.Box (Box_monitor.fit points))))

let test_runtime_cut_zero_monitors_input () =
  let net = identity_net 2 in
  let monitor =
    Runtime.create ~network:net ~cut:0 ~region:(Runtime.Box (Box_monitor.fit points))
  in
  let _, v = Runtime.infer monitor [| 0.5; 1.0 |] in
  Alcotest.(check bool) "input monitored" true (v = Runtime.In_region)

(* -- property tests -- *)

let qcheck_fit_contains_all_points =
  QCheck.Test.make ~count:100 ~name:"fitted regions contain every data point"
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 31) in
      let pts =
        Array.init n (fun _ ->
            [| Rng.gaussian rng; Rng.gaussian rng; Rng.gaussian rng |])
      in
      let box = Box_monitor.fit pts in
      let oct = Polyhedron.fit_octagon pts in
      Array.for_all (Box_monitor.contains box) pts
      && Array.for_all (Polyhedron.contains ~tol:1e-9 oct) pts)

let qcheck_octagon_subset_of_box =
  QCheck.Test.make ~count:100 ~name:"octagon region is a subset of the box"
    QCheck.(pair small_int small_int)
    (fun (seed, probe_seed) ->
      let rng = Rng.create (seed + 61) in
      let pts = Array.init 10 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
      let box = Box_monitor.fit pts in
      let oct = Polyhedron.fit_octagon pts in
      let probe = Rng.create (probe_seed + 62) in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = [| Rng.gaussian probe *. 2.0; Rng.gaussian probe *. 2.0 |] in
        if Polyhedron.contains ~tol:0.0 oct x && not (Box_monitor.contains box x)
        then ok := false
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "box fit contains data" `Quick test_box_fit_contains_data;
    Alcotest.test_case "box fit is tight" `Quick test_box_fit_is_tight;
    Alcotest.test_case "box margin" `Quick test_box_margin;
    Alcotest.test_case "box violation margin" `Quick test_box_violation_margin;
    Alcotest.test_case "box widen" `Quick test_box_widen;
    Alcotest.test_case "octagon contains data" `Quick test_octagon_contains_data;
    Alcotest.test_case "octagon face count" `Quick test_octagon_face_count;
    Alcotest.test_case "octagon tighter than box" `Quick test_octagon_tighter_than_box;
    Alcotest.test_case "octagon bounding box" `Quick test_octagon_bounding_box;
    Alcotest.test_case "polyhedron margin" `Quick test_polyhedron_margin_faces;
    Alcotest.test_case "prune drops uncorrelated" `Quick test_prune_drops_uncorrelated_pairs;
    Alcotest.test_case "prune keeps correlated" `Quick test_prune_keeps_correlated_pairs;
    QCheck_alcotest.to_alcotest qcheck_prune_preserves_membership_of_data;
    QCheck_alcotest.to_alcotest qcheck_prune_only_grows_the_set;
    Alcotest.test_case "fit_box = box monitor" `Quick test_fit_box_equals_box_monitor;
    Alcotest.test_case "runtime counts" `Quick test_runtime_counts;
    Alcotest.test_case "runtime reset" `Quick test_runtime_reset;
    Alcotest.test_case "runtime check_only" `Quick test_runtime_check_only_does_not_count;
    Alcotest.test_case "runtime dimension check" `Quick test_runtime_dimension_check;
    Alcotest.test_case "runtime cut 0" `Quick test_runtime_cut_zero_monitors_input;
    QCheck_alcotest.to_alcotest qcheck_fit_contains_all_points;
    QCheck_alcotest.to_alcotest qcheck_octagon_subset_of_box;
  ]
