(* Tests for the abstract interpretation domains.  The load-bearing
   properties are *soundness*: for any concrete input inside the input
   region, every concrete activation must lie inside the propagated
   abstract bounds. *)

module Interval = Dpv_absint.Interval
module Box_domain = Dpv_absint.Box_domain
module Zonotope = Dpv_absint.Zonotope
module Propagate = Dpv_absint.Propagate
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Mat = Dpv_tensor.Mat
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

(* -- intervals -- *)

let iv lo hi = Interval.make ~lo ~hi

let test_interval_basics () =
  let a = iv (-1.0) 2.0 in
  check_float "width" 3.0 (Interval.width a);
  check_float "center" 0.5 (Interval.center a);
  check_float "radius" 1.5 (Interval.radius a);
  Alcotest.(check bool) "contains" true (Interval.contains a 0.0);
  Alcotest.(check bool) "not contains" false (Interval.contains a 2.1)

let test_interval_make_rejects () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Interval.make: lo 1 > hi 0") (fun () ->
      ignore (iv 1.0 0.0))

let test_interval_arith () =
  let a = iv 1.0 2.0 and b = iv (-1.0) 3.0 in
  Alcotest.(check bool) "add" true
    (Interval.approx_equal (Interval.add a b) (iv 0.0 5.0));
  Alcotest.(check bool) "sub" true
    (Interval.approx_equal (Interval.sub a b) (iv (-2.0) 3.0));
  Alcotest.(check bool) "neg" true
    (Interval.approx_equal (Interval.neg a) (iv (-2.0) (-1.0)));
  Alcotest.(check bool) "scale pos" true
    (Interval.approx_equal (Interval.scale 2.0 a) (iv 2.0 4.0));
  Alcotest.(check bool) "scale neg flips" true
    (Interval.approx_equal (Interval.scale (-1.0) a) (iv (-2.0) (-1.0)))

let test_interval_mul () =
  let a = iv (-2.0) 3.0 and b = iv (-1.0) 4.0 in
  (* extremes: -2*4 = -8, 3*4 = 12 *)
  Alcotest.(check bool) "mul" true
    (Interval.approx_equal (Interval.mul a b) (iv (-8.0) 12.0))

let test_interval_relu () =
  Alcotest.(check bool) "crossing" true
    (Interval.approx_equal (Interval.relu (iv (-1.0) 2.0)) (iv 0.0 2.0));
  Alcotest.(check bool) "negative" true
    (Interval.approx_equal (Interval.relu (iv (-3.0) (-1.0))) (iv 0.0 0.0));
  Alcotest.(check bool) "positive unchanged" true
    (Interval.approx_equal (Interval.relu (iv 1.0 2.0)) (iv 1.0 2.0))

let test_interval_join_meet () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  Alcotest.(check bool) "join" true
    (Interval.approx_equal (Interval.join a b) (iv 0.0 3.0));
  (match Interval.meet a b with
  | Some m -> Alcotest.(check bool) "meet" true (Interval.approx_equal m (iv 1.0 2.0))
  | None -> Alcotest.fail "expected non-empty meet");
  Alcotest.(check bool) "empty meet" true
    (Interval.meet (iv 0.0 1.0) (iv 2.0 3.0) = None)

let test_interval_dot () =
  let d = Interval.dot [| 1.0; -2.0 |] [| iv 0.0 1.0; iv 0.0 1.0 |] in
  Alcotest.(check bool) "dot" true (Interval.approx_equal d (iv (-2.0) 1.0))

let test_interval_monotone () =
  let s = Interval.sigmoid (iv 0.0 0.0) in
  check_float "sigmoid point" 0.5 (Interval.center s);
  let t = Interval.tanh_interval (iv (-1.0) 1.0) in
  Alcotest.(check bool) "tanh symmetric" true
    (Interval.approx_equal t (iv (-.tanh 1.0) (tanh 1.0)))

(* -- box domain -- *)

let test_box_of_points () =
  let box = Box_domain.of_points [| [| 0.0; 5.0 |]; [| -1.0; 3.0 |] |] in
  Alcotest.(check bool) "dim0" true (Interval.approx_equal box.(0) (iv (-1.0) 0.0));
  Alcotest.(check bool) "dim1" true (Interval.approx_equal box.(1) (iv 3.0 5.0))

let test_box_dense_transfer () =
  (* y = x0 - x1 with x in [0,1]^2 -> y in [-1,1] *)
  let layer =
    Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |]
  in
  let box = Box_domain.uniform ~dim:2 ~lo:0.0 ~hi:1.0 in
  let out = Box_domain.transfer_layer layer box in
  Alcotest.(check bool) "interval dot" true
    (Interval.approx_equal out.(0) (iv (-1.0) 1.0))

let test_box_bn_transfer () =
  let bn =
    Layer.Batch_norm
      { gamma = [| -2.0 |]; beta = [| 0.0 |]; mean = [| 0.0 |]; var = [| 1.0 |]; eps = 0.0 }
  in
  (* scale = -2: [0,1] -> [-2,0] *)
  let out = Box_domain.transfer_layer bn (Box_domain.uniform ~dim:1 ~lo:0.0 ~hi:1.0) in
  Alcotest.(check bool) "negative scale flips" true
    (Interval.approx_equal out.(0) (iv (-2.0) 0.0))

let test_box_contains_sample () =
  let box = Box_domain.uniform ~dim:3 ~lo:(-2.0) ~hi:2.0 in
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "sample inside" true
      (Box_domain.contains box (Box_domain.sample rng box))
  done

(* -- zonotope -- *)

let test_zonotope_of_box_roundtrip () =
  let box = [| iv (-1.0) 3.0; iv 0.0 2.0 |] in
  let z = Zonotope.of_box box in
  let back = Zonotope.to_box z in
  Alcotest.(check bool) "roundtrip dim0" true (Interval.approx_equal back.(0) box.(0));
  Alcotest.(check bool) "roundtrip dim1" true (Interval.approx_equal back.(1) box.(1))

let test_zonotope_tracks_correlation () =
  (* y0 = x, y1 = -x: box loses the correlation, zonotope keeps it, so
     y0 + y1 concentrates at 0 for the zonotope. *)
  let layer =
    Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |]) ~bias:[| 0.0; 0.0 |]
  in
  let z = Zonotope.of_box [| iv (-1.0) 1.0 |] in
  let z' = Zonotope.transfer_layer layer z in
  let sum_layer =
    Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 1.0 |] |]) ~bias:[| 0.0 |]
  in
  let z'' = Zonotope.transfer_layer sum_layer z' in
  let b = Zonotope.to_box z'' in
  Alcotest.(check bool) "sum is exactly 0" true
    (Interval.approx_equal b.(0) (iv 0.0 0.0));
  (* the box domain gives [-2, 2] for the same computation *)
  let box_out =
    Box_domain.transfer_layer sum_layer
      (Box_domain.transfer_layer layer [| iv (-1.0) 1.0 |])
  in
  Alcotest.(check bool) "box is [-2,2]" true
    (Interval.approx_equal box_out.(0) (iv (-2.0) 2.0))

let test_zonotope_relu_cases () =
  (* stable positive: identity; stable negative: zero; crossing: sound. *)
  let z = Zonotope.of_box [| iv 1.0 2.0; iv (-2.0) (-1.0); iv (-1.0) 1.0 |] in
  let z' = Zonotope.transfer_layer Layer.Relu z in
  let b = Zonotope.to_box z' in
  Alcotest.(check bool) "positive unchanged" true
    (Interval.approx_equal b.(0) (iv 1.0 2.0));
  Alcotest.(check bool) "negative zeroed" true
    (Interval.approx_equal b.(1) (iv 0.0 0.0));
  Alcotest.(check bool) "crossing sound" true
    (b.(2).Interval.lo <= 0.0 && b.(2).Interval.hi >= 1.0)

(* -- soundness property tests -- *)

let random_pwl_net rng =
  let hidden = 2 + Rng.int rng 4 in
  Init.mlp rng ~input_dim:3 ~hidden:[ hidden ] ~output_dim:2

let soundness_of_domain domain =
  QCheck.Test.make ~count:100
    ~name:
      (Printf.sprintf "%s propagation encloses concrete activations"
         (Propagate.domain_name domain))
    QCheck.(pair small_int small_int)
    (fun (net_seed, sample_seed) ->
      let rng = Rng.create (net_seed + 1) in
      let net = random_pwl_net rng in
      let input_box = Box_domain.uniform ~dim:3 ~lo:(-1.0) ~hi:1.0 in
      let all_bounds = Propagate.all_layer_bounds domain net ~input_box in
      let sample_rng = Rng.create (sample_seed + 1000) in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Box_domain.sample sample_rng input_box in
        let acts = Network.activations net x in
        Array.iteri
          (fun l act ->
            (* tiny tolerance for float noise in the abstract transfer *)
            Array.iteri
              (fun i v ->
                let b = all_bounds.(l).(i) in
                if v < b.Interval.lo -. 1e-9 || v > b.Interval.hi +. 1e-9 then
                  ok := false)
              act)
          acts
      done;
      !ok)

let qcheck_box_sound = soundness_of_domain Propagate.Box
let qcheck_zonotope_sound = soundness_of_domain Propagate.Zonotope
let qcheck_deeppoly_sound = soundness_of_domain Propagate.Deeppoly

let qcheck_deeppoly_never_looser_than_box =
  QCheck.Test.make ~count:100
    ~name:"deeppoly bounds are within box bounds at every layer"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 23) in
      let net = random_pwl_net rng in
      let input_box = Box_domain.uniform ~dim:3 ~lo:(-1.0) ~hi:1.0 in
      let box_all = Propagate.all_layer_bounds Propagate.Box net ~input_box in
      let dp_all = Propagate.all_layer_bounds Propagate.Deeppoly net ~input_box in
      let ok = ref true in
      Array.iteri
        (fun l layer_bounds ->
          Array.iteri
            (fun i (dp : Interval.t) ->
              let b : Interval.t = box_all.(l).(i) in
              if
                dp.Interval.lo < b.Interval.lo -. 1e-9
                || dp.Interval.hi > b.Interval.hi +. 1e-9
              then ok := false)
            layer_bounds)
        dp_all;
      !ok)

(* Case where symbolic bounds pay: y = relu(x+2) - relu(x+2) with
   x in [-1,1].  The ReLUs are stably active, so DeepPoly keeps the exact
   expressions and the difference collapses to 0; the box domain forgets
   the correlation and reports [-2, 2]. *)
let test_deeppoly_relational_precision () =
  let w1 = Mat.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let w2 = Mat.of_rows [| [| 1.0; -1.0 |] |] in
  let net =
    Network.create ~input_dim:1
      [
        Layer.dense ~weights:w1 ~bias:[| 2.0; 2.0 |];
        Layer.Relu;
        Layer.dense ~weights:w2 ~bias:[| 0.0 |];
      ]
  in
  let input_box = [| Interval.make ~lo:(-1.0) ~hi:1.0 |] in
  let box_out = Propagate.output_bounds Propagate.Box net ~input_box in
  let dp_out = Propagate.output_bounds Propagate.Deeppoly net ~input_box in
  Alcotest.(check bool) "box spread is [-2,2]" true
    (Interval.approx_equal box_out.(0) (iv (-2.0) 2.0));
  Alcotest.(check bool) "deeppoly collapses to a point" true
    (Interval.width dp_out.(0) < 1e-9)

let qcheck_zonotope_tighter_on_affine =
  QCheck.Test.make ~count:100
    ~name:"zonotope output bounds within box bounds (affine nets)"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      (* purely affine network: zonotope is exact, box may be loose *)
      let net =
        Network.create ~input_dim:3
          [
            Init.xavier_dense rng ~in_dim:3 ~out_dim:4;
            Init.xavier_dense rng ~in_dim:4 ~out_dim:2;
          ]
      in
      let input_box = Box_domain.uniform ~dim:3 ~lo:(-1.0) ~hi:1.0 in
      let box_out = Propagate.output_bounds Propagate.Box net ~input_box in
      let zono_out = Propagate.output_bounds Propagate.Zonotope net ~input_box in
      Array.for_all2
        (fun (z : Interval.t) (b : Interval.t) ->
          z.Interval.lo >= b.Interval.lo -. 1e-9
          && z.Interval.hi <= b.Interval.hi +. 1e-9)
        zono_out box_out)

let qcheck_sigmoid_tanh_sound =
  QCheck.Test.make ~count:50
    ~name:"box propagation sound through sigmoid/tanh"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 13) in
      let net =
        Network.create ~input_dim:2
          [
            Init.xavier_dense rng ~in_dim:2 ~out_dim:3;
            Layer.Tanh;
            Init.xavier_dense rng ~in_dim:3 ~out_dim:2;
            Layer.Sigmoid;
          ]
      in
      let input_box = Box_domain.uniform ~dim:2 ~lo:(-2.0) ~hi:2.0 in
      let out_bounds = Propagate.output_bounds Propagate.Box net ~input_box in
      let sample_rng = Rng.create (seed + 14) in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Box_domain.sample sample_rng input_box in
        let y = Network.forward net x in
        Array.iteri
          (fun i v -> if not (Interval.contains out_bounds.(i) v) then ok := false)
          y
      done;
      !ok)

let test_propagate_layer_bounds_cut () =
  let rng = Rng.create 41 in
  let net = Init.mlp rng ~input_dim:2 ~hidden:[ 3 ] ~output_dim:1 in
  let input_box = Box_domain.uniform ~dim:2 ~lo:0.0 ~hi:1.0 in
  let at_cut1 = Propagate.layer_bounds Propagate.Box net ~input_box ~cut:1 in
  Alcotest.(check int) "dim at cut 1" 3 (Array.length at_cut1);
  let at_cut0 = Propagate.layer_bounds Propagate.Box net ~input_box ~cut:0 in
  Alcotest.(check bool) "cut 0 is input box" true
    (Array.for_all2 Interval.approx_equal at_cut0 input_box)

let test_domain_names () =
  Alcotest.(check (option string)) "box" (Some "box")
    (Option.map Propagate.domain_name (Propagate.domain_of_string "box"));
  Alcotest.(check bool) "unknown" true (Propagate.domain_of_string "pentagon" = None)

let tests =
  [
    Alcotest.test_case "interval basics" `Quick test_interval_basics;
    Alcotest.test_case "interval make rejects" `Quick test_interval_make_rejects;
    Alcotest.test_case "interval arithmetic" `Quick test_interval_arith;
    Alcotest.test_case "interval multiplication" `Quick test_interval_mul;
    Alcotest.test_case "interval relu" `Quick test_interval_relu;
    Alcotest.test_case "interval join/meet" `Quick test_interval_join_meet;
    Alcotest.test_case "interval dot" `Quick test_interval_dot;
    Alcotest.test_case "interval monotone maps" `Quick test_interval_monotone;
    Alcotest.test_case "box of points" `Quick test_box_of_points;
    Alcotest.test_case "box dense transfer" `Quick test_box_dense_transfer;
    Alcotest.test_case "box bn transfer" `Quick test_box_bn_transfer;
    Alcotest.test_case "box sample containment" `Quick test_box_contains_sample;
    Alcotest.test_case "zonotope box roundtrip" `Quick test_zonotope_of_box_roundtrip;
    Alcotest.test_case "zonotope correlation" `Quick test_zonotope_tracks_correlation;
    Alcotest.test_case "zonotope relu cases" `Quick test_zonotope_relu_cases;
    Alcotest.test_case "propagate cut bounds" `Quick test_propagate_layer_bounds_cut;
    Alcotest.test_case "domain names" `Quick test_domain_names;
    Alcotest.test_case "deeppoly relational precision" `Quick
      test_deeppoly_relational_precision;
    QCheck_alcotest.to_alcotest qcheck_box_sound;
    QCheck_alcotest.to_alcotest qcheck_zonotope_sound;
    QCheck_alcotest.to_alcotest qcheck_deeppoly_sound;
    QCheck_alcotest.to_alcotest qcheck_deeppoly_never_looser_than_box;
    QCheck_alcotest.to_alcotest qcheck_zonotope_tighter_on_affine;
    QCheck_alcotest.to_alcotest qcheck_sigmoid_tanh_sound;
  ]
