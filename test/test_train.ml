(* Tests for the training stack: losses, backprop (checked against finite
   differences), optimizers, datasets and the trainer loop. *)

module Loss = Dpv_train.Loss
module Grad = Dpv_train.Grad
module Optimizer = Dpv_train.Optimizer
module Dataset = Dpv_train.Dataset
module Trainer = Dpv_train.Trainer
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

(* -- losses -- *)

let test_mse_value () =
  check_float "zero at target" 0.0
    (Loss.value Loss.Mse ~output:[| 1.0; 2.0 |] ~target:[| 1.0; 2.0 |]);
  check_float "half squared distance" 2.5
    (Loss.value Loss.Mse ~output:[| 2.0; 1.0 |] ~target:[| 0.0; 0.0 |])

let test_mse_gradient () =
  let g = Loss.gradient Loss.Mse ~output:[| 3.0 |] ~target:[| 1.0 |] in
  check_float "y - t" 2.0 g.(0)

let test_bce_value () =
  (* logit 0, either label -> log 2 *)
  check_float "logit 0" (log 2.0)
    (Loss.value Loss.Bce_with_logits ~output:[| 0.0 |] ~target:[| 1.0 |]);
  (* confident and correct -> near zero *)
  Alcotest.(check bool) "confident correct" true
    (Loss.value Loss.Bce_with_logits ~output:[| 20.0 |] ~target:[| 1.0 |] < 1e-6);
  (* confident and wrong -> about |logit| *)
  Alcotest.(check bool) "confident wrong" true
    (Float.abs
       (Loss.value Loss.Bce_with_logits ~output:[| -20.0 |] ~target:[| 1.0 |]
       -. 20.0)
    < 1e-6)

let test_bce_stable_at_extremes () =
  let v = Loss.value Loss.Bce_with_logits ~output:[| 1e4 |] ~target:[| 0.0 |] in
  Alcotest.(check bool) "finite at huge logit" true (Float.is_finite v);
  let g = Loss.gradient Loss.Bce_with_logits ~output:[| -1e4 |] ~target:[| 1.0 |] in
  Alcotest.(check bool) "finite gradient" true (Float.is_finite g.(0))

let test_bce_gradient () =
  let g = Loss.gradient Loss.Bce_with_logits ~output:[| 0.0 |] ~target:[| 1.0 |] in
  check_float "sigmoid(0) - 1" (-0.5) g.(0)

(* -- gradient checking: backprop vs central finite differences -- *)

(* Perturb one scalar parameter in place, run f, restore. *)
let with_perturbed get set delta f =
  let orig = get () in
  set (orig +. delta);
  let v = f () in
  set orig;
  v

let loss_of net loss input target () =
  Loss.value loss ~output:(Network.forward net input) ~target

let gradient_check_network net loss ~input ~target ~tol =
  let _, grads = Grad.sample_gradient net loss ~input ~target in
  let eps = 1e-5 in
  let check_scalar name analytic get set =
    let f = loss_of net loss input target in
    let plus = with_perturbed get set eps f in
    let minus = with_perturbed get set (-.eps) f in
    let numeric = (plus -. minus) /. (2.0 *. eps) in
    if Float.abs (numeric -. analytic) > tol *. Float.max 1.0 (Float.abs numeric)
    then
      Alcotest.failf "%s: analytic %g vs numeric %g" name analytic numeric
  in
  List.iteri
    (fun idx layer ->
      match (layer, grads.(idx)) with
      | Layer.Dense { weights; bias }, Grad.Dense_grad { d_weights; d_bias } ->
          for i = 0 to Mat.rows weights - 1 do
            for j = 0 to Mat.cols weights - 1 do
              check_scalar
                (Printf.sprintf "w[%d][%d,%d]" idx i j)
                (Mat.get d_weights i j)
                (fun () -> Mat.get weights i j)
                (fun v -> Mat.set weights i j v)
            done;
            check_scalar
              (Printf.sprintf "b[%d][%d]" idx i)
              d_bias.(i)
              (fun () -> bias.(i))
              (fun v -> bias.(i) <- v)
          done
      | Layer.Batch_norm { gamma; beta; _ }, Grad.Bn_grad { d_gamma; d_beta } ->
          for i = 0 to Vec.dim gamma - 1 do
            check_scalar
              (Printf.sprintf "gamma[%d][%d]" idx i)
              d_gamma.(i)
              (fun () -> gamma.(i))
              (fun v -> gamma.(i) <- v);
            check_scalar
              (Printf.sprintf "beta[%d][%d]" idx i)
              d_beta.(i)
              (fun () -> beta.(i))
              (fun v -> beta.(i) <- v)
          done
      | (Layer.Relu | Layer.Sigmoid | Layer.Tanh), Grad.No_grad -> ()
      | _ -> Alcotest.fail "grad structure mismatch")
    (Network.layers net)

let test_gradcheck_dense_relu () =
  let rng = Rng.create 21 in
  let net = Init.mlp rng ~input_dim:3 ~hidden:[ 4 ] ~output_dim:2 in
  (* Keep inputs away from ReLU kinks so finite differences are valid. *)
  gradient_check_network net Loss.Mse ~input:[| 0.9; -0.4; 0.3 |]
    ~target:[| 0.5; -0.5 |] ~tol:1e-4

let test_gradcheck_tanh () =
  let rng = Rng.create 22 in
  let net =
    Network.create ~input_dim:2
      [ Init.xavier_dense rng ~in_dim:2 ~out_dim:3; Layer.Tanh;
        Init.xavier_dense rng ~in_dim:3 ~out_dim:1 ]
  in
  gradient_check_network net Loss.Mse ~input:[| 0.3; -0.6 |] ~target:[| 0.2 |]
    ~tol:1e-4

let test_gradcheck_sigmoid_bce () =
  let rng = Rng.create 23 in
  let net =
    Network.create ~input_dim:2
      [ Init.xavier_dense rng ~in_dim:2 ~out_dim:3; Layer.Sigmoid;
        Init.xavier_dense rng ~in_dim:3 ~out_dim:1 ]
  in
  gradient_check_network net Loss.Bce_with_logits ~input:[| 0.5; 0.1 |]
    ~target:[| 1.0 |] ~tol:1e-4

let test_gradcheck_batch_norm () =
  let rng = Rng.create 24 in
  let bn =
    Layer.Batch_norm
      {
        gamma = [| 1.3; 0.7; 2.0 |];
        beta = [| 0.1; -0.2; 0.3 |];
        mean = [| 0.5; -0.5; 0.0 |];
        var = [| 1.5; 0.8; 2.0 |];
        eps = 1e-5;
      }
  in
  let net =
    Network.create ~input_dim:2
      [ Init.xavier_dense rng ~in_dim:2 ~out_dim:3; bn;
        Init.xavier_dense rng ~in_dim:3 ~out_dim:1 ]
  in
  gradient_check_network net Loss.Mse ~input:[| 0.8; -0.3 |] ~target:[| 0.0 |]
    ~tol:1e-4

let test_grad_accumulate_scale () =
  let rng = Rng.create 25 in
  let net = Init.mlp rng ~input_dim:2 ~hidden:[ 2 ] ~output_dim:1 in
  let _, g1 = Grad.sample_gradient net Loss.Mse ~input:[| 1.0; 0.5 |] ~target:[| 0.0 |] in
  let total = Grad.zeros net in
  Grad.accumulate ~into:total g1;
  Grad.accumulate ~into:total g1;
  Grad.scale total 0.5;
  (* total should now equal g1 *)
  (match (total.(0), g1.(0)) with
  | Grad.Dense_grad a, Grad.Dense_grad b ->
      Alcotest.(check bool) "accumulate+scale" true
        (Mat.approx_equal a.d_weights b.d_weights
        && Vec.approx_equal a.d_bias b.d_bias)
  | _ -> Alcotest.fail "expected dense grads")

(* -- optimizers -- *)

let single_param_net w0 =
  Network.create ~input_dim:1
    [ Layer.dense ~weights:(Mat.of_rows [| [| w0 |] |]) ~bias:[| 0.0 |] ]

let get_weight net =
  match Network.layer net 1 with
  | Layer.Dense { weights; _ } -> Mat.get weights 0 0
  | _ -> assert false

let test_sgd_step_direction () =
  let net = single_param_net 2.0 in
  let opt = Optimizer.sgd ~lr:0.1 net in
  (* loss = 0.5 (w*1 - 0)^2; dw = w = 2 -> w' = 2 - 0.2 = 1.8 *)
  let _, g = Grad.sample_gradient net Loss.Mse ~input:[| 1.0 |] ~target:[| 0.0 |] in
  Optimizer.step opt net g;
  check_float "sgd update" 1.8 (get_weight net)

(* Drive loss 0.5*(f(1))^2 to zero; the bias trains too, so the
   convergence criterion is the network output, not the raw weight. *)
let converges_to_zero optimizer_of =
  let net = single_param_net 5.0 in
  let opt = optimizer_of net in
  for _ = 1 to 300 do
    let _, g = Grad.sample_gradient net Loss.Mse ~input:[| 1.0 |] ~target:[| 0.0 |] in
    Optimizer.step opt net g
  done;
  Float.abs (Network.forward net [| 1.0 |]).(0) < 0.05

let test_sgd_converges () =
  Alcotest.(check bool) "sgd" true (converges_to_zero (Optimizer.sgd ~lr:0.1))

let test_momentum_converges () =
  Alcotest.(check bool) "momentum" true
    (converges_to_zero (Optimizer.momentum ~lr:0.05 ~mu:0.9))

let test_adam_converges () =
  Alcotest.(check bool) "adam" true (converges_to_zero (Optimizer.adam ~lr:0.1))

let test_set_lr () =
  let net = single_param_net 1.0 in
  let opt = Optimizer.sgd ~lr:0.1 net in
  Optimizer.set_lr opt 0.5;
  check_float "lr updated" 0.5 (Optimizer.lr opt)

(* -- datasets -- *)

let toy_dataset n =
  Dataset.create
    ~inputs:(Array.init n (fun i -> [| float_of_int i |]))
    ~targets:(Array.init n (fun i -> [| float_of_int (i * 2) |]))

let test_dataset_create_checks () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dataset.create: inputs/targets length mismatch")
    (fun () ->
      ignore (Dataset.create ~inputs:[| [| 1.0 |] |] ~targets:[||]))

let test_dataset_split_sizes () =
  let d = toy_dataset 10 in
  let train, v = Dataset.split (Rng.create 1) d ~train_fraction:0.8 in
  Alcotest.(check int) "train" 8 (Dataset.size train);
  Alcotest.(check int) "val" 2 (Dataset.size v)

let test_dataset_split_partition () =
  let d = toy_dataset 20 in
  let train, v = Dataset.split (Rng.create 2) d ~train_fraction:0.5 in
  let all =
    Array.to_list (Array.map (fun x -> x.(0)) train.Dataset.inputs)
    @ Array.to_list (Array.map (fun x -> x.(0)) v.Dataset.inputs)
  in
  let sorted = List.sort compare all in
  Alcotest.(check (list (float 0.0))) "partition"
    (List.init 20 float_of_int) sorted

let test_dataset_batches_cover () =
  let d = toy_dataset 10 in
  let batches = Dataset.batches d ~batch_size:3 in
  Alcotest.(check int) "count" 4 (Array.length batches);
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 batches in
  Alcotest.(check int) "coverage" 10 total;
  Alcotest.(check int) "last short" 1 (Array.length batches.(3))

let test_dataset_of_labelled () =
  let d = Dataset.of_labelled [| ([| 1.0 |], 1.0); ([| 2.0 |], 0.0) |] in
  Alcotest.(check int) "target dim" 1 (Dataset.target_dim d);
  check_float "balance" 0.5 (Dataset.class_balance d)

(* -- trainer -- *)

let test_trainer_fits_linear_function () =
  (* y = 2x - 1 is exactly representable; the loop must find it. *)
  let rng = Rng.create 31 in
  let inputs = Array.init 64 (fun _ -> [| Rng.uniform rng ~lo:(-1.0) ~hi:1.0 |]) in
  let targets = Array.map (fun x -> [| (2.0 *. x.(0)) -. 1.0 |]) inputs in
  let dataset = Dataset.create ~inputs ~targets in
  let net = Init.mlp (Rng.create 32) ~input_dim:1 ~hidden:[] ~output_dim:1 in
  let opt = Optimizer.adam ~lr:0.05 net in
  let config = { Trainer.default_config with epochs = 200; batch_size = 16 } in
  let history = Trainer.fit ~rng config opt net dataset in
  let final = history.Trainer.epoch_losses.(199) in
  Alcotest.(check bool) "converged" true (final < 1e-4)

let test_trainer_loss_decreases () =
  let rng = Rng.create 33 in
  let inputs = Array.init 64 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
  let targets = Array.map (fun x -> [| x.(0) *. x.(1) |]) inputs in
  let dataset = Dataset.create ~inputs ~targets in
  let net = Init.mlp (Rng.create 34) ~input_dim:2 ~hidden:[ 8 ] ~output_dim:1 in
  let opt = Optimizer.adam ~lr:0.01 net in
  let config = { Trainer.default_config with epochs = 50 } in
  let history = Trainer.fit ~rng config opt net dataset in
  Alcotest.(check bool) "first > last" true
    (history.Trainer.epoch_losses.(0) > history.Trainer.epoch_losses.(49))

let test_binary_accuracy () =
  (* Fixed net: logit = x0.  Threshold at 0 classifies sign. *)
  let net = single_param_net 1.0 in
  let dataset =
    Dataset.of_labelled
      [| ([| 1.0 |], 1.0); ([| -1.0 |], 0.0); ([| 2.0 |], 0.0) |]
  in
  check_float "2 of 3" (2.0 /. 3.0) (Trainer.binary_accuracy net dataset)

let test_regression_mae () =
  let net = single_param_net 1.0 in
  let dataset =
    Dataset.create
      ~inputs:[| [| 1.0 |]; [| 2.0 |] |]
      ~targets:[| [| 0.0 |]; [| 0.0 |] |]
  in
  let mae = Trainer.regression_mae net dataset in
  check_float "mean |err|" 1.5 mae.(0)

let test_insert_identity_bn_preserves_function () =
  let rng = Rng.create 35 in
  let net = Init.mlp rng ~input_dim:3 ~hidden:[ 5; 4 ] ~output_dim:2 in
  let inputs = Array.init 50 (fun _ -> Array.init 3 (fun _ -> Rng.gaussian rng)) in
  let net' = Trainer.insert_identity_batch_norm net ~inputs in
  Alcotest.(check int) "two BN layers added"
    (Network.num_layers net + 2) (Network.num_layers net');
  Array.iter
    (fun x ->
      Alcotest.(check bool) "function preserved" true
        (Vec.approx_equal ~tol:1e-6 (Network.forward net x) (Network.forward net' x)))
    inputs

let test_bn_training_updates_stats () =
  let rng = Rng.create 36 in
  let net =
    Network.create ~input_dim:1
      [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |] |]) ~bias:[| 0.0 |];
        Layer.batch_norm_identity 1;
        Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |] |]) ~bias:[| 0.0 |] ]
  in
  (* Inputs centered at 10: BN stats must move toward mean 10. *)
  let inputs = Array.init 64 (fun _ -> [| 10.0 +. Rng.gaussian rng |]) in
  let targets = Array.map (fun x -> [| x.(0) |]) inputs in
  let dataset = Dataset.create ~inputs ~targets in
  let opt = Optimizer.sgd ~lr:0.0 net in
  let config = { Trainer.default_config with epochs = 2; bn_momentum = 0.5 } in
  ignore (Trainer.fit ~rng config opt net dataset);
  match Network.layer net 2 with
  | Layer.Batch_norm { mean; _ } ->
      Alcotest.(check bool) "mean tracked" true (Float.abs (mean.(0) -. 10.0) < 1.0)
  | _ -> Alcotest.fail "expected bn"

let qcheck_gradcheck_random_nets =
  QCheck.Test.make ~count:20 ~name:"gradient check on random tanh nets"
    QCheck.(pair small_int (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
    (fun (seed, (x0, x1)) ->
      let rng = Rng.create (seed + 100) in
      let net =
        Network.create ~input_dim:2
          [ Init.xavier_dense rng ~in_dim:2 ~out_dim:3; Layer.Tanh;
            Init.xavier_dense rng ~in_dim:3 ~out_dim:1 ]
      in
      (try
         gradient_check_network net Loss.Mse ~input:[| x0; x1 |]
           ~target:[| 0.3 |] ~tol:1e-3;
         true
       with Failure _ -> false))

let tests =
  [
    Alcotest.test_case "mse value" `Quick test_mse_value;
    Alcotest.test_case "mse gradient" `Quick test_mse_gradient;
    Alcotest.test_case "bce value" `Quick test_bce_value;
    Alcotest.test_case "bce stable at extremes" `Quick test_bce_stable_at_extremes;
    Alcotest.test_case "bce gradient" `Quick test_bce_gradient;
    Alcotest.test_case "gradcheck dense+relu" `Quick test_gradcheck_dense_relu;
    Alcotest.test_case "gradcheck tanh" `Quick test_gradcheck_tanh;
    Alcotest.test_case "gradcheck sigmoid+bce" `Quick test_gradcheck_sigmoid_bce;
    Alcotest.test_case "gradcheck batch norm" `Quick test_gradcheck_batch_norm;
    Alcotest.test_case "grad accumulate/scale" `Quick test_grad_accumulate_scale;
    Alcotest.test_case "sgd step direction" `Quick test_sgd_step_direction;
    Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
    Alcotest.test_case "momentum converges" `Quick test_momentum_converges;
    Alcotest.test_case "adam converges" `Quick test_adam_converges;
    Alcotest.test_case "set lr" `Quick test_set_lr;
    Alcotest.test_case "dataset create checks" `Quick test_dataset_create_checks;
    Alcotest.test_case "dataset split sizes" `Quick test_dataset_split_sizes;
    Alcotest.test_case "dataset split partition" `Quick test_dataset_split_partition;
    Alcotest.test_case "dataset batches cover" `Quick test_dataset_batches_cover;
    Alcotest.test_case "dataset of_labelled" `Quick test_dataset_of_labelled;
    Alcotest.test_case "trainer fits linear" `Quick test_trainer_fits_linear_function;
    Alcotest.test_case "trainer loss decreases" `Quick test_trainer_loss_decreases;
    Alcotest.test_case "binary accuracy" `Quick test_binary_accuracy;
    Alcotest.test_case "regression mae" `Quick test_regression_mae;
    Alcotest.test_case "identity BN insertion" `Quick test_insert_identity_bn_preserves_function;
    Alcotest.test_case "bn stats tracking" `Quick test_bn_training_updates_stats;
    QCheck_alcotest.to_alcotest qcheck_gradcheck_random_nets;
  ]
