(* Tests for risk conditions, linear expressions and property descriptors. *)

module Linexpr = Dpv_spec.Linexpr
module Risk = Dpv_spec.Risk
module Property = Dpv_spec.Property

let check_float = Alcotest.(check (float 1e-9))

let test_linexpr_eval () =
  let e = Linexpr.(add (scale 2.0 (output 0)) (const 1.0)) in
  check_float "2*y0 + 1" 7.0 (Linexpr.eval e [| 3.0 |])

let test_linexpr_operators () =
  let open Linexpr in
  let e = (2.0 * output 0) + output 1 - const 3.0 in
  check_float "operators" 1.0 (eval e [| 1.0; 2.0 |])

let test_linexpr_normalize_merges () =
  let e = Linexpr.(add (output 0) (output 0)) in
  match Linexpr.normalized_terms e with
  | [ (c, 0) ] -> check_float "merged" 2.0 c
  | _ -> Alcotest.fail "expected single merged term"

let test_linexpr_normalize_drops_zero () =
  let e = Linexpr.(sub (output 1) (output 1)) in
  Alcotest.(check int) "zero dropped" 0 (List.length (Linexpr.normalized_terms e))

let test_linexpr_max_index () =
  Alcotest.(check int) "const" (-1) (Linexpr.max_output_index (Linexpr.const 5.0));
  Alcotest.(check int) "output 3" 3
    (Linexpr.max_output_index Linexpr.(add (output 3) (output 1)))

let test_risk_holds () =
  let psi = Risk.make ~name:"t" [ Risk.output_ge 0 1.0; Risk.output_le 1 0.0 ] in
  Alcotest.(check bool) "both hold" true (Risk.holds psi [| 1.5; -1.0 |]);
  Alcotest.(check bool) "first fails" false (Risk.holds psi [| 0.5; -1.0 |]);
  Alcotest.(check bool) "second fails" false (Risk.holds psi [| 1.5; 1.0 |])

let test_risk_band () =
  let psi = Risk.make ~name:"band" (Risk.output_in_band 0 ~lo:(-0.5) ~hi:0.5) in
  Alcotest.(check bool) "inside" true (Risk.holds psi [| 0.0 |]);
  Alcotest.(check bool) "boundary" true (Risk.holds psi [| 0.5 |]);
  Alcotest.(check bool) "outside" false (Risk.holds psi [| 0.6 |])

let test_risk_tolerance () =
  let psi = Risk.make ~name:"t" [ Risk.output_ge 0 1.0 ] in
  Alcotest.(check bool) "just below without tol" false (Risk.holds psi [| 0.999 |]);
  Alcotest.(check bool) "just below with tol" true
    (Risk.holds ~tol:0.01 psi [| 0.999 |])

let test_risk_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Risk.make: empty conjunction")
    (fun () -> ignore (Risk.make ~name:"e" []))

let test_risk_max_index () =
  let psi = Risk.make ~name:"t" [ Risk.output_le 4 0.0 ] in
  Alcotest.(check int) "index" 4 (Risk.max_output_index psi)

let test_property_basics () =
  let p =
    Property.make ~name:"pos" ~description:"positive" ~oracle:(fun x -> x > 0) ()
  in
  Alcotest.(check bool) "holds" true (Property.holds p 1);
  check_float "label 1" 1.0 (Property.label p 1);
  check_float "label 0" 0.0 (Property.label p (-1));
  Alcotest.(check bool) "no ambiguity by default" false (Property.is_ambiguous p 0)

let test_property_negate () =
  let p =
    Property.make ~name:"pos" ~description:"positive" ~oracle:(fun x -> x > 0) ()
  in
  let n = Property.negate p in
  Alcotest.(check bool) "negated" true (Property.holds n (-1));
  Alcotest.(check string) "name" "not-pos" n.Property.name

let test_property_conj () =
  let pos = Property.make ~name:"pos" ~description:"p" ~oracle:(fun x -> x > 0) () in
  let small = Property.make ~name:"small" ~description:"s" ~oracle:(fun x -> x < 10) () in
  let both = Property.conj ~name:"both" pos small in
  Alcotest.(check bool) "5" true (Property.holds both 5);
  Alcotest.(check bool) "15" false (Property.holds both 15);
  Alcotest.(check bool) "-1" false (Property.holds both (-1))

let test_property_ambiguous_propagates () =
  let p =
    Property.make ~name:"p" ~description:"p" ~oracle:(fun x -> x > 0)
      ~ambiguous:(fun x -> x = 0) ()
  in
  let q = Property.make ~name:"q" ~description:"q" ~oracle:(fun x -> x < 5) () in
  Alcotest.(check bool) "negate keeps ambiguity" true
    (Property.is_ambiguous (Property.negate p) 0);
  Alcotest.(check bool) "conj merges ambiguity" true
    (Property.is_ambiguous (Property.conj ~name:"c" p q) 0)

let expect_parse s =
  match Risk.of_string s with
  | Ok psi -> psi
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_simple () =
  let psi = expect_parse "y0 >= 2.5" in
  Alcotest.(check bool) "holds" true (Risk.holds psi [| 3.0 |]);
  Alcotest.(check bool) "fails" false (Risk.holds psi [| 2.0 |])

let test_parse_conjunction () =
  let psi = expect_parse "y0 >= 1 && y1 <= 0.5" in
  Alcotest.(check bool) "both" true (Risk.holds psi [| 1.5; 0.0 |]);
  Alcotest.(check bool) "second fails" false (Risk.holds psi [| 1.5; 1.0 |])

let test_parse_coefficients () =
  let psi = expect_parse "2*y0 - y1 <= 0.3" in
  Alcotest.(check bool) "holds" true (Risk.holds psi [| 0.0; 0.0 |]);
  Alcotest.(check bool) "fails" false (Risk.holds psi [| 1.0; 0.0 |])

let test_parse_leading_minus_and_constants () =
  let psi = expect_parse "-y0 + 1 >= 0.5" in
  (* -y0 >= -0.5 i.e. y0 <= 0.5 *)
  Alcotest.(check bool) "holds" true (Risk.holds psi [| 0.4 |]);
  Alcotest.(check bool) "fails" false (Risk.holds psi [| 0.6 |])

let test_parse_scientific () =
  let psi = expect_parse "y0 >= 1.5e-1" in
  Alcotest.(check bool) "holds" true (Risk.holds psi [| 0.2 |]);
  Alcotest.(check bool) "fails" false (Risk.holds psi [| 0.1 |])

let test_parse_errors () =
  let bad s =
    match Risk.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse failure for %S" s
  in
  bad "";
  bad "y0 > 2";           (* strict comparisons unsupported *)
  bad "y0 >= y1";          (* rhs must be constant *)
  bad "y >= 1";            (* missing index *)
  bad "y0 >= 1 &&";        (* dangling conjunction *)
  bad "frobnicate"

let test_parse_roundtrip () =
  let psi = expect_parse "2*y0 - 1.5*y1 <= 0.25 && y1 >= -3" in
  let psi' = expect_parse (Risk.to_string psi) in
  let rng = Dpv_tensor.Rng.create 9 in
  for _ = 1 to 50 do
    let p = [| Dpv_tensor.Rng.gaussian rng; Dpv_tensor.Rng.gaussian rng |] in
    Alcotest.(check bool) "same semantics" (Risk.holds psi p) (Risk.holds psi' p)
  done

let qcheck_risk_conjunction_monotone =
  (* Adding an inequality can only shrink the satisfying set. *)
  QCheck.Test.make ~count:200 ~name:"conjunction is monotone"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (y, bound) ->
      let base = Risk.make ~name:"b" [ Risk.output_ge 0 (-100.0) ] in
      let stronger =
        Risk.make ~name:"s" [ Risk.output_ge 0 (-100.0); Risk.output_le 0 bound ]
      in
      (not (Risk.holds stronger [| y |])) || Risk.holds base [| y |])

let qcheck_linexpr_linear =
  QCheck.Test.make ~count:200 ~name:"eval is linear in the point"
    QCheck.(triple (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, x, y) ->
      let e = Linexpr.(add (scale 2.0 (output 0)) (const 1.0)) in
      let lhs = Linexpr.eval e [| (a *. x) +. y |] in
      let rhs = (a *. (Linexpr.eval e [| x |] -. 1.0)) +. Linexpr.eval e [| y |] in
      Float.abs (lhs -. rhs) < 1e-6)

let tests =
  [
    Alcotest.test_case "linexpr eval" `Quick test_linexpr_eval;
    Alcotest.test_case "linexpr operators" `Quick test_linexpr_operators;
    Alcotest.test_case "linexpr merge" `Quick test_linexpr_normalize_merges;
    Alcotest.test_case "linexpr drop zero" `Quick test_linexpr_normalize_drops_zero;
    Alcotest.test_case "linexpr max index" `Quick test_linexpr_max_index;
    Alcotest.test_case "risk holds" `Quick test_risk_holds;
    Alcotest.test_case "risk band" `Quick test_risk_band;
    Alcotest.test_case "risk tolerance" `Quick test_risk_tolerance;
    Alcotest.test_case "risk empty rejected" `Quick test_risk_empty_rejected;
    Alcotest.test_case "risk max index" `Quick test_risk_max_index;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse conjunction" `Quick test_parse_conjunction;
    Alcotest.test_case "parse coefficients" `Quick test_parse_coefficients;
    Alcotest.test_case "parse leading minus" `Quick test_parse_leading_minus_and_constants;
    Alcotest.test_case "parse scientific" `Quick test_parse_scientific;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "property basics" `Quick test_property_basics;
    Alcotest.test_case "property negate" `Quick test_property_negate;
    Alcotest.test_case "property conj" `Quick test_property_conj;
    Alcotest.test_case "property ambiguity" `Quick test_property_ambiguous_propagates;
    QCheck_alcotest.to_alcotest qcheck_risk_conjunction_monotone;
    QCheck_alcotest.to_alcotest qcheck_linexpr_linear;
  ]
