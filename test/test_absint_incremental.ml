(* Incremental (resumable) DeepPoly propagation.

   The branch-and-bound guide's whole correctness argument is that
   [Deeppoly.Resumable] is bit-identical to the immutable transfers: a
   cached layer state IS what a from-scratch run would recompute, so
   reusing it changes nothing — verdicts, node counts, prunes and
   phase-fixes included.  These tests compare the two paths
   bit-for-bit (Int64 payloads, not tolerances) on randomized networks
   and randomized fixing sequences: extensions (a child fixes one more
   phase), retractions (backtracking), full redraws (a work-steal
   landing in an unrelated subtree), contradictory fixings (empty
   regions), degenerate float inputs, and tiny cache budgets that
   force the eviction path. *)

module Interval = Dpv_absint.Interval
module Deeppoly = Dpv_absint.Deeppoly
module Box_domain = Dpv_absint.Box_domain
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Mat = Dpv_tensor.Mat
module Rng = Dpv_tensor.Rng

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_box_bits label (a : Box_domain.t) (b : Box_domain.t) =
  Alcotest.(check int) (label ^ ": dimension") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (iv : Interval.t) ->
      let jv : Interval.t = b.(i) in
      if
        not
          (same_float iv.Interval.lo jv.Interval.lo
          && same_float iv.Interval.hi jv.Interval.hi)
      then
        Alcotest.failf "%s: neuron %d differs: [%h, %h] vs [%h, %h]" label i
          iv.Interval.lo iv.Interval.hi jv.Interval.lo jv.Interval.hi)
    a

(* Random network mixing every layer kind the domain supports.  Dense
   layers always precede activations so ReLU layers sit at varying
   depths with varying widths. *)
let random_mixed_net rng ~input_dim ~blocks =
  let layers = ref [] in
  let prev = ref input_dim in
  for _ = 1 to blocks do
    let d = 1 + Rng.int rng 3 in
    let rows =
      Array.init d (fun _ ->
          Array.init !prev (fun _ -> Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
    in
    let bias = Array.init d (fun _ -> Rng.uniform rng ~lo:(-0.5) ~hi:0.5) in
    layers := Layer.dense ~weights:(Mat.of_rows rows) ~bias :: !layers;
    prev := d;
    (match Rng.int rng 5 with
    | 0 | 1 -> layers := Layer.Relu :: !layers
    | 2 ->
        layers :=
          Layer.Batch_norm
            {
              gamma = Array.init d (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0);
              beta = Array.init d (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0);
              mean = Array.init d (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0);
              var = Array.init d (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:2.0);
              eps = 1e-5;
            }
          :: !layers
    | 3 -> layers := (if Rng.int rng 2 = 0 then Layer.Sigmoid else Layer.Tanh) :: !layers
    | _ -> ());
    ()
  done;
  (* Guarantee at least one ReLU so fixing sequences are non-trivial. *)
  layers := Layer.Relu :: !layers;
  Network.create ~input_dim (List.rev !layers)

let relu_layers net =
  List.mapi (fun idx l -> (idx + 1, l)) (Network.layers net)
  |> List.filter_map (fun (l, layer) ->
         match layer with Layer.Relu -> Some l | _ -> None)

(* Immutable reference: fold the original transfers under the same
   phase fixings, recording per-layer boxes until an empty region. *)
let reference_propagate net box phase_of_layer =
  let n = Network.num_layers net in
  let boxes = Array.make (n + 1) None in
  let t = ref (Deeppoly.of_box box) in
  boxes.(0) <- Some (Deeppoly.to_box !t);
  let empty = ref false in
  List.iteri
    (fun idx layer ->
      if not !empty then begin
        (match layer with
        | Layer.Relu -> (
            match Deeppoly.transfer_relu_fixed (phase_of_layer (idx + 1)) !t with
            | Some t' -> t := t'
            | None -> empty := true)
        | layer -> t := Deeppoly.transfer_layer layer !t);
        if not !empty then boxes.(idx + 1) <- Some (Deeppoly.to_box !t)
      end)
    (Network.layers net);
  (boxes, !empty)

let random_box rng dim =
  Array.init dim (fun _ ->
      let lo = Rng.uniform rng ~lo:(-1.5) ~hi:0.5 in
      Interval.make ~lo ~hi:(lo +. Rng.uniform rng ~lo:0.05 ~hi:2.0))

let random_phase rng =
  match Rng.int rng 3 with
  | 0 -> Deeppoly.Active
  | 1 -> Deeppoly.Inactive
  | _ -> Deeppoly.Unknown

(* One randomized episode: a network, a box, a cache budget, and a
   sequence of fixing mutations replayed against both engines. *)
let run_episode rng ~budget_floats ~steps =
  let input_dim = 1 + Rng.int rng 3 in
  let net = random_mixed_net rng ~input_dim ~blocks:(1 + Rng.int rng 4) in
  let box = random_box rng input_dim in
  let plan = Deeppoly.Resumable.plan net in
  let st = Deeppoly.Resumable.create ?budget_floats plan box in
  let n = Deeppoly.Resumable.num_layers plan in
  Alcotest.(check int) "plan layer count" (Network.num_layers net) n;
  let relus = relu_layers net in
  let phases = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.replace phases l
        (Array.make (Deeppoly.Resumable.layer_dim plan l) Deeppoly.Unknown))
    relus;
  let prev = Hashtbl.create 8 in
  let phase_of_layer l = Hashtbl.find phases l in
  for _ = 1 to steps do
    (* Mutate the fixings: usually a single deep flip (a child node),
       sometimes a full redraw (a steal landing elsewhere), sometimes a
       reset to all-Unknown (back at a root). *)
    (match Rng.int rng 10 with
    | 0 ->
        List.iter
          (fun l ->
            let a = Hashtbl.find phases l in
            Hashtbl.replace phases l (Array.map (fun _ -> random_phase rng) a))
          relus
    | 1 ->
        List.iter
          (fun l ->
            let a = Hashtbl.find phases l in
            Hashtbl.replace phases l (Array.map (fun _ -> Deeppoly.Unknown) a))
          relus
    | _ ->
        if relus <> [] then begin
          let l = List.nth relus (Rng.int rng (List.length relus)) in
          let a = Array.copy (Hashtbl.find phases l) in
          a.(Rng.int rng (Array.length a)) <- random_phase rng;
          Hashtbl.replace phases l a
        end);
    (* The guide's invalidation protocol: roll back to the earliest
       ReLU layer whose fixings changed since the last propagation. *)
    List.iter
      (fun l ->
        let cur = Hashtbl.find phases l in
        let changed =
          match Hashtbl.find_opt prev l with
          | None -> true
          | Some old -> old <> cur
        in
        if changed then Deeppoly.Resumable.invalidate_from st l)
      (List.rev relus);
    let resumed_from = Deeppoly.Resumable.valid st in
    let transferred = Deeppoly.Resumable.propagate st ~phases:phase_of_layer in
    if not (Deeppoly.Resumable.last_empty st) then
      Alcotest.(check int) "propagate covers the invalid tail"
        (n - resumed_from) transferred;
    List.iter
      (fun l -> Hashtbl.replace prev l (Array.copy (Hashtbl.find phases l)))
      relus;
    let ref_boxes, ref_empty = reference_propagate net box phase_of_layer in
    Alcotest.(check bool) "empty-region agreement" ref_empty
      (Deeppoly.Resumable.last_empty st);
    if not ref_empty then begin
      (* Output box plus every still-materialized layer state must be
         bit-identical to the from-scratch reference. *)
      check_box_bits "output box"
        (Option.get ref_boxes.(n))
        (Deeppoly.Resumable.output_box st);
      for l = 0 to Deeppoly.Resumable.valid st do
        check_box_bits
          (Printf.sprintf "cached layer %d" l)
          (Option.get ref_boxes.(l))
          (Deeppoly.Resumable.box_of_layer st l)
      done
    end
  done

let test_resumable_matches_scratch () =
  let rng = Rng.create 20260881 in
  for _ = 1 to 40 do
    run_episode rng ~budget_floats:None ~steps:12
  done

let test_resumable_matches_scratch_evicted () =
  (* Tiny budgets force most (sometimes all) layers through the
     ping-pong eviction path; results must not change by a bit. *)
  let rng = Rng.create 20260882 in
  for _ = 1 to 25 do
    let budget = Rng.int rng 200 in
    run_episode rng ~budget_floats:(Some budget) ~steps:10
  done

let test_resumable_degenerate_floats () =
  (* Non-finite batch-norm parameters and overflowing crossing
     intervals take the guarded fallbacks; the mirrors must reproduce
     them exactly (including the nan-widening). *)
  List.iter
    (fun gamma ->
      let net =
        Network.create ~input_dim:1
          [
            Layer.Batch_norm
              {
                gamma = [| gamma |];
                beta = [| 0.0 |];
                mean = [| 0.0 |];
                var = [| 1.0 |];
                eps = 0.0;
              };
            Layer.Relu;
          ]
      in
      let box = [| Interval.make ~lo:(-1e308) ~hi:1e308 |] in
      let plan = Deeppoly.Resumable.plan net in
      let st = Deeppoly.Resumable.create plan box in
      let unknowns l = Array.make (Deeppoly.Resumable.layer_dim plan l) Deeppoly.Unknown in
      ignore (Deeppoly.Resumable.propagate st ~phases:unknowns : int);
      let ref_boxes, ref_empty =
        reference_propagate net box (fun l -> unknowns l)
      in
      Alcotest.(check bool) "not empty" false ref_empty;
      check_box_bits
        (Printf.sprintf "gamma=%h output" gamma)
        (Option.get ref_boxes.(2))
        (Deeppoly.Resumable.output_box st))
    [ Float.nan; Float.infinity; Float.neg_infinity; 1.0 ]

let test_resumable_empty_then_recover () =
  (* A contradictory fixing stops propagation; the next consistent
     fixing must propagate cleanly from the surviving prefix. *)
  let net =
    Network.create ~input_dim:1
      [
        Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |] |]) ~bias:[| 2.0 |];
        Layer.Relu;
      ]
  in
  let box = [| Interval.make ~lo:0.0 ~hi:1.0 |] in
  let plan = Deeppoly.Resumable.plan net in
  let st = Deeppoly.Resumable.create plan box in
  let phases = [| Deeppoly.Inactive |] in
  ignore (Deeppoly.Resumable.propagate st ~phases:(fun _ -> phases) : int);
  Alcotest.(check bool) "contradiction detected" true
    (Deeppoly.Resumable.last_empty st);
  phases.(0) <- Deeppoly.Active;
  Deeppoly.Resumable.invalidate_from st 2;
  ignore (Deeppoly.Resumable.propagate st ~phases:(fun _ -> phases) : int);
  Alcotest.(check bool) "recovered" false (Deeppoly.Resumable.last_empty st);
  let out = Deeppoly.Resumable.output_box st in
  Alcotest.(check bool) "bounds are the shifted box" true
    (same_float out.(0).Interval.lo 2.0 && same_float out.(0).Interval.hi 3.0)

let tests =
  [
    Alcotest.test_case "resumable ≡ scratch (random episodes)" `Quick
      test_resumable_matches_scratch;
    Alcotest.test_case "resumable ≡ scratch under eviction budgets" `Quick
      test_resumable_matches_scratch_evicted;
    Alcotest.test_case "resumable mirrors degenerate-float fallbacks" `Quick
      test_resumable_degenerate_floats;
    Alcotest.test_case "empty region then recovery" `Quick
      test_resumable_empty_then_recover;
  ]
