(* Tests for the driving scenario simulator: road geometry, scene
   construction, camera rendering, oracles and dataset generation. *)

module Road = Dpv_scenario.Road
module Scene = Dpv_scenario.Scene
module Camera = Dpv_scenario.Camera
module Affordance = Dpv_scenario.Affordance
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Property = Dpv_spec.Property
module Dataset = Dpv_train.Dataset
module Rng = Dpv_tensor.Rng
module Vec = Dpv_tensor.Vec

let check_float = Alcotest.(check (float 1e-9))

let straight_road = Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:3 ()
let right_road = Road.make ~curvature:(-0.02) ~curvature_rate:0.0 ~num_lanes:3 ()
let left_road = Road.make ~curvature:0.02 ~curvature_rate:0.0 ~num_lanes:3 ()

(* -- road geometry -- *)

let test_straight_road_geometry () =
  check_float "no offset" 0.0 (Road.centerline_offset straight_road 50.0);
  check_float "no heading" 0.0 (Road.heading straight_road 50.0)

let test_curved_road_offset () =
  (* x(d) = 0.5 k d^2 *)
  check_float "quadratic" (0.5 *. -0.02 *. 100.0)
    (Road.centerline_offset right_road 10.0);
  Alcotest.(check bool) "right bend goes right (negative)" true
    (Road.centerline_offset right_road 25.0 < 0.0);
  Alcotest.(check bool) "left bend goes left" true
    (Road.centerline_offset left_road 25.0 > 0.0)

let test_curvature_rate_contribution () =
  let road = Road.make ~curvature:0.0 ~curvature_rate:0.001 ~num_lanes:2 () in
  check_float "cubic term" (0.001 *. 1000.0 /. 6.0) (Road.centerline_offset road 10.0);
  check_float "curvature at d" 0.01 (Road.curvature_at road 10.0)

let test_road_validation () =
  Alcotest.check_raises "lanes" (Invalid_argument "Road.make: num_lanes < 1")
    (fun () ->
      ignore (Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:0 ()))

let test_half_width () =
  check_float "3 lanes x 3.5m" 5.25 (Road.half_width straight_road)

(* -- scenes -- *)

let test_scene_lane_center () =
  let scene =
    Scene.make ~lateral_offset:0.5 ~heading_error:0.01 ~road:straight_road
      ~ego_lane:1 ()
  in
  (* straight road: lane center at d is -offset - d*heading *)
  check_float "at 10m" (-0.5 -. 0.1) (Scene.lane_center_at scene 10.0)

let test_scene_validation () =
  Alcotest.check_raises "ego lane" (Invalid_argument "Scene.make: ego_lane out of range")
    (fun () -> ignore (Scene.make ~road:straight_road ~ego_lane:5 ()));
  Alcotest.check_raises "traffic behind"
    (Invalid_argument "Scene.make: traffic behind ego") (fun () ->
      ignore
        (Scene.make ~road:straight_road ~ego_lane:0
           ~traffic:[ { Scene.lane = 0; distance = -5.0 } ]
           ()))

let test_lane_offset_of () =
  let scene = Scene.make ~road:straight_road ~ego_lane:1 () in
  Alcotest.(check int) "same lane" 0
    (Scene.lane_offset_of scene { Scene.lane = 1; distance = 10.0 });
  Alcotest.(check int) "left lane" 1
    (Scene.lane_offset_of scene { Scene.lane = 2; distance = 10.0 })

(* -- affordances -- *)

let test_affordance_straight_centered () =
  let scene = Scene.make ~road:straight_road ~ego_lane:1 () in
  let gt = Affordance.ground_truth scene in
  check_float "waypoint centered" 0.0 gt.(Affordance.waypoint_index);
  check_float "orientation zero" 0.0 gt.(Affordance.orientation_index)

let test_affordance_right_bend () =
  let scene = Scene.make ~road:right_road ~ego_lane:1 () in
  Alcotest.(check bool) "waypoint to the right" true (Affordance.waypoint scene < -2.0);
  Alcotest.(check bool) "orientation to the right" true
    (Affordance.orientation scene < -0.1)

let test_affordance_offset_compensation () =
  (* Ego displaced left of the lane center: the waypoint steers it back
     right (negative). *)
  let scene =
    Scene.make ~lateral_offset:1.0 ~road:straight_road ~ego_lane:1 ()
  in
  check_float "steer back" (-1.0) (Affordance.waypoint scene)

(* -- camera -- *)

let cfg = Camera.default_config

let test_camera_dimensions () =
  Alcotest.(check int) "input dim" 192 (Camera.input_dim cfg);
  let img = Camera.render cfg (Scene.make ~road:straight_road ~ego_lane:1 ()) in
  Alcotest.(check int) "vector length" 192 (Vec.dim img)

let test_camera_row_distances_monotone () =
  check_float "bottom row is near" cfg.Camera.d_near
    (Camera.row_distance cfg (cfg.Camera.height - 1));
  check_float "top row is far" cfg.Camera.d_far (Camera.row_distance cfg 0);
  for r = 0 to cfg.Camera.height - 2 do
    Alcotest.(check bool) "monotone" true
      (Camera.row_distance cfg r > Camera.row_distance cfg (r + 1))
  done

let test_camera_intensities_in_range () =
  let rng = Rng.create 5 in
  let scene =
    Scene.make ~weather:Scene.Rain ~road:right_road ~ego_lane:0
      ~traffic:[ { Scene.lane = 1; distance = 20.0 } ]
      ()
  in
  let img = Camera.render ~rng cfg scene in
  Alcotest.(check bool) "all in [0,1]" true
    (Array.for_all (fun v -> v >= 0.0 && v <= 1.0) img)

let test_camera_deterministic_without_rng () =
  let scene = Scene.make ~road:right_road ~ego_lane:1 () in
  Alcotest.(check bool) "identical" true
    (Camera.render cfg scene = Camera.render cfg scene)

let test_camera_curvature_visible () =
  (* In the far rows, a right bend shifts road pixels toward lower column
     indices relative to a straight road.  Compare the centroid of
     road-surface (dark) pixels in the top third of the image. *)
  let dark_centroid img rows =
    let acc = ref 0.0 and n = ref 0 in
    List.iter
      (fun r ->
        for c = 0 to cfg.Camera.width - 1 do
          if img.((r * cfg.Camera.width) + c) < 0.3 then begin
            acc := !acc +. float_of_int c;
            incr n
          end
        done)
      rows;
    if !n = 0 then nan else !acc /. float_of_int !n
  in
  let far_rows = [ 0; 1; 2; 3 ] in
  let straight_img = Camera.render cfg (Scene.make ~road:straight_road ~ego_lane:1 ()) in
  let right_img = Camera.render cfg (Scene.make ~road:right_road ~ego_lane:1 ()) in
  let left_img = Camera.render cfg (Scene.make ~road:left_road ~ego_lane:1 ()) in
  let s = dark_centroid straight_img far_rows in
  let r = dark_centroid right_img far_rows in
  let l = dark_centroid left_img far_rows in
  Alcotest.(check bool) "right bend shifts left-of-straight in image" true (r < s);
  Alcotest.(check bool) "left bend shifts right-of-straight in image" true (l > s)

let test_camera_vehicle_visible () =
  let without = Camera.render cfg (Scene.make ~road:straight_road ~ego_lane:1 ()) in
  let with_vehicle =
    Camera.render cfg
      (Scene.make ~road:straight_road ~ego_lane:1
         ~traffic:[ { Scene.lane = 1; distance = 20.0 } ]
         ())
  in
  let diff = ref 0 in
  Array.iteri
    (fun i v -> if Float.abs (v -. without.(i)) > 0.1 then incr diff)
    with_vehicle;
  Alcotest.(check bool) "vehicle changes pixels" true (!diff > 0)

let test_camera_fog_reduces_far_contrast () =
  let contrast img rows =
    let values = ref [] in
    List.iter
      (fun r ->
        for c = 0 to cfg.Camera.width - 1 do
          values := img.((r * cfg.Camera.width) + c) :: !values
        done)
      rows;
    let arr = Array.of_list !values in
    let lo, hi = Dpv_tensor.Stats.min_max arr in
    hi -. lo
  in
  let clear = Camera.render cfg (Scene.make ~road:straight_road ~ego_lane:1 ()) in
  let fog =
    Camera.render cfg
      (Scene.make ~weather:Scene.Fog ~road:straight_road ~ego_lane:1 ())
  in
  let far = [ 0; 1; 2 ] in
  Alcotest.(check bool) "fog washes out far rows" true
    (contrast fog far < contrast clear far)

let test_ascii_rendering () =
  let img = Camera.render cfg (Scene.make ~road:straight_road ~ego_lane:1 ()) in
  let ascii = Camera.to_ascii cfg img in
  Alcotest.(check int) "lines" cfg.Camera.height
    (List.length (String.split_on_char '\n' (String.trim ascii)))

(* -- oracles -- *)

let test_oracle_bend_properties () =
  let right = Scene.make ~road:right_road ~ego_lane:1 () in
  let left = Scene.make ~road:left_road ~ego_lane:1 () in
  let straight = Scene.make ~road:straight_road ~ego_lane:1 () in
  Alcotest.(check bool) "right is right" true (Property.holds Oracle.bends_right right);
  Alcotest.(check bool) "right is not left" false (Property.holds Oracle.bends_left right);
  Alcotest.(check bool) "left is left" true (Property.holds Oracle.bends_left left);
  Alcotest.(check bool) "straight is straight" true (Property.holds Oracle.straight straight);
  Alcotest.(check bool) "straight is not right" false
    (Property.holds Oracle.bends_right straight)

let test_oracle_traffic () =
  let mk traffic = Scene.make ~road:straight_road ~ego_lane:1 ~traffic () in
  Alcotest.(check bool) "adjacent near" true
    (Property.holds Oracle.traffic_adjacent
       (mk [ { Scene.lane = 0; distance = 20.0 } ]));
  Alcotest.(check bool) "same lane doesn't count" false
    (Property.holds Oracle.traffic_adjacent
       (mk [ { Scene.lane = 1; distance = 20.0 } ]));
  Alcotest.(check bool) "too far doesn't count" false
    (Property.holds Oracle.traffic_adjacent
       (mk [ { Scene.lane = 0; distance = 50.0 } ]))

let test_oracle_ambiguity_band () =
  let at_threshold =
    Scene.make
      ~road:(Road.make ~curvature:(-.Oracle.bend_threshold) ~curvature_rate:0.0 ~num_lanes:2 ())
      ~ego_lane:0 ()
  in
  Alcotest.(check bool) "threshold scene is ambiguous" true
    (Property.is_ambiguous Oracle.bends_right at_threshold);
  let clear_bend =
    Scene.make
      ~road:(Road.make ~curvature:(-0.02) ~curvature_rate:0.0 ~num_lanes:2 ())
      ~ego_lane:0 ()
  in
  Alcotest.(check bool) "clear bend is not" false
    (Property.is_ambiguous Oracle.bends_right clear_bend)

let test_oracle_find () =
  Alcotest.(check bool) "find known" true (Oracle.find "bends-right" <> None);
  Alcotest.(check bool) "find unknown" true (Oracle.find "nonsense" = None)

(* -- generator -- *)

let gen_cfg = Generator.default_config

let test_generator_scene_validity () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let s = Generator.sample_scene gen_cfg rng in
    let lo_k, hi_k = gen_cfg.Generator.curvature_range in
    Alcotest.(check bool) "curvature in range" true
      (s.Scene.road.Road.curvature >= lo_k && s.Scene.road.Road.curvature <= hi_k);
    Alcotest.(check bool) "ego lane valid" true
      (s.Scene.ego_lane >= 0 && s.Scene.ego_lane < s.Scene.road.Road.num_lanes)
  done

let test_generator_determinism () =
  let a = Generator.sample_scenes gen_cfg (Rng.create 11) ~n:5 in
  let b = Generator.sample_scenes gen_cfg (Rng.create 11) ~n:5 in
  Alcotest.(check bool) "same seeds same scenes" true (a = b)

let test_affordance_dataset_shape () =
  let d = Generator.affordance_dataset gen_cfg (Rng.create 13) ~n:50 in
  Alcotest.(check int) "size" 50 (Dataset.size d);
  Alcotest.(check int) "input dim" 192 (Dataset.input_dim d);
  Alcotest.(check int) "target dim" 2 (Dataset.target_dim d)

let test_property_dataset_balanced () =
  let d, scenes =
    Generator.property_dataset gen_cfg (Rng.create 17) ~n:100
      ~property:Oracle.bends_right
  in
  let balance = Dataset.class_balance d in
  Alcotest.(check bool) "roughly balanced" true (balance > 0.4 && balance < 0.6);
  Alcotest.(check int) "scenes align" (Dataset.size d) (Array.length scenes);
  (* labels match oracle on the aligned scenes *)
  Array.iteri
    (fun i scene ->
      Alcotest.(check (float 0.0)) "label matches oracle"
        (Property.label Oracle.bends_right scene)
        d.Dataset.targets.(i).(0))
    scenes

let test_property_dataset_skips_ambiguous () =
  let _, scenes =
    Generator.property_dataset gen_cfg (Rng.create 19) ~n:60
      ~property:Oracle.bends_right
  in
  Array.iter
    (fun scene ->
      Alcotest.(check bool) "no ambiguous scenes" false
        (Property.is_ambiguous Oracle.bends_right scene))
    scenes

let qcheck_render_bounded =
  QCheck.Test.make ~count:50 ~name:"rendered pixels always in [0,1]"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 211) in
      let scene = Generator.sample_scene gen_cfg rng in
      let img = Generator.render_scene gen_cfg rng scene in
      Array.for_all (fun v -> v >= 0.0 && v <= 1.0) img)

let tests =
  [
    Alcotest.test_case "straight road geometry" `Quick test_straight_road_geometry;
    Alcotest.test_case "curved road offset" `Quick test_curved_road_offset;
    Alcotest.test_case "curvature rate" `Quick test_curvature_rate_contribution;
    Alcotest.test_case "road validation" `Quick test_road_validation;
    Alcotest.test_case "half width" `Quick test_half_width;
    Alcotest.test_case "scene lane center" `Quick test_scene_lane_center;
    Alcotest.test_case "scene validation" `Quick test_scene_validation;
    Alcotest.test_case "lane offset" `Quick test_lane_offset_of;
    Alcotest.test_case "affordance straight" `Quick test_affordance_straight_centered;
    Alcotest.test_case "affordance right bend" `Quick test_affordance_right_bend;
    Alcotest.test_case "affordance offset compensation" `Quick test_affordance_offset_compensation;
    Alcotest.test_case "camera dimensions" `Quick test_camera_dimensions;
    Alcotest.test_case "camera row distances" `Quick test_camera_row_distances_monotone;
    Alcotest.test_case "camera intensity range" `Quick test_camera_intensities_in_range;
    Alcotest.test_case "camera deterministic" `Quick test_camera_deterministic_without_rng;
    Alcotest.test_case "camera curvature visible" `Quick test_camera_curvature_visible;
    Alcotest.test_case "camera vehicle visible" `Quick test_camera_vehicle_visible;
    Alcotest.test_case "camera fog contrast" `Quick test_camera_fog_reduces_far_contrast;
    Alcotest.test_case "ascii rendering" `Quick test_ascii_rendering;
    Alcotest.test_case "oracle bends" `Quick test_oracle_bend_properties;
    Alcotest.test_case "oracle traffic" `Quick test_oracle_traffic;
    Alcotest.test_case "oracle ambiguity band" `Quick test_oracle_ambiguity_band;
    Alcotest.test_case "oracle find" `Quick test_oracle_find;
    Alcotest.test_case "generator scene validity" `Quick test_generator_scene_validity;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "affordance dataset shape" `Quick test_affordance_dataset_shape;
    Alcotest.test_case "property dataset balance" `Quick test_property_dataset_balanced;
    Alcotest.test_case "property dataset skips ambiguous" `Quick test_property_dataset_skips_ambiguous;
    QCheck_alcotest.to_alcotest qcheck_render_bounded;
  ]
