(* The serve daemon: framing, admission control, the joblog, JSON
   hardening, and in-process end-to-end runs over a Unix-domain socket
   — concurrent clients, backpressure, journal replay, the three serve
   fault sites, and a spawned-process kill-and-restart recovery e2e.

   The in-process tests share one lazily prepared tiny pipeline (the
   smoke-test setup: 8x6 camera, hidden [8;4]); each test gets its own
   temp state dir and socket. *)

module Json = Dpv_core.Json
module Campaign = Dpv_core.Campaign
module Journal = Dpv_core.Journal
module Specfile = Dpv_core.Specfile
module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Faults = Dpv_linprog.Faults
module Metrics = Dpv_obs.Metrics
module Frame = Dpv_serve.Frame
module Admission = Dpv_serve.Admission
module Joblog = Dpv_serve.Joblog
module Server = Dpv_serve.Server
module Sclient = Dpv_serve.Client

(* ---- helpers ---- *)

let temp_counter = ref 0

let temp_dir prefix =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !temp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ---- JSON hardening (satellite: depth and payload limits) ---- *)

let test_json_depth_limit () =
  (* 5000 nested arrays: in an unguarded recursive-descent parser this
     is a stack overflow.  The default cap turns it into an Error. *)
  let deep n = String.make n '[' ^ String.make n ']' in
  (match Json.of_string (deep 5000) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "5000-deep nesting must be refused");
  (match Json.of_string (deep 50) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "50-deep nesting should parse: %s" e);
  (match Json.of_string ~max_depth:4 (deep 5) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth 5 must exceed max_depth 4");
  match Json.of_string ~max_depth:4 (deep 4) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 4 fits max_depth 4: %s" e

let test_json_payload_limit () =
  (match Json.of_string ~max_bytes:10 "[1,2,3,4,5,6,7,8]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "17 bytes must exceed max_bytes 10");
  match Json.of_string ~max_bytes:1024 "[1,2,3]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "7 bytes fit in 1024: %s" e

(* ---- framing ---- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let payloads = [ "hello"; ""; "{\"op\": \"ping\"}"; String.make 4096 'x' ] in
  List.iter
    (fun p ->
      (match Frame.write a p with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "frame write failed");
      match Frame.read b with
      | Ok got -> Alcotest.(check string) "payload round-trips" p got
      | Error _ -> Alcotest.fail "frame read failed")
    payloads;
  Unix.close a;
  match Frame.read b with
  | Error Frame.Closed -> ()
  | _ -> Alcotest.fail "EOF at a frame boundary must be Closed"

let test_frame_torn () =
  with_socketpair @@ fun a b ->
  (* Header promises 10 bytes; the stream dies after 3. *)
  ignore (Unix.write_substring a "10\nabc" 0 6);
  Unix.close a;
  match Frame.read b with
  | Error (Frame.Torn _) -> ()
  | Error Frame.Closed -> Alcotest.fail "mid-frame EOF must be Torn, not Closed"
  | Ok _ -> Alcotest.fail "torn frame must not parse"

let test_frame_oversized_refused_on_header () =
  with_socketpair @@ fun a b ->
  (* A declared 100 MB frame with no payload behind it: the limit must
     trip on the declared length alone (the error says so), never on
     running out of stream — which would mean the reader had started
     consuming the payload. *)
  ignore (Unix.write_substring a "100000000\n" 0 10);
  match Frame.read ~max_bytes:(8 * 1024 * 1024) b with
  | Error (Frame.Torn msg) ->
      Alcotest.(check bool)
        ("refused on the declared length: " ^ msg)
        true
        (contains msg "declared frame")
  | _ -> Alcotest.fail "oversized frame must be Torn"

let test_frame_bad_header () =
  with_socketpair @@ fun a b ->
  ignore (Unix.write_substring a "12x\nwhatever" 0 12);
  match Frame.read b with
  | Error (Frame.Torn _) -> ()
  | _ -> Alcotest.fail "non-digit header byte must be Torn"

(* ---- admission queue ---- *)

let test_admission_priority_and_fifo () =
  let q = Admission.create ~capacity:8 in
  List.iter
    (fun (p, x) ->
      match Admission.submit q ~priority:p x with
      | Admission.Admitted _ -> ()
      | Admission.Rejected _ -> Alcotest.fail "queue should have room")
    [ (0, "a"); (0, "b"); (5, "hi"); (0, "c"); (5, "hi2") ];
  let order = List.init 5 (fun _ -> Option.get (Admission.take q)) in
  Alcotest.(check (list string)) "priority first, FIFO within a priority"
    [ "hi"; "hi2"; "a"; "b"; "c" ]
    order

let test_admission_capacity_backpressure () =
  let q = Admission.create ~capacity:2 in
  ignore (Admission.submit q ~priority:0 "a");
  ignore (Admission.submit q ~priority:0 "b");
  (match Admission.submit q ~priority:0 "c" with
  | Admission.Rejected { queue_depth } ->
      Alcotest.(check int) "rejection reports the depth" 2 queue_depth
  | Admission.Admitted _ -> Alcotest.fail "full queue must reject");
  ignore (Admission.take q);
  match Admission.submit q ~priority:0 "c" with
  | Admission.Admitted _ -> ()
  | Admission.Rejected _ -> Alcotest.fail "room freed by take must readmit"

let test_admission_before_failure_aborts () =
  let q = Admission.create ~capacity:4 in
  (match
     Admission.submit q ~priority:0 ~before:(fun () -> failwith "disk full") "a"
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "a raising [before] must propagate");
  Alcotest.(check int) "aborted submission leaves nothing queued" 0
    (Admission.depth q);
  match Admission.submit q ~priority:0 "b" with
  | Admission.Admitted 0 -> ()
  | _ -> Alcotest.fail "the queue survives an aborted submission"

let test_admission_close_drains () =
  let q = Admission.create ~capacity:4 in
  ignore (Admission.submit q ~priority:0 "a");
  ignore (Admission.submit q ~priority:3 "b");
  Alcotest.(check (list string)) "close returns queued items" [ "b"; "a" ]
    (Admission.close q);
  (match Admission.submit q ~priority:0 "c" with
  | Admission.Rejected _ -> ()
  | Admission.Admitted _ -> Alcotest.fail "closed queue must reject");
  Alcotest.(check bool) "take on closed+empty is None" true
    (Admission.take q = None)

(* ---- joblog ---- *)

let sample_spec = Json.Obj [ ("queries", Json.Arr []) ]

let test_joblog_roundtrip_and_pending () =
  let dir = temp_dir "dpv-joblog" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "joblog.jsonl" in
  Joblog.append ~path
    (Joblog.Accepted
       {
         job = "aaa";
         name = "first";
         priority = 2;
         budget_s = Some 1.5;
         deadline_s = None;
         trace = "t-aaa";
         spec = sample_spec;
       });
  Joblog.append ~path
    (Joblog.Accepted
       {
         job = "bbb";
         name = "second";
         priority = 0;
         budget_s = None;
         deadline_s = Some 30.0;
         trace = "t-bbb";
         spec = sample_spec;
       });
  Joblog.append ~path (Joblog.Client_gone { job = "aaa" });
  Joblog.append ~path (Joblog.Finished { job = "aaa"; exit_code = 0 });
  let events = ok (Joblog.load ~path) in
  Alcotest.(check int) "all four events load" 4 (List.length events);
  (match List.nth events 0 with
  | Joblog.Accepted { job; name; priority; budget_s; deadline_s; trace; spec }
    ->
      Alcotest.(check string) "job id round-trips" "aaa" job;
      Alcotest.(check string) "name round-trips" "first" name;
      Alcotest.(check int) "priority round-trips" 2 priority;
      Alcotest.(check (option (float 1e-9))) "budget round-trips" (Some 1.5)
        budget_s;
      Alcotest.(check (option (float 1e-9))) "deadline round-trips" None
        deadline_s;
      Alcotest.(check string) "trace id round-trips" "t-aaa" trace;
      Alcotest.(check bool) "spec round-trips" true (spec = sample_spec)
  | _ -> Alcotest.fail "first event should be Accepted");
  match Joblog.pending events with
  | [ ("bbb", "second", 0, None, Some d, trace, _) ] ->
      Alcotest.(check (float 1e-9)) "pending keeps the deadline" 30.0 d;
      Alcotest.(check string) "pending carries the trace id" "t-bbb" trace
  | p ->
      Alcotest.failf "finished job must not be pending (got %d)" (List.length p)

let test_joblog_torn_tail_dropped () =
  let dir = temp_dir "dpv-joblog" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "joblog.jsonl" in
  Joblog.append ~path (Joblog.Finished { job = "aaa"; exit_code = 0 });
  (* Simulate a crash mid-append: a final line with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"event\": \"accepted\", \"job\": \"bb";
  close_out oc;
  let events = ok (Joblog.load ~path) in
  Alcotest.(check int) "torn tail is dropped" 1 (List.length events)

let test_joblog_mid_file_corruption_is_error () =
  let dir = temp_dir "dpv-joblog" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "joblog.jsonl" in
  write_file path
    "not json at all\n{\"event\": \"finished\", \"job\": \"a\", \"exit_code\": 0}\n";
  match Joblog.load ~path with
  | Error e ->
      Alcotest.(check bool) ("error names the line: " ^ e) true (contains e "1")
  | Ok _ -> Alcotest.fail "mid-file corruption must be a hard error"

let test_joblog_missing_file_empty () =
  Alcotest.(check int) "missing joblog is an empty history" 0
    (List.length (ok (Joblog.load ~path:"/nonexistent/dpv-joblog.jsonl")))

(* ---- campaign journal: meta trailer on resume (satellite) ---- *)

let test_resume_skips_meta_trailer () =
  let dir = temp_dir "dpv-meta" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "journal.jsonl" in
  let qs = Test_campaign.queries () in
  let report =
    Campaign.run ~runners:1 ~journal:path ~perception:Test_campaign.perception
      qs
  in
  (* Append a shard meta trailer after the entries, as a sharded
     campaign would. *)
  let entries = ok (Journal.load ~path) in
  let w = Journal.create ~path entries in
  Journal.append_meta w
    {
      Journal.shard = 0;
      shard_count = 1;
      runners = 1;
      total_wall_s = report.Campaign.total_wall_s;
      trace = "";
      metrics = Metrics.snapshot ();
    };
  Journal.close w;
  (* Plain load skips the trailer, so a resume over a sharded journal
     replays every settled query without re-solving. *)
  let resumed_entries = ok (Journal.load ~path) in
  Alcotest.(check int) "load skips the meta trailer" (List.length qs)
    (List.length resumed_entries);
  let resumed =
    Campaign.run ~runners:1 ~resume:resumed_entries
      ~perception:Test_campaign.perception qs
  in
  Alcotest.(check int) "every query replays from the journal"
    (List.length qs)
    (List.length
       (List.filter
          (fun (qr : Campaign.query_report) -> qr.Campaign.from_journal)
          resumed.Campaign.query_reports));
  List.iter2
    (fun (orig : Campaign.query_report) (rep : Campaign.query_report) ->
      match (orig.Campaign.outcome, rep.Campaign.outcome) with
      | Campaign.Done a, Campaign.Done b ->
          Alcotest.(check string)
            (orig.Campaign.query.Campaign.label ^ ": replayed verdict matches")
            (Campaign.verdict_word a.Verify.verdict)
            (Campaign.verdict_word b.Verify.verdict)
      | _ -> Alcotest.fail "clean runs should be Done on both sides")
    report.Campaign.query_reports resumed.Campaign.query_reports

(* ---- in-process server e2e ---- *)

let base_spec_text =
  {|{
  "seed": 3,
  "runners": 1,
  "workers": 1,
  "max_nodes": 4000,
  "timeout_s": 30.0,
  "setup": {
    "hidden": [8, 4],
    "cut": 6,
    "train_size": 100,
    "val_size": 30,
    "perception_epochs": 4,
    "characterizer_samples": 60,
    "bounds_samples": 60,
    "camera_width": 8,
    "camera_height": 6
  },
  "queries": []
}|}

(* One pipeline train shared by every in-process server test. *)
let pipeline =
  lazy
    (let spec = ok (Json.of_string base_spec_text) in
     let parsed = ok (Specfile.parse spec) in
     let prepared = Workflow.prepare parsed.Specfile.setup in
     (spec, parsed, prepared))

let query_obj ?(psi = "far-left:30") ?(strategy = "data-box") name =
  Json.Obj
    [
      ("name", Json.Str name);
      ("property", Json.Str "bends-right");
      ("psi", Json.Str psi);
      ("strategy", Json.Str strategy);
    ]

(* The submission envelope: a campaign spec under "spec", with the
   scheduling fields alongside the op.  Seed and setup are omitted,
   inheriting the server's. *)
let submission ?name ?priority ?budget_s ?deadline_s queries =
  let opt k = function None -> [] | Some v -> [ (k, v) ] in
  Json.encode
    (Json.Obj
       ([
          ("op", Json.Str "submit");
          ("spec", Json.Obj [ ("queries", Json.Arr queries) ]);
        ]
       @ opt "name" (Option.map (fun s -> Json.Str s) name)
       @ opt "priority"
           (Option.map (fun p -> Json.Num (float_of_int p)) priority)
       @ opt "budget_s" (Option.map (fun b -> Json.Num b) budget_s)
       @ opt "deadline_s" (Option.map (fun d -> Json.Num d) deadline_s)))

let with_server ?(tune = fun c -> c) ?before_execute f =
  let dir = temp_dir "dpv-serve" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spec, parsed, prepared = Lazy.force pipeline in
  let state_dir = Filename.concat dir "state" in
  let config = tune (Server.default_config ~state_dir) in
  let server =
    Server.create ~config ?before_execute
      ~perception:prepared.Workflow.perception
      ~builder:(Specfile.builder prepared) ~base:parsed ~base_spec:spec ()
  in
  let sock = Filename.concat dir "dpv.sock" in
  let listen_fd = Server.listen_unix ~path:sock in
  let th = Thread.create (fun () -> Server.serve server listen_fd) () in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Thread.join th)
    (fun () -> f server ~sock ~state_dir)

let submit_collect sock request =
  let fd = Sclient.connect_unix ~path:sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let frames = ref [] in
      let outcome =
        Sclient.submit_and_stream fd ~request ~on_frame:(fun p ->
            frames := p :: !frames)
      in
      (outcome, List.rev !frames))

(* Extract field [key] from every frame of type [ty], as raw Json. *)
let frames_of frames ~ty key =
  List.filter_map
    (fun p ->
      match Json.of_string p with
      | Ok v when Option.bind (Json.member "type" v) Json.to_string = Some ty
        ->
          Json.member key v
      | _ -> None)
    frames

let string_frames frames ~ty key =
  List.filter_map Json.to_string (frames_of frames ~ty key)

let finished_code = function
  | Sclient.Finished { exit_code } -> exit_code
  | Sclient.Busy _ -> Alcotest.fail "unexpected busy reply"
  | Sclient.Failed msg -> Alcotest.failf "stream failed: %s" msg

let test_serve_submit_streams_verdicts () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let qs = [ query_obj "fl"; query_obj ~psi:"far-right:30" "fr" ] in
  let outcome, frames = submit_collect sock (submission ~name:"two" qs) in
  let code = finished_code outcome in
  Alcotest.(check bool) "clean exit code" true (code = 0 || code = 2);
  (* Settle order is pool order, not input order: compare as sets of
     (label, verdict) pairs. *)
  let streamed =
    List.sort compare
      (List.combine
         (string_frames frames ~ty:"verdict" "label")
         (string_frames frames ~ty:"verdict" "verdict"))
  in
  (* Daemon and batch answer alike: the same queries through the same
     builder, run directly, give the same verdict words. *)
  let _, parsed, prepared = Lazy.force pipeline in
  let queries =
    ok
      (Specfile.queries
         (Specfile.builder prepared)
         ~default_cut:parsed.Specfile.setup.Workflow.cut qs)
  in
  let report =
    Campaign.run ~runners:1 ~perception:prepared.Workflow.perception queries
  in
  let batch =
    List.sort compare
      (List.map
         (fun (qr : Campaign.query_report) ->
           ( qr.Campaign.query.Campaign.label,
             match qr.Campaign.outcome with
             | Campaign.Done r -> Campaign.verdict_word r.Verify.verdict
             | _ -> "crashed" ))
         report.Campaign.query_reports)
  in
  Alcotest.(check (list (pair string string)))
    "daemon verdicts equal batch verdicts" batch streamed;
  Alcotest.(check int) "batch exit code agrees"
    (Campaign.report_exit_code report)
    code

let test_serve_concurrent_clients_independent_streams () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  (* Client A carries a zero budget (every query skipped, degraded
     exit 4); client B has none and verifies cleanly.  Budgets are
     per-job, and each stream must see only its own labels. *)
  let res_a = ref None and res_b = ref None in
  let spawn out request =
    Thread.create (fun () -> out := Some (submit_collect sock request)) ()
  in
  let ta =
    spawn res_a (submission ~name:"a" ~budget_s:0.0 [ query_obj "qa" ])
  in
  let tb =
    spawn res_b (submission ~name:"b" [ query_obj ~psi:"far-left:25" "qb" ])
  in
  Thread.join ta;
  Thread.join tb;
  let outcome_a, frames_a = Option.get !res_a in
  let outcome_b, frames_b = Option.get !res_b in
  Alcotest.(check int) "zero budget degrades to 4" 4 (finished_code outcome_a);
  Alcotest.(check int) "unconstrained client exits clean" 0
    (finished_code outcome_b);
  Alcotest.(check (list string)) "stream A sees only its own labels" [ "qa" ]
    (string_frames frames_a ~ty:"verdict" "label");
  Alcotest.(check (list string)) "stream B sees only its own labels" [ "qb" ]
    (string_frames frames_b ~ty:"verdict" "label");
  Alcotest.(check (list string)) "A's queries were skipped, not solved"
    [ "skipped" ]
    (string_frames frames_a ~ty:"verdict" "outcome");
  Alcotest.(check (list string)) "B's query solved" [ "done" ]
    (string_frames frames_b ~ty:"verdict" "outcome")

(* An executor gate: [before] parks the executor at job start until
   [release]; [wait_entered] lets the test synchronize on "a job is
   now running". *)
let gate () =
  let m = Mutex.create () and c = Condition.create () in
  let entered = ref false and released = ref false in
  let before _id =
    Mutex.protect m (fun () ->
        entered := true;
        Condition.broadcast c;
        while not !released do
          Condition.wait c m
        done)
  in
  let wait_entered () =
    Mutex.protect m (fun () ->
        while not !entered do
          Condition.wait c m
        done)
  in
  let release () =
    Mutex.protect m (fun () ->
        released := true;
        Condition.broadcast c)
  in
  (before, wait_entered, release)

let test_serve_backpressure_and_duplicates () =
  let before, wait_entered, release = gate () in
  with_server
    ~tune:(fun c -> { c with Server.capacity = 1; retry_after_s = 0.25 })
    ~before_execute:before
  @@ fun _server ~sock ~state_dir:_ ->
  let first = submission ~name:"first" [ query_obj "q1" ] in
  let second = submission ~name:"second" [ query_obj ~psi:"far-left:25" "q2" ] in
  let res = ref None in
  let t1 = Thread.create (fun () -> res := Some (submit_collect sock first)) () in
  wait_entered ();
  (* The single capacity slot is occupied by the running job: both a
     new job and a duplicate of the in-flight one get explicit busy
     replies carrying the configured retry hint. *)
  (match submit_collect sock second with
  | Sclient.Busy { retry_after_s }, _ ->
      Alcotest.(check (float 1e-9)) "busy carries the retry hint" 0.25
        retry_after_s
  | (Sclient.Finished _ | Sclient.Failed _), _ ->
      Alcotest.fail "saturated server must answer busy");
  (match submit_collect sock first with
  | Sclient.Busy _, _ -> ()
  | _ -> Alcotest.fail "duplicate of an in-flight job must answer busy");
  release ();
  Thread.join t1;
  let outcome1, _ = Option.get !res in
  Alcotest.(check int) "held job finishes clean" 0 (finished_code outcome1);
  (* Capacity freed: the rejected job is accepted on resubmission. *)
  let outcome2, _ = submit_collect sock second in
  Alcotest.(check int) "resubmission after drain of the slot runs" 0
    (finished_code outcome2)

let test_serve_deadline_spent_in_queue () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  (* A deadline that has already passed when execution starts leaves a
     zero carve: queries are skipped and the job reports degraded. *)
  let outcome, frames =
    submit_collect sock
      (submission ~name:"hurried" ~deadline_s:0.001 [ query_obj "late" ])
  in
  Alcotest.(check int) "expired deadline degrades to 4" 4
    (finished_code outcome);
  Alcotest.(check (list string)) "the query was skipped" [ "skipped" ]
    (string_frames frames ~ty:"verdict" "outcome")

let test_serve_resubmit_replays_from_journal () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let request = submission ~name:"replay" [ query_obj "rq" ] in
  let outcome1, frames1 = submit_collect sock request in
  Alcotest.(check int) "first run exits clean" 0 (finished_code outcome1);
  Alcotest.(check (list bool)) "first run solves live" [ false ]
    (List.filter_map
       (fun v -> match v with Json.Bool b -> Some b | _ -> None)
       (frames_of frames1 ~ty:"verdict" "from_journal"));
  let outcome2, frames2 = submit_collect sock request in
  Alcotest.(check int) "replayed run exits clean" 0 (finished_code outcome2);
  Alcotest.(check (list bool)) "second run replays from the journal" [ true ]
    (List.filter_map
       (fun v -> match v with Json.Bool b -> Some b | _ -> None)
       (frames_of frames2 ~ty:"verdict" "from_journal"));
  match frames_of frames2 ~ty:"done" "resumed" with
  | [ v ] -> Alcotest.(check (option int)) "done counts the replay" (Some 1)
               (Json.to_int v)
  | _ -> Alcotest.fail "expected exactly one done frame"

let test_serve_warm_cache_across_jobs () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let hits () = Metrics.counter_value (Metrics.counter "campaign.cache_hits") in
  let outcome1, _ =
    submit_collect sock (submission ~name:"warmup" [ query_obj "w1" ])
  in
  ignore (finished_code outcome1);
  let before = hits () in
  (* Same strategy and cut, different psi: a distinct job whose shared
     encoding is already in the server's persistent cache. *)
  let outcome2, _ =
    submit_collect sock
      (submission ~name:"warmed" [ query_obj ~psi:"far-left:20" "w2" ])
  in
  ignore (finished_code outcome2);
  Alcotest.(check bool) "second job hits the persistent encoding cache" true
    (hits () > before)

let test_serve_setup_mismatch_refused () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let request =
    Json.encode
      (Json.Obj
         [
           ("op", Json.Str "submit");
           ( "spec",
             Json.Obj
               [
                 ("seed", Json.Num 99.0);
                 ("queries", Json.Arr [ query_obj "q" ]);
               ] );
         ])
  in
  match submit_collect sock request with
  | Sclient.Failed msg, _ ->
      Alcotest.(check bool) ("refusal names the mismatch: " ^ msg) true
        (contains msg "setup mismatch")
  | _ -> Alcotest.fail "a different seed must be refused"

let test_serve_drain_refuses_submissions () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  (* One connection: a drain request, then a submit on the same (still
     live) connection — the handler must answer [draining], not run
     the job. *)
  let fd = Sclient.connect_unix ~path:sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Sclient.rpc fd (Json.encode (Json.Obj [ ("op", Json.Str "drain") ])) with
      | Ok reply ->
          Alcotest.(check bool) "drain acknowledged" true
            (contains reply "draining")
      | Error e -> Alcotest.failf "drain request failed: %s" e);
      match
        Sclient.submit_and_stream fd
          ~request:(submission [ query_obj "q" ])
          ~on_frame:(fun _ -> ())
      with
      | Sclient.Failed msg ->
          Alcotest.(check bool) ("draining reply: " ^ msg) true
            (contains msg "draining")
      | Sclient.Finished _ | Sclient.Busy _ ->
          Alcotest.fail "a draining server must refuse submissions")

(* ---- fault sites (satellite: serve-accept, serve-torn-frame,
   serve-client-gone) ---- *)

let with_faults plan f =
  Fun.protect ~finally:Faults.disable (fun () ->
      Faults.configure plan;
      f ())

let test_fault_serve_accept_absorbed () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  with_faults [ (Faults.Serve_accept, 1) ] @@ fun () ->
  (* First connection: the accept-side hiccup closes it before the
     handler exists; the client sees EOF, the server keeps listening. *)
  let fd = Sclient.connect_unix ~path:sock in
  (match Sclient.rpc fd (Json.encode (Json.Obj [ ("op", Json.Str "ping") ])) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "the injected accept hiccup should kill this one");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Alcotest.(check int) "the hiccup fired" 1 (Faults.fired Faults.Serve_accept);
  (* Second connection: alive and answering. *)
  let fd = Sclient.connect_unix ~path:sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Sclient.rpc fd (Json.encode (Json.Obj [ ("op", Json.Str "ping") ]))
      with
      | Ok reply ->
          Alcotest.(check bool) "server still answers" true
            (contains reply "pong")
      | Error e -> Alcotest.failf "server must survive the hiccup: %s" e)

(* A faults-free frame reader: the injection tests' client must not
   consume the armed site's occurrence itself, so it bypasses
   Frame.read. *)
let raw_read_frame fd =
  let one = Bytes.create 1 in
  (* Like Frame.really_read, a peer that closed with our bytes still
     unread (AF_UNIX resets instead of EOF-ing then) reads as EOF. *)
  let read_byte buf ofs len =
    try Unix.read fd buf ofs len
    with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  let rec header acc =
    match read_byte one 0 1 with
    | 0 -> Error `Eof
    | _ -> (
        match Bytes.get one 0 with
        | '\n' -> Ok acc
        | c -> header (acc ^ String.make 1 c))
  in
  match header "" with
  | Error `Eof -> Error `Eof
  | Ok h -> (
      let len = int_of_string h in
      let buf = Bytes.create (len + 1) in
      let rec fill ofs =
        if ofs >= len + 1 then Ok (Bytes.sub_string buf 0 len)
        else
          match read_byte buf ofs (len + 1 - ofs) with
          | 0 -> Error `Eof
          | n -> fill (ofs + n)
      in
      fill 0)

let test_fault_serve_torn_frame_isolates_connection () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let fd = Sclient.connect_unix ~path:sock in
  (* The injection fires only once bytes begin arriving at the
     handler's read, so the ping below is what tears the stream: the
     client's write always lands before the framed error reply (no
     race).  The client reads raw, consuming no occurrences. *)
  ( with_faults [ (Faults.Serve_torn_frame, 1) ] @@ fun () ->
    (match Frame.write fd (Json.encode (Json.Obj [ ("op", Json.Str "ping") ])) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "client write should succeed");
    (match raw_read_frame fd with
    | Ok reply ->
        Alcotest.(check bool) ("framed error before close: " ^ reply) true
          (contains reply "torn")
    | Error `Eof ->
        Alcotest.fail "the torn connection gets a framed error first");
    (match raw_read_frame fd with
    | Error `Eof -> ()
    | Ok _ -> Alcotest.fail "the torn connection is then closed") );
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* Only that connection died: a fresh one is served normally. *)
  let fd = Sclient.connect_unix ~path:sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Sclient.rpc fd (Json.encode (Json.Obj [ ("op", Json.Str "ping") ]))
      with
      | Ok reply ->
          Alcotest.(check bool) "server still answers" true
            (contains reply "pong")
      | Error e -> Alcotest.failf "other connections must be unaffected: %s" e)

let test_fault_serve_client_gone_job_survives () =
  with_server @@ fun _server ~sock ~state_dir ->
  (* Occurrences of the write site, in causal order: 1 = this client's
     submit frame, 2 = the server's accepted frame, 3 = the first
     verdict — which is where the peer "vanishes". *)
  with_faults [ (Faults.Serve_client_gone, 3) ] @@ fun () ->
  let outcome, frames =
    submit_collect sock (submission ~name:"ghost" [ query_obj "gq" ])
  in
  (match outcome with
  | Sclient.Failed _ -> ()
  | Sclient.Finished _ | Sclient.Busy _ ->
      Alcotest.fail "the stream should die after the accepted frame");
  Alcotest.(check int) "only the accepted frame arrived" 1 (List.length frames);
  (* The job ran on headless: the joblog records both the loss and the
     finish, and the campaign journal holds the verdict. *)
  let events = ok (Joblog.load ~path:(Filename.concat state_dir "joblog.jsonl")) in
  let job =
    match
      List.find_map
        (function Joblog.Accepted { job; _ } -> Some job | _ -> None)
        events
    with
    | Some j -> j
    | None -> Alcotest.fail "job should be journaled"
  in
  Alcotest.(check bool) "client loss recorded" true
    (List.exists
       (function Joblog.Client_gone { job = j } -> j = job | _ -> false)
       events);
  Alcotest.(check bool) "job finished despite the lost client" true
    (List.exists
       (function
         | Joblog.Finished { job = j; exit_code = 0 } -> j = job | _ -> false)
       events);
  let entries =
    ok
      (Journal.load
         ~path:(Filename.concat state_dir ("job-" ^ job ^ ".jsonl")))
  in
  Alcotest.(check int) "the verdict reached the journal" 1
    (List.length entries)

(* ---- observability e2e: scrape endpoint, trace correlation,
   since-cursor, slow log (dpv-obs/2) ---- *)

(* [with_server] plus a loopback scrape listener on an ephemeral port. *)
let with_scrape_server ?(tune = fun c -> c) ?before_execute f =
  let dir = temp_dir "dpv-serve" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spec, parsed, prepared = Lazy.force pipeline in
  let state_dir = Filename.concat dir "state" in
  let config = tune (Server.default_config ~state_dir) in
  let server =
    Server.create ~config ?before_execute
      ~perception:prepared.Workflow.perception
      ~builder:(Specfile.builder prepared) ~base:parsed ~base_spec:spec ()
  in
  let sock = Filename.concat dir "dpv.sock" in
  let listen_fd = Server.listen_unix ~path:sock in
  let scrape_fd = Server.listen_tcp ~port:0 in
  let scrape_port =
    match Unix.getsockname scrape_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "scrape listener is not inet"
  in
  let th =
    Thread.create (fun () -> Server.serve ~scrape_fd server listen_fd) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Thread.join th)
    (fun () -> f server ~sock ~state_dir ~scrape_port)

let http_request ~port request =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd request 0 (String.length request));
      let b = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes b chunk 0 n;
            drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            ()
      in
      drain ();
      Buffer.contents b)

let scrape ~port =
  http_request ~port "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n"

let http_body response =
  let n = String.length response in
  let rec find i =
    if i + 4 > n then
      Alcotest.failf "no header/body split in %S" response
    else if String.sub response i 4 = "\r\n\r\n" then
      String.sub response (i + 4) (n - i - 4)
    else find (i + 1)
  in
  find 0

(* The value of sample line [name <int>] in an exposition body (the
   test server attaches no labels). *)
let sample_value body name =
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name ->
          int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> None)
    (String.split_on_char '\n' body)

let test_serve_scrape_endpoint_live () =
  let before, wait_entered, release = gate () in
  with_scrape_server ~before_execute:before
  @@ fun _server ~sock ~state_dir:_ ~scrape_port:port ->
  (* Park the executor mid-job so the scrape observably lands while a
     job is in the system. *)
  let res = ref None in
  let t =
    Thread.create
      (fun () ->
        res := Some (submit_collect sock (submission ~name:"scraped" [ query_obj "sq" ])))
      ()
  in
  wait_entered ();
  let r1 = scrape ~port in
  Alcotest.(check bool) "HTTP 200" true (contains r1 "HTTP/1.1 200 OK");
  Alcotest.(check bool) "OpenMetrics content type" true
    (contains r1 "text/plain; version=0.0.4");
  let b1 = http_body r1 in
  Alcotest.(check bool) "typed counter family" true
    (contains b1 "# TYPE dpv_serve_submissions counter");
  Alcotest.(check bool) "histogram family present" true
    (contains b1 "# TYPE dpv_journal_append_ns histogram");
  Alcotest.(check bool) "terminated by # EOF" true (contains b1 "# EOF\n");
  Alcotest.(check bool) "the in-flight submission is counted" true
    (Option.value ~default:0 (sample_value b1 "dpv_serve_submissions_total")
    >= 1);
  release ();
  Thread.join t;
  ignore (finished_code (fst (Option.get !res)));
  (* Second scrape after the job: every counter is monotone and the
     scrape itself was counted. *)
  let b2 = http_body (scrape ~port) in
  let totals body =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | Some i ->
            let name = String.sub line 0 i in
            if
              String.length name > 6
              && String.sub name (String.length name - 6) 6 = "_total"
            then
              Option.map (fun v -> (name, v)) (sample_value body name)
            else None
        | None -> None)
      (String.split_on_char '\n' body)
  in
  List.iter
    (fun (name, v1) ->
      match sample_value b2 name with
      | Some v2 ->
          if v2 < v1 then
            Alcotest.failf "counter %s went backwards: %d -> %d" name v1 v2
      | None -> Alcotest.failf "counter %s vanished between scrapes" name)
    (totals b1);
  Alcotest.(check bool) "scrapes count themselves" true
    (Option.value ~default:0 (sample_value b2 "dpv_serve_scrapes_total")
    > Option.value ~default:0 (sample_value b1 "dpv_serve_scrapes_total"));
  (* Non-GET methods are refused without killing the listener. *)
  let bad = http_request ~port "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n" in
  Alcotest.(check bool) "POST answers 405" true (contains bad "405");
  Alcotest.(check bool) "listener survives the refusal" true
    (contains (scrape ~port) "# EOF")

let test_fault_serve_scrape_isolates_connection () =
  with_scrape_server @@ fun _server ~sock ~state_dir:_ ~scrape_port:port ->
  with_faults [ (Faults.Serve_scrape, 1) ] @@ fun () ->
  (* The injected tear declares more bytes than it sends: the body we
     receive before the connection drops is short of the header's
     Content-Length. *)
  let torn = scrape ~port in
  let declared =
    List.find_map
      (fun line ->
        let line = String.trim line in
        let prefix = "Content-Length:" in
        let pl = String.length prefix in
        if String.length line > pl && String.sub line 0 pl = prefix then
          int_of_string_opt
            (String.trim (String.sub line pl (String.length line - pl)))
        else None)
      (String.split_on_char '\n' torn)
  in
  (match declared with
  | Some n ->
      Alcotest.(check bool) "the body is torn short" true
        (String.length (http_body torn) < n)
  | None -> Alcotest.failf "torn response has no Content-Length: %S" torn);
  Alcotest.(check int) "the tear fired" 1 (Faults.fired Faults.Serve_scrape);
  (* Only that connection died: the next scrape is whole, and jobs are
     untouched. *)
  let whole = scrape ~port in
  Alcotest.(check bool) "next scrape is complete" true
    (contains (http_body whole) "# EOF\n");
  let outcome, _ =
    submit_collect sock (submission ~name:"post-tear" [ query_obj "pt" ])
  in
  Alcotest.(check int) "jobs still run" 0 (finished_code outcome)

let is_hex c = match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let test_serve_trace_correlation_e2e () =
  with_server @@ fun _server ~sock ~state_dir ->
  let request =
    Json.encode
      (Json.Obj
         [
           ("op", Json.Str "submit");
           ("spec", Json.Obj [ ("queries", Json.Arr [ query_obj "tq" ]) ]);
           ("name", Json.Str "traced");
           ("trace", Json.Bool true);
         ])
  in
  let outcome, frames = submit_collect sock request in
  Alcotest.(check int) "traced job exits clean" 0 (finished_code outcome);
  let tid =
    match string_frames frames ~ty:"accepted" "trace" with
    | [ t ] -> t
    | _ -> Alcotest.fail "accepted frame must mint a trace id"
  in
  Alcotest.(check bool) "trace id is 16 hex chars" true
    (String.length tid = 16 && String.for_all is_hex tid);
  let job =
    match string_frames frames ~ty:"accepted" "job" with
    | [ j ] -> j
    | _ -> Alcotest.fail "no job id"
  in
  Alcotest.(check (list string)) "done frame carries the same id" [ tid ]
    (string_frames frames ~ty:"done" "trace");
  (* The trace frame: one per traced job, its events string a complete
     Chrome trace whose spans are all stamped with the id. *)
  Alcotest.(check (list string)) "trace frame carries the id" [ tid ]
    (string_frames frames ~ty:"trace" "trace");
  let events_doc =
    match string_frames frames ~ty:"trace" "events" with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected exactly one trace frame"
  in
  (match Json.of_string events_doc with
  | Error e -> Alcotest.failf "trace events do not parse: %s" e
  | Ok doc ->
      let evs =
        Option.value ~default:[]
          (Option.bind (Json.member "traceEvents" doc) Json.to_list)
      in
      let has_span name =
        List.exists
          (fun e -> Option.bind (Json.member "name" e) Json.to_string = Some name)
          evs
      in
      Alcotest.(check bool) "serve.job span present" true
        (has_span "serve.job");
      Alcotest.(check bool) "campaign.query span present" true
        (has_span "campaign.query");
      List.iter
        (fun e ->
          match Option.bind (Json.member "ph" e) Json.to_string with
          | Some ("X" | "i") -> (
              match
                Option.bind (Json.member "args" e) (fun a ->
                    Option.bind (Json.member "trace" a) Json.to_string)
              with
              | Some t when t = tid -> ()
              | _ ->
                  Alcotest.failf "event %s not stamped with the job's id"
                    (Option.value ~default:"?"
                       (Option.bind (Json.member "name" e) Json.to_string)))
          | _ -> ())
        evs);
  (* Joblog correlation: the Accepted entry carries the same id. *)
  let events =
    ok (Joblog.load ~path:(Filename.concat state_dir "joblog.jsonl"))
  in
  Alcotest.(check bool) "joblog Accepted carries the id" true
    (List.exists
       (function
         | Joblog.Accepted { job = j; trace; _ } -> j = job && trace = tid
         | _ -> false)
       events);
  (* Journal-meta correlation: the per-job campaign journal's trailer
     carries it too. *)
  let _, metas =
    ok
      (Journal.load_with_meta
         ~path:(Filename.concat state_dir ("job-" ^ job ^ ".jsonl")))
  in
  (match metas with
  | [ m ] ->
      Alcotest.(check string) "journal meta carries the id" tid
        m.Journal.trace
  | _ -> Alcotest.fail "expected exactly one meta trailer");
  (* A job submitted without trace:true streams no trace frame. *)
  let _, untraced =
    submit_collect sock
      (submission ~name:"untraced" [ query_obj ~psi:"far-left:20" "uq" ])
  in
  Alcotest.(check (list string)) "no trace frame unless asked" []
    (string_frames untraced ~ty:"trace" "trace")

let test_serve_metrics_since_cursor () =
  with_server @@ fun _server ~sock ~state_dir:_ ->
  let outcome, _ =
    submit_collect sock (submission ~name:"c1" [ query_obj "cq" ])
  in
  ignore (finished_code outcome);
  let fd = Sclient.connect_unix ~path:sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let poll since =
    let req =
      Json.Obj
        (("op", Json.Str "metrics")
        ::
        (match since with
        | None -> []
        | Some c -> [ ("since", Json.Num (float_of_int c)) ]))
    in
    match Sclient.rpc fd (Json.encode req) with
    | Error e -> Alcotest.failf "metrics rpc failed: %s" e
    | Ok reply -> (
        match Json.of_string reply with
        | Error e -> Alcotest.failf "metrics reply does not parse: %s" e
        | Ok j ->
            let cursor =
              match Option.bind (Json.member "cursor" j) Json.to_int with
              | Some c -> c
              | None -> Alcotest.fail "reply mints no cursor"
            in
            let echoed = Option.bind (Json.member "since" j) Json.to_int in
            let snap =
              match Json.member "metrics" j with
              | Some m -> ok (Journal.parse_metrics ~line:0 m)
              | None -> Alcotest.fail "no metrics in reply"
            in
            (cursor, echoed, snap))
  in
  let subs snap =
    Option.value ~default:0 (Metrics.counter_in snap "serve.submissions")
  in
  let c1, e1, full = poll None in
  Alcotest.(check (option int)) "first poll is a full snapshot" None e1;
  Alcotest.(check bool) "full snapshot counts the job" true (subs full >= 1);
  let c2, e2, idle = poll (Some c1) in
  Alcotest.(check (option int)) "cursor echoed back" (Some c1) e2;
  Alcotest.(check int) "idle delta is zero" 0 (subs idle);
  let outcome, _ =
    submit_collect sock
      (submission ~name:"c2" [ query_obj ~psi:"far-left:20" "cq2" ])
  in
  ignore (finished_code outcome);
  let _, e3, delta = poll (Some c2) in
  Alcotest.(check (option int)) "second cursor echoed" (Some c2) e3;
  Alcotest.(check int) "delta counts exactly the one new job" 1 (subs delta);
  (* An unknown (or evicted) cursor degrades to a full snapshot. *)
  let _, e4, full2 = poll (Some 999_999) in
  Alcotest.(check (option int)) "unknown cursor is not echoed" None e4;
  Alcotest.(check bool) "and yields full totals again" true
    (subs full2 >= 2)

let test_serve_slowlog_phases () =
  with_server ~tune:(fun c -> { c with Server.slow_ms = Some 0.0 })
  @@ fun _server ~sock ~state_dir ->
  let outcome, frames =
    submit_collect sock (submission ~name:"slow" [ query_obj "sq" ])
  in
  Alcotest.(check int) "job exits clean" 0 (finished_code outcome);
  let job =
    match string_frames frames ~ty:"accepted" "job" with
    | [ j ] -> j
    | _ -> Alcotest.fail "no job id"
  in
  let tid =
    match string_frames frames ~ty:"accepted" "trace" with
    | [ t ] -> t
    | _ -> Alcotest.fail "no trace id"
  in
  Alcotest.(check (list string)) "slow logging streams no trace frame" []
    (string_frames frames ~ty:"trace" "trace");
  (* The slow log is appended before the done frame, so it is already
     on disk. *)
  let slurp path = In_channel.with_open_text path In_channel.input_all in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n'
         (slurp (Filename.concat state_dir "slowlog.jsonl")))
  in
  Alcotest.(check int) "one slow line for the one query" 1 (List.length lines);
  match Json.of_string (List.hd lines) with
  | Error e -> Alcotest.failf "slow line does not parse: %s" e
  | Ok j ->
      let str key = Option.bind (Json.member key j) Json.to_string in
      let num key = Option.bind (Json.member key j) Json.to_float in
      Alcotest.(check (option string)) "correlated by job" (Some job)
        (str "job");
      Alcotest.(check (option string)) "correlated by trace id" (Some tid)
        (str "trace");
      Alcotest.(check (option string)) "names the span" (Some "campaign.query")
        (str "span");
      Alcotest.(check (option string)) "names the query" (Some "sq")
        (str "label");
      let wall =
        match num "wall_ms" with
        | Some w -> w
        | None -> Alcotest.fail "no wall_ms"
      in
      Alcotest.(check bool) "wall clock positive" true (wall > 0.0);
      let phases =
        match Json.member "phases" j with
        | Some p -> p
        | None -> Alcotest.fail "no phase breakdown"
      in
      let phase key =
        match Option.bind (Json.member key phases) Json.to_float with
        | Some v -> v
        | None -> Alcotest.failf "phase %s missing" key
      in
      let total =
        phase "resolve_bounds_ms" +. phase "encode_ms" +. phase "tighten_ms"
        +. phase "milp_ms"
      in
      Alcotest.(check bool) "phases are nonnegative and contained" true
        (total >= 0.0 && total <= wall +. 0.5);
      Alcotest.(check bool) "the MILP phase was attributed" true
        (phase "milp_ms" > 0.0)

(* ---- kill-and-restart recovery e2e (spawned server process) ---- *)

(* Resolved relative to the test binary, so the test also runs when
   invoked from outside the build tree. *)
let cli_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "dpv_cli.exe"))

let spawn_server ~base ~sock ~state ~cache ~log ~settle_delay_s =
  let out =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid =
    Unix.create_process cli_exe
      [|
        cli_exe;
        "serve";
        base;
        "--socket";
        sock;
        "--state-dir";
        state;
        "--cache-dir";
        cache;
        "--settle-delay-s";
        string_of_float settle_delay_s;
      |]
      Unix.stdin out out
  in
  Unix.close out;
  pid

let wait_for ~timeout_s what cond =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      loop ()
    end
  in
  loop ()

let wait_for_socket sock =
  wait_for ~timeout_s:120.0 ("socket " ^ sock) (fun () ->
      match Sclient.connect_unix ~path:sock with
      | fd ->
          Unix.close fd;
          true
      | exception Unix.Unix_error _ -> false)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_kill_and_restart_recovers_without_loss () =
  let dir = temp_dir "dpv-killtest" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let base = Filename.concat dir "base.json" in
  write_file base base_spec_text;
  let sock = Filename.concat dir "dpv.sock" in
  let state = Filename.concat dir "state" in
  let cache = Filename.concat dir "cache" in
  let log = Filename.concat dir "server.log" in
  (* Four queries, 0.6 s pacing after each settle: the kill below lands
     deterministically mid-campaign. *)
  let queries =
    [
      query_obj "k1";
      query_obj ~psi:"far-right:30" "k2";
      query_obj ~psi:"far-left:25" "k3";
      query_obj ~psi:"far-right:25" "k4";
    ]
  in
  let pid1 =
    spawn_server ~base ~sock ~state ~cache ~log ~settle_delay_s:0.6
  in
  wait_for_socket sock;
  let fd = Sclient.connect_unix ~path:sock in
  (match Frame.write fd (submission ~name:"killjob" queries) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit write failed");
  let job =
    match Frame.read fd with
    | Ok payload -> (
        match Json.of_string payload with
        | Ok v -> (
            match Option.bind (Json.member "job" v) Json.to_string with
            | Some j -> j
            | None -> Alcotest.failf "no job id in %s" payload)
        | Error e -> Alcotest.failf "bad accepted frame: %s" e)
    | Error _ -> Alcotest.fail "no accepted frame"
  in
  let journal = Filename.concat state ("job-" ^ job ^ ".jsonl") in
  (* Wait for the first settled verdict to be journaled, then SIGKILL
     the server mid-campaign. *)
  wait_for ~timeout_s:120.0 "first journaled verdict" (fun () ->
      match Journal.load ~path:journal with
      | Ok (_ :: _) -> true
      | _ -> false);
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let snapshot = ok (Journal.load ~path:journal) in
  Alcotest.(check bool) "killed mid-campaign" true
    (List.length snapshot >= 1 && List.length snapshot < List.length queries);
  (* The accepted job is journaled but unfinished. *)
  let events = ok (Joblog.load ~path:(Filename.concat state "joblog.jsonl")) in
  Alcotest.(check int) "the job is pending after the kill" 1
    (List.length (Joblog.pending events));
  (* Restart over the same state dir: recovery re-runs the job
     headless, replaying the settled prefix from its journal. *)
  let pid2 =
    spawn_server ~base ~sock ~state ~cache ~log ~settle_delay_s:0.0
  in
  wait_for ~timeout_s:120.0 "recovered job to finish" (fun () ->
      match Joblog.load ~path:(Filename.concat state "joblog.jsonl") with
      | Ok events ->
          List.exists
            (function
              | Joblog.Finished { job = j; _ } -> j = job | _ -> false)
            events
      | Error _ -> false);
  Unix.kill pid2 Sys.sigterm;
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "SIGTERM must drain to a clean exit");
  Alcotest.(check bool) "restart reports the recovery" true
    (contains (read_file log) "recovered 1 journaled job");
  (* No accepted work lost: every query settled, and the pre-kill
     entries replayed bit-identically. *)
  let final = ok (Journal.load ~path:journal) in
  Alcotest.(check int) "every query settled after recovery"
    (List.length queries) (List.length final);
  List.iter
    (fun (snap : Journal.entry) ->
      match
        List.find_opt
          (fun (e : Journal.entry) -> e.Journal.key = snap.Journal.key)
          final
      with
      | Some e ->
          Alcotest.(check bool)
            (snap.Journal.label ^ ": pre-kill entry replayed bit-identically")
            true (e = snap)
      | None -> Alcotest.failf "%s: settled entry lost" snap.Journal.label)
    snapshot

let tests =
  [
    ("json: depth limit", `Quick, test_json_depth_limit);
    ("json: payload limit", `Quick, test_json_payload_limit);
    ("frame: roundtrip", `Quick, test_frame_roundtrip);
    ("frame: torn stream", `Quick, test_frame_torn);
    ("frame: oversized refused on header", `Quick,
     test_frame_oversized_refused_on_header);
    ("frame: bad header byte", `Quick, test_frame_bad_header);
    ("admission: priority and fifo", `Quick, test_admission_priority_and_fifo);
    ("admission: capacity backpressure", `Quick,
     test_admission_capacity_backpressure);
    ("admission: failing before aborts", `Quick,
     test_admission_before_failure_aborts);
    ("admission: close drains", `Quick, test_admission_close_drains);
    ("joblog: roundtrip and pending", `Quick,
     test_joblog_roundtrip_and_pending);
    ("joblog: torn tail dropped", `Quick, test_joblog_torn_tail_dropped);
    ("joblog: mid-file corruption is error", `Quick,
     test_joblog_mid_file_corruption_is_error);
    ("joblog: missing file empty", `Quick, test_joblog_missing_file_empty);
    ("journal: resume skips meta trailer", `Quick,
     test_resume_skips_meta_trailer);
    ("serve: submit streams verdicts", `Slow,
     test_serve_submit_streams_verdicts);
    ("serve: concurrent clients", `Slow,
     test_serve_concurrent_clients_independent_streams);
    ("serve: backpressure and duplicates", `Slow,
     test_serve_backpressure_and_duplicates);
    ("serve: deadline spent in queue", `Slow,
     test_serve_deadline_spent_in_queue);
    ("serve: resubmit replays from journal", `Slow,
     test_serve_resubmit_replays_from_journal);
    ("serve: warm cache across jobs", `Slow,
     test_serve_warm_cache_across_jobs);
    ("serve: setup mismatch refused", `Slow,
     test_serve_setup_mismatch_refused);
    ("serve: drain refuses submissions", `Slow,
     test_serve_drain_refuses_submissions);
    ("serve: fault serve-accept absorbed", `Slow,
     test_fault_serve_accept_absorbed);
    ("serve: fault torn frame isolates connection", `Slow,
     test_fault_serve_torn_frame_isolates_connection);
    ("serve: fault client gone, job survives", `Slow,
     test_fault_serve_client_gone_job_survives);
    ("serve: scrape endpoint live", `Slow, test_serve_scrape_endpoint_live);
    ("serve: fault scrape isolates connection", `Slow,
     test_fault_serve_scrape_isolates_connection);
    ("serve: trace correlation e2e", `Slow,
     test_serve_trace_correlation_e2e);
    ("serve: metrics since cursor", `Slow, test_serve_metrics_since_cursor);
    ("serve: slow log phases", `Slow, test_serve_slowlog_phases);
    ("serve: kill and restart recovers without loss", `Slow,
     test_kill_and_restart_recovers_without_loss);
  ]
