(* Abstraction-guided branch-and-bound, input bisection, and the
   unbounded-relaxation soundness fix.

   - A non-root LP relaxation reporting Unbounded is a numerical
     artifact (a child's feasible set is contained in the bounded
     root's): the solver must truncate that subtree, never report the
     whole MILP Unbounded, and never claim Optimal afterwards.  The
     regression tests drive that path deterministically through the
     lp-unbounded fault site.
   - DeepPoly transfers must survive degenerate inputs (overflowing
     crossing intervals, non-finite batch-norm parameters) without
     producing unsound or NaN bounds.
   - DeepPoly under ReLU phase fixings must enclose every concrete
     execution consistent with the fixings.
   - The absint guide and input bisection are search optimizations:
     verdicts must match the unguided, unbisected solver. *)

module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Milp_par = Dpv_linprog.Milp_par
module Faults = Dpv_linprog.Faults
module Interval = Dpv_absint.Interval
module Deeppoly = Dpv_absint.Deeppoly
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Mat = Dpv_tensor.Mat
module Rng = Dpv_tensor.Rng
module Risk = Dpv_spec.Risk
module Verify = Dpv_core.Verify
module Campaign = Dpv_core.Campaign
module Characterizer = Dpv_core.Characterizer
module Metrics = Dpv_obs.Metrics

let check_float = Alcotest.(check (float 1e-6))

let with_faults ?seed plan f =
  Fun.protect ~finally:Faults.disable (fun () ->
      Faults.configure ?seed plan;
      f ())

let classification = function
  | Milp.Optimal _ -> "optimal"
  | Milp.Feasible _ -> "feasible"
  | Milp.Infeasible -> "infeasible"
  | Milp.Unbounded -> "unbounded"
  | Milp.Node_limit -> "node-limit"
  | Milp.Timeout -> "timeout"

(* ---- unbounded-relaxation regression ------------------------------ *)

(* max x + y over binaries with x + y <= 1.5: the root relaxation is
   fractional (1.5), both children still hold integer points, and the
   integer optimum is 1.  Nodes: root, two children, grandchildren —
   enough tree for "occurrence 2 of the LP solve" to be a non-root
   node. *)
let branching_model () =
  let m = Lp.create () in
  let m, x = Lp.add_var ~kind:Lp.Binary m in
  let m, y = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Le 1.5 in
  Lp.set_objective m Lp.Maximize [ (1.0, x); (1.0, y) ]

let seq_options = { Milp.default_options with workers = 1 }

let test_root_unbounded_still_unbounded () =
  (* At the root an Unbounded relaxation is an honest report and must
     keep surfacing as the Unbounded verdict. *)
  with_faults [ (Faults.Lp_unbounded, 1) ] @@ fun () ->
  match Milp.solve ~options:seq_options (branching_model ()) with
  | Milp.Unbounded -> ()
  | r -> Alcotest.failf "expected root Unbounded, got %s" (classification r)

let test_nonroot_unbounded_truncates_sequential () =
  (* Occurrence 2 is the first child.  The old solver returned
     [Unbounded] for the whole MILP here — unsound, the model is a
     bounded 0/1 program.  The fixed solver drops the subtree, keeps
     the sibling's incumbent, and reports Feasible (a truncated search
     may never claim Optimal). *)
  with_faults [ (Faults.Lp_unbounded, 2) ] @@ fun () ->
  let model = branching_model () in
  match Milp.solve ~options:seq_options model with
  | Milp.Feasible { objective; solution } ->
      check_float "sibling incumbent survives" 1.0 objective;
      Alcotest.(check bool) "incumbent is feasible" true
        (Lp.check_feasible ~tol:1e-6 model solution)
  | Milp.Optimal _ ->
      Alcotest.fail "truncated search must not claim Optimal"
  | Milp.Unbounded ->
      Alcotest.fail
        "non-root unbounded relaxation leaked out as an Unbounded verdict"
  | r -> Alcotest.failf "expected Feasible, got %s" (classification r)

let test_nonroot_unbounded_infeasible_model_inconclusive () =
  (* 2x = 1 over a binary is infeasible, but when one child's subtree
     was truncated the solver no longer visited the whole tree: the
     honest answer is Node_limit (inconclusive), not Infeasible and
     certainly not Unbounded. *)
  with_faults [ (Faults.Lp_unbounded, 2) ] @@ fun () ->
  let m = Lp.create () in
  let m, x = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (2.0, x) ] Lp.Eq 1.0 in
  match Milp.solve ~options:seq_options m with
  | Milp.Node_limit -> ()
  | r ->
      Alcotest.failf "expected inconclusive Node_limit, got %s"
        (classification r)

let test_nonroot_unbounded_truncates_parallel () =
  (* Same property under the work-stealing solver: the root is always
     LP-solve occurrence 1 (workers start from the seeded root alone),
     so occurrence 2 is some non-root node in whichever subtree. *)
  with_faults [ (Faults.Lp_unbounded, 2) ] @@ fun () ->
  let model = branching_model () in
  let options = { Milp.default_options with workers = 2 } in
  match Milp_par.solve ~options model with
  | Milp.Feasible { objective; solution } ->
      check_float "sibling incumbent survives" 1.0 objective;
      Alcotest.(check bool) "incumbent is feasible" true
        (Lp.check_feasible ~tol:1e-6 model solution)
  | Milp.Optimal _ ->
      Alcotest.fail "truncated parallel search must not claim Optimal"
  | Milp.Unbounded ->
      Alcotest.fail "non-root unbounded leaked out of the parallel solver"
  | r -> Alcotest.failf "expected Feasible, got %s" (classification r)

let test_genuinely_unbounded_root_unchanged () =
  (* No injection: a model whose root relaxation really is unbounded
     still reports Unbounded. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~kind:Lp.Integer m in
  let m = Lp.set_objective m Lp.Maximize [ (1.0, x) ] in
  match Milp.solve ~options:seq_options m with
  | Milp.Unbounded -> ()
  | r -> Alcotest.failf "expected Unbounded, got %s" (classification r)

(* ---- DeepPoly degenerate guards ----------------------------------- *)

let test_relu_overflowing_crossing_interval_sound () =
  (* u - l overflows to infinity for [-1e308, 1e308], which used to
     collapse the chord slope to 0 and report an upper bound near 0 —
     unsound, relu(1e308) = 1e308.  The guard falls back to the box
     relaxation [0, u]. *)
  let t = Deeppoly.of_box [| Interval.make ~lo:(-1e308) ~hi:1e308 |] in
  let out = Deeppoly.to_box (Deeppoly.transfer_layer Layer.Relu t) in
  Alcotest.(check bool) "no NaN bounds" false
    (Float.is_nan out.(0).Interval.lo || Float.is_nan out.(0).Interval.hi);
  Alcotest.(check bool) "upper bound covers relu(1e308)" true
    (out.(0).Interval.hi >= 1e308);
  Alcotest.(check bool) "lower bound covers relu of negatives" true
    (out.(0).Interval.lo <= 0.0)

let batch_norm_with gamma =
  Layer.Batch_norm
    {
      gamma = [| gamma |];
      beta = [| 0.0 |];
      mean = [| 0.0 |];
      var = [| 1.0 |];
      eps = 0.0;
    }

let test_batch_norm_nonfinite_scale_no_nan () =
  List.iter
    (fun gamma ->
      let t = Deeppoly.of_box [| Interval.make ~lo:(-1.0) ~hi:1.0 |] in
      let out = Deeppoly.to_box (Deeppoly.transfer_layer (batch_norm_with gamma) t) in
      let iv = out.(0) in
      Alcotest.(check bool)
        (Printf.sprintf "gamma=%h: bounds are not NaN" gamma)
        false
        (Float.is_nan iv.Interval.lo || Float.is_nan iv.Interval.hi);
      Alcotest.(check bool)
        (Printf.sprintf "gamma=%h: bounds are ordered" gamma)
        true
        (iv.Interval.lo <= iv.Interval.hi))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_relu_fixed_contradiction_is_empty () =
  let always_pos = Deeppoly.of_box [| Interval.make ~lo:1.0 ~hi:2.0 |] in
  (match Deeppoly.transfer_relu_fixed [| Deeppoly.Inactive |] always_pos with
  | None -> ()
  | Some _ -> Alcotest.fail "Inactive fixing on lo > 0 must be empty");
  let always_neg = Deeppoly.of_box [| Interval.make ~lo:(-2.0) ~hi:(-1.0) |] in
  (match Deeppoly.transfer_relu_fixed [| Deeppoly.Active |] always_neg with
  | None -> ()
  | Some _ -> Alcotest.fail "Active fixing on hi < 0 must be empty");
  (* The x = 0 boundary belongs to both phases: neither fixing may
     declare [0, 0] empty. *)
  let zero = Deeppoly.of_box [| Interval.make ~lo:0.0 ~hi:0.0 |] in
  List.iter
    (fun phase ->
      match Deeppoly.transfer_relu_fixed [| phase |] zero with
      | Some _ -> ()
      | None -> Alcotest.fail "x = 0 must stay feasible under either phase")
    [ Deeppoly.Active; Deeppoly.Inactive ]

(* ---- phased propagation encloses concrete executions -------------- *)

let random_net rng ~input_dim ~relu_layers =
  let layers = ref [] in
  let prev = ref input_dim in
  for _ = 1 to relu_layers do
    let d = 1 + Rng.int rng 3 in
    let rows =
      Array.init d (fun _ ->
          Array.init !prev (fun _ -> Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
    in
    let bias = Array.init d (fun _ -> Rng.uniform rng ~lo:(-0.5) ~hi:0.5) in
    layers := Layer.Relu :: Layer.dense ~weights:(Mat.of_rows rows) ~bias :: !layers;
    prev := d
  done;
  Network.create ~input_dim (List.rev !layers)

(* Phases the execution of [x] actually takes, indexed by layer
   position; the pre-activation vector at each ReLU decides. *)
let actual_phases net x =
  let v = ref x in
  let acc = ref [] in
  List.iteri
    (fun idx layer ->
      (match layer with
      | Layer.Relu ->
          acc :=
            ( idx,
              Array.map
                (fun p ->
                  if p >= 0.0 then Deeppoly.Active else Deeppoly.Inactive)
                !v )
            :: !acc
      | _ -> ());
      v := Layer.forward layer !v)
    (Network.layers net);
  (List.rev !acc, !v)

let test_phased_propagation_encloses_executions () =
  let rng = Rng.create 20260808 in
  for _ = 1 to 60 do
    let input_dim = 1 + Rng.int rng 3 in
    let net = random_net rng ~input_dim ~relu_layers:(1 + Rng.int rng 2) in
    let box =
      Array.init input_dim (fun _ ->
          let lo = Rng.uniform rng ~lo:(-1.0) ~hi:0.0 in
          Interval.make ~lo ~hi:(lo +. Rng.uniform rng ~lo:0.1 ~hi:2.0))
    in
    let x =
      Array.map (fun iv -> Rng.uniform rng ~lo:iv.Interval.lo ~hi:iv.Interval.hi) box
    in
    let phases_by_layer, out = actual_phases net x in
    (* Fix a random consistent subset of the execution's phases, leave
       the rest Unknown: the abstraction must still contain x's run. *)
    let phases_by_layer =
      List.map
        (fun (idx, phases) ->
          ( idx,
            Array.map
              (fun p -> if Rng.int rng 2 = 0 then p else Deeppoly.Unknown)
              phases ))
        phases_by_layer
    in
    let t = ref (Deeppoly.of_box box) in
    List.iteri
      (fun idx layer ->
        match layer with
        | Layer.Relu -> (
            match
              Deeppoly.transfer_relu_fixed (List.assoc idx phases_by_layer) !t
            with
            | Some t' -> t := t'
            | None ->
                Alcotest.fail
                  "fixings consistent with a concrete run reported empty")
        | layer -> t := Deeppoly.transfer_layer layer !t)
      (Network.layers net);
    let bounds = Deeppoly.to_box !t in
    Array.iteri
      (fun i y ->
        Alcotest.(check bool)
          (Printf.sprintf "output %d enclosed" i)
          true
          (y >= bounds.(i).Interval.lo -. 1e-7
          && y <= bounds.(i).Interval.hi +. 1e-7))
      out
  done

(* ---- neutral guide is bit-for-bit the plain solver ---------------- *)

let random_milp rng =
  let nv = 2 + Rng.int rng 4 in
  let nc = 1 + Rng.int rng 4 in
  let m = ref (Lp.create ()) in
  let vars =
    Array.init nv (fun i ->
        let kind = if i mod 2 = 0 then Lp.Integer else Lp.Continuous in
        let model, v = Lp.add_var ~lo:0.0 ~up:6.0 ~kind !m in
        m := model;
        v)
  in
  for _ = 1 to nc do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.uniform rng ~lo:(-2.0) ~hi:3.0, v)) vars)
    in
    m := Lp.add_constraint !m terms Lp.Le (Rng.uniform rng ~lo:0.0 ~hi:15.0)
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, v)) vars)
  in
  m := Lp.set_objective !m Lp.Maximize obj;
  !m

let test_neutral_guide_identical_to_plain () =
  (* A guide that never prunes, fixes or scores must leave the search
     untouched: same classification, same objective, same node count.
     This is the [workers = 1, absint off ≡ today's solver] guarantee
     approached from the other side — the guided code path degenerates
     to the plain one. *)
  let neutral =
    Some
      (Milp.stateless_guide (fun _ ->
           { Milp.prune = false; fix = []; widths = [] }))
  in
  let rng = Rng.create 4711 in
  for _ = 1 to 30 do
    let model = random_milp rng in
    let plain, ps = Milp.solve_with_stats ~options:seq_options model in
    let guided, gs =
      Milp.solve_with_stats
        ~options:{ seq_options with Milp.absint = neutral }
        model
    in
    Alcotest.(check string) "classification agrees" (classification plain)
      (classification guided);
    Alcotest.(check int) "same tree explored" ps.Milp.nodes_explored
      gs.Milp.nodes_explored;
    Alcotest.(check int) "no fixes from the neutral guide" 0
      gs.Milp.absint_phase_fixes;
    Alcotest.(check int) "no prunes from the neutral guide" 0
      gs.Milp.absint_prunes;
    match (plain, guided) with
    | Milp.Optimal { objective = o1; _ }, Milp.Optimal { objective = o2; _ } ->
        check_float "objective agrees" o1 o2
    | _ -> ()
  done

(* ---- guided verify / bisection equivalence ------------------------ *)

(* Same hand-built pipeline as test_campaign:
   perception x -> Dense [[1];[-1]] -> ReLU -> Dense [1,-1], cut 2, so
   the features are (relu(x), relu(-x)) and the suffix output is
   f1 - f2 in [-1, 1] over the visited box. *)
let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer =
  { Characterizer.head; cut; property_name = "x-at-least-half" }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut [| x |])

let risk_ge threshold =
  Risk.make
    ~name:(Printf.sprintf "out>=%g" threshold)
    [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make
    ~name:(Printf.sprintf "out<=%g" threshold)
    [ Risk.output_le 0 threshold ]

(* Reachable and unreachable queries over both bounds strategies; the
   first is UNSAFE with a concretely re-validated witness. *)
let battery () =
  [
    ("reach-box", risk_ge 0.9, Verify.Data_box visited_features);
    ("unreach-box", risk_ge 1.5, Verify.Data_box visited_features);
    ("neg-oct", risk_le (-0.2), Verify.Data_octagon visited_features);
    ("neg-oct-deep", risk_le (-0.8), Verify.Data_octagon visited_features);
  ]

let verdict_word = Campaign.verdict_word

let test_absint_guided_verify_matches_plain () =
  List.iter
    (fun (label, psi, bounds) ->
      let plain = Verify.verify ~perception ~characterizer ~psi ~bounds () in
      let guided =
        Verify.verify ~absint:true ~perception ~characterizer ~psi ~bounds ()
      in
      let widest =
        Verify.verify ~absint:true
          ~milp_options:
            {
              Verify.default_milp_options with
              Milp.branch_rule = Milp.Bound_width;
            }
          ~perception ~characterizer ~psi ~bounds ()
      in
      let ordered =
        Verify.verify ~absint:true
          ~milp_options:
            {
              Verify.default_milp_options with
              Milp.branch_rule = Milp.Guide_order;
            }
          ~perception ~characterizer ~psi ~bounds ()
      in
      Alcotest.(check string)
        (label ^ ": guided verdict matches plain")
        (verdict_word plain.Verify.verdict)
        (verdict_word guided.Verify.verdict);
      Alcotest.(check string)
        (label ^ ": bound-width branching matches too")
        (verdict_word plain.Verify.verdict)
        (verdict_word widest.Verify.verdict);
      Alcotest.(check string)
        (label ^ ": guide-order branching matches too")
        (verdict_word plain.Verify.verdict)
        (verdict_word ordered.Verify.verdict))
    (battery ())

let test_absint_prunes_unreachable_query () =
  (* out = f1 - f2 can reach at most 1.0 over the feature box, so
     psi : out >= 1.2 is dead on arrival: the guide must prune at the
     root, before any LP is solved. *)
  let result =
    Verify.verify ~absint:true ~perception ~characterizer ~psi:(risk_ge 1.2)
      ~bounds:(Verify.Data_box visited_features) ()
  in
  (match result.Verify.verdict with
  | Verify.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %a" Verify.pp_verdict v);
  Alcotest.(check bool) "the guide pruned at least one node" true
    (result.Verify.milp_stats.Milp.absint_prunes >= 1);
  Alcotest.(check int) "no LP was ever solved" 0
    result.Verify.milp_stats.Milp.lp_solved

let bisect2 = { Verify.max_depth = 2; subbox_time_limit_s = None }

let test_bisected_verify_matches_unbisected () =
  List.iter
    (fun (label, psi, bounds) ->
      let whole = Verify.verify ~perception ~characterizer ~psi ~bounds () in
      let bisected =
        Verify.verify ~bisect:bisect2 ~perception ~characterizer ~psi ~bounds ()
      in
      let both =
        Verify.verify ~absint:true ~bisect:bisect2 ~perception ~characterizer
          ~psi ~bounds ()
      in
      Alcotest.(check string)
        (label ^ ": bisected verdict matches whole-box")
        (verdict_word whole.Verify.verdict)
        (verdict_word bisected.Verify.verdict);
      Alcotest.(check string)
        (label ^ ": bisect+absint matches too")
        (verdict_word whole.Verify.verdict)
        (verdict_word both.Verify.verdict))
    (battery ())

let test_bisected_unsafe_witness_revalidates () =
  (* The UNSAFE query of the battery: the witness surviving the merge
     must replay concretely into psi through the suffix, exactly like
     the unbisected path guarantees. *)
  let psi = risk_ge 0.9 in
  let result =
    Verify.verify ~bisect:bisect2 ~perception ~characterizer ~psi
      ~bounds:(Verify.Data_box visited_features) ()
  in
  match result.Verify.verdict with
  | Verify.Unsafe { features; output; logit } ->
      let suffix = Network.suffix perception ~cut in
      let replayed = Network.forward suffix features in
      check_float "witness output replays through the suffix" replayed.(0)
        output.(0);
      Alcotest.(check bool) "witness really violates psi" true
        (output.(0) >= 0.9 -. 1e-6);
      Alcotest.(check bool) "characterizer fires on the witness" true
        (logit >= -1e-9)
  | v -> Alcotest.failf "expected unsafe, got %a" Verify.pp_verdict v

let test_campaign_bisect_matches_plain () =
  let queries () =
    List.map
      (fun (label, psi, bounds) ->
        Campaign.query ~label ~characterizer ~psi ~bounds ())
      (battery ())
  in
  let plain = Campaign.run ~runners:1 ~perception (queries ()) in
  let bisected =
    Campaign.run ~runners:2 ~absint:true ~bisect:bisect2 ~perception
      (queries ())
  in
  Alcotest.(check bool) "bisected campaign is clean" false
    bisected.Campaign.degraded;
  List.iter2
    (fun (pq : Campaign.query_report) (bq : Campaign.query_report) ->
      match (pq.Campaign.outcome, bq.Campaign.outcome) with
      | Campaign.Done p, Campaign.Done b ->
          Alcotest.(check string)
            (pq.Campaign.query.Campaign.label ^ ": verdict matches")
            (verdict_word p.Verify.verdict)
            (verdict_word b.Verify.verdict)
      | _ -> Alcotest.fail "expected Done outcomes on a clean run")
    plain.Campaign.query_reports bisected.Campaign.query_reports;
  (* The bisection counters surface in the campaign's metrics delta —
     the same property CI asserts on the smoke campaign. *)
  match Metrics.counter_in bisected.Campaign.metrics "bisect.subboxes" with
  | Some n when n > 0 -> ()
  | Some n -> Alcotest.failf "bisect.subboxes counter stuck at %d" n
  | None -> Alcotest.fail "bisect.subboxes counter missing from metrics"

(* ---- incremental guide: scratch ≡ incremental, stale fault, seeds -- *)

module Absguide = Dpv_core.Absguide
module Propagate = Dpv_absint.Propagate

(* A pipeline whose suffix and head both hold crossing ReLUs, so the
   guided search genuinely branches on relu binaries: consecutive DFS
   nodes share phase-fixing prefixes (incrementality pays off) and
   sibling switches roll the prefix cache back (the absint-stale site
   accrues occurrences). *)
let make_deep seed =
  let rng = Rng.create seed in
  let dense ~rows ~cols =
    Layer.dense
      ~weights:
        (Mat.of_rows
           (Array.init rows (fun _ ->
                Array.init cols (fun _ -> Rng.uniform rng ~lo:(-1.2) ~hi:1.2))))
      ~bias:(Array.init rows (fun _ -> Rng.uniform rng ~lo:(-0.3) ~hi:0.3))
  in
  let perception =
    Network.create ~input_dim:2
      [
        dense ~rows:2 ~cols:2;
        (* cut here: features are this layer's 2-dim output *)
        dense ~rows:3 ~cols:2;
        Layer.Relu;
        dense ~rows:3 ~cols:3;
        Layer.Relu;
        dense ~rows:1 ~cols:3;
      ]
  in
  let head =
    Network.create ~input_dim:2
      [ dense ~rows:2 ~cols:2; Layer.Relu; dense ~rows:1 ~cols:2 ]
  in
  (perception, head)

let deep_perception, deep_head = make_deep 27
let deep_cut = 1

let deep_characterizer =
  { Characterizer.head = deep_head; cut = deep_cut; property_name = "deep" }

let deep_box =
  [| Interval.make ~lo:(-1.0) ~hi:1.0; Interval.make ~lo:(-1.0) ~hi:1.0 |]

let deep_bounds = Verify.Feature_box deep_box

(* A threshold strictly between the concretely sampled maximum and the
   DeepPoly upper bound: propagation alone cannot discharge the query,
   so the solver must branch on the relu binaries to prove it safe.
   [blend] slides the threshold from the sampled maximum (0.0, hardest
   to discharge) to the DeepPoly bound (1.0, trivially discharged). *)
let deep_psi_of ?(blend = 0.5) perception =
  let suffix = Network.suffix perception ~cut:deep_cut in
  let hi =
    (Propagate.output_bounds Propagate.Deeppoly suffix ~input_box:deep_box).(0)
      .Interval.hi
  in
  let sampled = ref neg_infinity in
  for i = 0 to 20 do
    for j = 0 to 20 do
      let f =
        [|
          -1.0 +. (float_of_int i /. 10.0); -1.0 +. (float_of_int j /. 10.0);
        |]
      in
      sampled := Stdlib.max !sampled (Network.forward suffix f).(0)
    done
  done;
  risk_ge (!sampled +. (blend *. (hi -. !sampled)))

let deep_psi = deep_psi_of deep_perception

let guided_verify ?(workers = 1) ?(scratch = false) () =
  Fun.protect
    ~finally:(fun () -> Absguide.set_scratch false)
    (fun () ->
      Absguide.set_scratch scratch;
      Verify.verify ~absint:true
        ~milp_options:{ Verify.default_milp_options with Milp.workers }
        ~perception:deep_perception ~characterizer:deep_characterizer
        ~psi:deep_psi ~bounds:deep_bounds ())

let test_incremental_matches_scratch_sequential () =
  (* The whole point of the prefix cache: from-scratch and incremental
     propagation are the same function, so every solver-visible number
     is identical — only the layers-transferred work counters differ. *)
  let inc = guided_verify () in
  let scr = guided_verify ~scratch:true () in
  let is_ = inc.Verify.milp_stats and ss = scr.Verify.milp_stats in
  Alcotest.(check string) "verdict identical"
    (verdict_word scr.Verify.verdict)
    (verdict_word inc.Verify.verdict);
  Alcotest.(check bool) "the search actually branches" true
    (is_.Milp.nodes_explored >= 3);
  Alcotest.(check int) "same tree" ss.Milp.nodes_explored
    is_.Milp.nodes_explored;
  Alcotest.(check int) "same LPs" ss.Milp.lp_solved is_.Milp.lp_solved;
  Alcotest.(check int) "same prunes" ss.Milp.absint_prunes
    is_.Milp.absint_prunes;
  Alcotest.(check int) "same phase fixes" ss.Milp.absint_phase_fixes
    is_.Milp.absint_phase_fixes;
  Alcotest.(check bool) "incremental consults resume cached prefixes" true
    (is_.Milp.absint_incr_hits > 0 && is_.Milp.absint_layers_saved > 0);
  Alcotest.(check int) "scratch mode saves nothing" 0
    ss.Milp.absint_layers_saved;
  Alcotest.(check int) "scratch mode scores no hits" 0
    ss.Milp.absint_incr_hits;
  Alcotest.(check bool) "incremental transfers strictly fewer layers" true
    (is_.Milp.absint_layers_propagated < ss.Milp.absint_layers_propagated)

let test_incremental_matches_scratch_parallel () =
  (* Same equivalence through the work-stealing solver, where each
     worker domain owns a private guide instance.  The explored tree of
     an infeasible query is schedule-independent, so node counts still
     line up between the two modes. *)
  let seq = guided_verify () in
  let inc = guided_verify ~workers:2 () in
  let scr = guided_verify ~workers:2 ~scratch:true () in
  Alcotest.(check string) "parallel verdict matches sequential"
    (verdict_word seq.Verify.verdict)
    (verdict_word inc.Verify.verdict);
  Alcotest.(check string) "parallel scratch verdict identical"
    (verdict_word inc.Verify.verdict)
    (verdict_word scr.Verify.verdict);
  Alcotest.(check int) "parallel modes explore the same tree"
    scr.Verify.milp_stats.Milp.nodes_explored
    inc.Verify.milp_stats.Milp.nodes_explored;
  Alcotest.(check bool) "per-worker guides report incremental work" true
    (inc.Verify.milp_stats.Milp.absint_layers_propagated > 0)

let test_absint_stale_detected_and_recovered () =
  (* Chaos: serve one stale cached layer state.  The debug cross-check
     (armed whenever the fault harness is) must catch the divergence
     against a from-scratch reference, count a fallback, and leave the
     search bit-identical to a clean run. *)
  let clean = guided_verify () in
  let fallbacks = Metrics.counter "absint.stale_fallbacks" in
  with_faults [ (Faults.Absint_stale, 1) ] @@ fun () ->
  let before = Metrics.counter_value fallbacks in
  let faulted =
    Verify.verify ~absint:true ~perception:deep_perception
      ~characterizer:deep_characterizer ~psi:deep_psi ~bounds:deep_bounds ()
  in
  Alcotest.(check int) "the stale site fired exactly once" 1
    (Faults.fired Faults.Absint_stale);
  Alcotest.(check bool) "cross-check caught the stale state" true
    (Metrics.counter_value fallbacks - before >= 1);
  Alcotest.(check string) "verdict survives the injection"
    (verdict_word clean.Verify.verdict)
    (verdict_word faulted.Verify.verdict);
  Alcotest.(check int) "the repaired search explores the same tree"
    clean.Verify.milp_stats.Milp.nodes_explored
    faulted.Verify.milp_stats.Milp.nodes_explored

let test_bisection_seeds_guide_roots () =
  (* Regression for the bisection double-propagation: every surviving
     leaf hands its plan-time root propagation to the guide as a seed,
     so no survivor propagates its root twice. *)
  let seeded = Metrics.counter "absint.seeded_roots" in
  let subboxes = Metrics.counter "bisect.subboxes" in
  let discharged = Metrics.counter "bisect.discharged" in
  (* A tighter threshold than [deep_psi]: the quarter boxes of the
     depth-2 plan propagate tighter bounds, so the midpoint threshold
     would discharge every leaf and the seed hand-off would go
     unexercised. *)
  let psi = deep_psi_of ~blend:0.02 deep_perception in
  let whole =
    Verify.verify ~absint:true ~perception:deep_perception
      ~characterizer:deep_characterizer ~psi ~bounds:deep_bounds ()
  in
  let sr0 = Metrics.counter_value seeded in
  let sb0 = Metrics.counter_value subboxes in
  let dc0 = Metrics.counter_value discharged in
  let bis =
    Verify.verify ~absint:true ~bisect:bisect2 ~perception:deep_perception
      ~characterizer:deep_characterizer ~psi ~bounds:deep_bounds ()
  in
  let survivors =
    Metrics.counter_value subboxes
    - sb0
    - (Metrics.counter_value discharged - dc0)
  in
  Alcotest.(check bool) "some sub-box survives to MILP" true (survivors >= 1);
  Alcotest.(check int) "every survivor adopts its seed instead of redoing it"
    survivors
    (Metrics.counter_value seeded - sr0);
  Alcotest.(check string) "verdict matches the whole-box guided query"
    (verdict_word whole.Verify.verdict)
    (verdict_word bis.Verify.verdict)

let tests =
  [
    Alcotest.test_case "root unbounded stays Unbounded" `Quick
      test_root_unbounded_still_unbounded;
    Alcotest.test_case "non-root unbounded truncates (sequential)" `Quick
      test_nonroot_unbounded_truncates_sequential;
    Alcotest.test_case "non-root unbounded -> inconclusive, not Infeasible"
      `Quick test_nonroot_unbounded_infeasible_model_inconclusive;
    Alcotest.test_case "non-root unbounded truncates (parallel)" `Quick
      test_nonroot_unbounded_truncates_parallel;
    Alcotest.test_case "genuinely unbounded root unchanged" `Quick
      test_genuinely_unbounded_root_unchanged;
    Alcotest.test_case "ReLU overflowing crossing interval is sound" `Quick
      test_relu_overflowing_crossing_interval_sound;
    Alcotest.test_case "batch-norm with non-finite scale yields no NaN" `Quick
      test_batch_norm_nonfinite_scale_no_nan;
    Alcotest.test_case "contradictory phase fixing is empty" `Quick
      test_relu_fixed_contradiction_is_empty;
    Alcotest.test_case "phased propagation encloses executions" `Quick
      test_phased_propagation_encloses_executions;
    Alcotest.test_case "neutral guide is the plain solver" `Quick
      test_neutral_guide_identical_to_plain;
    Alcotest.test_case "absint-guided verify matches plain" `Quick
      test_absint_guided_verify_matches_plain;
    Alcotest.test_case "absint prunes an unreachable query before any LP"
      `Quick test_absint_prunes_unreachable_query;
    Alcotest.test_case "bisected verify matches unbisected" `Quick
      test_bisected_verify_matches_unbisected;
    Alcotest.test_case "bisected UNSAFE witness re-validates" `Quick
      test_bisected_unsafe_witness_revalidates;
    Alcotest.test_case "campaign with bisect matches plain campaign" `Quick
      test_campaign_bisect_matches_plain;
    Alcotest.test_case "incremental ≡ scratch (sequential)" `Quick
      test_incremental_matches_scratch_sequential;
    Alcotest.test_case "incremental ≡ scratch (parallel)" `Quick
      test_incremental_matches_scratch_parallel;
    Alcotest.test_case "stale cache injection detected and recovered" `Quick
      test_absint_stale_detected_and_recovered;
    Alcotest.test_case "bisection survivors seed the guide roots" `Quick
      test_bisection_seeds_guide_roots;
  ]
