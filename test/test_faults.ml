(* Deterministic fault injection: spec parsing and fire-on-nth
   semantics, the simplex recovery paths (dense fallback after pivot
   corruption / singular refactorization / escaped numerical trouble),
   and the campaign-level retry ladder, crash isolation, journal
   resilience and resume.

   Every test configures faults programmatically and disarms them in a
   [Fun.protect] finalizer, so a failing assertion cannot leak an armed
   harness into later tests.  DPV_FAULTS is never read here (only the
   executables call [init_from_env]), which keeps `dune runtest`
   deterministic regardless of the environment.

   Campaign fixtures use box bounds: with no LP solves in the shared
   encoding phase, every injected occurrence lands inside a per-query
   solve, which keeps the expected outcome of each spec obvious. *)

module Faults = Dpv_linprog.Faults
module Lp = Dpv_linprog.Lp
module Simplex = Dpv_linprog.Simplex
module Campaign = Dpv_core.Campaign
module Characterizer = Dpv_core.Characterizer
module Journal = Dpv_core.Journal
module Verify = Dpv_core.Verify
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat
module Rng = Dpv_tensor.Rng

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_faults ?seed plan f =
  Fun.protect ~finally:Faults.disable (fun () ->
      Faults.configure ?seed plan;
      f ())

let with_temp_file f =
  let path = Filename.temp_file "dpv_test_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ---- spec parsing and fire semantics ---- *)

let test_parse_spec () =
  (match Faults.parse_spec "seed=7,task-crash=2,deadline-jitter=1" with
  | Ok (7, [ (Faults.Task_crash, 2); (Faults.Deadline_jitter, 1) ]) -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong plan"
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match Faults.parse_spec "lp-trouble=1" with
  | Ok (0, [ (Faults.Lp_trouble, 1) ]) -> ()
  | _ -> Alcotest.fail "seed should default to 0");
  let expect_error spec =
    match Faults.parse_spec spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should be rejected" spec
  in
  expect_error "bogus-site=1";
  expect_error "task-crash=0";
  expect_error "task-crash=x";
  expect_error "task-crash"

let test_disabled_is_inert () =
  Faults.disable ();
  Alcotest.(check bool) "disabled" false (Faults.enabled ());
  for _ = 1 to 5 do
    Alcotest.(check bool) "never fires" false (Faults.fire Faults.Lp_trouble)
  done;
  Alcotest.(check int) "disabled path does not even count occurrences" 0
    (Faults.occurrences Faults.Lp_trouble);
  Alcotest.(check string) "describe" "disabled" (Faults.describe ())

let test_fires_on_nth_once () =
  with_faults ~seed:3 [ (Faults.Task_crash, 2) ] (fun () ->
      let fires = List.init 4 (fun _ -> Faults.fire Faults.Task_crash) in
      Alcotest.(check (list bool)) "fires exactly on the 2nd occurrence"
        [ false; true; false; false ] fires;
      Alcotest.(check int) "fired once" 1 (Faults.fired Faults.Task_crash);
      Alcotest.(check int) "all occurrences counted" 4
        (Faults.occurrences Faults.Task_crash);
      Alcotest.(check bool) "other sites untouched" false
        (Faults.fire Faults.Journal_crash))

(* ---- simplex recovery ---- *)

(* Deterministic feasible bounded LP large enough that one cold solve
   accumulates more pivots than the refactorization period, so the
   periodic refactorization (and its injection site) is reached inside
   a single [resolve].  All-positive Le rows with positive rhs keep the
   origin feasible. *)
let big_lp () =
  let rng = Rng.create 42 in
  let m = ref (Lp.create ()) in
  let vars =
    Array.init 120 (fun _ ->
        let model, v =
          Lp.add_var ~lo:0.0 ~up:(Rng.uniform rng ~lo:1.0 ~hi:10.0) !m
        in
        m := model;
        v)
  in
  for _ = 1 to 90 do
    let terms =
      List.init 6 (fun _ ->
          (Rng.uniform rng ~lo:0.1 ~hi:3.0, Rng.pick rng vars))
    in
    m := Lp.add_constraint !m terms Lp.Le (Rng.uniform rng ~lo:5.0 ~hi:20.0)
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.uniform rng ~lo:(-1.0) ~hi:2.0, v)) vars)
  in
  m := Lp.set_objective !m Lp.Maximize obj;
  (!m, vars.(0))

let check_status_agrees label got reference =
  match (got, reference) with
  | Simplex.Optimal { objective = x; _ }, Simplex.Optimal { objective = y; _ }
    ->
      Alcotest.(check (float 1e-6)) (label ^ ": objective agrees") y x
  | Simplex.Infeasible, Simplex.Infeasible
  | Simplex.Unbounded, Simplex.Unbounded ->
      ()
  | _ -> Alcotest.failf "%s: statuses disagree" label

(* Silent pivot corruption must be caught by the post-solve residual
   check and rescued by the dense fallback, and the handle must stay
   usable afterwards. *)
let test_pivot_corruption_rescued () =
  let model, _ = big_lp () in
  let reference = Simplex.solve_dense model in
  let handle = Simplex.create model in
  with_faults ~seed:11 [ (Faults.Pivot_corrupt, 1) ] (fun () ->
      check_status_agrees "corrupted solve" (Simplex.resolve handle) reference;
      Alcotest.(check int) "the corruption actually happened" 1
        (Faults.fired Faults.Pivot_corrupt);
      let c = Simplex.counters handle in
      Alcotest.(check bool) "the dense fallback rescued the solve" true
        (c.Simplex.fallbacks >= 1));
  check_status_agrees "post-recovery resolve" (Simplex.resolve handle)
    reference

(* Regression for the handle-state fix: a singular refactorization
   (reached by letting warm re-solves accumulate pivots past the
   refactorization period) is rescued by the dense fallback, and
   because the rescue resets the stored basis, resolving the SAME
   handle again must agree with the stateless dense solver on the
   current bounds. *)
let test_singular_refactorization_recovery () =
  let model0, _ = big_lp () in
  let handle = Simplex.create model0 in
  ignore (Simplex.resolve handle);
  let flip_set = List.init 40 Fun.id in
  (* mirror of the bounds currently loaded into the handle *)
  let current = ref model0 in
  with_faults ~seed:5 [ (Faults.Refactor_singular, 1) ] (fun () ->
      let round = ref 0 in
      while Faults.fired Faults.Refactor_singular = 0 && !round < 200 do
        incr round;
        let changes =
          List.map
            (fun v ->
              let lo, up0 = Lp.var_bounds model0 v in
              let up =
                if (!round + v) mod 2 = 0 then up0
                else Option.map (fun u -> u *. 0.6) up0
              in
              (v, lo, up))
            flip_set
        in
        List.iter
          (fun (v, lo, up) ->
            current := Lp.set_var_bounds !current v ~lo ~up)
          changes;
        ignore (Simplex.resolve ~bound_changes:changes handle)
      done;
      Alcotest.(check int) "the injected singularity was reached" 1
        (Faults.fired Faults.Refactor_singular);
      let c = Simplex.counters handle in
      Alcotest.(check bool) "rescued by the dense fallback" true
        (c.Simplex.fallbacks >= 1));
  (* The rescue reset the basis; the next resolve must agree with a
     stateless dense solve of the same current bounds. *)
  check_status_agrees "post-recovery resolve" (Simplex.resolve handle)
    (Simplex.solve_dense !current)

(* The lp-trouble site fires outside the engine's internal rescue, so
   the exception must escape [resolve] — that is the contract the
   [Retry] ladder builds on — and the handle must still answer
   correctly on the next call. *)
let test_lp_trouble_escapes_resolve () =
  let model, _ = big_lp () in
  let handle = Simplex.create model in
  with_faults [ (Faults.Lp_trouble, 1) ] (fun () ->
      (match Simplex.resolve handle with
      | exception Simplex.Numerical_trouble _ -> ()
      | _ -> Alcotest.fail "expected Numerical_trouble to escape resolve");
      check_status_agrees "handle survives the escape"
        (Simplex.resolve handle) (Simplex.solve_dense model))

(* ---- campaign-level ladder, isolation, journaling ---- *)

let perception =
  Network.create ~input_dim:1
    [
      Layer.dense
        ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |])
        ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let characterizer =
  {
    Characterizer.head =
      Network.create ~input_dim:2
        [
          Layer.dense
            ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |])
            ~bias:[| -0.5 |];
        ];
    cut = 2;
    property_name = "x-at-least-half";
  }

let visited_features =
  Array.init 41 (fun i ->
      let x = -1.0 +. (float_of_int i /. 20.0) in
      Network.forward_upto perception ~cut:2 [| x |])

let risk_ge threshold =
  Risk.make
    ~name:(Printf.sprintf "out>=%g" threshold)
    [ Risk.output_ge 0 threshold ]

let risk_le threshold =
  Risk.make
    ~name:(Printf.sprintf "out<=%g" threshold)
    [ Risk.output_le 0 threshold ]

let box_queries () =
  List.map
    (fun (label, psi) ->
      Campaign.query ~label ~characterizer ~psi
        ~bounds:(Verify.Data_box visited_features) ())
    [
      ("reach", risk_ge 0.9);
      ("unreach", risk_ge 1.5);
      ("neg", risk_le (-0.2));
      ("neg-deep", risk_le (-0.8));
    ]

let outcome_verdicts (report : Campaign.report) =
  List.map
    (fun (qr : Campaign.query_report) ->
      match qr.Campaign.outcome with
      | Campaign.Done r -> Campaign.verdict_word r.Verify.verdict
      | Campaign.Crashed _ -> "crashed"
      | Campaign.Skipped _ -> "skipped")
    report.Campaign.query_reports

let clean_verdicts () =
  Faults.disable ();
  outcome_verdicts (Campaign.run ~runners:1 ~perception (box_queries ()))

(* Escaped numerical trouble earns one dense re-solve: same verdicts as
   a clean run, with the first query flagged as retried. *)
let test_campaign_dense_retry () =
  let clean = clean_verdicts () in
  let report =
    with_faults [ (Faults.Lp_trouble, 1) ] (fun () ->
        Campaign.run ~runners:1 ~perception (box_queries ()))
  in
  Alcotest.(check (list string)) "verdicts match the clean run" clean
    (outcome_verdicts report);
  Alcotest.(check int) "exactly one query retried" 1 report.Campaign.retried;
  Alcotest.(check bool) "retry is not degradation" false
    report.Campaign.degraded;
  (* Which query draws the injected occurrence depends on pool
     scheduling order; what matters is that exactly one query took the
     dense rung with exactly one extra attempt. *)
  match
    List.filter
      (fun (qr : Campaign.query_report) -> qr.Campaign.attempts > 1)
      report.Campaign.query_reports
  with
  | [ qr ] ->
      Alcotest.(check bool) "the retried query took the dense rung" true
        qr.Campaign.dense_retry;
      Alcotest.(check int) "two attempts" 2 qr.Campaign.attempts
  | l -> Alcotest.failf "expected exactly one retried query, got %d"
           (List.length l)

(* An early deadline expiry with campaign budget remaining earns one
   re-carved re-solve. *)
let test_campaign_deadline_retry () =
  let clean = clean_verdicts () in
  let report =
    with_faults [ (Faults.Deadline_jitter, 2) ] (fun () ->
        Campaign.run ~runners:1 ~budget_s:60.0 ~perception (box_queries ()))
  in
  Alcotest.(check (list string)) "verdicts match the clean run" clean
    (outcome_verdicts report);
  Alcotest.(check int) "exactly one query retried" 1 report.Campaign.retried;
  Alcotest.(check bool) "retry is not degradation" false
    report.Campaign.degraded;
  Alcotest.(check bool) "some query took the deadline rung" true
    (List.exists
       (fun (qr : Campaign.query_report) -> qr.Campaign.deadline_retry)
       report.Campaign.query_reports)

(* A query task that dies must yield one [Crashed] record while every
   other query still gets its clean-run verdict. *)
let test_campaign_crash_isolation () =
  let clean = clean_verdicts () in
  let report =
    with_faults [ (Faults.Task_crash, 2) ] (fun () ->
        Campaign.run ~runners:1 ~perception (box_queries ()))
  in
  Alcotest.(check int) "one crash" 1 report.Campaign.crashed;
  Alcotest.(check bool) "crash degrades the report" true
    report.Campaign.degraded;
  List.iteri
    (fun i (qr : Campaign.query_report) ->
      let expected = List.nth clean i in
      match qr.Campaign.outcome with
      | Campaign.Crashed reason ->
          Alcotest.(check bool) "crash reason names the injection" true
            (contains ~needle:"injected task crash" reason)
      | Campaign.Done r ->
          Alcotest.(check string)
            (qr.Campaign.query.Campaign.label ^ ": survivors keep verdicts")
            expected
            (Campaign.verdict_word r.Verify.verdict)
      | Campaign.Skipped why ->
          Alcotest.failf "unexpected skip: %s" why)
    report.Campaign.query_reports

(* A shared-encoding build that raises (phase 1 runs before per-task
   isolation) must be charged to the query that triggered it —
   recorded as [Crashed "encoding failed: ..."] — while every other
   query still completes.  Driven by a query whose cut index is out of
   range, which makes the suffix slice raise during the build. *)
let test_campaign_phase1_crash_isolation () =
  Faults.disable ();
  let bad =
    Campaign.query ~label:"bad-cut"
      ~characterizer:{ characterizer with Characterizer.cut = 99 }
      ~psi:(risk_ge 0.9)
      ~bounds:(Verify.Data_box visited_features) ()
  in
  let good =
    Campaign.query ~label:"good" ~characterizer ~psi:(risk_ge 1.5)
      ~bounds:(Verify.Data_box visited_features) ()
  in
  let report = Campaign.run ~runners:1 ~perception [ bad; good ] in
  Alcotest.(check int) "one crash" 1 report.Campaign.crashed;
  Alcotest.(check bool) "crash degrades the report" true
    report.Campaign.degraded;
  match report.Campaign.query_reports with
  | [ first; second ] -> (
      (match first.Campaign.outcome with
      | Campaign.Crashed reason ->
          Alcotest.(check bool) "reason names the encoding phase" true
            (contains ~needle:"encoding failed" reason)
      | _ -> Alcotest.fail "the build-triggering query should crash");
      match second.Campaign.outcome with
      | Campaign.Done _ -> ()
      | _ -> Alcotest.fail "the healthy query should still complete")
  | _ -> Alcotest.fail "expected two query reports"

(* A failed journal write is counted, not fatal: the campaign finishes
   and a later successful append rewrites the complete journal. *)
let test_campaign_journal_write_failure () =
  with_temp_file (fun path ->
      let report =
        with_faults [ (Faults.Journal_crash, 1) ] (fun () ->
            Campaign.run ~runners:1 ~journal:path ~perception (box_queries ()))
      in
      Alcotest.(check int) "one journal write failure" 1
        report.Campaign.journal_write_failures;
      Alcotest.(check int) "no crashes" 0 report.Campaign.crashed;
      match Journal.load ~path with
      | Error e -> Alcotest.failf "final journal unreadable: %s" e
      | Ok entries ->
          Alcotest.(check int)
            "later appends rewrote the full journal" 4 (List.length entries))

(* Journal round-trip and resume: answer the first two queries, kill
   the campaign (conceptually), resume over all four — the two settled
   verdicts are replayed bit-identically and only the rest solve. *)
let test_campaign_journal_resume () =
  Faults.disable ();
  let qs = box_queries () in
  let clean = clean_verdicts () in
  with_temp_file (fun path ->
      let partial =
        Campaign.run ~runners:1 ~journal:path ~perception
          (List.filteri (fun i _ -> i < 2) qs)
      in
      Alcotest.(check int) "partial run journaled cleanly" 0
        partial.Campaign.journal_write_failures;
      let entries =
        match Journal.load ~path with
        | Ok es -> es
        | Error e -> Alcotest.failf "cannot load journal: %s" e
      in
      Alcotest.(check int) "two settled entries" 2 (List.length entries);
      let resumed =
        Campaign.run ~runners:1 ~journal:path ~resume:entries ~perception qs
      in
      Alcotest.(check int) "two queries replayed" 2 resumed.Campaign.resumed;
      Alcotest.(check (list bool)) "replayed queries are flagged"
        [ true; true; false; false ]
        (List.map
           (fun (qr : Campaign.query_report) -> qr.Campaign.from_journal)
           resumed.Campaign.query_reports);
      Alcotest.(check (list string)) "resumed verdicts match a clean full run"
        clean (outcome_verdicts resumed);
      Alcotest.(check bool) "resume is not degradation" false
        resumed.Campaign.degraded;
      match Journal.load ~path with
      | Error e -> Alcotest.failf "post-resume journal unreadable: %s" e
      | Ok es ->
          Alcotest.(check int) "journal now describes the whole campaign" 4
            (List.length es))

let tests =
  [
    Alcotest.test_case "parse_spec" `Quick test_parse_spec;
    Alcotest.test_case "disabled harness is inert" `Quick
      test_disabled_is_inert;
    Alcotest.test_case "fires on the nth occurrence, once" `Quick
      test_fires_on_nth_once;
    Alcotest.test_case "pivot corruption rescued by residual check" `Quick
      test_pivot_corruption_rescued;
    Alcotest.test_case "singular refactorization recovery" `Quick
      test_singular_refactorization_recovery;
    Alcotest.test_case "lp-trouble escapes resolve" `Quick
      test_lp_trouble_escapes_resolve;
    Alcotest.test_case "campaign dense retry" `Quick test_campaign_dense_retry;
    Alcotest.test_case "campaign deadline retry" `Quick
      test_campaign_deadline_retry;
    Alcotest.test_case "campaign crash isolation" `Quick
      test_campaign_crash_isolation;
    Alcotest.test_case "campaign phase-1 crash isolation" `Quick
      test_campaign_phase1_crash_isolation;
    Alcotest.test_case "campaign journal write failure" `Quick
      test_campaign_journal_write_failure;
    Alcotest.test_case "campaign journal resume" `Quick
      test_campaign_journal_resume;
  ]
