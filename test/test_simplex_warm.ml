(* Tests for the revised bounded-variable simplex: anti-cycling on
   Beale's example, differential agreement with the retained dense
   reference, and warm-start behavior of persistent handles. *)

module Lp = Dpv_linprog.Lp
module Simplex = Dpv_linprog.Simplex
module Milp = Dpv_linprog.Milp
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-6))

let expect_optimal = function
  | Simplex.Optimal { objective; solution } -> (objective, solution)
  | Simplex.Infeasible -> Alcotest.fail "expected optimal, got infeasible"
  | Simplex.Unbounded -> Alcotest.fail "expected optimal, got unbounded"

(* Beale's example, the classic LP on which Dantzig pricing cycles
   forever without an anti-cycling guard.  Optimum: -0.05. *)
let beale () =
  let m = Lp.create () in
  let m, x1 = Lp.add_var ~lo:0.0 m in
  let m, x2 = Lp.add_var ~lo:0.0 m in
  let m, x3 = Lp.add_var ~lo:0.0 m in
  let m, x4 = Lp.add_var ~lo:0.0 m in
  let m =
    Lp.add_constraint m
      [ (0.25, x1); (-60.0, x2); (-1.0 /. 25.0, x3); (9.0, x4) ]
      Lp.Le 0.0
  in
  let m =
    Lp.add_constraint m
      [ (0.5, x1); (-90.0, x2); (-1.0 /. 50.0, x3); (3.0, x4) ]
      Lp.Le 0.0
  in
  let m = Lp.add_constraint m [ (1.0, x3) ] Lp.Le 1.0 in
  Lp.set_objective m Lp.Minimize
    [ (-0.75, x1); (150.0, x2); (-0.02, x3); (6.0, x4) ]

let test_beale_no_cycling () =
  let m = beale () in
  let obj, _ = expect_optimal (Simplex.solve m) in
  check_float "revised engine optimum" (-0.05) obj;
  let obj_dense, _ = expect_optimal (Simplex.solve_dense m) in
  check_float "dense reference optimum" (-0.05) obj_dense

(* ---- Differential suite: the new engine against the retained dense
   reference on randomized LPs covering every bound shape (two-sided,
   one-sided, free) and every relation. ---- *)

let random_lp rng =
  let nv = 1 + Rng.int rng 5 in
  let nc = 1 + Rng.int rng 5 in
  let m = ref (Lp.create ()) in
  let vars =
    Array.init nv (fun _ ->
        let lo, up =
          match Rng.int rng 4 with
          | 0 ->
              let l = Rng.uniform rng ~lo:(-5.0) ~hi:2.0 in
              (Some l, Some (l +. Rng.uniform rng ~lo:0.0 ~hi:8.0))
          | 1 -> (Some (Rng.uniform rng ~lo:(-5.0) ~hi:2.0), None)
          | 2 -> (None, Some (Rng.uniform rng ~lo:(-2.0) ~hi:5.0))
          | _ -> (None, None)
        in
        let model, v = !m |> fun mm -> Lp.add_var ?lo ?up mm in
        m := model;
        v)
  in
  for _ = 1 to nc do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.uniform rng ~lo:(-3.0) ~hi:3.0, v)) vars)
    in
    let rel =
      match Rng.int rng 5 with 0 -> Lp.Ge | 1 -> Lp.Eq | _ -> Lp.Le
    in
    let rhs = Rng.uniform rng ~lo:(-5.0) ~hi:15.0 in
    m := Lp.add_constraint !m terms rel rhs
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, v)) vars)
  in
  let sense = if Rng.bool rng then Lp.Maximize else Lp.Minimize in
  Lp.set_objective !m sense obj

let status_word = function
  | Simplex.Optimal _ -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"

let test_differential_vs_dense () =
  let rng = Rng.create 20260807 in
  for case = 1 to 240 do
    let m = random_lp rng in
    let fast = Simplex.solve m in
    let dense = Simplex.solve_dense m in
    let ctx = Printf.sprintf "case %d" case in
    Alcotest.(check string)
      (ctx ^ ": status") (status_word dense) (status_word fast);
    match (fast, dense) with
    | Simplex.Optimal { objective = of_; solution }, Simplex.Optimal { objective = od; _ }
      ->
        Alcotest.(check (float 1e-6)) (ctx ^ ": objective") od of_;
        Alcotest.(check bool)
          (ctx ^ ": solution feasible") true
          (Lp.check_feasible ~tol:1e-5 m solution)
    | _ -> ()
  done

(* ---- Warm starts: a handle re-solved after bound changes must agree
   with fresh solves of the equivalently-modified model, while only the
   first resolve is cold. ---- *)

let bounded_model () =
  (* max x + 2y + 3z  st  x+y+z <= 10, x - y >= -4, y + 2z <= 12,
     x in [0,6], y in [0,5], z in [0,4]. *)
  let m = Lp.create () in
  let m, x = Lp.add_var ~lo:0.0 ~up:6.0 m in
  let m, y = Lp.add_var ~lo:0.0 ~up:5.0 m in
  let m, z = Lp.add_var ~lo:0.0 ~up:4.0 m in
  let m = Lp.add_constraint m [ (1.0, x); (1.0, y); (1.0, z) ] Lp.Le 10.0 in
  let m = Lp.add_constraint m [ (1.0, x); (-1.0, y) ] Lp.Ge (-4.0) in
  let m = Lp.add_constraint m [ (1.0, y); (2.0, z) ] Lp.Le 12.0 in
  (Lp.set_objective m Lp.Maximize [ (1.0, x); (2.0, y); (3.0, z) ], x, y, z)

let test_warm_bound_flips () =
  let m, x, y, _z = bounded_model () in
  let h = Simplex.create m in
  (* A branch-and-bound-like sequence of bound changes on x and y. *)
  let steps =
    [
      (x, Some 0.0, Some 6.0);
      (x, Some 0.0, Some 2.0);
      (x, Some 3.0, Some 6.0);
      (y, Some 0.0, Some 1.0);
      (y, Some 2.0, Some 5.0);
      (x, Some 0.0, Some 0.0);
      (x, Some 0.0, Some 6.0);
    ]
  in
  let model = ref m in
  List.iteri
    (fun i (v, lo, up) ->
      model := Lp.set_var_bounds !model v ~lo ~up;
      let warm = Simplex.resolve ~bound_changes:[ (v, lo, up) ] h in
      let fresh = Simplex.solve_dense !model in
      let ctx = Printf.sprintf "step %d" i in
      match (warm, fresh) with
      | Simplex.Optimal { objective = a; solution }, Simplex.Optimal { objective = b; _ }
        ->
          Alcotest.(check (float 1e-6)) (ctx ^ ": objective") b a;
          Alcotest.(check bool)
            (ctx ^ ": feasible") true
            (Lp.check_feasible ~tol:1e-5 !model solution)
      | Simplex.Infeasible, Simplex.Infeasible -> ()
      | _ ->
          Alcotest.failf "%s: engines disagree (%s vs %s)" ctx
            (status_word warm) (status_word fresh))
    steps;
  let c = Simplex.counters h in
  Alcotest.(check int) "cold starts" 1 c.Simplex.cold_starts;
  Alcotest.(check int)
    "warm starts" (List.length steps - 1) c.Simplex.warm_starts;
  Alcotest.(check int) "no fallbacks" 0 c.Simplex.fallbacks

let test_warm_objective_changes () =
  (* The OBBT workload: one matrix, objective sweeps over coordinates. *)
  let m, x, y, z = bounded_model () in
  let h = Simplex.create m in
  let objectives =
    [
      (Lp.Minimize, [ (1.0, x) ]);
      (Lp.Maximize, [ (1.0, x) ]);
      (Lp.Minimize, [ (1.0, y) ]);
      (Lp.Maximize, [ (1.0, y) ]);
      (Lp.Minimize, [ (1.0, z) ]);
      (Lp.Maximize, [ (1.0, z) ]);
    ]
  in
  List.iteri
    (fun i (sense, terms) ->
      Simplex.set_objective h sense terms;
      let warm = Simplex.resolve h in
      let fresh = Simplex.solve_dense (Lp.set_objective m sense terms) in
      let a, _ = expect_optimal warm in
      let b, _ = expect_optimal fresh in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "objective %d" i) b a)
    objectives;
  let c = Simplex.counters h in
  Alcotest.(check int) "cold starts" 1 c.Simplex.cold_starts;
  Alcotest.(check int) "warm starts" 5 c.Simplex.warm_starts

let test_milp_counters_surface () =
  (* 0/1 knapsack: max 6a+10b+12c st a+2b+3c <= 5.  The sequential B&B
     shares one handle, so exactly one node LP is cold and the counters
     must account for every LP solved. *)
  let m = Lp.create () in
  let m, a = Lp.add_var ~kind:Lp.Binary m in
  let m, b = Lp.add_var ~kind:Lp.Binary m in
  let m, c = Lp.add_var ~kind:Lp.Binary m in
  let m = Lp.add_constraint m [ (1.0, a); (2.0, b); (3.0, c) ] Lp.Le 5.0 in
  let m = Lp.set_objective m Lp.Maximize [ (6.0, a); (10.0, b); (12.0, c) ] in
  let result, stats = Milp.solve_with_stats m in
  (match result with
  | Milp.Optimal { objective; _ } -> check_float "objective" 22.0 objective
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check int) "one cold start" 1 stats.Milp.cold_starts;
  Alcotest.(check int)
    "every LP accounted" stats.Milp.lp_solved
    (stats.Milp.warm_starts + stats.Milp.cold_starts);
  Alcotest.(check bool) "pivots counted" true (stats.Milp.pivots > 0)

let tests =
  [
    Alcotest.test_case "beale cycling regression" `Quick test_beale_no_cycling;
    Alcotest.test_case "differential vs dense (240 LPs)" `Quick
      test_differential_vs_dense;
    Alcotest.test_case "warm bound flips" `Quick test_warm_bound_flips;
    Alcotest.test_case "warm objective changes" `Quick
      test_warm_objective_changes;
    Alcotest.test_case "milp surfaces solver counters" `Quick
      test_milp_counters_surface;
  ]
