let () =
  Alcotest.run "dpv"
    [
      ("tensor", Test_tensor.tests);
      ("linprog", Test_linprog.tests);
      ("simplex-warm", Test_simplex_warm.tests);
      ("milp-parallel", Test_milp_parallel.tests);
      ("pool", Test_pool.tests);
      ("faults", Test_faults.tests);
      ("obs", Test_obs.tests);
      ("solver-properties", Test_solver_properties.tests);
      ("nn", Test_nn.tests);
      ("conv", Test_conv.tests);
      ("train", Test_train.tests);
      ("absint", Test_absint.tests);
      ("absint-guided", Test_absint_guided.tests);
      ("absint-incremental", Test_absint_incremental.tests);
      ("spec", Test_spec.tests);
      ("scenario", Test_scenario.tests);
      ("monitor", Test_monitor.tests);
      ("controller", Test_controller.tests);
      ("core", Test_core.tests);
      ("campaign", Test_campaign.tests);
      ("extensions", Test_extensions.tests);
      ("certificate", Test_certificate.tests);
      ("determinism", Test_workflow_determinism.tests);
      ("serve", Test_serve.tests);
    ]
