(* Tests for convolution layers: direct forward versus the dense
   lowering (the equivalence the verifier relies on), gradients,
   serialization and abstract-domain soundness through conv blocks. *)

module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Serialize = Dpv_nn.Serialize
module Grad = Dpv_train.Grad
module Loss = Dpv_train.Loss
module Optimizer = Dpv_train.Optimizer
module Dataset = Dpv_train.Dataset
module Trainer = Dpv_train.Trainer
module Box_domain = Dpv_absint.Box_domain
module Propagate = Dpv_absint.Propagate
module Interval = Dpv_absint.Interval
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

let shape ?(padding = 0) ?(stride = 1) ~ic ~ih ~iw ~oc ~k () =
  {
    Layer.in_channels = ic;
    in_height = ih;
    in_width = iw;
    out_channels = oc;
    kernel_h = k;
    kernel_w = k;
    stride;
    padding;
  }

(* 1x3x3 input, single 2x2 averaging-style kernel, stride 1 -> 2x2 out *)
let test_conv_forward_hand_computed () =
  let s = shape ~ic:1 ~ih:3 ~iw:3 ~oc:1 ~k:2 () in
  let weights = Mat.of_rows [| [| 1.0; 1.0; 1.0; 1.0 |] |] in
  let conv = Layer.conv2d ~shape:s ~weights ~bias:[| 0.5 |] in
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 |] in
  let y = Layer.forward conv x in
  Alcotest.(check int) "out dim" 4 (Vec.dim y);
  (* windows: (1+2+4+5), (2+3+5+6), (4+5+7+8), (5+6+8+9), each + 0.5 *)
  Alcotest.(check bool) "values" true
    (Vec.approx_equal y [| 12.5; 16.5; 24.5; 28.5 |])

let test_conv_output_geometry () =
  let s = shape ~ic:1 ~ih:8 ~iw:6 ~oc:4 ~k:3 ~stride:2 ~padding:1 () in
  Alcotest.(check int) "out h" 4 (Layer.conv_out_height s);
  Alcotest.(check int) "out w" 3 (Layer.conv_out_width s);
  Alcotest.(check (option int)) "layer out dim" (Some 48)
    (Layer.out_dim (Init.he_conv (Rng.create 1) ~shape:s))

let test_conv_padding_zeros () =
  (* 1x1 input with 3x3 kernel, padding 1: only the center tap sees x. *)
  let s = shape ~ic:1 ~ih:1 ~iw:1 ~oc:1 ~k:3 ~padding:1 () in
  let weights =
    Mat.of_rows [| [| 1.0; 1.0; 1.0; 1.0; 10.0; 1.0; 1.0; 1.0; 1.0 |] |]
  in
  let conv = Layer.conv2d ~shape:s ~weights ~bias:[| 0.0 |] in
  let y = Layer.forward conv [| 3.0 |] in
  check_float "only center" 30.0 y.(0)

let test_conv_validation () =
  Alcotest.check_raises "kernel too large"
    (Invalid_argument "Layer.conv2d: kernel does not fit the input") (fun () ->
      ignore
        (Layer.conv2d
           ~shape:(shape ~ic:1 ~ih:2 ~iw:2 ~oc:1 ~k:3 ())
           ~weights:(Mat.zeros ~rows:1 ~cols:9)
           ~bias:[| 0.0 |]));
  Alcotest.check_raises "weight shape"
    (Invalid_argument "Layer.conv2d: weight matrix shape mismatch") (fun () ->
      ignore
        (Layer.conv2d
           ~shape:(shape ~ic:1 ~ih:4 ~iw:4 ~oc:1 ~k:3 ())
           ~weights:(Mat.zeros ~rows:1 ~cols:8)
           ~bias:[| 0.0 |]))

(* The verifier's key assumption: conv and its dense lowering are the
   same affine map. *)
let qcheck_lowering_equivalence =
  QCheck.Test.make ~count:60 ~name:"conv forward = lowered dense forward"
    QCheck.(quad small_int (int_range 1 2) (int_range 1 3) (int_range 0 1))
    (fun (seed, ic, oc, padding) ->
      let rng = Rng.create (seed + 400) in
      let stride = 1 + Rng.int rng 2 in
      let s =
        {
          Layer.in_channels = ic;
          in_height = 4 + Rng.int rng 3;
          in_width = 4 + Rng.int rng 3;
          out_channels = oc;
          kernel_h = 2 + Rng.int rng 2;
          kernel_w = 2 + Rng.int rng 2;
          stride;
          padding;
        }
      in
      if Layer.conv_out_height s < 1 || Layer.conv_out_width s < 1 then true
      else begin
        let conv = Init.he_conv rng ~shape:s in
        let dense = Layer.lower_to_dense conv in
        let dim = ic * s.Layer.in_height * s.Layer.in_width in
        let ok = ref true in
        for _ = 1 to 5 do
          let x = Array.init dim (fun _ -> Rng.gaussian rng) in
          if
            not
              (Vec.approx_equal ~tol:1e-9 (Layer.forward conv x)
                 (Layer.forward dense x))
          then ok := false
        done;
        !ok
      end)

let test_lower_batch_norm () =
  let bn =
    Layer.Batch_norm
      {
        gamma = [| 2.0; 1.0 |];
        beta = [| 1.0; 0.0 |];
        mean = [| 0.0; 1.0 |];
        var = [| 1.0; 4.0 |];
        eps = 0.0;
      }
  in
  let dense = Layer.lower_to_dense bn in
  let x = [| 3.0; 5.0 |] in
  Alcotest.(check bool) "bn lowering agrees" true
    (Vec.approx_equal ~tol:1e-9 (Layer.forward bn x) (Layer.forward dense x))

let test_lower_rejects_relu () =
  Alcotest.check_raises "relu"
    (Invalid_argument "Layer.lower_to_dense: relu is not affine") (fun () ->
      ignore (Layer.lower_to_dense Layer.Relu))

(* conv gradcheck against finite differences *)
let test_conv_gradcheck () =
  let rng = Rng.create 401 in
  let s = shape ~ic:1 ~ih:4 ~iw:4 ~oc:2 ~k:3 ~stride:1 () in
  let conv = Init.he_conv rng ~shape:s in
  let net =
    Network.create ~input_dim:16
      [ conv; Layer.Tanh; Init.xavier_dense rng ~in_dim:8 ~out_dim:1 ]
  in
  let input = Array.init 16 (fun i -> 0.1 *. float_of_int (i - 8)) in
  let target = [| 0.5 |] in
  let _, grads = Grad.sample_gradient net Loss.Mse ~input ~target in
  let weights, d_weights =
    match (Network.layer net 1, grads.(0)) with
    | Layer.Conv2d { weights; _ }, Grad.Dense_grad { d_weights; _ } ->
        (weights, d_weights)
    | _ -> Alcotest.fail "expected conv grad"
  in
  let eps = 1e-5 in
  for i = 0 to Mat.rows weights - 1 do
    for j = 0 to Mat.cols weights - 1 do
      let orig = Mat.get weights i j in
      let loss () =
        Loss.value Loss.Mse ~output:(Network.forward net input) ~target
      in
      Mat.set weights i j (orig +. eps);
      let plus = loss () in
      Mat.set weights i j (orig -. eps);
      let minus = loss () in
      Mat.set weights i j orig;
      let numeric = (plus -. minus) /. (2.0 *. eps) in
      let analytic = Mat.get d_weights i j in
      if Float.abs (numeric -. analytic) > 1e-4 *. Float.max 1.0 (Float.abs numeric)
      then Alcotest.failf "conv w[%d,%d]: %g vs %g" i j analytic numeric
    done
  done

let test_conv_input_gradient () =
  (* dL/dx through a conv checked against finite differences. *)
  let rng = Rng.create 402 in
  let s = shape ~ic:1 ~ih:3 ~iw:3 ~oc:1 ~k:2 () in
  let conv = Init.he_conv rng ~shape:s in
  let net = Network.create ~input_dim:9 [ conv ] in
  let input = Array.init 9 (fun i -> 0.2 *. float_of_int i) in
  let target = [| 0.1; -0.1; 0.3; 0.2 |] in
  let activations = Network.activations net input in
  let d_output =
    Loss.gradient Loss.Mse ~output:activations.(1) ~target
  in
  let _, d_input = Grad.backward net ~activations ~d_output in
  let eps = 1e-5 in
  for i = 0 to 8 do
    let orig = input.(i) in
    let loss () = Loss.value Loss.Mse ~output:(Network.forward net input) ~target in
    input.(i) <- orig +. eps;
    let plus = loss () in
    input.(i) <- orig -. eps;
    let minus = loss () in
    input.(i) <- orig;
    let numeric = (plus -. minus) /. (2.0 *. eps) in
    if Float.abs (numeric -. d_input.(i)) > 1e-5 then
      Alcotest.failf "dx[%d]: %g vs %g" i d_input.(i) numeric
  done

let test_conv_net_builder () =
  let rng = Rng.create 403 in
  let net =
    Init.conv_net rng ~in_height:8 ~in_width:8 ~channels:[ 2; 4 ]
      ~hidden:[ 10 ] ~output_dim:2
  in
  Alcotest.(check int) "input dim" 64 (Network.input_dim net);
  Alcotest.(check int) "output dim" 2 (Network.output_dim net);
  Alcotest.(check bool) "is pwl" true (Network.is_piecewise_linear net);
  let x = Array.init 64 (fun i -> float_of_int i /. 64.0) in
  Alcotest.(check int) "forward works" 2 (Vec.dim (Network.forward net x))

let test_conv_serialize_roundtrip () =
  let rng = Rng.create 404 in
  let net =
    Init.conv_net rng ~in_height:6 ~in_width:6 ~channels:[ 2 ] ~hidden:[ 5 ]
      ~output_dim:1
  in
  let net' = Serialize.of_string (Serialize.to_string net) in
  let x = Array.init 36 (fun i -> sin (float_of_int i)) in
  Alcotest.(check bool) "exact roundtrip" true
    (Network.forward net x = Network.forward net' x)

let test_conv_training_reduces_loss () =
  (* Learn "mean brightness" from 4x4 images with a small conv net. *)
  let rng = Rng.create 405 in
  let inputs =
    Array.init 80 (fun _ -> Array.init 16 (fun _ -> Rng.float rng 1.0))
  in
  let targets = Array.map (fun x -> [| Vec.mean x |]) inputs in
  let dataset = Dataset.create ~inputs ~targets in
  let net =
    Init.conv_net (Rng.create 406) ~in_height:4 ~in_width:4 ~channels:[ 2 ]
      ~hidden:[] ~output_dim:1
  in
  let opt = Optimizer.adam ~lr:0.01 net in
  let config = { Trainer.default_config with epochs = 60; batch_size = 16 } in
  let history = Trainer.fit ~rng config opt net dataset in
  Alcotest.(check bool) "loss drops 5x" true
    (history.Trainer.epoch_losses.(59) < history.Trainer.epoch_losses.(0) /. 5.0)

let qcheck_conv_box_soundness =
  QCheck.Test.make ~count:40 ~name:"box propagation sound through conv nets"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 410) in
      let net =
        Init.conv_net rng ~in_height:5 ~in_width:5 ~channels:[ 2 ] ~hidden:[ 4 ]
          ~output_dim:2
      in
      let input_box = Box_domain.uniform ~dim:25 ~lo:0.0 ~hi:1.0 in
      let bounds = Propagate.output_bounds Propagate.Box net ~input_box in
      let sample_rng = Rng.create (seed + 411) in
      let ok = ref true in
      for _ = 1 to 10 do
        let x = Box_domain.sample sample_rng input_box in
        let y = Network.forward net x in
        Array.iteri
          (fun i v -> if not (Interval.contains bounds.(i) v) then ok := false)
          y
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "conv forward hand-computed" `Quick test_conv_forward_hand_computed;
    Alcotest.test_case "conv output geometry" `Quick test_conv_output_geometry;
    Alcotest.test_case "conv padding zeros" `Quick test_conv_padding_zeros;
    Alcotest.test_case "conv validation" `Quick test_conv_validation;
    QCheck_alcotest.to_alcotest qcheck_lowering_equivalence;
    Alcotest.test_case "lower batch norm" `Quick test_lower_batch_norm;
    Alcotest.test_case "lower rejects relu" `Quick test_lower_rejects_relu;
    Alcotest.test_case "conv gradcheck (weights)" `Quick test_conv_gradcheck;
    Alcotest.test_case "conv input gradient" `Quick test_conv_input_gradient;
    Alcotest.test_case "conv net builder" `Quick test_conv_net_builder;
    Alcotest.test_case "conv serialize roundtrip" `Quick test_conv_serialize_roundtrip;
    Alcotest.test_case "conv training" `Quick test_conv_training_reduces_loss;
    QCheck_alcotest.to_alcotest qcheck_conv_box_soundness;
  ]
