(* Tests for the pure-pursuit controller and the closed-loop simulation. *)

module Controller = Dpv_scenario.Controller
module Road = Dpv_scenario.Road
module Camera = Dpv_scenario.Camera
module Affordance = Dpv_scenario.Affordance

let check_float = Alcotest.(check (float 1e-9))

let cam = Camera.default_config

let test_pure_pursuit_formula () =
  let cmd = Controller.pure_pursuit ~waypoint:2.0 ~lookahead:20.0 in
  check_float "2w/L^2" 0.01 cmd.Controller.curvature;
  let straight = Controller.pure_pursuit ~waypoint:0.0 ~lookahead:25.0 in
  check_float "zero" 0.0 straight.Controller.curvature

let test_pure_pursuit_steady_state () =
  (* Perfect tracking on a constant curve: the ground-truth waypoint is
     0.5*k*L^2, so the command equals the road curvature. *)
  let k = -0.015 in
  let w = 0.5 *. k *. Affordance.lookahead *. Affordance.lookahead in
  let cmd = Controller.pure_pursuit ~waypoint:w ~lookahead:Affordance.lookahead in
  check_float "cmd = road curvature" k cmd.Controller.curvature

let oracle_trace ?(initial_offset = 0.0) ?(initial_heading_error = 0.0) road =
  let state_ref = ref (0.0, 0.0, 0.0) in
  Controller.simulate_with_state ~camera:cam ~road ~ego_lane:1 ~initial_offset
    ~initial_heading_error ~state_ref
    ~policy:(Controller.ground_truth_policy ~road ~ego_lane:1 state_ref)
    ~sim:Controller.default_sim_config ()

let test_oracle_tracks_straight_road () =
  let road = Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:3 () in
  let trace = oracle_trace road in
  check_float "stays centered" 0.0 trace.Controller.max_abs_offset;
  Alcotest.(check int) "no departures" 0 trace.Controller.departures

let test_oracle_tracks_curved_road () =
  let road = Road.make ~curvature:(-0.012) ~curvature_rate:0.0 ~num_lanes:3 () in
  let trace = oracle_trace road in
  Alcotest.(check bool) "small offset on curve" true
    (trace.Controller.max_abs_offset < 0.8);
  Alcotest.(check int) "no departures" 0 trace.Controller.departures

let test_oracle_recovers_from_offset () =
  let road = Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:3 () in
  let trace = oracle_trace ~initial_offset:1.0 road in
  let n = Array.length trace.Controller.offsets in
  Alcotest.(check bool) "converges to center" true
    (Float.abs trace.Controller.offsets.(n - 1) < 0.1)

let test_dumb_policy_departs () =
  (* A policy that always says "go straight" must leave the lane on a
     bend — this is exactly the behaviour the safety property forbids. *)
  let road = Road.make ~curvature:(-0.02) ~curvature_rate:0.0 ~num_lanes:3 () in
  let trace =
    Controller.simulate ~camera:cam ~road ~ego_lane:1
      ~policy:(fun _ -> [| 0.0; 0.0 |])
      ~sim:Controller.default_sim_config ()
  in
  Alcotest.(check bool) "departs the lane" true (trace.Controller.departures > 0)

let test_trace_statistics_consistent () =
  let road = Road.make ~curvature:0.005 ~curvature_rate:0.0 ~num_lanes:2 () in
  let trace = oracle_trace ~initial_offset:0.5 road in
  let recomputed_max = Dpv_tensor.Vec.norm_inf trace.Controller.offsets in
  check_float "max matches trace" recomputed_max trace.Controller.max_abs_offset;
  Alcotest.(check bool) "rms <= max" true
    (trace.Controller.rms_offset <= trace.Controller.max_abs_offset +. 1e-12)

let test_sim_validation () =
  let road = Road.make ~curvature:0.0 ~curvature_rate:0.0 ~num_lanes:2 () in
  Alcotest.check_raises "bad step"
    (Invalid_argument "Controller.simulate: non-positive step or distance")
    (fun () ->
      ignore
        (Controller.simulate ~camera:cam ~road ~ego_lane:0
           ~policy:(fun _ -> [| 0.0; 0.0 |])
           ~sim:{ Controller.step = 0.0; distance = 10.0 }
           ()))

let tests =
  [
    Alcotest.test_case "pure pursuit formula" `Quick test_pure_pursuit_formula;
    Alcotest.test_case "pure pursuit steady state" `Quick test_pure_pursuit_steady_state;
    Alcotest.test_case "oracle tracks straight road" `Quick test_oracle_tracks_straight_road;
    Alcotest.test_case "oracle tracks curved road" `Quick test_oracle_tracks_curved_road;
    Alcotest.test_case "oracle recovers from offset" `Quick test_oracle_recovers_from_offset;
    Alcotest.test_case "dumb policy departs lane" `Quick test_dumb_policy_departs;
    Alcotest.test_case "trace statistics" `Quick test_trace_statistics_consistent;
    Alcotest.test_case "sim validation" `Quick test_sim_validation;
  ]
