(* Tests for the tensor substrate: Vec, Mat, Stats, Rng. *)

module Vec = Dpv_tensor.Vec
module Mat = Dpv_tensor.Mat
module Stats = Dpv_tensor.Stats
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_vec_arith () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check bool) "add" true (Vec.approx_equal (Vec.add x y) [| 5.0; 7.0; 9.0 |]);
  Alcotest.(check bool) "sub" true (Vec.approx_equal (Vec.sub y x) [| 3.0; 3.0; 3.0 |]);
  check_float "dot" 32.0 (Vec.dot x y);
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 3.0 (Vec.norm_inf [| -3.0; 2.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 3.0; 4.0 |] y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y [| 7.0; 9.0 |])

let test_vec_argmax () =
  Alcotest.(check int) "argmax" 2 (Vec.argmax [| 0.0; 1.0; 5.0; 2.0 |]);
  Alcotest.(check int) "argmin" 0 (Vec.argmin [| -1.0; 1.0; 5.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_slice_concat () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "slice" true
    (Vec.approx_equal (Vec.slice x ~pos:1 ~len:2) [| 2.0; 3.0 |]);
  Alcotest.(check bool) "concat" true
    (Vec.approx_equal (Vec.concat [| 1.0 |] [| 2.0 |]) [| 1.0; 2.0 |])

let test_mat_matvec () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "matvec" true
    (Vec.approx_equal (Mat.matvec m [| 1.0; 1.0 |]) [| 3.0; 7.0 |]);
  Alcotest.(check bool) "matvec_t" true
    (Vec.approx_equal (Mat.matvec_t m [| 1.0; 1.0 |]) [| 4.0; 6.0 |])

let test_mat_matmul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Mat.identity 2 in
  Alcotest.(check bool) "a * I = a" true (Mat.approx_equal (Mat.matmul a i) a);
  let b = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let ab = Mat.matmul a b in
  Alcotest.(check bool) "swap columns" true
    (Mat.approx_equal ab (Mat.of_rows [| [| 2.0; 1.0 |]; [| 4.0; 3.0 |] |]))

let test_mat_transpose () =
  let a = Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows at);
  Alcotest.(check int) "cols" 2 (Mat.cols at);
  check_float "entry" 6.0 (Mat.get at 2 1)

let test_mat_outer () =
  let o = Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  Alcotest.(check bool) "outer" true
    (Mat.approx_equal o (Mat.of_rows [| [| 3.0; 4.0 |]; [| 6.0; 8.0 |] |]))

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Mat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_stats_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float "std" 2.0 (Stats.std xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 2.0 lo;
  check_float "max" 9.0 hi;
  check_float "median" 4.5 (Stats.median xs)

let test_stats_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "q0" 1.0 (Stats.quantile xs ~q:0.0);
  check_float "q1" 5.0 (Stats.quantile xs ~q:1.0);
  check_float "q05" 3.0 (Stats.quantile xs ~q:0.5);
  check_float "q025" 2.0 (Stats.quantile xs ~q:0.25)

let test_stats_columnwise () =
  let rows = [| [| 0.0; 10.0 |]; [| 2.0; 20.0 |]; [| 4.0; 30.0 |] |] in
  let mu = Stats.columnwise_mean rows in
  check_float "mu0" 2.0 mu.(0);
  check_float "mu1" 20.0 mu.(1);
  let mm = Stats.columnwise_min_max rows in
  check_float "min0" 0.0 (fst mm.(0));
  check_float "max1" 30.0 (snd mm.(1))

let test_stats_wilson () =
  let lo, hi = Stats.binomial_confidence ~successes:50 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "contains p" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "in unit interval" true (lo >= 0.0 && hi <= 1.0)

let test_stats_histogram () =
  let h = Stats.histogram [| 0.1; 0.2; 0.9 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "bins" [| 2; 1 |] h

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.float a 1.0 and xb = Rng.float b 1.0 in
  Alcotest.(check bool) "streams differ" true (Float.abs (xa -. xb) > 1e-12)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (Stats.std xs -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let qcheck_uniform_bounds =
  QCheck.Test.make ~count:200 ~name:"uniform stays in [lo,hi)"
    QCheck.(pair small_int (pair (float_bound_exclusive 100.0) float))
    (fun (seed, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b +. 1.0 in
      let rng = Rng.create seed in
      let x = Rng.uniform rng ~lo ~hi in
      x >= lo && x < hi)

let qcheck_dot_cauchy_schwarz =
  QCheck.Test.make ~count:200 ~name:"|<x,y>| <= |x||y| (Cauchy-Schwarz)"
    QCheck.(pair (list_of_size Gen.(1 -- 10) (float_range (-100.) 100.))
              (list_of_size Gen.(1 -- 10) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      let x = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
      let y = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
      Float.abs (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-6)

let tests =
  [
    Alcotest.test_case "vec arithmetic" `Quick test_vec_arith;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec argmax/argmin" `Quick test_vec_argmax;
    Alcotest.test_case "vec dim mismatch raises" `Quick test_vec_dim_mismatch;
    Alcotest.test_case "vec slice/concat" `Quick test_vec_slice_concat;
    Alcotest.test_case "mat matvec" `Quick test_mat_matvec;
    Alcotest.test_case "mat matmul" `Quick test_mat_matmul;
    Alcotest.test_case "mat transpose" `Quick test_mat_transpose;
    Alcotest.test_case "mat outer" `Quick test_mat_outer;
    Alcotest.test_case "mat ragged raises" `Quick test_mat_ragged;
    Alcotest.test_case "stats basics" `Quick test_stats_basic;
    Alcotest.test_case "stats quantile" `Quick test_stats_quantile;
    Alcotest.test_case "stats columnwise" `Quick test_stats_columnwise;
    Alcotest.test_case "stats wilson interval" `Quick test_stats_wilson;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    QCheck_alcotest.to_alcotest qcheck_uniform_bounds;
    QCheck_alcotest.to_alcotest qcheck_dot_cauchy_schwarz;
  ]
