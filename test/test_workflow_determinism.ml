(* Reproducibility guarantees: the entire pipeline is a deterministic
   function of the setup seed — the property DESIGN.md commits to. *)

module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Report = Dpv_core.Report
module Network = Dpv_nn.Network

let tiny seed =
  {
    Workflow.default_setup with
    seed;
    hidden = [ 8; 4 ];
    cut = 6;
    train_size = 100;
    val_size = 30;
    perception_epochs = 4;
    characterizer_samples = 60;
    bounds_samples = 60;
    scenario =
      {
        Dpv_scenario.Generator.default_config with
        camera = { Dpv_scenario.Camera.default_config with width = 8; height = 6 };
      };
  }

let test_prepare_deterministic () =
  let p1 = Workflow.prepare (tiny 21) in
  let p2 = Workflow.prepare (tiny 21) in
  let x = p1.Workflow.bounds_images.(0) in
  Alcotest.(check bool) "identical networks" true
    (Network.forward p1.Workflow.perception x
    = Network.forward p2.Workflow.perception x);
  Alcotest.(check (float 0.0)) "identical loss" p1.Workflow.final_train_loss
    p2.Workflow.final_train_loss;
  Alcotest.(check bool) "identical bounds features" true
    (p1.Workflow.bounds_features = p2.Workflow.bounds_features)

let test_different_seeds_differ () =
  let p1 = Workflow.prepare (tiny 21) in
  let p2 = Workflow.prepare (tiny 22) in
  let x = p1.Workflow.bounds_images.(0) in
  Alcotest.(check bool) "networks differ" true
    (Network.forward p1.Workflow.perception x
    <> Network.forward p2.Workflow.perception x)

let test_run_case_deterministic () =
  let p = Workflow.prepare (tiny 23) in
  let run () =
    let case =
      Workflow.run_case p ~property:Dpv_scenario.Oracle.bends_right
        ~psi:(Workflow.psi_steer_far_left ~threshold:30.0 ())
        ~strategy:Workflow.Data_box
    in
    ( Format.asprintf "%a" Verify.pp_verdict case.Workflow.result.Verify.verdict,
      case.Workflow.characterizer_report.Dpv_core.Characterizer.train_accuracy,
      case.Workflow.table )
  in
  let v1, a1, t1 = run () in
  let v2, a2, t2 = run () in
  Alcotest.(check string) "same verdict" v1 v2;
  Alcotest.(check (float 0.0)) "same characterizer accuracy" a1 a2;
  Alcotest.(check bool) "same statistical table" true (t1 = t2)

let test_report_table_row () =
  let row = Report.table_row [ "a"; "bb" ] in
  Alcotest.(check bool) "padded and joined" true
    (String.length row > 4 && String.sub row 0 1 = "a");
  Alcotest.(check bool) "contains separator" true (String.contains row '|')

let test_report_rule () =
  Alcotest.(check bool) "dashes" true
    (String.for_all (fun c -> c = '-') (Report.rule ()))

let tests =
  [
    Alcotest.test_case "prepare is deterministic" `Slow test_prepare_deterministic;
    Alcotest.test_case "seeds matter" `Slow test_different_seeds_differ;
    Alcotest.test_case "run_case is deterministic" `Slow test_run_case_deterministic;
    Alcotest.test_case "report table row" `Quick test_report_table_row;
    Alcotest.test_case "report rule" `Quick test_report_rule;
  ]
