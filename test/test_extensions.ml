(* Tests for the extension modules: OBBT bound tightening, layer-wise
   abstraction refinement and the adversarial counterexample search. *)

module Characterizer = Dpv_core.Characterizer
module Verify = Dpv_core.Verify
module Tighten = Dpv_core.Tighten
module Refine = Dpv_core.Refine
module Attack = Dpv_core.Attack
module Workflow = Dpv_core.Workflow
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Polyhedron = Dpv_monitor.Polyhedron
module Risk = Dpv_spec.Risk
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let check_float = Alcotest.(check (float 1e-6))

(* Same hand-built model as in Test_core: f(x) = relu(x) - relu(-x) = x
   with features (relu(x), relu(-x)) at cut 2; characterizer fires iff
   feature 0 >= 0.5. *)
let perception =
  Network.create ~input_dim:1
    [
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0 |]; [| -1.0 |] |]) ~bias:[| 0.0; 0.0 |];
      Layer.Relu;
      Layer.dense ~weights:(Mat.of_rows [| [| 1.0; -1.0 |] |]) ~bias:[| 0.0 |];
    ]

let cut = 2

let head =
  Network.create ~input_dim:2
    [ Layer.dense ~weights:(Mat.of_rows [| [| 1.0; 0.0 |] |]) ~bias:[| -0.5 |] ]

let characterizer = { Characterizer.head; cut; property_name = "x-at-least-half" }

let suffix = Network.suffix perception ~cut

let unit_box = Box_domain.uniform ~dim:2 ~lo:0.0 ~hi:1.0

let risk_ge threshold =
  Risk.make ~name:"ge" [ Risk.output_ge 0 threshold ]

(* -- tighten -- *)

let test_tighten_uses_characterizer () =
  (* h fires <=> y0 >= 0.5, so OBBT must lift dim 0's lower bound. *)
  let box, stats = Tighten.feature_box ~suffix ~head ~feature_box:unit_box () in
  check_float "dim0 lower" 0.5 box.(0).Interval.lo;
  check_float "dim0 upper" 1.0 box.(0).Interval.hi;
  Alcotest.(check int) "2 LPs per dim" 4 stats.Tighten.lps_solved;
  Alcotest.(check bool) "width shrank" true
    (stats.Tighten.width_after < stats.Tighten.width_before)

let test_tighten_uses_octagon_faces () =
  (* Adding y0 + y1 <= 1 caps dim 1 at 0.5 once y0 >= 0.5. *)
  let faces =
    [ { Polyhedron.direction = [ (0, 1.0); (1, 1.0) ]; bound = 1.0 } ]
  in
  let box, _ =
    Tighten.feature_box ~suffix ~head ~feature_box:unit_box ~extra_faces:faces ()
  in
  check_float "dim1 upper" 0.5 box.(1).Interval.hi

let test_tighten_never_expands () =
  let box, _ = Tighten.feature_box ~suffix ~head ~feature_box:unit_box () in
  Array.iteri
    (fun i (iv : Interval.t) ->
      Alcotest.(check bool) "subset" true (Interval.subset iv unit_box.(i)))
    box

let qcheck_tighten_preserves_verdict =
  QCheck.Test.make ~count:25
    ~name:"tightening never changes the safe/unsafe verdict"
    QCheck.(pair small_int (float_range (-2.0) 2.0))
    (fun (seed, threshold) ->
      let rng = Rng.create (seed + 900) in
      let p = Init.mlp rng ~input_dim:2 ~hidden:[ 4; 3 ] ~output_dim:1 in
      let h = Init.mlp rng ~input_dim:3 ~hidden:[ 2 ] ~output_dim:1 in
      (* cut after the second ReLU: feature dim 3 *)
      let chr = { Characterizer.head = h; cut = 4; property_name = "rand" } in
      let bounds = Verify.Feature_box (Box_domain.uniform ~dim:3 ~lo:0.0 ~hi:2.0) in
      let verdict_kind r =
        match r.Verify.verdict with
        | Verify.Safe _ -> `Safe
        | Verify.Unsafe _ -> `Unsafe
        | Verify.Unknown _ -> `Unknown
      in
      let plain =
        Verify.verify ~perception:p ~characterizer:chr ~psi:(risk_ge threshold)
          ~bounds ()
      in
      let tightened =
        Verify.verify ~tighten:true ~perception:p ~characterizer:chr
          ~psi:(risk_ge threshold) ~bounds ()
      in
      verdict_kind plain = verdict_kind tightened)

(* -- attack -- *)

let psi_reachable = risk_ge 0.9
let psi_unreachable = risk_ge 1.5

let attack_config =
  { Attack.default_config with steps = 400; step_size = 0.005 }

let test_attack_finds_counterexample () =
  (* seed x = 0.6: characterizer fires (logit 0.1) but out = 0.6 < 0.9;
     PGD must walk x up to >= 0.9. *)
  match
    Attack.search ~perception ~characterizer ~psi:psi_reachable
      ~config:attack_config ~seeds:[| [| 0.6 |] |] ()
  with
  | Some c ->
      Alcotest.(check bool) "psi holds" true (c.Attack.output.(0) >= 0.9 -. 1e-6);
      Alcotest.(check bool) "characterizer fires" true (c.Attack.logit >= -1e-6);
      Alcotest.(check bool) "pixels stayed in range" true
        (Array.for_all (fun v -> v >= 0.0 && v <= 1.0) c.Attack.image)
  | None -> Alcotest.fail "attack should succeed"

let test_attack_fails_on_unreachable () =
  match
    Attack.search ~perception ~characterizer ~psi:psi_unreachable
      ~config:attack_config ~seeds:[| [| 0.6 |]; [| 0.2 |] |] ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "out = x <= 1 can never reach 1.5"

let test_attack_recovers_logit () =
  (* seed x = 0.95: psi already holds but the characterizer is quiet at
     x < 0.5?  No: logit(0.95) = 0.45, fires.  Use a seed where psi holds
     but h is quiet: impossible here since psi needs x >= 0.9 > 0.5.
     Instead check the degenerate seed that is already a counterexample:
     the attack must return it unchanged at iteration 0. *)
  match
    Attack.search ~perception ~characterizer ~psi:psi_reachable
      ~config:attack_config ~seeds:[| [| 0.95 |] |] ()
  with
  | Some c ->
      Alcotest.(check int) "zero iterations" 0 c.Attack.iterations;
      check_float "image unchanged" 0.95 c.Attack.image.(0)
  | None -> Alcotest.fail "seed is already a counterexample"

let test_attack_loss_semantics () =
  let loss = Attack.attack_loss ~perception ~characterizer ~psi:psi_reachable
      Attack.default_config in
  check_float "zero on counterexample" 0.0 (loss [| 0.95 |]);
  Alcotest.(check bool) "positive off the target set" true (loss [| 0.6 |] > 0.0);
  Alcotest.(check bool) "counterexample check agrees" true
    (Attack.is_counterexample ~perception ~characterizer ~psi:psi_reachable
       [| 0.95 |]);
  Alcotest.(check bool) "non-counterexample rejected" false
    (Attack.is_counterexample ~perception ~characterizer ~psi:psi_reachable
       [| 0.6 |])

(* -- refine (on the real workflow, tiny configuration) -- *)

let tiny_setup =
  {
    Workflow.default_setup with
    seed = 5;
    hidden = [ 8; 4 ];
    cut = 6;
    train_size = 120;
    val_size = 40;
    perception_epochs = 6;
    characterizer_samples = 80;
    bounds_samples = 80;
    scenario =
      {
        Dpv_scenario.Generator.default_config with
        camera =
          { Dpv_scenario.Camera.default_config with width = 8; height = 6 };
      };
  }

let test_refine_proves_easy_property () =
  let prepared = Workflow.prepare tiny_setup in
  let outcome =
    Refine.run prepared ~property:Dpv_scenario.Oracle.bends_right
      ~psi:(Workflow.psi_steer_far_left ~threshold:50.0 ())
      ~strategy:Workflow.Data_box
  in
  match outcome with
  | Refine.Proved steps -> Alcotest.(check int) "one step suffices" 1 (List.length steps)
  | Refine.Refuted _ | Refine.Exhausted _ ->
      Alcotest.failf "expected proof, got %a" Refine.pp_outcome outcome

let test_refine_walks_cuts_on_failure () =
  let prepared = Workflow.prepare tiny_setup in
  (* A psi that the network genuinely reaches on bends-right-ish features:
     waypoint <= +50 covers everything, so every cut yields a witness. *)
  let psi = Risk.make ~name:"always" [ Risk.output_le 0 50.0 ] in
  let outcome =
    Refine.run prepared ~property:Dpv_scenario.Oracle.bends_right ~psi
      ~strategy:Workflow.Data_box
  in
  match outcome with
  | Refine.Refuted steps ->
      Alcotest.(check int) "walked both cuts" 2 (List.length steps);
      Alcotest.(check (list int)) "deepest first" [ 6; 3 ]
        (List.map (fun s -> s.Refine.cut) steps)
  | Refine.Proved _ | Refine.Exhausted _ ->
      Alcotest.failf "expected refuted, got %a" Refine.pp_outcome outcome

let test_refine_max_steps () =
  let prepared = Workflow.prepare tiny_setup in
  let psi = Risk.make ~name:"always" [ Risk.output_le 0 50.0 ] in
  let outcome =
    Refine.run ~max_steps:1 prepared ~property:Dpv_scenario.Oracle.bends_right
      ~psi ~strategy:Workflow.Data_box
  in
  Alcotest.(check int) "stopped after one" 1 (List.length (Refine.steps outcome))

let tests =
  [
    Alcotest.test_case "tighten via characterizer" `Quick test_tighten_uses_characterizer;
    Alcotest.test_case "tighten via octagon faces" `Quick test_tighten_uses_octagon_faces;
    Alcotest.test_case "tighten never expands" `Quick test_tighten_never_expands;
    QCheck_alcotest.to_alcotest qcheck_tighten_preserves_verdict;
    Alcotest.test_case "attack finds counterexample" `Quick test_attack_finds_counterexample;
    Alcotest.test_case "attack fails on unreachable" `Quick test_attack_fails_on_unreachable;
    Alcotest.test_case "attack returns immediate hit" `Quick test_attack_recovers_logit;
    Alcotest.test_case "attack loss semantics" `Quick test_attack_loss_semantics;
    Alcotest.test_case "refine proves easy property" `Slow test_refine_proves_easy_property;
    Alcotest.test_case "refine walks cuts" `Slow test_refine_walks_cuts_on_failure;
    Alcotest.test_case "refine max steps" `Slow test_refine_max_steps;
  ]
