(* dpv — command-line front end for the verification workflow.

   Subcommands:
     train     train the direct perception network and cache/save it
     verify    run one (property, psi, strategy) verification case
     campaign  run a JSON-specified batch of queries with a shared cache
               (optionally one --shard I/N slice of the partition)
     merge-journals  combine shard journals into one campaign journal/report
     monitor   stream frames at the runtime monitor
     render    print an ASCII rendering of a scene
     info      show the model architecture and experiment defaults     *)

module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Report = Dpv_core.Report
module Specfile = Dpv_core.Specfile
module Json = Dpv_core.Json
module Server = Dpv_serve.Server
module Sclient = Dpv_serve.Client
module Metrics = Dpv_obs.Metrics
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Scene = Dpv_scenario.Scene
module Road = Dpv_scenario.Road
module Network = Dpv_nn.Network
module Serialize = Dpv_nn.Serialize
module Runtime = Dpv_monitor.Runtime
module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Propagate = Dpv_absint.Propagate
module Rng = Dpv_tensor.Rng

open Cmdliner

(* ---- shared options ---- *)

let cache_dir =
  let doc = "Directory for the trained-model cache." in
  Arg.(value & opt string "_cache" & info [ "cache-dir" ] ~doc)

let seed =
  let doc = "Random seed for the whole pipeline." in
  Arg.(value & opt int Workflow.default_setup.Workflow.seed & info [ "seed" ] ~doc)

let setup_of ~seed = { Workflow.default_setup with Workflow.seed }

let workers =
  let doc =
    "Branch-and-bound worker domains (0 = one per available core, \
     leaving one for the rest of the process)."
  in
  Arg.(value & opt int 1 & info [ "j"; "workers" ] ~doc)

let timeout_s =
  let doc =
    "Wall-clock solver deadline in seconds; an expired query reports \
     UNKNOWN (deadline exceeded) instead of searching to the node cap."
  in
  Arg.(value & opt (some float) None & info [ "timeout-s" ] ~doc)

let absint_arg =
  let doc =
    "Guide the branch-and-bound search with DeepPoly abstract \
     interpretation: before each node's LP is solved, bounds \
     propagated under the node's ReLU phase fixings fix further \
     phases without branching and prune nodes that provably miss \
     psi."
  in
  Arg.(value & flag & info [ "absint" ] ~doc)

let bisect_arg =
  let doc =
    "Input bisection depth (0 = off): split the feature box up to \
     $(docv) times along its widest dimension, discharge cheap \
     sub-boxes by bound propagation alone, and send only the \
     survivors to the MILP.  Verdicts merge soundly (UNSAFE \
     witnesses are re-validated concretely; SAFE requires every \
     sub-box safe)."
  in
  Arg.(value & opt int 0 & info [ "bisect" ] ~docv:"DEPTH" ~doc)

let bisect_timeout_arg =
  let doc =
    "Per-sub-box wall-clock budget in seconds (only with \
     $(b,--bisect); the overall deadline still applies)."
  in
  Arg.(value & opt (some float) None & info [ "bisect-timeout-s" ] ~doc)

let branch_rule_conv =
  let parse = function
    | "fractional" -> Ok Dpv_linprog.Milp.Most_fractional
    | "width" -> Ok Dpv_linprog.Milp.Bound_width
    | "order" -> Ok Dpv_linprog.Milp.Guide_order
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown branch rule %S (fractional, width, order)"
               s))
  in
  let print fmt r =
    Format.fprintf fmt "%s"
      (match r with
      | Dpv_linprog.Milp.Most_fractional -> "fractional"
      | Dpv_linprog.Milp.Bound_width -> "width"
      | Dpv_linprog.Milp.Guide_order -> "order")
  in
  Arg.conv (parse, print)

let branch_rule_arg =
  let doc =
    "Branch-variable selection: $(b,fractional) (most fractional \
     binary), $(b,width) (widest pre-activation interval as scored \
     by the DeepPoly guide) or $(b,order) (earliest guide-scored \
     binary in layer order, the cache-friendliest rule for the \
     incremental guide); $(b,width) and $(b,order) fall back to \
     $(b,fractional) without $(b,--absint)."
  in
  Arg.(
    value
    & opt branch_rule_conv Dpv_linprog.Milp.Most_fractional
    & info [ "branch-rule" ] ~doc)

let bisect_options_of ~bisect ~bisect_timeout_s =
  if bisect <= 0 then None
  else Some { Verify.max_depth = bisect; subbox_time_limit_s = bisect_timeout_s }

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of the run to $(docv) \
     (open in chrome://tracing or https://ui.perfetto.dev).  Tracing \
     is off — a single atomic load per site — unless this flag or the \
     DPV_TRACE environment variable enables it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the end-of-run metrics snapshot (dpv-metrics/1 JSON: \
     counters, high-water gauges, latency histograms) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Arm tracing before the work and flush trace/metrics after it — on
   the raising path too, so a crashed run still leaves its telemetry
   behind.  [Faults.trace_sites] stamps the trace with every fault
   site's occurrence/fired counts, making chaos runs self-describing. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Dpv_obs.Trace.configure ();
  let finish () =
    Option.iter
      (fun path ->
        Dpv_linprog.Faults.trace_sites ();
        Dpv_obs.Trace.write ~path)
      trace;
    Option.iter
      (fun path -> Dpv_obs.Metrics.save_json (Dpv_obs.Metrics.snapshot ()) ~path)
      metrics
  in
  Fun.protect ~finally:finish f

let milp_options_of ~workers ~timeout_s =
  let workers =
    if workers <= 0 then Dpv_linprog.Milp_par.default_workers () else workers
  in
  {
    Dpv_linprog.Milp.default_options with
    find_first = true;
    workers;
    time_limit_s = timeout_s;
  }

let property_conv =
  let parse s =
    match Oracle.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown property %S (try: %s)" s
               (String.concat ", " (List.map fst Oracle.all))))
  in
  let print fmt p = Format.fprintf fmt "%s" p.Dpv_spec.Property.name in
  Arg.conv (parse, print)

let property_arg =
  let doc = "Input property phi (bends-right, bends-left, straight, ...)." in
  Arg.(
    value
    & opt property_conv Oracle.bends_right
    & info [ "p"; "property" ] ~doc)

let psi_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Specfile.parse_psi s) in
  let print fmt psi = Format.fprintf fmt "%s" psi.Dpv_spec.Risk.name in
  Arg.conv (parse, print)

let psi_arg =
  let doc =
    "Risk condition psi: far-left[:T], far-right[:T] or straight[:H]."
  in
  Arg.(value & opt psi_conv (Workflow.psi_steer_far_left ()) & info [ "psi" ] ~doc)

let strategy_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Specfile.parse_strategy s) in
  let print fmt s = Format.fprintf fmt "%s" (Workflow.strategy_name s) in
  Arg.conv (parse, print)

let strategy_arg =
  let doc = "Bounds strategy for the region S." in
  Arg.(value & opt strategy_conv Workflow.Data_octagon & info [ "strategy" ] ~doc)

(* ---- train ---- *)

let train_cmd =
  let run seed cache_dir output =
    let prepared = Workflow.prepare_cached ~quiet:false ~cache_dir (setup_of ~seed) in
    Format.printf "trained: %a@." Network.pp prepared.Workflow.perception;
    Format.printf "val MAE: %.3f m / %.4f rad@." prepared.Workflow.val_mae.(0)
      prepared.Workflow.val_mae.(1);
    (match output with
    | Some path ->
        Serialize.save prepared.Workflow.perception ~path;
        Format.printf "saved model to %s@." path
    | None -> ());
    0
  in
  let output =
    let doc = "Also save the model to this path." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the direct perception network")
    Term.(const run $ seed $ cache_dir $ output)

(* ---- verify ---- *)

let verify_cmd =
  let run seed cache_dir property psi strategy cut workers timeout_s absint
      bisect bisect_timeout_s branch_rule trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options =
      { (milp_options_of ~workers ~timeout_s) with Dpv_linprog.Milp.branch_rule }
    in
    let bisect = bisect_options_of ~bisect ~bisect_timeout_s in
    let case =
      Workflow.run_case ~milp_options ?cut ~absint ?bisect prepared ~property
        ~psi ~strategy
    in
    Format.printf "%a@." Report.pp_case case;
    match case.Workflow.result.Verify.verdict with
    | Verify.Safe _ -> 0
    | Verify.Unsafe _ -> 1
    | Verify.Unknown _ -> 2
  in
  let cut =
    let doc = "Cut layer (defaults to the deepest ReLU)." in
    Arg.(value & opt (some int) None & info [ "cut" ] ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a (phi, psi) safety property of the cached network")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ cut $ workers $ timeout_s $ absint_arg $ bisect_arg
      $ bisect_timeout_arg $ branch_rule_arg $ trace_arg $ metrics_arg)

(* ---- campaign ---- *)

exception Spec_error of string

let spec_error fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Read + parse a campaign spec file; dialect and query building live
   in {!Dpv_core.Specfile}, shared with the serve daemon. *)
let load_spec path =
  let text = try read_file path with Sys_error e -> spec_error "%s" e in
  match Json.of_string text with
  | Ok v -> v
  | Error e -> spec_error "cannot parse %s: %s" path e

(* --shard I/N: one deterministic slice of the query-key partition.
   Validation here mirrors Campaign.run's, so a bad value is a usage
   error instead of an uncaught Invalid_argument. *)
let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
        match (int_of_string_opt i, int_of_string_opt n) with
        | Some i, Some n when n >= 1 && 0 <= i && i < n -> Ok (i, n)
        | _ -> Error (`Msg (Printf.sprintf "shard %S: need I/N with 0 <= I < N" s)))
    | _ -> Error (`Msg (Printf.sprintf "shard %S: need I/N, e.g. 0/4" s))
  in
  let print fmt (i, n) = Format.fprintf fmt "%d/%d" i n in
  Arg.conv (parse, print)

let campaign_cmd =
  let run cache_dir spec_path output journal resume shard absint bisect
      bisect_timeout_s branch_rule trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    try
      let spec = load_spec spec_path in
      let parsed =
        match Specfile.parse spec with Ok p -> p | Error e -> spec_error "%s" e
      in
      let runners = parsed.Specfile.runners in
      let budget_s = parsed.Specfile.budget_s in
      let milp_options = Specfile.milp_options ~branch_rule parsed in
      let bisect = bisect_options_of ~bisect ~bisect_timeout_s in
      let prepared = Workflow.prepare_cached ~cache_dir parsed.Specfile.setup in
      let queries =
        match
          Specfile.queries
            (Specfile.builder prepared)
            ~default_cut:parsed.Specfile.setup.Workflow.cut
            parsed.Specfile.query_specs
        with
        | Ok q -> q
        | Error e -> spec_error "%s" e
      in
      (* --resume implies journaling to the same file unless --journal
         overrides it: a resumed campaign that dies can itself be
         resumed. *)
      let resume_entries =
        Option.map
          (fun path ->
            match Dpv_core.Journal.load ~path with
            | Ok entries -> entries
            | Error e -> spec_error "cannot resume from %s: %s" path e)
          resume
      in
      let journal =
        match (journal, resume) with Some _, _ -> journal | None, r -> r
      in
      let report =
        Dpv_core.Campaign.run ~milp_options ~runners ?shard ?budget_s ?journal
          ?resume:resume_entries ~absint ?bisect
          ~perception:prepared.Workflow.perception queries
      in
      Format.printf "%a@." Report.pp_campaign report;
      if metrics <> None then
        Format.printf "%a@." Report.pp_metrics report.Dpv_core.Campaign.metrics;
      Dpv_core.Campaign.save_json report ~path:output;
      Format.printf "report written to %s@." output;
      (* Exit-code precedence: a proven violation (1) outranks an
         incomplete campaign (4), which outranks an inconclusive
         verdict (2).  A degraded campaign must not exit 0: "no unsafe
         found" is not "all safe" when queries crashed or were
         skipped. *)
      Dpv_core.Campaign.report_exit_code report
    with Spec_error msg ->
      Format.eprintf "campaign: %s@." msg;
      3
  in
  let spec_path =
    let doc =
      "Campaign specification (JSON): top-level keys seed, runners, \
       workers, budget_s, timeout_s, max_nodes, setup and a queries \
       array of {name, property, psi, strategy, cut, margin} objects."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)
  in
  let output =
    Arg.(
      value
      & opt string "campaign_report.json"
      & info [ "o"; "output" ] ~doc:"JSON report output path.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ]
          ~doc:
            "Append each settled query to this crash-safe journal file \
             (JSON lines, atomically rewritten), enabling $(b,--resume) \
             after a kill.")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ]
          ~doc:
            "Replay completed verdicts from a journal written by a \
             previous run instead of re-solving them; crashed and \
             skipped queries are retried.  Implies journaling to the \
             same file unless $(b,--journal) is also given.")
  in
  let shard =
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Run slice $(i,I) of a deterministic $(i,N)-way partition \
             of the queries (by content digest).  Every shard reads \
             the full spec; run all N slices (any hosts, any order), \
             then combine their journals with $(b,dpv merge-journals).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a batch of verification queries concurrently with a \
             shared-encoding cache and write an aggregated JSON report")
    Term.(
      const run $ cache_dir $ spec_path $ output $ journal $ resume $ shard
      $ absint_arg $ bisect_arg $ bisect_timeout_arg $ branch_rule_arg
      $ trace_arg $ metrics_arg)

(* ---- merge-journals ---- *)

let merge_journals_cmd =
  let run output inputs report_out =
    match
      List.map
        (fun path ->
          match Dpv_core.Journal.load_with_meta ~path with
          | Ok x -> x
          | Error e -> spec_error "cannot load %s: %s" path e)
        inputs
    with
    | exception Spec_error msg ->
        Format.eprintf "merge-journals: %s@." msg;
        3
    | shards ->
        let entries, metas = Dpv_core.Campaign.merge_journals shards in
        Dpv_core.Journal.save ~path:output entries;
        Format.printf "merged %d journal%s: %d quer%s, %d shard trailer%s -> %s@."
          (List.length inputs)
          (if List.length inputs = 1 then "" else "s")
          (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          (List.length metas)
          (if List.length metas = 1 then "" else "s")
          output;
        Option.iter
          (fun path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Dpv_core.Campaign.merged_to_json ~entries ~metas));
            Format.printf "report written to %s@." path)
          report_out;
        Dpv_core.Campaign.worst_exit_code entries
  in
  let output =
    let doc =
      "Merged journal output path (JSON lines, written atomically).  \
       Valid as $(b,dpv campaign --resume) input: a merged partition \
       can be re-run unsharded to retry its crashed queries."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let inputs =
    let doc = "Shard journals to merge (from $(b,dpv campaign --shard))." in
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"JOURNAL" ~doc)
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ]
          ~doc:
            "Also write the merged dpv-campaign/2 JSON report here, with \
             metric totals summed exactly across the shard trailers.")
  in
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:
         "Merge shard journals into one campaign journal and report; \
          the exit code is the worst across shards (unsafe > degraded \
          > unknown > ok)")
    Term.(const run $ output $ inputs $ report_out)

(* ---- serve / client ---- *)

let socket_arg =
  let doc = "Unix-domain socket path for the server." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "TCP port on loopback (alternative to $(b,--socket))." in
  Arg.(value & opt (some int) None & info [ "port" ] ~doc)

let serve_cmd =
  let run cache_dir spec_path socket port metrics_addr slow_ms state_dir
      capacity runners retry_after_s settle_delay_s trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    try
      let spec = load_spec spec_path in
      let parsed =
        match Specfile.parse spec with Ok p -> p | Error e -> spec_error "%s" e
      in
      let listen =
        match (socket, port) with
        | Some path, None -> `Unix path
        | None, Some port -> `Tcp port
        | Some _, Some _ -> spec_error "give --socket or --port, not both"
        | None, None -> spec_error "a server needs --socket PATH or --port N"
      in
      (* The scrape listener binds loopback only; accept a bare port or
         an explicit loopback host for operator familiarity. *)
      let scrape_port =
        match metrics_addr with
        | None -> None
        | Some addr ->
            let port_str =
              match String.rindex_opt addr ':' with
              | None -> addr
              | Some i ->
                  let host = String.sub addr 0 i in
                  if host <> "127.0.0.1" && host <> "localhost" then
                    spec_error
                      "--metrics-addr serves loopback only (got host %S)" host;
                  String.sub addr (i + 1) (String.length addr - i - 1)
            in
            (match int_of_string_opt port_str with
            | Some p when p > 0 && p < 65536 -> Some p
            | _ ->
                spec_error "--metrics-addr wants PORT or 127.0.0.1:PORT, got %S"
                  addr)
      in
      let prepared = Workflow.prepare_cached ~cache_dir parsed.Specfile.setup in
      let config =
        {
          (Server.default_config ~state_dir) with
          Server.capacity;
          runners;
          retry_after_s;
          settle_delay_s;
          slow_ms;
        }
      in
      let server =
        Server.create ~config ~perception:prepared.Workflow.perception
          ~builder:(Specfile.builder prepared) ~base:parsed ~base_spec:spec ()
      in
      if Server.recovered server > 0 then
        Format.printf "recovered %d journaled job(s) from %s@."
          (Server.recovered server)
          state_dir;
      (* SIGTERM/SIGINT request a graceful drain: stop accepting, finish
         or journal in-flight work, then fall through to with_obs's
         trace/metrics flush. *)
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Server.request_drain server)))
        [ Sys.sigterm; Sys.sigint ];
      let listen_fd =
        match listen with
        | `Unix path ->
            Format.printf "dpv-serve/1 listening on %s@." path;
            Server.listen_unix ~path
        | `Tcp port ->
            Format.printf "dpv-serve/1 listening on 127.0.0.1:%d@." port;
            Server.listen_tcp ~port
      in
      let scrape_fd =
        Option.map
          (fun p ->
            Format.printf "dpv-serve/1 metrics on http://127.0.0.1:%d/metrics@."
              p;
            Server.listen_tcp ~port:p)
          scrape_port
      in
      Format.print_flush ();
      Server.serve ?scrape_fd server listen_fd;
      Format.printf "drained@.";
      0
    with Spec_error msg ->
      Format.eprintf "serve: %s@." msg;
      3
  in
  let spec_path =
    let doc =
      "Base campaign spec: fixes the trained pipeline (seed + setup) the \
       resident server holds.  Submissions omitting seed/setup inherit it."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE_SPEC" ~doc)
  in
  let state_dir =
    Arg.(
      value & opt string "_serve"
      & info [ "state-dir" ]
          ~doc:
            "Directory for the server joblog and per-job campaign journals \
             (the crash-recovery state).")
  in
  let capacity =
    Arg.(
      value & opt int 4
      & info [ "capacity" ]
          ~doc:
            "Maximum jobs in the system (queued + running); beyond it \
             submissions get an explicit busy reply.")
  in
  let runners =
    Arg.(
      value & opt int 1
      & info [ "runners" ]
          ~doc:"Domain-budget cap per job (specs may ask for fewer).")
  in
  let retry_after_s =
    Arg.(
      value & opt float 1.0
      & info [ "retry-after-s" ] ~doc:"Retry hint carried in busy replies.")
  in
  let settle_delay_s =
    Arg.(
      value & opt float 0.0
      & info [ "settle-delay-s" ]
          ~doc:
            "Pause this many seconds after each settled query (test \
             pacing: makes kill-mid-campaign land deterministically \
             between queries).")
  in
  let metrics_addr =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Also serve OpenMetrics text scrapes over HTTP on this \
             loopback address (PORT or 127.0.0.1:PORT) — point \
             Prometheus (or curl) at it.")
  in
  let slow_ms =
    Arg.(
      value & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold: queries over this many milliseconds \
             are appended to STATE_DIR/slowlog.jsonl with a per-phase \
             time breakdown.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident verification service: accept campaign \
          submissions over a socket, stream verdicts, journal every \
          accepted job for crash recovery")
    Term.(
      const run $ cache_dir $ spec_path $ socket_arg $ port_arg $ metrics_addr
      $ slow_ms $ state_dir $ capacity $ runners $ retry_after_s
      $ settle_delay_s $ trace_arg $ metrics_arg)

let client_cmd =
  let run action spec_path socket port name priority budget_s deadline_s wait
      trace_out =
    let connect () =
      try
        match (socket, port) with
        | Some path, None -> Ok (Sclient.connect_unix ~path)
        | None, Some port -> Ok (Sclient.connect_tcp ~port)
        | _ -> Error "give --socket PATH or --port N (not both)"
      with Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
    in
    let with_conn f =
      match connect () with
      | Error msg ->
          Format.eprintf "client: %s@." msg;
          3
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> f fd)
    in
    let one_shot op =
      with_conn @@ fun fd ->
      match Sclient.rpc fd (Json.encode (Json.Obj [ ("op", Json.Str op) ])) with
      | Ok reply ->
          print_endline reply;
          0
      | Error msg ->
          Format.eprintf "client: %s@." msg;
          3
    in
    match action with
    | "ping" -> one_shot "ping"
    | "metrics" -> one_shot "metrics"
    | "drain" -> one_shot "drain"
    | "submit" -> (
        match spec_path with
        | None ->
            Format.eprintf "client: submit needs a SPEC file@.";
            3
        | Some path -> (
            match Json.of_string (read_file path) with
            | exception Sys_error e ->
                Format.eprintf "client: %s@." e;
                3
            | Error e ->
                Format.eprintf "client: cannot parse %s: %s@." path e;
                3
            | Ok spec ->
                let opt_num key = function
                  | None -> []
                  | Some v -> [ (key, Json.Num v) ]
                in
                let request =
                  Json.encode
                    (Json.Obj
                       ([ ("op", Json.Str "submit"); ("spec", spec) ]
                       @ (match name with
                         | None -> []
                         | Some n -> [ ("name", Json.Str n) ])
                       @ [ ("priority", Json.Num (float_of_int priority)) ]
                       @ opt_num "budget_s" budget_s
                       @ opt_num "deadline_s" deadline_s
                       @
                       if trace_out = None then []
                       else [ ("trace", Json.Bool true) ]))
                in
                (* The trace frame carries the job's Chrome-trace JSON
                   as a string; peel it off the stream into the file
                   the user asked for. *)
                let on_frame line =
                  match trace_out with
                  | None -> print_endline line
                  | Some file -> (
                      match Json.of_string line with
                      | Ok j
                        when Json.member "type" j = Some (Json.Str "trace") -> (
                          match
                            Option.bind (Json.member "events" j) Json.to_string
                          with
                          | Some events ->
                              let oc = open_out file in
                              Fun.protect
                                ~finally:(fun () -> close_out oc)
                                (fun () -> output_string oc events);
                              Format.eprintf "client: trace written to %s@."
                                file
                          | None -> print_endline line)
                      | _ -> print_endline line)
                in
                (* Each attempt is one connection; on busy with --wait,
                   sleep out the server's hint and resubmit. *)
                let rec attempt () =
                  let outcome =
                    with_conn @@ fun fd ->
                    match Sclient.submit_and_stream fd ~request ~on_frame with
                    | Sclient.Finished { exit_code } -> exit_code
                    | Sclient.Busy { retry_after_s } ->
                        if wait then begin
                          Unix.sleepf retry_after_s;
                          (* Busy (6) is never final under --wait. *)
                          -1
                        end
                        else begin
                          Format.eprintf
                            "client: server busy (retry after %.1fs)@."
                            retry_after_s;
                          6
                        end
                    | Sclient.Failed msg ->
                        Format.eprintf "client: %s@." msg;
                        3
                  in
                  if outcome = -1 then attempt () else outcome
                in
                attempt ()))
    | a ->
        Format.eprintf "client: unknown action %S (submit, metrics, ping, drain)@." a;
        3
  in
  let action =
    let doc = "What to ask the server: submit, metrics, ping or drain." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ACTION" ~doc)
  in
  let spec_path =
    let doc = "Campaign spec to submit (for $(b,submit))." in
    Arg.(value & pos 1 (some file) None & info [] ~docv:"SPEC" ~doc)
  in
  let name_arg =
    Arg.(
      value & opt (some string) None
      & info [ "name" ] ~doc:"Human-readable job name.")
  in
  let priority =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~doc:"Admission priority (higher runs first).")
  in
  let budget_s =
    Arg.(
      value & opt (some float) None
      & info [ "budget-s" ] ~doc:"Campaign wall-clock budget once running.")
  in
  let deadline_s =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-s" ]
          ~doc:
            "Wall-clock deadline from acceptance; queue wait spends it \
             and the budget is carved from the remainder.")
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:
            "On a busy reply, sleep out the server's retry hint and \
             resubmit instead of exiting 6.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Ask the server to trace this job and write its \
             Chrome-trace JSON here (open in Perfetto); the trace \
             frame is peeled off the verdict stream.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running dpv serve: submit a campaign and stream its \
          verdicts (exit code mirrors dpv campaign; 6 = server busy), or \
          ping/metrics/drain")
    Term.(
      const run $ action $ spec_path $ socket_arg $ port_arg $ name_arg
      $ priority $ budget_s $ deadline_s $ wait $ trace_out)

(* ---- top ---- *)

let top_cmd =
  let run socket port interval_s count =
    let connect () =
      try
        match (socket, port) with
        | Some path, None -> Ok (Sclient.connect_unix ~path)
        | None, Some port -> Ok (Sclient.connect_tcp ~port)
        | _ -> Error "give --socket PATH or --port N (not both)"
      with Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
    in
    (* One metrics poll over the persistent connection.  Passing the
       previous reply's cursor makes the server answer with the delta
       since that poll (counters and histograms subtract; rates and
       point samples stay current), which is exactly what a live rate
       display wants. *)
    let fetch fd ~since =
      let req =
        Json.Obj
          (("op", Json.Str "metrics")
          ::
          (match since with
          | None -> []
          | Some c -> [ ("since", Json.Num (float_of_int c)) ]))
      in
      match Sclient.rpc fd (Json.encode req) with
      | Error e -> Error e
      | Ok reply -> (
          match Json.of_string reply with
          | Error e -> Error (Printf.sprintf "unparseable reply: %s" e)
          | Ok j -> (
              let cursor = Option.bind (Json.member "cursor" j) Json.to_int in
              let is_delta = Json.member "since" j <> None in
              match Json.member "metrics" j with
              | None -> Error "reply carries no metrics"
              | Some m -> (
                  match Dpv_core.Journal.parse_metrics ~line:0 m with
                  | Error e -> Error e
                  | Ok snap -> Ok (cursor, is_delta, snap))))
    in
    let fmt_ns ns =
      if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
      else if ns >= 1e6 then Printf.sprintf "%.1fms" (ns /. 1e6)
      else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
      else Printf.sprintf "%.0fns" ns
    in
    let render b ~is_delta snap =
      let c name = Option.value ~default:0 (Metrics.counter_in snap name) in
      let r name =
        float_of_int (Option.value ~default:0 (Metrics.rate_in snap name))
        /. 1000.0
      in
      let pct num den =
        if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
      in
      let quantiles name =
        match Metrics.histogram_in snap name with
        | Some h when h.Metrics.count > 0 ->
            Printf.sprintf "p50 %s / p99 %s  (%d obs)"
              (fmt_ns (Metrics.quantile_of_hist h ~q:0.5))
              (fmt_ns (Metrics.quantile_of_hist h ~q:0.99))
              h.Metrics.count
        | _ -> "no observations"
      in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "dpv top — %s"
        (if is_delta then Printf.sprintf "last %.1fs" interval_s
         else "since server start");
      line "  jobs in system   %.0f  (queue %.0f, finished %d)"
        (r "serve.jobs_in_system")
        (r "serve.queue_depth_now")
        (c "serve.jobs_finished");
      line "  solves/s         %.2f  (queries %d, nodes/s %.1f)"
        (r "serve.solves_per_s") (c "campaign.queries") (r "milp.nodes_per_s");
      let warm = c "simplex.warm_starts" and cold = c "simplex.cold_starts" in
      line "  warm-start rate  %.1f%%  (warm %d / cold %d)"
        (pct warm (warm + cold)) warm cold;
      let prunes = c "absint.prunes" in
      line "  prune rate       %.1f%%  (pruned %d vs %d MILP nodes)"
        (pct prunes (prunes + c "milp.nodes"))
        prunes (c "milp.nodes");
      line "  journal          %.1f appends/s, %s"
        (r "journal.appends_per_s")
        (quantiles "journal.append_ns");
      line "  lp solve         %s" (quantiles "milp.lp_solve_ns");
      line "  gc               heap %.1f MiB, %.0f minor words/s, %.2f majors/s"
        (r "gc.heap_words" *. 8.0 /. 1048576.0)
        (r "gc.minor_words_per_s")
        (r "gc.majors_per_s")
    in
    match connect () with
    | Error msg ->
        Format.eprintf "top: %s@." msg;
        3
    | Ok fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        let tty = Unix.isatty Unix.stdout in
        (* Not a terminal: prime the cursor, wait one interval, print a
           single delta block — scriptable and CI-friendly. *)
        let rounds =
          if not tty then 2 else if count > 0 then count else max_int
        in
        let rec loop i ~since =
          match fetch fd ~since with
          | Error msg ->
              Format.eprintf "top: %s@." msg;
              3
          | Ok (cursor, is_delta, snap) ->
              if tty || i > 0 then begin
                let b = Buffer.create 512 in
                render b ~is_delta snap;
                if tty then print_string "\027[2J\027[H";
                print_string (Buffer.contents b);
                flush stdout
              end;
              if i + 1 >= rounds then 0
              else begin
                Unix.sleepf interval_s;
                loop (i + 1) ~since:cursor
              end
        in
        loop 0 ~since:None
  in
  let interval_s =
    Arg.(
      value & opt float 2.0
      & info [ "interval-s" ] ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "n"; "count" ]
          ~doc:
            "Stop after this many refreshes (0 = run until interrupted).  \
             When stdout is not a terminal a single snapshot is printed \
             regardless.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running dpv serve, polled over the metrics \
          since-cursor: jobs in system, solve/prune rates, warm-start \
          hit rate, journal-append and LP-solve latency percentiles.  \
          Prints one snapshot and exits when stdout is not a terminal")
    Term.(const run $ socket_arg $ port_arg $ interval_s $ count)

(* ---- monitor ---- *)

let monitor_cmd =
  let run seed cache_dir frames shifted =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    let region =
      Runtime.Poly (Polyhedron.fit_octagon ~margin:0.05 prepared.Workflow.bounds_features)
    in
    let monitor =
      Runtime.create ~network:prepared.Workflow.perception
        ~cut:setup.Workflow.cut ~region
    in
    let config =
      if shifted then
        {
          setup.Workflow.scenario with
          Generator.rain_probability = 0.7;
          fog_probability = 0.3;
          camera =
            { setup.Workflow.scenario.Generator.camera with Camera.noise_std = 0.08 };
        }
      else setup.Workflow.scenario
    in
    let rng = Rng.create (seed + 31) in
    for _ = 1 to frames do
      let scene = Generator.sample_scene config rng in
      ignore (Runtime.infer monitor (Generator.render_scene config rng scene))
    done;
    Format.printf "%a@." Runtime.pp_stats (Runtime.stats monitor);
    0
  in
  let frames =
    Arg.(value & opt int 500 & info [ "n"; "frames" ] ~doc:"Frames to stream.")
  in
  let shifted =
    Arg.(
      value & flag
      & info [ "shifted" ] ~doc:"Stream distribution-shifted frames instead.")
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Stream frames at the runtime monitor")
    Term.(const run $ seed $ cache_dir $ frames $ shifted)

(* ---- render ---- *)

let render_cmd =
  let run curvature lanes ego weather =
    let road = Road.make ~curvature ~curvature_rate:0.0 ~num_lanes:lanes () in
    let weather =
      match weather with
      | "clear" -> Scene.Clear
      | "rain" -> Scene.Rain
      | "fog" -> Scene.Fog
      | w ->
          Format.eprintf "unknown weather %S, using clear@." w;
          Scene.Clear
    in
    let scene = Scene.make ~weather ~road ~ego_lane:ego () in
    print_string (Camera.to_ascii Camera.default_config
      (Camera.render Camera.default_config scene));
    0
  in
  let curvature =
    Arg.(value & opt float (-0.02) & info [ "k"; "curvature" ] ~doc:"1/m.")
  in
  let lanes = Arg.(value & opt int 3 & info [ "lanes" ] ~doc:"Lane count.") in
  let ego = Arg.(value & opt int 1 & info [ "ego-lane" ] ~doc:"Ego lane.") in
  let weather =
    Arg.(value & opt string "clear" & info [ "weather" ] ~doc:"clear|rain|fog.")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"ASCII-render a synthetic camera frame")
    Term.(const run $ curvature $ lanes $ ego $ weather)

(* ---- certify ---- *)

let certify_cmd =
  let run seed cache_dir property psi strategy output workers timeout_s trace
      metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options = milp_options_of ~workers ~timeout_s in
    let case = Workflow.run_case ~milp_options prepared ~property ~psi ~strategy in
    let cert =
      Dpv_core.Certificate.of_case case
        ~features:prepared.Workflow.bounds_features
    in
    Dpv_core.Certificate.save cert ~path:output;
    Format.printf "%a@.saved to %s@." Dpv_core.Certificate.pp cert output;
    match case.Workflow.result.Verify.verdict with
    | Verify.Safe _ -> 0
    | Verify.Unsafe _ -> 1
    | Verify.Unknown _ -> 2
  in
  let output =
    Arg.(
      value & opt string "dpv.cert"
      & info [ "o"; "output" ] ~doc:"Certificate output path.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Verify and emit a deployable certificate (verdict, monitoring \
             region, characterizer head, statistical table)")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ output $ workers $ timeout_s $ trace_arg $ metrics_arg)

(* ---- check-cert ---- *)

let check_cert_cmd =
  let run seed cache_dir path =
    match Dpv_core.Certificate.load ~path with
    | Error e ->
        Format.eprintf "cannot load certificate: %s@." e;
        2
    | Ok cert -> (
        Format.printf "%a@." Dpv_core.Certificate.pp cert;
        let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
        match
          Dpv_core.Certificate.validate_witness cert
            ~perception:prepared.Workflow.perception
        with
        | Some true ->
            Format.printf "witness replay: CONFIRMED on the cached network@.";
            0
        | Some false ->
            Format.printf "witness replay: REFUTED (stale certificate?)@.";
            1
        | None ->
            Format.printf "no witness to replay@.";
            0)
  in
  let path =
    Arg.(value & opt string "dpv.cert" & info [ "f"; "file" ] ~doc:"Certificate path.")
  in
  Cmd.v
    (Cmd.info "check-cert" ~doc:"Load a certificate and replay its witness")
    Term.(const run $ seed $ cache_dir $ path)

(* ---- refine ---- *)

let refine_cmd =
  let run seed cache_dir property psi strategy max_steps workers timeout_s =
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options = milp_options_of ~workers ~timeout_s in
    let outcome =
      Dpv_core.Refine.run ~milp_options ?max_steps prepared ~property ~psi
        ~strategy
    in
    Format.printf "%a@." Dpv_core.Refine.pp_outcome outcome;
    match outcome with
    | Dpv_core.Refine.Proved _ -> 0
    | Dpv_core.Refine.Refuted _ -> 1
    | Dpv_core.Refine.Exhausted _ -> 2
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~doc:"Refinement levels to try (default: all).")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Verify with layer-wise incremental abstraction refinement")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ max_steps $ workers $ timeout_s)

(* ---- attack ---- *)

let attack_cmd =
  let run seed cache_dir property psi steps n_seeds =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    let characterizer, _, _ = Workflow.train_characterizer prepared ~property in
    let rng = Rng.create (seed + 99) in
    let seeds =
      Generator.scenes_and_images setup.Workflow.scenario rng ~n:n_seeds
      |> Array.to_list
      |> List.filter (fun (scene, _) -> Dpv_spec.Property.holds property scene)
      |> List.map snd
      |> Array.of_list
    in
    Format.printf "attacking from %d frames where %s holds...@."
      (Array.length seeds) property.Dpv_spec.Property.name;
    let config = { Dpv_core.Attack.default_config with steps } in
    match
      Dpv_core.Attack.search ~perception:prepared.Workflow.perception
        ~characterizer ~psi ~config ~seeds ()
    with
    | Some c ->
        Format.printf
          "counterexample after %d PGD steps (seed %d): output %a, logit %.3f@."
          c.Dpv_core.Attack.iterations c.Dpv_core.Attack.seed_index
          Dpv_tensor.Vec.pp c.Dpv_core.Attack.output c.Dpv_core.Attack.logit;
        print_string
          (Camera.to_ascii setup.Workflow.scenario.Generator.camera
             c.Dpv_core.Attack.image);
        0
    | None ->
        Format.printf "no counterexample found within the budget@.";
        1
  in
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"PGD steps per seed.")
  in
  let n_seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Frames to sample as seeds.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Search for a concrete image counterexample by PGD")
    Term.(const run $ seed $ cache_dir $ property_arg $ psi_arg $ steps $ n_seeds)

(* ---- info ---- *)

let info_cmd =
  let run seed cache_dir =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    Format.printf "model: %a@." Network.pp prepared.Workflow.perception;
    Format.printf "parameters: %d@."
      (Network.num_parameters prepared.Workflow.perception);
    Format.printf "cut layers available: %s@."
      (String.concat ", "
         (List.map string_of_int (Workflow.cut_options setup)));
    Format.printf "properties: %s@."
      (String.concat ", " (List.map fst Oracle.all));
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show model and experiment defaults")
    Term.(const run $ seed $ cache_dir)

let () =
  (* Deterministic fault injection (chaos testing).  Inert unless the
     DPV_FAULTS environment variable is set; a malformed spec exits 3
     before any work starts. *)
  Dpv_linprog.Faults.init_from_env ();
  (* Tracing via DPV_TRACE, same opt-in shape: the library never reads
     the environment, only executables do. *)
  Dpv_obs.Trace.init_from_env ();
  (* DPV_ABSINT_SCRATCH=1 forces the abstraction guide to re-propagate
     from scratch at every node (bit-identical results; CI uses it to
     prove incremental ≡ from-scratch). *)
  Dpv_core.Absguide.init_from_env ();
  let doc = "safety verification of direct perception neural networks" in
  let main =
    Cmd.group
      (Cmd.info "dpv" ~version:"1.0.0" ~doc)
      [
        train_cmd;
        verify_cmd;
        campaign_cmd;
        merge_journals_cmd;
        serve_cmd;
        client_cmd;
        top_cmd;
        certify_cmd;
        check_cert_cmd;
        refine_cmd;
        attack_cmd;
        monitor_cmd;
        render_cmd;
        info_cmd;
      ]
  in
  exit (Cmd.eval' main)
