(* dpv — command-line front end for the verification workflow.

   Subcommands:
     train     train the direct perception network and cache/save it
     verify    run one (property, psi, strategy) verification case
     campaign  run a JSON-specified batch of queries with a shared cache
               (optionally one --shard I/N slice of the partition)
     merge-journals  combine shard journals into one campaign journal/report
     monitor   stream frames at the runtime monitor
     render    print an ASCII rendering of a scene
     info      show the model architecture and experiment defaults     *)

module Workflow = Dpv_core.Workflow
module Verify = Dpv_core.Verify
module Report = Dpv_core.Report
module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Scene = Dpv_scenario.Scene
module Road = Dpv_scenario.Road
module Network = Dpv_nn.Network
module Serialize = Dpv_nn.Serialize
module Runtime = Dpv_monitor.Runtime
module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Propagate = Dpv_absint.Propagate
module Rng = Dpv_tensor.Rng

open Cmdliner

(* ---- shared options ---- *)

let cache_dir =
  let doc = "Directory for the trained-model cache." in
  Arg.(value & opt string "_cache" & info [ "cache-dir" ] ~doc)

let seed =
  let doc = "Random seed for the whole pipeline." in
  Arg.(value & opt int Workflow.default_setup.Workflow.seed & info [ "seed" ] ~doc)

let setup_of ~seed = { Workflow.default_setup with Workflow.seed }

let workers =
  let doc =
    "Branch-and-bound worker domains (0 = one per available core, \
     leaving one for the rest of the process)."
  in
  Arg.(value & opt int 1 & info [ "j"; "workers" ] ~doc)

let timeout_s =
  let doc =
    "Wall-clock solver deadline in seconds; an expired query reports \
     UNKNOWN (deadline exceeded) instead of searching to the node cap."
  in
  Arg.(value & opt (some float) None & info [ "timeout-s" ] ~doc)

let absint_arg =
  let doc =
    "Guide the branch-and-bound search with DeepPoly abstract \
     interpretation: before each node's LP is solved, bounds \
     propagated under the node's ReLU phase fixings fix further \
     phases without branching and prune nodes that provably miss \
     psi."
  in
  Arg.(value & flag & info [ "absint" ] ~doc)

let bisect_arg =
  let doc =
    "Input bisection depth (0 = off): split the feature box up to \
     $(docv) times along its widest dimension, discharge cheap \
     sub-boxes by bound propagation alone, and send only the \
     survivors to the MILP.  Verdicts merge soundly (UNSAFE \
     witnesses are re-validated concretely; SAFE requires every \
     sub-box safe)."
  in
  Arg.(value & opt int 0 & info [ "bisect" ] ~docv:"DEPTH" ~doc)

let bisect_timeout_arg =
  let doc =
    "Per-sub-box wall-clock budget in seconds (only with \
     $(b,--bisect); the overall deadline still applies)."
  in
  Arg.(value & opt (some float) None & info [ "bisect-timeout-s" ] ~doc)

let branch_rule_conv =
  let parse = function
    | "fractional" -> Ok Dpv_linprog.Milp.Most_fractional
    | "width" -> Ok Dpv_linprog.Milp.Bound_width
    | "order" -> Ok Dpv_linprog.Milp.Guide_order
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown branch rule %S (fractional, width, order)"
               s))
  in
  let print fmt r =
    Format.fprintf fmt "%s"
      (match r with
      | Dpv_linprog.Milp.Most_fractional -> "fractional"
      | Dpv_linprog.Milp.Bound_width -> "width"
      | Dpv_linprog.Milp.Guide_order -> "order")
  in
  Arg.conv (parse, print)

let branch_rule_arg =
  let doc =
    "Branch-variable selection: $(b,fractional) (most fractional \
     binary), $(b,width) (widest pre-activation interval as scored \
     by the DeepPoly guide) or $(b,order) (earliest guide-scored \
     binary in layer order, the cache-friendliest rule for the \
     incremental guide); $(b,width) and $(b,order) fall back to \
     $(b,fractional) without $(b,--absint)."
  in
  Arg.(
    value
    & opt branch_rule_conv Dpv_linprog.Milp.Most_fractional
    & info [ "branch-rule" ] ~doc)

let bisect_options_of ~bisect ~bisect_timeout_s =
  if bisect <= 0 then None
  else Some { Verify.max_depth = bisect; subbox_time_limit_s = bisect_timeout_s }

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of the run to $(docv) \
     (open in chrome://tracing or https://ui.perfetto.dev).  Tracing \
     is off — a single atomic load per site — unless this flag or the \
     DPV_TRACE environment variable enables it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the end-of-run metrics snapshot (dpv-metrics/1 JSON: \
     counters, high-water gauges, latency histograms) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Arm tracing before the work and flush trace/metrics after it — on
   the raising path too, so a crashed run still leaves its telemetry
   behind.  [Faults.trace_sites] stamps the trace with every fault
   site's occurrence/fired counts, making chaos runs self-describing. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Dpv_obs.Trace.configure ();
  let finish () =
    Option.iter
      (fun path ->
        Dpv_linprog.Faults.trace_sites ();
        Dpv_obs.Trace.write ~path)
      trace;
    Option.iter
      (fun path -> Dpv_obs.Metrics.save_json (Dpv_obs.Metrics.snapshot ()) ~path)
      metrics
  in
  Fun.protect ~finally:finish f

let milp_options_of ~workers ~timeout_s =
  let workers =
    if workers <= 0 then Dpv_linprog.Milp_par.default_workers () else workers
  in
  {
    Dpv_linprog.Milp.default_options with
    find_first = true;
    workers;
    time_limit_s = timeout_s;
  }

let property_conv =
  let parse s =
    match Oracle.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown property %S (try: %s)" s
               (String.concat ", " (List.map fst Oracle.all))))
  in
  let print fmt p = Format.fprintf fmt "%s" p.Dpv_spec.Property.name in
  Arg.conv (parse, print)

let property_arg =
  let doc = "Input property phi (bends-right, bends-left, straight, ...)." in
  Arg.(
    value
    & opt property_conv Oracle.bends_right
    & info [ "p"; "property" ] ~doc)

let parse_psi s =
  match String.split_on_char ':' s with
  | [ "far-left" ] -> Ok (Workflow.psi_steer_far_left ())
  | [ "far-left"; t ] ->
      Ok (Workflow.psi_steer_far_left ~threshold:(float_of_string t) ())
  | [ "far-right" ] -> Ok (Workflow.psi_steer_far_right ())
  | [ "far-right"; t ] ->
      Ok (Workflow.psi_steer_far_right ~threshold:(float_of_string t) ())
  | [ "straight" ] -> Ok (Workflow.psi_steer_straight ())
  | [ "straight"; h ] ->
      Ok (Workflow.psi_steer_straight ~halfwidth:(float_of_string h) ())
  | _ -> (
      (* Fall back to the raw inequality language, e.g.
         "y0 >= 2.5 && y1 <= 0.3". *)
      match Dpv_spec.Risk.of_string s with
      | Ok psi -> Ok psi
      | Error e ->
          Error
            (Printf.sprintf
               "not a named condition (far-left[:T], far-right[:T], \
                straight[:H]) and not a valid inequality (%s)"
               e))

let psi_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (parse_psi s) in
  let print fmt psi = Format.fprintf fmt "%s" psi.Dpv_spec.Risk.name in
  Arg.conv (parse, print)

let psi_arg =
  let doc =
    "Risk condition psi: far-left[:T], far-right[:T] or straight[:H]."
  in
  Arg.(value & opt psi_conv (Workflow.psi_steer_far_left ()) & info [ "psi" ] ~doc)

let parse_strategy = function
  | "static-box" -> Ok (Workflow.Static Propagate.Box)
  | "static-zonotope" -> Ok (Workflow.Static Propagate.Zonotope)
  | "static-deeppoly" -> Ok (Workflow.Static Propagate.Deeppoly)
  | "data-box" -> Ok Workflow.Data_box
  | "data-octagon" -> Ok Workflow.Data_octagon
  | s ->
      Error
        (Printf.sprintf
           "unknown strategy %S (static-box, static-zonotope, \
            static-deeppoly, data-box, data-octagon)"
           s)

let strategy_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (parse_strategy s) in
  let print fmt s = Format.fprintf fmt "%s" (Workflow.strategy_name s) in
  Arg.conv (parse, print)

let strategy_arg =
  let doc = "Bounds strategy for the region S." in
  Arg.(value & opt strategy_conv Workflow.Data_octagon & info [ "strategy" ] ~doc)

(* ---- train ---- *)

let train_cmd =
  let run seed cache_dir output =
    let prepared = Workflow.prepare_cached ~quiet:false ~cache_dir (setup_of ~seed) in
    Format.printf "trained: %a@." Network.pp prepared.Workflow.perception;
    Format.printf "val MAE: %.3f m / %.4f rad@." prepared.Workflow.val_mae.(0)
      prepared.Workflow.val_mae.(1);
    (match output with
    | Some path ->
        Serialize.save prepared.Workflow.perception ~path;
        Format.printf "saved model to %s@." path
    | None -> ());
    0
  in
  let output =
    let doc = "Also save the model to this path." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the direct perception network")
    Term.(const run $ seed $ cache_dir $ output)

(* ---- verify ---- *)

let verify_cmd =
  let run seed cache_dir property psi strategy cut workers timeout_s absint
      bisect bisect_timeout_s branch_rule trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options =
      { (milp_options_of ~workers ~timeout_s) with Dpv_linprog.Milp.branch_rule }
    in
    let bisect = bisect_options_of ~bisect ~bisect_timeout_s in
    let case =
      Workflow.run_case ~milp_options ?cut ~absint ?bisect prepared ~property
        ~psi ~strategy
    in
    Format.printf "%a@." Report.pp_case case;
    match case.Workflow.result.Verify.verdict with
    | Verify.Safe _ -> 0
    | Verify.Unsafe _ -> 1
    | Verify.Unknown _ -> 2
  in
  let cut =
    let doc = "Cut layer (defaults to the deepest ReLU)." in
    Arg.(value & opt (some int) None & info [ "cut" ] ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a (phi, psi) safety property of the cached network")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ cut $ workers $ timeout_s $ absint_arg $ bisect_arg
      $ bisect_timeout_arg $ branch_rule_arg $ trace_arg $ metrics_arg)

(* ---- campaign ---- *)

exception Spec_error of string

let spec_error fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

(* Typed field accessors over the hand-rolled JSON reader; every
   mistype names the offending key. *)
let j_int v key =
  match Dpv_core.Json.to_int v with
  | Some i -> i
  | None -> spec_error "%S must be an integer" key

let j_float v key =
  match Dpv_core.Json.to_float v with
  | Some f -> f
  | None -> spec_error "%S must be a number" key

let j_string v key =
  match Dpv_core.Json.to_string v with
  | Some s -> s
  | None -> spec_error "%S must be a string" key

let field obj key = Dpv_core.Json.member key obj
let int_field obj key ~default =
  match field obj key with None -> default | Some v -> j_int v key
let float_opt_field obj key =
  Option.map (fun v -> j_float v key) (field obj key)

(* The optional "setup" object shrinks the trained pipeline — CI smoke
   campaigns train a tiny network in seconds instead of the full
   default. *)
let setup_of_spec spec ~seed =
  let base = setup_of ~seed in
  match field spec "setup" with
  | None -> base
  | Some s ->
      let geti key default = int_field s key ~default in
      let hidden =
        match field s "hidden" with
        | None -> base.Workflow.hidden
        | Some v -> (
            match Dpv_core.Json.to_list v with
            | Some l -> List.map (fun x -> j_int x "hidden") l
            | None -> spec_error "\"hidden\" must be an array of integers")
      in
      let camera = base.Workflow.scenario.Generator.camera in
      let camera =
        {
          camera with
          Camera.width = geti "camera_width" camera.Camera.width;
          height = geti "camera_height" camera.Camera.height;
        }
      in
      {
        base with
        Workflow.hidden;
        cut = geti "cut" base.Workflow.cut;
        train_size = geti "train_size" base.Workflow.train_size;
        val_size = geti "val_size" base.Workflow.val_size;
        perception_epochs = geti "perception_epochs" base.Workflow.perception_epochs;
        characterizer_samples =
          geti "characterizer_samples" base.Workflow.characterizer_samples;
        bounds_samples = geti "bounds_samples" base.Workflow.bounds_samples;
        scenario = { base.Workflow.scenario with Generator.camera };
      }

(* --shard I/N: one deterministic slice of the query-key partition.
   Validation here mirrors Campaign.run's, so a bad value is a usage
   error instead of an uncaught Invalid_argument. *)
let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
        match (int_of_string_opt i, int_of_string_opt n) with
        | Some i, Some n when n >= 1 && 0 <= i && i < n -> Ok (i, n)
        | _ -> Error (`Msg (Printf.sprintf "shard %S: need I/N with 0 <= I < N" s)))
    | _ -> Error (`Msg (Printf.sprintf "shard %S: need I/N, e.g. 0/4" s))
  in
  let print fmt (i, n) = Format.fprintf fmt "%d/%d" i n in
  Arg.conv (parse, print)

let campaign_cmd =
  let run cache_dir spec_path output journal resume shard absint bisect
      bisect_timeout_s branch_rule trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let read_file path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    try
      let text =
        try read_file spec_path with Sys_error e -> spec_error "%s" e
      in
      let spec =
        match Dpv_core.Json.of_string text with
        | Ok v -> v
        | Error e -> spec_error "cannot parse %s: %s" spec_path e
      in
      let seed = int_field spec "seed" ~default:Workflow.default_setup.Workflow.seed in
      let runners = int_field spec "runners" ~default:1 in
      let workers = int_field spec "workers" ~default:1 in
      let budget_s = float_opt_field spec "budget_s" in
      let setup = setup_of_spec spec ~seed in
      let milp_options =
        {
          (milp_options_of ~workers ~timeout_s:(float_opt_field spec "timeout_s")) with
          Dpv_linprog.Milp.max_nodes =
            int_field spec "max_nodes"
              ~default:Dpv_linprog.Milp.default_options.Dpv_linprog.Milp.max_nodes;
          branch_rule;
        }
      in
      let bisect = bisect_options_of ~bisect ~bisect_timeout_s in
      (* An empty array is legal: a shard of a small spec can be empty
         too, and both must produce a valid (empty) report, not an
         error — CI merges such shards like any other. *)
      let query_specs =
        match Option.bind (field spec "queries") Dpv_core.Json.to_list with
        | Some l -> l
        | None -> spec_error "\"queries\" must be an array"
      in
      let prepared = Workflow.prepare_cached ~cache_dir setup in
      (* Characterizer training and bounds fitting are memoized across
         the spec; both are deterministic in (setup.seed, property, cut),
         so verdicts match individual `dpv verify` runs. *)
      let characterizers = Hashtbl.create 8 in
      let characterizer_for ~property ~cut =
        let key = (property.Dpv_spec.Property.name, cut) in
        match Hashtbl.find_opt characterizers key with
        | Some c -> c
        | None ->
            let c, _, _ = Workflow.train_characterizer ~cut prepared ~property in
            Hashtbl.add characterizers key c;
            c
      in
      let bounds_cache = Hashtbl.create 8 in
      let bounds_for ~strategy ~cut =
        let key = (Workflow.strategy_name strategy, cut) in
        match Hashtbl.find_opt bounds_cache key with
        | Some b -> b
        | None ->
            let b = Workflow.bounds_spec_of prepared ~cut strategy in
            Hashtbl.add bounds_cache key b;
            b
      in
      let queries =
        List.map
          (fun q ->
            let str key =
              match field q key with
              | Some v -> Some (j_string v key)
              | None -> None
            in
            let property =
              let name =
                match str "property" with
                | Some n -> n
                | None -> spec_error "query is missing \"property\""
              in
              match Oracle.find name with
              | Some p -> p
              | None -> spec_error "unknown property %S" name
            in
            let psi =
              match str "psi" with
              | None -> spec_error "query is missing \"psi\""
              | Some s -> (
                  match parse_psi s with
                  | Ok psi -> psi
                  | Error e -> spec_error "bad psi %S: %s" s e)
            in
            let strategy =
              match str "strategy" with
              | None -> spec_error "query is missing \"strategy\""
              | Some s -> (
                  match parse_strategy s with
                  | Ok st -> st
                  | Error e -> spec_error "%s" e)
            in
            let cut = int_field q "cut" ~default:setup.Workflow.cut in
            let characterizer_margin =
              Option.value (float_opt_field q "margin") ~default:0.0
            in
            let label =
              match str "name" with
              | Some n -> n
              | None ->
                  Printf.sprintf "%s|%s|%s" property.Dpv_spec.Property.name
                    psi.Dpv_spec.Risk.name
                    (Workflow.strategy_name strategy)
            in
            Dpv_core.Campaign.query ~characterizer_margin ~label
              ~characterizer:(characterizer_for ~property ~cut)
              ~psi
              ~bounds:(bounds_for ~strategy ~cut)
              ())
          query_specs
      in
      (* --resume implies journaling to the same file unless --journal
         overrides it: a resumed campaign that dies can itself be
         resumed. *)
      let resume_entries =
        Option.map
          (fun path ->
            match Dpv_core.Journal.load ~path with
            | Ok entries -> entries
            | Error e -> spec_error "cannot resume from %s: %s" path e)
          resume
      in
      let journal =
        match (journal, resume) with Some _, _ -> journal | None, r -> r
      in
      let report =
        Dpv_core.Campaign.run ~milp_options ~runners ?shard ?budget_s ?journal
          ?resume:resume_entries ~absint ?bisect
          ~perception:prepared.Workflow.perception queries
      in
      Format.printf "%a@." Report.pp_campaign report;
      if metrics <> None then
        Format.printf "%a@." Report.pp_metrics report.Dpv_core.Campaign.metrics;
      Dpv_core.Campaign.save_json report ~path:output;
      Format.printf "report written to %s@." output;
      let verdicts =
        List.filter_map
          (fun (qr : Dpv_core.Campaign.query_report) ->
            match qr.Dpv_core.Campaign.outcome with
            | Dpv_core.Campaign.Done r -> Some r.Verify.verdict
            | Dpv_core.Campaign.Crashed _ | Dpv_core.Campaign.Skipped _ -> None)
          report.Dpv_core.Campaign.query_reports
      in
      (* Exit-code precedence: a proven violation (1) outranks an
         incomplete campaign (4), which outranks an inconclusive
         verdict (2).  A degraded campaign must not exit 0: "no unsafe
         found" is not "all safe" when queries crashed or were
         skipped. *)
      if List.exists (function Verify.Unsafe _ -> true | _ -> false) verdicts
      then 1
      else if report.Dpv_core.Campaign.degraded then 4
      else if
        List.exists (function Verify.Unknown _ -> true | _ -> false) verdicts
      then 2
      else 0
    with Spec_error msg ->
      Format.eprintf "campaign: %s@." msg;
      3
  in
  let spec_path =
    let doc =
      "Campaign specification (JSON): top-level keys seed, runners, \
       workers, budget_s, timeout_s, max_nodes, setup and a queries \
       array of {name, property, psi, strategy, cut, margin} objects."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)
  in
  let output =
    Arg.(
      value
      & opt string "campaign_report.json"
      & info [ "o"; "output" ] ~doc:"JSON report output path.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ]
          ~doc:
            "Append each settled query to this crash-safe journal file \
             (JSON lines, atomically rewritten), enabling $(b,--resume) \
             after a kill.")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ]
          ~doc:
            "Replay completed verdicts from a journal written by a \
             previous run instead of re-solving them; crashed and \
             skipped queries are retried.  Implies journaling to the \
             same file unless $(b,--journal) is also given.")
  in
  let shard =
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Run slice $(i,I) of a deterministic $(i,N)-way partition \
             of the queries (by content digest).  Every shard reads \
             the full spec; run all N slices (any hosts, any order), \
             then combine their journals with $(b,dpv merge-journals).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a batch of verification queries concurrently with a \
             shared-encoding cache and write an aggregated JSON report")
    Term.(
      const run $ cache_dir $ spec_path $ output $ journal $ resume $ shard
      $ absint_arg $ bisect_arg $ bisect_timeout_arg $ branch_rule_arg
      $ trace_arg $ metrics_arg)

(* ---- merge-journals ---- *)

let merge_journals_cmd =
  let run output inputs report_out =
    match
      List.map
        (fun path ->
          match Dpv_core.Journal.load_with_meta ~path with
          | Ok x -> x
          | Error e -> spec_error "cannot load %s: %s" path e)
        inputs
    with
    | exception Spec_error msg ->
        Format.eprintf "merge-journals: %s@." msg;
        3
    | shards ->
        let entries, metas = Dpv_core.Campaign.merge_journals shards in
        Dpv_core.Journal.save ~path:output entries;
        Format.printf "merged %d journal%s: %d quer%s, %d shard trailer%s -> %s@."
          (List.length inputs)
          (if List.length inputs = 1 then "" else "s")
          (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          (List.length metas)
          (if List.length metas = 1 then "" else "s")
          output;
        Option.iter
          (fun path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Dpv_core.Campaign.merged_to_json ~entries ~metas));
            Format.printf "report written to %s@." path)
          report_out;
        Dpv_core.Campaign.worst_exit_code entries
  in
  let output =
    let doc =
      "Merged journal output path (JSON lines, written atomically).  \
       Valid as $(b,dpv campaign --resume) input: a merged partition \
       can be re-run unsharded to retry its crashed queries."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let inputs =
    let doc = "Shard journals to merge (from $(b,dpv campaign --shard))." in
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"JOURNAL" ~doc)
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ]
          ~doc:
            "Also write the merged dpv-campaign/2 JSON report here, with \
             metric totals summed exactly across the shard trailers.")
  in
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:
         "Merge shard journals into one campaign journal and report; \
          the exit code is the worst across shards (unsafe > degraded \
          > unknown > ok)")
    Term.(const run $ output $ inputs $ report_out)

(* ---- monitor ---- *)

let monitor_cmd =
  let run seed cache_dir frames shifted =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    let region =
      Runtime.Poly (Polyhedron.fit_octagon ~margin:0.05 prepared.Workflow.bounds_features)
    in
    let monitor =
      Runtime.create ~network:prepared.Workflow.perception
        ~cut:setup.Workflow.cut ~region
    in
    let config =
      if shifted then
        {
          setup.Workflow.scenario with
          Generator.rain_probability = 0.7;
          fog_probability = 0.3;
          camera =
            { setup.Workflow.scenario.Generator.camera with Camera.noise_std = 0.08 };
        }
      else setup.Workflow.scenario
    in
    let rng = Rng.create (seed + 31) in
    for _ = 1 to frames do
      let scene = Generator.sample_scene config rng in
      ignore (Runtime.infer monitor (Generator.render_scene config rng scene))
    done;
    Format.printf "%a@." Runtime.pp_stats (Runtime.stats monitor);
    0
  in
  let frames =
    Arg.(value & opt int 500 & info [ "n"; "frames" ] ~doc:"Frames to stream.")
  in
  let shifted =
    Arg.(
      value & flag
      & info [ "shifted" ] ~doc:"Stream distribution-shifted frames instead.")
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Stream frames at the runtime monitor")
    Term.(const run $ seed $ cache_dir $ frames $ shifted)

(* ---- render ---- *)

let render_cmd =
  let run curvature lanes ego weather =
    let road = Road.make ~curvature ~curvature_rate:0.0 ~num_lanes:lanes () in
    let weather =
      match weather with
      | "clear" -> Scene.Clear
      | "rain" -> Scene.Rain
      | "fog" -> Scene.Fog
      | w ->
          Format.eprintf "unknown weather %S, using clear@." w;
          Scene.Clear
    in
    let scene = Scene.make ~weather ~road ~ego_lane:ego () in
    print_string (Camera.to_ascii Camera.default_config
      (Camera.render Camera.default_config scene));
    0
  in
  let curvature =
    Arg.(value & opt float (-0.02) & info [ "k"; "curvature" ] ~doc:"1/m.")
  in
  let lanes = Arg.(value & opt int 3 & info [ "lanes" ] ~doc:"Lane count.") in
  let ego = Arg.(value & opt int 1 & info [ "ego-lane" ] ~doc:"Ego lane.") in
  let weather =
    Arg.(value & opt string "clear" & info [ "weather" ] ~doc:"clear|rain|fog.")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"ASCII-render a synthetic camera frame")
    Term.(const run $ curvature $ lanes $ ego $ weather)

(* ---- certify ---- *)

let certify_cmd =
  let run seed cache_dir property psi strategy output workers timeout_s trace
      metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options = milp_options_of ~workers ~timeout_s in
    let case = Workflow.run_case ~milp_options prepared ~property ~psi ~strategy in
    let cert =
      Dpv_core.Certificate.of_case case
        ~features:prepared.Workflow.bounds_features
    in
    Dpv_core.Certificate.save cert ~path:output;
    Format.printf "%a@.saved to %s@." Dpv_core.Certificate.pp cert output;
    match case.Workflow.result.Verify.verdict with
    | Verify.Safe _ -> 0
    | Verify.Unsafe _ -> 1
    | Verify.Unknown _ -> 2
  in
  let output =
    Arg.(
      value & opt string "dpv.cert"
      & info [ "o"; "output" ] ~doc:"Certificate output path.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Verify and emit a deployable certificate (verdict, monitoring \
             region, characterizer head, statistical table)")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ output $ workers $ timeout_s $ trace_arg $ metrics_arg)

(* ---- check-cert ---- *)

let check_cert_cmd =
  let run seed cache_dir path =
    match Dpv_core.Certificate.load ~path with
    | Error e ->
        Format.eprintf "cannot load certificate: %s@." e;
        2
    | Ok cert -> (
        Format.printf "%a@." Dpv_core.Certificate.pp cert;
        let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
        match
          Dpv_core.Certificate.validate_witness cert
            ~perception:prepared.Workflow.perception
        with
        | Some true ->
            Format.printf "witness replay: CONFIRMED on the cached network@.";
            0
        | Some false ->
            Format.printf "witness replay: REFUTED (stale certificate?)@.";
            1
        | None ->
            Format.printf "no witness to replay@.";
            0)
  in
  let path =
    Arg.(value & opt string "dpv.cert" & info [ "f"; "file" ] ~doc:"Certificate path.")
  in
  Cmd.v
    (Cmd.info "check-cert" ~doc:"Load a certificate and replay its witness")
    Term.(const run $ seed $ cache_dir $ path)

(* ---- refine ---- *)

let refine_cmd =
  let run seed cache_dir property psi strategy max_steps workers timeout_s =
    let prepared = Workflow.prepare_cached ~cache_dir (setup_of ~seed) in
    let milp_options = milp_options_of ~workers ~timeout_s in
    let outcome =
      Dpv_core.Refine.run ~milp_options ?max_steps prepared ~property ~psi
        ~strategy
    in
    Format.printf "%a@." Dpv_core.Refine.pp_outcome outcome;
    match outcome with
    | Dpv_core.Refine.Proved _ -> 0
    | Dpv_core.Refine.Refuted _ -> 1
    | Dpv_core.Refine.Exhausted _ -> 2
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~doc:"Refinement levels to try (default: all).")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Verify with layer-wise incremental abstraction refinement")
    Term.(
      const run $ seed $ cache_dir $ property_arg $ psi_arg $ strategy_arg
      $ max_steps $ workers $ timeout_s)

(* ---- attack ---- *)

let attack_cmd =
  let run seed cache_dir property psi steps n_seeds =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    let characterizer, _, _ = Workflow.train_characterizer prepared ~property in
    let rng = Rng.create (seed + 99) in
    let seeds =
      Generator.scenes_and_images setup.Workflow.scenario rng ~n:n_seeds
      |> Array.to_list
      |> List.filter (fun (scene, _) -> Dpv_spec.Property.holds property scene)
      |> List.map snd
      |> Array.of_list
    in
    Format.printf "attacking from %d frames where %s holds...@."
      (Array.length seeds) property.Dpv_spec.Property.name;
    let config = { Dpv_core.Attack.default_config with steps } in
    match
      Dpv_core.Attack.search ~perception:prepared.Workflow.perception
        ~characterizer ~psi ~config ~seeds ()
    with
    | Some c ->
        Format.printf
          "counterexample after %d PGD steps (seed %d): output %a, logit %.3f@."
          c.Dpv_core.Attack.iterations c.Dpv_core.Attack.seed_index
          Dpv_tensor.Vec.pp c.Dpv_core.Attack.output c.Dpv_core.Attack.logit;
        print_string
          (Camera.to_ascii setup.Workflow.scenario.Generator.camera
             c.Dpv_core.Attack.image);
        0
    | None ->
        Format.printf "no counterexample found within the budget@.";
        1
  in
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"PGD steps per seed.")
  in
  let n_seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Frames to sample as seeds.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Search for a concrete image counterexample by PGD")
    Term.(const run $ seed $ cache_dir $ property_arg $ psi_arg $ steps $ n_seeds)

(* ---- info ---- *)

let info_cmd =
  let run seed cache_dir =
    let setup = setup_of ~seed in
    let prepared = Workflow.prepare_cached ~cache_dir setup in
    Format.printf "model: %a@." Network.pp prepared.Workflow.perception;
    Format.printf "parameters: %d@."
      (Network.num_parameters prepared.Workflow.perception);
    Format.printf "cut layers available: %s@."
      (String.concat ", "
         (List.map string_of_int (Workflow.cut_options setup)));
    Format.printf "properties: %s@."
      (String.concat ", " (List.map fst Oracle.all));
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show model and experiment defaults")
    Term.(const run $ seed $ cache_dir)

let () =
  (* Deterministic fault injection (chaos testing).  Inert unless the
     DPV_FAULTS environment variable is set; a malformed spec exits 3
     before any work starts. *)
  Dpv_linprog.Faults.init_from_env ();
  (* Tracing via DPV_TRACE, same opt-in shape: the library never reads
     the environment, only executables do. *)
  Dpv_obs.Trace.init_from_env ();
  (* DPV_ABSINT_SCRATCH=1 forces the abstraction guide to re-propagate
     from scratch at every node (bit-identical results; CI uses it to
     prove incremental ≡ from-scratch). *)
  Dpv_core.Absguide.init_from_env ();
  let doc = "safety verification of direct perception neural networks" in
  let main =
    Cmd.group
      (Cmd.info "dpv" ~version:"1.0.0" ~doc)
      [
        train_cmd;
        verify_cmd;
        campaign_cmd;
        merge_journals_cmd;
        certify_cmd;
        check_cert_cmd;
        refine_cmd;
        attack_cmd;
        monitor_cmd;
        render_cmd;
        info_cmd;
      ]
  in
  exit (Cmd.eval' main)
