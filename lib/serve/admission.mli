(** Bounded, priority-aware admission for the serve daemon.

    Jobs wait here between acceptance and execution.  The queue is
    capacity-bounded and never blocks a submitter: a full (or closed)
    queue answers {!Rejected} immediately, which the server turns into
    an explicit busy reply with a retry hint — backpressure over
    silent loss.  Higher priority dequeues first; equal priorities are
    FIFO.  All operations are thread-safe. *)

type 'a t

type 'a admit =
  | Admitted of int  (** 0-based queue position at admission time *)
  | Rejected of { queue_depth : int }

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val submit : ?before:(unit -> unit) -> 'a t -> priority:int -> 'a -> 'a admit
(** Admit or reject, never block.  [before] (if given) runs under the
    queue lock after the capacity check and before the item becomes
    visible to {!take} — the server journals the job there, making
    "admitted implies journaled before execution" atomic. *)

val take : 'a t -> 'a option
(** Block until an item is available (highest priority first) or the
    queue is closed and empty — then [None]: the consumer's signal to
    exit. *)

val close : 'a t -> 'a list
(** Stop admitting (subsequent {!submit}s reject) and return the items
    still queued, emptying the queue — drain notifies their clients
    and leaves the jobs to journal-based recovery. *)

val depth : 'a t -> int
