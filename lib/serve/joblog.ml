module Json = Dpv_core.Json

(* The server's own journal: one JSON line per lifecycle event,
   appended and fsynced BEFORE the event's consequences can happen.
   Recovery is a pure fold over the lines — accepted jobs with no
   finished record are re-run from their persisted spec.  Torn tails
   (a crash mid-append) are ignored, same contract as
   {!Dpv_core.Journal}. *)

type event =
  | Accepted of {
      job : string;
      name : string;
      priority : int;
      budget_s : float option;
      deadline_s : float option;
      trace : string;
      spec : Json.t;
    }
  | Finished of { job : string; exit_code : int }
  | Client_gone of { job : string }

let encode = function
  | Accepted { job; name; priority; budget_s; deadline_s; trace; spec } ->
      let opt_num = function None -> Json.Null | Some f -> Json.Num f in
      Json.encode
        (Json.Obj
           [
             ("event", Json.Str "accepted");
             ("job", Json.Str job);
             ("name", Json.Str name);
             ("priority", Json.Num (float_of_int priority));
             ("budget_s", opt_num budget_s);
             ("deadline_s", opt_num deadline_s);
             ("trace", Json.Str trace);
             ("spec", spec);
           ])
  | Finished { job; exit_code } ->
      Json.encode
        (Json.Obj
           [
             ("event", Json.Str "finished");
             ("job", Json.Str job);
             ("exit_code", Json.Num (float_of_int exit_code));
           ])
  | Client_gone { job } ->
      Json.encode
        (Json.Obj [ ("event", Json.Str "client_gone"); ("job", Json.Str job) ])

let decode line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok v -> (
      let str key = Option.bind (Json.member key v) Json.to_string in
      let job () =
        match str "job" with
        | Some j -> Ok j
        | None -> Error "event is missing \"job\""
      in
      match str "event" with
      | Some "accepted" -> (
          match (job (), Json.member "spec" v) with
          | Error e, _ -> Error e
          | Ok _, None -> Error "accepted event is missing \"spec\""
          | Ok job, Some spec ->
              let num key = Option.bind (Json.member key v) Json.to_float in
              Ok
                (Accepted
                   {
                     job;
                     name = Option.value (str "name") ~default:job;
                     priority =
                       Option.value
                         (Option.bind (Json.member "priority" v) Json.to_int)
                         ~default:0;
                     budget_s = num "budget_s";
                     deadline_s = num "deadline_s";
                     (* pre-dpv-obs/2 joblogs have no trace id *)
                     trace = Option.value (str "trace") ~default:"";
                     spec;
                   }))
      | Some "finished" -> (
          match (job (), Option.bind (Json.member "exit_code" v) Json.to_int) with
          | Error e, _ -> Error e
          | Ok _, None -> Error "finished event is missing \"exit_code\""
          | Ok job, Some exit_code -> Ok (Finished { job; exit_code }))
      | Some "client_gone" ->
          Result.map (fun job -> Client_gone { job }) (job ())
      | Some e -> Error (Printf.sprintf "unknown event %S" e)
      | None -> Error "line has no \"event\"")

(* Append + fsync: when this returns, the event survives a crash.  The
   fd is opened per append — the joblog sees a handful of writes per
   job, nowhere near a hot path. *)
let append ~path event =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = encode event ^ "\n" in
      let buf = Bytes.of_string line in
      let rec put ofs len =
        if len > 0 then begin
          let n = Unix.write fd buf ofs len in
          put (ofs + n) (len - n)
        end
      in
      put 0 (Bytes.length buf);
      Unix.fsync fd)

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | line -> lines (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        let all = lines [] in
        let n = List.length all in
        let rec decode_all i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match decode line with
              | Ok e -> decode_all (i + 1) (e :: acc) rest
              | Error msg ->
                  if i = n - 1 then
                    (* Torn tail: the process died mid-append.  Every
                       complete line before it is intact. *)
                    Ok (List.rev acc)
                  else
                    Error (Printf.sprintf "%s, line %d: %s" path (i + 1) msg))
        in
        decode_all 0 [] all)
  end

let pending events =
  let finished = Hashtbl.create 8 in
  List.iter
    (function
      | Finished { job; _ } -> Hashtbl.replace finished job ()
      | Accepted _ | Client_gone _ -> ())
    events;
  List.filter_map
    (function
      | Accepted { job; name; priority; budget_s; deadline_s; trace; spec }
        when not (Hashtbl.mem finished job) ->
          Some (job, name, priority, budget_s, deadline_s, trace, spec)
      | _ -> None)
    events
