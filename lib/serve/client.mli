(** Client-side plumbing for [dpv client] and the serve tests. *)

val connect_unix : path:string -> Unix.file_descr
val connect_tcp : port:int -> Unix.file_descr
(** Both ignore [SIGPIPE] process-wide, same rationale as the
    server. *)

val rpc : Unix.file_descr -> string -> (string, string) result
(** One request frame, one reply frame — ping, metrics, drain. *)

type outcome =
  | Finished of { exit_code : int }
      (** the job's exit code, same severity ladder as [dpv campaign] *)
  | Busy of { retry_after_s : float }
      (** explicit backpressure; resubmit after the hint *)
  | Failed of string

val submit_and_stream :
  Unix.file_descr ->
  request:string ->
  on_frame:(string -> unit) ->
  outcome
(** Send a submit frame and consume the stream ([accepted], then
    [verdict]s, an optional [trace], then [done]).  [on_frame] sees
    every raw reply payload in arrival order. *)
