(** The [dpv serve] request/response dialect.

    Every frame payload is one JSON document.  Requests carry an ["op"]
    key — [submit] (a campaign spec), [query] (sugar: one query object,
    wrapped into a one-query spec), [metrics] (with an optional
    ["since"] cursor for delta polls), [ping], [drain].
    Responses carry a ["type"] key — [busy], [error], [accepted],
    [verdict] (streamed, one per settled query), [trace] (the job's
    spans, when requested), [done] (terminal, with the job's exit
    code), [metrics], [pong], [draining]. *)

module Json = Dpv_core.Json

type request =
  | Submit of {
      name : string option;
      priority : int;           (** higher dequeues first; default 0 *)
      budget_s : float option;  (** campaign budget once running *)
      deadline_s : float option;
          (** wall-clock deadline minted at acceptance; queue wait
              spends it, and the budget is carved from what remains *)
      trace : bool;
          (** stream the job's spans back as a [trace] frame before
              [done] *)
      spec : Json.t;            (** a [dpv campaign] spec document *)
    }
  | Metrics of { since : int option }
      (** [since]: a cursor from an earlier metrics reply; the response
          is then the delta since that snapshot ({!Dpv_obs.Metrics.since})
          instead of the full registry *)
  | Ping
  | Drain

val parse_request :
  ?max_depth:int -> ?max_bytes:int -> string -> (request, string) result
(** Parse one frame payload.  The limits are {!Json.of_string}'s —
    the server passes its frame cap so a hostile payload is bounded
    twice (framing and parsing). *)

(** {2 Response payloads} *)

val busy : retry_after_s:float -> queue_depth:int -> string
val error : message:string -> string

val accepted : job:string -> position:int -> trace:string -> string
(** Carries the job's trace id — the client-side end of the
    correlation chain. *)

val verdict_line : Dpv_core.Campaign.query_report -> string

val done_line :
  job:string -> ?trace:string -> Dpv_core.Campaign.report -> string

val metrics_reply :
  ?cursor:int -> ?since:int -> Dpv_obs.Metrics.snapshot -> string
(** [cursor] names this snapshot for later [since] polls; [since]
    (echoed from the request) marks the payload as a delta against
    that cursor — absent, the payload is the full registry. *)

val trace_reply : job:string -> trace:string -> events:string -> string
(** [events] is a complete Chrome [trace_event] JSON document carried
    as a string, written verbatim to the client's [--trace] file. *)

val pong : jobs_running:int -> queue_depth:int -> string
val draining : string

val version : string
(** ["dpv-serve/1"]. *)
