module Json = Dpv_core.Json
module Campaign = Dpv_core.Campaign
module Journal = Dpv_core.Journal
module Specfile = Dpv_core.Specfile
module Workflow = Dpv_core.Workflow
module Clock = Dpv_linprog.Clock
module Faults = Dpv_linprog.Faults
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_connections = Metrics.counter "serve.connections"
let m_submissions = Metrics.counter "serve.submissions"
let m_rejected_busy = Metrics.counter "serve.rejected_busy"
let m_client_gone = Metrics.counter "serve.client_gone"
let m_jobs_recovered = Metrics.counter "serve.jobs_recovered"
let m_jobs_finished = Metrics.counter "serve.jobs_finished"
let m_scrapes = Metrics.counter "serve.scrapes"
let m_slow_queries = Metrics.counter "serve.slow_queries"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_job_ns = Metrics.histogram "serve.job_ns"

(* Continuous-profiling feeds, published by the background sampler
   domain only — the solve path never touches them.  Cumulative
   sources (solver counters, GC words) become rolling-window rates;
   point sources (queue depth, jobs in system) are plain samples. *)
let s_jobs_in_system = Metrics.sample "serve.jobs_in_system"
let s_queue_depth_now = Metrics.sample "serve.queue_depth_now"
let s_gc_heap_words = Metrics.sample "gc.heap_words"
let r_solves = Metrics.rate "serve.solves_per_s"
let r_journal_appends = Metrics.rate "journal.appends_per_s"
let r_milp_nodes = Metrics.rate "milp.nodes_per_s"
let r_gc_minor_words = Metrics.rate "gc.minor_words_per_s"
let r_gc_majors = Metrics.rate "gc.majors_per_s"
let c_campaign_queries = Metrics.counter "campaign.queries"
let c_journal_appends = Metrics.counter "journal.appends"
let c_milp_nodes = Metrics.counter "milp.nodes"

type config = {
  capacity : int;
  runners : int;
  retry_after_s : float;
  max_frame_bytes : int;
  state_dir : string;
  settle_delay_s : float;
  slow_ms : float option;
  sampler_interval_s : float;
}

let default_config ~state_dir =
  {
    capacity = 4;
    runners = 1;
    retry_after_s = 1.0;
    max_frame_bytes = 8 * 1024 * 1024;
    state_dir;
    settle_delay_s = 0.0;
    slow_ms = None;
    sampler_interval_s = 0.5;
  }

(* One client connection's write side.  Verdicts stream from worker
   domains while the executor writes terminal frames, so every write
   holds [wlock]; the first failed write flips [alive] and the job
   carries on headless — a vanished client degrades nothing but its
   own view. *)
type reply = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  alive : bool Atomic.t;
}

(* The handler thread parks here while its submission streams, so one
   connection never interleaves two jobs' streams. *)
type waiter = {
  w_lock : Mutex.t;
  w_cond : Condition.t;
  mutable w_done : bool;
}

type job = {
  id : string;
  name : string;
  priority : int;
  budget_s : float option;
  deadline : Clock.deadline;
  runners : int;
  milp_options : Dpv_linprog.Milp.options;
  queries : Campaign.query list;
  trace : string;         (* correlates frames, joblog, journal, spans *)
  want_trace : bool;      (* stream the job's spans back before [done] *)
  reply : reply option;   (* [None]: recovered, runs headless *)
  waiter : waiter option;
}

type t = {
  config : config;
  perception : Dpv_nn.Network.t;
  builder : Specfile.builder;
  base : Specfile.parsed;
  base_spec : Json.t;
  cache : Campaign.cache;
  queue : job Admission.t;
  joblog_path : string;
  (* jobs accepted and not yet finished (queued or running); the
     capacity check and duplicate detection both read it, so both are
     decided under [submit_lock]. *)
  in_flight : (string, unit) Hashtbl.t;
  submit_lock : Mutex.t;
  in_system : int Atomic.t;
  jobs_running : int Atomic.t;
  draining : bool Atomic.t;
  before_execute : (string -> unit) option;
  recovered : int;
  mutable executor : Thread.t option;
  (* [since]-cursor store for cheap delta polls: each metrics reply
     names its snapshot with a fresh cursor; a later poll carrying that
     cursor gets [Metrics.since] of the two.  Bounded — ancient cursors
     age out and those clients fall back to a full snapshot. *)
  cursor_lock : Mutex.t;
  mutable cursors : (int * Metrics.snapshot) list;
  mutable next_cursor : int;
  mutable sampler : Dpv_obs.Sampler.t option;
}

let job_id queries =
  Digest.to_hex
    (Digest.string (String.concat "" (List.map Campaign.query_key queries)))

(* Short but collision-safe for one server's lifetime: jobs are
   content-addressed, so the id alone cannot distinguish a resubmission
   — the trace id adds acceptance instant and a process-wide counter. *)
let trace_counter = Atomic.make 0

let fresh_trace_id job_id =
  String.sub
    (Digest.to_hex
       (Digest.string
          (Printf.sprintf "%s:%.9f:%d:%d" job_id (Unix.gettimeofday ())
             (Unix.getpid ())
             (Atomic.fetch_and_add trace_counter 1))))
    0 16

let signal_waiter = function
  | None -> ()
  | Some w ->
      Mutex.protect w.w_lock (fun () ->
          w.w_done <- true;
          Condition.broadcast w.w_cond)

let await_waiter w =
  Mutex.protect w.w_lock (fun () ->
      while not w.w_done do
        Condition.wait w.w_cond w.w_lock
      done)

let send t ~job_id reply payload =
  if Atomic.get reply.alive then
    match Mutex.protect reply.wlock (fun () -> Frame.write reply.fd payload) with
    | Ok () -> ()
    | Error _ ->
        (* Record the loss exactly once; the job keeps running to its
           journal. *)
        if Atomic.exchange reply.alive false then begin
          Metrics.incr m_client_gone 1;
          try Joblog.append ~path:t.joblog_path (Joblog.Client_gone { job = job_id })
          with _ -> ()
        end

let job_journal_path t id =
  Filename.concat t.config.state_dir ("job-" ^ id ^ ".jsonl")

let slowlog_path t = Filename.concat t.config.state_dir "slowlog.jsonl"

(* ---- slow-query log ----

   After a traced job, any [campaign.query] / [campaign.subbox] span
   over the threshold becomes one structured JSON line with its
   per-phase breakdown: the time inside [verify.resolve-bounds],
   [campaign.shared-encode], [tighten.feature-box] and [milp.solve]
   spans that fall within the query's window.  Phases are attributed by
   time containment, so a phase run on behalf of a different concurrent
   query window is simply not counted here. *)
let slow_lines ~trace ~job ~slow_ms events =
  let spans =
    List.filter_map
      (function
        | Trace.Complete { name; ts_ns; dur_ns; args; _ } ->
            Some (name, ts_ns, dur_ns, args)
        | Trace.Instant _ | Trace.Thread_name _ -> None)
      events
  in
  let ms ns = float_of_int ns /. 1e6 in
  let phase_ms ~t0 ~t1 pname =
    ms
      (List.fold_left
         (fun acc (name, ts, dur, _) ->
           if name = pname && ts >= t0 && ts + dur <= t1 then acc + dur
           else acc)
         0 spans)
  in
  List.filter_map
    (fun (name, ts, dur, args) ->
      if
        (name = "campaign.query" || name = "campaign.subbox")
        && ms dur > slow_ms
      then begin
        let label = Option.value (List.assoc_opt "label" args) ~default:"" in
        let t1 = ts + dur in
        Some
          (Printf.sprintf
             "{\"slow_query\": 1, \"trace\": %S, \"job\": %S, \"span\": %S, \
              \"label\": %S, \"wall_ms\": %.3f, \"threshold_ms\": %.3f, \
              \"phases\": {\"resolve_bounds_ms\": %.3f, \"encode_ms\": %.3f, \
              \"tighten_ms\": %.3f, \"milp_ms\": %.3f}}"
             trace job name label (ms dur) slow_ms
             (phase_ms ~t0:ts ~t1 "verify.resolve-bounds")
             (phase_ms ~t0:ts ~t1 "campaign.shared-encode")
             (phase_ms ~t0:ts ~t1 "tighten.feature-box")
             (phase_ms ~t0:ts ~t1 "milp.solve"))
      end
      else None)
    spans

let append_slowlog t lines =
  if lines <> [] then begin
    Metrics.incr m_slow_queries (List.length lines);
    try
      let oc =
        open_out_gen [ Open_append; Open_creat ] 0o644 (slowlog_path t)
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter (fun l -> output_string oc (l ^ "\n")) lines)
    with Sys_error _ -> ()
  end

(* ---- execution ---- *)

let execute t job =
  let t0 = Clock.monotonic_ns () in
  (* Job-scoped collection: when the client asked for its trace (or a
     slow-query threshold is set) and no global trace is running, arm
     the buffer for just this job and drop it afterwards.  The ambient
     context stamps the trace id into every span recorded meanwhile —
     including those from pool worker domains — which is what makes the
     per-job extract possible. *)
  let job_armed =
    (not (Trace.enabled ()))
    && (job.want_trace || t.config.slow_ms <> None)
    && job.trace <> ""
  in
  if job_armed then Trace.arm ();
  Fun.protect
    ~finally:(fun () ->
      if job_armed then begin
        Trace.disable ();
        Trace.clear ()
      end)
  @@ fun () ->
  (* Recovered jobs from pre-dpv-obs/2 joblogs have no trace id; they
     run without ambient context rather than stamping an empty one. *)
  (if job.trace = "" then fun f -> f () else Trace.with_context job.trace)
  @@ fun () ->
  (* Explicit begin/complete rather than [with_span]: the job's trace
     is extracted while the job-level span is still open, so it must be
     closed by hand just before extraction to land in its own frame. *)
  let span_t0 = Trace.begin_ns () in
  let end_span () =
    Trace.complete
      ~args:[ ("job", job.id); ("name", job.name) ]
      ~name:"serve.job" span_t0
  in
  (match t.before_execute with Some f -> f job.id | None -> ());
  let journal_path = job_journal_path t job.id in
  (* The per-job campaign journal is the replay store: a job killed (or
     resubmitted) resumes from it bit-identically via the same --resume
     machinery the batch CLI uses. *)
  let resume =
    if Sys.file_exists journal_path then
      match Journal.load ~path:journal_path with
      | Ok entries -> Some entries
      | Error _ -> None
    else None
  in
  (* Queue wait spends the client's deadline; the budget is carved from
     what remains at the moment execution starts. *)
  let budget_s = Clock.carve job.deadline job.budget_s in
  let on_settled qr =
    (match job.reply with
    | Some r -> send t ~job_id:job.id r (Protocol.verdict_line qr)
    | None -> ());
    if t.config.settle_delay_s > 0.0 then Unix.sleepf t.config.settle_delay_s
  in
  let finish () =
    Mutex.protect t.submit_lock (fun () -> Hashtbl.remove t.in_flight job.id);
    Atomic.decr t.in_system
  in
  match
    Campaign.run ~milp_options:job.milp_options ~runners:job.runners ?budget_s
      ~journal:journal_path ?resume ~cache:t.cache ~on_settled
      ~trace:job.trace ~perception:t.perception job.queries
  with
  | report ->
      let code = Campaign.report_exit_code report in
      (try Joblog.append ~path:t.joblog_path (Joblog.Finished { job = job.id; exit_code = code })
       with _ -> ());
      (* Capacity is released before the done frame goes out: a client
         that reacts to [done] by resubmitting immediately must not
         race its own job's slot. *)
      finish ();
      end_span ();
      (* The job's spans, extracted while still buffered: the trace
         frame must precede [done] (the stream's terminal frame), and
         the slow-query log wants the same extract. *)
      if job.trace <> "" && (job.want_trace || t.config.slow_ms <> None)
      then begin
        let events = Trace.tagged_events job.trace in
        (match t.config.slow_ms with
        | Some slow_ms ->
            append_slowlog t
              (slow_lines ~trace:job.trace ~job:job.id ~slow_ms events)
        | None -> ());
        match (job.want_trace, job.reply) with
        | true, Some r ->
            send t ~job_id:job.id r
              (Protocol.trace_reply ~job:job.id ~trace:job.trace
                 ~events:(Trace.events_to_json events))
        | _ -> ()
      end;
      (match job.reply with
      | Some r ->
          send t ~job_id:job.id r
            (Protocol.done_line ~job:job.id ~trace:job.trace report)
      | None -> ());
      Metrics.incr m_jobs_finished 1;
      Metrics.observe m_job_ns (Clock.monotonic_ns () - t0);
      signal_waiter job.waiter
  | exception e ->
      (* Fault isolation: a crashing job degrades that job only — the
         pool, the queue and every other connection are untouched.
         Exit 4 is the same degraded code a crashed batch campaign
         earns. *)
      let msg = Printexc.to_string e in
      (try Joblog.append ~path:t.joblog_path (Joblog.Finished { job = job.id; exit_code = 4 })
       with _ -> ());
      finish ();
      end_span ();
      (match job.reply with
      | Some r ->
          send t ~job_id:job.id r
            (Protocol.error ~message:(Printf.sprintf "job %s crashed: %s" job.id msg))
      | None -> ());
      Metrics.incr m_jobs_finished 1;
      signal_waiter job.waiter

let executor_loop t =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some job ->
        Atomic.incr t.jobs_running;
        (try execute t job with _ -> signal_waiter job.waiter);
        Atomic.decr t.jobs_running;
        loop ()
  in
  loop ()

(* ---- submission ---- *)

(* Submissions may omit "seed"/"setup": they inherit the server's base
   spec, so the common client (same pipeline, new queries) stays
   small.  An explicit setup must match the server's — the resident
   trained pipeline is fixed at startup. *)
let resolve_spec t spec =
  match spec with
  | Json.Obj fields ->
      let fields =
        if List.mem_assoc "seed" fields then fields
        else ("seed", Json.Num (float_of_int t.base.Specfile.seed)) :: fields
      in
      let fields =
        if List.mem_assoc "setup" fields then fields
        else
          match Json.member "setup" t.base_spec with
          | Some s -> ("setup", s) :: fields
          | None -> fields
      in
      Json.Obj fields
  | v -> v

type prepared_job = {
  p_spec : Json.t;         (* resolved; what the joblog persists *)
  p_parsed : Specfile.parsed;
  p_queries : Campaign.query list;
  p_id : string;
}

let prepare_submission t spec =
  let spec = resolve_spec t spec in
  match Specfile.parse spec with
  | Error e -> Error (Printf.sprintf "bad spec: %s" e)
  | Ok parsed ->
      if parsed.Specfile.setup <> t.base.Specfile.setup then
        Error
          "setup mismatch: this server's trained pipeline was prepared with \
           a different setup/seed; omit \"setup\" and \"seed\" to inherit it"
      else begin
        match
          Specfile.queries t.builder
            ~default_cut:parsed.Specfile.setup.Workflow.cut
            parsed.Specfile.query_specs
        with
        | Error e -> Error (Printf.sprintf "bad query: %s" e)
        | Ok queries ->
            Ok { p_spec = spec; p_parsed = parsed; p_queries = queries;
                 p_id = job_id queries }
      end

type admit_result =
  | Accepted of { job : string; position : int; trace : string; waiter : waiter }
  | Busy of { queue_depth : int }
  | Refused of string

let admit t ~name ~priority ~budget_s ~deadline_s ~want_trace ~reply prep =
  let id = prep.p_id in
  let name = Option.value name ~default:(String.sub id 0 8) in
  let parsed = prep.p_parsed in
  let trace = fresh_trace_id id in
  let w = { w_lock = Mutex.create (); w_cond = Condition.create (); w_done = false } in
  let job =
    {
      id;
      name;
      priority;
      budget_s;
      deadline = Clock.deadline_after deadline_s;
      runners =
        Stdlib.min (Stdlib.max 1 parsed.Specfile.runners) t.config.runners;
      milp_options = Specfile.milp_options parsed;
      queries = prep.p_queries;
      trace;
      want_trace;
      reply;
      waiter = (match reply with None -> None | Some _ -> Some w);
    }
  in
  Mutex.protect t.submit_lock (fun () ->
      if Hashtbl.mem t.in_flight id then
        (* The same job is already queued or running: an immediate
           duplicate gains nothing (its verdicts land in the same
           journal), so the client is told to come back — once the
           twin finishes, resubmission replays from the journal. *)
        Busy { queue_depth = Atomic.get t.in_system }
      else if Atomic.get t.in_system >= t.config.capacity then begin
        Metrics.incr m_rejected_busy 1;
        Busy { queue_depth = Atomic.get t.in_system }
      end
      else begin
        match
          Admission.submit
            ~before:(fun () ->
              (* Journaled before the executor can see it: [Accepted]
                 on disk is the no-lost-jobs guarantee.  A failing
                 append aborts admission — an unjournalable job would
                 be a silent non-guarantee. *)
              Joblog.append ~path:t.joblog_path
                (Joblog.Accepted
                   {
                     job = id;
                     name;
                     priority;
                     budget_s;
                     deadline_s;
                     trace;
                     spec = prep.p_spec;
                   });
              Hashtbl.replace t.in_flight id ();
              Atomic.incr t.in_system)
            t.queue ~priority job
        with
        | Admission.Admitted position ->
            Metrics.incr m_submissions 1;
            Metrics.set_max m_queue_depth (Atomic.get t.in_system);
            Accepted { job = id; position; trace; waiter = w }
        | Admission.Rejected { queue_depth } ->
            Metrics.incr m_rejected_busy 1;
            Busy { queue_depth }
        | exception e ->
            Refused
              (Printf.sprintf "cannot journal job: %s" (Printexc.to_string e))
      end)

(* ---- connections ---- *)

(* Bounded cursor store: enough live cursors for a handful of pollers
   (dpv top keeps exactly one), small enough that a client minting a
   cursor per poll cannot grow the server. *)
let max_cursors = 16

let metrics_with_cursor t ~since =
  Mutex.protect t.cursor_lock (fun () ->
      let snap = Metrics.snapshot () in
      let cursor = t.next_cursor in
      t.next_cursor <- cursor + 1;
      t.cursors <-
        (cursor, snap) :: List.filteri (fun i _ -> i < max_cursors - 1) t.cursors;
      match Option.bind since (fun c -> List.assoc_opt c t.cursors) with
      | Some before when since <> Some cursor ->
          Protocol.metrics_reply ~cursor ?since (Metrics.since ~before snap)
      | _ ->
          (* No cursor, an aged-out cursor, or (degenerate) the one just
             minted: a full snapshot, with no "since" echo. *)
          Protocol.metrics_reply ~cursor snap)

let handle_conn t fd =
  Metrics.incr m_connections 1;
  Trace.with_span "serve.conn" @@ fun () ->
  let reply = { fd; wlock = Mutex.create (); alive = Atomic.make true } in
  let direct payload =
    ignore (Mutex.protect reply.wlock (fun () -> Frame.write fd payload))
  in
  let rec loop () =
    match Frame.read ~max_bytes:t.config.max_frame_bytes fd with
    | Error Frame.Closed -> ()
    | Error (Frame.Torn msg) ->
        (* The stream is no longer frame-aligned: answer with a framed
           error and close this connection — and only this one. *)
        direct (Protocol.error ~message:(Printf.sprintf "torn frame: %s" msg))
    | Ok payload -> (
        match Protocol.parse_request payload with
        | Error msg ->
            direct (Protocol.error ~message:msg);
            loop ()
        | Ok Protocol.Ping ->
            direct
              (Protocol.pong
                 ~jobs_running:(Atomic.get t.jobs_running)
                 ~queue_depth:(Admission.depth t.queue));
            loop ()
        | Ok (Protocol.Metrics { since }) ->
            direct (metrics_with_cursor t ~since);
            loop ()
        | Ok Protocol.Drain ->
            direct Protocol.draining;
            Atomic.set t.draining true;
            loop ()
        | Ok (Protocol.Submit { name; priority; budget_s; deadline_s; trace; spec })
          -> (
            if Atomic.get t.draining then begin
              direct Protocol.draining;
              loop ()
            end
            else
              match prepare_submission t spec with
              | Error msg ->
                  direct (Protocol.error ~message:msg);
                  loop ()
              | Ok prep -> (
                  match
                    admit t ~name ~priority ~budget_s ~deadline_s
                      ~want_trace:trace ~reply:(Some reply) prep
                  with
                  | Busy { queue_depth } ->
                      direct
                        (Protocol.busy ~retry_after_s:t.config.retry_after_s
                           ~queue_depth);
                      loop ()
                  | Refused msg ->
                      direct (Protocol.error ~message:msg);
                      loop ()
                  | Accepted { job; position; trace; waiter } ->
                      direct (Protocol.accepted ~job ~position ~trace);
                      (* Park until the stream finishes, so a pipelined
                         next request never interleaves two jobs'
                         verdicts on this connection. *)
                      await_waiter waiter;
                      if Atomic.get reply.alive then loop ())))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* ---- lifecycle ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?config ?before_execute ~perception ~builder ~base ~base_spec () =
  (* A client vanishing mid-write must be an [EPIPE] result, not a
     process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let config =
    match config with Some c -> c | None -> default_config ~state_dir:"_serve"
  in
  mkdir_p config.state_dir;
  let joblog_path = Filename.concat config.state_dir "joblog.jsonl" in
  let pending =
    match Joblog.load ~path:joblog_path with
    | Ok events -> Joblog.pending events
    | Error _ -> []
  in
  let t =
    {
      config;
      perception;
      builder;
      base;
      base_spec;
      cache = Campaign.create_cache ();
      queue =
        Admission.create
          ~capacity:(Stdlib.max config.capacity (List.length pending));
      joblog_path;
      in_flight = Hashtbl.create 8;
      submit_lock = Mutex.create ();
      in_system = Atomic.make 0;
      jobs_running = Atomic.make 0;
      draining = Atomic.make false;
      before_execute;
      recovered = List.length pending;
      executor = None;
      cursor_lock = Mutex.create ();
      cursors = [];
      next_cursor = 1;
      sampler = None;
    }
  in
  (* Restart recovery: every accepted-but-unfinished job re-enters the
     queue from its persisted spec, headless, before any client can
     connect.  Its campaign journal then replays the queries that had
     already settled. *)
  List.iter
    (fun (id, name, priority, budget_s, deadline_s, trace, spec) ->
      match prepare_submission t spec with
      | Error _ -> ()  (* spec no longer parses: leave it journaled *)
      | Ok prep ->
          let prep = { prep with p_id = id } in
          (match
             Mutex.protect t.submit_lock (fun () ->
                 if Hashtbl.mem t.in_flight id then `Dup
                 else begin
                   Hashtbl.replace t.in_flight id ();
                   Atomic.incr t.in_system;
                   `Fresh
                 end)
           with
          | `Dup -> ()
          | `Fresh ->
              Metrics.incr m_jobs_recovered 1;
              let job =
                {
                  id;
                  name;
                  priority;
                  budget_s;
                  (* The original acceptance instant is gone; the
                     deadline restarts at recovery. *)
                  deadline = Clock.deadline_after deadline_s;
                  runners =
                    Stdlib.min
                      (Stdlib.max 1 prep.p_parsed.Specfile.runners)
                      t.config.runners;
                  milp_options = Specfile.milp_options prep.p_parsed;
                  queries = prep.p_queries;
                  (* The joblog's trace id survives the restart, so the
                     recovered run's spans and journal meta still
                     correlate with the original acceptance. *)
                  trace;
                  want_trace = false;
                  reply = None;
                  waiter = None;
                }
              in
              ignore (Admission.submit t.queue ~priority job)))
    pending;
  t.executor <- Some (Thread.create executor_loop t);
  (* The continuous-profiling tick.  Reading counters and Gc.quick_stat
     is a handful of loads every half second — observability the hot
     path never feels. *)
  t.sampler <-
    Some
      (Dpv_obs.Sampler.start ~interval_s:config.sampler_interval_s
         ~sample:(fun ~now_ns ->
           let gc = Gc.quick_stat () in
           Metrics.set s_jobs_in_system (Atomic.get t.in_system);
           Metrics.set s_queue_depth_now (Admission.depth t.queue);
           Metrics.set s_gc_heap_words gc.Gc.heap_words;
           Metrics.rate_tick r_solves ~now_ns
             (Metrics.counter_value c_campaign_queries);
           Metrics.rate_tick r_journal_appends ~now_ns
             (Metrics.counter_value c_journal_appends);
           Metrics.rate_tick r_milp_nodes ~now_ns
             (Metrics.counter_value c_milp_nodes);
           Metrics.rate_tick r_gc_minor_words ~now_ns
             (int_of_float gc.Gc.minor_words);
           Metrics.rate_tick r_gc_majors ~now_ns gc.Gc.major_collections)
         ());
  t

let recovered t = t.recovered

let request_drain t = Atomic.set t.draining true

let draining t = Atomic.get t.draining

(* Stop admitting, notify queued clients, finish the running job, join
   the executor.  Queued jobs stay journaled — restart recovery picks
   them up; their clients are told so explicitly. *)
let drain t =
  Atomic.set t.draining true;
  let queued = Admission.close t.queue in
  List.iter
    (fun job ->
      (match job.reply with
      | Some r ->
          send t ~job_id:job.id r
            (Protocol.error
               ~message:
                 (Printf.sprintf
                    "server draining; job %s is journaled and will run on \
                     restart"
                    job.id))
      | None -> ());
      signal_waiter job.waiter)
    queued;
  (match t.sampler with
  | Some s ->
      Dpv_obs.Sampler.stop s;
      t.sampler <- None
  | None -> ());
  match t.executor with
  | None -> ()
  | Some th ->
      Thread.join th;
      t.executor <- None

let listen_unix ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

(* ---- metrics scrape endpoint ----

   A minimal GET-only HTTP responder for Prometheus-style scrapes, on
   the same select loop as the protocol listener — no HTTP library, no
   extra deps.  One short-lived thread per scrape; any failure (bad
   request, timeout, injected tear) closes that connection only. *)

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let max_scrape_head = 16 * 1024

let handle_scrape fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  try
    (* A stalled scraper must not pin the handler thread. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let buf = Bytes.create 1024 in
    let head = Buffer.create 256 in
    let rec read_head () =
      if Buffer.length head <= max_scrape_head then begin
        let n = Unix.read fd buf 0 (Bytes.length buf) in
        if n > 0 then begin
          Buffer.add_subbytes head buf 0 n;
          let s = Buffer.contents head in
          if not (has_substring s "\r\n\r\n" || has_substring s "\n\n") then
            read_head ()
        end
      end
    in
    read_head ();
    let req = Buffer.contents head in
    let write_all s =
      let b = Bytes.of_string s in
      let rec put ofs len =
        if len > 0 then begin
          let n = Unix.write fd b ofs len in
          put (ofs + n) (len - n)
        end
      in
      put 0 (Bytes.length b)
    in
    if String.length req < 4 || String.sub req 0 4 <> "GET " then
      write_all
        "HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\n\
         Content-Length: 0\r\nConnection: close\r\n\r\n"
    else begin
      Metrics.incr m_scrapes 1;
      let body = Dpv_obs.Expo.render (Metrics.snapshot ()) in
      if Faults.fire Faults.Serve_scrape then begin
        (* Injected tear: promise twice the bytes, send half, vanish.
           The scraper sees a truncated response; the server must shrug
           — this connection closes and nothing else notices. *)
        let half = String.sub body 0 (String.length body / 2) in
        write_all
          (Printf.sprintf
             "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
              charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n\
              %s"
             (2 * String.length body)
             half)
      end
      else
        write_all
          (Printf.sprintf
             "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
              charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n\
              %s"
             (String.length body) body)
    end
  with _ -> ()

let serve ?scrape_fd t listen_fd =
  let watched = listen_fd :: Option.to_list scrape_fd in
  while not (Atomic.get t.draining) do
    match Unix.select watched [] [] 0.2 with
    | [], _, _ -> ()
    | ready, _, _ ->
        List.iter
          (fun rfd ->
            if Some rfd = scrape_fd then (
              match Unix.accept rfd with
              | fd, _ ->
                  ignore
                    (Thread.create (fun () -> try handle_scrape fd with _ -> ()) ())
              | exception
                  Unix.Unix_error
                    ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
                  ())
            else
              match Unix.accept listen_fd with
              | fd, _ ->
                  if Faults.fire Faults.Serve_accept then begin
                    (* The injected accept hiccup: the connection dies
                       between accept and handoff.  Absorbed — the loop
                       keeps listening. *)
                    try Unix.close fd with Unix.Unix_error _ -> ()
                  end
                  else
                    ignore
                      (Thread.create
                         (fun () -> try handle_conn t fd with _ -> ())
                         ())
              | exception
                  Unix.Unix_error
                    ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
                  ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match scrape_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  drain t
