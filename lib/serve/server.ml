module Json = Dpv_core.Json
module Campaign = Dpv_core.Campaign
module Journal = Dpv_core.Journal
module Specfile = Dpv_core.Specfile
module Workflow = Dpv_core.Workflow
module Clock = Dpv_linprog.Clock
module Faults = Dpv_linprog.Faults
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_connections = Metrics.counter "serve.connections"
let m_submissions = Metrics.counter "serve.submissions"
let m_rejected_busy = Metrics.counter "serve.rejected_busy"
let m_client_gone = Metrics.counter "serve.client_gone"
let m_jobs_recovered = Metrics.counter "serve.jobs_recovered"
let m_jobs_finished = Metrics.counter "serve.jobs_finished"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_job_ns = Metrics.histogram "serve.job_ns"

type config = {
  capacity : int;
  runners : int;
  retry_after_s : float;
  max_frame_bytes : int;
  state_dir : string;
  settle_delay_s : float;
}

let default_config ~state_dir =
  {
    capacity = 4;
    runners = 1;
    retry_after_s = 1.0;
    max_frame_bytes = 8 * 1024 * 1024;
    state_dir;
    settle_delay_s = 0.0;
  }

(* One client connection's write side.  Verdicts stream from worker
   domains while the executor writes terminal frames, so every write
   holds [wlock]; the first failed write flips [alive] and the job
   carries on headless — a vanished client degrades nothing but its
   own view. *)
type reply = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  alive : bool Atomic.t;
}

(* The handler thread parks here while its submission streams, so one
   connection never interleaves two jobs' streams. *)
type waiter = {
  w_lock : Mutex.t;
  w_cond : Condition.t;
  mutable w_done : bool;
}

type job = {
  id : string;
  name : string;
  priority : int;
  budget_s : float option;
  deadline : Clock.deadline;
  runners : int;
  milp_options : Dpv_linprog.Milp.options;
  queries : Campaign.query list;
  reply : reply option;   (* [None]: recovered, runs headless *)
  waiter : waiter option;
}

type t = {
  config : config;
  perception : Dpv_nn.Network.t;
  builder : Specfile.builder;
  base : Specfile.parsed;
  base_spec : Json.t;
  cache : Campaign.cache;
  queue : job Admission.t;
  joblog_path : string;
  (* jobs accepted and not yet finished (queued or running); the
     capacity check and duplicate detection both read it, so both are
     decided under [submit_lock]. *)
  in_flight : (string, unit) Hashtbl.t;
  submit_lock : Mutex.t;
  in_system : int Atomic.t;
  jobs_running : int Atomic.t;
  draining : bool Atomic.t;
  before_execute : (string -> unit) option;
  recovered : int;
  mutable executor : Thread.t option;
}

let job_id queries =
  Digest.to_hex
    (Digest.string (String.concat "" (List.map Campaign.query_key queries)))

let signal_waiter = function
  | None -> ()
  | Some w ->
      Mutex.protect w.w_lock (fun () ->
          w.w_done <- true;
          Condition.broadcast w.w_cond)

let await_waiter w =
  Mutex.protect w.w_lock (fun () ->
      while not w.w_done do
        Condition.wait w.w_cond w.w_lock
      done)

let send t ~job_id reply payload =
  if Atomic.get reply.alive then
    match Mutex.protect reply.wlock (fun () -> Frame.write reply.fd payload) with
    | Ok () -> ()
    | Error _ ->
        (* Record the loss exactly once; the job keeps running to its
           journal. *)
        if Atomic.exchange reply.alive false then begin
          Metrics.incr m_client_gone 1;
          try Joblog.append ~path:t.joblog_path (Joblog.Client_gone { job = job_id })
          with _ -> ()
        end

let job_journal_path t id =
  Filename.concat t.config.state_dir ("job-" ^ id ^ ".jsonl")

(* ---- execution ---- *)

let execute t job =
  let t0 = Clock.monotonic_ns () in
  Trace.with_span ~args:[ ("job", job.id); ("name", job.name) ] "serve.job"
  @@ fun () ->
  (match t.before_execute with Some f -> f job.id | None -> ());
  let journal_path = job_journal_path t job.id in
  (* The per-job campaign journal is the replay store: a job killed (or
     resubmitted) resumes from it bit-identically via the same --resume
     machinery the batch CLI uses. *)
  let resume =
    if Sys.file_exists journal_path then
      match Journal.load ~path:journal_path with
      | Ok entries -> Some entries
      | Error _ -> None
    else None
  in
  (* Queue wait spends the client's deadline; the budget is carved from
     what remains at the moment execution starts. *)
  let budget_s = Clock.carve job.deadline job.budget_s in
  let on_settled qr =
    (match job.reply with
    | Some r -> send t ~job_id:job.id r (Protocol.verdict_line qr)
    | None -> ());
    if t.config.settle_delay_s > 0.0 then Unix.sleepf t.config.settle_delay_s
  in
  let finish () =
    Mutex.protect t.submit_lock (fun () -> Hashtbl.remove t.in_flight job.id);
    Atomic.decr t.in_system
  in
  match
    Campaign.run ~milp_options:job.milp_options ~runners:job.runners ?budget_s
      ~journal:journal_path ?resume ~cache:t.cache ~on_settled
      ~perception:t.perception job.queries
  with
  | report ->
      let code = Campaign.report_exit_code report in
      (try Joblog.append ~path:t.joblog_path (Joblog.Finished { job = job.id; exit_code = code })
       with _ -> ());
      (* Capacity is released before the done frame goes out: a client
         that reacts to [done] by resubmitting immediately must not
         race its own job's slot. *)
      finish ();
      (match job.reply with
      | Some r -> send t ~job_id:job.id r (Protocol.done_line ~job:job.id report)
      | None -> ());
      Metrics.incr m_jobs_finished 1;
      Metrics.observe m_job_ns (Clock.monotonic_ns () - t0);
      signal_waiter job.waiter
  | exception e ->
      (* Fault isolation: a crashing job degrades that job only — the
         pool, the queue and every other connection are untouched.
         Exit 4 is the same degraded code a crashed batch campaign
         earns. *)
      let msg = Printexc.to_string e in
      (try Joblog.append ~path:t.joblog_path (Joblog.Finished { job = job.id; exit_code = 4 })
       with _ -> ());
      finish ();
      (match job.reply with
      | Some r ->
          send t ~job_id:job.id r
            (Protocol.error ~message:(Printf.sprintf "job %s crashed: %s" job.id msg))
      | None -> ());
      Metrics.incr m_jobs_finished 1;
      signal_waiter job.waiter

let executor_loop t =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some job ->
        Atomic.incr t.jobs_running;
        (try execute t job with _ -> signal_waiter job.waiter);
        Atomic.decr t.jobs_running;
        loop ()
  in
  loop ()

(* ---- submission ---- *)

(* Submissions may omit "seed"/"setup": they inherit the server's base
   spec, so the common client (same pipeline, new queries) stays
   small.  An explicit setup must match the server's — the resident
   trained pipeline is fixed at startup. *)
let resolve_spec t spec =
  match spec with
  | Json.Obj fields ->
      let fields =
        if List.mem_assoc "seed" fields then fields
        else ("seed", Json.Num (float_of_int t.base.Specfile.seed)) :: fields
      in
      let fields =
        if List.mem_assoc "setup" fields then fields
        else
          match Json.member "setup" t.base_spec with
          | Some s -> ("setup", s) :: fields
          | None -> fields
      in
      Json.Obj fields
  | v -> v

type prepared_job = {
  p_spec : Json.t;         (* resolved; what the joblog persists *)
  p_parsed : Specfile.parsed;
  p_queries : Campaign.query list;
  p_id : string;
}

let prepare_submission t spec =
  let spec = resolve_spec t spec in
  match Specfile.parse spec with
  | Error e -> Error (Printf.sprintf "bad spec: %s" e)
  | Ok parsed ->
      if parsed.Specfile.setup <> t.base.Specfile.setup then
        Error
          "setup mismatch: this server's trained pipeline was prepared with \
           a different setup/seed; omit \"setup\" and \"seed\" to inherit it"
      else begin
        match
          Specfile.queries t.builder
            ~default_cut:parsed.Specfile.setup.Workflow.cut
            parsed.Specfile.query_specs
        with
        | Error e -> Error (Printf.sprintf "bad query: %s" e)
        | Ok queries ->
            Ok { p_spec = spec; p_parsed = parsed; p_queries = queries;
                 p_id = job_id queries }
      end

type admit_result =
  | Accepted of { job : string; position : int; waiter : waiter }
  | Busy of { queue_depth : int }
  | Refused of string

let admit t ~name ~priority ~budget_s ~deadline_s ~reply prep =
  let id = prep.p_id in
  let name = Option.value name ~default:(String.sub id 0 8) in
  let parsed = prep.p_parsed in
  let w = { w_lock = Mutex.create (); w_cond = Condition.create (); w_done = false } in
  let job =
    {
      id;
      name;
      priority;
      budget_s;
      deadline = Clock.deadline_after deadline_s;
      runners =
        Stdlib.min (Stdlib.max 1 parsed.Specfile.runners) t.config.runners;
      milp_options = Specfile.milp_options parsed;
      queries = prep.p_queries;
      reply;
      waiter = (match reply with None -> None | Some _ -> Some w);
    }
  in
  Mutex.protect t.submit_lock (fun () ->
      if Hashtbl.mem t.in_flight id then
        (* The same job is already queued or running: an immediate
           duplicate gains nothing (its verdicts land in the same
           journal), so the client is told to come back — once the
           twin finishes, resubmission replays from the journal. *)
        Busy { queue_depth = Atomic.get t.in_system }
      else if Atomic.get t.in_system >= t.config.capacity then begin
        Metrics.incr m_rejected_busy 1;
        Busy { queue_depth = Atomic.get t.in_system }
      end
      else begin
        match
          Admission.submit
            ~before:(fun () ->
              (* Journaled before the executor can see it: [Accepted]
                 on disk is the no-lost-jobs guarantee.  A failing
                 append aborts admission — an unjournalable job would
                 be a silent non-guarantee. *)
              Joblog.append ~path:t.joblog_path
                (Joblog.Accepted
                   {
                     job = id;
                     name;
                     priority;
                     budget_s;
                     deadline_s;
                     spec = prep.p_spec;
                   });
              Hashtbl.replace t.in_flight id ();
              Atomic.incr t.in_system)
            t.queue ~priority job
        with
        | Admission.Admitted position ->
            Metrics.incr m_submissions 1;
            Metrics.set_max m_queue_depth (Atomic.get t.in_system);
            Accepted { job = id; position; waiter = w }
        | Admission.Rejected { queue_depth } ->
            Metrics.incr m_rejected_busy 1;
            Busy { queue_depth }
        | exception e ->
            Refused
              (Printf.sprintf "cannot journal job: %s" (Printexc.to_string e))
      end)

(* ---- connections ---- *)

let handle_conn t fd =
  Metrics.incr m_connections 1;
  Trace.with_span "serve.conn" @@ fun () ->
  let reply = { fd; wlock = Mutex.create (); alive = Atomic.make true } in
  let direct payload =
    ignore (Mutex.protect reply.wlock (fun () -> Frame.write fd payload))
  in
  let rec loop () =
    match Frame.read ~max_bytes:t.config.max_frame_bytes fd with
    | Error Frame.Closed -> ()
    | Error (Frame.Torn msg) ->
        (* The stream is no longer frame-aligned: answer with a framed
           error and close this connection — and only this one. *)
        direct (Protocol.error ~message:(Printf.sprintf "torn frame: %s" msg))
    | Ok payload -> (
        match Protocol.parse_request payload with
        | Error msg ->
            direct (Protocol.error ~message:msg);
            loop ()
        | Ok Protocol.Ping ->
            direct
              (Protocol.pong
                 ~jobs_running:(Atomic.get t.jobs_running)
                 ~queue_depth:(Admission.depth t.queue));
            loop ()
        | Ok Protocol.Metrics ->
            direct (Protocol.metrics_reply (Metrics.snapshot ()));
            loop ()
        | Ok Protocol.Drain ->
            direct Protocol.draining;
            Atomic.set t.draining true;
            loop ()
        | Ok (Protocol.Submit { name; priority; budget_s; deadline_s; spec }) -> (
            if Atomic.get t.draining then begin
              direct Protocol.draining;
              loop ()
            end
            else
              match prepare_submission t spec with
              | Error msg ->
                  direct (Protocol.error ~message:msg);
                  loop ()
              | Ok prep -> (
                  match
                    admit t ~name ~priority ~budget_s ~deadline_s
                      ~reply:(Some reply) prep
                  with
                  | Busy { queue_depth } ->
                      direct
                        (Protocol.busy ~retry_after_s:t.config.retry_after_s
                           ~queue_depth);
                      loop ()
                  | Refused msg ->
                      direct (Protocol.error ~message:msg);
                      loop ()
                  | Accepted { job; position; waiter } ->
                      direct (Protocol.accepted ~job ~position);
                      (* Park until the stream finishes, so a pipelined
                         next request never interleaves two jobs'
                         verdicts on this connection. *)
                      await_waiter waiter;
                      if Atomic.get reply.alive then loop ())))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* ---- lifecycle ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?config ?before_execute ~perception ~builder ~base ~base_spec () =
  (* A client vanishing mid-write must be an [EPIPE] result, not a
     process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let config =
    match config with Some c -> c | None -> default_config ~state_dir:"_serve"
  in
  mkdir_p config.state_dir;
  let joblog_path = Filename.concat config.state_dir "joblog.jsonl" in
  let pending =
    match Joblog.load ~path:joblog_path with
    | Ok events -> Joblog.pending events
    | Error _ -> []
  in
  let t =
    {
      config;
      perception;
      builder;
      base;
      base_spec;
      cache = Campaign.create_cache ();
      queue =
        Admission.create
          ~capacity:(Stdlib.max config.capacity (List.length pending));
      joblog_path;
      in_flight = Hashtbl.create 8;
      submit_lock = Mutex.create ();
      in_system = Atomic.make 0;
      jobs_running = Atomic.make 0;
      draining = Atomic.make false;
      before_execute;
      recovered = List.length pending;
      executor = None;
    }
  in
  (* Restart recovery: every accepted-but-unfinished job re-enters the
     queue from its persisted spec, headless, before any client can
     connect.  Its campaign journal then replays the queries that had
     already settled. *)
  List.iter
    (fun (id, name, priority, budget_s, deadline_s, spec) ->
      match prepare_submission t spec with
      | Error _ -> ()  (* spec no longer parses: leave it journaled *)
      | Ok prep ->
          let prep = { prep with p_id = id } in
          (match
             Mutex.protect t.submit_lock (fun () ->
                 if Hashtbl.mem t.in_flight id then `Dup
                 else begin
                   Hashtbl.replace t.in_flight id ();
                   Atomic.incr t.in_system;
                   `Fresh
                 end)
           with
          | `Dup -> ()
          | `Fresh ->
              Metrics.incr m_jobs_recovered 1;
              let job =
                {
                  id;
                  name;
                  priority;
                  budget_s;
                  (* The original acceptance instant is gone; the
                     deadline restarts at recovery. *)
                  deadline = Clock.deadline_after deadline_s;
                  runners =
                    Stdlib.min
                      (Stdlib.max 1 prep.p_parsed.Specfile.runners)
                      t.config.runners;
                  milp_options = Specfile.milp_options prep.p_parsed;
                  queries = prep.p_queries;
                  reply = None;
                  waiter = None;
                }
              in
              ignore (Admission.submit t.queue ~priority job)))
    pending;
  t.executor <- Some (Thread.create executor_loop t);
  t

let recovered t = t.recovered

let request_drain t = Atomic.set t.draining true

let draining t = Atomic.get t.draining

(* Stop admitting, notify queued clients, finish the running job, join
   the executor.  Queued jobs stay journaled — restart recovery picks
   them up; their clients are told so explicitly. *)
let drain t =
  Atomic.set t.draining true;
  let queued = Admission.close t.queue in
  List.iter
    (fun job ->
      (match job.reply with
      | Some r ->
          send t ~job_id:job.id r
            (Protocol.error
               ~message:
                 (Printf.sprintf
                    "server draining; job %s is journaled and will run on \
                     restart"
                    job.id))
      | None -> ());
      signal_waiter job.waiter)
    queued;
  match t.executor with
  | None -> ()
  | Some th ->
      Thread.join th;
      t.executor <- None

let listen_unix ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

let serve t listen_fd =
  while not (Atomic.get t.draining) do
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
            if Faults.fire Faults.Serve_accept then begin
              (* The injected accept hiccup: the connection dies between
                 accept and handoff.  Absorbed — the loop keeps
                 listening. *)
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else
              ignore
                (Thread.create
                   (fun () -> try handle_conn t fd with _ -> ())
                   ())
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  drain t
