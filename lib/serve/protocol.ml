module Json = Dpv_core.Json
module Campaign = Dpv_core.Campaign
module Verify = Dpv_core.Verify
module Metrics = Dpv_obs.Metrics

let version = "dpv-serve/1"

type request =
  | Submit of {
      name : string option;
      priority : int;
      budget_s : float option;
      deadline_s : float option;
      trace : bool;
      spec : Json.t;
    }
  | Metrics of { since : int option }
  | Ping
  | Drain

(* Submission envelope keys; everything else in an [op = "query"]
   request is part of the spec it denotes. *)
let envelope_keys =
  [ "op"; "name"; "priority"; "budget_s"; "deadline_s"; "trace"; "query" ]

let parse_request ?max_depth ?max_bytes payload =
  match Json.of_string ?max_depth ?max_bytes payload with
  | Error e -> Error (Printf.sprintf "invalid request JSON: %s" e)
  | Ok req -> (
      let str key = Option.bind (Json.member key req) Json.to_string in
      let num key = Option.bind (Json.member key req) Json.to_float in
      let int_def key default =
        match Option.bind (Json.member key req) Json.to_int with
        | Some i -> i
        | None -> default
      in
      let envelope () =
        let trace =
          match Json.member "trace" req with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        (str "name", int_def "priority" 0, num "budget_s", num "deadline_s",
         trace)
      in
      match str "op" with
      | None -> Error "request is missing \"op\""
      | Some "ping" -> Ok Ping
      | Some "metrics" ->
          Ok
            (Metrics
               { since = Option.bind (Json.member "since" req) Json.to_int })
      | Some "drain" -> Ok Drain
      | Some "submit" -> (
          match Json.member "spec" req with
          | None -> Error "submit request is missing \"spec\""
          | Some spec ->
              let name, priority, budget_s, deadline_s, trace = envelope () in
              Ok (Submit { name; priority; budget_s; deadline_s; trace; spec }))
      | Some "query" -> (
          (* Sugar: one query object becomes a one-query spec.  Any
             non-envelope top-level keys (timeout_s, setup, ...) carry
             over as spec-level keys. *)
          match Json.member "query" req with
          | None -> Error "query request is missing \"query\""
          | Some q ->
              let carried =
                match req with
                | Json.Obj fields ->
                    List.filter
                      (fun (k, _) -> not (List.mem k envelope_keys))
                      fields
                | _ -> []
              in
              let spec = Json.Obj (("queries", Json.Arr [ q ]) :: carried) in
              let name, priority, budget_s, deadline_s, trace = envelope () in
              Ok (Submit { name; priority; budget_s; deadline_s; trace; spec }))
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* ---- responses (each the payload of one frame) ---- *)

let busy ~retry_after_s ~queue_depth =
  Json.encode
    (Json.Obj
       [
         ("type", Json.Str "busy");
         ("retry_after_s", Json.Num retry_after_s);
         ("queue_depth", Json.Num (float_of_int queue_depth));
       ])

let error ~message =
  Json.encode
    (Json.Obj [ ("type", Json.Str "error"); ("message", Json.Str message) ])

let accepted ~job ~position ~trace =
  Json.encode
    (Json.Obj
       [
         ("type", Json.Str "accepted");
         ("job", Json.Str job);
         ("position", Json.Num (float_of_int position));
         ("trace", Json.Str trace);
       ])

let verdict_line (qr : Campaign.query_report) =
  let fields =
    [
      ("type", Json.Str "verdict");
      ("label", Json.Str qr.Campaign.query.Campaign.label);
      ("outcome", Json.Str (Campaign.outcome_word qr.Campaign.outcome));
    ]
  in
  let fields =
    fields
    @
    match qr.Campaign.outcome with
    | Campaign.Done r ->
        [ ("verdict", Json.Str (Campaign.verdict_word r.Verify.verdict)) ]
    | Campaign.Crashed reason | Campaign.Skipped reason ->
        [ ("verdict", Json.Null); ("detail", Json.Str reason) ]
  in
  let fields =
    fields
    @ [
        ("from_journal", Json.Bool qr.Campaign.from_journal);
        ("attempts", Json.Num (float_of_int qr.Campaign.attempts));
      ]
  in
  Json.encode (Json.Obj fields)

let done_line ~job ?(trace = "") (report : Campaign.report) =
  Json.encode
    (Json.Obj
       [
         ("type", Json.Str "done");
         ("job", Json.Str job);
         ("trace", Json.Str trace);
         ("exit_code", Json.Num (float_of_int (Campaign.report_exit_code report)));
         ("degraded", Json.Bool report.Campaign.degraded);
         ("crashed", Json.Num (float_of_int report.Campaign.crashed));
         ("skipped", Json.Num (float_of_int report.Campaign.skipped));
         ("resumed", Json.Num (float_of_int report.Campaign.resumed));
         ("total_wall_s", Json.Num report.Campaign.total_wall_s);
       ])

(* The metrics snapshot is already JSON text (dpv-metrics/1); splice it
   in rather than round-tripping it through the value type.  [cursor]
   names this snapshot for later delta polls; [since] echoes the base
   cursor when the payload is a delta (absent: a full snapshot, either
   because the client asked for one or its cursor aged out). *)
let metrics_reply ?cursor ?since snapshot =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"type\": \"metrics\"";
  (match cursor with
  | Some c -> Printf.bprintf b ", \"cursor\": %d" c
  | None -> ());
  (match since with
  | Some c -> Printf.bprintf b ", \"since\": %d" c
  | None -> ());
  Buffer.add_string b ", \"metrics\": ";
  Metrics.buf_snapshot b snapshot;
  Buffer.add_string b "}";
  Buffer.contents b

(* The events payload is a complete Chrome trace_event document,
   carried as a string so the client can write it to a file verbatim —
   no float round-trip through the value type. *)
let trace_reply ~job ~trace ~events =
  Json.encode
    (Json.Obj
       [
         ("type", Json.Str "trace");
         ("job", Json.Str job);
         ("trace", Json.Str trace);
         ("events", Json.Str events);
       ])

let pong ~jobs_running ~queue_depth =
  Json.encode
    (Json.Obj
       [
         ("type", Json.Str "pong");
         ("server", Json.Str version);
         ("jobs_running", Json.Num (float_of_int jobs_running));
         ("queue_depth", Json.Num (float_of_int queue_depth));
       ])

let draining =
  Json.encode (Json.Obj [ ("type", Json.Str "draining") ])
