module Faults = Dpv_linprog.Faults

(* Wire format: ASCII decimal payload length, '\n', payload bytes,
   '\n'.  Human-composable (printf + netcat suffices as a client) yet
   unambiguous: the receiver knows the payload size before reading it,
   which is what lets an oversized frame be refused before any
   proportional allocation. *)

type error =
  | Closed          (* orderly EOF between frames, or peer vanished *)
  | Torn of string  (* stream died or lied mid-frame *)

let max_header_digits = 20

let rec really_read fd buf ofs len =
  if len = 0 then Ok ()
  else
    match Unix.read fd buf ofs len with
    | 0 -> Error `Eof
    | n -> really_read fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf ofs len
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Error `Eof

(* The header is read byte-by-byte: it is at most [max_header_digits]
   bytes, and stopping exactly at its '\n' keeps this module free of
   read-ahead buffering state. *)
let read_header fd =
  let b = Buffer.create 8 in
  let one = Bytes.create 1 in
  let rec loop () =
    match really_read fd one 0 1 with
    | Error `Eof ->
        if Buffer.length b = 0 then Error Closed
        else Error (Torn "stream ended inside a frame header")
    | Ok () ->
        (* The torn-frame injection fires only once bytes have begun
           arriving: a stream dies MID-frame, never while parked idle
           between frames.  Firing on an idle read would let the
           injected error reply race the peer's own write. *)
        if Buffer.length b = 0 && Faults.fire Faults.Serve_torn_frame then
          Error (Torn "injected torn frame")
        else (
        match Bytes.get one 0 with
        | '\n' ->
            if Buffer.length b = 0 then Error (Torn "empty frame header")
            else Ok (Buffer.contents b)
        | '0' .. '9' as c ->
            if Buffer.length b >= max_header_digits then
              Error (Torn "frame header too long")
            else begin
              Buffer.add_char b c;
              loop ()
            end
        | c -> Error (Torn (Printf.sprintf "invalid header byte %C" c)))
  in
  loop ()

let read ?max_bytes fd =
  match read_header fd with
    | Error _ as e -> e
    | Ok header -> (
        match int_of_string_opt header with
        | None -> Error (Torn (Printf.sprintf "invalid frame length %S" header))
        | Some len -> (
            match max_bytes with
            | Some limit when len > limit ->
                (* Refused on the declared length alone — the payload is
                   never allocated, let alone read. *)
                Error
                  (Torn
                     (Printf.sprintf
                        "declared frame of %d bytes exceeds the %d-byte limit"
                        len limit))
            | _ -> (
                let buf = Bytes.create (len + 1) in
                match really_read fd buf 0 (len + 1) with
                | Error `Eof -> Error (Torn "stream ended inside a frame")
                | Ok () ->
                    if Bytes.get buf len <> '\n' then
                      Error (Torn "frame payload not newline-terminated")
                    else Ok (Bytes.sub_string buf 0 len))))

let rec really_write fd buf ofs len =
  if len = 0 then Ok ()
  else
    match Unix.write fd buf ofs len with
    | n -> really_write fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd buf ofs len
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        Error `Eof

let write fd payload =
  if Faults.fire Faults.Serve_client_gone then Error Closed
  else begin
    let header = Printf.sprintf "%d\n" (String.length payload) in
    let msg = header ^ payload ^ "\n" in
    let buf = Bytes.of_string msg in
    match really_write fd buf 0 (Bytes.length buf) with
    | Ok () -> Ok ()
    | Error `Eof -> Error Closed
  end
