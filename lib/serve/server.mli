(** The [dpv serve] daemon: a crash-tolerant, long-lived verification
    service.

    One resident process holds the trained pipeline, a persistent
    shared-encoding cache ({!Dpv_core.Campaign.cache}) and a memoized
    {!Dpv_core.Specfile.builder}, and accepts campaign submissions
    over a Unix-domain or TCP socket ({!Frame} / {!Protocol}).
    Verdicts stream back as they settle.

    Robustness spine:
    - {b Admission control.}  A bounded queue; a full server answers
      [busy] with a retry hint immediately — explicit backpressure,
      never a silent drop.
    - {b Journal-before-execution.}  Every accepted job is appended
      (spec included) to the server {!Joblog} and fsynced before the
      executor can see it; each running job journals its verdicts to a
      per-job campaign journal.  SIGKILL at any instant loses no
      accepted job, and restart recovery re-runs the pending ones,
      replaying already-settled queries bit-identically via the same
      [--resume] machinery the batch CLI uses.
    - {b Fault isolation.}  A crashing job degrades that job only
      (error frame, degraded exit code 4); a torn frame closes that
      connection only; a client vanishing mid-stream is recorded and
      its job runs on to the journal.
    - {b Graceful drain.}  Stop accepting, notify queued clients
      (their jobs stay journaled for restart), finish the running job,
      then return so the caller can flush telemetry. *)

type config = {
  capacity : int;        (** max jobs in the system (queued + running) *)
  runners : int;         (** per-job domain-budget cap *)
  retry_after_s : float; (** hint carried in busy replies *)
  max_frame_bytes : int; (** declared-length cap on request frames *)
  state_dir : string;    (** joblog + per-job campaign journals *)
  settle_delay_s : float;
      (** pause after each settled query — test pacing so a
          kill-mid-campaign lands deterministically between queries *)
  slow_ms : float option;
      (** slow-query threshold: any [campaign.query]/[campaign.subbox]
          span over this many ms is appended to
          [state_dir/slowlog.jsonl] as a structured JSON line with its
          per-phase breakdown.  [None] (default) disables the log *)
  sampler_interval_s : float;
      (** continuous-profiling tick for the background sampler domain *)
}

val default_config : state_dir:string -> config
(** capacity 4, runners 1, retry after 1s, 8 MiB frames, no delay, no
    slow log, 0.5 s sampler tick. *)

type t

val create :
  ?config:config ->
  ?before_execute:(string -> unit) ->
  perception:Dpv_nn.Network.t ->
  builder:Dpv_core.Specfile.builder ->
  base:Dpv_core.Specfile.parsed ->
  base_spec:Dpv_core.Json.t ->
  unit ->
  t
(** Create the server state, run restart recovery (pending joblog
    entries re-enter the queue, headless) and start the executor
    thread.  [base]/[base_spec] fix the trained pipeline; submissions
    omitting [seed]/[setup] inherit them, and an explicit mismatch is
    refused.  [before_execute] (tests) runs on the executor thread
    with the job id just before each job starts.  Ignores [SIGPIPE]
    process-wide — a vanished peer must be an error result, not a
    kill. *)

val recovered : t -> int
(** Jobs re-queued from the joblog at startup. *)

val listen_unix : path:string -> Unix.file_descr
(** Bind + listen on a Unix-domain socket (unlinking any stale one). *)

val listen_tcp : port:int -> Unix.file_descr
(** Bind + listen on loopback. *)

val serve : ?scrape_fd:Unix.file_descr -> t -> Unix.file_descr -> unit
(** Accept loop: one handler thread per connection, until a drain is
    requested — then close the listener(s), run the drain, and return.
    The {!Dpv_linprog.Faults.Serve_accept} site injects an accept-time
    hiccup here; the loop absorbs it.

    [scrape_fd] (a second listener, typically {!listen_tcp}) serves
    GET-only HTTP metrics scrapes in OpenMetrics text format
    ({!Dpv_obs.Expo.render}) — one short-lived thread per scrape, any
    failure (including the {!Dpv_linprog.Faults.Serve_scrape} injected
    tear) closing that connection only. *)

val request_drain : t -> unit
(** Flag the drain; async-signal-safe (the CLI calls it from SIGTERM
    and SIGINT handlers).  {!serve} notices within its select
    timeout. *)

val draining : t -> bool

val drain : t -> unit
(** The drain itself: stop admitting, notify queued clients, stop the
    sampler domain, finish the running job, join the executor.
    {!serve} calls this on the way out; callers who never ran {!serve}
    can call it directly. *)
