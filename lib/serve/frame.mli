(** Length-prefixed message frames over a file descriptor.

    Wire format: the payload length as ASCII decimal digits, a newline,
    the payload, a newline — [printf '%d\n%s\n' ${#req} "$req"] from a
    shell is a valid client.  The declared length lets the receiver
    refuse an oversized frame in O(1), before allocating anything
    proportional to it.

    Reads and writes are blocking and whole-frame.  Two injection
    sites ({!Dpv_linprog.Faults.Serve_torn_frame},
    {!Dpv_linprog.Faults.Serve_client_gone}) let chaos tests fake a
    stream dying mid-frame without a misbehaving peer. *)

type error =
  | Closed
      (** orderly EOF at a frame boundary on read; peer gone on write *)
  | Torn of string
      (** the stream ended (or the header lied) mid-frame; the
          connection is no longer frame-aligned and must be closed *)

val read : ?max_bytes:int -> Unix.file_descr -> (string, error) result
(** Read one frame's payload.  [max_bytes] bounds the {e declared}
    length — an over-limit frame is [Torn] without reading its
    payload. *)

val write : Unix.file_descr -> string -> (unit, error) result
(** Write one frame.  A vanished peer ([EPIPE]/[ECONNRESET]) is
    [Error Closed], never an exception — the caller decides whether a
    lost client degrades the job. *)
