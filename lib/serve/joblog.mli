(** The serve daemon's crash-recovery journal.

    One JSON line per job lifecycle event, appended and fsynced
    {e before} the event's consequences can be observed: a job is
    [accepted] on disk (spec included, verbatim) before any executor
    can start it, so SIGKILL at any instant leaves either no trace of
    a job or enough to re-run it.  Restart recovery is
    {!load} + {!pending}: accepted events with no finished record are
    re-submitted from their persisted specs, and each job's own
    campaign journal then replays whatever queries already settled —
    no accepted job is ever lost, no settled verdict re-solved. *)

module Json = Dpv_core.Json

type event =
  | Accepted of {
      job : string;   (** content digest over the job's query keys *)
      name : string;
      priority : int;
      budget_s : float option;
      deadline_s : float option;
      trace : string;
          (** the trace id correlating this job's frames, spans and
              journal meta; [""] when read from a pre-dpv-obs/2 log *)
      spec : Json.t;  (** the submitted spec, replayable verbatim *)
    }
  | Finished of { job : string; exit_code : int }
  | Client_gone of { job : string }
      (** the submitter vanished mid-stream; the job ran on *)

val append : path:string -> event -> unit
(** Append one event and [fsync].  Raises [Sys_error]/[Unix_error] on
    I/O failure — the server treats an unjournalable job as
    unacceptable (the client gets an error, not a silent
    non-guarantee). *)

val load : path:string -> (event list, string) result
(** All events, in append order.  A missing file is [Ok []]; a torn
    final line (crash mid-append) is dropped; corruption anywhere else
    is an [Error] naming the line. *)

val pending :
  event list ->
  (string * string * int * float option * float option * string * Json.t)
  list
(** [(job, name, priority, budget_s, deadline_s, trace, spec)] for
    every accepted job with no finished event, in acceptance order —
    the restart recovery work list. *)
