module Json = Dpv_core.Json

let connect_unix ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let connect_tcp ~port =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let rpc fd payload =
  match Frame.write fd payload with
  | Error _ -> Error "connection closed while sending"
  | Ok () -> (
      match Frame.read fd with
      | Ok reply -> Ok reply
      | Error Frame.Closed -> Error "server closed the connection"
      | Error (Frame.Torn msg) -> Error (Printf.sprintf "torn reply: %s" msg))

type outcome =
  | Finished of { exit_code : int }
  | Busy of { retry_after_s : float }
  | Failed of string

(* Submit and consume the verdict stream.  [on_frame] sees every raw
   reply payload (the CLI prints them); the return value is what the
   stream concluded. *)
let submit_and_stream fd ~request ~on_frame =
  match Frame.write fd request with
  | Error _ -> Failed "connection closed while sending"
  | Ok () ->
      let rec loop () =
        match Frame.read fd with
        | Error Frame.Closed -> Failed "server closed the stream mid-job"
        | Error (Frame.Torn msg) -> Failed (Printf.sprintf "torn reply: %s" msg)
        | Ok payload -> (
            on_frame payload;
            match Json.of_string payload with
            | Error e -> Failed (Printf.sprintf "unparseable reply: %s" e)
            | Ok v -> (
                let str key = Option.bind (Json.member key v) Json.to_string in
                let num key = Option.bind (Json.member key v) Json.to_float in
                match str "type" with
                | Some "accepted" | Some "verdict" | Some "trace" -> loop ()
                | Some "done" -> (
                    match Option.bind (Json.member "exit_code" v) Json.to_int with
                    | Some exit_code -> Finished { exit_code }
                    | None -> Failed "done frame without exit_code")
                | Some "busy" ->
                    Busy
                      {
                        retry_after_s =
                          Option.value (num "retry_after_s") ~default:1.0;
                      }
                | Some "draining" -> Failed "server is draining"
                | Some "error" ->
                    Failed
                      (Option.value (str "message") ~default:"unknown error")
                | Some other ->
                    Failed (Printf.sprintf "unexpected frame type %S" other)
                | None -> Failed "reply frame without type"))
      in
      loop ()
