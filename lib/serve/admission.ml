(* A bounded, priority-aware admission queue.  Backpressure is the
   point: a full queue answers [Rejected] immediately — the client gets
   an explicit busy reply with a retry hint — instead of blocking the
   accept path or growing without bound under a submission storm. *)

type 'a t = {
  mutable items : (int * int * 'a) list;  (* (-priority, seq, item), sorted *)
  mutable seq : int;
  mutable capacity : int;
  mutable closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

type 'a admit = Admitted of int | Rejected of { queue_depth : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    items = [];
    seq = 0;
    capacity;
    closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let depth q = Mutex.protect q.lock (fun () -> List.length q.items)

(* Sorted insert on (-priority, seq): higher priority first, FIFO
   within a priority.  The queue is capacity-bounded, so O(n) insertion
   is bounded too. *)
let insert items entry =
  let rec go = function
    | [] -> [ entry ]
    | head :: rest ->
        let (kp, ks, _), (hp, hs, _) = (entry, head) in
        if (kp, ks) < (hp, hs) then entry :: head :: rest else head :: go rest
  in
  go items

let submit ?before q ~priority item =
  Mutex.protect q.lock (fun () ->
      let depth = List.length q.items in
      if q.closed || depth >= q.capacity then Rejected { queue_depth = depth }
      else begin
        (* The caller's pre-enqueue effect (journaling the job) runs
           under the lock: once [submit] returns [Admitted], the job is
           on disk and no consumer can have started it beforehand. *)
        (match before with None -> () | Some f -> f ());
        let entry = (-priority, q.seq, item) in
        q.seq <- q.seq + 1;
        q.items <- insert q.items entry;
        Condition.signal q.nonempty;
        let position =
          let rec pos i = function
            | [] -> i (* unreachable: entry was just inserted *)
            | e :: rest -> if e == entry then i else pos (i + 1) rest
          in
          pos 0 q.items
        in
        Admitted position
      end)

let take q =
  Mutex.protect q.lock (fun () ->
      let rec wait () =
        match q.items with
        | (_, _, item) :: rest ->
            q.items <- rest;
            Some item
        | [] ->
            if q.closed then None
            else begin
              Condition.wait q.nonempty q.lock;
              wait ()
            end
      in
      wait ())

let close q =
  Mutex.protect q.lock (fun () ->
      q.closed <- true;
      let drained = List.map (fun (_, _, item) -> item) q.items in
      q.items <- [];
      Condition.broadcast q.nonempty;
      drained)
