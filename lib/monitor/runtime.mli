(** Runtime assume-guarantee monitor.

    When safety was proved only over a data-derived set [S~], the proof is
    conditional: it holds for executions whose cut-layer activations stay
    in [S~].  The monitor wraps the perception network, checks every
    inference against [S~], and keeps warning statistics — exactly the
    deployment scheme of Section 2.2. *)

type region =
  | Box of Box_monitor.t
  | Poly of Polyhedron.t

type verdict = In_region | Warning of float
(** [Warning m] carries the violation margin. *)

type t

val create : network:Dpv_nn.Network.t -> cut:int -> region:region -> t

val infer : t -> Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t * verdict
(** Runs the network and checks the cut-layer activation; updates the
    monitor's counters. *)

val check_only : t -> Dpv_tensor.Vec.t -> verdict
(** Checks without counting (e.g. for offline analysis). *)

type stats = {
  frames : int;
  warnings : int;
  warning_rate : float;
  worst_margin : float;
}

val stats : t -> stats
val reset : t -> unit
val region_dim : t -> int
val pp_stats : Format.formatter -> stats -> unit
