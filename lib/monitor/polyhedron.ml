module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Vec = Dpv_tensor.Vec

type halfspace = { direction : (int * float) list; bound : float }

type t = { dim : int; faces : halfspace list }

let eval_direction direction x =
  List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0.0 direction

let octagon_directions d =
  let axis =
    List.concat_map (fun i -> [ [ (i, 1.0) ]; [ (i, -1.0) ] ])
      (List.init d (fun i -> i))
  in
  let pairs = ref [] in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      pairs :=
        [ (i, 1.0); (j, 1.0) ] :: [ (i, 1.0); (j, -1.0) ]
        :: [ (i, -1.0); (j, 1.0) ] :: [ (i, -1.0); (j, -1.0) ]
        :: !pairs
    done
  done;
  axis @ List.rev !pairs

let box_directions d =
  List.concat_map (fun i -> [ [ (i, 1.0) ]; [ (i, -1.0) ] ])
    (List.init d (fun i -> i))

let fit_directions ~margin directions points =
  if Array.length points = 0 then invalid_arg "Polyhedron.fit: no points";
  let dim = Vec.dim points.(0) in
  let faces =
    List.map
      (fun direction ->
        let bound =
          Array.fold_left
            (fun acc p -> Float.max acc (eval_direction direction p))
            neg_infinity points
        in
        { direction; bound = bound +. margin })
      directions
  in
  { dim; faces }

let fit_octagon ?(margin = 0.0) points =
  if Array.length points = 0 then invalid_arg "Polyhedron.fit_octagon: no points";
  fit_directions ~margin (octagon_directions (Vec.dim points.(0))) points

let fit_box ?(margin = 0.0) points =
  if Array.length points = 0 then invalid_arg "Polyhedron.fit_box: no points";
  fit_directions ~margin (box_directions (Vec.dim points.(0))) points

let of_halfspaces ~dim faces =
  List.iter
    (fun f ->
      List.iter
        (fun (i, _) ->
          if i < 0 || i >= dim then
            invalid_arg "Polyhedron.of_halfspaces: direction out of range")
        f.direction)
    faces;
  { dim; faces }

let dim p = p.dim
let halfspaces p = p.faces
let num_faces p = List.length p.faces

(* The tightest bound the axis faces alone imply for a direction: push
   each coordinate to the corner the direction points at. *)
let box_implied_bound axis_bounds direction =
  List.fold_left
    (fun acc (i, c) ->
      match Hashtbl.find_opt axis_bounds (i, c >= 0.0) with
      | Some b -> acc +. (Float.abs c *. b)
      | None -> infinity)
    0.0 direction

let prune_redundant ?(slack = 1e-7) p =
  (* axis_bounds maps (dim, positive?) to the bound of the matching axis
     face: x_i <= b for (i, true), -x_i <= b for (i, false). *)
  let axis_bounds = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match f.direction with
      | [ (i, 1.0) ] -> Hashtbl.replace axis_bounds (i, true) f.bound
      | [ (i, -1.0) ] -> Hashtbl.replace axis_bounds (i, false) f.bound
      | _ -> ())
    p.faces;
  let keep f =
    match f.direction with
    | [ (_, 1.0) ] | [ (_, -1.0) ] -> true
    | _ -> f.bound < box_implied_bound axis_bounds f.direction -. slack
  in
  { p with faces = List.filter keep p.faces }

let contains ?(tol = 0.0) p x =
  Vec.dim x = p.dim
  && List.for_all (fun f -> eval_direction f.direction x <= f.bound +. tol) p.faces

let violation_margin p x =
  List.fold_left
    (fun acc f -> Float.max acc (eval_direction f.direction x -. f.bound))
    0.0 p.faces

let bounding_box p =
  let lo = Array.make p.dim neg_infinity and hi = Array.make p.dim infinity in
  List.iter
    (fun f ->
      match f.direction with
      | [ (i, 1.0) ] -> hi.(i) <- Float.min hi.(i) f.bound
      | [ (i, -1.0) ] -> lo.(i) <- Float.max lo.(i) (-.f.bound)
      | _ -> ())
    p.faces;
  Array.init p.dim (fun i ->
      if lo.(i) > hi.(i) then Interval.point lo.(i)
      else Interval.make ~lo:lo.(i) ~hi:hi.(i))

let pp fmt p =
  Format.fprintf fmt "polyhedron(dim=%d, faces=%d)" p.dim (num_faces p)
