module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Vec = Dpv_tensor.Vec

type t = Box_domain.t

let fit ?(margin = 0.0) points =
  if Array.length points = 0 then invalid_arg "Box_monitor.fit: no points";
  let box = Box_domain.of_points points in
  if margin = 0.0 then box
  else
    Array.map
      (fun (iv : Interval.t) ->
        let pad = margin *. Float.max (Interval.width iv) 1.0 in
        Interval.make ~lo:(iv.lo -. pad) ~hi:(iv.hi +. pad))
      box

let of_box box = box
let to_box box = box
let dim = Array.length
let contains = Box_domain.contains

let violation_margin box x =
  if Array.length box <> Vec.dim x then
    invalid_arg "Box_monitor.violation_margin: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i (iv : Interval.t) ->
      let d =
        if x.(i) < iv.lo then iv.lo -. x.(i)
        else if x.(i) > iv.hi then x.(i) -. iv.hi
        else 0.0
      in
      if d > !worst then worst := d)
    box;
  !worst

let widen box x =
  if Array.length box <> Vec.dim x then
    invalid_arg "Box_monitor.widen: dimension mismatch";
  Array.mapi (fun i iv -> Interval.join iv (Interval.point x.(i))) box

let pp = Box_domain.pp
