(** Template (octagon-direction) outer polyhedra over visited values.

    The paper's "outer polyhedron that aggregates all visited neuron
    values": for every template direction [t] the polyhedron stores
    [max_data <t, x>], so the data set is contained by construction.  The
    octagon template uses the axis directions ([+/- x_i]) plus all
    pairwise sums and differences ([+/- x_i +/- x_j]), which is strictly
    tighter than the box while remaining a set of linear constraints that
    drops straight into the MILP encoding. *)

type halfspace = { direction : (int * float) list; bound : float }
(** [<direction, x> <= bound]; [direction] is sparse (index, coeff). *)

type t

val fit_octagon : ?margin:float -> Dpv_tensor.Vec.t array -> t
(** Tightest octagon-template polyhedron around the points; every face
    pushed out by [margin] (default 0). *)

val fit_box : ?margin:float -> Dpv_tensor.Vec.t array -> t
(** Axis directions only (equivalent to {!Box_monitor}). *)

val of_halfspaces : dim:int -> halfspace list -> t
(** Rebuild a polyhedron from stored faces (e.g. out of a certificate).
    Face directions must only mention coordinates below [dim]. *)

val dim : t -> int
val halfspaces : t -> halfspace list
val num_faces : t -> int
val prune_redundant : ?slack:float -> t -> t
(** Drop every face already implied (within [slack], default 1e-7) by the
    axis faces alone — i.e. pairwise faces whose bound is at least the
    box-corner value.  Cuts the face count dramatically in high dimension
    when most coordinate pairs are uncorrelated, which matters because
    each face becomes one LP row in the MILP encoding.  The represented
    set only grows by at most [slack] per dropped face, so soundness of
    any proof over the pruned polyhedron is preserved. *)

val contains : ?tol:float -> t -> Dpv_tensor.Vec.t -> bool
val violation_margin : t -> Dpv_tensor.Vec.t -> float
val bounding_box : t -> Dpv_absint.Box_domain.t
(** Per-dimension interval enclosure implied by the axis faces. *)

val pp : Format.formatter -> t -> unit
