module Network = Dpv_nn.Network

type region = Box of Box_monitor.t | Poly of Polyhedron.t

type verdict = In_region | Warning of float

type stats = {
  frames : int;
  warnings : int;
  warning_rate : float;
  worst_margin : float;
}

type t = {
  network : Network.t;
  cut : int;
  region : region;
  mutable seen_frames : int;
  mutable seen_warnings : int;
  mutable seen_worst : float;
}

let region_dim_of = function
  | Box b -> Box_monitor.dim b
  | Poly p -> Polyhedron.dim p

let create ~network ~cut ~region =
  if cut < 0 || cut > Network.num_layers network then
    invalid_arg "Runtime.create: cut out of range";
  let expected = (Network.dims network).(cut) in
  if region_dim_of region <> expected then
    invalid_arg
      (Printf.sprintf "Runtime.create: region dim %d, cut layer dim %d"
         (region_dim_of region) expected);
  { network; cut; region; seen_frames = 0; seen_warnings = 0; seen_worst = 0.0 }

let check_region region features =
  let margin =
    match region with
    | Box b -> Box_monitor.violation_margin b features
    | Poly p -> Polyhedron.violation_margin p features
  in
  if margin <= 0.0 then In_region else Warning margin

let check_only t input =
  let features = Network.forward_upto t.network ~cut:t.cut input in
  check_region t.region features

let infer t input =
  let activations = Network.activations t.network input in
  let features = activations.(t.cut) in
  let output = activations.(Network.num_layers t.network) in
  let verdict = check_region t.region features in
  t.seen_frames <- t.seen_frames + 1;
  (match verdict with
  | In_region -> ()
  | Warning m ->
      t.seen_warnings <- t.seen_warnings + 1;
      if m > t.seen_worst then t.seen_worst <- m);
  (output, verdict)

let stats t =
  {
    frames = t.seen_frames;
    warnings = t.seen_warnings;
    warning_rate =
      (if t.seen_frames = 0 then 0.0
       else float_of_int t.seen_warnings /. float_of_int t.seen_frames);
    worst_margin = t.seen_worst;
  }

let reset t =
  t.seen_frames <- 0;
  t.seen_warnings <- 0;
  t.seen_worst <- 0.0

let region_dim t = region_dim_of t.region

let pp_stats fmt s =
  Format.fprintf fmt "frames=%d warnings=%d rate=%.4f worst-margin=%.4f"
    s.frames s.warnings s.warning_rate s.worst_margin
