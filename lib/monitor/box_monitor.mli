(** Data-driven box over-approximation [S~] of visited neuron values.

    This is the assume-guarantee leg of the paper (Section 2.2): record
    the minimum and maximum of each monitored neuron over the training
    data — e.g. the [-0.1, 0.6] box of Figure 1 — use that box as the
    verification domain, and check at runtime that fresh activations stay
    inside it. *)

type t

val fit : ?margin:float -> Dpv_tensor.Vec.t array -> t
(** Tightest box around the points, each side inflated by
    [margin * max(width, 1)] (default margin 0).  The margin models the
    engineering slack one adds before deployment. *)

val of_box : Dpv_absint.Box_domain.t -> t
val to_box : t -> Dpv_absint.Box_domain.t
val dim : t -> int
val contains : t -> Dpv_tensor.Vec.t -> bool
val violation_margin : t -> Dpv_tensor.Vec.t -> float
(** 0 when inside; otherwise the largest per-coordinate distance to the
    box (how badly the assumption is violated). *)

val widen : t -> Dpv_tensor.Vec.t -> t
(** Smallest enclosing box of the box and the point (for incremental
    fitting). *)

val pp : Format.formatter -> t -> unit
