(** Dense row-major matrices. *)

type t

val create : rows:int -> cols:int -> float -> t
val zeros : rows:int -> cols:int -> t
val identity : int -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** Rows must be non-empty and rectangular. *)

val copy : t -> t
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val set_row : t -> int -> Vec.t -> unit
val to_rows : t -> float array array

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val matvec : t -> Vec.t -> Vec.t
(** [matvec m x] is [m * x]; [x] must have [cols m] entries. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m x] is [mᵀ * x]; [x] must have [rows m] entries. *)

val matmul : t -> t -> t
val outer : Vec.t -> Vec.t -> t
(** [outer x y] is the rank-1 matrix [x yᵀ]. *)

val map : (float -> float) -> t -> t
val frobenius : t -> float
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
