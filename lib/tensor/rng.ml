(* SplitMix64.  State is a single 64-bit counter advanced by the golden
   gamma; output is finalized with the murmur-style mixer.  We keep one
   spare slot for a cached gaussian value (Box-Muller produces pairs). *)

type t = {
  mutable state : int64;
  mutable cached_gaussian : float option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed); cached_gaussian = None }

let split t =
  let seed = next_int64 t in
  { state = mix64 seed; cached_gaussian = None }

let copy t = { state = t.state; cached_gaussian = t.cached_gaussian }

(* Uniform float in [0,1) from the top 53 bits. *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let int t bound =
  assert (bound > 0);
  (* Rejection-free for practical bounds: keep 62 bits so the value stays
     non-negative in OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p = unit_float t < p

let gaussian t =
  match t.cached_gaussian with
  | Some g ->
      t.cached_gaussian <- None;
      g
  | None ->
      (* Box-Muller; u1 is kept away from 0 to avoid log 0. *)
      let rec nonzero () =
        let u = unit_float t in
        if u > 1e-300 then u else nonzero ()
      in
      let u1 = nonzero () and u2 = unit_float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.cached_gaussian <- Some (r *. sin theta);
      r *. cos theta

let gaussian_scaled t ~mean ~std = mean +. (std *. gaussian t)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
