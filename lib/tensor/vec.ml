type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.0
let ones n = Array.make n 1.0
let init = Array.init
let copy = Array.copy
let dim = Array.length
let of_list = Array.of_list
let to_list = Array.to_list

let check_same_dim x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec: dimension mismatch (%d vs %d)" (Array.length x)
         (Array.length y))

let add x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let mul x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) *. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let add_in_place x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) +. y.(i)
  done

let dot x y =
  check_same_dim x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let dist2 x y = norm2 (sub x y)

let map = Array.map
let map2 = Array.map2
let sum x = Array.fold_left ( +. ) 0.0 x

let mean x =
  if Array.length x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let min x =
  if Array.length x = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Float.min x.(0) x

let max x =
  if Array.length x = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Float.max x.(0) x

let argmax x =
  if Array.length x = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let argmin x =
  if Array.length x = 0 then invalid_arg "Vec.argmin: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) < x.(!best) then best := i
  done;
  !best

let concat = Array.append

let slice x ~pos ~len = Array.sub x pos len

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp fmt x =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       (fun fmt v -> Format.fprintf fmt "%g" v))
    (Array.to_list x)
