let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs)

let sample_variance xs =
  if Array.length xs < 2 then invalid_arg "Stats.sample_variance: need >= 2";
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs - 1)

let std xs = sqrt (variance xs)
let sample_std xs = sqrt (sample_variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let quantile xs ~q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs ~q:0.5

let check_rows rows =
  if Array.length rows = 0 then invalid_arg "Stats: no rows";
  let d = Array.length rows.(0) in
  Array.iter
    (fun r -> if Array.length r <> d then invalid_arg "Stats: ragged rows")
    rows;
  d

let columnwise_mean rows =
  let d = check_rows rows in
  let acc = Array.make d 0.0 in
  Array.iter (fun r -> Array.iteri (fun j v -> acc.(j) <- acc.(j) +. v) r) rows;
  Array.map (fun s -> s /. float_of_int (Array.length rows)) acc

let columnwise_std rows =
  let d = check_rows rows in
  let mu = columnwise_mean rows in
  let acc = Array.make d 0.0 in
  Array.iter
    (fun r ->
      Array.iteri (fun j v -> acc.(j) <- acc.(j) +. ((v -. mu.(j)) ** 2.0)) r)
    rows;
  Array.map (fun s -> sqrt (s /. float_of_int (Array.length rows))) acc

let columnwise_min_max rows =
  let d = check_rows rows in
  let out = Array.init d (fun j -> (rows.(0).(j), rows.(0).(j))) in
  Array.iter
    (fun r ->
      Array.iteri
        (fun j v ->
          let lo, hi = out.(j) in
          out.(j) <- (Float.min lo v, Float.max hi v))
        r)
    rows;
  out

let binomial_confidence ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Stats.binomial_confidence: trials <= 0";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x >= lo && x <= hi then begin
        let b = Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. width)) in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  counts
