(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the library (weight initialization, data
    generation, training shuffles) draws from an explicit [Rng.t] so that
    experiments are reproducible bit-for-bit.  The generator is a 64-bit
    SplitMix64 stream: cheap, good statistical quality for simulation
    purposes, and trivially splittable. *)

type t

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copy replays [t]'s future). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [lo, hi). *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller). *)

val gaussian_scaled : t -> mean:float -> std:float -> float

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
