(** Summary statistics over float samples and sample matrices. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by [n-1]); requires at least 2 points. *)

val std : float array -> float
val sample_std : float array -> float
val min_max : float array -> float * float
val median : float array -> float
val quantile : float array -> q:float -> float
(** Linear-interpolation quantile, [q] in [0,1]. *)

val columnwise_mean : float array array -> float array
(** Mean of each coordinate over a non-empty list of equally-sized rows. *)

val columnwise_std : float array array -> float array
val columnwise_min_max : float array array -> (float * float) array

val binomial_confidence : successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval for a proportion. *)

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
