(** Dense float vectors.

    A [Vec.t] is a plain [float array]; the module collects the vector
    operations used throughout the library so that call sites read as
    linear algebra rather than array plumbing. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val of_list : float list -> t
val to_list : t -> float list

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Elementwise product. *)

val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val add_in_place : t -> t -> unit
(** [add_in_place x y] performs [x <- x + y]. *)

val dot : t -> t -> float
val norm2 : t -> float
val norm_inf : t -> float
val dist2 : t -> t -> float

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val sum : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float
val argmax : t -> int
val argmin : t -> int

val concat : t -> t -> t
val slice : t -> pos:int -> len:int -> t

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
