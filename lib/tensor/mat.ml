(* Row-major storage in a single flat array: element (i,j) lives at
   [i * cols + j]. *)

type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols x =
  assert (rows >= 0 && cols >= 0);
  { rows; cols; data = Array.make (rows * cols) x }

let zeros ~rows ~cols = create ~rows ~cols 0.0

let init ~rows ~cols f =
  {
    rows;
    cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols));
  }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows rws =
  let rows = Array.length rws in
  if rows = 0 then invalid_arg "Mat.of_rows: no rows";
  let cols = Array.length rws.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rws;
  init ~rows ~cols (fun i j -> rws.(i).(j))

let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols

let get m i j =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j)

let set m i j x =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j) <- x

let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: wrong length";
  Array.blit v 0 m.data (i * m.cols) m.cols

let to_rows m = Array.init m.rows (fun i -> row m i)

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let check_same_shape a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat: shape mismatch"

let add a b =
  check_same_shape a b;
  { a with data = Array.map2 ( +. ) a.data b.data }

let sub a b =
  check_same_shape a b;
  { a with data = Array.map2 ( -. ) a.data b.data }

let scale c m = { m with data = Array.map (fun v -> c *. v) m.data }

let matvec m x =
  if Array.length x <> m.cols then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d vs vector of %d" m.rows m.cols
         (Array.length x));
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. x.(j))
      done;
      !acc)

let matvec_t m x =
  if Array.length x <> m.rows then
    invalid_arg
      (Printf.sprintf "Mat.matvec_t: %dx%d vs vector of %d" m.rows m.cols
         (Array.length x));
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    for j = 0 to m.cols - 1 do
      out.(j) <- out.(j) +. (m.data.(base + j) *. xi)
    done
  done;
  out

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: inner dims differ";
  let out = zeros ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        let base_b = k * b.cols and base_o = i * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(base_o + j) <-
            out.data.(base_o + j) +. (aik *. b.data.(base_b + j))
        done
    done
  done;
  out

let outer x y =
  init ~rows:(Array.length x) ~cols:(Array.length y) (fun i j ->
      x.(i) *. y.(j))

let map f m = { m with data = Array.map f m.data }

let frobenius m =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m i)
  done;
  Format.fprintf fmt "@]"
