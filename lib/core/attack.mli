(** Adversarial counterexample search in input space.

    When the MILP produces a feature-level witness, it may not correspond
    to any real image (the region S over-approximates).  Section 5 of
    the paper suggests closing that gap "by capturing more data or by
    using adversarial perturbation techniques".  This module implements
    the latter: projected gradient descent over the image that pushes
    the perception output into the risk condition [psi] while keeping
    the characterizer firing — a concrete, input-level counterexample
    when it succeeds. *)

type candidate = {
  image : Dpv_tensor.Vec.t;
  output : Dpv_tensor.Vec.t;
  logit : float;
  iterations : int;
  seed_index : int;  (** which seed image the attack started from *)
}

type config = {
  steps : int;          (** PGD iterations per seed *)
  step_size : float;    (** signed-gradient step in pixel units *)
  pixel_lo : float;
  pixel_hi : float;
  logit_margin : float; (** require the characterizer to fire this hard *)
}

val default_config : config
(** 200 steps, step 0.01, pixels in [0,1], margin 0. *)

val attack_loss :
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  config ->
  Dpv_tensor.Vec.t ->
  float
(** Hinge loss that is 0 exactly on counterexamples: positive slack of
    every violated [psi] inequality plus the characterizer's firing
    deficit. *)

val search :
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  ?config:config ->
  seeds:Dpv_tensor.Vec.t array ->
  unit ->
  candidate option
(** Runs PGD from every seed image (typically frames whose oracle label
    says [phi] holds) and returns the first concrete counterexample
    found, validated by forward execution. *)

val is_counterexample :
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  ?logit_margin:float ->
  Dpv_tensor.Vec.t ->
  bool
