(** The per-query retry/degradation ladder.

    One verification query can fail in ways that say nothing about the
    property under test: the warm-started LP engine can hit numerical
    trouble that even its internal dense fallback cannot absorb, or a
    jittery deadline can expire a solve that still had campaign budget
    left.  This module climbs a short, explicit ladder before letting
    the failure reach the report:

    {ol
    {- {b Numerical trouble} — an escaped
       {!Dpv_linprog.Simplex.Numerical_trouble} triggers exactly one
       retry with [lp_dense = true]: every node LP runs on the dense
       reference solver, which keeps no incremental basis state to
       corrupt.  Slow, but it answers.}
    {- {b Deadline} — a result of [Unknown "deadline exceeded"] while
       the surrounding campaign deadline still has budget triggers
       exactly one retry with the per-query limit re-carved from what
       actually remains (and no bound-tightening pass, so the whole
       budget goes to the search).  Without a campaign deadline there
       is nothing to re-carve, so no retry.}
    {- Anything else — other exceptions, or a second failure — escapes
       to the caller, where {!Campaign} records it as a [Crashed]
       outcome instead of dying.}} *)

type telemetry = {
  attempts : int;        (** solve attempts made, [>= 1] *)
  dense_retry : bool;    (** rung 1 fired: re-solved with [lp_dense] *)
  deadline_retry : bool; (** rung 2 fired: re-solved with a re-carved
                             deadline *)
}

val clean : telemetry
(** [{ attempts = 1; dense_retry = false; deadline_retry = false }] —
    the telemetry of a first-attempt success (and of results restored
    from a journal). *)

val retried : telemetry -> bool
(** Whether any rung fired ([attempts > 1]). *)

val solve :
  options:Dpv_linprog.Milp.options ->
  deadline:Dpv_linprog.Clock.deadline ->
  (Dpv_linprog.Milp.options -> Verify.result) ->
  Verify.result * telemetry
(** [solve ~options ~deadline f] runs [f options] and climbs the ladder
    above on failure.  [deadline] is the {e campaign-wide} deadline the
    per-query [options.time_limit_s] was carved from; retries re-carve
    against it so a retried query can never exceed what the campaign
    has left.  Exceptions from the final attempt propagate. *)
