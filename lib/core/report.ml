let pp_verdict_line fmt (case : Workflow.case_report) =
  Format.fprintf fmt "[%s | %s | %s] %a (%.2fs, %s)" case.property_name
    case.psi.Dpv_spec.Risk.name
    (Workflow.strategy_name case.strategy)
    Verify.pp_verdict case.result.Verify.verdict case.result.Verify.wall_time_s
    case.result.Verify.encoding

let pp_milp_stats fmt (stats : Dpv_linprog.Milp.stats) =
  let workers = Array.length stats.Dpv_linprog.Milp.per_worker_nodes in
  Format.fprintf fmt
    "milp: %d nodes, %d LPs (%.3fs in LP, %d pivots, %d warm / %d cold starts)"
    stats.Dpv_linprog.Milp.nodes_explored stats.Dpv_linprog.Milp.lp_solved
    stats.Dpv_linprog.Milp.lp_time_s stats.Dpv_linprog.Milp.pivots
    stats.Dpv_linprog.Milp.warm_starts stats.Dpv_linprog.Milp.cold_starts;
  if stats.Dpv_linprog.Milp.fallbacks > 0 then
    Format.fprintf fmt ", %d dense fallbacks" stats.Dpv_linprog.Milp.fallbacks;
  if
    stats.Dpv_linprog.Milp.absint_phase_fixes > 0
    || stats.Dpv_linprog.Milp.absint_prunes > 0
  then
    Format.fprintf fmt ", absint: %d phase fixes / %d prunes"
      stats.Dpv_linprog.Milp.absint_phase_fixes
      stats.Dpv_linprog.Milp.absint_prunes;
  if stats.Dpv_linprog.Milp.absint_incr_hits > 0 then
    Format.fprintf fmt
      ", incremental: %d hits, %d layers propagated / %d saved%s"
      stats.Dpv_linprog.Milp.absint_incr_hits
      stats.Dpv_linprog.Milp.absint_layers_propagated
      stats.Dpv_linprog.Milp.absint_layers_saved
      (if stats.Dpv_linprog.Milp.absint_cache_evictions > 0 then
         Printf.sprintf ", %d evictions"
           stats.Dpv_linprog.Milp.absint_cache_evictions
       else "");
  if workers > 1 then
    Format.fprintf fmt
      "@,solver: %d workers, nodes/worker [%s], %d steals, max queue depth %d"
      workers
      (String.concat "; "
         (Array.to_list
            (Array.map string_of_int stats.Dpv_linprog.Milp.per_worker_nodes)))
      stats.Dpv_linprog.Milp.steals stats.Dpv_linprog.Milp.max_queue_depth

(* Humanize an integer-nanosecond quantity for terminal output. *)
let pp_ns fmt ns =
  if ns >= 1_000_000_000 then Format.fprintf fmt "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf fmt "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf fmt "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf fmt "%dns" ns

let pp_metrics fmt (snap : Dpv_obs.Metrics.snapshot) =
  let name_width =
    List.fold_left
      (fun acc (n, _) -> Stdlib.max acc (String.length n))
      0
      (snap.Dpv_obs.Metrics.snap_counters @ snap.Dpv_obs.Metrics.snap_gauges
      @ snap.Dpv_obs.Metrics.snap_rates)
    |> Stdlib.max 8
  in
  Format.fprintf fmt "@[<v>metrics (dpv-metrics/1):";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "@,  %-*s %d" name_width name v)
    snap.Dpv_obs.Metrics.snap_counters;
  List.iter
    (fun (name, v) ->
      Format.fprintf fmt "@,  %-*s %d (high water)" name_width name v)
    snap.Dpv_obs.Metrics.snap_gauges;
  List.iter
    (fun (name, v) ->
      (* Sampled gauges publish milli-units (a rate of 1500 is 1.5/s). *)
      Format.fprintf fmt "@,  %-*s %.3f (sampled)" name_width name
        (float_of_int v /. 1000.0))
    snap.Dpv_obs.Metrics.snap_rates;
  List.iter
    (fun (name, h) ->
      let count = h.Dpv_obs.Metrics.count in
      Format.fprintf fmt "@,  %-*s %d obs" name_width name count;
      if count > 0 then begin
        let q p =
          int_of_float (Dpv_obs.Metrics.quantile_of_hist h ~q:p)
        in
        Format.fprintf fmt ", mean %a, p50 %a / p90 %a / p99 %a"
          pp_ns (h.Dpv_obs.Metrics.sum / count)
          pp_ns (q 0.5) pp_ns (q 0.9) pp_ns (q 0.99)
      end)
    snap.Dpv_obs.Metrics.snap_histograms;
  Format.fprintf fmt "@]"

let pp_case fmt (case : Workflow.case_report) =
  Format.fprintf fmt
    "@[<v>%a@,\
     characterizer: train acc %.3f (perfect=%b, %d epochs), val acc %.3f@,\
     statistical table:@,%a@,\
     omitted-and-unsafe points (footnote 4): %d@,\
     %a@]"
    pp_verdict_line case case.characterizer_report.Characterizer.train_accuracy
    case.characterizer_report.Characterizer.perfect_on_train
    case.characterizer_report.Characterizer.epochs_run
    case.characterizer_val_accuracy Statistical.pp case.table
    case.omitted_unsafe pp_milp_stats case.result.Verify.milp_stats

let case_to_string case = Format.asprintf "%a" pp_case case

let pp_campaign fmt (report : Campaign.report) =
  Format.fprintf fmt "@[<v>campaign: %d queries, %d runner%s%s%s%s@,"
    (List.length report.Campaign.query_reports)
    report.Campaign.runners
    (if report.Campaign.runners = 1 then "" else "s")
    (match report.Campaign.shard with
    | None -> ""
    | Some (i, n) -> Printf.sprintf ", shard %d/%d" i n)
    (match report.Campaign.budget_s with
    | None -> ""
    | Some s -> Printf.sprintf ", budget %.1fs" s)
    (if report.Campaign.degraded then " -- DEGRADED" else "");
  List.iter
    (fun (qr : Campaign.query_report) ->
      let label = qr.Campaign.query.Campaign.label in
      match qr.Campaign.outcome with
      | Campaign.Done r ->
          let flags =
            (if qr.Campaign.from_cache then [ "cached encoding" ] else [])
            @ (if qr.Campaign.from_journal then [ "from journal" ] else [])
            @ (if qr.Campaign.dense_retry then [ "dense retry" ] else [])
            @ if qr.Campaign.deadline_retry then [ "deadline retry" ] else []
          in
          Format.fprintf fmt "  [%s] %a (%.2fs%s, %d nodes)@," label
            Verify.pp_verdict r.Verify.verdict r.Verify.wall_time_s
            (match flags with
            | [] -> ""
            | l -> ", " ^ String.concat ", " l)
            r.Verify.milp_stats.Dpv_linprog.Milp.nodes_explored
      | Campaign.Crashed reason ->
          Format.fprintf fmt "  [%s] CRASHED: %s@," label reason
      | Campaign.Skipped reason ->
          Format.fprintf fmt "  [%s] SKIPPED: %s@," label reason)
    report.Campaign.query_reports;
  if
    report.Campaign.crashed > 0 || report.Campaign.skipped > 0
    || report.Campaign.retried > 0 || report.Campaign.resumed > 0
    || report.Campaign.journal_write_failures > 0
  then
    Format.fprintf fmt
      "outcomes: %d crashed, %d skipped, %d retried, %d resumed, %d journal \
       write failure%s@,"
      report.Campaign.crashed report.Campaign.skipped report.Campaign.retried
      report.Campaign.resumed report.Campaign.journal_write_failures
      (if report.Campaign.journal_write_failures = 1 then "" else "s");
  Format.fprintf fmt
    "encoding cache: %d entr%s, %d hit%s, %d miss%s@,total wall %.2fs@]"
    report.Campaign.cache.Campaign.entries
    (if report.Campaign.cache.Campaign.entries = 1 then "y" else "ies")
    report.Campaign.cache.Campaign.hits
    (if report.Campaign.cache.Campaign.hits = 1 then "" else "s")
    report.Campaign.cache.Campaign.misses
    (if report.Campaign.cache.Campaign.misses = 1 then "" else "es")
    report.Campaign.total_wall_s

let column_width = 16

let pad s =
  if String.length s >= column_width then s
  else s ^ String.make (column_width - String.length s) ' '

let table_row cells = String.concat "| " (List.map pad cells)

let rule () = String.make 78 '-'
