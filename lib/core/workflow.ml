module Rng = Dpv_tensor.Rng
module Vec = Dpv_tensor.Vec
module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Serialize = Dpv_nn.Serialize
module Dataset = Dpv_train.Dataset
module Trainer = Dpv_train.Trainer
module Optimizer = Dpv_train.Optimizer
module Loss = Dpv_train.Loss
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Affordance = Dpv_scenario.Affordance
module Scene = Dpv_scenario.Scene
module Property = Dpv_spec.Property
module Risk = Dpv_spec.Risk
module Linexpr = Dpv_spec.Linexpr
module Box_domain = Dpv_absint.Box_domain
module Propagate = Dpv_absint.Propagate

type architecture = Mlp | Cnn of int list

type setup = {
  scenario : Generator.config;
  seed : int;
  architecture : architecture;
  hidden : int list;
  perception_epochs : int;
  perception_lr : float;
  train_size : int;
  val_size : int;
  cut : int;
  characterizer_samples : int;
  bounds_samples : int;
}

let default_setup =
  {
    scenario = Generator.default_config;
    seed = 7;
    architecture = Mlp;
    hidden = [ 32; 16; 8 ];
    perception_epochs = 30;
    perception_lr = 2e-3;
    train_size = 1200;
    val_size = 300;
    cut = 9;
    characterizer_samples = 600;
    bounds_samples = 600;
  }

(* Final layouts after phase-2 BN insertion:
   MLP: (Dense BN ReLU)^h Dense            -> ReLU at 3, 6, ...
   CNN: (Conv ReLU)^c (Dense BN ReLU)^h Dense
                                            -> ReLU at 2,4,.. then 2c+3k *)
let cut_options setup =
  match setup.architecture with
  | Mlp -> List.rev (List.mapi (fun i _ -> 3 * (i + 1)) setup.hidden)
  | Cnn channels ->
      let conv_cuts = List.mapi (fun i _ -> 2 * (i + 1)) channels in
      let base = 2 * List.length channels in
      let head_cuts = List.mapi (fun i _ -> base + (3 * (i + 1))) setup.hidden in
      List.rev (conv_cuts @ head_cuts)

let relu_cuts net =
  Network.layers net
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) ->
         match l with
         | Dpv_nn.Layer.Relu -> Some i
         | Dpv_nn.Layer.Dense _ | Dpv_nn.Layer.Conv2d _
         | Dpv_nn.Layer.Batch_norm _ | Dpv_nn.Layer.Sigmoid
         | Dpv_nn.Layer.Tanh ->
             None)
  |> List.rev

let cnn_setup ?(channels = [ 4; 8 ]) ?(hidden = [ 16; 8 ]) setup =
  let setup = { setup with architecture = Cnn channels; hidden } in
  match cut_options setup with
  | deepest :: _ -> { setup with cut = deepest }
  | [] -> invalid_arg "Workflow.cnn_setup: no ReLU cuts"


type prepared = {
  setup : setup;
  perception : Network.t;
  final_train_loss : float;
  val_mae : float array;
  bounds_features : Vec.t array;
  bounds_images : Vec.t array;
}

let image_dim setup = Camera.input_dim setup.scenario.Generator.camera

let bounds_images_of setup =
  (* A dedicated stream so the "visited values" set is decoupled from the
     training batches, like logging activations while re-driving the
     collected footage. *)
  let rng = Rng.create (setup.seed + 104729) in
  Array.map snd (Generator.scenes_and_images setup.scenario rng ~n:setup.bounds_samples)

let finish_preparation setup perception ~final_train_loss ~val_mae =
  let bounds_images = bounds_images_of setup in
  let bounds_features =
    Characterizer.features ~perception ~cut:setup.cut bounds_images
  in
  { setup; perception; final_train_loss; val_mae; bounds_features; bounds_images }

let prepare ?(quiet = true) setup =
  let data_rng = Rng.create setup.seed in
  let init_rng = Rng.create (setup.seed + 1) in
  let train_rng = Rng.create (setup.seed + 2) in
  let dataset =
    Generator.affordance_dataset setup.scenario data_rng
      ~n:(setup.train_size + setup.val_size)
  in
  let train_set, val_set =
    Dataset.split data_rng dataset
      ~train_fraction:
        (float_of_int setup.train_size
        /. float_of_int (setup.train_size + setup.val_size))
  in
  (* Two-phase training.  Phase 1 trains the plain ReLU network (MLP or
     CNN), which converges cleanly.  Phase 2 inserts identity-calibrated
     batch-norm layers after the hidden Dense layers (statistics measured
     on the training frames) and fine-tunes, yielding the Dense-BN-ReLU
     close-to-output structure of the paper's network without fighting
     frozen-statistics BN from scratch. *)
  let perception =
    match setup.architecture with
    | Mlp ->
        Init.mlp init_rng ~input_dim:(image_dim setup) ~hidden:setup.hidden
          ~output_dim:Affordance.dim
    | Cnn channels ->
        let camera = setup.scenario.Generator.camera in
        Init.conv_net init_rng ~in_height:camera.Camera.height
          ~in_width:camera.Camera.width ~channels ~hidden:setup.hidden
          ~output_dim:Affordance.dim
  in
  let on_epoch ~epoch ~loss =
    if not quiet then
      Format.eprintf "[perception] epoch %d loss %.4f@." epoch loss
  in
  let phase1_epochs = Stdlib.max 1 (setup.perception_epochs * 2 / 3) in
  let phase2_epochs = Stdlib.max 1 (setup.perception_epochs - phase1_epochs) in
  let phase1_config =
    {
      Trainer.default_config with
      epochs = phase1_epochs;
      batch_size = 32;
      loss = Loss.Mse;
    }
  in
  let optimizer = Optimizer.adam ~lr:setup.perception_lr perception in
  let (_ : Trainer.history) =
    Trainer.fit ~on_epoch ~rng:train_rng phase1_config optimizer perception
      train_set
  in
  let perception =
    Trainer.insert_identity_batch_norm perception
      ~inputs:train_set.Dataset.inputs
  in
  let phase2_config =
    { phase1_config with epochs = phase2_epochs; bn_momentum = 0.02 }
  in
  let optimizer2 =
    Optimizer.adam ~lr:(setup.perception_lr /. 3.0) perception
  in
  let history =
    Trainer.fit ~on_epoch ~rng:train_rng phase2_config optimizer2 perception
      train_set
  in
  let final_train_loss = history.Trainer.epoch_losses.(phase2_epochs - 1) in
  let val_mae = Trainer.regression_mae perception val_set in
  finish_preparation setup perception ~final_train_loss ~val_mae

let setup_digest setup =
  let arch =
    match setup.architecture with
    | Mlp -> "mlp"
    | Cnn channels -> "cnn:" ^ String.concat "," (List.map string_of_int channels)
  in
  let s =
    Printf.sprintf "%s|%d|%s|%d|%g|%d|%d|%d|%d|%d|%d|%g|%g"
      arch setup.seed
      (String.concat "," (List.map string_of_int setup.hidden))
      setup.perception_epochs setup.perception_lr setup.train_size
      setup.val_size setup.cut setup.characterizer_samples
      setup.bounds_samples
      setup.scenario.Generator.camera.Camera.width
      (fst setup.scenario.Generator.curvature_range)
      (snd setup.scenario.Generator.curvature_range)
  in
  Digest.to_hex (Digest.string s)

let prepare_cached ?(quiet = true) ~cache_dir setup =
  let digest = setup_digest setup in
  let model_path = Filename.concat cache_dir ("perception-" ^ digest ^ ".net") in
  let meta_path = Filename.concat cache_dir ("perception-" ^ digest ^ ".meta") in
  if Sys.file_exists model_path && Sys.file_exists meta_path then begin
    let perception = Serialize.load ~path:model_path in
    let ic = open_in meta_path in
    let final_train_loss, val_mae =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let line = input_line ic in
          match
            String.split_on_char ' ' line |> List.filter (( <> ) "")
          with
          | loss :: maes ->
              ( float_of_string loss,
                Array.of_list (List.map float_of_string maes) )
          | [] -> failwith "Workflow: corrupt cache meta")
    in
    finish_preparation setup perception ~final_train_loss ~val_mae
  end
  else begin
    let prepared = prepare ~quiet setup in
    if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
    Serialize.save prepared.perception ~path:model_path;
    let oc = open_out meta_path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "%h %s\n" prepared.final_train_loss
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%h") prepared.val_mae))));
    prepared
  end

let features_at prepared ~cut =
  if cut = prepared.setup.cut then prepared.bounds_features
  else
    Characterizer.features ~perception:prepared.perception ~cut
      prepared.bounds_images

let psi_steer_far_left ?(threshold = 2.5) () =
  Risk.make ~name:(Printf.sprintf "steer-far-left(>=%g)" threshold)
    [ Risk.output_ge Affordance.waypoint_index threshold ]

let psi_steer_far_right ?(threshold = 2.5) () =
  Risk.make ~name:(Printf.sprintf "steer-far-right(<=%g)" (-.threshold))
    [ Risk.output_le Affordance.waypoint_index (-.threshold) ]

let psi_steer_straight ?(halfwidth = 0.5) () =
  Risk.make ~name:(Printf.sprintf "steer-straight(|w|<=%g)" halfwidth)
    (Risk.output_in_band Affordance.waypoint_index ~lo:(-.halfwidth)
       ~hi:halfwidth)

type strategy = Static of Propagate.domain | Data_box | Data_octagon

let strategy_name = function
  | Static d -> "static-" ^ Propagate.domain_name d
  | Data_box -> "data-box"
  | Data_octagon -> "data-octagon"

type case_report = {
  property_name : string;
  psi : Risk.t;
  strategy : strategy;
  characterizer : Characterizer.t;
  characterizer_report : Characterizer.train_report;
  characterizer_val_accuracy : float;
  result : Verify.result;
  table : Statistical.table;
  omitted_unsafe : int;
}

let image_box prepared =
  Box_domain.uniform ~dim:(image_dim prepared.setup) ~lo:0.0 ~hi:1.0

(* Characterizer data: balanced frames for the property, split 80/20 with
   the scene list kept aligned to the rows. *)
let characterizer_data prepared ~property =
  let rng =
    Rng.create (prepared.setup.seed + (7919 * Hashtbl.hash property.Property.name))
  in
  let dataset, _scenes =
    Generator.property_dataset prepared.setup.scenario rng
      ~n:prepared.setup.characterizer_samples ~property
  in
  let n = Dataset.size dataset in
  let n_train = Stdlib.max 1 (n * 4 / 5) in
  let images = dataset.Dataset.inputs in
  let labels = Array.map (fun t -> t.(0)) dataset.Dataset.targets in
  ( Array.sub images 0 n_train,
    Array.sub labels 0 n_train,
    Array.sub images n_train (n - n_train),
    Array.sub labels n_train (n - n_train),
    rng )

let train_characterizer ?config ?cut prepared ~property =
  let cut = Option.value cut ~default:prepared.setup.cut in
  let train_images, train_labels, val_images, val_labels, rng =
    characterizer_data prepared ~property
  in
  let characterizer, report =
    Characterizer.train ?config ~rng ~perception:prepared.perception ~cut
      ~property_name:property.Property.name ~images:train_images
      ~labels:train_labels ()
  in
  let val_accuracy =
    Characterizer.accuracy characterizer ~perception:prepared.perception
      ~images:val_images ~labels:val_labels
  in
  (characterizer, report, val_accuracy)

let bounds_spec_of prepared ~cut = function
  | Static domain -> Verify.Static_bounds (domain, image_box prepared)
  | Data_box -> Verify.Data_box (features_at prepared ~cut)
  | Data_octagon -> Verify.Data_octagon (features_at prepared ~cut)

let run_case ?characterizer_config ?milp_options ?cut ?absint ?bisect prepared
    ~property ~psi ~strategy =
  let cut = Option.value cut ~default:prepared.setup.cut in
  let train_images, train_labels, val_images, val_labels, rng =
    characterizer_data prepared ~property
  in
  let characterizer, characterizer_report =
    Characterizer.train ?config:characterizer_config ~rng
      ~perception:prepared.perception ~cut
      ~property_name:property.Property.name ~images:train_images
      ~labels:train_labels ()
  in
  let characterizer_val_accuracy =
    Characterizer.accuracy characterizer ~perception:prepared.perception
      ~images:val_images ~labels:val_labels
  in
  let bounds = bounds_spec_of prepared ~cut strategy in
  let result =
    Verify.verify ?milp_options ?absint ?bisect ~perception:prepared.perception
      ~characterizer ~psi ~bounds ()
  in
  let table =
    Statistical.estimate ~characterizer ~perception:prepared.perception
      ~images:val_images ~ground_truth:val_labels
  in
  let omitted_unsafe =
    Statistical.omitted_unsafe_count ~characterizer
      ~perception:prepared.perception ~psi ~images:val_images
      ~ground_truth:val_labels
  in
  {
    property_name = property.Property.name;
    psi;
    strategy;
    characterizer;
    characterizer_report;
    characterizer_val_accuracy;
    result;
    table;
    omitted_unsafe;
  }
