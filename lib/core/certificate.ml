module Network = Dpv_nn.Network
module Serialize = Dpv_nn.Serialize
module Polyhedron = Dpv_monitor.Polyhedron
module Runtime = Dpv_monitor.Runtime
module Risk = Dpv_spec.Risk
module Vec = Dpv_tensor.Vec

type verdict =
  | Safe_unconditional
  | Safe_conditional
  | Unsafe of Vec.t
  | Inconclusive of string

type t = {
  property_name : string;
  psi : Risk.t;
  strategy : string;
  cut : int;
  verdict : verdict;
  region : Polyhedron.halfspace list;
  region_dim : int;
  head : Network.t;
  table : Statistical.table;
}

let region_of_case (case : Workflow.case_report) ~features =
  match case.Workflow.strategy with
  | Workflow.Static _ -> ([], 0)
  | Workflow.Data_box ->
      let p = Polyhedron.fit_box features in
      (Polyhedron.halfspaces p, Polyhedron.dim p)
  | Workflow.Data_octagon ->
      let p = Polyhedron.prune_redundant (Polyhedron.fit_octagon features) in
      (Polyhedron.halfspaces p, Polyhedron.dim p)

let of_case (case : Workflow.case_report) ~features =
  let verdict =
    match case.Workflow.result.Verify.verdict with
    | Verify.Safe { conditional = false } -> Safe_unconditional
    | Verify.Safe { conditional = true } -> Safe_conditional
    | Verify.Unsafe { features = w; _ } -> Unsafe w
    | Verify.Unknown reason -> Inconclusive reason
  in
  let region, region_dim = region_of_case case ~features in
  {
    property_name = case.Workflow.property_name;
    psi = case.Workflow.psi;
    strategy = Workflow.strategy_name case.Workflow.strategy;
    cut = case.Workflow.characterizer.Characterizer.cut;
    verdict;
    region;
    region_dim;
    head = case.Workflow.characterizer.Characterizer.head;
    table = case.Workflow.table;
  }

let guarantee t = Statistical.guarantee t.table

let monitor t ~network =
  match t.verdict with
  | Safe_conditional when t.region <> [] ->
      Some
        (Runtime.create ~network ~cut:t.cut
           ~region:
             (Runtime.Poly (Polyhedron.of_halfspaces ~dim:t.region_dim t.region)))
  | Safe_conditional | Safe_unconditional | Unsafe _ | Inconclusive _ -> None

let validate_witness t ~perception =
  match t.verdict with
  | Unsafe witness ->
      let suffix = Network.suffix perception ~cut:t.cut in
      let output = Network.forward suffix witness in
      let logit = (Network.forward t.head witness).(0) in
      Some (Risk.holds ~tol:1e-5 t.psi output && logit >= -1e-5)
  | Safe_unconditional | Safe_conditional | Inconclusive _ -> None

(* ---- serialization ----
   Line-oriented; floats in %h so round-trips are exact; the head network
   is embedded through Dpv_nn.Serialize, indented by two spaces so its
   lines cannot be confused with certificate keys. *)

let float_text = Printf.sprintf "%h"

let vec_text v = String.concat " " (List.map float_text (Vec.to_list v))

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "dpv-certificate 1";
  line "property %s" t.property_name;
  line "psi %s" (Risk.to_string t.psi);
  line "strategy %s" t.strategy;
  line "cut %d" t.cut;
  (match t.verdict with
  | Safe_unconditional -> line "verdict safe"
  | Safe_conditional -> line "verdict safe-conditional"
  | Unsafe w ->
      line "verdict unsafe %d" (Vec.dim w);
      line "%s" (vec_text w)
  | Inconclusive reason -> line "verdict inconclusive %s" reason);
  line "table %s %s %s %s %d" (float_text t.table.Statistical.alpha)
    (float_text t.table.Statistical.beta)
    (float_text t.table.Statistical.gamma)
    (float_text t.table.Statistical.delta)
    t.table.Statistical.n;
  line "region %d %d" t.region_dim (List.length t.region);
  List.iter
    (fun (f : Polyhedron.halfspace) ->
      line "face %s : %s"
        (String.concat " "
           (List.map
              (fun (i, c) -> Printf.sprintf "%d %s" i (float_text c))
              f.Polyhedron.direction))
        (float_text f.Polyhedron.bound))
    t.region;
  line "head";
  String.split_on_char '\n' (Serialize.to_string t.head)
  |> List.iter (fun l -> if l <> "" then line "  %s" l);
  line "end";
  Buffer.contents buf

exception Malformed of string

(* Parsing must never raise: certificates arrive from disk and may be
   truncated (partial download, full disk at save time) or corrupted.
   Every failure path funnels into [Error] with the 1-based line number
   where parsing stopped. *)
let of_string s =
  let lines = Array.of_list (String.split_on_char '\n' s) in
  let pos = ref 0 in
  (* [!pos] is the number of lines consumed, so after a [next] it is the
     1-based number of the line being examined. *)
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Malformed (Printf.sprintf "line %d: %s" !pos m)))
      fmt
  in
  let next () =
    if !pos >= Array.length lines then
      fail "unexpected end of certificate (truncated?)";
    let l = lines.(!pos) in
    incr pos;
    l
  in
  let next_nonempty () =
    let rec go () =
      let l = next () in
      if String.trim l = "" then go () else l
    in
    go ()
  in
  let expect_key key =
    let l = next_nonempty () in
    if
      String.length l < String.length key
      || String.sub l 0 (String.length key) <> key
    then fail "expected %S, got %S" key l;
    String.trim (String.sub l (String.length key) (String.length l - String.length key))
  in
  try
    if String.trim (next_nonempty ()) <> "dpv-certificate 1" then
      fail "bad magic (want \"dpv-certificate 1\")";
    let property_name = expect_key "property" in
    let psi_text = expect_key "psi" in
    let psi =
      match Risk.of_string psi_text with
      | Ok p -> p
      | Error e -> fail "bad psi: %s" e
    in
    let strategy = expect_key "strategy" in
    let cut = int_of_string (expect_key "cut") in
    let verdict =
      match String.split_on_char ' ' (expect_key "verdict") with
      | [ "safe" ] -> Safe_unconditional
      | [ "safe-conditional" ] -> Safe_conditional
      | "unsafe" :: [ d ] ->
          let dim = int_of_string d in
          if dim < 0 then fail "negative witness dimension %d" dim;
          let parts =
            String.split_on_char ' ' (String.trim (next_nonempty ()))
            |> List.filter (( <> ) "")
          in
          if List.length parts <> dim then
            fail "bad witness length (want %d values, got %d)" dim
              (List.length parts);
          Unsafe (Array.of_list (List.map float_of_string parts))
      | "inconclusive" :: rest -> Inconclusive (String.concat " " rest)
      | _ -> fail "bad verdict"
    in
    let table =
      match String.split_on_char ' ' (expect_key "table") with
      | [ a; b; g; d; n ] ->
          {
            Statistical.alpha = float_of_string a;
            beta = float_of_string b;
            gamma = float_of_string g;
            delta = float_of_string d;
            n = int_of_string n;
          }
      | _ -> fail "bad table"
    in
    let region_dim, n_faces =
      match String.split_on_char ' ' (expect_key "region") with
      | [ d; n ] -> (int_of_string d, int_of_string n)
      | _ -> fail "bad region header"
    in
    if region_dim < 0 then fail "negative region dimension %d" region_dim;
    if n_faces < 0 then fail "negative face count %d" n_faces;
    let region =
      List.init n_faces (fun _ ->
          match String.split_on_char ':' (expect_key "face") with
          | [ dir_text; bound_text ] ->
              let parts =
                String.split_on_char ' ' (String.trim dir_text)
                |> List.filter (( <> ) "")
              in
              let rec pairs = function
                | [] -> []
                | i :: c :: rest ->
                    (int_of_string i, float_of_string c) :: pairs rest
                | [ _ ] -> fail "odd face direction"
              in
              {
                Polyhedron.direction = pairs parts;
                bound = float_of_string (String.trim bound_text);
              }
          | _ -> fail "bad face")
    in
    let (_ : string) = expect_key "head" in
    let head_lines = ref [] in
    let rec collect () =
      let l = next_nonempty () in
      if String.trim l = "end" then ()
      else begin
        head_lines := String.trim l :: !head_lines;
        collect ()
      end
    in
    collect ();
    let head =
      (* [Serialize.of_string] is outside this module's control; any
         exception it throws on corrupted head text becomes a parse
         error, not a crash. *)
      try Serialize.of_string (String.concat "\n" (List.rev !head_lines))
      with e -> fail "bad head network: %s" (Printexc.to_string e)
    in
    Ok
      {
        property_name;
        psi;
        strategy;
        cut;
        verdict;
        region;
        region_dim;
        head;
        table;
      }
  with
  | Malformed m -> Error m
  (* [int_of_string]/[float_of_string] raise [Failure]; [Array]/[List]
     primitives raise [Invalid_argument] on pathological inputs.  The
     current line number turns either into a located parse error. *)
  | Failure m -> Error (Printf.sprintf "line %d: %s" !pos m)
  | Invalid_argument m -> Error (Printf.sprintf "line %d: %s" !pos m)
  | End_of_file -> Error (Printf.sprintf "line %d: unexpected end" !pos)

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* No [Sys.file_exists] pre-check: it races against deletion (TOCTOU)
   and [open_in] reports the authoritative error anyway.  Everything the
   OS can throw at us — missing file, permissions, a file truncated
   between [in_channel_length] and the read — comes back as [Error]. *)
let load ~path =
  match
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": file shrank while reading")
  | s -> of_string s

let pp fmt t =
  let verdict_text =
    match t.verdict with
    | Safe_unconditional -> "SAFE"
    | Safe_conditional -> "SAFE (conditional)"
    | Unsafe _ -> "UNSAFE (witness embedded)"
    | Inconclusive r -> "INCONCLUSIVE: " ^ r
  in
  Format.fprintf fmt
    "@[<v>certificate: %s | %s | %s@,\
     cut layer %d, %d monitoring faces, guarantee 1-gamma = %.4f@,\
     verdict: %s@]"
    t.property_name (Risk.to_string t.psi) t.strategy t.cut
    (List.length t.region) (guarantee t) verdict_text
