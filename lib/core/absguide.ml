module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Faults = Dpv_linprog.Faults
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Deeppoly = Dpv_absint.Deeppoly
module Resumable = Dpv_absint.Deeppoly.Resumable
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Risk = Dpv_spec.Risk
module Linexpr = Dpv_spec.Linexpr
module Metrics = Dpv_obs.Metrics

(* ---------------- global mode ---------------- *)

(* Scratch mode forces every consult to re-propagate from layer 1.  It
   runs the same engine through the same code path, so results are
   bit-identical to incremental mode by construction — the CI
   incremental-equivalence step flips this and compares verdicts and
   exact node/prune counters. *)
let scratch_mode = Atomic.make false

let set_scratch b = Atomic.set scratch_mode b

let init_from_env () =
  match Sys.getenv_opt "DPV_ABSINT_SCRATCH" with
  | None -> ()
  | Some v -> (
      match String.trim (String.lowercase_ascii v) with
      | "" | "0" | "false" | "no" -> set_scratch false
      | _ -> set_scratch true)

let m_stale_fallbacks = Metrics.counter "absint.stale_fallbacks"
let m_seeded_roots = Metrics.counter "absint.seeded_roots"

(* Phase of one encoded ReLU binary under a node's current bounds.  The
   branch-and-bound children only ever tighten a binary to exactly
   [0, 0] or [1, 1], so reading the bounds recovers the node's phase
   fixings without any side channel from the solver. *)
let phase_of node v =
  let lo, up = Lp.var_bounds node v in
  let lo = Option.value lo ~default:0.0 in
  let up = Option.value up ~default:1.0 in
  if lo >= 0.5 then Deeppoly.Active
  else if up <= 0.5 then Deeppoly.Inactive
  else Deeppoly.Unknown

(* Interval of a linear expression over an output box (the same
   arithmetic [Verify.expr_bounds] uses; duplicated because [Verify]
   depends on this module, not the other way around). *)
let expr_bounds (expr : Linexpr.t) box =
  List.fold_left
    (fun acc (c, i) -> Interval.add acc (Interval.scale c box.(i)))
    (Interval.point expr.Linexpr.const)
    (Linexpr.normalized_terms expr)

(* Can the propagated output box still satisfy the query?  Mirrors the
   [verify_incomplete] discharge conditions: the node is dead if some
   psi inequality is unreachable from the output box, or the
   characterizer logit provably stays below the margin.  Both tests are
   strict, the same soundness convention [verify_incomplete] uses. *)
let query_unreachable ~psi ~characterizer_margin ~output_box ~logit_box =
  logit_box.Interval.hi < characterizer_margin
  || List.exists
       (fun (ineq : Risk.inequality) ->
         let iv = expr_bounds ineq.Risk.expr output_box in
         match ineq.Risk.rel with
         | `Le -> iv.Interval.lo > ineq.Risk.bound
         | `Ge -> iv.Interval.hi < ineq.Risk.bound)
       psi.Risk.inequalities

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let same_box (a : Box_domain.t) (b : Box_domain.t) =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i (iv : Interval.t) ->
           let jv : Interval.t = b.(i) in
           if
             not
               (same_float iv.Interval.lo jv.Interval.lo
               && same_float iv.Interval.hi jv.Interval.hi)
           then ok := false)
         a;
       !ok
     end

(* ---------------- immutable reference propagation ----------------

   The from-scratch semantics the incremental engine must reproduce,
   written over the immutable domain: transfer every layer under the
   node's effective phases — the node's own fixing where one exists,
   otherwise the phase the propagated pre-activation bounds imply
   ([hi <= 0] before [lo >= 0], the same order the ReLU transfer
   resolves an [Unknown]).  Used by the debug cross-check under fault
   builds, and by tests as the independent oracle. *)
let reference_outputs ~net ~relus ~box node =
  let t = ref (Deeppoly.of_box box) in
  let empty = ref false in
  List.iteri
    (fun idx layer ->
      if not !empty then
        match layer with
        | Layer.Relu -> (
            let pre = Deeppoly.to_box !t in
            let d = Array.length pre in
            let phases = Array.make d Deeppoly.Unknown in
            (match List.assoc_opt (idx + 1) relus with
            | None -> ()
            | Some vars ->
                let n = min d (Array.length vars) in
                for i = 0 to n - 1 do
                  match vars.(i) with
                  | None -> ()
                  | Some v -> (
                      match phase_of node v with
                      | Deeppoly.Unknown ->
                          let iv = pre.(i) in
                          if iv.Interval.hi <= 0.0 then
                            phases.(i) <- Deeppoly.Inactive
                          else if iv.Interval.lo >= 0.0 then
                            phases.(i) <- Deeppoly.Active
                      | p -> phases.(i) <- p)
                done);
            match Deeppoly.transfer_relu_fixed phases !t with
            | Some t' -> t := t'
            | None -> empty := true)
        | layer -> t := Deeppoly.transfer_layer layer !t)
    (Network.layers net);
  if !empty then None else Some (Deeppoly.to_box !t)

(* ---------------- per-instance incremental state ---------------- *)

(* One ReLU layer that carries encoded binaries.  [rc_key] is the
   node's phase fixings as read at the last consult; [rc_phases] the
   effective phases the layer state was last transferred with (node
   fixing where present, else implied from bounds).  [rc_implied.(i)]
   records whether [rc_phases.(i)] is exactly what the pre-activation
   bounds would resolve an [Unknown] to — in that case the fixed-phase
   transfer and the [Unknown] transfer coincide bit-for-bit.  The state
   at this layer stays valid for a new node as long as the node's
   fixings are {e compatible} with [rc_phases]: every binary the node
   fixes agrees, and every binary the node leaves free was transferred
   under a phase the bounds imply anyway.  That is weaker than key
   equality — a child whose only change is adopting a phase the guide
   itself implied resumes without re-propagating — but a node that
   un-fixes a genuinely crossing binary (a sibling after backtracking)
   must invalidate, because its [Unknown] transfer is wider than the
   fixed one the cache holds. *)
type relu_cache = {
  rc_layer : int;
  rc_vars : Lp.var option array;
  rc_key : Deeppoly.phase array;
  mutable rc_key_valid : bool;
  rc_phases : Deeppoly.phase array;
  rc_implied : bool array;
  mutable rc_fixes : (Lp.var * float) list; (* ascending neuron order *)
  mutable rc_widths : (Lp.var * float) list;
  mutable rc_have : bool; (* fixes/widths current for key + state *)
}

type net_state = {
  ns_st : Resumable.state;
  ns_caches : relu_cache array; (* ascending [rc_layer] *)
  ns_phases_fn : int -> Deeppoly.phase array;
}

type instance = {
  i_suffix : net_state;
  i_head : net_state;
  i_slot : (int * relu_cache * int) option array;
      (* encoded binary -> (net: 0 suffix / 1 head, cache, neuron) *)
  i_delta_cap : int; (* total binaries: past this, full scan is cheaper *)
  mutable i_last : Lp.t option;
      (* node the keys were last synced against; [None] forces a full
         key scan (first consult, or after a scratch/fallback consult) *)
  mutable i_hits : int;
  mutable i_propagated : int;
  mutable i_saved : int;
  i_evictions : int;
}

(* Fixes and widths for one ReLU layer from its pre-activation bounds
   [(cl, ch)] and the node phases in [rc_key]; records the effective
   phases into [rc_phases].  Called by the propagation callback (with
   the just-materialized previous layer) for re-propagated layers, and
   lazily at guidance assembly for resumed ones. *)
let compute_layer rc (cl : float array) (ch : float array) =
  let d = Array.length rc.rc_key in
  let nv = Array.length rc.rc_vars in
  let fixes = ref [] and widths = ref [] in
  for i = d - 1 downto 0 do
    let var = if i < nv then rc.rc_vars.(i) else None in
    match var with
    | None ->
        rc.rc_phases.(i) <- Deeppoly.Unknown;
        rc.rc_implied.(i) <- true
    | Some v -> (
        match rc.rc_key.(i) with
        | Deeppoly.Unknown ->
            let lo = cl.(i) and hi = ch.(i) in
            if hi <= 0.0 then begin
              fixes := (v, 0.0) :: !fixes;
              rc.rc_phases.(i) <- Deeppoly.Inactive
            end
            else if lo >= 0.0 then begin
              fixes := (v, 1.0) :: !fixes;
              rc.rc_phases.(i) <- Deeppoly.Active
            end
            else begin
              widths := (v, hi -. lo) :: !widths;
              rc.rc_phases.(i) <- Deeppoly.Unknown
            end;
            (* The phase came from the bounds themselves. *)
            rc.rc_implied.(i) <- true
        | p ->
            rc.rc_phases.(i) <- p;
            (* Node-fixed: the transfer matches an [Unknown] transfer
               only if the bounds resolve to the very same phase, with
               the same [hi <= 0] before [lo >= 0] tie-break the ReLU
               transfer uses. *)
            rc.rc_implied.(i) <-
              (if ch.(i) <= 0.0 then p = Deeppoly.Inactive
               else if cl.(i) >= 0.0 then p = Deeppoly.Active
               else false))
  done;
  rc.rc_fixes <- !fixes;
  rc.rc_widths <- !widths;
  rc.rc_have <- true

let make_net_state st plan relus ~seeded =
  let n = Resumable.num_layers plan in
  let caches = ref [] in
  let by_layer = Array.make (n + 1) None in
  let unknown = Array.make (n + 1) [||] in
  for l = n downto 1 do
    if Resumable.is_relu plan l then begin
      let d = Resumable.layer_dim plan l in
      match List.assoc_opt l relus with
      | Some vars ->
          let rc =
            {
              rc_layer = l;
              rc_vars = vars;
              rc_key = Array.make d Deeppoly.Unknown;
              rc_key_valid = seeded;
              rc_phases = Array.make d Deeppoly.Unknown;
              rc_implied = Array.make d true;
              rc_fixes = [];
              rc_widths = [];
              rc_have = false;
            }
          in
          caches := rc :: !caches;
          by_layer.(l) <- Some rc
      | None -> unknown.(l) <- Array.make d Deeppoly.Unknown
    end
  done;
  let phases_fn l =
    match by_layer.(l) with
    | None -> unknown.(l)
    | Some rc ->
        let cl, ch = Resumable.conc_view st ~layer:(l - 1) in
        compute_layer rc cl ch;
        rc.rc_phases
  in
  { ns_st = st; ns_caches = Array.of_list !caches; ns_phases_fn = phases_fn }

(* Read the node's fixings into every layer key of one net and return
   the earliest layer whose fixings are incompatible with the effective
   phases its state was built under ([max_int] when fully valid). *)
let full_scan ns node =
  let first_invalid = ref max_int in
  Array.iter
    (fun rc ->
      let key_changed = ref (not rc.rc_key_valid) in
      let incompatible = ref (not rc.rc_key_valid) in
      let d = Array.length rc.rc_key in
      let nv = Array.length rc.rc_vars in
      for i = 0 to d - 1 do
        let p =
          if i < nv then
            match rc.rc_vars.(i) with
            | Some v -> phase_of node v
            | None -> Deeppoly.Unknown
          else Deeppoly.Unknown
        in
        if p <> rc.rc_key.(i) then begin
          key_changed := true;
          rc.rc_key.(i) <- p
        end;
        (* A fixed binary must match the transferred phase exactly; a
           free binary is only compatible with a fixed transfer when
           the bounds implied that phase anyway (identical transfer). *)
        if
          p <> rc.rc_phases.(i)
          && ((p <> Deeppoly.Unknown) || not rc.rc_implied.(i))
        then incompatible := true
      done;
      rc.rc_key_valid <- true;
      if !key_changed then rc.rc_have <- false;
      if !incompatible && rc.rc_layer < !first_invalid then
        first_invalid := rc.rc_layer)
    ns.ns_caches;
  !first_invalid

(* Roll one net's engine back to [l].  Returns [true] when the
   [absint-stale] fault suppressed a rollback that should have happened
   (the injected bug the cross-check must catch). *)
let apply_invalidation ns l =
  if l = max_int then false
  else begin
    Array.iter
      (fun rc -> if rc.rc_layer >= l then rc.rc_have <- false)
      ns.ns_caches;
    let stale =
      l <= Resumable.valid ns.ns_st && Faults.fire Faults.Absint_stale
    in
    if not stale then Resumable.invalidate_from ns.ns_st l;
    stale
  end

(* Bring both nets' keys in line with [node] and roll their engines
   back as needed; returns the per-net stale flags.  The fast path
   diffs [node] against the previously-synced node via the model's
   bound-change trail — a B&B child or sibling is one or two
   [set_var_bounds] away, so almost every consult touches O(1) binaries
   instead of re-reading all of them.  Any variable the trail diff does
   not name provably kept its bounds, and an unchanged binary cannot
   become incompatible (its key already agreed with the phases the
   valid layers were transferred with), so the delta sync invalidates
   exactly where the full scan would. *)
let sync_incremental inst node =
  let fi = [| max_int; max_int |] in
  let delta_done =
    match inst.i_last with
    | None -> false
    | Some prev -> (
        match Lp.bounds_delta ~cap:inst.i_delta_cap prev node with
        | None -> false
        | Some vars ->
            let nslots = Array.length inst.i_slot in
            List.iter
              (fun v ->
                if v < nslots then
                  match inst.i_slot.(v) with
                  | None -> ()
                  | Some (net, rc, i) ->
                      let p = phase_of node v in
                      if p <> rc.rc_key.(i) then begin
                        rc.rc_key.(i) <- p;
                        rc.rc_have <- false
                      end;
                      if
                        p <> rc.rc_phases.(i)
                        && ((p <> Deeppoly.Unknown) || not rc.rc_implied.(i))
                        && rc.rc_layer < fi.(net)
                      then fi.(net) <- rc.rc_layer)
              vars;
            true)
  in
  if not delta_done then begin
    fi.(0) <- full_scan inst.i_suffix node;
    fi.(1) <- full_scan inst.i_head node
  end;
  inst.i_last <- Some node;
  let s_stale = apply_invalidation inst.i_suffix fi.(0) in
  let h_stale = apply_invalidation inst.i_head fi.(1) in
  (s_stale, h_stale)

let sync_scratch_net ns node =
  Resumable.invalidate_from ns.ns_st 1;
  Array.iter
    (fun rc ->
      let d = Array.length rc.rc_key in
      let nv = Array.length rc.rc_vars in
      for i = 0 to d - 1 do
        rc.rc_key.(i) <-
          (if i < nv then
             match rc.rc_vars.(i) with
             | Some v -> phase_of node v
             | None -> Deeppoly.Unknown
           else Deeppoly.Unknown)
      done;
      rc.rc_key_valid <- true;
      rc.rc_have <- false)
    ns.ns_caches

let sync_scratch inst node =
  sync_scratch_net inst.i_suffix node;
  sync_scratch_net inst.i_head node;
  (* Keys no longer carry incremental invariants for the next consult:
     force the next incremental sync through the full scan. *)
  inst.i_last <- None

(* Propagate one network; returns (empty, resumed_layers). *)
let run_net inst ns =
  let resumed = Resumable.valid ns.ns_st in
  let transferred = Resumable.propagate ns.ns_st ~phases:ns.ns_phases_fn in
  inst.i_propagated <- inst.i_propagated + transferred;
  inst.i_saved <- inst.i_saved + resumed;
  (Resumable.last_empty ns.ns_st, resumed)

(* Resumed layers kept their fixes/widths unless an earlier consult
   left them unset; those re-read the (still materialized) cached
   bounds without re-propagating anything. *)
let collect ns fixes widths =
  Array.iter
    (fun rc ->
      if not rc.rc_have then begin
        let cl, ch = Resumable.conc_view ns.ns_st ~layer:(rc.rc_layer - 1) in
        compute_layer rc cl ch
      end;
      List.iter (fun f -> fixes := f :: !fixes) rc.rc_fixes;
      List.iter (fun w -> widths := w :: !widths) rc.rc_widths)
    ns.ns_caches

(* ---------------- seeds (bisection root reuse) ---------------- *)

type seed = {
  sd_box : Box_domain.t;
  sd_splan : Resumable.plan;
  sd_hplan : Resumable.plan;
  sd_suffix : Resumable.state;
  sd_head : Resumable.state;
  mutable sd_taken : bool;
}

let root_propagation ~suffix ~head ~feature_box =
  let splan = Resumable.plan suffix and hplan = Resumable.plan head in
  let s_st = Resumable.create splan feature_box in
  let h_st = Resumable.create hplan feature_box in
  let unknowns plan l =
    Array.make (Resumable.layer_dim plan l) Deeppoly.Unknown
  in
  ignore (Resumable.propagate s_st ~phases:(unknowns splan) : int);
  ignore (Resumable.propagate h_st ~phases:(unknowns hplan) : int);
  {
    sd_box = Array.copy feature_box;
    sd_splan = splan;
    sd_hplan = hplan;
    sd_suffix = s_st;
    sd_head = h_st;
    sd_taken = false;
  }

let seed_output_box sd = Resumable.output_box sd.sd_suffix
let seed_logit_box sd = (Resumable.output_box sd.sd_head).(0)

(* ---------------- the guide factory ---------------- *)

let factory ?budget_floats ?seed ~suffix ~head ~feature_box ~suffix_relus
    ~head_relus ~psi ~characterizer_margin () : Milp.guide_factory =
  (* A seed is only adoptable when it was propagated over exactly this
     box (bit-for-bit); anything else is silently a non-seed. *)
  let seed =
    match seed with
    | Some sd when same_box sd.sd_box feature_box -> Some sd
    | _ -> None
  in
  let splan, hplan =
    match seed with
    | Some sd -> (sd.sd_splan, sd.sd_hplan)
    | None -> (Resumable.plan suffix, Resumable.plan head)
  in
  let lock = Mutex.create () in
  let instances = ref [] in
  let consult_core inst node ~scratch =
    let s_stale, h_stale =
      if scratch then begin
        sync_scratch inst node;
        (false, false)
      end
      else sync_incremental inst node
    in
    let stale = s_stale || h_stale in
    let s_empty, s_resumed = run_net inst inst.i_suffix in
    if s_empty then (`Prune, s_resumed > 0, stale)
    else begin
      let h_empty, h_resumed = run_net inst inst.i_head in
      let hit = s_resumed > 0 || h_resumed > 0 in
      if h_empty then (`Prune, hit, stale)
      else begin
        let output_box = Resumable.output_box inst.i_suffix.ns_st in
        let logit_box = (Resumable.output_box inst.i_head.ns_st).(0) in
        if query_unreachable ~psi ~characterizer_margin ~output_box ~logit_box
        then (`Prune, hit, stale)
        else begin
          let fixes = ref [] and widths = ref [] in
          collect inst.i_suffix fixes widths;
          collect inst.i_head fixes widths;
          ( `Guide
              {
                Milp.prune = false;
                fix = List.rev !fixes;
                widths = List.rev !widths;
              },
            hit,
            stale )
        end
      end
    end
  in
  (* Debug cross-check (armed fault harness only): compare the engine's
     bounds against the immutable from-scratch reference bit-for-bit.
     Any divergence — in particular one injected by [absint-stale] —
     falls back to a clean re-propagation. *)
  let diverged inst node =
    match reference_outputs ~net:suffix ~relus:suffix_relus ~box:feature_box node with
    | None -> not (Resumable.last_empty inst.i_suffix.ns_st)
    | Some sbox ->
        if Resumable.last_empty inst.i_suffix.ns_st then true
        else if
          not (same_box sbox (Resumable.output_box inst.i_suffix.ns_st))
        then true
        else (
          match
            reference_outputs ~net:head ~relus:head_relus ~box:feature_box node
          with
          | None -> not (Resumable.last_empty inst.i_head.ns_st)
          | Some hbox ->
              Resumable.last_empty inst.i_head.ns_st
              || not (same_box hbox (Resumable.output_box inst.i_head.ns_st)))
  in
  let force_scratch inst =
    Resumable.invalidate_from inst.i_suffix.ns_st 1;
    Resumable.invalidate_from inst.i_head.ns_st 1;
    Array.iter (fun rc -> rc.rc_have <- false) inst.i_suffix.ns_caches;
    Array.iter (fun rc -> rc.rc_have <- false) inst.i_head.ns_caches;
    inst.i_last <- None
  in
  let consult inst node =
    let scratch = Atomic.get scratch_mode in
    let decision, hit, _stale = consult_core inst node ~scratch in
    let decision, hit =
      if (not scratch) && Faults.enabled () && diverged inst node then begin
        Metrics.incr m_stale_fallbacks 1;
        force_scratch inst;
        let d, h, _ = consult_core inst node ~scratch:false in
        (d, h)
      end
      else (decision, hit)
    in
    if hit then inst.i_hits <- inst.i_hits + 1;
    match decision with
    | `Prune -> { Milp.prune = true; fix = []; widths = [] }
    | `Guide g -> g
  in
  let new_guide () =
    let inst =
      Mutex.protect lock (fun () ->
          let adopted =
            match seed with
            | Some sd when not sd.sd_taken ->
                sd.sd_taken <- true;
                Some sd
            | _ -> None
          in
          let s_st, h_st, seeded =
            match adopted with
            | Some sd -> (sd.sd_suffix, sd.sd_head, true)
            | None ->
                ( Resumable.create ?budget_floats splan feature_box,
                  Resumable.create ?budget_floats hplan feature_box,
                  false )
          in
          if seeded then Metrics.incr m_seeded_roots 1;
          let suffix_ns = make_net_state s_st splan suffix_relus ~seeded in
          let head_ns = make_net_state h_st hplan head_relus ~seeded in
          (* Binary -> cache slot index for the trail-diff sync, plus
             the binary count past which a full scan is cheaper. *)
          let max_var = ref (-1) and nbin = ref 0 in
          let count ns =
            Array.iter
              (fun rc ->
                Array.iter
                  (function
                    | Some v ->
                        incr nbin;
                        if v > !max_var then max_var := v
                    | None -> ())
                  rc.rc_vars)
              ns.ns_caches
          in
          count suffix_ns;
          count head_ns;
          let slot = Array.make (!max_var + 1) None in
          let index net ns =
            Array.iter
              (fun rc ->
                Array.iteri
                  (fun i -> function
                    | Some v -> slot.(v) <- Some (net, rc, i)
                    | None -> ())
                  rc.rc_vars)
              ns.ns_caches
          in
          index 0 suffix_ns;
          index 1 head_ns;
          let inst =
            {
              i_suffix = suffix_ns;
              i_head = head_ns;
              i_slot = slot;
              i_delta_cap = !nbin;
              i_last = None;
              i_hits = 0;
              i_propagated = 0;
              i_saved = 0;
              i_evictions =
                Resumable.evicted_layers s_st + Resumable.evicted_layers h_st;
            }
          in
          instances := inst :: !instances;
          inst)
    in
    fun node -> consult inst node
  in
  let guide_stats () =
    Mutex.protect lock (fun () ->
        List.fold_left
          (fun acc i ->
            {
              Milp.incr_hits = acc.Milp.incr_hits + i.i_hits;
              layers_propagated = acc.Milp.layers_propagated + i.i_propagated;
              layers_saved = acc.Milp.layers_saved + i.i_saved;
              cache_evictions = acc.Milp.cache_evictions + i.i_evictions;
            })
          Milp.empty_guide_stats !instances)
  in
  { Milp.new_guide; guide_stats }

(* Backward-compatible single-instance construction for callers that
   want a plain stateless-looking guide value. *)
let make ~suffix ~head ~feature_box ~suffix_relus ~head_relus ~psi
    ~characterizer_margin : Milp.guide_factory =
  factory ~suffix ~head ~feature_box ~suffix_relus ~head_relus ~psi
    ~characterizer_margin ()
