module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Deeppoly = Dpv_absint.Deeppoly
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Risk = Dpv_spec.Risk
module Linexpr = Dpv_spec.Linexpr

(* Phase of one encoded ReLU binary under a node's current bounds.  The
   branch-and-bound children only ever tighten a binary to exactly
   [0, 0] or [1, 1], so reading the bounds recovers the node's phase
   fixings without any side channel from the solver. *)
let phase_of node v =
  let lo, up = Lp.var_bounds node v in
  let lo = Option.value lo ~default:0.0 in
  let up = Option.value up ~default:1.0 in
  if lo >= 0.5 then Deeppoly.Active
  else if up <= 0.5 then Deeppoly.Inactive
  else Deeppoly.Unknown

(* Interval of a linear expression over an output box (the same
   arithmetic [Verify.expr_bounds] uses; duplicated because [Verify]
   depends on this module, not the other way around). *)
let expr_bounds (expr : Linexpr.t) box =
  List.fold_left
    (fun acc (c, i) -> Interval.add acc (Interval.scale c box.(i)))
    (Interval.point expr.Linexpr.const)
    (Linexpr.normalized_terms expr)

(* Propagate DeepPoly through one encoded network under the node's
   phase fixings.  [relus] maps 1-based ReLU layer indices to the
   per-neuron binary variables ([None] = resolved by bounds at encode
   time).  Returns [None] when some fixing contradicts the propagated
   bounds (the node's region is empty); otherwise the output box.
   Along the way, binaries whose phase the propagated pre-activation
   bounds already imply are appended to [fixes], and still-free
   binaries are scored in [widths] by their pre-activation width. *)
let propagate_fixed ~net ~relus ~box node ~fixes ~widths =
  let t = ref (Deeppoly.of_box box) in
  let empty = ref false in
  List.iteri
    (fun idx layer ->
      if not !empty then
        match layer with
        | Layer.Relu -> (
            let pre = Deeppoly.to_box !t in
            let d = Array.length pre in
            let phases = Array.make d Deeppoly.Unknown in
            (match List.assoc_opt (idx + 1) relus with
            | None -> ()
            | Some vars ->
                let n = min d (Array.length vars) in
                for i = 0 to n - 1 do
                  match vars.(i) with
                  | None -> ()
                  | Some v -> (
                      match phase_of node v with
                      | Deeppoly.Unknown ->
                          let iv = pre.(i) in
                          if iv.Interval.lo >= 0.0 then begin
                            fixes := (v, 1.0) :: !fixes;
                            phases.(i) <- Deeppoly.Active
                          end
                          else if iv.Interval.hi <= 0.0 then begin
                            fixes := (v, 0.0) :: !fixes;
                            phases.(i) <- Deeppoly.Inactive
                          end
                          else
                            widths :=
                              (v, iv.Interval.hi -. iv.Interval.lo) :: !widths
                      | p -> phases.(i) <- p)
                done);
            match Deeppoly.transfer_relu_fixed phases !t with
            | Some t' -> t := t'
            | None -> empty := true)
        | layer -> t := Deeppoly.transfer_layer layer !t)
    (Network.layers net);
  if !empty then None else Some (Deeppoly.to_box !t)

(* Can the propagated output box still satisfy the query?  Mirrors the
   [verify_incomplete] discharge conditions: the node is dead if some
   psi inequality is unreachable from the output box, or the
   characterizer logit provably stays below the margin.  Both tests are
   strict, the same soundness convention [verify_incomplete] uses. *)
let query_unreachable ~psi ~characterizer_margin ~output_box ~logit_box =
  logit_box.Interval.hi < characterizer_margin
  || List.exists
       (fun (ineq : Risk.inequality) ->
         let iv = expr_bounds ineq.Risk.expr output_box in
         match ineq.Risk.rel with
         | `Le -> iv.Interval.lo > ineq.Risk.bound
         | `Ge -> iv.Interval.hi < ineq.Risk.bound)
       psi.Risk.inequalities

let make ~suffix ~head ~feature_box ~suffix_relus ~head_relus ~psi
    ~characterizer_margin : Milp.guide =
 fun node ->
  let fixes = ref [] and widths = ref [] in
  let suffix_out =
    propagate_fixed ~net:suffix ~relus:suffix_relus ~box:feature_box node
      ~fixes ~widths
  in
  let prune =
    match suffix_out with
    | None -> true
    | Some output_box -> (
        match
          propagate_fixed ~net:head ~relus:head_relus ~box:feature_box node
            ~fixes ~widths
        with
        | None -> true
        | Some head_out ->
            query_unreachable ~psi ~characterizer_margin ~output_box
              ~logit_box:head_out.(0))
  in
  { Milp.prune; fix = List.rev !fixes; widths = List.rev !widths }
