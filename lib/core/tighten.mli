(** Optimization-based bound tightening (OBBT).

    The big-M encoding's strength depends on how tight the per-neuron
    bounds are: tighter feature bounds fix more ReLU phases outright and
    shrink the big-M constants of the rest.  OBBT solves, for each
    feature coordinate, a pair of LPs over the *relaxed* encoding
    (binaries in [0,1]) — including the octagon faces and the
    "characterizer fires" constraint — and intersects the results with
    the incoming box.  This is the standard preprocessing step of
    MILP-based verifiers in the style of the paper's reference [3]. *)

type stats = {
  lps_solved : int;
  dims_tightened : int;
  dims_skipped : int;    (** coordinates left untouched by the deadline *)
  width_before : float;  (** mean width of the incoming box *)
  width_after : float;
}

val feature_box :
  ?time_limit_s:float ->
  ?deadline:Dpv_linprog.Clock.deadline ->
  ?shared:Encode.shared ->
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  ?extra_faces:Dpv_monitor.Polyhedron.halfspace list ->
  ?characterizer_margin:float ->
  unit ->
  Dpv_absint.Box_domain.t * stats
(** Tightened feature box (sound: every point of the original region that
    satisfies the side constraints stays inside).

    [time_limit_s] bounds the preprocessing on the wall clock: once the
    deadline passes, remaining coordinates keep their incoming bounds
    (still sound — OBBT only ever shrinks) and are counted in
    [dims_skipped].  [deadline], when given, takes precedence over
    [time_limit_s]: it lets a caller thread one already-running deadline
    through tightening and the subsequent MILP so a single budget covers
    both phases ({!Verify.verify}).

    [shared], when given, must be an {!Encode.build_shared} result for
    the same [suffix], [feature_box] and [extra_faces]; the suffix
    encoding is then reused instead of rebuilt ([extra_faces] is ignored
    in that case — the faces are already part of the prefix). *)
