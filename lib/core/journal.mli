(** Crash-safe campaign journal: one JSON line per settled query.

    A campaign that dies — machine reboot, OOM kill, operator ctrl-C —
    should not forfeit the queries it already answered.  The journal
    records each query's outcome as soon as it settles, keyed by a
    content digest of the query itself, and [dpv campaign --resume]
    replays [Done] entries instead of re-solving them.

    Durability model: the first write (and any write after a failure)
    rewrites the whole journal to a temporary file in the same
    directory, fsyncs it and [Sys.rename]s it over the target — the
    atomic path that also compacts a resumed campaign's replayed
    entries.  Steady-state appends then take an O(1) fast path: one
    line written to an open append channel, flushed and fsynced.  A
    crash mid-append can tear at most the final, unterminated line,
    which {!load} drops; corruption anywhere else is still a hard
    parse error.

    Writes are serialized with a mutex: campaign runners settle queries
    concurrently.  Append latency lands in the [journal.append_ns]
    histogram of {!Dpv_obs.Metrics}. *)

type outcome =
  | Done of Verify.result
      (** The query produced a verdict (possibly [Unknown]). *)
  | Crashed of string
      (** The solve raised; the message is the exception text.  Not
          replayed on resume — a resumed campaign retries it. *)
  | Skipped of string
      (** Never attempted (campaign budget exhausted before its turn).
          Not replayed on resume. *)

type entry = {
  key : string;           (** content digest of the query (hex) *)
  label : string;
  outcome : outcome;
  attempts : int;         (** solve attempts, [>= 1]; 0 for [Skipped] *)
  dense_retry : bool;
  deadline_retry : bool;
}

type meta = {
  shard : int;            (** this journal's slice index, [0 <= shard] *)
  shard_count : int;      (** total slices in the partition, [>= 1] *)
  runners : int;          (** pool runners the shard ran with *)
  total_wall_s : float;   (** the shard's campaign wall clock *)
  trace : string;
      (** trace id correlating this run with its spans, joblog entries
          and protocol frames; [""] when the run had none (batch
          campaigns, pre-dpv-obs/2 journals) — the field is then
          omitted from the line *)
  metrics : Dpv_obs.Metrics.snapshot;
      (** the shard's [dpv-metrics/1] delta; [dpv merge-journals] sums
          these ({!Dpv_obs.Metrics.merge}) into exact campaign totals *)
}
(** Shard trailer.  A sharded campaign ([dpv campaign --shard i/n])
    appends exactly one meta line after its entries; unsharded journals
    carry none, so their line count stays one-per-query.  Served jobs
    also append one (unsharded: [shard = 0], [shard_count = 1]) to
    carry the job's trace id. *)

type writer

val create : path:string -> entry list -> writer
(** [create ~path existing] opens a journal writer on [path], seeded
    with [existing] entries (the replayed portion of a resumed
    campaign) so the file on disk always describes the whole campaign.
    Writes nothing until the first {!append}. *)

val append : writer -> entry -> unit
(** Record one settled query and persist it durably (fast append when
    the file is in a known-good state, atomic whole-file rewrite
    otherwise).  Raises [Sys_error] if the filesystem write fails (or
    under the [Journal_crash] fault-injection site); the in-memory
    entry list is updated first and the writer falls back to the
    rewrite path, so a later append re-persists everything. *)

val append_meta : writer -> meta -> unit
(** Record the shard trailer (same durability contract as {!append});
    a recovery rewrite reproduces it after the entries.  Meant to be
    called once, at the end of a sharded campaign. *)

val entries : writer -> entry list
(** All entries recorded so far, in append order. *)

val close : writer -> unit
(** Close the fast-path append channel, if open.  Further appends
    reopen it through the rewrite path; calling close is optional but
    polite at campaign end. *)

val load : path:string -> (entry list, string) result
(** Parse a journal written by {!append}.  A final line without a
    trailing newline is treated as the torn tail of an interrupted
    append and dropped; any other malformed line is an [Error]
    carrying its 1-based line number.  Meta trailer lines are skipped,
    so sharded and merged journals resume like plain ones. *)

val load_with_meta :
  path:string -> (entry list * meta list, string) result
(** Like {!load} but also returning the meta trailers — what
    [dpv merge-journals] reads from each shard journal.  A well-formed
    shard journal has exactly one; hand-concatenated files may carry
    several. *)

val save : path:string -> entry list -> unit
(** Write a complete journal in one atomic pass (sibling tmp file,
    fsync, rename) — no writer state, no fast path.  Used to
    materialize merged journals. *)

val result_of_entry : entry -> Verify.result option
(** The replayable result: [Some] exactly for [Done] entries. *)

val parse_metrics :
  line:int -> Json.t -> (Dpv_obs.Metrics.snapshot, string) result
(** Parse a [dpv-metrics/1] JSON object (the ["metrics"] member of a
    meta trailer, a campaign report, or a serve metrics reply) back
    into a snapshot.  [line] seeds error messages.  Derived fields
    ([p50_ns] etc.) are ignored; a missing ["rates"] object (pre
    dpv-obs/2) reads as empty. *)
