(** Crash-safe campaign journal: one JSON line per settled query.

    A campaign that dies — machine reboot, OOM kill, operator ctrl-C —
    should not forfeit the queries it already answered.  The journal
    records each query's outcome as soon as it settles, keyed by a
    content digest of the query itself, and [dpv campaign --resume]
    replays [Done] entries instead of re-solving them.

    Durability model: every append rewrites the whole journal to a
    temporary file in the same directory and [Sys.rename]s it over the
    target, so the on-disk file is always a complete, parseable
    prefix of the campaign — never a torn line.  Journals are small
    (one line per query), so the rewrite is cheap at campaign scale.

    Writes are serialized with a mutex: campaign runners settle queries
    concurrently. *)

type outcome =
  | Done of Verify.result
      (** The query produced a verdict (possibly [Unknown]). *)
  | Crashed of string
      (** The solve raised; the message is the exception text.  Not
          replayed on resume — a resumed campaign retries it. *)
  | Skipped of string
      (** Never attempted (campaign budget exhausted before its turn).
          Not replayed on resume. *)

type entry = {
  key : string;           (** content digest of the query (hex) *)
  label : string;
  outcome : outcome;
  attempts : int;         (** solve attempts, [>= 1]; 0 for [Skipped] *)
  dense_retry : bool;
  deadline_retry : bool;
}

type writer

val create : path:string -> entry list -> writer
(** [create ~path existing] opens a journal writer on [path], seeded
    with [existing] entries (the replayed portion of a resumed
    campaign) so the file on disk always describes the whole campaign.
    Writes nothing until the first {!append}. *)

val append : writer -> entry -> unit
(** Record one settled query and persist the journal atomically.
    Raises [Sys_error] if the filesystem write fails (or under the
    [Journal_crash] fault-injection site); the in-memory entry list is
    updated first, so a later append retries the persist. *)

val entries : writer -> entry list
(** All entries recorded so far, in append order. *)

val load : path:string -> (entry list, string) result
(** Parse a journal written by {!append}.  [Error] messages carry the
    1-based line number of the offending line. *)

val result_of_entry : entry -> Verify.result option
(** The replayable result: [Some] exactly for [Done] entries. *)
