(** Safety verification entry points (Lemmas 1 and 2, assume-guarantee).

    Given a perception network, a trained characterizer at cut layer [l],
    and a risk condition [psi], decide whether some cut-layer activation
    inside the region [S] can simultaneously satisfy the characterizer
    (phi holds) and drive the output into [psi]. *)

type bounds_spec =
  | Static_bounds of Dpv_absint.Propagate.domain * Dpv_absint.Box_domain.t
      (** Sound [S] from abstract interpretation of the prefix over the
          given *input image* box (Lemma 2).  Unconditional. *)
  | Data_box of Dpv_tensor.Vec.t array
      (** [S~] = min/max box over visited feature vectors
          (assume-guarantee; requires runtime monitoring). *)
  | Data_octagon of Dpv_tensor.Vec.t array
      (** [S~] = octagon-template outer polyhedron over visited feature
          vectors (assume-guarantee, tighter than the box). *)
  | Feature_box of Dpv_absint.Box_domain.t
      (** Explicit box over cut-layer values (Lemma 1 with caller-chosen
          bounds).  Treated as unconditional. *)

type verdict =
  | Safe of { conditional : bool }
      (** No violating activation exists in [S].  [conditional] marks
          assume-guarantee proofs that need a runtime monitor. *)
  | Unsafe of {
      features : Dpv_tensor.Vec.t;  (** violating cut-layer activation *)
      output : Dpv_tensor.Vec.t;    (** suffix output at that activation *)
      logit : float;                (** characterizer logit there *)
    }
  | Unknown of string

type result = {
  verdict : verdict;
  milp_stats : Dpv_linprog.Milp.stats;
  encoding : string;   (** human-readable size of the MILP *)
  num_binaries : int;
  wall_time_s : float;
}

val default_milp_options : Dpv_linprog.Milp.options
(** {!Dpv_linprog.Milp.default_options} with [find_first = true] — the
    natural solver mode for a feasibility query. *)

val deadline_reason : string
(** The [Unknown] reason reported when the wall-clock deadline expired
    (["deadline exceeded"]).  It is a scheduling artifact, not a fact
    about the query, which is why {!Retry} keys its deadline-retry rung
    on exactly this string. *)

val resolve_bounds :
  perception:Dpv_nn.Network.t ->
  cut:int ->
  bounds_spec ->
  Dpv_absint.Box_domain.t * Dpv_monitor.Polyhedron.halfspace list
(** Resolve a bounds specification into the concrete feature box plus
    any octagon faces over the feature variables.  This is the
    per-region fitting work ({!Data_box}/{!Data_octagon} hulls, static
    propagation) that {!Campaign} caches per [(cut, bounds)] key. *)

val run_query :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?absint:bool ->
  ?absint_seed:Absguide.seed ->
  characterizer_margin:float ->
  shared:Encode.shared ->
  head:Dpv_nn.Network.t ->
  psi:Dpv_spec.Risk.t ->
  conditional:bool ->
  unit ->
  result
(** Run one MILP query on a pre-built {!Encode.shared} prefix: complete
    the encoding with [head]/[psi]/[characterizer_margin], solve, and
    map the solver result to a verdict (re-validating any witness by
    concrete execution).  [absint] (default false) arms the
    branch-and-bound search with the {!Absguide} DeepPoly guide built
    from this encoding (phase fixing, node pruning, and — together with
    [milp_options.branch_rule = Bound_width] — bound-width branching).
    [absint_seed] hands the guide an already propagated root state over
    this query's feature box ({!Absguide.root_propagation}), so the
    first consult re-propagates nothing — the bisection front end uses
    it to avoid propagating every surviving leaf twice.
    Callers that answer many queries over the same [(cut, bounds)]
    region build the prefix once — see {!Campaign}. *)

type bisect_options = {
  max_depth : int;
      (** bisection tree depth: up to [2^max_depth] sub-boxes *)
  subbox_time_limit_s : float option;
      (** optional per-sub-box wall-clock budget, met with the query's
          own remaining deadline by taking the minimum *)
}

val default_bisect_options : bisect_options
(** [{ max_depth = 2; subbox_time_limit_s = None }] *)

type bisect_plan = {
  survivors : (Dpv_absint.Box_domain.t * Absguide.seed) list;
      (** sub-boxes that still need a complete MILP query, each paired
          with the root propagation that failed to discharge it — handed
          to {!run_query} as [absint_seed] so the work is not redone *)
  discharged : int;
      (** sub-boxes proven safe by DeepPoly propagation alone *)
}

val plan_total : bisect_plan -> int
(** Total leaves of the plan: [discharged + length survivors]. *)

val bisect_plan :
  max_depth:int ->
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  psi:Dpv_spec.Risk.t ->
  characterizer_margin:float ->
  Dpv_absint.Box_domain.t ->
  bisect_plan
(** Recursively split the feature box at the midpoint of its widest
    dimension, discharging any sub-box that DeepPoly alone proves safe
    (the {!verify_incomplete} conditions); survivors are the leaves at
    [max_depth] (or unsplittable degenerate boxes).  The plan's leaves
    cover the input box exactly.  Increments the [bisect.subboxes] and
    [bisect.discharged] metrics counters. *)

val merge_bisected :
  conditional:bool ->
  discharged:int ->
  total_subboxes:int ->
  wall_time_s:float ->
  unsolved:int ->
  result list ->
  result
(** Sound verdict merge over a plan's solved survivors: any UNSAFE
    result (its witness was already re-validated concretely by
    {!run_query}) decides the query; [Safe] requires [unsolved = 0] and
    every survivor Safe; otherwise Unknown.  MILP stats are summed
    ({!Dpv_linprog.Milp.add_stats}); a sub-box deadline expiry keeps
    the exact {!deadline_reason} so the retry ladder still keys on
    it. *)

val verify :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?characterizer_margin:float ->
  ?tighten:bool ->
  ?absint:bool ->
  ?bisect:bisect_options ->
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  bounds:bounds_spec ->
  unit ->
  result
(** [tighten] (default false) runs {!Tighten.feature_box} over the
    resolved region before encoding, trading a few LPs for fewer
    branch-and-bound binaries.

    [absint] (default false) arms the DeepPoly branch-and-bound guide —
    see {!run_query}.  [bisect] (default off) runs the input-bisection
    front end instead of one monolithic MILP: the resolved (and
    possibly tightened) feature box is split per {!bisect_plan}, cheap
    sub-boxes are discharged by propagation, survivors are solved as
    independent MILP queries (stopping early once a validated UNSAFE
    witness is found), and the verdicts are combined with
    {!merge_bisected}.

    [milp_options] controls the solver: [workers > 1] searches the
    branch-and-bound tree across that many domains
    ({!Dpv_linprog.Milp_par}), and [time_limit_s] imposes a wall-clock
    deadline — an expired query returns [Unknown "deadline exceeded"]
    (the paper's UNKNOWN verdict) instead of spinning to the node cap.
    [time_limit_s] is a budget for the {e whole} call: one deadline is
    started up front and shared by the optional tightening pass, every
    bisection sub-box, and the MILP search, so neither [tighten:true]
    nor [bisect] can grow the wall clock past the budget. *)

val verify_incomplete :
  ?domain:Dpv_absint.Propagate.domain ->
  ?characterizer_margin:float ->
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  bounds:bounds_spec ->
  unit ->
  result
(** The incomplete baseline in the style of the paper's references
    [6]/[20]: pure bound propagation, no MILP.  The region [S] is pushed
    through the suffix and the characterizer head with the given abstract
    [domain] (default [Deeppoly]); the verdict is [Safe] when either the
    characterizer's logit upper bound stays below the margin (phi can
    never fire in S) or some inequality of [psi] is unsatisfiable within
    the propagated output bounds.  Otherwise [Unknown] — bound
    propagation alone cannot exploit the conjunction of "phi fires" with
    [psi], which is exactly why the paper reaches for MILP.  Orders of
    magnitude faster than the complete query. *)

val verify_without_characterizer :
  ?milp_options:Dpv_linprog.Milp.options ->
  perception:Dpv_nn.Network.t ->
  cut:int ->
  psi:Dpv_spec.Risk.t ->
  bounds:bounds_spec ->
  unit ->
  result
(** Plain output-range safety over [S] with no input condition — the
    baseline that shows why characterizers matter: without [phi] the
    query usually finds spurious violations. *)

type optimum = {
  value : float;            (** optimal objective value *)
  opt_features : Dpv_tensor.Vec.t;
  opt_output : Dpv_tensor.Vec.t;
  opt_logit : float;
}

val optimize_output :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?characterizer_margin:float ->
  perception:Dpv_nn.Network.t ->
  characterizer:Characterizer.t ->
  objective:Dpv_spec.Linexpr.t ->
  sense:[ `Maximize | `Minimize ] ->
  bounds:bounds_spec ->
  unit ->
  (optimum, string) Stdlib.result
(** Extremize a linear output expression over the region where the
    characterizer fires and the activation lies in [S] — e.g. "what is
    the largest waypoint the network can suggest while the characterizer
    reports a right bend?".  Locates the provable frontier of psi
    thresholds: any threshold beyond the optimum is (conditionally)
    safe. *)

val is_conditional : bounds_spec -> bool
val pp_verdict : Format.formatter -> verdict -> unit
