(** Statistical reasoning when the characterizer is imperfect (Section 3,
    Table 1).

    The four cells partition the input distribution by the ground truth
    (does [phi] hold?) and the characterizer decision:

    {v
                        in In_phi        in not in In_phi
      h(f^l(in)) = 1      alpha              beta
      h(f^l(in)) = 0      gamma       1 - alpha - beta - gamma
    v}

    A safety proof over the region where the characterizer fires covers
    the [alpha] and [beta] cells; the [gamma] cell — inputs where [phi]
    truly holds but the characterizer says it does not — escapes the
    proof, so the correctness claim only holds with probability
    [1 - gamma] (provided the omitted training points are themselves
    safe, footnote 4). *)

type table = {
  alpha : float;   (** P(h = 1 and phi) *)
  beta : float;    (** P(h = 1 and not phi) *)
  gamma : float;   (** P(h = 0 and phi) — the risk mass *)
  delta : float;   (** P(h = 0 and not phi) *)
  n : int;         (** sample size behind the estimate *)
}

val estimate :
  characterizer:Characterizer.t ->
  perception:Dpv_nn.Network.t ->
  images:Dpv_tensor.Vec.t array ->
  ground_truth:float array ->
  table
(** Empirical cell probabilities on labelled data (labels 0/1). *)

val guarantee : table -> float
(** [1 - gamma]. *)

val gamma_confidence : table -> z:float -> float * float
(** Wilson interval for [gamma] at the given z-score. *)

val omitted_unsafe_count :
  characterizer:Characterizer.t ->
  perception:Dpv_nn.Network.t ->
  psi:Dpv_spec.Risk.t ->
  images:Dpv_tensor.Vec.t array ->
  ground_truth:float array ->
  int
(** Footnote-4 side condition: among the gamma-cell data points (omitted
    from the proof), how many actually reach the risk condition [psi]?
    The statistical guarantee requires this count to be zero on the
    training data. *)

val pp : Format.formatter -> table -> unit
