module Lp = Dpv_linprog.Lp
module Simplex = Dpv_linprog.Simplex
module Clock = Dpv_linprog.Clock
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_lps = Metrics.counter "tighten.lps"

type stats = {
  lps_solved : int;
  dims_tightened : int;
  dims_skipped : int;
  width_before : float;
  width_after : float;
}

let feature_box ?time_limit_s ?deadline ?shared ~suffix ~head ~feature_box
    ?(extra_faces = []) ?(characterizer_margin = 0.0) () =
  Trace.with_span "tighten.feature-box" @@ fun () ->
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Clock.deadline_after time_limit_s
  in
  let encoding =
    match shared with
    | Some s -> Encode.complete s ~head ~characterizer_margin ()
    | None ->
        Encode.build ~suffix ~head ~feature_box ~extra_faces
          ~characterizer_margin ()
  in
  let relaxed = Lp.relax_integrality encoding.Encode.model in
  (* All 2*d LPs share one constraint matrix; only the objective moves.
     A persistent handle keeps the optimal basis between solves — an
     objective change leaves it primal feasible, so each LP after the
     first warm-starts in primal simplex. *)
  let handle = Simplex.create relaxed in
  let lps = ref 0 in
  let tightened = ref 0 in
  let skipped = ref 0 in
  let out =
    Array.mapi
      (fun i (orig : Interval.t) ->
        if Clock.expired deadline then begin
          incr skipped;
          orig
        end
        else
        let v = encoding.Encode.feature_vars.(i) in
        (* Re-check the deadline per LP, not per coordinate: each solve
           on a large relaxation can be a sizable fraction of the whole
           budget, and the overshoot past the deadline should be at most
           one straddling LP. *)
        let solve sense =
          if Clock.expired deadline then None
          else begin
            incr lps;
            Metrics.incr m_lps 1;
            let trace_t0 = Trace.begin_ns () in
            Simplex.set_objective handle sense [ (1.0, v) ];
            let status = Simplex.resolve handle in
            if trace_t0 <> 0 then
              Trace.complete
                ~args:
                  [
                    ("dim", string_of_int i);
                    ( "sense",
                      match sense with Lp.Minimize -> "min" | Lp.Maximize -> "max" );
                  ]
                ~name:"tighten.lp" trace_t0;
            Some status
          end
        in
        let lo =
          match solve Lp.Minimize with
          | Some (Simplex.Optimal { objective; _ }) ->
              Float.max orig.Interval.lo objective
          | Some (Simplex.Infeasible | Simplex.Unbounded) | None ->
              orig.Interval.lo
        in
        let hi =
          match solve Lp.Maximize with
          | Some (Simplex.Optimal { objective; _ }) ->
              Float.min orig.Interval.hi objective
          | Some (Simplex.Infeasible | Simplex.Unbounded) | None ->
              orig.Interval.hi
        in
        (* Guard against float noise producing an inverted interval. *)
        let lo, hi = if lo <= hi then (lo, hi) else (orig.Interval.lo, orig.Interval.hi) in
        if hi -. lo < Interval.width orig -. 1e-12 then incr tightened;
        Interval.make ~lo ~hi)
      feature_box
  in
  let stats =
    {
      lps_solved = !lps;
      dims_tightened = !tightened;
      dims_skipped = !skipped;
      width_before = Box_domain.mean_width feature_box;
      width_after = Box_domain.mean_width out;
    }
  in
  (out, stats)
