(** A minimal JSON reader for campaign specification files.

    The project deliberately carries no external JSON dependency (reports
    are emitted with [Printf]); this covers the reading side for the
    small configuration documents [dpv campaign] consumes.  It parses
    standard JSON with two simplifications: numbers are always [float],
    and [\uXXXX] escapes outside the basic multilingual plane are not
    recombined from surrogate pairs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val default_max_depth : int
(** Default container-nesting budget (256) — generous for every
    document this project writes, tiny against the stack. *)

val of_string : ?max_depth:int -> ?max_bytes:int -> string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and a
    description.

    Both limits exist for adversarial input (the serve protocol hands
    this parser raw network frames): [max_depth] (default
    {!default_max_depth}) bounds container nesting so a deeply nested
    array yields an [Error] instead of a stack overflow, and
    [max_bytes] (default unlimited) rejects oversized documents in O(1)
    before any parsing allocation. *)

val encode : t -> string
(** Compact (single-line) emission; [of_string (encode v)] round-trips
    every value this reader produces. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] accepts only numbers with no fractional part. *)

val to_string : t -> string option
val to_list : t -> t list option
