(** A minimal JSON reader for campaign specification files.

    The project deliberately carries no external JSON dependency (reports
    are emitted with [Printf]); this covers the reading side for the
    small configuration documents [dpv campaign] consumes.  It parses
    standard JSON with two simplifications: numbers are always [float],
    and [\uXXXX] escapes outside the basic multilingual plane are not
    recombined from surrogate pairs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and a
    description. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] accepts only numbers with no fractional part. *)

val to_string : t -> string option
val to_list : t -> t list option
