(** Human-readable reporting for workflow results. *)

val pp_case : Format.formatter -> Workflow.case_report -> unit
val case_to_string : Workflow.case_report -> string

val pp_verdict_line : Format.formatter -> Workflow.case_report -> unit
(** One-line summary: property, psi, strategy, verdict, time. *)

val table_row : string list -> string
(** Fixed-width table row helper used by the bench harness. *)

val rule : unit -> string
(** Horizontal rule matching {!table_row} width conventions. *)
