(** Human-readable reporting for workflow results. *)

val pp_case : Format.formatter -> Workflow.case_report -> unit
val case_to_string : Workflow.case_report -> string

val pp_verdict_line : Format.formatter -> Workflow.case_report -> unit
(** One-line summary: property, psi, strategy, verdict, time. *)

val pp_milp_stats : Format.formatter -> Dpv_linprog.Milp.stats -> unit
(** Solver telemetry block: nodes and LPs, LP wall time, and — only
    when the search genuinely ran parallel (more than one worker) —
    per-worker node counts, steal count and the deepest any subproblem
    queue got.  Sequential runs print no zero-filled parallel block. *)

val pp_metrics : Format.formatter -> Dpv_obs.Metrics.snapshot -> unit
(** Render a {!Dpv_obs.Metrics} snapshot as an aligned name/value
    block: counters, then high-water gauges, then histograms with
    observation count, mean and last-bucket bound. *)

val pp_campaign : Format.formatter -> Campaign.report -> unit
(** Campaign summary table: one line per query (label, verdict, wall
    time, cache reuse, node count) plus the cache statistics and the
    total wall time. *)

val table_row : string list -> string
(** Fixed-width table row helper used by the bench harness. *)

val rule : unit -> string
(** Horizontal rule matching {!table_row} width conventions. *)
