(** Campaign specification files, parsed once, shared everywhere.

    One JSON dialect describes a batch of verification queries — the
    [dpv campaign] input format — and two front ends consume it: the
    batch CLI command and the [dpv serve] daemon (which receives the
    same document as a network submission).  This module is the single
    definition of that dialect, so a spec accepted by one is accepted
    by the other and denotes the same {!Campaign.query} list.

    Top-level keys: [seed], [runners], [workers], [budget_s],
    [timeout_s], [max_nodes], an optional [setup] object (shrinks the
    trained pipeline for smoke tests) and a [queries] array of
    [{name, property, psi, strategy, cut, margin}] objects. *)

type parsed = {
  seed : int;
  runners : int;
  workers : int;            (** [<= 0] means one per available core *)
  budget_s : float option;
  timeout_s : float option;
  max_nodes : int;
  setup : Workflow.setup;   (** derived from [seed] + the [setup] object *)
  query_specs : Json.t list;  (** raw query objects, for {!queries} *)
}

val parse : Json.t -> (parsed, string) result
(** Parse the top level of a campaign spec.  Every error names the
    offending key; the [queries] array is kept raw so query building
    (which needs a trained pipeline) can happen later, against a
    {!builder}. *)

val milp_options :
  ?branch_rule:Dpv_linprog.Milp.branch_rule -> parsed -> Dpv_linprog.Milp.options
(** The solver options a parsed spec denotes ([find_first], workers
    with the [<= 0] = per-core default applied, time limit, node
    cap). *)

val parse_psi : string -> (Dpv_spec.Risk.t, string) result
(** [far-left[:T]], [far-right[:T]], [straight[:H]], or the raw
    inequality language ("y0 >= 2.5 && y1 <= 0.3"). *)

val parse_strategy : string -> (Workflow.strategy, string) result
(** [static-box], [static-zonotope], [static-deeppoly], [data-box] or
    [data-octagon]. *)

type builder
(** Memoized query building over one prepared pipeline: characterizer
    training and bounds fitting cache on (property, cut) and
    (strategy, cut) respectively.  Both are deterministic in the
    setup seed, so memoized queries verify identically to freshly
    built ones.  Thread-safe — the serve daemon shares one builder
    across client connections, amortizing one submission's training
    for every later one. *)

val builder : Workflow.prepared -> builder

val queries :
  builder -> default_cut:int -> Json.t list -> (Campaign.query list, string) result
(** Build the typed query list from raw query objects (the
    [query_specs] of a {!parsed}).  [default_cut] applies where a
    query names no [cut] — pass the setup's. *)
