type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* [depth] tracks open containers so adversarial input (a network frame
   is attacker-controlled) exhausts a configured budget with a clean
   [Error] long before it exhausts the OCaml stack. *)
type state = {
  src : string;
  mutable pos : int;
  mutable depth : int;
  max_depth : int;
}

let error s fmt =
  Printf.ksprintf (fun msg ->
      raise (Parse_error (Printf.sprintf "at offset %d: %s" s.pos msg)))
    fmt

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance s;
      skip_ws s
  | _ -> ()

let expect s c =
  match peek s with
  | Some c' when c' = c -> advance s
  | Some c' -> error s "expected '%c', found '%c'" c c'
  | None -> error s "expected '%c', found end of input" c

let parse_literal s lit value =
  let n = String.length lit in
  if s.pos + n <= String.length s.src && String.sub s.src s.pos n = lit then begin
    s.pos <- s.pos + n;
    value
  end
  else error s "invalid literal (expected %s)" lit

(* Escapes cover what this project's emitters produce; \uXXXX is decoded
   for the basic multilingual plane only (no surrogate pairs). *)
let parse_string s =
  expect s '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek s with
    | None -> error s "unterminated string"
    | Some '"' -> advance s
    | Some '\\' -> (
        advance s;
        match peek s with
        | Some '"' -> advance s; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance s; Buffer.add_char b '\\'; loop ()
        | Some '/' -> advance s; Buffer.add_char b '/'; loop ()
        | Some 'n' -> advance s; Buffer.add_char b '\n'; loop ()
        | Some 't' -> advance s; Buffer.add_char b '\t'; loop ()
        | Some 'r' -> advance s; Buffer.add_char b '\r'; loop ()
        | Some 'b' -> advance s; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance s; Buffer.add_char b '\012'; loop ()
        | Some 'u' ->
            advance s;
            if s.pos + 4 > String.length s.src then
              error s "truncated \\u escape";
            let hex = String.sub s.src s.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error s "invalid \\u escape %s" hex
            in
            s.pos <- s.pos + 4;
            (* UTF-8 encode the code point. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some c -> error s "invalid escape '\\%c'" c
        | None -> error s "unterminated escape")
    | Some c ->
        advance s;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number s =
  let start = s.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek s with Some c -> is_num_char c | None -> false) do
    advance s
  done;
  let text = String.sub s.src start (s.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error s "invalid number %S" text

let enter s =
  s.depth <- s.depth + 1;
  if s.depth > s.max_depth then
    error s "nesting deeper than %d levels" s.max_depth

let leave s = s.depth <- s.depth - 1

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> error s "unexpected end of input"
  | Some '{' ->
      enter s;
      let v = parse_obj s in
      leave s;
      v
  | Some '[' ->
      enter s;
      let v = parse_arr s in
      leave s;
      v
  | Some '"' -> Str (parse_string s)
  | Some 't' -> parse_literal s "true" (Bool true)
  | Some 'f' -> parse_literal s "false" (Bool false)
  | Some 'n' -> parse_literal s "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number s)
  | Some c -> error s "unexpected character '%c'" c

and parse_obj s =
  expect s '{';
  skip_ws s;
  if peek s = Some '}' then begin
    advance s;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws s;
      let key = parse_string s in
      skip_ws s;
      expect s ':';
      let v = parse_value s in
      skip_ws s;
      match peek s with
      | Some ',' ->
          advance s;
          members ((key, v) :: acc)
      | Some '}' ->
          advance s;
          List.rev ((key, v) :: acc)
      | _ -> error s "expected ',' or '}' in object"
    in
    Obj (members [])
  end

and parse_arr s =
  expect s '[';
  skip_ws s;
  if peek s = Some ']' then begin
    advance s;
    Arr []
  end
  else begin
    let rec elements acc =
      let v = parse_value s in
      skip_ws s;
      match peek s with
      | Some ',' ->
          advance s;
          elements (v :: acc)
      | Some ']' ->
          advance s;
          List.rev (v :: acc)
      | _ -> error s "expected ',' or ']' in array"
    in
    Arr (elements [])
  end

let default_max_depth = 256

let of_string ?(max_depth = default_max_depth) ?max_bytes src =
  match max_bytes with
  | Some limit when String.length src > limit ->
      (* Reject on size alone, before the parser allocates anything
         proportional to the payload: a hostile frame claiming (or
         carrying) hundreds of megabytes costs O(1) to refuse. *)
      Error
        (Printf.sprintf "document of %d bytes exceeds the %d-byte limit"
           (String.length src) limit)
  | _ -> (
      let s = { src; pos = 0; depth = 0; max_depth } in
      try
        let v = parse_value s in
        skip_ws s;
        (match peek s with
        | Some c -> error s "trailing content starting with '%c'" c
        | None -> ());
        Ok v
      with Parse_error msg -> Error msg)

(* ---------------- writer ---------------- *)

(* Compact single-line emission: what the serve joblog needs to persist
   a submitted spec verbatim-enough to replay it (parse . to_string =
   id up to float formatting, which %.17g makes lossless). *)
let buf_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec buf_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.bprintf b "%d" (int_of_float f)
      else Printf.bprintf b "%.17g" f
  | Str s -> buf_escaped b s
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          buf_value b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          buf_escaped b k;
          Buffer.add_string b ": ";
          buf_value b v)
        fields;
      Buffer.add_char b '}'

let encode v =
  let b = Buffer.create 256 in
  buf_value b v;
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | Arr l -> Some l
  | _ -> None
