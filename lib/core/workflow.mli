(** End-to-end verification workflow (Figure 1).

    Ties together every substrate: sample scenes from the simulator,
    train the direct perception network, train an input property
    characterizer at a close-to-output layer, derive the region [S]
    (statically or from visited values), run the MILP query, and
    estimate the statistical guarantee.  Examples and benchmarks drive
    the paper's experiments through this module. *)

type architecture =
  | Mlp  (** Dense-BN-ReLU blocks (after BN insertion) *)
  | Cnn of int list
      (** stride-2 3x3 Conv-ReLU blocks (one per channel count) feeding a
          Dense-BN-ReLU head — the structural shape of the paper's direct
          perception network *)

type setup = {
  scenario : Dpv_scenario.Generator.config;
  seed : int;
  architecture : architecture;
  hidden : int list;          (** perception hidden sizes (Dense-BN-ReLU blocks) *)
  perception_epochs : int;
  perception_lr : float;
  train_size : int;           (** affordance training frames *)
  val_size : int;
  cut : int;                  (** cut layer for the characterizer *)
  characterizer_samples : int;(** frames for characterizer training (balanced) *)
  bounds_samples : int;       (** frames whose features define S~ *)
}

val default_setup : setup
(** MLP, hidden [32;16;8] (10 layers), cut 9 (the last ReLU, dim 8), seed 7. *)

val cnn_setup : ?channels:int list -> ?hidden:int list -> setup -> setup
(** Switch a setup to the CNN architecture (default channels [4;8],
    hidden [16;8]), recomputing the default cut to the deepest ReLU of
    the post-BN-insertion layout. *)

val cut_options : setup -> int list
(** The cut layers sitting after each ReLU block (of the final,
    post-BN-insertion layout), deepest first — candidates for the
    scalability sweep. *)

val relu_cuts : Dpv_nn.Network.t -> int list
(** ReLU layer indices of a concrete network, deepest first. *)

type prepared = {
  setup : setup;
  perception : Dpv_nn.Network.t;
  final_train_loss : float;
  val_mae : float array;      (** per-output MAE on held-out frames *)
  bounds_features : Dpv_tensor.Vec.t array;
      (** [f^(cut)] over the bounds sample — the "visited neuron values" *)
  bounds_images : Dpv_tensor.Vec.t array;
      (** the frames behind [bounds_features] (kept so features can be
          recomputed at other cut layers) *)
}

val prepare : ?quiet:bool -> setup -> prepared
(** Trains the perception network from scratch (deterministic in
    [setup.seed]). *)

val prepare_cached : ?quiet:bool -> cache_dir:string -> setup -> prepared
(** Like {!prepare} but persists the trained network under [cache_dir]
    keyed by the setup, so repeated runs (benches, examples) skip
    training. *)

val features_at : prepared -> cut:int -> Dpv_tensor.Vec.t array
(** Bounds features recomputed at a different cut layer. *)

(** Risk conditions in steering terms (left-positive lateral). *)

val psi_steer_far_left : ?threshold:float -> unit -> Dpv_spec.Risk.t
(** Waypoint suggests a strong left steer: [waypoint >= threshold]
    (default 2.5 m). *)

val psi_steer_far_right : ?threshold:float -> unit -> Dpv_spec.Risk.t

val psi_steer_straight : ?halfwidth:float -> unit -> Dpv_spec.Risk.t
(** Waypoint within the straight band [|waypoint| <= halfwidth]
    (default 0.5 m). *)

type strategy =
  | Static of Dpv_absint.Propagate.domain
      (** Lemma 2 with abstract interpretation from the image box. *)
  | Data_box      (** assume-guarantee, min/max box over visited values *)
  | Data_octagon  (** assume-guarantee, octagon polyhedron *)

val strategy_name : strategy -> string

type case_report = {
  property_name : string;
  psi : Dpv_spec.Risk.t;
  strategy : strategy;
  characterizer : Characterizer.t;
  characterizer_report : Characterizer.train_report;
  characterizer_val_accuracy : float;
  result : Verify.result;
  table : Statistical.table;
  omitted_unsafe : int;
}

val run_case :
  ?characterizer_config:Characterizer.train_config ->
  ?milp_options:Dpv_linprog.Milp.options ->
  ?cut:int ->
  ?absint:bool ->
  ?bisect:Verify.bisect_options ->
  prepared ->
  property:Dpv_scenario.Scene.t Dpv_spec.Property.t ->
  psi:Dpv_spec.Risk.t ->
  strategy:strategy ->
  case_report
(** The full Figure-1 pipeline for one [(phi, psi, S)] triple.  [cut]
    defaults to [setup.cut]; [absint]/[bisect] pass through to
    {!Verify.verify}. *)

val train_characterizer :
  ?config:Characterizer.train_config ->
  ?cut:int ->
  prepared ->
  property:Dpv_scenario.Scene.t Dpv_spec.Property.t ->
  Characterizer.t * Characterizer.train_report * float
(** (characterizer, training report, validation accuracy) — the E3
    trainability probe without running verification. *)

val image_box : prepared -> Dpv_absint.Box_domain.t
(** The input region for static analysis: all pixels in [0,1]. *)

val bounds_spec_of : prepared -> cut:int -> strategy -> Verify.bounds_spec
(** The {!Verify.bounds_spec} a strategy denotes for this prepared
    network at [cut]: the image box for [Static], the visited features
    at [cut] for the data-driven strategies.  This is exactly the value
    {!run_case} verifies over, so campaign queries built from it get
    the same regions (and the same verdicts) as one-by-one runs. *)
