(** Batched verification campaigns with a shared-encoding cache.

    The paper's evaluation (Section 5) answers {e families} of queries —
    one per (input property phi, risk condition psi, bounds strategy)
    combination — against one perception network.  Run one at a time,
    every query re-slices the suffix, re-fits the data bounds, and
    re-encodes the suffix big-M model, although those depend only on the
    [(cut, bounds)] pair.  A campaign amortizes them: each distinct
    [(cut, bounds)] key is resolved and encoded exactly once (the
    {!Encode.shared} prefix is persistent, so completing it per query is
    allocation-cheap), and the per-query MILP solves then fan out on the
    {!Dpv_linprog.Pool} work-stealing domains.

    A campaign-wide wall-clock budget is carved into per-task deadlines
    at the moment each solve starts: a query never gets more than what
    remains of the campaign budget, and queries past the budget degrade
    to [Unknown "deadline exceeded"] rather than being dropped. *)

type query = {
  label : string;                    (** name used in reports *)
  characterizer : Characterizer.t;   (** fixes the cut layer and head *)
  psi : Dpv_spec.Risk.t;
  bounds : Verify.bounds_spec;
  characterizer_margin : float;
}

val query :
  ?characterizer_margin:float ->
  label:string ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  bounds:Verify.bounds_spec ->
  unit ->
  query
(** [characterizer_margin] defaults to [0.0]. *)

type query_report = {
  query : query;
  result : Verify.result;
  from_cache : bool;
      (** whether this query's [(cut, bounds)] prefix was already in the
          cache when the campaign prepared it *)
}

type cache_stats = {
  entries : int;  (** distinct [(cut, bounds)] keys built *)
  hits : int;     (** queries served from an existing entry *)
  misses : int;   (** queries that had to build their entry; [= entries] *)
}

type report = {
  query_reports : query_report list;  (** in input query order *)
  cache : cache_stats;
  runners : int;
  budget_s : float option;
  total_wall_s : float;
}

val run :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?runners:int ->
  ?budget_s:float ->
  perception:Dpv_nn.Network.t ->
  query list ->
  report
(** Execute every query against [perception].

    [runners] (default 1) is the number of pool domains answering
    queries concurrently, one coarse-grained task per query with work
    stealing to balance uneven query costs.  With [runners > 1] each
    query's inner MILP search is forced sequential ([workers = 1]) so
    query tasks do not nest domain pools; with [runners = 1] the
    [milp_options.workers] setting applies unchanged and a single query
    may still parallelize its tree search.  Verdicts never depend on
    [runners]: each query solves the same model that a standalone
    {!Verify.verify} call would (only solver scheduling differs).

    [budget_s] is a wall-clock budget for the whole campaign; each
    solve's [time_limit_s] is capped by the remaining budget when it
    starts ({!Dpv_linprog.Clock.carve}).  [milp_options] applies to
    every query (default {!Verify.default_milp_options}). *)

val verdict_word : Verify.verdict -> string
(** ["safe"], ["unsafe"] or ["unknown"] — the JSON verdict field. *)

val to_json : report -> string
(** The aggregated machine-readable report, [BENCH_milp.json]-style
    (schema tag ["dpv-campaign/1"]): campaign totals, cache statistics,
    and one record per query with verdict, wall time, encoding size and
    the {!Dpv_linprog.Milp.stats} telemetry. *)

val save_json : report -> path:string -> unit
