(** Batched verification campaigns with a shared-encoding cache,
    per-query fault isolation, and crash-safe resume.

    The paper's evaluation (Section 5) answers {e families} of queries —
    one per (input property phi, risk condition psi, bounds strategy)
    combination — against one perception network.  Run one at a time,
    every query re-slices the suffix, re-fits the data bounds, and
    re-encodes the suffix big-M model, although those depend only on the
    [(cut, bounds)] pair.  A campaign amortizes them: each distinct
    [(cut, bounds)] key is resolved and encoded exactly once (the
    {!Encode.shared} prefix is persistent, so completing it per query is
    allocation-cheap), and the per-query MILP solves then fan out on the
    {!Dpv_linprog.Pool} work-stealing domains.

    {b Failure semantics.}  A campaign is a batch job: one misbehaving
    query must not take the other N-1 answers down with it.

    - Each solve runs under the {!Retry} ladder: escaped numerical
      trouble earns one dense re-solve, and a deadline expiry with
      campaign budget left earns one re-carved re-solve.
    - A query whose final attempt still raises is recorded as
      [Crashed] — the exception text becomes the outcome, the batch
      proceeds.
    - Queries whose turn comes after the campaign budget is exhausted
      are recorded as [Skipped "budget exhausted"], not silently
      dropped and not burned attempting doomed solves.
    - A report containing any [Crashed] or [Skipped] outcome is marked
      [degraded]; the CLI maps that to its own exit code.

    {b Journaling and resume.}  With [?journal], every settled query is
    appended to a {!Journal} file atomically, so a campaign killed at
    query k of N can be resumed: pass the loaded entries as [?resume]
    and the k settled [Done] verdicts are replayed (bit-identical,
    marked [from_journal]) while only the remaining N-k queries are
    solved.  [Crashed]/[Skipped] journal entries are retried on resume,
    not replayed. *)

type query = {
  label : string;                    (** name used in reports *)
  characterizer : Characterizer.t;   (** fixes the cut layer and head *)
  psi : Dpv_spec.Risk.t;
  bounds : Verify.bounds_spec;
  characterizer_margin : float;
}

val query :
  ?characterizer_margin:float ->
  label:string ->
  characterizer:Characterizer.t ->
  psi:Dpv_spec.Risk.t ->
  bounds:Verify.bounds_spec ->
  unit ->
  query
(** [characterizer_margin] defaults to [0.0]. *)

val query_key : query -> string
(** Content digest (hex) identifying a query across processes: two
    structurally equal queries have equal keys.  This is the key the
    journal records and resume matches on, so reordering or extending
    the query list between runs cannot misattribute verdicts — and the
    value {!shard_index} partitions on. *)

val shard_index : shards:int -> string -> int
(** The slice a query key belongs to in an [shards]-way partition: the
    key's first eight hex digits as an integer, mod [shards].  Pure
    arithmetic on the content digest, so every process holding the same
    spec computes the same partition regardless of query order, host or
    OCaml version.  Raises [Invalid_argument] if [shards < 1]. *)

val plan_workers :
  runners:int -> milp_workers:int -> pending:int -> int * int
(** [(pool_runners, inner_workers)] for a campaign granted [runners]
    domains with [pending] unsolved queries: [(1, milp_workers)] when
    [runners = 1] (defer to the caller's MILP setting), [(runners, 1)]
    when queries are plentiful, and [(pending, runners / pending)] when
    queries are scarcer than domains, so thin shards spend the budget
    inside the MILP subtree searches instead of idling.  Exposed for
    tests.  Raises [Invalid_argument] if [runners < 1]. *)

type outcome = Journal.outcome =
  | Done of Verify.result
  | Crashed of string   (** solve raised; text of the exception *)
  | Skipped of string   (** never attempted (budget exhausted) *)

type query_report = {
  query : query;
  outcome : outcome;
  from_cache : bool;
      (** whether this query's [(cut, bounds)] prefix was already in the
          cache when the campaign prepared it *)
  from_journal : bool;
      (** replayed from a resume journal instead of being solved *)
  attempts : int;       (** retry-ladder attempts; 0 for [Skipped] *)
  dense_retry : bool;
  deadline_retry : bool;
}

type cache_stats = {
  entries : int;  (** distinct [(cut, bounds)] keys built by this run *)
  hits : int;     (** queries served from an existing entry *)
  misses : int;   (** queries that had to build their entry; [= entries] *)
}

type cache
(** A shared-encoding cache that outlives one {!run}.  By default each
    run builds and discards its own; a long-lived caller (the serve
    daemon) creates one with {!create_cache} and passes it to every
    run, so a [(cut, bounds)] prefix built for one job is served warm
    to every later job.  Thread-safe: lookups and inserts are
    mutex-protected. *)

val create_cache : unit -> cache

val cache_size : cache -> int
(** Number of distinct [(cut, bounds)] entries currently resident. *)

type report = {
  query_reports : query_report list;  (** in input query order *)
  cache : cache_stats;
  runners : int;
  shard : (int * int) option;
      (** [(index, count)] when the run covered one slice of a sharded
          partition; [None] for whole-spec (and merged) reports *)
  budget_s : float option;
  total_wall_s : float;
  degraded : bool;
      (** some query crashed or was skipped: the report is not a full
          answer to the campaign *)
  crashed : int;
  skipped : int;
  retried : int;   (** queries that needed more than one attempt *)
  resumed : int;   (** queries replayed from the resume journal *)
  journal_write_failures : int;
      (** journal appends that raised; the campaign carries on (a later
          successful append rewrites the full journal) *)
  metrics : Dpv_obs.Metrics.snapshot;
      (** the campaign's delta against the global metrics registry
          ({!Dpv_obs.Metrics.since} over the run): counter and histogram
          totals attribute to this campaign exactly — e.g.
          [simplex.pivots] equals the sum of [pivots] over the
          non-replayed query stats — while gauges carry end-of-run
          high-water values.  Embedded in {!to_json} as the
          ["metrics"] object ([dpv-metrics/1]). *)
}

val run :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?runners:int ->
  ?shard:int * int ->
  ?budget_s:float ->
  ?journal:string ->
  ?resume:Journal.entry list ->
  ?absint:bool ->
  ?bisect:Verify.bisect_options ->
  ?cache:cache ->
  ?on_settled:(query_report -> unit) ->
  ?trace:string ->
  perception:Dpv_nn.Network.t ->
  query list ->
  report
(** Execute every query against [perception].

    [cache] supplies a persistent shared-encoding cache
    ({!create_cache}) reused across runs; omitted, the run builds a
    private one.  [cache_stats.entries]/[misses] always count only what
    {e this} run built; [hits] includes warm hits against entries a
    previous run left in a persistent cache.

    [on_settled] is invoked once per query as its outcome settles
    (solved, crashed, skipped, or replayed from the resume journal) —
    the hook behind streamed serve verdicts.  It is called from worker
    domains for solved queries, so it must be thread-safe; exceptions
    it raises are swallowed (observability must not kill the solve).
    Order is settle order, not input order — the report still lists
    queries in input order.

    [absint] (default false) arms the DeepPoly branch-and-bound guide
    on every solve (see {!Verify.run_query}).  [bisect] (default off)
    turns each query into its input-bisection plan
    ({!Verify.bisect_plan}): sub-boxes discharged by propagation cost
    no solve at all, and each surviving sub-box becomes its own
    schedulable unit — so {!plan_workers} sees the true pending width
    and a campaign of one hard query still fans out across the domain
    budget.  Per-query verdicts are merged soundly
    ({!Verify.merge_bisected}); a validated UNSAFE witness in any
    sub-box decides its query even if sibling sub-boxes crashed, and
    otherwise one crashed (resp. budget-skipped) sub-box degrades the
    query to [Crashed] (resp. [Skipped]).  The journal records one
    merged entry per query, so resume and sharding are oblivious to
    bisection.

    [runners] (default 1) is the campaign's total domain budget.
    {!plan_workers} splits it between the query pool and the inner
    MILP searches: with at least [runners] unsolved queries, one
    coarse-grained task per query with sequential inner solves (tasks
    never nest domain pools); with fewer unsolved queries than runners
    — a thin shard, or one large query — the spare domains move inside
    the MILPs as subtree-search workers.  With [runners = 1] the
    [milp_options.workers] setting applies unchanged.  Verdicts never
    depend on [runners]: each query solves the same model that a
    standalone {!Verify.verify} call would (only solver scheduling
    differs).

    [budget_s] is a wall-clock budget for the whole campaign; each
    solve's [time_limit_s] is capped by the remaining budget when it
    starts ({!Dpv_linprog.Clock.carve}), and queries reaching the pool
    after expiry are [Skipped].

    [journal] appends every settled query to the given path (see
    {!Journal}); [resume] replays [Done] entries previously loaded with
    {!Journal.load}.  When both are given the journal is seeded with
    the replayed entries, so the file always describes the whole
    campaign.  [milp_options] applies to every query (default
    {!Verify.default_milp_options}).

    [shard = Some (i, n)] runs slice [i] of a deterministic [n]-way
    partition of the query keys ({!shard_index}): the campaign sees the
    full spec, filters to its slice before any solving, and shares the
    encoding cache within the slice.  An empty slice is legal and
    yields a valid empty report.  When a sharded run journals, it
    appends one {!Journal.meta} trailer carrying its metrics snapshot,
    which [dpv merge-journals] sums into whole-campaign totals.
    Raises [Invalid_argument] unless [0 <= i < n].

    [trace] (default [""]) is a correlating trace id stamped into the
    journal's meta trailer: when non-empty and the run journals, a
    {!Journal.meta} trailer (unsharded: [shard = 0], [shard_count = 1])
    is appended carrying it — how a served job's journal is tied back
    to its joblog entry, protocol frames and spans. *)

val verdict_word : Verify.verdict -> string
(** ["safe"], ["unsafe"] or ["unknown"] — the JSON verdict field. *)

val outcome_word : outcome -> string
(** ["done"], ["crashed"] or ["skipped"]. *)

val to_json : report -> string
(** The aggregated machine-readable report, [BENCH_milp.json]-style
    (schema tag ["dpv-campaign/2"]): campaign totals, degradation
    counters, cache statistics, the embedded [dpv-metrics/1] snapshot,
    and one record per query with outcome, verdict, retry telemetry,
    wall time, encoding size and the {!Dpv_linprog.Milp.stats}
    telemetry. *)

val save_json : report -> path:string -> unit

(** {2 Shard merging}

    A sharded campaign runs as [n] independent processes, each covering
    one slice of the partition and journaling its slice's outcomes plus
    one meta trailer.  These functions reassemble the whole campaign:
    in-process ({!merge_reports}, for tests and library callers) or
    from the shard journals ({!merge_journals} / {!merged_to_json},
    what [dpv merge-journals] runs). *)

val merge_reports : report list -> report
(** Combine the reports of a disjoint shard partition into the report
    of the whole campaign: query reports concatenate in {!query_key}
    order (deterministic regardless of shard order), counters and
    cache statistics add, metric snapshots add exactly
    ({!Dpv_obs.Metrics.merge}), [runners] is the per-shard maximum,
    [total_wall_s] the slowest shard, [degraded] the disjunction, and
    [shard] is [None].  Raises [Invalid_argument] on the empty list. *)

val merge_journals :
  (Journal.entry list * Journal.meta list) list ->
  Journal.entry list * Journal.meta list
(** Merge shard journals as loaded by {!Journal.load_with_meta}.
    Entries deduplicate by content key — the most conclusive outcome
    wins ([Done] > [Crashed] > [Skipped]), first occurrence on ties —
    in first-seen order; meta trailers concatenate in argument order.
    The merged entry list is a valid {!Journal.save} payload and a
    valid [?resume] input. *)

val merged_to_json :
  entries:Journal.entry list -> metas:Journal.meta list -> string
(** The [dpv-campaign/2] report of a merged partition, rebuilt from
    the journals alone: campaign totals (cache statistics, journal
    write failures) come from the summed meta metrics, [total_wall_s]
    is the slowest shard, and every query record is [from_journal] —
    merging never re-solves anything. *)

val worst_exit_code : Journal.entry list -> int
(** The exit code a merged campaign deserves, same precedence the CLI
    applies to a live one: [1] if any query is unsafe (a
    counterexample must never be masked), else [4] if any crashed or
    was skipped, else [2] if any verdict is unknown, else [0]. *)

val report_exit_code : report -> int
(** The same severity ladder over a live {!report} — the one definition
    the CLI campaign command and the serve daemon both answer with:
    [1] unsafe, else [4] degraded, else [2] unknown, else [0]. *)
