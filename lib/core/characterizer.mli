(** Input property characterizer [h_l^phi] (Section 2.1).

    A small binary classifier whose input is the perception network's
    activation at the cut layer [l], trained from oracle labels to decide
    whether the input property [phi] held for the frame.  The head is a
    ReLU MLP with a single logit output (decision threshold at logit 0),
    which keeps it piecewise-linear and hence exactly MILP-encodable
    together with the perception suffix. *)

type t = { head : Dpv_nn.Network.t; cut : int; property_name : string }

type train_report = {
  train_accuracy : float;
  final_loss : float;
  epochs_run : int;
  perfect_on_train : bool;
      (** Whether the classifier reached 100% on the training data — the
          paper's "perfect training" premise. *)
}

type train_config = {
  hidden : int list;
  epochs : int;
  learning_rate : float;
  batch_size : int;
  target_accuracy : float;  (** stop early once reached on training data *)
}

val default_train_config : train_config
(** hidden [16], 600 epochs, Adam lr 5e-3, batch 32, target accuracy 1.0 *)

val features :
  perception:Dpv_nn.Network.t ->
  cut:int ->
  Dpv_tensor.Vec.t array ->
  Dpv_tensor.Vec.t array
(** [f^(cut)] applied to every image. *)

val train :
  ?config:train_config ->
  rng:Dpv_tensor.Rng.t ->
  perception:Dpv_nn.Network.t ->
  cut:int ->
  property_name:string ->
  images:Dpv_tensor.Vec.t array ->
  labels:float array ->
  unit ->
  t * train_report

val train_on_features :
  ?config:train_config ->
  rng:Dpv_tensor.Rng.t ->
  cut:int ->
  property_name:string ->
  features:Dpv_tensor.Vec.t array ->
  labels:float array ->
  unit ->
  t * train_report

val logit : t -> Dpv_tensor.Vec.t -> float
(** Raw logit on a feature vector. *)

val decide : t -> Dpv_tensor.Vec.t -> bool
(** [logit >= 0]. *)

val decide_image : t -> perception:Dpv_nn.Network.t -> Dpv_tensor.Vec.t -> bool

val accuracy :
  t ->
  perception:Dpv_nn.Network.t ->
  images:Dpv_tensor.Vec.t array ->
  labels:float array ->
  float
