(** Incremental abstract-interpretation guide for the branch-and-bound
    MILP search.

    Bridges [lib/absint] and [lib/linprog] without creating a
    dependency between them: the solver only knows the
    {!Dpv_linprog.Milp.guide_factory} type, and this module builds one
    from the encoding's binary-to-neuron maps (see
    {!Encode.suffix_relu_vars_of_shared} and [Encode.t.head_relu_vars]).

    Per node, a guide instance reads each binary's current LP bounds to
    recover the node's ReLU phase fixings, propagates DeepPoly through
    the suffix and the characterizer head under those fixings
    ({!Dpv_absint.Deeppoly.transfer_relu_fixed} semantics), and
    reports:

    - [prune] when a fixing contradicts the propagated bounds or the
      propagated output box provably misses [psi] (or the logit stays
      below the margin) — the node is discharged without an LP solve;
    - [fix] for binaries whose phase the propagated pre-activation
      bounds already imply — the solver fixes them without branching;
    - [widths] scoring still-free binaries by pre-activation interval
      width, consumed by the [Bound_width] branch rule.

    {2 Incrementality}

    Each instance (one per solver, one per worker in [Milp_par]) keeps
    a {!Dpv_absint.Deeppoly.Resumable} stack of per-layer states keyed
    by the node's phase-fixing prefix.  B&B fixings grow monotonically
    down the tree, so consecutive nodes of a DFS subtree batch share
    long prefixes: a consult re-propagates only from the earliest ReLU
    layer whose fixings are incompatible with the phases the cached
    state was built under (adopting a phase the guide itself implied
    does not invalidate anything).  Incremental and from-scratch
    propagation are bit-identical — verdicts, node counts, prunes and
    phase-fixes do not change, only the work per node does.

    Soundness matches the MILP semantics: the encoded feasible set
    projects onto exact network executions over the feature box, and
    DeepPoly bounds enclose those executions under any phase fixing
    (the [x = 0] boundary belongs to both phases, so implied fixes
    preserve feasibility of the projection). *)

val set_scratch : bool -> unit
(** Force every consult to re-propagate from layer 1 (same engine, same
    code path, bit-identical results; only the per-node cost and the
    [absint.incr_hits]/[absint.layers_saved] counters change). *)

val init_from_env : unit -> unit
(** [set_scratch] from the [DPV_ABSINT_SCRATCH] environment variable
    (["1"]/["true"]/["yes"] enable, ["0"]/["false"]/["no"]/unset keep
    incremental).  Only executables should call this, mirroring
    {!Dpv_linprog.Faults.init_from_env}. *)

type seed
(** A fully propagated root state over a feature box — the product of
    {!root_propagation}.  {!Verify.bisect_plan} discharges leaves with
    one of these; a surviving leaf hands its seed to {!factory} so the
    MILP guide's first instance starts with the propagation already
    done instead of redoing it at the root node
    ([absint.seeded_roots] counts adoptions). *)

val root_propagation :
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  seed
(** Propagate both networks over [feature_box] with no fixings (all
    ReLU phases [Unknown]).  Bit-identical to the immutable
    {!Dpv_absint.Deeppoly.propagate}. *)

val seed_output_box : seed -> Dpv_absint.Box_domain.t
(** The suffix network's propagated output box. *)

val seed_logit_box : seed -> Dpv_absint.Interval.t
(** The characterizer head's propagated logit interval. *)

val factory :
  ?budget_floats:int ->
  ?seed:seed ->
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  suffix_relus:(int * Dpv_linprog.Lp.var option array) list ->
  head_relus:(int * Dpv_linprog.Lp.var option array) list ->
  psi:Dpv_spec.Risk.t ->
  characterizer_margin:float ->
  unit ->
  Dpv_linprog.Milp.guide_factory
(** A guide factory over the encoded networks.  Every [new_guide] call
    returns an independent stateful instance (safe to confine one per
    worker domain); the factory's [guide_stats] aggregates
    [incr_hits]/[layers_propagated]/[layers_saved]/[cache_evictions]
    over all instances and is read by the solvers as a start/end delta.

    [budget_floats] bounds each instance's cached layer states (see
    {!Dpv_absint.Deeppoly.Resumable.create}); evicted layers are
    recomputed per node, counted by [cache_evictions].

    [seed] (if its box matches [feature_box] bit-for-bit) is adopted by
    the first instance created, whose first root consult then
    re-propagates nothing.

    Under an armed fault harness ({!Dpv_linprog.Faults.enabled}) every
    consult is cross-checked bit-for-bit against an immutable
    from-scratch reference; a divergence (e.g. injected by the
    [absint-stale] site) increments [absint.stale_fallbacks] and falls
    back to a clean re-propagation. *)

val make :
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  suffix_relus:(int * Dpv_linprog.Lp.var option array) list ->
  head_relus:(int * Dpv_linprog.Lp.var option array) list ->
  psi:Dpv_spec.Risk.t ->
  characterizer_margin:float ->
  Dpv_linprog.Milp.guide_factory
(** [factory] with no seed and no memory budget. *)
