(** Abstract-interpretation guide for the branch-and-bound MILP search.

    Bridges [lib/absint] and [lib/linprog] without creating a
    dependency between them: the solver only knows the
    {!Dpv_linprog.Milp.guide} closure type, and this module builds that
    closure from the encoding's binary-to-neuron maps (see
    {!Encode.suffix_relu_vars_of_shared} and [Encode.t.head_relu_vars]).

    Per node, the guide reads each binary's current LP bounds to
    recover the node's ReLU phase fixings, propagates DeepPoly through
    the suffix and the characterizer head under those fixings
    ({!Dpv_absint.Deeppoly.transfer_relu_fixed}), and reports:

    - [prune] when a fixing contradicts the propagated bounds or the
      propagated output box provably misses [psi] (or the logit stays
      below the margin) — the node is discharged without an LP solve;
    - [fix] for binaries whose phase the propagated pre-activation
      bounds already imply — the solver fixes them without branching;
    - [widths] scoring still-free binaries by pre-activation interval
      width, consumed by the [Bound_width] branch rule.

    Soundness matches the MILP semantics: the encoded feasible set
    projects onto exact network executions over the feature box, and
    DeepPoly bounds enclose those executions under any phase fixing
    (the [x = 0] boundary belongs to both phases, so implied fixes
    preserve feasibility of the projection). *)

val make :
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  suffix_relus:(int * Dpv_linprog.Lp.var option array) list ->
  head_relus:(int * Dpv_linprog.Lp.var option array) list ->
  psi:Dpv_spec.Risk.t ->
  characterizer_margin:float ->
  Dpv_linprog.Milp.guide
