module Milp = Dpv_linprog.Milp
module Faults = Dpv_linprog.Faults

type outcome =
  | Done of Verify.result
  | Crashed of string
  | Skipped of string

type entry = {
  key : string;
  label : string;
  outcome : outcome;
  attempts : int;
  dense_retry : bool;
  deadline_retry : bool;
}

(* Shard trailer: one meta line at the end of a sharded campaign's
   journal carries what the merge step needs beyond the per-query
   entries — which slice of the partition this file covers and the
   shard's metrics snapshot, so [dpv merge-journals] can report exact
   whole-campaign totals without re-running anything. *)
type meta = {
  shard : int;
  shard_count : int;
  runners : int;
  total_wall_s : float;
  trace : string;  (* correlating trace id; "" when the run had none *)
  metrics : Dpv_obs.Metrics.snapshot;
}

(* ---------------- serialization ---------------- *)

(* %.17g round-trips every finite double, so a replayed verdict carries
   bit-identical witnesses and timings. *)
let buf_floats b arr =
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%.17g" x)
    arr;
  Buffer.add_char b ']'

let buf_ints b arr =
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%d" x)
    arr;
  Buffer.add_char b ']'

let buf_result b (r : Verify.result) =
  Buffer.add_string b "{";
  (match r.Verify.verdict with
  | Verify.Safe { conditional } ->
      Printf.bprintf b "\"verdict\": \"safe\", \"conditional\": %b" conditional
  | Verify.Unsafe { features; output; logit } ->
      Buffer.add_string b "\"verdict\": \"unsafe\", \"features\": ";
      buf_floats b features;
      Buffer.add_string b ", \"output\": ";
      buf_floats b output;
      Printf.bprintf b ", \"logit\": %.17g" logit
  | Verify.Unknown reason ->
      Printf.bprintf b "\"verdict\": \"unknown\", \"reason\": %S" reason);
  Printf.bprintf b ", \"encoding\": %S, \"num_binaries\": %d, \"wall_time_s\": %.17g"
    r.Verify.encoding r.Verify.num_binaries r.Verify.wall_time_s;
  let s = r.Verify.milp_stats in
  Printf.bprintf b
    ", \"milp\": {\"nodes_explored\": %d, \"lp_solved\": %d, \
     \"incumbent_updates\": %d, \"lp_time_s\": %.17g, \"per_worker_nodes\": "
    s.Milp.nodes_explored s.Milp.lp_solved s.Milp.incumbent_updates
    s.Milp.lp_time_s;
  buf_ints b s.Milp.per_worker_nodes;
  Printf.bprintf b
    ", \"steals\": %d, \"max_queue_depth\": %d, \"pivots\": %d, \
     \"warm_starts\": %d, \"cold_starts\": %d, \"fallbacks\": %d, \
     \"absint_phase_fixes\": %d, \"absint_prunes\": %d, \
     \"absint_incr_hits\": %d, \"absint_layers_propagated\": %d, \
     \"absint_layers_saved\": %d, \"absint_cache_evictions\": %d}"
    s.Milp.steals s.Milp.max_queue_depth s.Milp.pivots s.Milp.warm_starts
    s.Milp.cold_starts s.Milp.fallbacks s.Milp.absint_phase_fixes
    s.Milp.absint_prunes s.Milp.absint_incr_hits
    s.Milp.absint_layers_propagated s.Milp.absint_layers_saved
    s.Milp.absint_cache_evictions;
  Buffer.add_string b "}"

let entry_to_line e =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"key\": %S, \"label\": %S, " e.key e.label;
  (match e.outcome with
  | Done _ -> Buffer.add_string b "\"outcome\": \"done\""
  | Crashed m -> Printf.bprintf b "\"outcome\": \"crashed\", \"reason\": %S" m
  | Skipped m -> Printf.bprintf b "\"outcome\": \"skipped\", \"reason\": %S" m);
  Printf.bprintf b ", \"attempts\": %d, \"dense_retry\": %b, \"deadline_retry\": %b"
    e.attempts e.dense_retry e.deadline_retry;
  (match e.outcome with
  | Done r ->
      Buffer.add_string b ", \"result\": ";
      buf_result b r
  | Crashed _ | Skipped _ -> ());
  Buffer.add_string b "}";
  Buffer.contents b

(* The journal is JSON lines, so the embedded dpv-metrics/1 snapshot
   must be emitted compactly — the pretty printer in [Dpv_obs.Metrics]
   spans lines. *)
let buf_metrics b (s : Dpv_obs.Metrics.snapshot) =
  let obj entries emit =
    Buffer.add_char b '{';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string b ", ";
        emit e)
      entries;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"schema\": \"dpv-metrics/1\", \"counters\": ";
  obj s.Dpv_obs.Metrics.snap_counters (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  Buffer.add_string b ", \"gauges\": ";
  obj s.Dpv_obs.Metrics.snap_gauges (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  Buffer.add_string b ", \"rates\": ";
  obj s.Dpv_obs.Metrics.snap_rates (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  Buffer.add_string b ", \"histograms\": ";
  obj s.Dpv_obs.Metrics.snap_histograms (fun (name, h) ->
      Printf.bprintf b "%S: {\"count\": %d, \"sum_ns\": %d, \"buckets\": ["
        name h.Dpv_obs.Metrics.count h.Dpv_obs.Metrics.sum;
      List.iteri
        (fun i (up, n) ->
          if i > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "[%d, %d]" up n)
        h.Dpv_obs.Metrics.buckets;
      Buffer.add_string b "]}");
  Buffer.add_char b '}'

let meta_to_line m =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"journal_meta\": 1, \"shard\": %d, \"shard_count\": %d, \
     \"runners\": %d, \"total_wall_s\": %.17g, "
    m.shard m.shard_count m.runners m.total_wall_s;
  if m.trace <> "" then Printf.bprintf b "\"trace\": %S, " m.trace;
  Buffer.add_string b "\"metrics\": ";
  buf_metrics b m.metrics;
  Buffer.add_string b "}";
  Buffer.contents b

(* ---------------- writer ---------------- *)

module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_appends = Metrics.counter "journal.appends"
let m_rewrites = Metrics.counter "journal.rewrites"
let append_hist = Metrics.histogram "journal.append_ns"

type writer = {
  path : string;
  lock : Mutex.t;
  mutable entries_rev : entry list;
  mutable meta : meta option;
      (* shard trailer, retained so a recovery rewrite reproduces it *)
  mutable oc : out_channel option;
      (* open append channel while the fast path is live *)
  mutable pending_rewrite : bool;
      (* the next append must rewrite the whole file: set at creation
         (the target may hold stale or resumed-from content) and after
         any failed write *)
}

let create ~path existing =
  {
    path;
    lock = Mutex.create ();
    entries_rev = List.rev existing;
    meta = None;
    oc = None;
    pending_rewrite = true;
  }

let close_channel w =
  match w.oc with
  | None -> ()
  | Some oc ->
      w.oc <- None;
      (try close_out oc with Sys_error _ -> ())

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ -> ()

(* Whole-file rewrite to a sibling tmp, then an atomic rename: readers
   (and a resumed campaign) never see a torn line.  Used for the first
   write (which doubles as resume compaction — the seeded entries reach
   disk in one pass) and to recover after a failed append; steady-state
   appends take the O(1) fast path below.  Called with the writer lock
   held. *)
let rewrite w =
  close_channel w;
  let tmp = w.path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun e ->
         output_string oc (entry_to_line e);
         output_char oc '\n')
       (List.rev w.entries_rev);
     Option.iter
       (fun m ->
         output_string oc (meta_to_line m);
         output_char oc '\n')
       w.meta;
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  (* The injected failure lands between the tmp write and the rename —
     the window where a real crash leaves the journal at its previous
     complete state. *)
  if Faults.fire Faults.Journal_crash then
    raise (Sys_error "injected journal write failure");
  Sys.rename tmp w.path;
  Metrics.incr m_rewrites 1;
  w.pending_rewrite <- false;
  w.oc <- Some (open_out_gen [ Open_wronly; Open_append ] 0o644 w.path)

(* O(1) steady-state append: one line, flushed and fsynced.  The fault
   fires before anything reaches the channel, so — like a real failure
   caught below — the on-disk journal keeps its previous complete
   state. *)
let append_line w e =
  if Faults.fire Faults.Journal_crash then
    raise (Sys_error "injected journal write failure");
  match w.oc with
  | None -> rewrite w
  | Some oc ->
      output_string oc (entry_to_line e);
      output_char oc '\n';
      fsync_channel oc

let append w e =
  Mutex.protect w.lock (fun () ->
      (* Entry first: if the write fails, the next successful append
         rewrites the full list and nothing recorded is lost. *)
      w.entries_rev <- e :: w.entries_rev;
      let t0 = Dpv_obs.Mclock.now_ns () in
      let trace_t0 = Trace.begin_ns () in
      match if w.pending_rewrite then rewrite w else append_line w e with
      | () ->
          Metrics.incr m_appends 1;
          Metrics.observe append_hist (Dpv_obs.Mclock.now_ns () - t0);
          Trace.complete ~name:"journal.append" trace_t0
      | exception ex ->
          (* The append channel may hold a partial line; drop it and
             force the next append through the atomic rewrite so every
             retained entry still reaches disk. *)
          close_channel w;
          w.pending_rewrite <- true;
          Trace.complete
            ~args:[ ("exn", Printexc.to_string ex) ]
            ~name:"journal.append" trace_t0;
          raise ex)

(* The shard trailer rides the same machinery as entry appends: fast
   O(1) append when the channel is healthy, full atomic rewrite when a
   prior write failed.  Campaigns call this once, right before close. *)
let append_meta w m =
  Mutex.protect w.lock (fun () ->
      w.meta <- Some m;
      let line () =
        if Faults.fire Faults.Journal_crash then
          raise (Sys_error "injected journal write failure");
        match w.oc with
        | None -> rewrite w
        | Some oc ->
            output_string oc (meta_to_line m);
            output_char oc '\n';
            fsync_channel oc
      in
      match if w.pending_rewrite then rewrite w else line () with
      | () -> Metrics.incr m_appends 1
      | exception ex ->
          close_channel w;
          w.pending_rewrite <- true;
          raise ex)

let entries w = Mutex.protect w.lock (fun () -> List.rev w.entries_rev)
let close w = Mutex.protect w.lock (fun () -> close_channel w)

(* One-shot atomic write of a complete journal (tmp + rename) — how
   [dpv merge-journals] materializes the merged entry list so the
   output is always a well-formed resume substrate, never a torn
   partial merge. *)
let save ~path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun e ->
         output_string oc (entry_to_line e);
         output_char oc '\n')
       entries;
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

(* ---------------- reader ---------------- *)

let ( let* ) = Result.bind

let field ~line name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "line %d: missing or ill-typed field %S" line name)

let float_array ~line name j =
  let* l = field ~line name Json.to_list j in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | x :: rest -> (
        match Json.to_float x with
        | Some f -> go (f :: acc) rest
        | None ->
            Error
              (Printf.sprintf "line %d: non-number in array %S" line name))
  in
  go [] l

let int_array ~line name j =
  let* fa = float_array ~line name j in
  Ok (Array.map int_of_float fa)

let parse_milp ~line j =
  let* nodes_explored = field ~line "nodes_explored" Json.to_int j in
  let* lp_solved = field ~line "lp_solved" Json.to_int j in
  let* incumbent_updates = field ~line "incumbent_updates" Json.to_int j in
  let* lp_time_s = field ~line "lp_time_s" Json.to_float j in
  let* per_worker_nodes = int_array ~line "per_worker_nodes" j in
  let* steals = field ~line "steals" Json.to_int j in
  let* max_queue_depth = field ~line "max_queue_depth" Json.to_int j in
  let* pivots = field ~line "pivots" Json.to_int j in
  let* warm_starts = field ~line "warm_starts" Json.to_int j in
  let* cold_starts = field ~line "cold_starts" Json.to_int j in
  let* fallbacks = field ~line "fallbacks" Json.to_int j in
  (* Absint counters default to 0 so journals written before the
     abstraction-guided search remain resumable. *)
  let opt_int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> v
    | None -> 0
  in
  let absint_phase_fixes = opt_int "absint_phase_fixes" in
  let absint_prunes = opt_int "absint_prunes" in
  let absint_incr_hits = opt_int "absint_incr_hits" in
  let absint_layers_propagated = opt_int "absint_layers_propagated" in
  let absint_layers_saved = opt_int "absint_layers_saved" in
  let absint_cache_evictions = opt_int "absint_cache_evictions" in
  Ok
    {
      Milp.nodes_explored;
      lp_solved;
      incumbent_updates;
      lp_time_s;
      per_worker_nodes;
      steals;
      max_queue_depth;
      pivots;
      warm_starts;
      cold_starts;
      fallbacks;
      absint_phase_fixes;
      absint_prunes;
      absint_incr_hits;
      absint_layers_propagated;
      absint_layers_saved;
      absint_cache_evictions;
    }

let parse_result ~line j =
  let* verdict_word = field ~line "verdict" Json.to_string j in
  let* verdict =
    match verdict_word with
    | "safe" ->
        let* conditional =
          field ~line "conditional"
            (function Json.Bool b -> Some b | _ -> None)
            j
        in
        Ok (Verify.Safe { conditional })
    | "unsafe" ->
        let* features = float_array ~line "features" j in
        let* output = float_array ~line "output" j in
        let* logit = field ~line "logit" Json.to_float j in
        Ok (Verify.Unsafe { features; output; logit })
    | "unknown" ->
        let* reason = field ~line "reason" Json.to_string j in
        Ok (Verify.Unknown reason)
    | other -> Error (Printf.sprintf "line %d: unknown verdict %S" line other)
  in
  let* encoding = field ~line "encoding" Json.to_string j in
  let* num_binaries = field ~line "num_binaries" Json.to_int j in
  let* wall_time_s = field ~line "wall_time_s" Json.to_float j in
  let* milp_json = field ~line "milp" Option.some j in
  let* milp_stats = parse_milp ~line milp_json in
  Ok { Verify.verdict; milp_stats; encoding; num_binaries; wall_time_s }

let parse_entry ~line j =
  let* key = field ~line "key" Json.to_string j in
  let* label = field ~line "label" Json.to_string j in
  let* word = field ~line "outcome" Json.to_string j in
  let* attempts = field ~line "attempts" Json.to_int j in
  let* dense_retry =
    field ~line "dense_retry" (function Json.Bool b -> Some b | _ -> None) j
  in
  let* deadline_retry =
    field ~line "deadline_retry"
      (function Json.Bool b -> Some b | _ -> None)
      j
  in
  let* outcome =
    match word with
    | "done" ->
        let* rj = field ~line "result" Option.some j in
        let* r = parse_result ~line rj in
        Ok (Done r)
    | "crashed" ->
        let* reason = field ~line "reason" Json.to_string j in
        Ok (Crashed reason)
    | "skipped" ->
        let* reason = field ~line "reason" Json.to_string j in
        Ok (Skipped reason)
    | other -> Error (Printf.sprintf "line %d: unknown outcome %S" line other)
  in
  Ok { key; label; outcome; attempts; dense_retry; deadline_retry }

let parse_metrics ~line j =
  let fields name =
    match Json.member name j with
    | Some (Json.Obj fs) -> Ok fs
    | _ ->
        Error (Printf.sprintf "line %d: metrics missing object %S" line name)
  in
  let ints fs =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, v) :: rest -> (
          match Json.to_int v with
          | Some n -> go ((name, n) :: acc) rest
          | None ->
              Error
                (Printf.sprintf "line %d: metric %S is not an integer" line
                   name))
    in
    go [] fs
  in
  let* counters = Result.bind (fields "counters") ints in
  let* gauges = Result.bind (fields "gauges") ints in
  (* "rates" arrived with dpv-obs/2; snapshots written before it simply
     have none. *)
  let* rates =
    match Json.member "rates" j with
    | Some (Json.Obj fs) -> ints fs
    | _ -> Ok []
  in
  let* hist_fields = fields "histograms" in
  let parse_hist (name, v) =
    let* count = field ~line "count" Json.to_int v in
    let* sum = field ~line "sum_ns" Json.to_int v in
    let* bucket_list = field ~line "buckets" Json.to_list v in
    let rec buckets acc = function
      | [] -> Ok (List.rev acc)
      | b :: rest -> (
          match Option.map (List.filter_map Json.to_int) (Json.to_list b) with
          | Some [ up; n ] -> buckets ((up, n) :: acc) rest
          | _ ->
              Error
                (Printf.sprintf "line %d: bad bucket in histogram %S" line
                   name))
    in
    let* buckets = buckets [] bucket_list in
    Ok (name, { Dpv_obs.Metrics.count; sum; buckets })
  in
  let rec hists acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
        let* h = parse_hist f in
        hists (h :: acc) rest
  in
  let* histograms = hists [] hist_fields in
  (* Snapshots carry a name-sorted invariant ([Metrics.merge] relies on
     it); re-sort on input rather than trusting the file. *)
  let sorted l = List.sort (fun (a, _) (b, _) -> compare (a : string) b) l in
  Ok
    {
      Dpv_obs.Metrics.snap_counters = sorted counters;
      snap_gauges = sorted gauges;
      snap_rates = sorted rates;
      snap_histograms = sorted histograms;
    }

let parse_meta ~line j =
  let* shard = field ~line "shard" Json.to_int j in
  let* shard_count = field ~line "shard_count" Json.to_int j in
  let* runners = field ~line "runners" Json.to_int j in
  let* total_wall_s = field ~line "total_wall_s" Json.to_float j in
  let trace =
    Option.value ~default:""
      (Option.bind (Json.member "trace" j) Json.to_string)
  in
  let* metrics_json = field ~line "metrics" Option.some j in
  let* metrics = parse_metrics ~line metrics_json in
  Ok { shard; shard_count; runners; total_wall_s; trace; metrics }

let load_with_meta ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | content ->
      (* Every complete append ends in a newline, so a final line with
         no terminator can only be the torn tail of an interrupted
         append — drop it and resume from the last complete entry.
         Corruption anywhere else (or on a newline-terminated final
         line) is still a hard error: that is damage, not a crash. *)
      let ends_with_newline =
        content = "" || content.[String.length content - 1] = '\n'
      in
      let lines = String.split_on_char '\n' content in
      let last_content_line =
        List.fold_left
          (fun (i, last) l ->
            (i + 1, if String.trim l = "" then last else i))
          (1, 0) lines
        |> snd
      in
      let rec go acc metas line = function
        | [] -> Ok (List.rev acc, List.rev metas)
        | l :: rest when String.trim l = "" -> go acc metas (line + 1) rest
        | l :: rest -> (
            let torn_ok = line = last_content_line && not ends_with_newline in
            let parsed =
              match Json.of_string l with
              | Error m -> Error (Printf.sprintf "line %d: %s" line m)
              | Ok j -> (
                  (* A meta trailer self-identifies; anything else must
                     be a query entry. *)
                  match Json.member "journal_meta" j with
                  | Some _ -> Result.map (fun m -> `Meta m) (parse_meta ~line j)
                  | None -> Result.map (fun e -> `Entry e) (parse_entry ~line j))
            in
            match parsed with
            | Error _ when torn_ok -> Ok (List.rev acc, List.rev metas)
            | Error m -> Error m
            | Ok (`Entry e) -> go (e :: acc) metas (line + 1) rest
            | Ok (`Meta m) -> go acc (m :: metas) (line + 1) rest)
      in
      go [] [] 1 lines

(* Resume only needs the entries; sharded journals' meta trailers are
   skipped transparently, so a merged or sharded journal is a valid
   [--resume] input unchanged. *)
let load ~path = Result.map fst (load_with_meta ~path)

let result_of_entry e =
  match e.outcome with Done r -> Some r | Crashed _ | Skipped _ -> None
