(** Verification certificates — the artifact a verified deployment ships.

    A certificate packages everything needed to carry a verification
    result into operation without rerunning the analysis:

    - the property/psi pair and the cut layer;
    - the verdict (with the witness for refutations);
    - for conditional (assume-guarantee) proofs, the region [S~] as a
      list of halfspaces, so the runtime monitor can be reconstructed;
    - the characterizer head network, so witnesses can be re-validated
      and the monitor's semantics audited;
    - the statistical table behind the [1 - gamma] guarantee.

    Certificates serialize to a line-oriented text format that
    round-trips exactly. *)

type verdict =
  | Safe_unconditional
  | Safe_conditional
  | Unsafe of Dpv_tensor.Vec.t  (** witness cut-layer activation *)
  | Inconclusive of string

type t = {
  property_name : string;
  psi : Dpv_spec.Risk.t;
  strategy : string;
  cut : int;
  verdict : verdict;
  region : Dpv_monitor.Polyhedron.halfspace list;
      (** monitoring region faces; empty for unconditional results *)
  region_dim : int;
  head : Dpv_nn.Network.t;
  table : Statistical.table;
}

val of_case :
  Workflow.case_report -> features:Dpv_tensor.Vec.t array -> t
(** Build a certificate from a finished case.  [features] are the visited
    cut-layer values that defined [S~] (used to store the monitoring
    region for conditional proofs; ignored for static strategies). *)

val guarantee : t -> float
(** The [1 - gamma] statistical strength of the certificate. *)

val monitor :
  t -> network:Dpv_nn.Network.t -> Dpv_monitor.Runtime.t option
(** Reconstruct the runtime monitor of a conditional proof;
    [None] when the certificate needs no monitoring. *)

val validate_witness : t -> perception:Dpv_nn.Network.t -> bool option
(** For [Unsafe] certificates: replay the witness through the perception
    suffix and the stored head; [Some true] when it still violates.
    [None] for non-witness verdicts. *)

val to_string : t -> string

val of_string : string -> (t, string) Stdlib.result
(** Parse a certificate.  Never raises: truncated input (any byte
    prefix of a valid certificate), corrupted numbers, negative counts
    and malformed embedded networks all come back as [Error] carrying
    the 1-based line number where parsing stopped. *)

val save : t -> path:string -> unit

val load : path:string -> (t, string) Stdlib.result
(** Read and parse a certificate file.  Never raises: filesystem errors
    (missing file, permissions, concurrent truncation) are reported as
    [Error] alongside the parse errors of {!of_string}. *)

val pp : Format.formatter -> t -> unit
