module Oracle = Dpv_scenario.Oracle
module Generator = Dpv_scenario.Generator
module Camera = Dpv_scenario.Camera
module Propagate = Dpv_absint.Propagate
module Milp = Dpv_linprog.Milp
module Milp_par = Dpv_linprog.Milp_par

(* Internal control flow only; both entry points catch it and return
   [Error].  Callers never see the exception. *)
exception Spec_error of string

let spec_error fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

(* Typed field accessors over the hand-rolled JSON reader; every
   mistype names the offending key. *)
let j_int v key =
  match Json.to_int v with
  | Some i -> i
  | None -> spec_error "%S must be an integer" key

let j_float v key =
  match Json.to_float v with
  | Some f -> f
  | None -> spec_error "%S must be a number" key

let j_string v key =
  match Json.to_string v with
  | Some s -> s
  | None -> spec_error "%S must be a string" key

let field obj key = Json.member key obj

let int_field obj key ~default =
  match field obj key with None -> default | Some v -> j_int v key

let float_opt_field obj key =
  Option.map (fun v -> j_float v key) (field obj key)

let parse_psi s =
  match String.split_on_char ':' s with
  | [ "far-left" ] -> Ok (Workflow.psi_steer_far_left ())
  | [ "far-left"; t ] ->
      Ok (Workflow.psi_steer_far_left ~threshold:(float_of_string t) ())
  | [ "far-right" ] -> Ok (Workflow.psi_steer_far_right ())
  | [ "far-right"; t ] ->
      Ok (Workflow.psi_steer_far_right ~threshold:(float_of_string t) ())
  | [ "straight" ] -> Ok (Workflow.psi_steer_straight ())
  | [ "straight"; h ] ->
      Ok (Workflow.psi_steer_straight ~halfwidth:(float_of_string h) ())
  | _ -> (
      (* Fall back to the raw inequality language, e.g.
         "y0 >= 2.5 && y1 <= 0.3". *)
      match Dpv_spec.Risk.of_string s with
      | Ok psi -> Ok psi
      | Error e ->
          Error
            (Printf.sprintf
               "not a named condition (far-left[:T], far-right[:T], \
                straight[:H]) and not a valid inequality (%s)"
               e))

let parse_strategy = function
  | "static-box" -> Ok (Workflow.Static Propagate.Box)
  | "static-zonotope" -> Ok (Workflow.Static Propagate.Zonotope)
  | "static-deeppoly" -> Ok (Workflow.Static Propagate.Deeppoly)
  | "data-box" -> Ok Workflow.Data_box
  | "data-octagon" -> Ok Workflow.Data_octagon
  | s ->
      Error
        (Printf.sprintf
           "unknown strategy %S (static-box, static-zonotope, \
            static-deeppoly, data-box, data-octagon)"
           s)

(* The optional "setup" object shrinks the trained pipeline — CI smoke
   campaigns train a tiny network in seconds instead of the full
   default. *)
let setup_of_spec spec ~seed =
  let base = { Workflow.default_setup with Workflow.seed } in
  match field spec "setup" with
  | None -> base
  | Some s ->
      let geti key default = int_field s key ~default in
      let hidden =
        match field s "hidden" with
        | None -> base.Workflow.hidden
        | Some v -> (
            match Json.to_list v with
            | Some l -> List.map (fun x -> j_int x "hidden") l
            | None -> spec_error "\"hidden\" must be an array of integers")
      in
      let camera = base.Workflow.scenario.Generator.camera in
      let camera =
        {
          camera with
          Camera.width = geti "camera_width" camera.Camera.width;
          height = geti "camera_height" camera.Camera.height;
        }
      in
      {
        base with
        Workflow.hidden;
        cut = geti "cut" base.Workflow.cut;
        train_size = geti "train_size" base.Workflow.train_size;
        val_size = geti "val_size" base.Workflow.val_size;
        perception_epochs = geti "perception_epochs" base.Workflow.perception_epochs;
        characterizer_samples =
          geti "characterizer_samples" base.Workflow.characterizer_samples;
        bounds_samples = geti "bounds_samples" base.Workflow.bounds_samples;
        scenario = { base.Workflow.scenario with Generator.camera };
      }

type parsed = {
  seed : int;
  runners : int;
  workers : int;
  budget_s : float option;
  timeout_s : float option;
  max_nodes : int;
  setup : Workflow.setup;
  query_specs : Json.t list;
}

let parse spec =
  try
    let seed = int_field spec "seed" ~default:Workflow.default_setup.Workflow.seed in
    (* An empty array is legal: a shard of a small spec can be empty
       too, and both must produce a valid (empty) report, not an
       error. *)
    let query_specs =
      match Option.bind (field spec "queries") Json.to_list with
      | Some l -> l
      | None -> spec_error "\"queries\" must be an array"
    in
    Ok
      {
        seed;
        runners = int_field spec "runners" ~default:1;
        workers = int_field spec "workers" ~default:1;
        budget_s = float_opt_field spec "budget_s";
        timeout_s = float_opt_field spec "timeout_s";
        max_nodes =
          int_field spec "max_nodes"
            ~default:Milp.default_options.Milp.max_nodes;
        setup = setup_of_spec spec ~seed;
        query_specs;
      }
  with Spec_error msg -> Error msg

let milp_options ?(branch_rule = Milp.default_options.Milp.branch_rule) p =
  let workers =
    if p.workers <= 0 then Milp_par.default_workers () else p.workers
  in
  {
    Milp.default_options with
    find_first = true;
    workers;
    time_limit_s = p.timeout_s;
    max_nodes = p.max_nodes;
    branch_rule;
  }

(* Characterizer training and bounds fitting are memoized across specs;
   both are deterministic in (setup.seed, property, cut), so verdicts
   match individual `dpv verify` runs — and a resident server amortizes
   one submission's training for every later one. *)
type builder = {
  prepared : Workflow.prepared;
  characterizers : (string * int, Characterizer.t) Hashtbl.t;
  bounds_cache : (string * int, Verify.bounds_spec) Hashtbl.t;
  b_lock : Mutex.t;
}

let builder prepared =
  {
    prepared;
    characterizers = Hashtbl.create 8;
    bounds_cache = Hashtbl.create 8;
    b_lock = Mutex.create ();
  }

let characterizer_for b ~property ~cut =
  let key = (property.Dpv_spec.Property.name, cut) in
  Mutex.protect b.b_lock (fun () ->
      match Hashtbl.find_opt b.characterizers key with
      | Some c -> c
      | None ->
          let c, _, _ =
            Workflow.train_characterizer ~cut b.prepared ~property
          in
          Hashtbl.add b.characterizers key c;
          c)

let bounds_for b ~strategy ~cut =
  let key = (Workflow.strategy_name strategy, cut) in
  Mutex.protect b.b_lock (fun () ->
      match Hashtbl.find_opt b.bounds_cache key with
      | Some bs -> bs
      | None ->
          let bs = Workflow.bounds_spec_of b.prepared ~cut strategy in
          Hashtbl.add b.bounds_cache key bs;
          bs)

let queries b ~default_cut query_specs =
  try
    Ok
      (List.map
         (fun q ->
           let str key =
             match field q key with
             | Some v -> Some (j_string v key)
             | None -> None
           in
           let property =
             let name =
               match str "property" with
               | Some n -> n
               | None -> spec_error "query is missing \"property\""
             in
             match Oracle.find name with
             | Some p -> p
             | None -> spec_error "unknown property %S" name
           in
           let psi =
             match str "psi" with
             | None -> spec_error "query is missing \"psi\""
             | Some s -> (
                 match parse_psi s with
                 | Ok psi -> psi
                 | Error e -> spec_error "bad psi %S: %s" s e)
           in
           let strategy =
             match str "strategy" with
             | None -> spec_error "query is missing \"strategy\""
             | Some s -> (
                 match parse_strategy s with
                 | Ok st -> st
                 | Error e -> spec_error "%s" e)
           in
           let cut = int_field q "cut" ~default:default_cut in
           let characterizer_margin =
             Option.value (float_opt_field q "margin") ~default:0.0
           in
           let label =
             match str "name" with
             | Some n -> n
             | None ->
                 Printf.sprintf "%s|%s|%s" property.Dpv_spec.Property.name
                   psi.Dpv_spec.Risk.name
                   (Workflow.strategy_name strategy)
           in
           Campaign.query ~characterizer_margin ~label
             ~characterizer:(characterizer_for b ~property ~cut)
             ~psi
             ~bounds:(bounds_for b ~strategy ~cut)
             ())
         query_specs)
  with Spec_error msg -> Error msg
