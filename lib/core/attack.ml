module Network = Dpv_nn.Network
module Grad = Dpv_train.Grad
module Risk = Dpv_spec.Risk
module Linexpr = Dpv_spec.Linexpr
module Vec = Dpv_tensor.Vec

type candidate = {
  image : Vec.t;
  output : Vec.t;
  logit : float;
  iterations : int;
  seed_index : int;
}

type config = {
  steps : int;
  step_size : float;
  pixel_lo : float;
  pixel_hi : float;
  logit_margin : float;
}

let default_config =
  { steps = 200; step_size = 0.01; pixel_lo = 0.0; pixel_hi = 1.0; logit_margin = 0.0 }

(* Hinge slack of one inequality at an output point, and its gradient
   contribution direction (the inequality's coefficient vector, signed). *)
let inequality_slack (ineq : Risk.inequality) out =
  let v = Linexpr.eval ineq.Risk.expr out in
  match ineq.Risk.rel with
  | `Le -> v -. ineq.Risk.bound
  | `Ge -> ineq.Risk.bound -. v

let logit_of ~perception ~characterizer image =
  let features =
    Network.forward_upto perception ~cut:characterizer.Characterizer.cut image
  in
  Characterizer.logit characterizer features

let attack_loss ~perception ~characterizer ~psi config image =
  let out = Network.forward perception image in
  let psi_loss =
    List.fold_left
      (fun acc ineq -> acc +. Float.max 0.0 (inequality_slack ineq out))
      0.0 psi.Risk.inequalities
  in
  let logit = logit_of ~perception ~characterizer image in
  psi_loss +. Float.max 0.0 (config.logit_margin -. logit)

let is_counterexample ~perception ~characterizer ~psi ?(logit_margin = 0.0)
    image =
  let out = Network.forward perception image in
  Risk.holds psi out
  && logit_of ~perception ~characterizer image >= logit_margin

(* dL/d(image).  Two backward passes: one through the full perception for
   the active psi hinges, one through prefix+head for the logit hinge. *)
let loss_gradient ~perception ~characterizer ~joined ~psi config image =
  let dim_out = Network.output_dim perception in
  let out = Network.forward perception image in
  let d_output = Vec.zeros dim_out in
  List.iter
    (fun (ineq : Risk.inequality) ->
      if inequality_slack ineq out > 0.0 then
        let sign = match ineq.Risk.rel with `Le -> 1.0 | `Ge -> -1.0 in
        List.iter
          (fun (c, i) -> d_output.(i) <- d_output.(i) +. (sign *. c))
          (Linexpr.normalized_terms ineq.Risk.expr))
    psi.Risk.inequalities;
  let activations = Network.activations perception image in
  let _, d_input_psi = Grad.backward perception ~activations ~d_output in
  let logit = logit_of ~perception ~characterizer image in
  let d_input_logit =
    if config.logit_margin -. logit > 0.0 then begin
      let joined_acts = Network.activations joined image in
      let _, d =
        Grad.backward joined ~activations:joined_acts ~d_output:[| -1.0 |]
      in
      d
    end
    else Vec.zeros (Vec.dim image)
  in
  Vec.add d_input_psi d_input_logit

let clamp lo hi v = Float.max lo (Float.min hi v)

let pgd_from ~perception ~characterizer ~joined ~psi config ~seed_index seed =
  let image = Vec.copy seed in
  let rec loop iter =
    if
      is_counterexample ~perception ~characterizer ~psi
        ~logit_margin:config.logit_margin image
    then
      Some
        {
          image = Vec.copy image;
          output = Network.forward perception image;
          logit = logit_of ~perception ~characterizer image;
          iterations = iter;
          seed_index;
        }
    else if iter >= config.steps then None
    else begin
      let g = loss_gradient ~perception ~characterizer ~joined ~psi config image in
      for i = 0 to Vec.dim image - 1 do
        let step = if g.(i) > 0.0 then -.config.step_size
                   else if g.(i) < 0.0 then config.step_size
                   else 0.0 in
        image.(i) <- clamp config.pixel_lo config.pixel_hi (image.(i) +. step)
      done;
      loop (iter + 1)
    end
  in
  loop 0

let search ~perception ~characterizer ~psi ?(config = default_config) ~seeds () =
  let cut = characterizer.Characterizer.cut in
  let joined =
    Network.stack (Network.prefix perception ~cut) characterizer.Characterizer.head
  in
  let n = Array.length seeds in
  let rec go i =
    if i >= n then None
    else
      match
        pgd_from ~perception ~characterizer ~joined ~psi config ~seed_index:i
          seeds.(i)
      with
      | Some c -> Some c
      | None -> go (i + 1)
  in
  go 0
