module Milp = Dpv_linprog.Milp
module Pool = Dpv_linprog.Pool
module Clock = Dpv_linprog.Clock
module Faults = Dpv_linprog.Faults
module Network = Dpv_nn.Network
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_queries = Metrics.counter "campaign.queries"
let m_cache_hits = Metrics.counter "campaign.cache_hits"
let m_cache_misses = Metrics.counter "campaign.cache_misses"
let m_crashed = Metrics.counter "campaign.crashed"
let m_skipped = Metrics.counter "campaign.skipped"
let m_retried = Metrics.counter "campaign.retried"
let m_resumed = Metrics.counter "campaign.resumed"
let m_journal_failures = Metrics.counter "journal.write_failures"

type query = {
  label : string;
  characterizer : Characterizer.t;
  psi : Dpv_spec.Risk.t;
  bounds : Verify.bounds_spec;
  characterizer_margin : float;
}

let query ?(characterizer_margin = 0.0) ~label ~characterizer ~psi ~bounds () =
  { label; characterizer; psi; bounds; characterizer_margin }

(* Queries are pure data (labels, weights, risk inequalities, bounds
   specs), so a digest of the marshalled value is a stable content key:
   structurally equal queries collide, anything else does not.  The
   journal records this key, which is what makes resume robust to the
   query list being reordered or extended between runs. *)
let query_key (q : query) = Digest.to_hex (Digest.string (Marshal.to_string q []))

type outcome = Journal.outcome =
  | Done of Verify.result
  | Crashed of string
  | Skipped of string

type query_report = {
  query : query;
  outcome : outcome;
  from_cache : bool;
  from_journal : bool;
  attempts : int;
  dense_retry : bool;
  deadline_retry : bool;
}

type cache_stats = { entries : int; hits : int; misses : int }

type report = {
  query_reports : query_report list;
  cache : cache_stats;
  runners : int;
  budget_s : float option;
  total_wall_s : float;
  degraded : bool;
  crashed : int;
  skipped : int;
  retried : int;
  resumed : int;
  journal_write_failures : int;
  metrics : Metrics.snapshot;
      (** what this campaign did to the global registry: counters and
          histograms as deltas over the run, gauges as end values *)
}

let skip_reason = "budget exhausted"

let run ?(milp_options = Verify.default_milp_options) ?(runners = 1) ?budget_s
    ?journal ?resume ~perception queries =
  if runners < 1 then invalid_arg "Campaign.run: runners must be >= 1";
  (* The whole-run span is what makes the coverage guarantee trivial:
     every other campaign span nests inside it. *)
  Trace.with_span
    ~args:[ ("queries", string_of_int (List.length queries)) ]
    "campaign.run"
  @@ fun () ->
  let metrics_before = Metrics.snapshot () in
  let started = Clock.now_s () in
  let deadline = Clock.deadline_after budget_s in
  let n = List.length queries in
  let keyed = Array.of_list (List.map (fun q -> (query_key q, q)) queries) in
  (* Resume: only [Done] entries replay — a crashed or skipped query is
     exactly what a resumed campaign is there to retry. *)
  let resume_tbl : (string, Journal.entry) Hashtbl.t = Hashtbl.create 16 in
  (match resume with
  | None -> ()
  | Some entries ->
      List.iter
        (fun (e : Journal.entry) ->
          match e.Journal.outcome with
          | Done _ -> Hashtbl.replace resume_tbl e.Journal.key e
          | Crashed _ | Skipped _ -> ())
        entries);
  let reports : query_report option array = Array.make n None in
  Array.iteri
    (fun i (key, q) ->
      match Hashtbl.find_opt resume_tbl key with
      | None -> ()
      | Some e ->
          reports.(i) <-
            Some
              {
                query = q;
                outcome = e.Journal.outcome;
                from_cache = false;
                from_journal = true;
                attempts = e.Journal.attempts;
                dense_retry = e.Journal.dense_retry;
                deadline_retry = e.Journal.deadline_retry;
              })
    keyed;
  (* Seed the journal writer with the replayed entries (in input order)
     so the file on disk always describes the whole campaign. *)
  let seed =
    Array.to_list keyed
    |> List.filter_map (fun (key, _) -> Hashtbl.find_opt resume_tbl key)
  in
  let writer = Option.map (fun path -> Journal.create ~path seed) journal in
  let journal_write_failures = Atomic.make 0 in
  let journal_append entry =
    match writer with
    | None -> ()
    | Some w -> (
        try Journal.append w entry
        with Sys_error _ ->
          (* The entry is retained in memory; the next successful append
             rewrites the complete journal.  A campaign must not die on
             a full disk when it still has verdicts to produce. *)
          Atomic.incr journal_write_failures;
          Metrics.incr m_journal_failures 1)
  in
  (* Phase 1 — resolve each distinct (cut, bounds) region once, for the
     queries that actually need solving.  Keys compare structurally, so
     two queries quoting equal visited-point sets (or the same array)
     share one suffix encoding.  This phase is sequential: it mutates
     the cache, and its cost is exactly what the cache is amortizing,
     paid once per distinct key. *)
  let table : (int * Verify.bounds_spec, Encode.shared) Hashtbl.t =
    Hashtbl.create 16
  in
  let hits = ref 0 and misses = ref 0 in
  (* A failed build is this query's failure, not the campaign's: the
     error is carried to [run_one] and recorded as a [Crashed] outcome.
     Failures are deliberately not cached — a later query on the same
     key retries the build (transient numerical trouble in the octagon
     pruning LPs should not condemn every query of the key). *)
  let shared_for q =
    let cut = q.characterizer.Characterizer.cut in
    let key = (cut, q.bounds) in
    match Hashtbl.find_opt table key with
    | Some shared ->
        incr hits;
        Metrics.incr m_cache_hits 1;
        Ok (shared, true)
    | None -> (
        match
          Trace.with_span
            ~args:[ ("label", q.label) ]
            "campaign.shared-encode"
            (fun () ->
              let suffix = Network.suffix perception ~cut in
              let feature_box, extra_faces =
                Verify.resolve_bounds ~perception ~cut q.bounds
              in
              Encode.build_shared ~suffix ~feature_box ~extra_faces ())
        with
        | shared ->
            incr misses;
            Metrics.incr m_cache_misses 1;
            Hashtbl.add table key shared;
            Ok (shared, false)
        | exception e ->
            Error (Printf.sprintf "encoding failed: %s" (Printexc.to_string e)))
  in
  let prepared =
    Array.to_list keyed
    |> List.mapi (fun i (key, q) -> (i, key, q))
    |> List.filter (fun (i, _, _) -> reports.(i) = None)
    |> List.map (fun (i, key, q) -> (i, key, q, shared_for q))
  in
  let prepared_arr = Array.of_list prepared in
  (* Phase 2 — the solves fan out on the work-stealing pool, one
     coarse-grained task per query over the now read-only cache.  With
     several runners each task keeps its inner MILP sequential: the
     campaign already owns the domains, and nesting a domain pool per
     query would oversubscribe the machine. *)
  let inner_workers = if runners > 1 then 1 else milp_options.Milp.workers in
  let run_one (_i, key, q, shared_res) =
    match shared_res with
    | Error reason ->
        journal_append
          {
            Journal.key;
            label = q.label;
            outcome = Crashed reason;
            attempts = 1;
            dense_retry = false;
            deadline_retry = false;
          };
        {
          query = q;
          outcome = Crashed reason;
          from_cache = false;
          from_journal = false;
          attempts = 1;
          dense_retry = false;
          deadline_retry = false;
        }
    | Ok (shared, from_cache) ->
    if Clock.expired deadline then begin
      (* Recorded, not dropped: the report (and journal) say exactly
         which queries the budget never reached. *)
      journal_append
        {
          Journal.key;
          label = q.label;
          outcome = Skipped skip_reason;
          attempts = 0;
          dense_retry = false;
          deadline_retry = false;
        };
      {
        query = q;
        outcome = Skipped skip_reason;
        from_cache;
        from_journal = false;
        attempts = 0;
        dense_retry = false;
        deadline_retry = false;
      }
    end
    else begin
      if Faults.fire Faults.Task_crash then failwith "injected task crash";
      (* Carved at task start, so early queries cannot spend the whole
         campaign budget before later ones get their slice checked. *)
      let options =
        {
          milp_options with
          Milp.workers = inner_workers;
          time_limit_s = Clock.carve deadline milp_options.Milp.time_limit_s;
        }
      in
      let result, t =
        Trace.with_span
          ~args:[ ("label", q.label) ]
          "campaign.query"
          (fun () ->
            Retry.solve ~options ~deadline (fun opts ->
                Verify.run_query ~milp_options:opts
                  ~characterizer_margin:q.characterizer_margin ~shared
                  ~head:q.characterizer.Characterizer.head ~psi:q.psi
                  ~conditional:(Verify.is_conditional q.bounds) ()))
      in
      (* Journal from inside the task: a campaign killed right after
         this solve still has the verdict on disk. *)
      journal_append
        {
          Journal.key;
          label = q.label;
          outcome = Done result;
          attempts = t.Retry.attempts;
          dense_retry = t.Retry.dense_retry;
          deadline_retry = t.Retry.deadline_retry;
        };
      {
        query = q;
        outcome = Done result;
        from_cache;
        from_journal = false;
        attempts = t.Retry.attempts;
        dense_retry = t.Retry.dense_retry;
        deadline_retry = t.Retry.deadline_retry;
      }
    end
  in
  let out = Pool.map_list ~workers:runners run_one prepared in
  (* Per-query fault isolation: an exception in one task (including a
     worker-domain death) becomes that query's [Crashed] outcome; every
     other cell of [out] is untouched by it. *)
  Array.iteri
    (fun j cell ->
      let i, key, q, shared_res = prepared_arr.(j) in
      let from_cache =
        match shared_res with Ok (_, fc) -> fc | Error _ -> false
      in
      let crashed reason =
        journal_append
          {
            Journal.key;
            label = q.label;
            outcome = Crashed reason;
            attempts = 1;
            dense_retry = false;
            deadline_retry = false;
          };
        {
          query = q;
          outcome = Crashed reason;
          from_cache;
          from_journal = false;
          attempts = 1;
          dense_retry = false;
          deadline_retry = false;
        }
      in
      let qr =
        match cell with
        | Some (Ok r) -> r
        | Some (Error e) -> crashed (Printexc.to_string e)
        | None -> crashed "worker abandoned task"
      in
      reports.(i) <- Some qr)
    out;
  let query_reports =
    Array.to_list reports
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index is resumed or prepared *))
  in
  Option.iter Journal.close writer;
  let count p = List.length (List.filter p query_reports) in
  let crashed = count (fun r -> match r.outcome with Crashed _ -> true | _ -> false) in
  let skipped = count (fun r -> match r.outcome with Skipped _ -> true | _ -> false) in
  let retried = count (fun r -> r.attempts > 1) in
  let resumed = count (fun r -> r.from_journal) in
  Metrics.incr m_queries (List.length query_reports);
  Metrics.incr m_crashed crashed;
  Metrics.incr m_skipped skipped;
  Metrics.incr m_retried retried;
  Metrics.incr m_resumed resumed;
  {
    query_reports;
    cache = { entries = Hashtbl.length table; hits = !hits; misses = !misses };
    runners;
    budget_s;
    total_wall_s = Clock.now_s () -. started;
    degraded = crashed > 0 || skipped > 0;
    crashed;
    skipped;
    retried;
    resumed;
    journal_write_failures = Atomic.get journal_write_failures;
    metrics = Metrics.since ~before:metrics_before (Metrics.snapshot ());
  }

let verdict_word = function
  | Verify.Safe _ -> "safe"
  | Verify.Unsafe _ -> "unsafe"
  | Verify.Unknown _ -> "unknown"

let outcome_word = function
  | Done _ -> "done"
  | Crashed _ -> "crashed"
  | Skipped _ -> "skipped"

let verdict_detail = function
  | Verify.Safe { conditional } ->
      if conditional then "conditional (monitor S~ at runtime)"
      else "unconditional"
  | Verify.Unsafe { logit; _ } -> Printf.sprintf "witness logit %.6g" logit
  | Verify.Unknown reason -> reason

(* BENCH_milp.json style: hand-rolled, schema-tagged, machine-readable.
   %S escaping covers the strings we emit (ASCII labels and reasons). *)
let to_json report =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"dpv-campaign/2\",\n";
  Printf.bprintf b "  \"runners\": %d,\n" report.runners;
  (match report.budget_s with
  | None -> Printf.bprintf b "  \"budget_s\": null,\n"
  | Some s -> Printf.bprintf b "  \"budget_s\": %.3f,\n" s);
  Printf.bprintf b "  \"total_wall_s\": %.4f,\n" report.total_wall_s;
  Printf.bprintf b "  \"degraded\": %b,\n" report.degraded;
  Printf.bprintf b "  \"crashed\": %d,\n" report.crashed;
  Printf.bprintf b "  \"skipped\": %d,\n" report.skipped;
  Printf.bprintf b "  \"retried\": %d,\n" report.retried;
  Printf.bprintf b "  \"resumed\": %d,\n" report.resumed;
  Printf.bprintf b "  \"journal_write_failures\": %d,\n"
    report.journal_write_failures;
  Printf.bprintf b
    "  \"cache\": { \"entries\": %d, \"hits\": %d, \"misses\": %d },\n"
    report.cache.entries report.cache.hits report.cache.misses;
  Buffer.add_string b "  \"metrics\": ";
  Metrics.buf_snapshot ~indent:"  " b report.metrics;
  Buffer.add_string b ",\n";
  Printf.bprintf b "  \"queries\": [\n";
  let n = List.length report.query_reports in
  List.iteri
    (fun i qr ->
      Printf.bprintf b "    {\n";
      Printf.bprintf b "      \"label\": %S,\n" qr.query.label;
      Printf.bprintf b "      \"outcome\": %S,\n" (outcome_word qr.outcome);
      (match qr.outcome with
      | Done r ->
          Printf.bprintf b "      \"verdict\": %S,\n"
            (verdict_word r.Verify.verdict);
          Printf.bprintf b "      \"detail\": %S,\n"
            (verdict_detail r.Verify.verdict)
      | Crashed reason | Skipped reason ->
          Printf.bprintf b "      \"verdict\": null,\n";
          Printf.bprintf b "      \"detail\": %S,\n" reason);
      Printf.bprintf b "      \"from_cache\": %b,\n" qr.from_cache;
      Printf.bprintf b "      \"from_journal\": %b,\n" qr.from_journal;
      Printf.bprintf b "      \"attempts\": %d,\n" qr.attempts;
      Printf.bprintf b "      \"dense_retry\": %b,\n" qr.dense_retry;
      Printf.bprintf b "      \"deadline_retry\": %b" qr.deadline_retry;
      (match qr.outcome with
      | Done r ->
          let s = r.Verify.milp_stats in
          Printf.bprintf b ",\n      \"wall_s\": %.4f,\n" r.Verify.wall_time_s;
          Printf.bprintf b "      \"encoding\": %S,\n" r.Verify.encoding;
          Printf.bprintf b "      \"num_binaries\": %d,\n" r.Verify.num_binaries;
          Printf.bprintf b
            "      \"milp\": { \"nodes\": %d, \"lps\": %d, \
             \"incumbent_updates\": %d, \"steals\": %d, \
             \"max_queue_depth\": %d, \"lp_time_s\": %.4f, \
             \"pivots\": %d, \"warm_starts\": %d, \"cold_starts\": %d, \
             \"fallbacks\": %d }\n"
            s.Milp.nodes_explored s.Milp.lp_solved s.Milp.incumbent_updates
            s.Milp.steals s.Milp.max_queue_depth s.Milp.lp_time_s s.Milp.pivots
            s.Milp.warm_starts s.Milp.cold_starts s.Milp.fallbacks
      | Crashed _ | Skipped _ -> Buffer.add_string b "\n");
      Printf.bprintf b "    }%s\n" (if i = n - 1 then "" else ",")
    )
    report.query_reports;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let save_json report ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json report))
