module Milp = Dpv_linprog.Milp
module Pool = Dpv_linprog.Pool
module Clock = Dpv_linprog.Clock
module Faults = Dpv_linprog.Faults
module Network = Dpv_nn.Network
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

let m_queries = Metrics.counter "campaign.queries"
let m_cache_hits = Metrics.counter "campaign.cache_hits"
let m_cache_misses = Metrics.counter "campaign.cache_misses"
let m_crashed = Metrics.counter "campaign.crashed"
let m_skipped = Metrics.counter "campaign.skipped"
let m_retried = Metrics.counter "campaign.retried"
let m_resumed = Metrics.counter "campaign.resumed"
let m_journal_failures = Metrics.counter "journal.write_failures"

type query = {
  label : string;
  characterizer : Characterizer.t;
  psi : Dpv_spec.Risk.t;
  bounds : Verify.bounds_spec;
  characterizer_margin : float;
}

let query ?(characterizer_margin = 0.0) ~label ~characterizer ~psi ~bounds () =
  { label; characterizer; psi; bounds; characterizer_margin }

(* Queries are pure data (labels, weights, risk inequalities, bounds
   specs), so a digest of the marshalled value is a stable content key:
   structurally equal queries collide, anything else does not.  The
   journal records this key, which is what makes resume robust to the
   query list being reordered or extended between runs. *)
let query_key (q : query) = Digest.to_hex (Digest.string (Marshal.to_string q []))

(* Deterministic shard partition over the content digest: the first
   eight hex digits as an integer, mod the shard count.  Every process
   holding the same spec computes the same partition regardless of
   query order, host or OCaml version — which is the whole coordination
   protocol of [dpv campaign --shard i/n]. *)
let shard_index ~shards key =
  if shards < 1 then invalid_arg "Campaign.shard_index: shards must be >= 1";
  int_of_string ("0x" ^ String.sub key 0 8) mod shards

(* How the campaign spends its domain budget, as (pool runners, inner
   MILP workers).  [runners] is the total parallelism granted: with at
   least as many unsolved queries as runners, the outer pool takes them
   all and each solve stays sequential (nesting a domain pool per query
   would oversubscribe); with fewer queries than runners — the sharded
   regime, or one huge query — the leftover domains move *inside* the
   queries, splitting each MILP into subtree tasks so a campaign of one
   query still uses the whole budget.  [runners = 1] defers entirely to
   the caller's [milp_workers]. *)
let plan_workers ~runners ~milp_workers ~pending =
  if runners < 1 then invalid_arg "Campaign.plan_workers: runners must be >= 1";
  if runners = 1 then (1, milp_workers)
  else if pending = 0 then (1, 1)
  else if pending >= runners then (runners, 1)
  else (pending, Stdlib.max 1 (runners / pending))

type outcome = Journal.outcome =
  | Done of Verify.result
  | Crashed of string
  | Skipped of string

type query_report = {
  query : query;
  outcome : outcome;
  from_cache : bool;
  from_journal : bool;
  attempts : int;
  dense_retry : bool;
  deadline_retry : bool;
}

type cache_stats = { entries : int; hits : int; misses : int }

(* A shared-encoding cache that outlives one [run]: the resident server
   hands every job the same cache, so a (cut, bounds) prefix built for
   one client is served warm to every later client.  The lock guards
   the build-or-lookup window; phase 1 of a run is sequential, but two
   holders of the same cache may prepare concurrently. *)
type cache = {
  c_tbl : (int * Verify.bounds_spec, Encode.shared) Hashtbl.t;
  c_lock : Mutex.t;
}

let create_cache () = { c_tbl = Hashtbl.create 16; c_lock = Mutex.create () }
let cache_size c = Mutex.protect c.c_lock (fun () -> Hashtbl.length c.c_tbl)

type report = {
  query_reports : query_report list;
  cache : cache_stats;
  runners : int;
  shard : (int * int) option;
  budget_s : float option;
  total_wall_s : float;
  degraded : bool;
  crashed : int;
  skipped : int;
  retried : int;
  resumed : int;
  journal_write_failures : int;
  metrics : Metrics.snapshot;
      (** what this campaign did to the global registry: counters and
          histograms as deltas over the run, gauges as end values *)
}

let skip_reason = "budget exhausted"

let run ?(milp_options = Verify.default_milp_options) ?(runners = 1) ?shard
    ?budget_s ?journal ?resume ?(absint = false) ?bisect ?cache ?on_settled
    ?(trace = "") ~perception queries =
  if runners < 1 then invalid_arg "Campaign.run: runners must be >= 1";
  (match shard with
  | Some (i, n) when n < 1 || i < 0 || i >= n ->
      invalid_arg "Campaign.run: shard must be (i, n) with 0 <= i < n"
  | _ -> ());
  (* The whole-run span is what makes the coverage guarantee trivial:
     every other campaign span nests inside it. *)
  Trace.with_span
    ~args:
      [
        ("queries", string_of_int (List.length queries));
        ( "shard",
          match shard with
          | None -> "-"
          | Some (i, n) -> Printf.sprintf "%d/%d" i n );
      ]
    "campaign.run"
  @@ fun () ->
  let metrics_before = Metrics.snapshot () in
  let started = Clock.now_s () in
  let deadline = Clock.deadline_after budget_s in
  (* Sharding: every shard sees the full spec and runs its
     deterministic slice of the key space.  Filtering happens on keys,
     before any solving, so shards never overlap and their union is
     exactly the spec. *)
  let keep =
    match shard with
    | None -> fun _key -> true
    | Some (i, shards) -> fun key -> shard_index ~shards key = i
  in
  let keyed =
    List.map (fun q -> (query_key q, q)) queries
    |> List.filter (fun (key, _) -> keep key)
    |> Array.of_list
  in
  let n = Array.length keyed in
  (* Resume: only [Done] entries replay — a crashed or skipped query is
     exactly what a resumed campaign is there to retry. *)
  let resume_tbl : (string, Journal.entry) Hashtbl.t = Hashtbl.create 16 in
  (match resume with
  | None -> ()
  | Some entries ->
      List.iter
        (fun (e : Journal.entry) ->
          match e.Journal.outcome with
          | Done _ -> Hashtbl.replace resume_tbl e.Journal.key e
          | Crashed _ | Skipped _ -> ())
        entries);
  (* The settle hook is observability, not control flow: a raising
     subscriber (a vanished network client, say) must never take the
     solve down with it. *)
  let settled qr =
    match on_settled with
    | None -> ()
    | Some f -> ( try f qr with _ -> ())
  in
  let reports : query_report option array = Array.make n None in
  Array.iteri
    (fun i (key, q) ->
      match Hashtbl.find_opt resume_tbl key with
      | None -> ()
      | Some e ->
          let qr =
            {
              query = q;
              outcome = e.Journal.outcome;
              from_cache = false;
              from_journal = true;
              attempts = e.Journal.attempts;
              dense_retry = e.Journal.dense_retry;
              deadline_retry = e.Journal.deadline_retry;
            }
          in
          settled qr;
          reports.(i) <- Some qr)
    keyed;
  (* Seed the journal writer with the replayed entries (in input order)
     so the file on disk always describes the whole campaign. *)
  let seed =
    Array.to_list keyed
    |> List.filter_map (fun (key, _) -> Hashtbl.find_opt resume_tbl key)
  in
  let writer = Option.map (fun path -> Journal.create ~path seed) journal in
  let journal_write_failures = Atomic.make 0 in
  let journal_append entry =
    match writer with
    | None -> ()
    | Some w -> (
        try Journal.append w entry
        with Sys_error _ ->
          (* The entry is retained in memory; the next successful append
             rewrites the complete journal.  A campaign must not die on
             a full disk when it still has verdicts to produce. *)
          Atomic.incr journal_write_failures;
          Metrics.incr m_journal_failures 1)
  in
  (* Phase 1 — resolve each distinct (cut, bounds) region once, for the
     queries that actually need solving.  Keys compare structurally, so
     two queries quoting equal visited-point sets (or the same array)
     share one suffix encoding.  This phase is sequential: it mutates
     the cache, and its cost is exactly what the cache is amortizing,
     paid once per distinct key. *)
  let cache = match cache with Some c -> c | None -> create_cache () in
  let hits = ref 0 and misses = ref 0 in
  (* A failed build is this query's failure, not the campaign's: the
     error is carried to [run_one] and recorded as a [Crashed] outcome.
     Failures are deliberately not cached — a later query on the same
     key retries the build (transient numerical trouble in the octagon
     pruning LPs should not condemn every query of the key).  A caller
     can pass its own [?cache] and keep it across runs — how the serve
     daemon amortizes one client's encodings for every later client. *)
  let shared_for q =
    let cut = q.characterizer.Characterizer.cut in
    let key = (cut, q.bounds) in
    match Mutex.protect cache.c_lock (fun () -> Hashtbl.find_opt cache.c_tbl key) with
    | Some shared ->
        incr hits;
        Metrics.incr m_cache_hits 1;
        Ok (shared, true)
    | None -> (
        match
          Trace.with_span
            ~args:[ ("label", q.label) ]
            "campaign.shared-encode"
            (fun () ->
              let suffix = Network.suffix perception ~cut in
              let feature_box, extra_faces =
                Verify.resolve_bounds ~perception ~cut q.bounds
              in
              Encode.build_shared ~suffix ~feature_box ~extra_faces ())
        with
        | shared ->
            incr misses;
            Metrics.incr m_cache_misses 1;
            Mutex.protect cache.c_lock (fun () ->
                Hashtbl.replace cache.c_tbl key shared);
            Ok (shared, false)
        | exception e ->
            Error (Printf.sprintf "encoding failed: %s" (Printexc.to_string e)))
  in
  let prepared =
    Array.to_list keyed
    |> List.mapi (fun i (key, q) -> (i, key, q))
    |> List.filter (fun (i, _, _) -> reports.(i) = None)
    |> List.map (fun (i, key, q) -> (i, key, q, shared_for q))
  in
  let prepared_arr = Array.of_list prepared in
  (* Phase 2 — the solves fan out on the work-stealing pool over the
     now read-only cache.  [plan_workers] splits the domain budget:
     enough unsolved units and the pool takes one coarse task per unit
     with sequential inner solves; fewer units than runners (a thin
     shard, or one huge query) and the spare domains move inside the
     MILPs as subtree-search workers instead of idling.  Without
     bisection the schedulable unit is the query; with it, each
     surviving sub-box of a query's bisection plan. *)
  (match bisect with
  | None ->
      let outer_runners, inner_workers =
        plan_workers ~runners ~milp_workers:milp_options.Milp.workers
          ~pending:(List.length prepared)
      in
      let run_one (_i, key, q, shared_res) =
        let finish qr = settled qr; qr in
        match shared_res with
        | Error reason ->
            journal_append
              {
                Journal.key;
                label = q.label;
                outcome = Crashed reason;
                attempts = 1;
                dense_retry = false;
                deadline_retry = false;
              };
            finish
            {
              query = q;
              outcome = Crashed reason;
              from_cache = false;
              from_journal = false;
              attempts = 1;
              dense_retry = false;
              deadline_retry = false;
            }
        | Ok (shared, from_cache) ->
        if Clock.expired deadline then begin
          (* Recorded, not dropped: the report (and journal) say exactly
             which queries the budget never reached. *)
          journal_append
            {
              Journal.key;
              label = q.label;
              outcome = Skipped skip_reason;
              attempts = 0;
              dense_retry = false;
              deadline_retry = false;
            };
          finish
          {
            query = q;
            outcome = Skipped skip_reason;
            from_cache;
            from_journal = false;
            attempts = 0;
            dense_retry = false;
            deadline_retry = false;
          }
        end
        else begin
          if Faults.fire Faults.Task_crash then failwith "injected task crash";
          (* Carved at task start, so early queries cannot spend the whole
             campaign budget before later ones get their slice checked. *)
          let options =
            {
              milp_options with
              Milp.workers = inner_workers;
              time_limit_s = Clock.carve deadline milp_options.Milp.time_limit_s;
            }
          in
          let result, t =
            Trace.with_span
              ~args:[ ("label", q.label) ]
              "campaign.query"
              (fun () ->
                Retry.solve ~options ~deadline (fun opts ->
                    Verify.run_query ~milp_options:opts ~absint
                      ~characterizer_margin:q.characterizer_margin ~shared
                      ~head:q.characterizer.Characterizer.head ~psi:q.psi
                      ~conditional:(Verify.is_conditional q.bounds) ()))
          in
          (* Journal from inside the task: a campaign killed right after
             this solve still has the verdict on disk. *)
          journal_append
            {
              Journal.key;
              label = q.label;
              outcome = Done result;
              attempts = t.Retry.attempts;
              dense_retry = t.Retry.dense_retry;
              deadline_retry = t.Retry.deadline_retry;
            };
          finish
          {
            query = q;
            outcome = Done result;
            from_cache;
            from_journal = false;
            attempts = t.Retry.attempts;
            dense_retry = t.Retry.dense_retry;
            deadline_retry = t.Retry.deadline_retry;
          }
        end
      in
      let out = Pool.map_list ~workers:outer_runners run_one prepared in
      (* Per-query fault isolation: an exception in one task (including a
         worker-domain death) becomes that query's [Crashed] outcome; every
         other cell of [out] is untouched by it. *)
      Array.iteri
        (fun j cell ->
          let i, key, q, shared_res = prepared_arr.(j) in
          let from_cache =
            match shared_res with Ok (_, fc) -> fc | Error _ -> false
          in
          let crashed reason =
            journal_append
              {
                Journal.key;
                label = q.label;
                outcome = Crashed reason;
                attempts = 1;
                dense_retry = false;
                deadline_retry = false;
              };
            {
              query = q;
              outcome = Crashed reason;
              from_cache;
              from_journal = false;
              attempts = 1;
              dense_retry = false;
              deadline_retry = false;
            }
          in
          let qr =
            match cell with
            | Some (Ok r) -> r
            | Some (Error e) ->
                let qr = crashed (Printexc.to_string e) in
                settled qr;
                qr
            | None ->
                let qr = crashed "worker abandoned task" in
                settled qr;
                qr
          in
          reports.(i) <- Some qr)
        out
  | Some b ->
      (* Phase 2a — sequential planning: split each query's feature box,
         discharging cheap sub-boxes with DeepPoly propagation.  Queries
         whose plan leaves no survivors are Safe right here; the rest
         contribute one schedulable unit per surviving sub-box, which is
         what lets [plan_workers] see the real pending width (a campaign
         of one hard query still fans out across the domain budget). *)
      let np = Array.length prepared_arr in
      let plans = Array.make np None in
      let units = ref [] in
      Array.iteri
        (fun j (i, key, q, shared_res) ->
          match shared_res with
          | Error reason ->
              journal_append
                {
                  Journal.key;
                  label = q.label;
                  outcome = Crashed reason;
                  attempts = 1;
                  dense_retry = false;
                  deadline_retry = false;
                };
              let qr =
                {
                  query = q;
                  outcome = Crashed reason;
                  from_cache = false;
                  from_journal = false;
                  attempts = 1;
                  dense_retry = false;
                  deadline_retry = false;
                }
              in
              settled qr;
              reports.(i) <- Some qr
          | Ok (shared, from_cache) -> (
              let t0 = Clock.now_s () in
              let plan_res =
                let feature_box = Encode.feature_box_of_shared shared in
                match
                  Verify.bisect_plan ~max_depth:b.Verify.max_depth
                    ~suffix:(Encode.suffix_of_shared shared)
                    ~head:q.characterizer.Characterizer.head ~psi:q.psi
                    ~characterizer_margin:q.characterizer_margin feature_box
                with
                | plan -> Ok plan
                | exception _ -> Error feature_box
              in
              match plan_res with
              | Error feature_box ->
                  (* Planning is an optimization; if propagation dies
                     the whole box is solved as a single unit, with no
                     root seed to hand the guide. *)
                  plans.(j) <- Some (0, 1, from_cache);
                  units := (j, 0, feature_box, None) :: !units
              | Ok ({ Verify.survivors = []; _ } as plan) ->
                  (* Every sub-box discharged by propagation alone. *)
                  let result =
                    Verify.merge_bisected
                      ~conditional:(Verify.is_conditional q.bounds)
                      ~discharged:plan.Verify.discharged
                      ~total_subboxes:(Verify.plan_total plan)
                      ~wall_time_s:(Clock.now_s () -. t0) ~unsolved:0 []
                  in
                  journal_append
                    {
                      Journal.key;
                      label = q.label;
                      outcome = Done result;
                      attempts = 1;
                      dense_retry = false;
                      deadline_retry = false;
                    };
                  let qr =
                    {
                      query = q;
                      outcome = Done result;
                      from_cache;
                      from_journal = false;
                      attempts = 1;
                      dense_retry = false;
                      deadline_retry = false;
                    }
                  in
                  settled qr;
                  reports.(i) <- Some qr
              | Ok plan ->
                  plans.(j) <-
                    Some
                      ( plan.Verify.discharged,
                        Verify.plan_total plan,
                        from_cache );
                  List.iteri
                    (fun si (sub, sd) ->
                      units := (j, si, sub, Some sd) :: !units)
                    plan.Verify.survivors))
        prepared_arr;
      let units = List.rev !units in
      let outer_runners, inner_workers =
        plan_workers ~runners ~milp_workers:milp_options.Milp.workers
          ~pending:(List.length units)
      in
      (* Phase 2b — solve the surviving sub-boxes on the pool, each on a
         prefix rebuilt over its sub-box. *)
      let run_unit (j, si, sub, sd) =
        let _i, _key, q, shared_res = prepared_arr.(j) in
        let shared =
          match shared_res with Ok (s, _) -> s | Error _ -> assert false
        in
        if Clock.expired deadline then `Skipped
        else begin
          if Faults.fire Faults.Task_crash then failwith "injected task crash";
          let budget =
            let carved =
              Clock.carve deadline milp_options.Milp.time_limit_s
            in
            match (carved, b.Verify.subbox_time_limit_s) with
            | None, t | t, None -> t
            | Some a, Some c -> Some (Stdlib.min a c)
          in
          let options =
            {
              milp_options with
              Milp.workers = inner_workers;
              time_limit_s = budget;
            }
          in
          let sub_shared = Encode.restrict_shared shared ~feature_box:sub in
          let result, t =
            Trace.with_span
              ~args:
                [ ("label", q.label); ("subbox", string_of_int si) ]
              "campaign.subbox"
              (fun () ->
                Retry.solve ~options ~deadline (fun opts ->
                    Verify.run_query ~milp_options:opts ~absint
                      ?absint_seed:sd
                      ~characterizer_margin:q.characterizer_margin
                      ~shared:sub_shared
                      ~head:q.characterizer.Characterizer.head ~psi:q.psi
                      ~conditional:(Verify.is_conditional q.bounds) ()))
          in
          `Done (result, t)
        end
      in
      let out = Pool.map_list ~workers:outer_runners run_unit units in
      (* Fold unit outcomes back per query.  Fault isolation is per
         sub-box: one crashed unit leaves its siblings' verdicts
         standing, and the merged outcome degrades to [Crashed] only
         when no UNSAFE witness was found elsewhere. *)
      let unit_arr = Array.of_list units in
      let dones = Array.make np [] in
      let crashes = Array.make np [] in
      let skips = Array.make np 0 in
      let attempts = Array.make np 0 in
      let dense = Array.make np false in
      let dl = Array.make np false in
      Array.iteri
        (fun k cell ->
          let j, _si, _sub, _sd = unit_arr.(k) in
          match cell with
          | Some (Ok `Skipped) -> skips.(j) <- skips.(j) + 1
          | Some (Ok (`Done (r, t))) ->
              dones.(j) <- r :: dones.(j);
              attempts.(j) <- Stdlib.max attempts.(j) t.Retry.attempts;
              if t.Retry.dense_retry then dense.(j) <- true;
              if t.Retry.deadline_retry then dl.(j) <- true
          | Some (Error e) -> crashes.(j) <- Printexc.to_string e :: crashes.(j)
          | None -> crashes.(j) <- "worker abandoned task" :: crashes.(j))
        out;
      Array.iteri
        (fun j (i, key, q, _shared_res) ->
          match plans.(j) with
          | None -> ()
          | Some (discharged, total_subboxes, from_cache) ->
              let done_results = List.rev dones.(j) in
              let crashed_reasons = List.rev crashes.(j) in
              let merge ~unsolved =
                Verify.merge_bisected
                  ~conditional:(Verify.is_conditional q.bounds)
                  ~discharged ~total_subboxes
                  ~wall_time_s:
                    (List.fold_left
                       (fun acc (r : Verify.result) ->
                         acc +. r.Verify.wall_time_s)
                       0.0 done_results)
                  ~unsolved done_results
              in
              let unsafe_found =
                List.exists
                  (fun (r : Verify.result) ->
                    match r.Verify.verdict with
                    | Verify.Unsafe _ -> true
                    | _ -> false)
                  done_results
              in
              let outcome =
                (* A validated UNSAFE witness decides the query no matter
                   what happened to the other sub-boxes; below that the
                   worst infrastructure outcome wins so degradation is
                   never hidden behind a partial Safe. *)
                if unsafe_found then
                  Done
                    (merge
                       ~unsolved:(List.length crashed_reasons + skips.(j)))
                else
                  match crashed_reasons with
                  | reason :: _ ->
                      Crashed (Printf.sprintf "sub-box crashed: %s" reason)
                  | [] ->
                      if skips.(j) > 0 then Skipped skip_reason
                      else Done (merge ~unsolved:0)
              in
              let att = Stdlib.max 1 attempts.(j) in
              journal_append
                {
                  Journal.key;
                  label = q.label;
                  outcome;
                  attempts = att;
                  dense_retry = dense.(j);
                  deadline_retry = dl.(j);
                };
              let qr =
                {
                  query = q;
                  outcome;
                  from_cache;
                  from_journal = false;
                  attempts = att;
                  dense_retry = dense.(j);
                  deadline_retry = dl.(j);
                }
              in
              settled qr;
              reports.(i) <- Some qr)
        prepared_arr);
  let query_reports =
    Array.to_list reports
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index is resumed or prepared *))
  in
  let count p = List.length (List.filter p query_reports) in
  let crashed = count (fun r -> match r.outcome with Crashed _ -> true | _ -> false) in
  let skipped = count (fun r -> match r.outcome with Skipped _ -> true | _ -> false) in
  let retried = count (fun r -> r.attempts > 1) in
  let resumed = count (fun r -> r.from_journal) in
  Metrics.incr m_queries (List.length query_reports);
  Metrics.incr m_crashed crashed;
  Metrics.incr m_skipped skipped;
  Metrics.incr m_retried retried;
  Metrics.incr m_resumed resumed;
  let total_wall_s = Clock.now_s () -. started in
  (* The delta is taken *before* the meta append below, so a shard's
     recorded snapshot excludes the bookkeeping of writing it — which
     is what lets [merge_reports] sum shard snapshots into exact
     campaign totals. *)
  let metrics = Metrics.since ~before:metrics_before (Metrics.snapshot ()) in
  (* Shard trailers are mandatory for merge; unsharded journals only
     grow one when there is a trace id worth correlating (served jobs),
     so plain batch journals stay one-line-per-query. *)
  let meta_of i shards =
    { Journal.shard = i; shard_count = shards; runners; total_wall_s; trace;
      metrics }
  in
  (match (shard, writer) with
  | Some (i, shards), Some w -> (
      try Journal.append_meta w (meta_of i shards)
      with Sys_error _ ->
        Atomic.incr journal_write_failures;
        Metrics.incr m_journal_failures 1)
  | None, Some w when trace <> "" -> (
      try Journal.append_meta w (meta_of 0 1)
      with Sys_error _ ->
        Atomic.incr journal_write_failures;
        Metrics.incr m_journal_failures 1)
  | _ -> ());
  Option.iter Journal.close writer;
  {
    query_reports;
    (* Entries built *by this run* — with a caller-held persistent
       cache the table also carries prior runs' keys, which belong to
       their own reports. *)
    cache = { entries = !misses; hits = !hits; misses = !misses };
    runners;
    shard;
    budget_s;
    total_wall_s;
    degraded = crashed > 0 || skipped > 0;
    crashed;
    skipped;
    retried;
    resumed;
    journal_write_failures = Atomic.get journal_write_failures;
    metrics;
  }

let verdict_word = function
  | Verify.Safe _ -> "safe"
  | Verify.Unsafe _ -> "unsafe"
  | Verify.Unknown _ -> "unknown"

let outcome_word = function
  | Done _ -> "done"
  | Crashed _ -> "crashed"
  | Skipped _ -> "skipped"

let verdict_detail = function
  | Verify.Safe { conditional } ->
      if conditional then "conditional (monitor S~ at runtime)"
      else "unconditional"
  | Verify.Unsafe { logit; _ } -> Printf.sprintf "witness logit %.6g" logit
  | Verify.Unknown reason -> reason

(* One query record of the dpv-campaign/2 "queries" array — shared
   between {!to_json} (which has full query_reports) and
   {!merged_to_json} (which reconstructs records from journal entries,
   where every query is by definition [from_journal]). *)
let buf_query_record b ~last ~label ~(outcome : outcome) ~from_cache
    ~from_journal ~attempts ~dense_retry ~deadline_retry =
  Printf.bprintf b "    {\n";
  Printf.bprintf b "      \"label\": %S,\n" label;
  Printf.bprintf b "      \"outcome\": %S,\n" (outcome_word outcome);
  (match outcome with
  | Done r ->
      Printf.bprintf b "      \"verdict\": %S,\n" (verdict_word r.Verify.verdict);
      Printf.bprintf b "      \"detail\": %S,\n" (verdict_detail r.Verify.verdict)
  | Crashed reason | Skipped reason ->
      Printf.bprintf b "      \"verdict\": null,\n";
      Printf.bprintf b "      \"detail\": %S,\n" reason);
  Printf.bprintf b "      \"from_cache\": %b,\n" from_cache;
  Printf.bprintf b "      \"from_journal\": %b,\n" from_journal;
  Printf.bprintf b "      \"attempts\": %d,\n" attempts;
  Printf.bprintf b "      \"dense_retry\": %b,\n" dense_retry;
  Printf.bprintf b "      \"deadline_retry\": %b" deadline_retry;
  (match outcome with
  | Done r ->
      let s = r.Verify.milp_stats in
      Printf.bprintf b ",\n      \"wall_s\": %.4f,\n" r.Verify.wall_time_s;
      Printf.bprintf b "      \"encoding\": %S,\n" r.Verify.encoding;
      Printf.bprintf b "      \"num_binaries\": %d,\n" r.Verify.num_binaries;
      Printf.bprintf b
        "      \"milp\": { \"nodes\": %d, \"lps\": %d, \
         \"incumbent_updates\": %d, \"steals\": %d, \
         \"max_queue_depth\": %d, \"lp_time_s\": %.4f, \
         \"pivots\": %d, \"warm_starts\": %d, \"cold_starts\": %d, \
         \"fallbacks\": %d, \"absint_phase_fixes\": %d, \
         \"absint_prunes\": %d, \"absint_incr_hits\": %d, \
         \"absint_layers_propagated\": %d, \"absint_layers_saved\": %d, \
         \"absint_cache_evictions\": %d }\n"
        s.Milp.nodes_explored s.Milp.lp_solved s.Milp.incumbent_updates
        s.Milp.steals s.Milp.max_queue_depth s.Milp.lp_time_s s.Milp.pivots
        s.Milp.warm_starts s.Milp.cold_starts s.Milp.fallbacks
        s.Milp.absint_phase_fixes s.Milp.absint_prunes s.Milp.absint_incr_hits
        s.Milp.absint_layers_propagated s.Milp.absint_layers_saved
        s.Milp.absint_cache_evictions
  | Crashed _ | Skipped _ -> Buffer.add_string b "\n");
  Printf.bprintf b "    }%s\n" (if last then "" else ",")

(* BENCH_milp.json style: hand-rolled, schema-tagged, machine-readable.
   %S escaping covers the strings we emit (ASCII labels and reasons). *)
let to_json report =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"dpv-campaign/2\",\n";
  Printf.bprintf b "  \"runners\": %d,\n" report.runners;
  (match report.shard with
  | None -> Printf.bprintf b "  \"shard\": null,\n"
  | Some (i, n) ->
      Printf.bprintf b "  \"shard\": { \"index\": %d, \"count\": %d },\n" i n);
  (match report.budget_s with
  | None -> Printf.bprintf b "  \"budget_s\": null,\n"
  | Some s -> Printf.bprintf b "  \"budget_s\": %.3f,\n" s);
  Printf.bprintf b "  \"total_wall_s\": %.4f,\n" report.total_wall_s;
  Printf.bprintf b "  \"degraded\": %b,\n" report.degraded;
  Printf.bprintf b "  \"crashed\": %d,\n" report.crashed;
  Printf.bprintf b "  \"skipped\": %d,\n" report.skipped;
  Printf.bprintf b "  \"retried\": %d,\n" report.retried;
  Printf.bprintf b "  \"resumed\": %d,\n" report.resumed;
  Printf.bprintf b "  \"journal_write_failures\": %d,\n"
    report.journal_write_failures;
  Printf.bprintf b
    "  \"cache\": { \"entries\": %d, \"hits\": %d, \"misses\": %d },\n"
    report.cache.entries report.cache.hits report.cache.misses;
  Buffer.add_string b "  \"metrics\": ";
  Metrics.buf_snapshot ~indent:"  " b report.metrics;
  Buffer.add_string b ",\n";
  Printf.bprintf b "  \"queries\": [\n";
  let n = List.length report.query_reports in
  List.iteri
    (fun i qr ->
      buf_query_record b ~last:(i = n - 1) ~label:qr.query.label
        ~outcome:qr.outcome ~from_cache:qr.from_cache
        ~from_journal:qr.from_journal ~attempts:qr.attempts
        ~dense_retry:qr.dense_retry ~deadline_retry:qr.deadline_retry)
    report.query_reports;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let save_json report ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json report))

(* ---- Shard merging ------------------------------------------------ *)

(* Combine the in-process reports of a disjoint shard partition into
   the report the unsharded campaign would have produced (up to
   ordering and wall clock): query lists concatenate in key order so
   the result is independent of which shard ran first, counts add,
   metric snapshots add exactly ({!Metrics.merge}), wall clock is the
   slowest shard (they run concurrently), and the merged report is no
   longer any one shard. *)
let merge_reports reports =
  match reports with
  | [] -> invalid_arg "Campaign.merge_reports: empty report list"
  | first :: _ ->
      let query_reports =
        List.concat_map (fun r -> r.query_reports) reports
        |> List.map (fun qr -> (query_key qr.query, qr))
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
      let fmax f =
        List.fold_left (fun acc r -> Stdlib.max acc (f r)) (f first) reports
      in
      {
        query_reports;
        cache =
          {
            entries = sum (fun r -> r.cache.entries);
            hits = sum (fun r -> r.cache.hits);
            misses = sum (fun r -> r.cache.misses);
          };
        runners = fmax (fun r -> r.runners);
        shard = None;
        budget_s = first.budget_s;
        total_wall_s =
          List.fold_left
            (fun acc r -> Stdlib.max acc r.total_wall_s)
            0.0 reports;
        degraded = List.exists (fun r -> r.degraded) reports;
        crashed = sum (fun r -> r.crashed);
        skipped = sum (fun r -> r.skipped);
        retried = sum (fun r -> r.retried);
        resumed = sum (fun r -> r.resumed);
        journal_write_failures = sum (fun r -> r.journal_write_failures);
        metrics =
          List.fold_left
            (fun acc r -> Metrics.merge acc r.metrics)
            Metrics.empty_snapshot reports;
      }

(* Merge shard journals (as loaded by {!Journal.load_with_meta}) into
   one entry list plus the collected meta trailers.  Entries dedup by
   content key — shards of one partition never overlap, but operators
   re-run shards, and a re-run's journal may carry both a [Crashed]
   attempt and a later [Done]: the most conclusive outcome wins
   ([Done] > [Crashed] > [Skipped]), first occurrence on ties.  Order
   is first-seen, so merging is deterministic in the argument order. *)
let merge_journals shards =
  let rank (e : Journal.entry) =
    match e.Journal.outcome with Done _ -> 2 | Crashed _ -> 1 | Skipped _ -> 0
  in
  let tbl : (string, Journal.entry) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (entries, _metas) ->
      List.iter
        (fun (e : Journal.entry) ->
          match Hashtbl.find_opt tbl e.Journal.key with
          | None ->
              Hashtbl.add tbl e.Journal.key e;
              order := e.Journal.key :: !order
          | Some prev ->
              if rank e > rank prev then Hashtbl.replace tbl e.Journal.key e)
        entries)
    shards;
  let entries = List.rev_map (fun key -> Hashtbl.find tbl key) !order in
  let metas = List.concat_map snd shards in
  (entries, metas)

(* Exit-code severity for a merged journal, same precedence the CLI
   applies to a live campaign: unsafe (1) dominates — a safety
   counterexample must never be masked by infrastructure trouble —
   then degraded (4: crashed or skipped queries), then unknown (2),
   then clean (0). *)
let worst_exit_code entries =
  let code_of (e : Journal.entry) =
    match e.Journal.outcome with
    | Done r -> (
        match r.Verify.verdict with
        | Verify.Unsafe _ -> 1
        | Verify.Unknown _ -> 2
        | Verify.Safe _ -> 0)
    | Crashed _ | Skipped _ -> 4
  in
  let severity = function 1 -> 3 | 4 -> 2 | 2 -> 1 | _ -> 0 in
  List.fold_left
    (fun worst e ->
      let c = code_of e in
      if severity c > severity worst then c else worst)
    0 entries

(* Same severity ladder over a live report — the single definition the
   CLI campaign command and the serve daemon both answer with, so a
   streamed job and its batch twin can never disagree on the code. *)
let report_exit_code report =
  let any p = List.exists p report.query_reports in
  let unsafe =
    any (fun r ->
        match r.outcome with
        | Done { Verify.verdict = Verify.Unsafe _; _ } -> true
        | _ -> false)
  in
  let unknown =
    any (fun r ->
        match r.outcome with
        | Done { Verify.verdict = Verify.Unknown _; _ } -> true
        | _ -> false)
  in
  if unsafe then 1 else if report.degraded then 4 else if unknown then 2 else 0

(* The dpv-campaign/2 report of a merged partition, rebuilt from what
   the shard journals persist.  Whole-campaign totals come from the
   summed meta metrics ({!Metrics.merge} over the trailers): cache
   hits/misses, journal write failures.  Every query is
   [from_journal] — the merge never re-solves anything. *)
let merged_to_json ~entries ~metas =
  let metrics =
    List.fold_left
      (fun acc (m : Journal.meta) -> Metrics.merge acc m.Journal.metrics)
      Metrics.empty_snapshot metas
  in
  let counter name = Option.value ~default:0 (Metrics.counter_in metrics name) in
  let count p = List.length (List.filter p entries) in
  let crashed =
    count (fun (e : Journal.entry) ->
        match e.Journal.outcome with Crashed _ -> true | _ -> false)
  in
  let skipped =
    count (fun (e : Journal.entry) ->
        match e.Journal.outcome with Skipped _ -> true | _ -> false)
  in
  let retried = count (fun (e : Journal.entry) -> e.Journal.attempts > 1) in
  let runners =
    List.fold_left (fun acc (m : Journal.meta) -> Stdlib.max acc m.Journal.runners) 1 metas
  in
  let total_wall_s =
    List.fold_left
      (fun acc (m : Journal.meta) -> Stdlib.max acc m.Journal.total_wall_s)
      0.0 metas
  in
  let misses = counter "campaign.cache_misses" in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"dpv-campaign/2\",\n";
  Printf.bprintf b "  \"runners\": %d,\n" runners;
  Printf.bprintf b "  \"shard\": null,\n";
  Printf.bprintf b "  \"budget_s\": null,\n";
  Printf.bprintf b "  \"total_wall_s\": %.4f,\n" total_wall_s;
  Printf.bprintf b "  \"degraded\": %b,\n" (crashed > 0 || skipped > 0);
  Printf.bprintf b "  \"crashed\": %d,\n" crashed;
  Printf.bprintf b "  \"skipped\": %d,\n" skipped;
  Printf.bprintf b "  \"retried\": %d,\n" retried;
  Printf.bprintf b "  \"resumed\": %d,\n" (List.length entries);
  Printf.bprintf b "  \"journal_write_failures\": %d,\n"
    (counter "journal.write_failures");
  Printf.bprintf b
    "  \"cache\": { \"entries\": %d, \"hits\": %d, \"misses\": %d },\n" misses
    (counter "campaign.cache_hits")
    misses;
  Buffer.add_string b "  \"metrics\": ";
  Metrics.buf_snapshot ~indent:"  " b metrics;
  Buffer.add_string b ",\n";
  Printf.bprintf b "  \"queries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (e : Journal.entry) ->
      buf_query_record b ~last:(i = n - 1) ~label:e.Journal.label
        ~outcome:e.Journal.outcome ~from_cache:false ~from_journal:true
        ~attempts:e.Journal.attempts ~dense_retry:e.Journal.dense_retry
        ~deadline_retry:e.Journal.deadline_retry)
    entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
