module Milp = Dpv_linprog.Milp
module Pool = Dpv_linprog.Pool
module Clock = Dpv_linprog.Clock
module Network = Dpv_nn.Network

type query = {
  label : string;
  characterizer : Characterizer.t;
  psi : Dpv_spec.Risk.t;
  bounds : Verify.bounds_spec;
  characterizer_margin : float;
}

let query ?(characterizer_margin = 0.0) ~label ~characterizer ~psi ~bounds () =
  { label; characterizer; psi; bounds; characterizer_margin }

type query_report = {
  query : query;
  result : Verify.result;
  from_cache : bool;
}

type cache_stats = { entries : int; hits : int; misses : int }

type report = {
  query_reports : query_report list;
  cache : cache_stats;
  runners : int;
  budget_s : float option;
  total_wall_s : float;
}

let run ?(milp_options = Verify.default_milp_options) ?(runners = 1) ?budget_s
    ~perception queries =
  if runners < 1 then invalid_arg "Campaign.run: runners must be >= 1";
  let started = Clock.now_s () in
  let deadline = Clock.deadline_after budget_s in
  (* Phase 1 — resolve each distinct (cut, bounds) region once.  Keys
     compare structurally, so two queries quoting equal visited-point
     sets (or the same array) share one suffix encoding.  This phase is
     sequential: it mutates the cache, and its cost is exactly what the
     cache is amortizing, paid once per distinct key. *)
  let table : (int * Verify.bounds_spec, Encode.shared) Hashtbl.t =
    Hashtbl.create 16
  in
  let hits = ref 0 and misses = ref 0 in
  let shared_for q =
    let cut = q.characterizer.Characterizer.cut in
    let key = (cut, q.bounds) in
    match Hashtbl.find_opt table key with
    | Some shared ->
        incr hits;
        (shared, true)
    | None ->
        incr misses;
        let suffix = Network.suffix perception ~cut in
        let feature_box, extra_faces =
          Verify.resolve_bounds ~perception ~cut q.bounds
        in
        let shared = Encode.build_shared ~suffix ~feature_box ~extra_faces () in
        Hashtbl.add table key shared;
        (shared, false)
  in
  let prepared = List.map (fun q -> (q, shared_for q)) queries in
  (* Phase 2 — the solves fan out on the work-stealing pool, one
     coarse-grained task per query over the now read-only cache.  With
     several runners each task keeps its inner MILP sequential: the
     campaign already owns the domains, and nesting a domain pool per
     query would oversubscribe the machine. *)
  let inner_workers = if runners > 1 then 1 else milp_options.Milp.workers in
  let run_one (q, (shared, from_cache)) =
    (* Carved at task start, so early queries cannot spend the whole
       campaign budget before later ones get their slice checked. *)
    let options =
      {
        milp_options with
        Milp.workers = inner_workers;
        time_limit_s = Clock.carve deadline milp_options.Milp.time_limit_s;
      }
    in
    let result =
      Verify.run_query ~milp_options:options
        ~characterizer_margin:q.characterizer_margin ~shared
        ~head:q.characterizer.Characterizer.head ~psi:q.psi
        ~conditional:(Verify.is_conditional q.bounds) ()
    in
    { query = q; result; from_cache }
  in
  let out = Pool.map_list ~workers:runners run_one prepared in
  let query_reports =
    Array.to_list out
    |> List.map (function Some r -> r | None -> assert false)
  in
  {
    query_reports;
    cache = { entries = Hashtbl.length table; hits = !hits; misses = !misses };
    runners;
    budget_s;
    total_wall_s = Clock.now_s () -. started;
  }

let verdict_word = function
  | Verify.Safe _ -> "safe"
  | Verify.Unsafe _ -> "unsafe"
  | Verify.Unknown _ -> "unknown"

let verdict_detail = function
  | Verify.Safe { conditional } ->
      if conditional then "conditional (monitor S~ at runtime)"
      else "unconditional"
  | Verify.Unsafe { logit; _ } -> Printf.sprintf "witness logit %.6g" logit
  | Verify.Unknown reason -> reason

(* BENCH_milp.json style: hand-rolled, schema-tagged, machine-readable.
   %S escaping covers the strings we emit (ASCII labels and reasons). *)
let to_json report =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"dpv-campaign/1\",\n";
  Printf.bprintf b "  \"runners\": %d,\n" report.runners;
  (match report.budget_s with
  | None -> Printf.bprintf b "  \"budget_s\": null,\n"
  | Some s -> Printf.bprintf b "  \"budget_s\": %.3f,\n" s);
  Printf.bprintf b "  \"total_wall_s\": %.4f,\n" report.total_wall_s;
  Printf.bprintf b
    "  \"cache\": { \"entries\": %d, \"hits\": %d, \"misses\": %d },\n"
    report.cache.entries report.cache.hits report.cache.misses;
  Printf.bprintf b "  \"queries\": [\n";
  let n = List.length report.query_reports in
  List.iteri
    (fun i qr ->
      let r = qr.result in
      let s = r.Verify.milp_stats in
      Printf.bprintf b "    {\n";
      Printf.bprintf b "      \"label\": %S,\n" qr.query.label;
      Printf.bprintf b "      \"verdict\": %S,\n" (verdict_word r.Verify.verdict);
      Printf.bprintf b "      \"detail\": %S,\n"
        (verdict_detail r.Verify.verdict);
      Printf.bprintf b "      \"from_cache\": %b,\n" qr.from_cache;
      Printf.bprintf b "      \"wall_s\": %.4f,\n" r.Verify.wall_time_s;
      Printf.bprintf b "      \"encoding\": %S,\n" r.Verify.encoding;
      Printf.bprintf b "      \"num_binaries\": %d,\n" r.Verify.num_binaries;
      Printf.bprintf b
        "      \"milp\": { \"nodes\": %d, \"lps\": %d, \
         \"incumbent_updates\": %d, \"steals\": %d, \
         \"max_queue_depth\": %d, \"lp_time_s\": %.4f, \
         \"pivots\": %d, \"warm_starts\": %d, \"cold_starts\": %d }\n"
        s.Milp.nodes_explored s.Milp.lp_solved s.Milp.incumbent_updates
        s.Milp.steals s.Milp.max_queue_depth s.Milp.lp_time_s s.Milp.pivots
        s.Milp.warm_starts s.Milp.cold_starts;
      Printf.bprintf b "    }%s\n" (if i = n - 1 then "" else ",")
    )
    report.query_reports;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let save_json report ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json report))
