module Network = Dpv_nn.Network
module Init = Dpv_nn.Init
module Dataset = Dpv_train.Dataset
module Trainer = Dpv_train.Trainer
module Optimizer = Dpv_train.Optimizer
module Loss = Dpv_train.Loss
module Vec = Dpv_tensor.Vec

type t = { head : Network.t; cut : int; property_name : string }

type train_report = {
  train_accuracy : float;
  final_loss : float;
  epochs_run : int;
  perfect_on_train : bool;
}

type train_config = {
  hidden : int list;
  epochs : int;
  learning_rate : float;
  batch_size : int;
  target_accuracy : float;
}

let default_train_config =
  {
    hidden = [ 16 ];
    epochs = 600;
    learning_rate = 5e-3;
    batch_size = 32;
    target_accuracy = 1.0;
  }

let features ~perception ~cut images =
  Array.map (fun image -> Network.forward_upto perception ~cut image) images

let train_on_features ?(config = default_train_config) ~rng ~cut ~property_name
    ~features:feats ~labels () =
  if Array.length feats <> Array.length labels then
    invalid_arg "Characterizer.train_on_features: length mismatch";
  if Array.length feats = 0 then
    invalid_arg "Characterizer.train_on_features: empty";
  let head =
    Init.mlp rng ~input_dim:(Vec.dim feats.(0)) ~hidden:config.hidden
      ~output_dim:1
  in
  let dataset =
    Dataset.create ~inputs:feats ~targets:(Array.map (fun c -> [| c |]) labels)
  in
  let optimizer = Optimizer.adam ~lr:config.learning_rate head in
  let trainer_config =
    {
      Trainer.default_config with
      epochs = 1;
      batch_size = config.batch_size;
      loss = Loss.Bce_with_logits;
    }
  in
  (* One Trainer epoch per outer step, so the target-accuracy early stop
     can check between epochs. *)
  let rec run epoch last_loss =
    if epoch >= config.epochs then (epoch, last_loss)
    else begin
      let history = Trainer.fit ~rng trainer_config optimizer head dataset in
      let loss = history.Trainer.epoch_losses.(0) in
      let acc = Trainer.binary_accuracy head dataset in
      if acc >= config.target_accuracy then (epoch + 1, loss)
      else run (epoch + 1) loss
    end
  in
  let epochs_run, final_loss = run 0 infinity in
  let train_accuracy = Trainer.binary_accuracy head dataset in
  ( { head; cut; property_name },
    {
      train_accuracy;
      final_loss;
      epochs_run;
      perfect_on_train = train_accuracy >= 1.0;
    } )

let train ?config ~rng ~perception ~cut ~property_name ~images ~labels () =
  let feats = features ~perception ~cut images in
  train_on_features ?config ~rng ~cut ~property_name ~features:feats ~labels ()

let logit t feature = (Network.forward t.head feature).(0)
let decide t feature = logit t feature >= 0.0

let decide_image t ~perception image =
  decide t (Network.forward_upto perception ~cut:t.cut image)

let accuracy t ~perception ~images ~labels =
  if Array.length images <> Array.length labels then
    invalid_arg "Characterizer.accuracy: length mismatch";
  let correct = ref 0 in
  Array.iteri
    (fun i image ->
      let predicted = if decide_image t ~perception image then 1.0 else 0.0 in
      if predicted = labels.(i) then incr correct)
    images;
  float_of_int !correct /. float_of_int (Array.length images)
