module Lp = Dpv_linprog.Lp
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Box_domain = Dpv_absint.Box_domain
module Interval = Dpv_absint.Interval
module Mat = Dpv_tensor.Mat
module Linexpr = Dpv_spec.Linexpr
module Risk = Dpv_spec.Risk
module Polyhedron = Dpv_monitor.Polyhedron

type t = {
  model : Lp.t;
  feature_vars : Lp.var array;
  output_vars : Lp.var array;
  logit_var : Lp.var;
  num_binaries : int;
  num_fixed_relus : int;
  head_relu_vars : (int * Lp.var option array) list;
}

let lp_bound x = if Float.is_finite x then Some x else None

(* Fresh continuous variable for a neuron with interval bounds; infinite
   sides become absent LP bounds. *)
let neuron_var_opt model ~name (iv : Interval.t) =
  let m, v =
    match (lp_bound iv.lo, lp_bound iv.hi) with
    | Some lo, Some up -> Lp.add_var ~name ~lo ~up model
    | Some lo, None -> Lp.add_var ~name ~lo model
    | None, Some up -> Lp.add_var ~name ~up model
    | None, None -> Lp.add_var ~name model
  in
  (m, v)

let encode_dense model ~name ~weights ~bias ~in_vars ~out_bounds =
  let rows = Mat.rows weights in
  let model = ref model in
  let out_vars =
    Array.init rows (fun i ->
        let m, v =
          neuron_var_opt !model ~name:(Printf.sprintf "%s_y%d" name i)
            out_bounds.(i)
        in
        model := m;
        v)
  in
  for i = 0 to rows - 1 do
    let terms =
      (1.0, out_vars.(i))
      :: List.filter_map
           (fun j ->
             let w = Mat.get weights i j in
             if w = 0.0 then None else Some (-.w, in_vars.(j)))
           (List.init (Mat.cols weights) (fun j -> j))
    in
    model :=
      Lp.add_constraint ~name:(Printf.sprintf "%s_eq%d" name i) !model terms
        Lp.Eq bias.(i)
  done;
  (!model, out_vars)

let encode_batch_norm model ~name ~scale ~shift ~in_vars ~out_bounds =
  let d = Array.length in_vars in
  let model = ref model in
  let out_vars =
    Array.init d (fun i ->
        let m, v =
          neuron_var_opt !model ~name:(Printf.sprintf "%s_y%d" name i)
            out_bounds.(i)
        in
        model := m;
        v)
  in
  for i = 0 to d - 1 do
    model :=
      Lp.add_constraint ~name:(Printf.sprintf "%s_eq%d" name i) !model
        [ (1.0, out_vars.(i)); (-.scale.(i), in_vars.(i)) ]
        Lp.Eq shift.(i)
  done;
  (!model, out_vars)

(* Big-M ReLU on one neuron with pre-activation bounds [l0, h0]:
     stable active   (l0 >= 0): y = x
     stable inactive (h0 <= 0): y = 0
     crossing: binary d with
       y >= x, y >= 0, y <= x - l0*(1 - d), y <= h0*d.               *)
let encode_relu model ~name ~in_vars ~in_bounds =
  let d = Array.length in_vars in
  let model = ref model in
  let binaries = ref 0 in
  let fixed = ref 0 in
  (* Per-neuron phase indicator, [None] for bound-stable neurons — the
     map the abstract-interpretation guide uses to tie LP binaries back
     to network neurons. *)
  let deltas = Array.make d None in
  let out_vars =
    Array.init d (fun i ->
        let { Interval.lo = l0; hi = h0 } = in_bounds.(i) in
        if l0 >= 0.0 then begin
          incr fixed;
          in_vars.(i)
        end
        else if h0 <= 0.0 then begin
          incr fixed;
          let m, v =
            Lp.add_var ~name:(Printf.sprintf "%s_y%d" name i) ~lo:0.0 ~up:0.0
              !model
          in
          model := m;
          v
        end
        else begin
          if not (Float.is_finite l0 && Float.is_finite h0) then
            invalid_arg
              (Printf.sprintf
                 "Encode: ReLU %s_%d crosses zero with unbounded \
                  pre-activation [%g, %g]; a bounded region S is required"
                 name i l0 h0);
          incr binaries;
          let m, y =
            Lp.add_var ~name:(Printf.sprintf "%s_y%d" name i) ~lo:0.0 ~up:h0
              !model
          in
          let m, delta =
            Lp.add_var ~name:(Printf.sprintf "%s_d%d" name i) ~kind:Lp.Binary m
          in
          deltas.(i) <- Some delta;
          let x = in_vars.(i) in
          let m =
            Lp.add_constraint ~name:(Printf.sprintf "%s_ge%d" name i) m
              [ (1.0, y); (-1.0, x) ]
              Lp.Ge 0.0
          in
          (* y <= x - l0 + l0*d  <=>  y - x - l0*d <= -l0 *)
          let m =
            Lp.add_constraint ~name:(Printf.sprintf "%s_ub1_%d" name i) m
              [ (1.0, y); (-1.0, x); (-.l0, delta) ]
              Lp.Le (-.l0)
          in
          let m =
            Lp.add_constraint ~name:(Printf.sprintf "%s_ub2_%d" name i) m
              [ (1.0, y); (-.h0, delta) ]
              Lp.Le 0.0
          in
          model := m;
          y
        end)
  in
  (!model, out_vars, deltas, !binaries, !fixed)

let encode_network model ~net ~input_vars ~input_box ~name =
  if Array.length input_vars <> Network.input_dim net then
    invalid_arg "Encode.encode_network: input variable count mismatch";
  let bounds = Box_domain.propagate_all net input_box in
  let model = ref model in
  let vars = ref input_vars in
  let binaries = ref 0 in
  let fixed = ref 0 in
  let relu_vars = ref [] in
  List.iteri
    (fun idx layer ->
      let lname = Printf.sprintf "%s_l%d" name (idx + 1) in
      let layer =
        (* Convolutions are affine: encode their dense materialization. *)
        match layer with Layer.Conv2d _ -> Layer.lower_to_dense layer | _ -> layer
      in
      match layer with
      | Layer.Conv2d _ -> assert false
      | Layer.Dense { weights; bias } ->
          let m, out =
            encode_dense !model ~name:lname ~weights ~bias ~in_vars:!vars
              ~out_bounds:bounds.(idx + 1)
          in
          model := m;
          vars := out
      | Layer.Batch_norm _ ->
          let scale, shift =
            match Layer.batch_norm_scale_shift layer with
            | Some p -> p
            | None -> assert false
          in
          let m, out =
            encode_batch_norm !model ~name:lname ~scale ~shift ~in_vars:!vars
              ~out_bounds:bounds.(idx + 1)
          in
          model := m;
          vars := out
      | Layer.Relu ->
          let m, out, deltas, b, f =
            encode_relu !model ~name:lname ~in_vars:!vars
              ~in_bounds:bounds.(idx)
          in
          model := m;
          vars := out;
          relu_vars := (idx + 1, deltas) :: !relu_vars;
          binaries := !binaries + b;
          fixed := !fixed + f
      | Layer.Sigmoid | Layer.Tanh ->
          invalid_arg
            (Printf.sprintf
               "Encode: layer %s is not piecewise-linear; cannot encode"
               (Layer.name layer)))
    (Network.layers net);
  (!model, !vars, List.rev !relu_vars, !binaries, !fixed)

let risk_constraints model ~psi ~output_vars =
  List.fold_left
    (fun model (ineq : Risk.inequality) ->
      let terms =
        List.map
          (fun (c, i) ->
            if i >= Array.length output_vars then
              invalid_arg "Encode: psi mentions an output index out of range";
            (c, output_vars.(i)))
          (Linexpr.normalized_terms ineq.Risk.expr)
      in
      let const = ineq.Risk.expr.Linexpr.const in
      let rel = match ineq.Risk.rel with `Le -> Lp.Le | `Ge -> Lp.Ge in
      Lp.add_constraint ~name:"psi" model terms rel (ineq.Risk.bound -. const))
    model psi.Risk.inequalities

(* The feature layer + suffix part of the encoding depends only on
   (suffix, feature_box, extra_faces) — not on the characterizer head or
   psi.  [Lp.t] is persistent, so this prefix can be built once and
   completed into many per-query models without copying: a campaign
   caches one [shared] per distinct (cut, bounds) key. *)
type shared = {
  suffix : Network.t;
  feature_box : Box_domain.t;
  faces : Polyhedron.halfspace list;
  base_model : Lp.t;
  shared_feature_vars : Lp.var array;
  shared_output_vars : Lp.var array;
  suffix_relu_vars : (int * Lp.var option array) list;
  suffix_binaries : int;
  suffix_fixed_relus : int;
}

let build_shared ~suffix ~feature_box ?(extra_faces = []) () =
  if Array.length feature_box <> Network.input_dim suffix then
    invalid_arg "Encode.build_shared: feature box dimension mismatch";
  let model = ref (Lp.create ()) in
  let feature_vars =
    Array.init (Array.length feature_box) (fun i ->
        let m, v =
          neuron_var_opt !model ~name:(Printf.sprintf "n_%d" i) feature_box.(i)
        in
        model := m;
        v)
  in
  (* Octagon faces over the shared feature variables. *)
  List.iter
    (fun (f : Polyhedron.halfspace) ->
      let terms =
        List.map (fun (i, c) -> (c, feature_vars.(i))) f.Polyhedron.direction
      in
      model := Lp.add_constraint ~name:"face" !model terms Lp.Le f.Polyhedron.bound)
    extra_faces;
  let m, output_vars, relu_vars, b1, f1 =
    encode_network !model ~net:suffix ~input_vars:feature_vars
      ~input_box:feature_box ~name:"g"
  in
  {
    suffix;
    feature_box;
    faces = extra_faces;
    base_model = m;
    shared_feature_vars = feature_vars;
    shared_output_vars = output_vars;
    suffix_relu_vars = relu_vars;
    suffix_binaries = b1;
    suffix_fixed_relus = f1;
  }

let complete shared ~head ?(characterizer_margin = 0.0) ?psi () =
  if Network.input_dim shared.suffix <> Network.input_dim head then
    invalid_arg "Encode.complete: suffix/head input dimensions differ";
  if Network.output_dim head <> 1 then
    invalid_arg "Encode.complete: characterizer head must output a single logit";
  let m, head_out, head_relu_vars, b2, f2 =
    encode_network shared.base_model ~net:head
      ~input_vars:shared.shared_feature_vars ~input_box:shared.feature_box
      ~name:"h"
  in
  let logit_var = head_out.(0) in
  let m =
    match psi with
    | Some psi -> risk_constraints m ~psi ~output_vars:shared.shared_output_vars
    | None -> m
  in
  let m =
    Lp.add_constraint ~name:"phi_holds" m
      [ (1.0, logit_var) ]
      Lp.Ge characterizer_margin
  in
  {
    model = m;
    feature_vars = shared.shared_feature_vars;
    output_vars = shared.shared_output_vars;
    logit_var;
    num_binaries = shared.suffix_binaries + b2;
    num_fixed_relus = shared.suffix_fixed_relus + f2;
    head_relu_vars;
  }

let build ~suffix ~head ~feature_box ?(extra_faces = [])
    ?(characterizer_margin = 0.0) ?psi () =
  let shared = build_shared ~suffix ~feature_box ~extra_faces () in
  complete shared ~head ~characterizer_margin ?psi ()

let suffix_of_shared shared = shared.suffix
let feature_box_of_shared shared = shared.feature_box
let suffix_relu_vars_of_shared shared = shared.suffix_relu_vars

(* Rebuild the prefix over a sub-box of the original feature region —
   the unit of work under input bisection.  The octagon faces still
   apply (the sub-box only shrinks S), so they are carried over. *)
let restrict_shared shared ~feature_box =
  if Array.length feature_box <> Array.length shared.feature_box then
    invalid_arg "Encode.restrict_shared: feature box dimension mismatch";
  build_shared ~suffix:shared.suffix ~feature_box ~extra_faces:shared.faces ()

let set_output_objective t ~sense expr =
  let terms =
    List.map
      (fun (c, i) ->
        if i >= Array.length t.output_vars then
          invalid_arg "Encode.set_output_objective: output index out of range";
        (c, t.output_vars.(i)))
      (Linexpr.normalized_terms expr)
  in
  { t with model = Lp.set_objective t.model sense terms }

let size_description t =
  Printf.sprintf "%d vars (%d binary), %d constraints, %d relus fixed by bounds"
    (Lp.num_vars t.model) t.num_binaries
    (Lp.num_constraints t.model)
    t.num_fixed_relus
