module Milp = Dpv_linprog.Milp
module Clock = Dpv_linprog.Clock
module Simplex = Dpv_linprog.Simplex
module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

type telemetry = {
  attempts : int;
  dense_retry : bool;
  deadline_retry : bool;
}

let clean = { attempts = 1; dense_retry = false; deadline_retry = false }
let retried t = t.attempts > 1
let m_dense = Metrics.counter "retry.dense"
let m_deadline = Metrics.counter "retry.deadline"

(* Each ladder attempt is one span; the rung argument says why it ran. *)
let attempt ~rung f opts =
  Trace.with_span ~args:[ ("rung", rung) ] "retry.attempt" (fun () -> f opts)

let solve ~options ~deadline f =
  (* Rung 1 — numerical trouble.  The revised engine already rescues
     itself with an internal dense fallback per node; an exception that
     still escapes means the handle state is beyond local repair, so
     the whole query is re-solved with [lp_dense] (no incremental basis
     state at all).  A second escape propagates: the campaign records
     the query as crashed. *)
  let result, telemetry =
    match attempt ~rung:"first" f options with
    | r -> (r, clean)
    | exception Simplex.Numerical_trouble _ ->
        Metrics.incr m_dense 1;
        let opts =
          {
            options with
            Milp.lp_dense = true;
            time_limit_s = Clock.carve deadline options.Milp.time_limit_s;
          }
        in
        ( attempt ~rung:"dense" f opts,
          { attempts = 2; dense_retry = true; deadline_retry = false } )
  in
  (* Rung 2 — deadline.  [Unknown "deadline exceeded"] is a scheduling
     artifact, not a fact about the query; if the surrounding campaign
     deadline still has budget, spend it on one more attempt whose
     per-query limit is re-carved from what actually remains.  With no
     campaign deadline there is nothing to re-carve — the same
     per-query limit would just expire again — so no retry.  (The
     campaign solve path does no OBBT tightening, so there is no
     tightening pass to shed on this rung; the retry is purely a
     bigger time slice.) *)
  match result.Verify.verdict with
  | Verify.Unknown reason
    when String.equal reason Verify.deadline_reason
         && (not (Clock.expired deadline))
         && Clock.remaining_s deadline <> None ->
      Metrics.incr m_deadline 1;
      let opts =
        {
          options with
          Milp.lp_dense = telemetry.dense_retry;
          time_limit_s = Clock.remaining_s deadline;
        }
      in
      ( attempt ~rung:"deadline" f opts,
        {
          telemetry with
          attempts = telemetry.attempts + 1;
          deadline_retry = true;
        } )
  | _ -> (result, telemetry)
