(** Layer-wise incremental abstraction refinement.

    The paper's concluding remark: "our approach of looking at
    close-to-output layers can be viewed as an abstraction which can, in
    future work, lead to layer-wise incremental abstraction-refinement
    techniques".  This module implements that loop:

    - start at the deepest cut (coarsest abstraction — everything before
      it is replaced by the region S);
    - if verification returns a witness, the witness may be *spurious*
      (a feature vector no real input can produce), so move the cut one
      activation layer toward the input — a strictly finer abstraction —
      retrain the characterizer there and re-verify;
    - stop on a proof, on exhaustion of the cut candidates, or on a
      node-limit blowup (the scalability wall). *)

type step = {
  cut : int;
  case : Workflow.case_report;
}

type outcome =
  | Proved of step list
      (** the last step is a [Safe] verdict; earlier steps are the failed
          coarser attempts *)
  | Refuted of step list
      (** every refinement level produced a (feature-level) witness; the
          last step carries the finest one *)
  | Exhausted of step list
      (** ended on an [Unknown] (node limit / numerical) verdict *)

val steps : outcome -> step list

val run :
  ?milp_options:Dpv_linprog.Milp.options ->
  ?characterizer_config:Characterizer.train_config ->
  ?max_steps:int ->
  Workflow.prepared ->
  property:Dpv_scenario.Scene.t Dpv_spec.Property.t ->
  psi:Dpv_spec.Risk.t ->
  strategy:Workflow.strategy ->
  outcome
(** Walks [Workflow.cut_options] from the deepest cut toward the input,
    at most [max_steps] levels (default: all of them). *)

val pp_outcome : Format.formatter -> outcome -> unit
