module Lp = Dpv_linprog.Lp
module Milp = Dpv_linprog.Milp
module Milp_par = Dpv_linprog.Milp_par
module Clock = Dpv_linprog.Clock
module Network = Dpv_nn.Network
module Layer = Dpv_nn.Layer
module Box_domain = Dpv_absint.Box_domain
module Propagate = Dpv_absint.Propagate
module Box_monitor = Dpv_monitor.Box_monitor
module Polyhedron = Dpv_monitor.Polyhedron
module Risk = Dpv_spec.Risk
module Vec = Dpv_tensor.Vec
module Mat = Dpv_tensor.Mat
module Trace = Dpv_obs.Trace

type bounds_spec =
  | Static_bounds of Propagate.domain * Box_domain.t
  | Data_box of Vec.t array
  | Data_octagon of Vec.t array
  | Feature_box of Box_domain.t

type verdict =
  | Safe of { conditional : bool }
  | Unsafe of { features : Vec.t; output : Vec.t; logit : float }
  | Unknown of string

type result = {
  verdict : verdict;
  milp_stats : Milp.stats;
  encoding : string;
  num_binaries : int;
  wall_time_s : float;
}

let is_conditional = function
  | Data_box _ | Data_octagon _ -> true
  | Static_bounds _ | Feature_box _ -> false

(* Resolve the bounds specification into a feature box plus optional
   extra polyhedron faces over the feature variables. *)
let resolve_bounds ~perception ~cut spec =
  let kind =
    match spec with
    | Static_bounds _ -> "static"
    | Data_box _ -> "data-box"
    | Data_octagon _ -> "data-octagon"
    | Feature_box _ -> "feature-box"
  in
  Trace.with_span ~args:[ ("spec", kind) ] "verify.resolve-bounds" @@ fun () ->
  match spec with
  | Static_bounds (domain, input_box) ->
      (Propagate.layer_bounds domain perception ~input_box ~cut, [])
  | Data_box points -> (Box_monitor.to_box (Box_monitor.fit points), [])
  | Data_octagon points ->
      (* Pruning box-implied faces keeps the LP rows proportional to the
         genuinely correlated coordinate pairs. *)
      let poly = Polyhedron.prune_redundant (Polyhedron.fit_octagon points) in
      (Polyhedron.bounding_box poly, Polyhedron.halfspaces poly)
  | Feature_box box -> (box, [])

let default_milp_options = { Milp.default_options with find_first = true }

(* The one Unknown reason that is a scheduling artifact rather than a
   verdict about the query: the retry ladder keys on it. *)
let deadline_reason = "deadline exceeded"

let concrete_tol = 1e-5

(* Interval of a linear expression over an output box. *)
let expr_bounds expr box =
  let open Dpv_absint.Interval in
  List.fold_left
    (fun acc (c, i) -> add acc (scale c box.(i)))
    (point expr.Dpv_spec.Linexpr.const)
    (Dpv_spec.Linexpr.normalized_terms expr)

let run_query ?(milp_options = default_milp_options) ?(absint = false)
    ?absint_seed ~characterizer_margin ~shared ~head ~psi ~conditional () =
  Trace.with_span "verify.query" @@ fun () ->
  let started = Clock.now_s () in
  let suffix = Encode.suffix_of_shared shared in
  let encoding = Encode.complete shared ~head ~characterizer_margin ~psi () in
  let milp_options =
    if not absint then milp_options
    else
      let guide =
        Absguide.factory ?seed:absint_seed ~suffix ~head
          ~feature_box:(Encode.feature_box_of_shared shared)
          ~suffix_relus:(Encode.suffix_relu_vars_of_shared shared)
          ~head_relus:encoding.Encode.head_relu_vars ~psi ~characterizer_margin
          ()
      in
      { milp_options with Milp.absint = Some guide }
  in
  let milp_result, milp_stats =
    Milp_par.solve_with_stats ~options:milp_options encoding.Encode.model
  in
  let wall_time_s = Clock.now_s () -. started in
  let verdict =
    match milp_result with
    | Milp.Infeasible -> Safe { conditional }
    | Milp.Node_limit -> Unknown "branch-and-bound node limit reached"
    | Milp.Timeout -> Unknown deadline_reason
    | Milp.Unbounded -> Unknown "LP relaxation unbounded (missing bounds)"
    | Milp.Optimal { solution; _ } | Milp.Feasible { solution; _ } ->
        (* A [Feasible] incumbent (find_first, or a truncated search that
           still found a point) is as good as [Optimal] here: any
           integer-feasible point is a violation candidate, and it is
           re-validated concretely below before being reported. *)
        let features =
          Array.map (fun v -> solution.(v)) encoding.Encode.feature_vars
        in
        (* Re-validate the witness with concrete execution: the MILP works
           over the encoded constraints, the report must hold on the real
           network. *)
        let output = Network.forward suffix features in
        let logit = (Network.forward head features).(0) in
        if
          Risk.holds ~tol:concrete_tol psi output
          && logit >= characterizer_margin -. concrete_tol
        then Unsafe { features; output; logit }
        else
          Unknown
            (Printf.sprintf
               "MILP witness failed concrete validation (logit %g, psi %s)"
               logit
               (if Risk.holds ~tol:concrete_tol psi output then "holds"
                else "violated"))
  in
  {
    verdict;
    milp_stats;
    encoding = Encode.size_description encoding;
    num_binaries = encoding.Encode.num_binaries;
    wall_time_s;
  }

(* ---------------- input bisection ---------------- *)

type bisect_options = { max_depth : int; subbox_time_limit_s : float option }

let default_bisect_options = { max_depth = 2; subbox_time_limit_s = None }

module Metrics = Dpv_obs.Metrics

let m_subboxes = Metrics.counter "bisect.subboxes"
let m_discharged = Metrics.counter "bisect.discharged"

(* Leaf discharge: the sub-box is safe when DeepPoly alone separates it
   from the query — [verify_incomplete]'s conditions, applied to the
   sub-box instead of the whole region.  The propagation runs once,
   through the resumable engine (bit-identical to the immutable one);
   a leaf that survives keeps it as [Some seed], which the MILP guide
   later adopts as its root state instead of propagating the same
   restricted box a second time. *)
let subbox_discharged ~suffix ~head ~psi ~characterizer_margin box =
  let sd = Absguide.root_propagation ~suffix ~head ~feature_box:box in
  let output_box = Absguide.seed_output_box sd in
  let logit_box = Absguide.seed_logit_box sd in
  let discharged =
    logit_box.Dpv_absint.Interval.hi < characterizer_margin
    || List.exists
         (fun (ineq : Risk.inequality) ->
           let iv = expr_bounds ineq.Risk.expr output_box in
           match ineq.Risk.rel with
           | `Le -> iv.Dpv_absint.Interval.lo > ineq.Risk.bound
           | `Ge -> iv.Dpv_absint.Interval.hi < ineq.Risk.bound)
         psi.Risk.inequalities
  in
  if discharged then None else Some sd

(* Split at the midpoint of the widest dimension; [None] when the box
   is degenerate (a point, or midpoint rounding cannot make progress). *)
let split_box (box : Box_domain.t) =
  let d = Array.length box in
  let widest = ref 0 and w = ref neg_infinity in
  for i = 0 to d - 1 do
    let wi = Dpv_absint.Interval.width box.(i) in
    if wi > !w then begin
      w := wi;
      widest := i
    end
  done;
  if d = 0 || !w <= 0.0 then None
  else begin
    let i = !widest in
    let { Dpv_absint.Interval.lo; hi } = box.(i) in
    let mid = 0.5 *. (lo +. hi) in
    if (not (Float.is_finite mid)) || mid <= lo || mid >= hi then None
    else begin
      let a = Array.copy box and b = Array.copy box in
      a.(i) <- Dpv_absint.Interval.make ~lo ~hi:mid;
      b.(i) <- Dpv_absint.Interval.make ~lo:mid ~hi;
      Some (a, b)
    end
  end

type bisect_plan = {
  survivors : (Box_domain.t * Absguide.seed) list;
  discharged : int;
}

let plan_total p = p.discharged + List.length p.survivors

(* Recursively split the feature box, discharging cheap sub-boxes with
   DeepPoly as they appear; whatever survives to [max_depth] (or cannot
   be split further) goes to the MILP, carrying the propagation that
   failed to discharge it as the guide's root seed.  The union of
   discharged and surviving sub-boxes covers the input box exactly, so
   any verdict merge over the plan is a verdict about the whole
   region. *)
let bisect_plan ~max_depth ~suffix ~head ~psi ~characterizer_margin
    feature_box =
  let discharged = ref 0 in
  let survivors = ref [] in
  let keep box sd = survivors := (box, sd) :: !survivors in
  let rec go depth box =
    match subbox_discharged ~suffix ~head ~psi ~characterizer_margin box with
    | None -> incr discharged
    | Some sd ->
        if depth >= max_depth then keep box sd
        else (
          match split_box box with
          | None -> keep box sd
          | Some (a, b) ->
              go (depth + 1) a;
              go (depth + 1) b)
  in
  go 0 feature_box;
  let plan = { survivors = List.rev !survivors; discharged = !discharged } in
  Metrics.incr m_subboxes (plan_total plan);
  Metrics.incr m_discharged plan.discharged;
  plan

(* Sound verdict merge across a plan's sub-boxes: any (already
   concretely re-validated) UNSAFE witness decides the query; Safe
   requires every sub-box Safe or discharged; anything else stays
   Unknown.  [unsolved] counts survivors that never ran (budget). *)
let merge_bisected ~conditional ~discharged ~total_subboxes ~wall_time_s
    ~unsolved results =
  let stats =
    List.fold_left
      (fun acc r -> Milp.add_stats acc r.milp_stats)
      Milp.empty_stats results
  in
  let num_binaries =
    List.fold_left (fun acc r -> max acc r.num_binaries) 0 results
  in
  let verdict =
    match
      List.find_opt
        (fun r -> match r.verdict with Unsafe _ -> true | _ -> false)
        results
    with
    | Some r -> r.verdict
    | None ->
        let unknowns =
          List.filter_map
            (fun r ->
              match r.verdict with Unknown reason -> Some reason | _ -> None)
            results
        in
        if unsolved > 0 then
          Unknown
            (Printf.sprintf "%d of %d sub-boxes not solved (budget exhausted)"
               unsolved total_subboxes)
        else if List.exists (fun reason -> reason = deadline_reason) unknowns
        then
          (* Keep the exact deadline reason: the retry ladder keys on it. *)
          Unknown deadline_reason
        else (
          match unknowns with
          | [] -> Safe { conditional }
          | [ reason ] -> Unknown ("sub-box inconclusive: " ^ reason)
          | reason :: _ ->
              Unknown
                (Printf.sprintf "%d sub-boxes inconclusive (first: %s)"
                   (List.length unknowns) reason))
  in
  {
    verdict;
    milp_stats = stats;
    encoding =
      Printf.sprintf
        "bisection: %d sub-boxes (%d discharged by propagation, %d to MILP)"
        total_subboxes discharged
        (total_subboxes - discharged);
    num_binaries;
    wall_time_s;
  }

let verify ?milp_options ?(characterizer_margin = 0.0) ?(tighten = false)
    ?(absint = false) ?bisect ~perception ~characterizer ~psi ~bounds () =
  let started = Clock.now_s () in
  let cut = characterizer.Characterizer.cut in
  let suffix = Network.suffix perception ~cut in
  let head = characterizer.Characterizer.head in
  let feature_box, extra_faces = resolve_bounds ~perception ~cut bounds in
  let conditional = is_conditional bounds in
  (* One deadline covers tightening *and* the MILP: [time_limit_s] is
     the budget for the whole call, not per phase. *)
  let time_limit_s = Option.bind milp_options (fun o -> o.Milp.time_limit_s) in
  let deadline = Clock.deadline_after time_limit_s in
  (* Build the shared prefix on the incoming box first: tightening reuses
     it (instead of re-encoding the suffix), and when OBBT ends up not
     shrinking anything the MILP reuses it too. *)
  let shared = Encode.build_shared ~suffix ~feature_box ~extra_faces () in
  let shared =
    if tighten then begin
      let tightened_box =
        fst
          (Tighten.feature_box ~deadline ~shared ~suffix ~head ~feature_box
             ~extra_faces ~characterizer_margin ())
      in
      if tightened_box = feature_box then shared
      else
        Encode.build_shared ~suffix ~feature_box:tightened_box ~extra_faces ()
    end
    else shared
  in
  match bisect with
  | None ->
      let milp_options =
        Option.map
          (fun o ->
            { o with Milp.time_limit_s = Clock.carve deadline o.Milp.time_limit_s })
          milp_options
      in
      run_query ?milp_options ~absint ~characterizer_margin ~shared ~head ~psi
        ~conditional ()
  | Some b ->
      let box = Encode.feature_box_of_shared shared in
      let plan =
        bisect_plan ~max_depth:b.max_depth ~suffix ~head ~psi
          ~characterizer_margin box
      in
      let sub_options () =
        let o = Option.value milp_options ~default:default_milp_options in
        let budget = Clock.carve deadline o.Milp.time_limit_s in
        let budget =
          match (budget, b.subbox_time_limit_s) with
          | Some t, Some s -> Some (Float.min t s)
          | None, s -> s
          | t, None -> t
        in
        { o with Milp.time_limit_s = budget }
      in
      let results = ref [] in
      let unsafe_found = ref false in
      List.iter
        (fun (sub, sd) ->
          (* A validated witness settles the whole query: later sub-boxes
             cannot change the verdict, so skip their MILPs. *)
          if not !unsafe_found then begin
            let sub_shared = Encode.restrict_shared shared ~feature_box:sub in
            let r =
              run_query ~milp_options:(sub_options ()) ~absint ~absint_seed:sd
                ~characterizer_margin ~shared:sub_shared ~head ~psi
                ~conditional ()
            in
            results := r :: !results;
            match r.verdict with
            | Unsafe _ -> unsafe_found := true
            | _ -> ()
          end)
        plan.survivors;
      merge_bisected ~conditional ~discharged:plan.discharged
        ~total_subboxes:(plan_total plan)
        ~wall_time_s:(Clock.now_s () -. started)
        ~unsolved:0 (List.rev !results)

let verify_incomplete ?(domain = Propagate.Deeppoly)
    ?(characterizer_margin = 0.0) ~perception ~characterizer ~psi ~bounds () =
  let started = Clock.now_s () in
  let cut = characterizer.Characterizer.cut in
  let suffix = Network.suffix perception ~cut in
  let head = characterizer.Characterizer.head in
  let feature_box, _faces = resolve_bounds ~perception ~cut bounds in
  let conditional = is_conditional bounds in
  let output_box = Propagate.output_bounds domain suffix ~input_box:feature_box in
  let logit_box =
    (Propagate.output_bounds domain head ~input_box:feature_box).(0)
  in
  let characterizer_mute =
    logit_box.Dpv_absint.Interval.hi < characterizer_margin
  in
  let some_inequality_unreachable =
    List.exists
      (fun (ineq : Risk.inequality) ->
        let iv = expr_bounds ineq.Risk.expr output_box in
        match ineq.Risk.rel with
        | `Le -> iv.Dpv_absint.Interval.lo > ineq.Risk.bound
        | `Ge -> iv.Dpv_absint.Interval.hi < ineq.Risk.bound)
      psi.Risk.inequalities
  in
  let verdict =
    if characterizer_mute then Safe { conditional }
    else if some_inequality_unreachable then Safe { conditional }
    else
      Unknown
        (Printf.sprintf
           "bound propagation (%s) cannot separate psi from the reachable \
            outputs"
           (Propagate.domain_name domain))
  in
  {
    verdict;
    milp_stats = Milp.empty_stats;
    encoding =
      Printf.sprintf "bound propagation over %d suffix + %d head layers"
        (Network.num_layers suffix) (Network.num_layers head);
    num_binaries = 0;
    wall_time_s = Clock.now_s () -. started;
  }

(* A head whose logit is the constant 1: "phi always holds". *)
let trivial_head ~dim =
  Network.create ~input_dim:dim
    [
      Layer.dense
        ~weights:(Mat.zeros ~rows:1 ~cols:dim)
        ~bias:[| 1.0 |];
    ]

let verify_without_characterizer ?milp_options ~perception ~cut ~psi ~bounds () =
  let suffix = Network.suffix perception ~cut in
  let feature_box, extra_faces = resolve_bounds ~perception ~cut bounds in
  let shared = Encode.build_shared ~suffix ~feature_box ~extra_faces () in
  run_query ?milp_options ~characterizer_margin:0.0 ~shared
    ~head:(trivial_head ~dim:(Network.input_dim suffix))
    ~psi ~conditional:(is_conditional bounds) ()

type optimum = {
  value : float;
  opt_features : Vec.t;
  opt_output : Vec.t;
  opt_logit : float;
}

let optimize_output ?(milp_options = { Milp.default_options with find_first = false })
    ?(characterizer_margin = 0.0) ~perception ~characterizer ~objective ~sense
    ~bounds () =
  let cut = characterizer.Characterizer.cut in
  let suffix = Network.suffix perception ~cut in
  let head = characterizer.Characterizer.head in
  let feature_box, extra_faces = resolve_bounds ~perception ~cut bounds in
  let encoding =
    Encode.build ~suffix ~head ~feature_box ~extra_faces ~characterizer_margin ()
  in
  let lp_sense =
    match sense with `Maximize -> Lp.Maximize | `Minimize -> Lp.Minimize
  in
  let encoding = Encode.set_output_objective encoding ~sense:lp_sense objective in
  match Milp_par.solve ~options:milp_options encoding.Encode.model with
  | Milp.Infeasible ->
      Error "characterizer never fires inside S (query infeasible)"
  | Milp.Unbounded -> Error "objective unbounded over S"
  | Milp.Node_limit -> Error "node limit reached"
  | Milp.Timeout -> Error "deadline exceeded"
  | Milp.Feasible { objective = value; _ } ->
      (* An incumbent from a truncated search bounds the frontier but
         does not locate it; claiming it as the optimum would overstate
         the proof. *)
      Error
        (Printf.sprintf
           "search truncated with incumbent %g: value is a bound on the \
            optimum, not the optimum (raise max_nodes or time_limit_s)"
           (value +. objective.Dpv_spec.Linexpr.const))
  | Milp.Optimal { objective = value; solution } ->
      let opt_features =
        Array.map (fun v -> solution.(v)) encoding.Encode.feature_vars
      in
      let opt_output = Network.forward suffix opt_features in
      let opt_logit = (Network.forward head opt_features).(0) in
      (* The Lp objective drops the expression's constant term. *)
      Ok
        {
          value = value +. objective.Dpv_spec.Linexpr.const;
          opt_features;
          opt_output;
          opt_logit;
        }

let pp_verdict fmt = function
  | Safe { conditional } ->
      Format.fprintf fmt "SAFE%s"
        (if conditional then " (conditional: monitor S~ at runtime)" else "")
  | Unsafe { logit; output; _ } ->
      Format.fprintf fmt "UNSAFE (witness: output %a, logit %.4f)"
        Vec.pp output logit
  | Unknown reason -> Format.fprintf fmt "UNKNOWN (%s)" reason
