type step = { cut : int; case : Workflow.case_report }

type outcome = Proved of step list | Refuted of step list | Exhausted of step list

let steps = function Proved s | Refuted s | Exhausted s -> s

let run ?milp_options ?characterizer_config ?max_steps prepared ~property ~psi
    ~strategy =
  let cuts =
    let all = Workflow.cut_options prepared.Workflow.setup in
    match max_steps with
    | Some n -> List.filteri (fun i _ -> i < n) all
    | None -> all
  in
  if cuts = [] then invalid_arg "Refine.run: no cut candidates";
  let rec go acc = function
    | [] -> Refuted (List.rev acc)
    | cut :: rest -> (
        let case =
          Workflow.run_case ?characterizer_config ?milp_options ~cut prepared
            ~property ~psi ~strategy
        in
        let acc = { cut; case } :: acc in
        match case.Workflow.result.Verify.verdict with
        | Verify.Safe _ -> Proved (List.rev acc)
        | Verify.Unknown _ -> Exhausted (List.rev acc)
        | Verify.Unsafe _ -> go acc rest)
  in
  go [] cuts

let pp_outcome fmt outcome =
  let label, trace =
    match outcome with
    | Proved s -> ("PROVED", s)
    | Refuted s -> ("REFUTED (finest abstraction still has a witness)", s)
    | Exhausted s -> ("EXHAUSTED (inconclusive)", s)
  in
  Format.fprintf fmt "@[<v>%s after %d refinement step(s)@," label
    (List.length trace);
  List.iter
    (fun { cut; case } ->
      Format.fprintf fmt "  cut %d: %a (%.2fs)@," cut Verify.pp_verdict
        case.Workflow.result.Verify.verdict
        case.Workflow.result.Verify.wall_time_s)
    trace;
  Format.fprintf fmt "@]"
