(** MILP encoding of the verification query (Lemma 1/2 + Definition 1).

    The query: does there exist a cut-layer activation [n_l] in the
    region [S] such that the perception suffix maps it into the risk
    condition [psi] while the characterizer head reports [phi]
    (logit >= margin)?  The encoding is the big-M formulation of ref [3]
    (Cheng et al., ATVA'17): affine layers become equalities, each
    ReLU whose pre-activation interval crosses zero gets one binary
    phase variable, with the per-neuron interval bounds — propagated
    from [S] with the box domain — serving as big-M constants.

    Only piecewise-linear layers (Dense, BatchNorm, ReLU) are encodable;
    sigmoid/tanh layers raise [Invalid_argument]. *)

type t = {
  model : Dpv_linprog.Lp.t;
  feature_vars : Dpv_linprog.Lp.var array;  (** the [n_l] variables *)
  output_vars : Dpv_linprog.Lp.var array;   (** perception suffix outputs *)
  logit_var : Dpv_linprog.Lp.var;           (** characterizer logit *)
  num_binaries : int;                       (** ReLU phase indicators *)
  num_fixed_relus : int;                    (** ReLUs resolved by bounds *)
  head_relu_vars : (int * Dpv_linprog.Lp.var option array) list;
      (** binary phase variables of the characterizer head, one entry
          per ReLU layer (1-based layer index; [None] per neuron whose
          phase was resolved by bounds) — the map {!Absguide} uses to
          tie LP binaries back to head neurons *)
}

val encode_network :
  Dpv_linprog.Lp.t ->
  net:Dpv_nn.Network.t ->
  input_vars:Dpv_linprog.Lp.var array ->
  input_box:Dpv_absint.Box_domain.t ->
  name:string ->
  Dpv_linprog.Lp.t
  * Dpv_linprog.Lp.var array
  * (int * Dpv_linprog.Lp.var option array) list
  * int
  * int
(** Lower-level piece: encode one network on existing input variables.
    Returns (model, output vars, per-ReLU-layer binary map, binaries
    added, fixed relus). *)

type shared
(** The query-independent prefix of an encoding: the feature-layer
    variables, the octagon faces, and the big-M encoding of the
    perception {e suffix} — everything determined by the
    [(cut, bounds)] pair alone.  Because {!Dpv_linprog.Lp.t} is a
    persistent structure, one [shared] value can be {!complete}d into
    any number of per-query models (different heads, margins, psi)
    without rebuilding or copying the suffix encoding. *)

val suffix_of_shared : shared -> Dpv_nn.Network.t
(** The suffix network captured at {!build_shared} time — callers replay
    witnesses through it without re-slicing the perception network. *)

val feature_box_of_shared : shared -> Dpv_absint.Box_domain.t
(** The feature box the prefix was built over. *)

val suffix_relu_vars_of_shared :
  shared -> (int * Dpv_linprog.Lp.var option array) list
(** Binary phase variables of the suffix, one entry per ReLU layer
    (1-based layer index; [None] per bound-stable neuron). *)

val restrict_shared : shared -> feature_box:Dpv_absint.Box_domain.t -> shared
(** Rebuild the prefix over a sub-box of the original feature region
    (same suffix, same octagon faces) — the unit of work under input
    bisection.  The sub-box must have the original dimension. *)

val build_shared :
  suffix:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  ?extra_faces:Dpv_monitor.Polyhedron.halfspace list ->
  unit ->
  shared
(** Build the reusable prefix: [feature_box] bounds the cut-layer input
    of [suffix]; [extra_faces] adds octagon polyhedron faces over the
    feature variables. *)

val complete :
  shared ->
  head:Dpv_nn.Network.t ->
  ?characterizer_margin:float ->
  ?psi:Dpv_spec.Risk.t ->
  unit ->
  t
(** Finish a query model on top of a prefix: encode the characterizer
    [head] on the shared feature variables, add the [psi] output
    constraints (omitting [psi] leaves the output unconstrained) and
    the "characterizer says phi" constraint (logit >= margin). *)

val build :
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  ?extra_faces:Dpv_monitor.Polyhedron.halfspace list ->
  ?characterizer_margin:float ->
  ?psi:Dpv_spec.Risk.t ->
  unit ->
  t
(** [build_shared] + [complete] in one step, for single queries.
    [suffix] and [head] must share their input dimension (the cut layer);
    [feature_box] bounds that shared input.  [characterizer_margin]
    (default 0) is the logit threshold for "characterizer says [phi]
    holds". *)

val set_output_objective :
  t -> sense:Dpv_linprog.Lp.objective_sense -> Dpv_spec.Linexpr.t -> t
(** Replace the (empty) objective with a linear expression over the
    suffix outputs — e.g. "maximize the suggested waypoint". *)

val size_description : t -> string
