(** MILP encoding of the verification query (Lemma 1/2 + Definition 1).

    The query: does there exist a cut-layer activation [n_l] in the
    region [S] such that the perception suffix maps it into the risk
    condition [psi] while the characterizer head reports [phi]
    (logit >= margin)?  The encoding is the big-M formulation of ref [3]
    (Cheng et al., ATVA'17): affine layers become equalities, each
    ReLU whose pre-activation interval crosses zero gets one binary
    phase variable, with the per-neuron interval bounds — propagated
    from [S] with the box domain — serving as big-M constants.

    Only piecewise-linear layers (Dense, BatchNorm, ReLU) are encodable;
    sigmoid/tanh layers raise [Invalid_argument]. *)

type t = {
  model : Dpv_linprog.Lp.t;
  feature_vars : Dpv_linprog.Lp.var array;  (** the [n_l] variables *)
  output_vars : Dpv_linprog.Lp.var array;   (** perception suffix outputs *)
  logit_var : Dpv_linprog.Lp.var;           (** characterizer logit *)
  num_binaries : int;                       (** ReLU phase indicators *)
  num_fixed_relus : int;                    (** ReLUs resolved by bounds *)
}

val encode_network :
  Dpv_linprog.Lp.t ->
  net:Dpv_nn.Network.t ->
  input_vars:Dpv_linprog.Lp.var array ->
  input_box:Dpv_absint.Box_domain.t ->
  name:string ->
  Dpv_linprog.Lp.t * Dpv_linprog.Lp.var array * int * int
(** Lower-level piece: encode one network on existing input variables.
    Returns (model, output vars, binaries added, fixed relus). *)

val build :
  suffix:Dpv_nn.Network.t ->
  head:Dpv_nn.Network.t ->
  feature_box:Dpv_absint.Box_domain.t ->
  ?extra_faces:Dpv_monitor.Polyhedron.halfspace list ->
  ?characterizer_margin:float ->
  ?psi:Dpv_spec.Risk.t ->
  unit ->
  t
(** [suffix] and [head] must share their input dimension (the cut layer);
    [feature_box] bounds that shared input.  [extra_faces] adds the
    octagon polyhedron faces over the feature variables.
    [characterizer_margin] (default 0) is the logit threshold for
    "characterizer says [phi] holds".  Omitting [psi] leaves the output
    unconstrained (useful for optimizing over the phi region). *)

val set_output_objective :
  t -> sense:Dpv_linprog.Lp.objective_sense -> Dpv_spec.Linexpr.t -> t
(** Replace the (empty) objective with a linear expression over the
    suffix outputs — e.g. "maximize the suggested waypoint". *)

val size_description : t -> string
