module Network = Dpv_nn.Network
module Risk = Dpv_spec.Risk

type table = {
  alpha : float;
  beta : float;
  gamma : float;
  delta : float;
  n : int;
}

let estimate ~characterizer ~perception ~images ~ground_truth =
  let n = Array.length images in
  if n = 0 then invalid_arg "Statistical.estimate: empty";
  if Array.length ground_truth <> n then
    invalid_arg "Statistical.estimate: length mismatch";
  let counts = [| 0; 0; 0; 0 |] in
  Array.iteri
    (fun i image ->
      let fired = Characterizer.decide_image characterizer ~perception image in
      let truth = ground_truth.(i) > 0.5 in
      let cell =
        match (fired, truth) with
        | true, true -> 0 (* alpha *)
        | true, false -> 1 (* beta *)
        | false, true -> 2 (* gamma *)
        | false, false -> 3 (* delta *)
      in
      counts.(cell) <- counts.(cell) + 1)
    images;
  let p k = float_of_int counts.(k) /. float_of_int n in
  { alpha = p 0; beta = p 1; gamma = p 2; delta = p 3; n }

let guarantee t = 1.0 -. t.gamma

let gamma_confidence t ~z =
  let successes = int_of_float (Float.round (t.gamma *. float_of_int t.n)) in
  Dpv_tensor.Stats.binomial_confidence ~successes ~trials:t.n ~z

let omitted_unsafe_count ~characterizer ~perception ~psi ~images ~ground_truth =
  let count = ref 0 in
  Array.iteri
    (fun i image ->
      let fired = Characterizer.decide_image characterizer ~perception image in
      let truth = ground_truth.(i) > 0.5 in
      if truth && not fired then begin
        let output = Network.forward perception image in
        if Risk.holds psi output then incr count
      end)
    images;
  !count

let pp fmt t =
  Format.fprintf fmt
    "@[<v>              | phi holds | phi fails@,\
     h = 1 (fires) |   %.4f  |  %.4f@,\
     h = 0 (quiet) |   %.4f  |  %.4f@,\
     (n = %d; statistical guarantee 1 - gamma = %.4f)@]"
    t.alpha t.beta t.gamma t.delta t.n (guarantee t)
