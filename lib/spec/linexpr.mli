(** Linear expressions over a network's output coordinates. *)

type t = { terms : (float * int) list; const : float }
(** [sum_i c_i * out_i + const]; indices refer to output dimensions. *)

val output : int -> t
(** The expression [out_i]. *)

val const : float -> t
val scale : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val ( * ) : float -> t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val eval : t -> Dpv_tensor.Vec.t -> float
val max_output_index : t -> int
(** Largest output index mentioned; [-1] for constants. *)

val normalized_terms : t -> (float * int) list
(** Terms merged by index, ascending, zero coefficients dropped. *)

val pp : Format.formatter -> t -> unit
