type t = { terms : (float * int) list; const : float }

let output i =
  if i < 0 then invalid_arg "Linexpr.output: negative index";
  { terms = [ (1.0, i) ]; const = 0.0 }

let const c = { terms = []; const = c }

let scale a e =
  { terms = List.map (fun (c, i) -> (a *. c, i)) e.terms; const = a *. e.const }

let add a b = { terms = a.terms @ b.terms; const = a.const +. b.const }
let sub a b = add a (scale (-1.0) b)

let ( * ) = scale
let ( + ) = add
let ( - ) = sub

let eval e x =
  List.fold_left (fun acc (c, i) -> acc +. (c *. x.(i))) e.const e.terms

let max_output_index e =
  List.fold_left (fun acc (_, i) -> Stdlib.max acc i) (-1) e.terms

let normalized_terms e =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, i) ->
      let cur = try Hashtbl.find tbl i with Not_found -> 0.0 in
      Hashtbl.replace tbl i (cur +. c))
    e.terms;
  Hashtbl.fold (fun i c acc -> if c = 0.0 then acc else (c, i) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let pp fmt e =
  let terms = normalized_terms e in
  (match terms with
  | [] -> Format.fprintf fmt "%g" e.const
  | _ ->
      List.iteri
        (fun k (c, i) ->
          if k > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "%g*y%d" c i)
        terms;
      if e.const <> 0.0 then Format.fprintf fmt " + %g" e.const)
