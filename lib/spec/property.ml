type 'scene t = {
  name : string;
  description : string;
  oracle : 'scene -> bool;
  ambiguous : ('scene -> bool) option;
}

let make ?ambiguous ~name ~description ~oracle () =
  { name; description; oracle; ambiguous }

let holds p scene = p.oracle scene
let label p scene = if p.oracle scene then 1.0 else 0.0

let is_ambiguous p scene =
  match p.ambiguous with None -> false | Some f -> f scene

let combine_ambiguous a b =
  match (a.ambiguous, b.ambiguous) with
  | None, None -> None
  | Some f, None | None, Some f -> Some f
  | Some f, Some g -> Some (fun s -> f s || g s)

let negate p =
  {
    name = "not-" ^ p.name;
    description = "negation of: " ^ p.description;
    oracle = (fun s -> not (p.oracle s));
    ambiguous = p.ambiguous;
  }

let conj ~name a b =
  {
    name;
    description = a.description ^ " and " ^ b.description;
    oracle = (fun s -> a.oracle s && b.oracle s);
    ambiguous = combine_ambiguous a b;
  }
