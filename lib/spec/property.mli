(** Input property descriptors [phi].

    The property itself is *not* expressible over network inputs — that is
    the paper's specification problem.  What exists is an oracle over the
    world state (here: the simulator's scene description) that says
    whether the property holds for the scene an image was rendered from.
    The learned input property characterizer approximates this oracle
    from network features. *)

type 'scene t = {
  name : string;
  description : string;
  oracle : 'scene -> bool;
  ambiguous : ('scene -> bool) option;
      (** Scenes a labelling oracle would decline to call — e.g. road
          curvature within a whisker of the bend threshold.  Dataset
          builders skip them, mirroring how human-labelled data avoids
          borderline frames; the oracle itself still answers on them. *)
}

val make :
  ?ambiguous:('scene -> bool) ->
  name:string ->
  description:string ->
  oracle:('scene -> bool) ->
  unit ->
  'scene t
val holds : 'scene t -> 'scene -> bool
val label : 'scene t -> 'scene -> float
(** 1.0 / 0.0 training label. *)

val is_ambiguous : 'scene t -> 'scene -> bool
(** False when no ambiguity predicate was given. *)

val negate : 'scene t -> 'scene t
val conj : name:string -> 'scene t -> 'scene t -> 'scene t
