type inequality = { expr : Linexpr.t; rel : [ `Le | `Ge ]; bound : float }

type t = { name : string; inequalities : inequality list }

let make ~name inequalities =
  if inequalities = [] then invalid_arg "Risk.make: empty conjunction";
  { name; inequalities }

let ( <=. ) expr bound = { expr; rel = `Le; bound }
let ( >=. ) expr bound = { expr; rel = `Ge; bound }

let output_le i c = Linexpr.output i <=. c
let output_ge i c = Linexpr.output i >=. c

let output_in_band i ~lo ~hi =
  if lo > hi then invalid_arg "Risk.output_in_band: lo > hi";
  [ output_ge i lo; output_le i hi ]

(* ---- parsing ---- *)

type token = Num of float | Var of int | Plus | Minus | Star | Le_tok | Ge_tok | And

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '+' then (tokens := Plus :: !tokens; incr i)
    else if c = '*' then (tokens := Star :: !tokens; incr i)
    else if c = '-' then (tokens := Minus :: !tokens; incr i)
    else if c = '<' || c = '>' then begin
      if !i + 1 >= n || s.[!i + 1] <> '=' then
        fail "expected '%c=' at position %d" c !i;
      tokens := (if c = '<' then Le_tok else Ge_tok) :: !tokens;
      i := !i + 2
    end
    else if c = '&' then begin
      if !i + 1 >= n || s.[!i + 1] <> '&' then fail "expected '&&' at %d" !i;
      tokens := And :: !tokens;
      i := !i + 2
    end
    else if c = 'y' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if !j = !i + 1 then fail "expected output index after 'y' at %d" !i;
      tokens := Var (int_of_string (String.sub s (!i + 1) (!j - !i - 1))) :: !tokens;
      i := !j
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let j = ref !i in
      while
        !j < n
        && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.' || s.[!j] = 'e'
           || s.[!j] = 'E'
           || ((s.[!j] = '+' || s.[!j] = '-') && !j > !i
              && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done;
      (try tokens := Num (float_of_string (String.sub s !i (!j - !i))) :: !tokens
       with Failure _ -> fail "bad number at %d" !i);
      i := !j
    end
    else fail "unexpected character %C at %d" c !i
  done;
  List.rev !tokens

(* term := number | [number "*"] "y" digits, with an optional leading
   sign handled by the caller through [sign]. *)
let parse_term sign tokens =
  match tokens with
  | Num c :: Star :: Var v :: rest -> (Linexpr.scale (sign *. c) (Linexpr.output v), rest)
  | Num c :: rest -> (Linexpr.const (sign *. c), rest)
  | Var v :: rest -> (Linexpr.scale sign (Linexpr.output v), rest)
  | _ -> raise (Parse_error "expected a term (number, c*yN or yN)")

let parse_expr tokens =
  let rec more acc tokens =
    match tokens with
    | Plus :: rest ->
        let t, rest = parse_term 1.0 rest in
        more (Linexpr.add acc t) rest
    | Minus :: rest ->
        let t, rest = parse_term (-1.0) rest in
        more (Linexpr.add acc t) rest
    | _ -> (acc, tokens)
  in
  let sign, tokens =
    match tokens with Minus :: rest -> (-1.0, rest) | _ -> (1.0, tokens)
  in
  let first, tokens = parse_term sign tokens in
  more first tokens

let parse_inequality tokens =
  let expr, tokens = parse_expr tokens in
  let rel, tokens =
    match tokens with
    | Le_tok :: rest -> (`Le, rest)
    | Ge_tok :: rest -> (`Ge, rest)
    | _ -> raise (Parse_error "expected '<=' or '>='")
  in
  let bound_expr, tokens = parse_expr tokens in
  if Linexpr.normalized_terms bound_expr <> [] then
    raise (Parse_error "right-hand side must be a constant");
  (* Fold the left expression's constant into the bound. *)
  let bound = bound_expr.Linexpr.const -. expr.Linexpr.const in
  ({ expr = { expr with Linexpr.const = 0.0 }; rel; bound }, tokens)

let of_string s =
  try
    let rec go tokens =
      let ineq, tokens = parse_inequality tokens in
      match tokens with
      | [] -> [ ineq ]
      | And :: rest -> ineq :: go rest
      | _ -> raise (Parse_error "expected '&&' or end of input")
    in
    let tokens = tokenize s in
    if tokens = [] then Error "empty risk condition"
    else Ok (make ~name:s (go tokens))
  with Parse_error m -> Error m

let to_string psi =
  let term_text c v =
    if Float.abs c = 1.0 then Printf.sprintf "y%d" v
    else Printf.sprintf "%g*y%d" (Float.abs c) v
  in
  let expr_text e =
    let terms = Linexpr.normalized_terms e in
    let body =
      List.mapi
        (fun k (c, v) ->
          if k = 0 then
            (if c < 0.0 then "-" else "") ^ term_text c v
          else (if c < 0.0 then " - " else " + ") ^ term_text c v)
        terms
      |> String.concat ""
    in
    let const = e.Linexpr.const in
    if terms = [] then Printf.sprintf "%g" const
    else if const = 0.0 then body
    else if const < 0.0 then Printf.sprintf "%s - %g" body (Float.abs const)
    else Printf.sprintf "%s + %g" body const
  in
  String.concat " && "
    (List.map
       (fun ineq ->
         let rel = match ineq.rel with `Le -> "<=" | `Ge -> ">=" in
         Printf.sprintf "%s %s %g" (expr_text ineq.expr) rel ineq.bound)
       psi.inequalities)

let holds ?(tol = 0.0) psi out =
  List.for_all
    (fun ineq ->
      let v = Linexpr.eval ineq.expr out in
      match ineq.rel with
      | `Le -> v <= ineq.bound +. tol
      | `Ge -> v >= ineq.bound -. tol)
    psi.inequalities

let max_output_index psi =
  List.fold_left
    (fun acc ineq -> Stdlib.max acc (Linexpr.max_output_index ineq.expr))
    (-1) psi.inequalities

let pp fmt psi =
  Format.fprintf fmt "@[<h>%s:" psi.name;
  List.iteri
    (fun k ineq ->
      if k > 0 then Format.fprintf fmt " /\\";
      let rel = match ineq.rel with `Le -> "<=" | `Ge -> ">=" in
      Format.fprintf fmt " %a %s %g" Linexpr.pp ineq.expr rel ineq.bound)
    psi.inequalities;
  Format.fprintf fmt "@]"
