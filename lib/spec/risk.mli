(** Risk conditions [psi]: conjunctions of linear inequalities over the
    network output (Definition 1 of the paper).  A network is *unsafe*
    under [(phi, psi)] when some input satisfying [phi] drives the output
    into [psi]; verification asks for a proof that this cannot happen. *)

type inequality = { expr : Linexpr.t; rel : [ `Le | `Ge ]; bound : float }

type t = { name : string; inequalities : inequality list }

val make : name:string -> inequality list -> t
val ( <=. ) : Linexpr.t -> float -> inequality
val ( >=. ) : Linexpr.t -> float -> inequality

val output_le : int -> float -> inequality
(** [out_i <= c]. *)

val output_ge : int -> float -> inequality

val output_in_band : int -> lo:float -> hi:float -> inequality list
(** [lo <= out_i <= hi] as two inequalities. *)

val of_string : string -> (t, string) Stdlib.result
(** Parse a conjunction of linear inequalities over outputs, e.g.
    ["y0 >= 2.5"], ["2*y0 - y1 <= 0.3 && y1 >= -1"].  Grammar:

    {v
      psi   := ineq ("&&" ineq)*
      ineq  := expr ("<=" | ">=") number
      expr  := term (("+" | "-") term)*
      term  := number | [number "*"] "y" digits
    v} *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val holds : ?tol:float -> t -> Dpv_tensor.Vec.t -> bool
(** Does the output satisfy every inequality (within [tol], default 0)? *)

val max_output_index : t -> int
val pp : Format.formatter -> t -> unit
