(** Box (interval vector) abstract domain over networks. *)

type t = Interval.t array

val of_bounds : (float * float) array -> t
val uniform : dim:int -> lo:float -> hi:float -> t
val of_points : Dpv_tensor.Vec.t array -> t
(** Tightest box containing the given non-empty point set. *)

val contains : t -> Dpv_tensor.Vec.t -> bool
val widths : t -> float array
val mean_width : t -> float
val sample : Dpv_tensor.Rng.t -> t -> Dpv_tensor.Vec.t
(** Uniform sample; all sides must be finite. *)

val transfer_layer : Dpv_nn.Layer.t -> t -> t
(** Sound image of the box under one layer. *)

val propagate : Dpv_nn.Network.t -> t -> t
(** Sound image under the whole network. *)

val propagate_all : Dpv_nn.Network.t -> t -> t array
(** Boxes at every layer: index [l] over-approximates [f^(l)];
    index 0 is the input box.  Length is [num_layers + 1]. *)

val pp : Format.formatter -> t -> unit
