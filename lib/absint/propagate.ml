module Network = Dpv_nn.Network

type domain = Box | Zonotope | Deeppoly

let domain_name = function
  | Box -> "box"
  | Zonotope -> "zonotope"
  | Deeppoly -> "deeppoly"

let domain_of_string = function
  | "box" -> Some Box
  | "zonotope" -> Some Zonotope
  | "deeppoly" -> Some Deeppoly
  | _ -> None

let all_layer_bounds domain net ~input_box =
  match domain with
  | Box -> Box_domain.propagate_all net input_box
  | Zonotope -> Zonotope.propagate_all net (Zonotope.of_box input_box)
  | Deeppoly -> Deeppoly.propagate_all net (Deeppoly.of_box input_box)

let layer_bounds domain net ~input_box ~cut =
  let all = all_layer_bounds domain (Network.prefix net ~cut) ~input_box in
  all.(Array.length all - 1)

let output_bounds domain net ~input_box =
  layer_bounds domain net ~input_box ~cut:(Network.num_layers net)
