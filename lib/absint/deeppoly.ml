module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec

(* One affine expression over the input variables. *)
type expr = { coeffs : Vec.t; const : float }

(* [conc] caches the tightest known concrete interval per neuron: the
   meet of the symbolic bounds' concretization and a plain box transfer.
   This guarantees the domain is never looser than {!Box_domain} even on
   neurons where the symbolic relaxation is weak (e.g. the [y >= x]
   lower bound of a crossing ReLU concretizes below zero). *)
type t = {
  input_box : Box_domain.t;
  lower : expr array;
  upper : expr array;
  conc : Interval.t array;
}

let dim t = Array.length t.lower
let input_dim t = Array.length t.input_box

(* Tightest concrete value of an affine expression over the input box:
   positive coefficients pull from the matching side of the box. *)
let concretize_lo box e =
  let acc = ref e.const in
  Array.iteri
    (fun j c ->
      let iv : Interval.t = box.(j) in
      acc := !acc +. if c >= 0.0 then c *. iv.Interval.lo else c *. iv.Interval.hi)
    e.coeffs;
  !acc

let concretize_hi box e =
  let acc = ref e.const in
  Array.iteri
    (fun j c ->
      let iv : Interval.t = box.(j) in
      acc := !acc +. if c >= 0.0 then c *. iv.Interval.hi else c *. iv.Interval.lo)
    e.coeffs;
  !acc

let to_box t = Array.copy t.conc

let of_box box =
  Array.iter
    (fun (iv : Interval.t) ->
      if not (Float.is_finite iv.Interval.lo && Float.is_finite iv.Interval.hi)
      then invalid_arg "Deeppoly.of_box: unbounded side")
    box;
  let d = Array.length box in
  let identity i =
    let coeffs = Vec.zeros d in
    coeffs.(i) <- 1.0;
    { coeffs; const = 0.0 }
  in
  {
    input_box = box;
    lower = Array.init d identity;
    upper = Array.init d identity;
    conc = Array.copy box;
  }

let scale_expr c e = { coeffs = Vec.scale c e.coeffs; const = c *. e.const }
let add_expr a b = { coeffs = Vec.add a.coeffs b.coeffs; const = a.const +. b.const }
let const_expr n c = { coeffs = Vec.zeros n; const = c }

(* Both arguments are sound enclosures, so their intersection is too;
   if float rounding makes them nominally disjoint — or a degenerate
   transfer left a nan side — keep whichever operand is still a
   well-formed interval. *)
let meet_safe box_iv expr_iv =
  let well_formed (iv : Interval.t) =
    (not (Float.is_nan iv.Interval.lo)) && not (Float.is_nan iv.Interval.hi)
  in
  match (well_formed box_iv, well_formed expr_iv) with
  | true, true -> (
      match Interval.meet box_iv expr_iv with
      | Some iv -> iv
      | None -> box_iv)
  | true, false -> box_iv
  | false, true -> expr_iv
  | false, false -> Interval.top

(* Finalize a transfer step: concretize the fresh symbolic bounds and
   intersect with the box-domain image of the previous concrete cache. *)
let rebuild t layer ~lower ~upper =
  let box_image = Box_domain.transfer_layer layer t.conc in
  let conc =
    Array.init (Array.length lower) (fun i ->
        let lo = concretize_lo t.input_box lower.(i) in
        let hi = concretize_hi t.input_box upper.(i) in
        let expr_iv =
          if lo <= hi then Interval.make ~lo ~hi else box_image.(i)
        in
        meet_safe box_image.(i) expr_iv)
  in
  { t with lower; upper; conc }

(* Affine combination: picking the lower expr for positive weights and
   the upper expr for negative ones yields a sound lower bound (and
   symmetrically for upper). *)
let affine_combine n ~weights_row ~bias ~lower ~upper =
  let lo = ref (const_expr n bias) and hi = ref (const_expr n bias) in
  Array.iteri
    (fun j w ->
      if w > 0.0 then begin
        lo := add_expr !lo (scale_expr w lower.(j));
        hi := add_expr !hi (scale_expr w upper.(j))
      end
      else if w < 0.0 then begin
        lo := add_expr !lo (scale_expr w upper.(j));
        hi := add_expr !hi (scale_expr w lower.(j))
      end)
    weights_row;
  (!lo, !hi)

let transfer_dense t layer weights bias =
  let n = input_dim t in
  let rows = Mat.rows weights in
  let lower = Array.make rows (const_expr n 0.0) in
  let upper = Array.make rows (const_expr n 0.0) in
  for i = 0 to rows - 1 do
    let lo, hi =
      affine_combine n ~weights_row:(Mat.row weights i) ~bias:bias.(i)
        ~lower:t.lower ~upper:t.upper
    in
    lower.(i) <- lo;
    upper.(i) <- hi
  done;
  rebuild t layer ~lower ~upper

let transfer_diag t layer scale shift =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let a = scale.(i) and b = shift.(i) in
    if Float.is_finite a && Float.is_finite b then begin
      let scaled_lo = scale_expr a t.lower.(i)
      and scaled_hi = scale_expr a t.upper.(i) in
      let lo, hi =
        if a >= 0.0 then (scaled_lo, scaled_hi) else (scaled_hi, scaled_lo)
      in
      lower.(i) <- { lo with const = lo.const +. b };
      upper.(i) <- { hi with const = hi.const +. b }
    end
    else begin
      (* A non-finite scale or shift would smear inf/nan coefficients
         over every downstream concretization; keep the neuron as an
         opaque constant interval instead, widening any nan side. *)
      let raw = Interval.add (Interval.scale a t.conc.(i)) (Interval.point b) in
      let lo = if Float.is_nan raw.Interval.lo then neg_infinity else raw.Interval.lo in
      let hi = if Float.is_nan raw.Interval.hi then infinity else raw.Interval.hi in
      let lo, hi = if lo <= hi then (lo, hi) else (neg_infinity, infinity) in
      lower.(i) <- const_expr n lo;
      upper.(i) <- const_expr n hi
    end
  done;
  rebuild t layer ~lower ~upper

(* DeepPoly ReLU bounds for one neuron.  With concrete pre-activation
   bounds [l, u]:
     u <= 0           -> y = 0
     l >= 0           -> y unchanged
     l < 0 < u        -> upper: y <= (u/(u-l)) (x - l), substituting x's
                         upper expression; lower: y >= x if u > -l (the
                         smaller-area choice) else y >= 0.
   The chord slope u/(u-l) goes non-finite when u - l overflows (huge
   bounds of opposite sign) and nan when the cached bounds are already
   poisoned; either way the symbolic relaxation would smear inf/nan
   coefficients over every downstream concretization, so the crossing
   case guards the slope and falls back to the box relaxation
   0 <= y <= u for that neuron. *)
let relu_neuron_bounds t n i =
  let { Interval.lo = l; hi = u } = t.conc.(i) in
  if u <= 0.0 then (const_expr n 0.0, const_expr n 0.0)
  else if l >= 0.0 then (t.lower.(i), t.upper.(i))
  else begin
    let denom = u -. l in
    let lambda = u /. denom in
    if Float.is_finite denom && denom > 0.0 && Float.is_finite lambda then begin
      let up = scale_expr lambda t.upper.(i) in
      let upper = { up with const = up.const -. (lambda *. l) } in
      let lower = if u > -.l then t.lower.(i) else const_expr n 0.0 in
      (lower, upper)
    end
    else (const_expr n 0.0, const_expr n u)
  end

let transfer_relu t =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let lo, hi = relu_neuron_bounds t n i in
    lower.(i) <- lo;
    upper.(i) <- hi
  done;
  rebuild t Layer.Relu ~lower ~upper

type phase = Active | Inactive | Unknown

exception Empty_region

(* ReLU transfer under externally-fixed phases (the branch-and-bound
   binary fixings).  [Inactive] asserts pre-activation x <= 0 (so
   y = 0); [Active] asserts x >= 0 (so y = x); [Unknown] neurons get
   the ordinary DeepPoly relaxation.  Returns [None] when a fixing
   contradicts the propagated pre-activation bounds — the abstract
   region is empty, so the search node carrying these fixings is
   infeasible.  The x = 0 boundary is feasible under either phase, so
   the contradiction tests are strict. *)
let transfer_relu_fixed phases t =
  let d = dim t in
  if Array.length phases <> d then
    invalid_arg "Deeppoly.transfer_relu_fixed: phase array dimension";
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  try
    for i = 0 to d - 1 do
      let { Interval.lo = l; hi = u } = t.conc.(i) in
      match phases.(i) with
      | Inactive ->
          if l > 0.0 then raise Empty_region;
          lower.(i) <- const_expr n 0.0;
          upper.(i) <- const_expr n 0.0
      | Active ->
          if u < 0.0 then raise Empty_region;
          lower.(i) <- t.lower.(i);
          upper.(i) <- t.upper.(i)
      | Unknown ->
          let lo, hi = relu_neuron_bounds t n i in
          lower.(i) <- lo;
          upper.(i) <- hi
    done;
    Some (rebuild t Layer.Relu ~lower ~upper)
  with Empty_region -> None

(* Smooth activations: fall back to the concrete interval image (sound,
   loses the symbolic information for those neurons). *)
let transfer_monotone t layer f =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let iv = t.conc.(i) in
    lower.(i) <- const_expr n (f iv.Interval.lo);
    upper.(i) <- const_expr n (f iv.Interval.hi)
  done;
  rebuild t layer ~lower ~upper

let rec transfer_layer layer t =
  match layer with
  | Layer.Conv2d _ -> transfer_layer (Layer.lower_to_dense layer) t
  | Layer.Dense { weights; bias } -> transfer_dense t layer weights bias
  | Layer.Relu -> transfer_relu t
  | Layer.Sigmoid ->
      transfer_monotone t layer (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Layer.Tanh -> transfer_monotone t layer tanh
  | Layer.Batch_norm _ -> (
      match Layer.batch_norm_scale_shift layer with
      | Some (scale, shift) -> transfer_diag t layer scale shift
      | None -> assert false)

let propagate net t =
  if dim t <> Network.input_dim net then
    invalid_arg "Deeppoly.propagate: wrong input dimension";
  List.fold_left (fun acc l -> transfer_layer l acc) t (Network.layers net)

let propagate_all net t =
  if dim t <> Network.input_dim net then
    invalid_arg "Deeppoly.propagate_all: wrong input dimension";
  let n = Network.num_layers net in
  let out = Array.make (n + 1) (to_box t) in
  let cur = ref t in
  for l = 1 to n do
    cur := transfer_layer (Network.layer net l) !cur;
    out.(l) <- to_box !cur
  done;
  out

(* ------------------------------------------------------------------ *)
(* Resumable in-place propagation.                                     *)
(*                                                                     *)
(* The branch-and-bound guide re-propagates the same network under     *)
(* phase fixings that differ from the previous node's by one or two    *)
(* ReLU layers, so almost all of every propagation is recomputation.   *)
(* [Resumable] keeps one preallocated buffer per layer (symbolic       *)
(* coefficient rows, constants, concrete bounds) and re-runs only the  *)
(* layers at or past the earliest change.                              *)
(*                                                                     *)
(* Every kernel below mirrors the immutable transfer above operation   *)
(* for operation — same accumulation order, same branch conditions,    *)
(* same nan/overflow fallbacks — so a resumed propagation is           *)
(* bit-identical to a from-scratch one: reusing a cached layer state   *)
(* reuses exactly the floats the scratch run would recompute.  Any     *)
(* edit to a transfer above must be replayed here (and the property    *)
(* tests compare the two paths bit-for-bit on random networks).        *)
(*                                                                     *)
(* Steady-state propagation allocates nothing: all loops write into    *)
(* preallocated float arrays, scalar accumulation goes through array   *)
(* cells rather than [ref]s, and the empty-region escape is a          *)
(* constant exception.                                                 *)
module Resumable = struct
  type slot = {
    s_dim : int;
    lo_c : float array array; (* per neuron: coeff row over the input *)
    lo_k : float array; (* per neuron: lower-expression constant *)
    hi_c : float array array;
    hi_k : float array;
    cl : float array; (* concrete lower bounds (the [conc] cache) *)
    ch : float array;
    mutable holds : int; (* layer whose state lives here; -1 = none *)
  }

  (* Conv2d is lowered to dense once at plan time ([transfer_layer]
     lowers it on every visit; [Layer.lower_to_dense] is deterministic,
     so the weights are identical).  Sigmoid/tanh get their own
     constructors so the kernel calls [exp]/[tanh] directly instead of
     through a float-boxing closure. *)
  type step =
    | S_dense of float array array * float array
    | S_relu
    | S_diag of float array * float array
    | S_sigmoid
    | S_tanh

  type plan = {
    p_input_dim : int;
    steps : step array; (* steps.(l - 1) transfers layer l *)
    p_dims : int array; (* p_dims.(l) = output dimension of layer l *)
  }

  let num_layers p = Array.length p.steps
  let layer_dim p l = p.p_dims.(l)
  let is_relu p l = match p.steps.(l - 1) with S_relu -> true | _ -> false

  let plan net =
    let rec step layer =
      match layer with
      | Layer.Conv2d _ -> step (Layer.lower_to_dense layer)
      | Layer.Dense { weights; bias } ->
          S_dense (Array.init (Mat.rows weights) (Mat.row weights), bias)
      | Layer.Relu -> S_relu
      | Layer.Sigmoid -> S_sigmoid
      | Layer.Tanh -> S_tanh
      | Layer.Batch_norm _ -> (
          match Layer.batch_norm_scale_shift layer with
          | Some (scale, shift) -> S_diag (scale, shift)
          | None -> assert false)
    in
    {
      p_input_dim = Network.input_dim net;
      steps = Array.of_list (List.map step (Network.layers net));
      p_dims = Network.dims net;
    }

  type state = {
    plan : plan;
    in_lo : float array; (* input box, split into sides *)
    in_hi : float array;
    cached : int; (* layers 0..cached have dedicated slots *)
    slots : slot array; (* length cached + 1 *)
    ping : slot array; (* 2 alternating slots for evicted layers *)
    img_lo : float array; (* per-step box-domain image scratch *)
    img_hi : float array;
    ex_lo : float array; (* per-step concretization scratch *)
    ex_hi : float array;
    mutable valid : int; (* deepest cached layer holding current state *)
    mutable empty : bool; (* last [propagate] hit an empty region *)
    mutable progress : int; (* layers transferred by the last propagate *)
  }

  let make_slot ~input_dim dim =
    {
      s_dim = dim;
      lo_c = Array.init dim (fun _ -> Array.make input_dim 0.0);
      lo_k = Array.make dim 0.0;
      hi_c = Array.init dim (fun _ -> Array.make input_dim 0.0);
      hi_k = Array.make dim 0.0;
      cl = Array.make dim 0.0;
      ch = Array.make dim 0.0;
      holds = -1;
    }

  (* Cost in floats of caching one layer's state: two coefficient
     matrices plus four per-neuron scalars. *)
  let slot_floats ~input_dim dim = dim * ((2 * input_dim) + 4)

  let cached_layers st = st.cached
  let evicted_layers st = num_layers st.plan - st.cached
  let valid st = st.valid
  let last_empty st = st.empty

  let create ?(budget_floats = max_int) plan box =
    let id = plan.p_input_dim in
    if Array.length box <> id then
      invalid_arg "Deeppoly.Resumable.create: wrong input dimension";
    Array.iter
      (fun (iv : Interval.t) ->
        if
          not
            (Float.is_finite iv.Interval.lo && Float.is_finite iv.Interval.hi)
        then invalid_arg "Deeppoly.Resumable.create: unbounded side")
      box;
    let n = num_layers plan in
    (* Greedy prefix under the budget: cache layers 1..K while they
       fit.  DFS phase flips cluster deep in the tree, so a valid
       shallow prefix is what resumption actually reuses; everything
       past K ping-pongs through two scratch slots (still
       allocation-free per node, just recomputed). *)
    let cached = ref n in
    let spent = ref 0 in
    (try
       for l = 1 to n do
         spent := !spent + slot_floats ~input_dim:id plan.p_dims.(l);
         if !spent > budget_floats then begin
           cached := l - 1;
           raise Exit
         end
       done
     with Exit -> ());
    let cached = !cached in
    let slots =
      Array.init (cached + 1) (fun l -> make_slot ~input_dim:id plan.p_dims.(l))
    in
    let max_dim = Array.fold_left max 0 plan.p_dims in
    let ping =
      if cached = n then [||]
      else
        Array.init 2 (fun _ ->
            let dim = ref 0 in
            for l = cached + 1 to n do
              dim := max !dim plan.p_dims.(l)
            done;
            make_slot ~input_dim:id !dim)
    in
    let s0 = slots.(0) in
    for i = 0 to id - 1 do
      s0.lo_c.(i).(i) <- 1.0;
      s0.hi_c.(i).(i) <- 1.0;
      s0.cl.(i) <- box.(i).Interval.lo;
      s0.ch.(i) <- box.(i).Interval.hi
    done;
    s0.holds <- 0;
    {
      plan;
      in_lo = Array.init id (fun i -> box.(i).Interval.lo);
      in_hi = Array.init id (fun i -> box.(i).Interval.hi);
      cached;
      slots;
      ping;
      img_lo = Array.make max_dim 0.0;
      img_hi = Array.make max_dim 0.0;
      ex_lo = Array.make max_dim 0.0;
      ex_hi = Array.make max_dim 0.0;
      valid = 0;
      empty = false;
      progress = 0;
    }

  let invalidate_from st l =
    if l < 1 then invalid_arg "Deeppoly.Resumable.invalidate_from";
    if l - 1 < st.valid then st.valid <- l - 1

  (* A cached slot is current only up to [valid]; an evicted layer is
     readable only while one of the ping-pong slots still holds it
     (i.e. between its transfer and the second-next evicted
     transfer). *)
  let slot_holding st l =
    if l <= st.cached then
      if l <= st.valid then st.slots.(l)
      else invalid_arg "Deeppoly.Resumable: layer state not materialized"
    else if Array.length st.ping > 0 && st.ping.(0).holds = l then st.ping.(0)
    else if Array.length st.ping > 1 && st.ping.(1).holds = l then st.ping.(1)
    else invalid_arg "Deeppoly.Resumable: layer state not materialized"

  let conc_lo st ~layer i = (slot_holding st layer).cl.(i)
  let conc_hi st ~layer i = (slot_holding st layer).ch.(i)

  (* Borrowed view of a layer's concrete bounds; valid until the next
     [propagate].  Lets callers scan pre-activation bounds without a
     boxed-float accessor call per neuron. *)
  let conc_view st ~layer =
    let s = slot_holding st layer in
    (s.cl, s.ch)

  let box_of_layer st l =
    let s = slot_holding st l in
    Array.init st.plan.p_dims.(l) (fun i ->
        { Interval.lo = s.cl.(i); hi = s.ch.(i) })

  let output_box st = box_of_layer st (num_layers st.plan)

  (* --- kernels; [m] = output dim, [cols] = src dim, [id] = input dim *)

  (* Mirror of [rebuild]: [st.img_lo/hi] holds the box-domain image of
     the source conc, the dst expressions are concretized against the
     input box ([concretize_lo/hi]'s accumulation order), and the two
     enclosures meet per [meet_safe]. *)
  let rebuild_into st (dst : slot) m =
    let id = Array.length st.in_lo in
    let ex_lo = st.ex_lo and ex_hi = st.ex_hi in
    for i = 0 to m - 1 do
      let lc = dst.lo_c.(i) and hc = dst.hi_c.(i) in
      ex_lo.(i) <- dst.lo_k.(i);
      ex_hi.(i) <- dst.hi_k.(i);
      for j = 0 to id - 1 do
        let c = lc.(j) in
        ex_lo.(i) <-
          ex_lo.(i) +. (if c >= 0.0 then c *. st.in_lo.(j) else c *. st.in_hi.(j));
        let c = hc.(j) in
        ex_hi.(i) <-
          ex_hi.(i) +. (if c >= 0.0 then c *. st.in_hi.(j) else c *. st.in_lo.(j))
      done
    done;
    for i = 0 to m - 1 do
      let blo = st.img_lo.(i) and bhi = st.img_hi.(i) in
      let lo = ex_lo.(i) and hi = ex_hi.(i) in
      (* float-tuple-free [if lo <= hi then (lo, hi) else box_image] *)
      let ordered = lo <= hi in
      let elo = if ordered then lo else blo in
      let ehi = if ordered then hi else bhi in
      let bwf = (not (Float.is_nan blo)) && not (Float.is_nan bhi) in
      let ewf = (not (Float.is_nan elo)) && not (Float.is_nan ehi) in
      if bwf && ewf then begin
        let mlo = Float.max blo elo and mhi = Float.min bhi ehi in
        if mlo > mhi then begin
          dst.cl.(i) <- blo;
          dst.ch.(i) <- bhi
        end
        else begin
          dst.cl.(i) <- mlo;
          dst.ch.(i) <- mhi
        end
      end
      else if bwf then begin
        dst.cl.(i) <- blo;
        dst.ch.(i) <- bhi
      end
      else if ewf then begin
        dst.cl.(i) <- elo;
        dst.ch.(i) <- ehi
      end
      else begin
        dst.cl.(i) <- neg_infinity;
        dst.ch.(i) <- infinity
      end
    done

  (* Mirror of [transfer_dense] + the dense [Box_domain.transfer_layer]
     row ([Interval.dot] then adding the bias point). *)
  let dense_into st ~cols (src : slot) (dst : slot) rows bias =
    let id = Array.length st.in_lo in
    let m = Array.length rows in
    for i = 0 to m - 1 do
      let r = rows.(i) in
      let lc = dst.lo_c.(i) and hc = dst.hi_c.(i) in
      Array.fill lc 0 id 0.0;
      Array.fill hc 0 id 0.0;
      dst.lo_k.(i) <- bias.(i);
      dst.hi_k.(i) <- bias.(i);
      for j = 0 to cols - 1 do
        let w = r.(j) in
        if w > 0.0 then begin
          let sl = src.lo_c.(j) and sh = src.hi_c.(j) in
          for k = 0 to id - 1 do
            lc.(k) <- lc.(k) +. (w *. sl.(k))
          done;
          dst.lo_k.(i) <- dst.lo_k.(i) +. (w *. src.lo_k.(j));
          for k = 0 to id - 1 do
            hc.(k) <- hc.(k) +. (w *. sh.(k))
          done;
          dst.hi_k.(i) <- dst.hi_k.(i) +. (w *. src.hi_k.(j))
        end
        else if w < 0.0 then begin
          let sl = src.lo_c.(j) and sh = src.hi_c.(j) in
          for k = 0 to id - 1 do
            lc.(k) <- lc.(k) +. (w *. sh.(k))
          done;
          dst.lo_k.(i) <- dst.lo_k.(i) +. (w *. src.hi_k.(j));
          for k = 0 to id - 1 do
            hc.(k) <- hc.(k) +. (w *. sl.(k))
          done;
          dst.hi_k.(i) <- dst.hi_k.(i) +. (w *. src.lo_k.(j))
        end
      done;
      st.img_lo.(i) <- 0.0;
      st.img_hi.(i) <- 0.0;
      for j = 0 to cols - 1 do
        let c = r.(j) in
        if c >= 0.0 then begin
          st.img_lo.(i) <- st.img_lo.(i) +. (c *. src.cl.(j));
          st.img_hi.(i) <- st.img_hi.(i) +. (c *. src.ch.(j))
        end
        else begin
          st.img_lo.(i) <- st.img_lo.(i) +. (c *. src.ch.(j));
          st.img_hi.(i) <- st.img_hi.(i) +. (c *. src.cl.(j))
        end
      done;
      st.img_lo.(i) <- st.img_lo.(i) +. bias.(i);
      st.img_hi.(i) <- st.img_hi.(i) +. bias.(i)
    done;
    rebuild_into st dst m

  (* Mirror of [transfer_relu_fixed] (with [relu_neuron_bounds] inlined
     for the [Unknown] case) + the ReLU box image. *)
  let relu_into st ~m (src : slot) (dst : slot) phases =
    let id = Array.length st.in_lo in
    if Array.length phases <> m then
      invalid_arg "Deeppoly.transfer_relu_fixed: phase array dimension";
    for i = 0 to m - 1 do
      let l = src.cl.(i) and u = src.ch.(i) in
      (match phases.(i) with
      | Inactive ->
          if l > 0.0 then raise Empty_region;
          Array.fill dst.lo_c.(i) 0 id 0.0;
          dst.lo_k.(i) <- 0.0;
          Array.fill dst.hi_c.(i) 0 id 0.0;
          dst.hi_k.(i) <- 0.0
      | Active ->
          if u < 0.0 then raise Empty_region;
          Array.blit src.lo_c.(i) 0 dst.lo_c.(i) 0 id;
          dst.lo_k.(i) <- src.lo_k.(i);
          Array.blit src.hi_c.(i) 0 dst.hi_c.(i) 0 id;
          dst.hi_k.(i) <- src.hi_k.(i)
      | Unknown ->
          if u <= 0.0 then begin
            Array.fill dst.lo_c.(i) 0 id 0.0;
            dst.lo_k.(i) <- 0.0;
            Array.fill dst.hi_c.(i) 0 id 0.0;
            dst.hi_k.(i) <- 0.0
          end
          else if l >= 0.0 then begin
            Array.blit src.lo_c.(i) 0 dst.lo_c.(i) 0 id;
            dst.lo_k.(i) <- src.lo_k.(i);
            Array.blit src.hi_c.(i) 0 dst.hi_c.(i) 0 id;
            dst.hi_k.(i) <- src.hi_k.(i)
          end
          else begin
            let denom = u -. l in
            let lambda = u /. denom in
            if
              Float.is_finite denom && denom > 0.0 && Float.is_finite lambda
            then begin
              let sh = src.hi_c.(i) and dh = dst.hi_c.(i) in
              for k = 0 to id - 1 do
                dh.(k) <- lambda *. sh.(k)
              done;
              dst.hi_k.(i) <- (lambda *. src.hi_k.(i)) -. (lambda *. l);
              if u > -.l then begin
                Array.blit src.lo_c.(i) 0 dst.lo_c.(i) 0 id;
                dst.lo_k.(i) <- src.lo_k.(i)
              end
              else begin
                Array.fill dst.lo_c.(i) 0 id 0.0;
                dst.lo_k.(i) <- 0.0
              end
            end
            else begin
              Array.fill dst.lo_c.(i) 0 id 0.0;
              dst.lo_k.(i) <- 0.0;
              Array.fill dst.hi_c.(i) 0 id 0.0;
              dst.hi_k.(i) <- u
            end
          end);
      st.img_lo.(i) <- Float.max 0.0 l;
      st.img_hi.(i) <- Float.max 0.0 u
    done;
    rebuild_into st dst m

  (* Mirror of [transfer_diag] (including the non-finite scale/shift
     fallback) + the batch-norm box image. *)
  let diag_into st ~m (src : slot) (dst : slot) scale shift =
    let id = Array.length st.in_lo in
    for i = 0 to m - 1 do
      let a = scale.(i) and b = shift.(i) in
      if Float.is_finite a && Float.is_finite b then begin
        if a >= 0.0 then begin
          let sl = src.lo_c.(i) and sh = src.hi_c.(i) in
          let dl = dst.lo_c.(i) and dh = dst.hi_c.(i) in
          for k = 0 to id - 1 do
            dl.(k) <- a *. sl.(k)
          done;
          dst.lo_k.(i) <- (a *. src.lo_k.(i)) +. b;
          for k = 0 to id - 1 do
            dh.(k) <- a *. sh.(k)
          done;
          dst.hi_k.(i) <- (a *. src.hi_k.(i)) +. b
        end
        else begin
          let sl = src.lo_c.(i) and sh = src.hi_c.(i) in
          let dl = dst.lo_c.(i) and dh = dst.hi_c.(i) in
          for k = 0 to id - 1 do
            dl.(k) <- a *. sh.(k)
          done;
          dst.lo_k.(i) <- (a *. src.hi_k.(i)) +. b;
          for k = 0 to id - 1 do
            dh.(k) <- a *. sl.(k)
          done;
          dst.hi_k.(i) <- (a *. src.lo_k.(i)) +. b
        end
      end
      else begin
        let raw_lo =
          (if a >= 0.0 then a *. src.cl.(i) else a *. src.ch.(i)) +. b
        in
        let raw_hi =
          (if a >= 0.0 then a *. src.ch.(i) else a *. src.cl.(i)) +. b
        in
        let lo = if Float.is_nan raw_lo then neg_infinity else raw_lo in
        let hi = if Float.is_nan raw_hi then infinity else raw_hi in
        let ordered = lo <= hi in
        let lo = if ordered then lo else neg_infinity in
        let hi = if ordered then hi else infinity in
        Array.fill dst.lo_c.(i) 0 id 0.0;
        dst.lo_k.(i) <- lo;
        Array.fill dst.hi_c.(i) 0 id 0.0;
        dst.hi_k.(i) <- hi
      end;
      st.img_lo.(i) <-
        (if a >= 0.0 then a *. src.cl.(i) else a *. src.ch.(i)) +. b;
      st.img_hi.(i) <-
        (if a >= 0.0 then a *. src.ch.(i) else a *. src.cl.(i)) +. b
    done;
    rebuild_into st dst m

  (* Mirror of [transfer_monotone] + the monotone box image (both apply
     the same function endpoint-wise, so expression constants and image
     coincide before concretization). *)
  let mono_into st ~m (src : slot) (dst : slot) which =
    let id = Array.length st.in_lo in
    for i = 0 to m - 1 do
      (match which with
      | `Sigmoid ->
          st.img_lo.(i) <- 1.0 /. (1.0 +. exp (-.src.cl.(i)));
          st.img_hi.(i) <- 1.0 /. (1.0 +. exp (-.src.ch.(i)))
      | `Tanh ->
          st.img_lo.(i) <- tanh src.cl.(i);
          st.img_hi.(i) <- tanh src.ch.(i));
      Array.fill dst.lo_c.(i) 0 id 0.0;
      dst.lo_k.(i) <- st.img_lo.(i);
      Array.fill dst.hi_c.(i) 0 id 0.0;
      dst.hi_k.(i) <- st.img_hi.(i)
    done;
    rebuild_into st dst m

  (* Re-propagate layers [valid + 1 .. n]; [phases l] supplies the
     phase fixings for ReLU layer [l] (the array is read during the
     call and may be reused by the caller afterwards; the engine
     guarantees layer [l - 1]'s bounds are materialized when it asks).
     Returns the number of layers transferred; [last_empty] reports
     whether a fixing contradicted the propagated bounds, in which case
     the transfer stopped at the contradicting layer and deeper cached
     states are stale (and marked invalid). *)
  let propagate st ~phases =
    st.empty <- false;
    st.progress <- 0;
    (* Ping-pong slots never survive across calls: the evicted tail is
       recomputed every time, and a stale [holds] from a previous run
       must not be mistaken for current state. *)
    if Array.length st.ping > 0 then begin
      st.ping.(0).holds <- -1;
      st.ping.(1).holds <- -1
    end;
    let n = num_layers st.plan in
    (try
       for l = st.valid + 1 to n do
         let src = slot_holding st (l - 1) in
         let dst =
           if l <= st.cached then st.slots.(l)
           else if st.ping.(0).holds = l - 1 then st.ping.(1)
           else st.ping.(0)
         in
         dst.holds <- -1;
         let m = st.plan.p_dims.(l) in
         (match st.plan.steps.(l - 1) with
         | S_dense (rows, bias) ->
             dense_into st ~cols:st.plan.p_dims.(l - 1) src dst rows bias
         | S_relu -> relu_into st ~m src dst (phases l)
         | S_diag (scale, shift) -> diag_into st ~m src dst scale shift
         | S_sigmoid -> mono_into st ~m src dst `Sigmoid
         | S_tanh -> mono_into st ~m src dst `Tanh);
         dst.holds <- l;
         if l <= st.cached then st.valid <- l;
         st.progress <- st.progress + 1
       done
     with Empty_region -> st.empty <- true);
    st.progress
end
